/**
 * @file
 * Table VII — performance on the four benchmarks for ASIC-EFFACT and
 * FPGA-EFFACT (simulated) next to the published baselines, plus the
 * TFHE gate-bootstrapping estimate of Sec. VI-D.
 */
#include "bench_common.h"
#include "model/baselines.h"

using namespace effact;

int
main()
{
    // Simulate EFFACT on all benchmarks (ASIC + FPGA).
    HardwareConfig asic = HardwareConfig::asicEffact27();
    HardwareConfig fpga = HardwareConfig::fpgaEffact();

    struct Row
    {
        std::string name;
        double asic_val = 0, fpga_val = 0;
        const char *unit;
    };
    std::vector<Row> rows;
    for (auto &[name, w] : buildAllBenchmarks(paperFhe())) {
        Workload wa = w;
        Workload wf = w;
        PlatformResult ra = runOn(asic, std::move(wa));
        PlatformResult rf = runOn(fpga, std::move(wf));
        Row row;
        row.name = name;
        if (name == "Bootstrapping") {
            row.asic_val = ra.amortizedUs;
            row.fpga_val = rf.amortizedUs;
            row.unit = "us (T_A.S.)";
        } else {
            row.asic_val = ra.benchTimeMs;
            row.fpga_val = rf.benchTimeMs;
            row.unit = "ms";
        }
        rows.push_back(row);
    }

    Table table("Table VII — performance on benchmarks");
    table.header({"benchmark", "ASIC-EFFACT", "FPGA-EFFACT", "unit",
                  "paper ASIC", "paper FPGA"});
    const char *paper_asic[] = {"0.13", "436.95", "8.7", "0.0548"};
    const char *paper_fpga[] = {"0.86", "2175.41", "64.55", "0.566"};
    for (size_t i = 0; i < rows.size(); ++i) {
        table.row({rows[i].name, Table::num(rows[i].asic_val, 4),
                   Table::num(rows[i].fpga_val, 4), rows[i].unit,
                   paper_asic[i], paper_fpga[i]});
    }
    table.print();

    // Speedups over the published baselines (paper's narrative rows).
    Table speedup("Table VII — ASIC-EFFACT speedup over baselines");
    speedup.header({"baseline", "bootstrap", "HELR", "ResNet-20"});
    double boot = rows[3].asic_val;
    double helr = rows[2].asic_val;
    double resnet = rows[1].asic_val;
    for (const char *name : {"GPU-100x", "F1", "BTS", "CraterLake", "ARK",
                             "CL+MAD-32", "FAB", "Poseidon"}) {
        const BaselineSpec &b = baseline(name);
        auto cell = [](double base, double ours) {
            return base > 0 ? Table::num(base / ours, 3) + "x"
                            : std::string("-");
        };
        speedup.row({b.name, cell(b.bootstrapAmortUs, boot),
                     cell(b.helrIterMs, helr), cell(b.resnetMs, resnet)});
    }
    speedup.print();

    // TFHE gate bootstrapping (Sec. VI-D).
    Workload tfhe = buildTfheBootstrap();
    PlatformResult rt = runOn(asic, std::move(tfhe));
    std::printf("TFHE gate bootstrapping (N=2^13, l=2): %.3f ms "
                "(paper: 0.576 ms)\n",
                rt.benchTimeMs);

    std::puts("\nPaper reference (Table VII, ASIC-EFFACT): bootstrap");
    std::puts("0.0548 us amortized; HELR 8.7 ms/iter; ResNet-20");
    std::puts("436.95 ms; DBLookup 0.13 ms. Speedups e.g. 13.49x GPU,");
    std::puts("4743x F1, 4.93x MAD on bootstrapping.");
    return 0;
}
