/**
 * @file
 * Fig. 11 — incremental optimization study on fully-packed
 * bootstrapping under the resource-constrained setting (27 MB SRAM,
 * 1 TB/s, 2048 multipliers): baseline -> MAD-enhanced -> EFFACT global
 * scheduling + streaming -> full EFFACT (adds circuit-level NTT reuse).
 */
#include "bench_common.h"

using namespace effact;

int
main()
{
    HardwareConfig hw = HardwareConfig::asicEffact27();
    hw.hbmBytesPerSec = 1.0e12; // Fig. 11 uses 1 TB/s for simplicity

    struct Step
    {
        const char *name;
        CompilerOptions opts;
        bool mac_reuse;
    };
    std::vector<Step> steps = {
        {"baseline", Platform::baselineOptions(hw.sramBytes), false},
        {"MAD-enhanced", Platform::madEnhancedOptions(hw.sramBytes),
         false},
        {"global streaming & memory opt",
         Platform::streamingOptions(hw.sramBytes), false},
        {"full EFFACT", Platform::fullOptions(hw.sramBytes), true},
    };

    Table table("Fig. 11 — bootstrapping DRAM transfer & runtime");
    table.header({"design point", "DRAM transfer (GB)",
                  "runtime (ms)"});
    double base_dram = 0, base_time = 0;
    double last_dram = 0, last_time = 0;
    for (const auto &step : steps) {
        HardwareConfig cfg = hw;
        cfg.nttMacReuse = step.mac_reuse;
        Workload w = buildBootstrapping(paperFhe());
        Platform p(cfg, step.opts);
        PlatformResult r = p.run(w);
        if (base_dram == 0) {
            base_dram = r.dramGb;
            base_time = r.benchTimeMs;
        }
        last_dram = r.dramGb;
        last_time = r.benchTimeMs;
        table.row({step.name, Table::num(r.dramGb, 4),
                   Table::num(r.benchTimeMs, 4)});
    }
    table.print();
    std::printf("baseline -> full reduction: DRAM %.2fx, runtime %.2fx\n",
                base_dram / last_dram, base_time / last_time);

    std::puts("Paper reference (Fig. 11): MAD-enhanced cuts ~1.24x over");
    std::puts("baseline; EFFACT scheduling+streaming removes 42.2% of");
    std::puts("DRAM transfer and 30.6% of runtime; NTT reuse adds a");
    std::puts("further 1.1x runtime (no DRAM change).");
    return 0;
}
