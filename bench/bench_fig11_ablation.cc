/**
 * @file
 * Fig. 11 — incremental optimization study on fully-packed
 * bootstrapping under the resource-constrained setting (27 MB SRAM,
 * 1 TB/s, 2048 multipliers): baseline -> MAD-enhanced -> EFFACT global
 * scheduling + streaming -> full EFFACT (adds circuit-level NTT reuse).
 *
 * The whole preset grid — the four canonical design points plus a
 * preset x SRAM sensitivity grid — runs as one `SweepEngine` batch over
 * a shared `CompileCache`: the 12 jobs share 4 middle-end pipeline runs
 * (one per preset; the SRAM split is back-end-only), asserted below via
 * the `cache.*` stats. Results are collected in submission order, so
 * stdout is byte-identical at any `EFFACT_THREADS` setting — and at any
 * cache hit pattern, including `EFFACT_COMPILE_CACHE=0`; wall-clock and
 * cache notes go to stderr.
 */
#include "bench_common.h"

#include "common/logging.h"

using namespace effact;

int
main()
{
    HardwareConfig hw = HardwareConfig::asicEffact27();
    hw.hbmBytesPerSec = 1.0e12; // Fig. 11 uses 1 TB/s for simplicity

    struct Step
    {
        const char *name;
        CompilerOptions (*options)(size_t);
        bool mac_reuse;
    };
    const std::vector<Step> steps = {
        {"baseline", Platform::baselineOptions, false},
        {"MAD-enhanced", Platform::madEnhancedOptions, false},
        {"global streaming & memory opt", Platform::streamingOptions,
         false},
        {"full EFFACT", Platform::fullOptions, true},
    };
    // SRAM sensitivity points of the grid (canonical 27 MB first).
    const std::vector<size_t> sram_points = {
        size_t(27) << 20, size_t(13) << 20, size_t(54) << 20};

    CompileCache cache;
    SweepEngine engine(
        {defaultThreadCount(), compileCacheEnabled() ? &cache : nullptr});
    auto submitStep = [&](const Step &step, size_t sram_bytes) {
        HardwareConfig cfg = hw;
        cfg.nttMacReuse = step.mac_reuse;
        cfg.sramBytes = sram_bytes;
        engine.submit(step.name,
                      [] { return buildBootstrapping(paperFhe()); }, cfg,
                      step.options(sram_bytes));
    };
    for (size_t s = 0; s < sram_points.size(); ++s)
        for (const Step &step : steps)
            submitStep(step, sram_points[s]);
    const std::vector<SweepResult> &results = runTimed(engine);
    if (compileCacheEnabled()) {
        // The hardware split in action: 12 jobs, one middle-end
        // pipeline run per preset. Single-flight makes the counts exact
        // at any thread count.
        reportCacheStats(cache);
        const StatSet cs = cache.statsSnapshot();
        EFFACT_ASSERT(cs.get("cache.lookups") == double(engine.jobCount()),
                      "every job must consult the shared cache");
        EFFACT_ASSERT(cs.get("cache.misses") == double(steps.size()),
                      "the %zu-job grid must run exactly %zu middle-end "
                      "pipelines (one per preset), ran %.0f",
                      engine.jobCount(), steps.size(),
                      cs.get("cache.misses"));
    }

    // results[s * steps + k] is (sram point s, design point k); the
    // canonical Fig. 11 table is the first SRAM point.
    Table table("Fig. 11 — bootstrapping DRAM transfer & runtime");
    table.header({"design point", "DRAM transfer (GB)",
                  "runtime (ms)"});
    for (size_t k = 0; k < steps.size(); ++k) {
        const PlatformResult &r = results[k].platform;
        table.row({steps[k].name, Table::num(r.dramGb, 4),
                   Table::num(r.benchTimeMs, 4)});
    }
    table.print();
    const PlatformResult &base = results.front().platform;
    const PlatformResult &full = results[steps.size() - 1].platform;
    std::printf("baseline -> full reduction: DRAM %.2fx, runtime %.2fx\n",
                base.dramGb / full.dramGb,
                base.benchTimeMs / full.benchTimeMs);

    Table grid("Fig. 11 (cont.) — runtime (ms) across SRAM budgets");
    grid.header({"design point", "13 MB", "27 MB", "54 MB"});
    // Column order is by SRAM size; submission order put 27 MB first.
    const std::vector<size_t> col_of_point = {1, 0, 2};
    for (size_t k = 0; k < steps.size(); ++k) {
        std::vector<std::string> row = {steps[k].name};
        for (size_t col = 0; col < sram_points.size(); ++col) {
            const size_t s = col_of_point[col];
            const PlatformResult &r =
                results[s * steps.size() + k].platform;
            row.push_back(Table::num(r.benchTimeMs, 4));
        }
        grid.row(row);
    }
    grid.print();

    std::puts("Paper reference (Fig. 11): MAD-enhanced cuts ~1.24x over");
    std::puts("baseline; EFFACT scheduling+streaming removes 42.2% of");
    std::puts("DRAM transfer and 30.6% of runtime; NTT reuse adds a");
    std::puts("further 1.1x runtime (no DRAM change).");
    return 0;
}
