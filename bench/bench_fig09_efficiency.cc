/**
 * @file
 * Fig. 9 — performance density (throughput/mm^2) and power efficiency
 * (throughput/W) normalized to F1, over bootstrapping / HELR / ResNet.
 * Baseline runtimes and costs are the published values scaled to 28 nm;
 * EFFACT's runtime comes from our simulator and its cost from the
 * analytic model.
 */
#include "bench_common.h"
#include "model/baselines.h"
#include "model/area_power.h"
#include "model/efficiency.h"

using namespace effact;

int
main()
{
    HardwareConfig asic = HardwareConfig::asicEffact27();
    ChipCost effact_cost = estimateAsic(asic);

    // Simulated EFFACT runtimes.
    PlatformResult boot = runOn(asic, buildBootstrapping(paperFhe()));
    PlatformResult helr = runOn(asic, buildHelr(paperFhe()));
    PlatformResult resnet = runOn(asic, buildResNet20(paperFhe()));

    struct Bench
    {
        const char *name;
        double (*get)(const BaselineSpec &);
        double effact_runtime;
    };
    std::vector<Bench> benches = {
        {"Bootstrapping", [](const BaselineSpec &b)
         { return b.bootstrapAmortUs; }, boot.amortizedUs},
        {"HELR", [](const BaselineSpec &b) { return b.helrIterMs; },
         helr.benchTimeMs},
        {"ResNet", [](const BaselineSpec &b) { return b.resnetMs; },
         resnet.benchTimeMs},
    };

    for (bool density : {true, false}) {
        Table table(density
                        ? "Fig. 9a — performance density (vs F1)"
                        : "Fig. 9b — power efficiency (vs F1)");
        table.header({"design", "Bootstrapping", "HELR", "ResNet"});

        std::vector<std::string> names = {"F1", "BTS", "CraterLake",
                                          "ARK", "CL+MAD-32"};
        std::vector<std::vector<double>> cols;
        for (const auto &bench : benches) {
            std::vector<EfficiencyPoint> pts;
            for (const auto &name : names) {
                const BaselineSpec &b = baseline(name);
                double rt = bench.get(b);
                if (rt <= 0)
                    rt = 1e9; // unreported: effectively zero efficiency
                pts.push_back({name, rt, b.scaledAreaMm2(),
                               b.scaledPowerW()});
            }
            pts.push_back({"EFFACT", bench.effact_runtime,
                           effact_cost.totalAreaMm2,
                           effact_cost.totalPowerW});
            cols.push_back(density ? perfDensityNormalized(pts)
                                   : powerEfficiencyNormalized(pts));
        }
        for (size_t row = 0; row < names.size() + 1; ++row) {
            std::string nm = row < names.size() ? names[row] : "EFFACT";
            table.row({nm, Table::num(cols[0][row], 4),
                       Table::num(cols[1][row], 4),
                       Table::num(cols[2][row], 4)});
        }
        table.print();
    }

    std::puts("Paper reference (Fig. 9): EFFACT tops both metrics —");
    std::puts("density 1.46x CraterLake / 1.86x ARK / 11.89x MAD on");
    std::puts("bootstrapping; power efficiency 1.48x CraterLake /");
    std::puts("1.49x ARK / 9.76x MAD; >= 2x on HELR and ResNet.");
    return 0;
}
