/**
 * @file
 * Fig. 10 — performance scaling of EFFACT-54/108/162 (SRAM + multiplier
 * scaling) over EFFACT-27 on bootstrapping, HELR and ResNet.
 */
#include "bench_common.h"

using namespace effact;

int
main()
{
    std::vector<HardwareConfig> configs = {
        HardwareConfig::asicEffact27(), HardwareConfig::asicEffact54(),
        HardwareConfig::asicEffact108(), HardwareConfig::asicEffact162()};

    struct BenchRow
    {
        const char *name;
        Workload (*build)(const FheParams &);
    };
    std::vector<BenchRow> benches = {
        {"Bootstrapping",
         [](const FheParams &f) { return buildBootstrapping(f, {}); }},
        {"HELR", buildHelr},
        {"ResNet", buildResNet20},
    };

    Table table("Fig. 10 — speedup over EFFACT-27");
    table.header({"config", "Bootstrapping", "HELR", "ResNet"});

    std::vector<std::vector<double>> times(benches.size());
    for (const auto &hw : configs) {
        for (size_t b = 0; b < benches.size(); ++b) {
            PlatformResult r = runOn(hw, benches[b].build(paperFhe()));
            times[b].push_back(r.benchTimeMs);
        }
    }
    for (size_t c = 0; c < configs.size(); ++c) {
        std::vector<std::string> row = {configs[c].name};
        for (size_t b = 0; b < benches.size(); ++b)
            row.push_back(Table::num(times[b][0] / times[b][c], 4) + "x");
        table.row(row);
    }
    table.print();

    std::puts("Paper reference (Fig. 10): monotone speedups up to");
    std::puts("~2.5-3.4x at EFFACT-162; EFFACT-108 overtakes ARK and");
    std::puts("CraterLake on HELR/ResNet; bootstrapping needs");
    std::puts("EFFACT-162 to catch up (more memory-intensive).");
    return 0;
}
