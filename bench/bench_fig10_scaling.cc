/**
 * @file
 * Fig. 10 — performance scaling of EFFACT-54/108/162 (SRAM + multiplier
 * scaling) over EFFACT-27 on bootstrapping, HELR and ResNet.
 *
 * The 4 x 3 (config, workload) grid runs as one `SweepEngine` batch
 * over a shared `CompileCache`: all four hardware configs share one
 * middle-end pipeline run per workload (the SRAM/multiplier scaling is
 * back-end-only), asserted below via the `cache.*` stats. Results come
 * back in submission order, so stdout is byte-identical at any
 * `EFFACT_THREADS` setting and any cache hit pattern (wall-clock and
 * cache notes go to stderr).
 */
#include "bench_common.h"

#include "common/logging.h"

using namespace effact;

int
main()
{
    std::vector<HardwareConfig> configs = {
        HardwareConfig::asicEffact27(), HardwareConfig::asicEffact54(),
        HardwareConfig::asicEffact108(), HardwareConfig::asicEffact162()};

    struct BenchRow
    {
        const char *name;
        Workload (*build)(const FheParams &);
    };
    std::vector<BenchRow> benches = {
        {"Bootstrapping",
         [](const FheParams &f) { return buildBootstrapping(f, {}); }},
        {"HELR", buildHelr},
        {"ResNet", buildResNet20},
    };

    CompileCache cache;
    SweepEngine engine(
        {defaultThreadCount(), compileCacheEnabled() ? &cache : nullptr});
    for (const auto &hw : configs) {
        for (const BenchRow &bench : benches) {
            Workload (*build)(const FheParams &) = bench.build;
            engine.submit(std::string(hw.name) + "/" + bench.name,
                          [build] { return build(paperFhe()); }, hw,
                          Platform::fullOptions(hw.sramBytes));
        }
    }
    const std::vector<SweepResult> &results = runTimed(engine);
    if (compileCacheEnabled()) {
        reportCacheStats(cache);
        const StatSet cs = cache.statsSnapshot();
        EFFACT_ASSERT(cs.get("cache.misses") == double(benches.size()),
                      "the %zu-job grid must run exactly %zu middle-end "
                      "pipelines (one per workload), ran %.0f",
                      engine.jobCount(), benches.size(),
                      cs.get("cache.misses"));
    }

    Table table("Fig. 10 — speedup over EFFACT-27");
    table.header({"config", "Bootstrapping", "HELR", "ResNet"});

    // results[c * benches + b] is (config c, workload b).
    auto timeOf = [&](size_t c, size_t b) {
        return results[c * benches.size() + b].platform.benchTimeMs;
    };
    for (size_t c = 0; c < configs.size(); ++c) {
        std::vector<std::string> row = {configs[c].name};
        for (size_t b = 0; b < benches.size(); ++b)
            row.push_back(Table::num(timeOf(0, b) / timeOf(c, b), 4) + "x");
        table.row(row);
    }
    table.print();

    std::puts("Paper reference (Fig. 10): monotone speedups up to");
    std::puts("~2.5-3.4x at EFFACT-162; EFFACT-108 overtakes ARK and");
    std::puts("CraterLake on HELR/ResNet; bootstrapping needs");
    std::puts("EFFACT-162 to catch up (more memory-intensive).");
    return 0;
}
