/**
 * @file
 * CI perf lane: three headline measurements — simulator throughput on
 * the paper-scale bootstrapping trace (`bench_sim_speed`'s event-driven
 * core), the `bench_fig11_ablation` 15-job preset x SRAM grid on the
 * `SweepEngine` with a shared `CompileCache`, and the per-optimization
 * win matrix (each PR 10 optimization isolated against the full
 * preset) — emitted as one machine-readable `BENCH_sweep.json`
 * (cycles, wall-clock ms, cache hit stats, thread count, per-job
 * fingerprints).
 *
 * CI uploads the file as an artifact on every push (the perf
 * trajectory) and gates on `bench/check_regression.py` against the
 * checked-in `bench/baseline.json`: deterministic fields (cycles,
 * fingerprints) must match exactly, wall-clock may regress at most 25%
 * (env-overridable). Regenerate the baseline deliberately with
 * `bench/regen_baseline.sh`.
 *
 * Usage: bench_perf_lane [output.json]   (default: BENCH_sweep.json)
 */
#include <chrono>
#include <cinttypes>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"

namespace effact {
namespace {

using Clock = std::chrono::steady_clock;

double
msSince(const Clock::time_point &t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

struct SimSpeedResult
{
    size_t instructions = 0;
    double cycles = 0;
    double compileWallMs = 0;
    double simWallMs = 0; ///< best of 3
};

/** The `bench_sim_speed` measurement: event-driven core throughput on
 *  the paper-scale bootstrapping trace. */
SimSpeedResult
measureSimSpeed()
{
    SimSpeedResult r;
    Workload w = buildBootstrapping(paperFhe());
    HardwareConfig hw = HardwareConfig::asicEffact27();
    Compiler compiler(Platform::fullOptions(hw.sramBytes));

    const Clock::time_point c0 = Clock::now();
    MachineProgram mp = compiler.compile(w.program);
    r.compileWallMs = msSince(c0);
    r.instructions = mp.insts.size();

    Simulator sim(hw);
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
        const Clock::time_point t0 = Clock::now();
        const SimReport report = sim.run(mp);
        best = std::min(best, msSince(t0));
        r.cycles = report.cycles;
    }
    r.simWallMs = best;
    return r;
}

struct GridResult
{
    double wallMs = 0;
    size_t threads = 0;
    StatSet cacheStats;
    std::vector<SweepResult> results;
    std::vector<size_t> sramMb;
};

/** The `bench_fig11_ablation` grid, verbatim submission order, on the
 *  engine with a shared compile cache. */
GridResult
runFig11Grid()
{
    HardwareConfig hw = HardwareConfig::asicEffact27();
    hw.hbmBytesPerSec = 1.0e12;

    struct Step
    {
        const char *name;
        CompilerOptions (*options)(size_t);
        bool mac_reuse;
    };
    const std::vector<Step> steps = {
        {"baseline", Platform::baselineOptions, false},
        {"MAD-enhanced", Platform::madEnhancedOptions, false},
        {"streaming", Platform::streamingOptions, false},
        {"full", Platform::fullOptions, true},
        {"optimized", Platform::optimizedOptions, true},
    };
    const std::vector<size_t> sram_points = {
        size_t(27) << 20, size_t(13) << 20, size_t(54) << 20};

    GridResult grid;
    CompileCache cache;
    // Verification forced off batch-wide: the lane measures the
    // compiler and simulator, never the checkpoint verifiers.
    SweepEngine engine({defaultThreadCount(), &cache, /*verifyLevel=*/0});
    for (size_t sram : sram_points) {
        for (const Step &step : steps) {
            HardwareConfig cfg = hw;
            cfg.nttMacReuse = step.mac_reuse;
            cfg.sramBytes = sram;
            engine.submit(std::string(step.name) + "/sram" +
                              std::to_string(sram >> 20),
                          [] { return buildBootstrapping(paperFhe()); },
                          cfg, step.options(sram));
            grid.sramMb.push_back(sram >> 20);
        }
    }
    const Clock::time_point t0 = Clock::now();
    grid.results = engine.runAll();
    grid.wallMs = msSince(t0);
    grid.threads = engine.workersUsed();
    grid.cacheStats = cache.statsSnapshot();

    // The hardware-split invariant the lane records: one middle-end
    // pipeline run per preset, at any thread count.
    EFFACT_ASSERT(grid.cacheStats.get("cache.misses") ==
                      double(steps.size()),
                  "expected %zu middle-end runs, saw %.0f", steps.size(),
                  grid.cacheStats.get("cache.misses"));
    // The combined optimized preset never loses to the full preset at
    // any SRAM point (jobs are submitted preset-major per SRAM point,
    // so full/optimized are adjacent).
    for (size_t i = 0; i + 1 < grid.results.size(); i += steps.size()) {
        const SweepResult &full = grid.results[i + steps.size() - 2];
        const SweepResult &opt = grid.results[i + steps.size() - 1];
        EFFACT_ASSERT(opt.platform.sim.cycles <= full.platform.sim.cycles,
                      "optimized preset regressed at %s: %.0f > %.0f",
                      opt.name.c_str(), opt.platform.sim.cycles,
                      full.platform.sim.cycles);
    }
    return grid;
}

// --- Per-optimization cycle wins ------------------------------------------

/** One (workload, variant, SRAM) measurement of the opt-wins matrix. */
struct WinRow
{
    std::string workload;
    std::string opt;
    size_t sramMb = 0;
    double cycles = 0;
    uint64_t fingerprint = 0;
};

/**
 * Isolates each PR 10 optimization against the full Fig. 11 preset:
 * `rotalg` (algebraic rotation rewrites), `regalloc` (priority spill
 * scoring), `scheduler` (latency-weighted list scheduling), and the
 * three combined (`optimized`), on the paper-scale bootstrapping trace
 * and the hoisted rotation batch, at a spill-heavy and a comfortable
 * SRAM point. Cycles and fingerprints are deterministic and gated
 * exactly against the baseline (`opt_wins.results`).
 */
std::vector<WinRow>
measureOptimizationWins()
{
    HardwareConfig hw = HardwareConfig::asicEffact27();
    hw.hbmBytesPerSec = 1.0e12;
    hw.nttMacReuse = true; // the full-preset hardware point

    struct Variant
    {
        const char *name;
        void (*tweak)(CompilerOptions &);
    };
    const std::vector<Variant> variants = {
        {"full", [](CompilerOptions &) {}},
        {"rotalg",
         [](CompilerOptions &o) {
             o.pipeline = "copyprop,constprop,rotalg,pre,peephole";
         }},
        {"regalloc", [](CompilerOptions &o) { o.regalloc = "priority"; }},
        {"scheduler",
         [](CompilerOptions &o) { o.scheduler = "latency"; }},
        {"optimized",
         [](CompilerOptions &o) {
             o.pipeline = "copyprop,constprop,rotalg,pre,peephole";
             o.regalloc = "priority";
             o.scheduler = "latency";
         }},
    };
    const std::vector<std::pair<const char *, std::function<Workload()>>>
        workloads = {
            {"bootstrap", [] { return buildBootstrapping(paperFhe()); }},
            {"rotbatch",
             [] { return buildRotationBatch(paperFhe(), 8, 12); }},
        };
    const std::vector<size_t> sram_points = {size_t(13) << 20,
                                             size_t(27) << 20};

    CompileCache cache;
    SweepEngine engine({defaultThreadCount(), &cache, /*verifyLevel=*/0});
    for (const auto &[wname, build] : workloads) {
        for (size_t sram : sram_points) {
            for (const Variant &v : variants) {
                HardwareConfig cfg = hw;
                cfg.sramBytes = sram;
                CompilerOptions opts = Platform::fullOptions(sram);
                v.tweak(opts);
                engine.submit(std::string(wname) + "/" + v.name +
                                  "/sram" + std::to_string(sram >> 20),
                              build, cfg, opts);
            }
        }
    }
    const std::vector<SweepResult> &results = engine.runAll();

    std::vector<WinRow> rows;
    size_t idx = 0;
    for (const auto &[wname, build] : workloads) {
        (void)build;
        for (size_t sram : sram_points) {
            for (const Variant &v : variants) {
                const SweepResult &r = results[idx++];
                rows.push_back({wname, v.name, sram >> 20,
                                r.platform.sim.cycles,
                                r.platform.machineFingerprint});
            }
        }
    }

    // The measured-win gate: each optimization, isolated, strictly
    // improves at least one (workload, SRAM) point. Rows are blocks of
    // `stride` with the full-preset anchor first.
    const size_t stride = variants.size();
    for (size_t v = 1; v < stride; ++v) {
        bool wins = false;
        for (size_t base = 0; base + v < rows.size(); base += stride) {
            const double delta =
                rows[base].cycles - rows[base + v].cycles;
            std::fprintf(stderr,
                         "[wins] %s/%s/sram%zu: %.0f cycles (%+.2f%% vs "
                         "full)\n",
                         rows[base + v].workload.c_str(),
                         rows[base + v].opt.c_str(),
                         rows[base + v].sramMb, rows[base + v].cycles,
                         -100.0 * delta / rows[base].cycles);
            wins |= delta > 0;
        }
        EFFACT_ASSERT(wins, "%s never beats the full preset",
                      variants[v].name);
    }
    return rows;
}

int
emit(const char *path)
{
    // Recorded perf numbers must be comparable run to run: refuse to
    // measure with checkpoint verification switched on via the
    // environment — a verified compile is a different workload than the
    // one the checked-in baseline was recorded from. (The sweep below
    // additionally forces verifyLevel 0 on every job.)
    EFFACT_ASSERT(defaultVerifyLevel() == 0,
                  "perf lane refuses to run with EFFACT_VERIFY set: "
                  "verification would pollute the recorded wall-clock");

    const SimSpeedResult speed = measureSimSpeed();
    const GridResult grid = runFig11Grid();
    const std::vector<WinRow> wins = measureOptimizationWins();

    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"effact-bench-sweep-v1\",\n");
    std::fprintf(f, "  \"sim_speed\": {\n");
    std::fprintf(f, "    \"instructions\": %zu,\n", speed.instructions);
    std::fprintf(f, "    \"cycles\": %.0f,\n", speed.cycles);
    std::fprintf(f, "    \"compile_wall_ms\": %.3f,\n",
                 speed.compileWallMs);
    std::fprintf(f, "    \"sim_wall_ms\": %.3f,\n", speed.simWallMs);
    std::fprintf(f, "    \"insts_per_sec\": %.0f\n",
                 double(speed.instructions) / (speed.simWallMs / 1e3));
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"fig11_grid\": {\n");
    std::fprintf(f, "    \"jobs\": %zu,\n", grid.results.size());
    std::fprintf(f, "    \"threads\": %zu,\n", grid.threads);
    std::fprintf(f, "    \"wall_ms\": %.3f,\n", grid.wallMs);
    std::fprintf(f, "    \"cache\": {\n");
    std::fprintf(f, "      \"lookups\": %.0f,\n",
                 grid.cacheStats.get("cache.lookups"));
    std::fprintf(f, "      \"hits\": %.0f,\n",
                 grid.cacheStats.get("cache.hits"));
    std::fprintf(f, "      \"middle_end_runs\": %.0f,\n",
                 grid.cacheStats.get("cache.misses"));
    std::fprintf(f, "      \"frontend_skipped\": %.0f\n",
                 grid.cacheStats.get("cache.frontend_skipped"));
    std::fprintf(f, "    },\n");
    std::fprintf(f, "    \"results\": [\n");
    for (size_t i = 0; i < grid.results.size(); ++i) {
        const SweepResult &r = grid.results[i];
        std::fprintf(f,
                     "      {\"name\": \"%s\", \"sram_mb\": %zu, "
                     "\"cycles\": %.0f, \"bench_ms\": %.6f, "
                     "\"dram_gb\": %.6f, "
                     "\"fingerprint\": \"0x%016" PRIx64 "\"}%s\n",
                     r.name.c_str(), grid.sramMb[i],
                     r.platform.sim.cycles, r.platform.benchTimeMs,
                     r.platform.dramGb, r.platform.machineFingerprint,
                     i + 1 < grid.results.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"opt_wins\": {\n");
    std::fprintf(f, "    \"jobs\": %zu,\n", wins.size());
    std::fprintf(f, "    \"results\": [\n");
    for (size_t i = 0; i < wins.size(); ++i) {
        const WinRow &r = wins[i];
        std::fprintf(f,
                     "      {\"workload\": \"%s\", \"opt\": \"%s\", "
                     "\"sram_mb\": %zu, \"cycles\": %.0f, "
                     "\"fingerprint\": \"0x%016" PRIx64 "\"}%s\n",
                     r.workload.c_str(), r.opt.c_str(), r.sramMb,
                     r.cycles, r.fingerprint,
                     i + 1 < wins.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n");
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);

    std::fprintf(stderr,
                 "[perf] sim: %zu insts, %.0f cycles, %.1f ms | grid: "
                 "%zu jobs on %zu worker(s), %.1f ms, %.0f middle-end "
                 "run(s)\n",
                 speed.instructions, speed.cycles, speed.simWallMs,
                 grid.results.size(), grid.threads, grid.wallMs,
                 grid.cacheStats.get("cache.misses"));
    std::printf("wrote %s\n", path);
    return 0;
}

} // namespace
} // namespace effact

int
main(int argc, char **argv)
{
    return effact::emit(argc > 1 ? argv[1] : "BENCH_sweep.json");
}
