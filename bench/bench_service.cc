/**
 * @file
 * Service-mode vs batch-mode throughput on the Fig. 11-shaped grid
 * (4 presets x 3 SRAM points of one workload, reduced to db-lookup
 * scale so the comparison runs in seconds). Both modes execute the
 * same 12 design points on the same worker count:
 *
 * - batch: one `SweepEngine::runAll` over a shared `CompileCache` —
 *   the pre-daemon path;
 * - service: the same jobs as framed `ServiceRequest`s driven through
 *   a `ServiceCore` via `replayFrames`, i.e. the daemon path minus the
 *   socket: protocol encode/decode, validation, admission, windowing
 *   and the bounded cache all included.
 *
 * The deterministic grid results go to stdout (byte-identical across
 * modes, thread counts and cache budgets — asserted below); wall-clock
 * and overhead notes go to stderr, `bench/NOTES.md` records them.
 */
#include "bench_common.h"

#include <chrono>

#include "common/logging.h"
#include "service/service.h"

using namespace effact;

namespace {

struct GridPoint
{
    std::string name;
    size_t sramBytes = 0;
    CompilerOptions copts;
};

std::vector<GridPoint>
fig11ShapedGrid()
{
    struct Step
    {
        const char *name;
        CompilerOptions (*options)(size_t);
    };
    const std::vector<Step> steps = {
        {"baseline", Platform::baselineOptions},
        {"MAD-enhanced", Platform::madEnhancedOptions},
        {"streaming", Platform::streamingOptions},
        {"full", Platform::fullOptions},
    };
    const std::vector<size_t> sram_points = {
        size_t(27) << 20, size_t(13) << 20, size_t(54) << 20};
    std::vector<GridPoint> grid;
    for (size_t s = 0; s < sram_points.size(); ++s)
        for (const Step &step : steps)
            grid.push_back({std::string(step.name) + "/sram" +
                                std::to_string(sram_points[s] >> 20),
                            sram_points[s], step.options(sram_points[s])});
    return grid;
}

FheParams
benchFhe()
{
    FheParams fhe;
    fhe.logN = 13;
    fhe.levels = 8;
    fhe.dnum = 2;
    return fhe;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

} // namespace

int
main()
{
    const std::vector<GridPoint> grid = fig11ShapedGrid();
    const size_t threads = defaultThreadCount();
    constexpr size_t kRecords = 64;
    constexpr int kRounds = 4; // repeat the grid: cache-hot service reuse

    // --- batch mode --------------------------------------------------------
    CompileCache batch_cache;
    SweepEngine engine(
        {threads, compileCacheEnabled() ? &batch_cache : nullptr});
    for (int round = 0; round < kRounds; ++round)
        for (const GridPoint &pt : grid) {
            HardwareConfig hw = HardwareConfig::asicEffact27();
            hw.sramBytes = pt.sramBytes;
            engine.submit(pt.name, [] {
                return buildDbLookup(benchFhe(), kRecords);
            }, hw, pt.copts);
        }
    const auto batch_t0 = std::chrono::steady_clock::now();
    const std::vector<SweepResult> &batch = engine.runAll();
    const double batch_s = secondsSince(batch_t0);

    // --- service mode ------------------------------------------------------
    // The same jobs as a recorded session: one burst per round, flushed
    // like a client would. Requests travel through the real wire
    // encoding, so protocol overhead is part of the measurement.
    std::vector<Frame> frames;
    for (int round = 0; round < kRounds; ++round) {
        for (const GridPoint &pt : grid) {
            ServiceRequest req;
            req.tag = frames.size();
            req.name = pt.name;
            req.workload = "dblookup";
            req.fhe = benchFhe();
            req.param = kRecords;
            req.hw = HardwareConfig::asicEffact27();
            req.hw.sramBytes = pt.sramBytes;
            req.copts = pt.copts;
            Frame frame;
            frame.type = FrameType::Request;
            frame.payload = encodeRequest(req);
            frames.push_back(std::move(frame));
        }
        Frame flush;
        flush.type = FrameType::Flush;
        frames.push_back(std::move(flush));
    }

    ServiceOptions opts;
    opts.threads = threads;
    opts.queueCapacity = grid.size() * kRounds; // admission never bites here
    opts.batchSize = grid.size();
    opts.useCache = compileCacheEnabled();
    ServiceCore core(opts);
    ReplayOutcome outcome;
    std::string error;
    const auto service_t0 = std::chrono::steady_clock::now();
    const bool ok = replayFrames(frames, core, &outcome, &error);
    const double service_s = secondsSince(service_t0);
    EFFACT_ASSERT(ok, "service replay failed: %s", error.c_str());
    EFFACT_ASSERT(outcome.results.size() == batch.size(),
                  "service returned %zu results for %zu jobs",
                  outcome.results.size(), batch.size());

    // Same results, job for job — the service layer adds plumbing, not
    // perturbation.
    for (size_t i = 0; i < batch.size(); ++i) {
        const ServiceResult &svc = outcome.results[i];
        EFFACT_ASSERT(svc.status == ServiceStatus::Ok, "job %zu: %s", i,
                      svc.error.c_str());
        EFFACT_ASSERT(svc.machineFingerprint ==
                          batch[i].platform.machineFingerprint,
                      "job %zu (%s): service fingerprint diverged", i,
                      batch[i].name.c_str());
        EFFACT_ASSERT(svc.cycles == batch[i].platform.sim.cycles,
                      "job %zu (%s): service cycles diverged", i,
                      batch[i].name.c_str());
    }

    // Deterministic grid table (first round only; later rounds repeat).
    Table table("service vs batch — Fig. 11-shaped db-lookup grid");
    table.header({"design point", "cycles", "instructions"});
    for (size_t i = 0; i < grid.size(); ++i) {
        const ServiceResult &svc = outcome.results[i];
        table.row({svc.name, Table::num(svc.cycles),
                   Table::num(double(svc.instructions))});
    }
    table.print();

    const size_t jobs = batch.size();
    std::fprintf(stderr,
                 "[service-bench] %zu jobs x %zu worker(s)\n"
                 "  batch   : %.3f s (%.1f jobs/s)\n"
                 "  service : %.3f s (%.1f jobs/s, overhead %+.1f%%)\n",
                 jobs, threads, batch_s, double(jobs) / batch_s, service_s,
                 double(jobs) / service_s,
                 100.0 * (service_s - batch_s) / batch_s);
    if (compileCacheEnabled()) {
        reportCacheStats(batch_cache);
        reportCacheStats(core.cache());
    }
    return 0;
}
