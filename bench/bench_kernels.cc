/**
 * @file
 * google-benchmark microbenchmarks of the functional kernels the
 * platform is built on: NTT, base conversion (plain vs merged
 * double-Montgomery form), automorphism and the fixed network.
 */
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "math/automorphism.h"
#include "math/fixed_network.h"
#include "math/primes.h"
#include "rns/bconv.h"

using namespace effact;

namespace {

void
BM_NttForward(benchmark::State &state)
{
    const size_t n = size_t(1) << static_cast<size_t>(state.range(0));
    const u64 q = genNttPrimes(1, 54, n)[0];
    Ntt ntt(n, q);
    Rng rng(1);
    std::vector<u64> a(n);
    for (auto &c : a)
        c = rng.uniform(q);
    for (auto _ : state) {
        ntt.forward(a.data());
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_NttForward)->DenseRange(10, 14, 2);

void
BM_BconvPlain(benchmark::State &state)
{
    const size_t n = 1 << 12;
    auto from = std::make_shared<RnsBasis>(n, genNttPrimes(6, 40, n));
    auto to = std::make_shared<RnsBasis>(
        n, genNttPrimes(6, 40, n, from->primes()));
    BaseConverter bc(from, to);
    Rng rng(2);
    RnsPoly a(from, PolyFormat::Coeff);
    a.sampleUniform(rng);
    for (auto _ : state) {
        RnsPoly out = bc.convert(a);
        benchmark::DoNotOptimize(out.limb(0).data());
    }
}
BENCHMARK(BM_BconvPlain);

void
BM_BconvMergedMontgomery(benchmark::State &state)
{
    const size_t n = 1 << 12;
    auto from = std::make_shared<RnsBasis>(n, genNttPrimes(6, 40, n));
    auto to = std::make_shared<RnsBasis>(
        n, genNttPrimes(6, 40, n, from->primes()));
    BaseConverter bc(from, to);
    Rng rng(3);
    RnsPoly a(from, PolyFormat::Coeff);
    a.sampleUniform(rng);
    for (auto _ : state) {
        RnsPoly out = bc.convertMontgomery(a, true);
        benchmark::DoNotOptimize(out.limb(0).data());
    }
}
BENCHMARK(BM_BconvMergedMontgomery);

void
BM_AutomorphismEval(benchmark::State &state)
{
    const size_t n = 1 << 14;
    AutoPermutation perm(n, galoisElt(3, n));
    Rng rng(4);
    std::vector<u64> in(n), out(n);
    for (auto &c : in)
        c = rng.next();
    for (auto _ : state) {
        perm.apply(in.data(), out.data());
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_AutomorphismEval);

void
BM_FixedNetworkTranspose(benchmark::State &state)
{
    const size_t lanes = 256;
    FixedNetwork fn(lanes);
    Rng rng(5);
    std::vector<u64> x(lanes * lanes);
    for (auto &c : x)
        c = rng.next();
    for (auto _ : state) {
        auto out = fn.transposeFromBitrev(x);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_FixedNetworkTranspose);

} // namespace

BENCHMARK_MAIN();
