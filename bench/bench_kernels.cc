/**
 * @file
 * Kernel-tier microbench: times the dispatched math kernels — NTT
 * forward/inverse, pointwise modmul, BConv plain and merged-Montgomery
 * — under the scalar oracle tier and under the best tier this host
 * supports, from one binary.
 *
 * Two jobs in one harness:
 *
 *  - Exactness gate: before timing anything, every kernel family is run
 *    under *every* available tier on identical inputs and the outputs
 *    are folded into one FNV-1a fingerprint per tier; the process
 *    aborts if any tier disagrees with the scalar oracle. The common
 *    fingerprint is emitted as the deterministic `kernels.fingerprint`
 *    field, so the CI gate also pins the oracle's semantics across
 *    commits and machines.
 *
 *  - Wall clock: fixed iteration counts per family, best-of-reps, one
 *    `*_wall_ms` pair (scalar vs vector) per family. On a host without
 *    any vector tier the "vector" numbers are just a second scalar
 *    measurement and the speedup hovers at 1.0 — the JSON stays
 *    schema-identical everywhere.
 *
 * Usage: bench_kernels [output.json]   (default: BENCH_kernels.json)
 */
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/simd.h"
#include "math/kernels.h"
#include "math/ntt.h"
#include "math/primes.h"
#include "rns/bconv.h"

namespace effact {
namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kDegree = 4096; ///< ring degree for every measurement
constexpr int kReps = 5;         ///< best-of reps per measurement

double
msSince(const Clock::time_point &t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

u64
fnv1a(u64 h, const u64 *data, size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** The fixed scene every measurement and the exactness gate share. */
struct Scene
{
    Ntt ntt;
    AlignedU64Vec poly;             ///< reduced mod ntt.modulus()
    AlignedU64Vec polyB;            ///< second operand, same modulus
    std::shared_ptr<RnsBasis> from; ///< 6 x 40-bit
    std::shared_ptr<RnsBasis> to;   ///< 6 x 40-bit, disjoint
    BaseConverter bconv;
    RnsPoly rnsInput;

    static Scene
    make()
    {
        const u64 q = genNttPrimes(1, 54, kDegree)[0];
        Ntt ntt(kDegree, q);
        Rng rng(1);
        AlignedU64Vec a(kDegree), b(kDegree);
        for (auto &c : a)
            c = rng.uniform(q);
        for (auto &c : b)
            c = rng.uniform(q);
        auto from = std::make_shared<RnsBasis>(kDegree,
                                               genNttPrimes(6, 40, kDegree));
        auto to = std::make_shared<RnsBasis>(
            kDegree, genNttPrimes(6, 40, kDegree, from->primes()));
        BaseConverter bc(from, to);
        RnsPoly p(from, PolyFormat::Coeff);
        Rng rng2(2);
        p.sampleUniform(rng2);
        return Scene{std::move(ntt), std::move(a),   std::move(b),
                     std::move(from), std::move(to), std::move(bc),
                     std::move(p)};
    }
};

/** One kernel family: how to run it once, folding outputs into `h`. */
struct Family
{
    const char *name; ///< JSON key
    int iters;        ///< timed iterations per rep
    u64 (*runOnce)(const Scene &s, u64 h);
};

u64
runNttForward(const Scene &s, u64 h)
{
    AlignedU64Vec a = s.poly;
    s.ntt.forward(a.data());
    return fnv1a(h, a.data(), a.size());
}

u64
runNttInverse(const Scene &s, u64 h)
{
    AlignedU64Vec a = s.poly; // any reduced vector is a valid eval input
    s.ntt.backward(a.data());
    return fnv1a(h, a.data(), a.size());
}

u64
runPointwiseMul(const Scene &s, u64 h)
{
    AlignedU64Vec dst(kDegree);
    kernels::active().mulModV(dst.data(), s.poly.data(), s.polyB.data(),
                              kDegree, s.ntt.kernelTables().barrett[0]);
    return fnv1a(h, dst.data(), dst.size());
}

u64
runBconvPlain(const Scene &s, u64 h)
{
    RnsPoly out = s.bconv.convert(s.rnsInput);
    for (size_t j = 0; j < out.limbCount(); ++j)
        h = fnv1a(h, out.limb(j).data(), out.limb(j).size());
    return h;
}

u64
runBconvMontgomery(const Scene &s, u64 h)
{
    RnsPoly out = s.bconv.convertMontgomery(s.rnsInput, true);
    for (size_t j = 0; j < out.limbCount(); ++j)
        h = fnv1a(h, out.limb(j).data(), out.limb(j).size());
    return h;
}

const Family kFamilies[] = {
    {"ntt_forward", 200, runNttForward},
    {"ntt_inverse", 200, runNttInverse},
    {"pointwise_mul", 400, runPointwiseMul},
    {"bconv", 40, runBconvPlain},
    {"bconv_montgomery", 40, runBconvMontgomery},
};
constexpr size_t kFamilyCount = sizeof(kFamilies) / sizeof(kFamilies[0]);

/**
 * Runs every family once under `tier` and returns the combined
 * fingerprint. All tiers must return the same value — checked below.
 */
u64
fingerprintTier(const Scene &s, SimdTier tier)
{
    const SimdTier installed = setSimdTier(tier);
    EFFACT_ASSERT(installed == tier, "tier %s unavailable mid-gate",
                  simdTierName(tier));
    u64 h = 0xcbf29ce484222325ULL;
    for (const Family &f : kFamilies)
        h = f.runOnce(s, h);
    return h;
}

/** Best-of-kReps wall clock of `iters` runs of one family. */
double
timeFamily(const Scene &s, const Family &f)
{
    double best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
        const Clock::time_point t0 = Clock::now();
        u64 sink = 0xcbf29ce484222325ULL;
        for (int it = 0; it < f.iters; ++it)
            sink = f.runOnce(s, sink);
        const double ms = msSince(t0);
        // Keep the fold observable so the loop cannot be elided.
        if (sink == 0)
            std::fprintf(stderr, "impossible fold\n");
        best = std::min(best, ms);
    }
    return best;
}

int
emit(const char *path)
{
    const Scene s = Scene::make();
    const SimdTier best_tier = maxSupportedSimdTier();

    // Exactness gate first: every available tier must agree with the
    // scalar oracle before any number is recorded.
    const u64 oracle = fingerprintTier(s, SimdTier::Scalar);
    std::string tiers = simdTierName(SimdTier::Scalar);
    for (int t = 1; t <= static_cast<int>(best_tier); ++t) {
        const SimdTier tier = static_cast<SimdTier>(t);
        const u64 got = fingerprintTier(s, tier);
        EFFACT_ASSERT(got == oracle,
                      "tier %s fingerprint 0x%016llx != scalar oracle "
                      "0x%016llx",
                      simdTierName(tier),
                      static_cast<unsigned long long>(got),
                      static_cast<unsigned long long>(oracle));
        tiers += ",";
        tiers += simdTierName(tier);
    }

    double scalar_ms[kFamilyCount];
    double vector_ms[kFamilyCount];
    setSimdTier(SimdTier::Scalar);
    for (size_t i = 0; i < kFamilyCount; ++i)
        scalar_ms[i] = timeFamily(s, kFamilies[i]);
    setSimdTier(best_tier);
    for (size_t i = 0; i < kFamilyCount; ++i)
        vector_ms[i] = timeFamily(s, kFamilies[i]);

    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"effact-bench-kernels-v1\",\n");
    std::fprintf(f, "  \"kernels\": {\n");
    std::fprintf(f, "    \"fingerprint\": \"0x%016" PRIx64 "\",\n", oracle);
    std::fprintf(f, "    \"degree\": %zu,\n", kDegree);
    std::fprintf(f, "    \"tiers_exercised\": \"%s\",\n", tiers.c_str());
    for (size_t i = 0; i < kFamilyCount; ++i) {
        std::fprintf(f,
                     "    \"%s\": {\"scalar_wall_ms\": %.3f, "
                     "\"vector_wall_ms\": %.3f, \"speedup\": %.2f}%s\n",
                     kFamilies[i].name, scalar_ms[i], vector_ms[i],
                     scalar_ms[i] / vector_ms[i],
                     i + 1 < kFamilyCount ? "," : "");
    }
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);

    std::fprintf(stderr, "[kernels] tiers %s, fingerprint 0x%016" PRIx64
                         "\n",
                 tiers.c_str(), oracle);
    for (size_t i = 0; i < kFamilyCount; ++i)
        std::fprintf(stderr, "[kernels] %-18s scalar %8.3f ms  vector "
                             "%8.3f ms  x%.2f\n",
                     kFamilies[i].name, scalar_ms[i], vector_ms[i],
                     scalar_ms[i] / vector_ms[i]);
    std::printf("wrote %s\n", path);
    return 0;
}

} // namespace
} // namespace effact

int
main(int argc, char **argv)
{
    return effact::emit(argc > 1 ? argv[1] : "BENCH_kernels.json");
}
