/**
 * @file
 * Table VI — FPGA resource comparison: FAB and Poseidon (published) vs
 * our FPGA-EFFACT resource model on the VCU128.
 */
#include "bench_common.h"
#include "model/area_power.h"

using namespace effact;

int
main()
{
    Table table("Table VI — FPGA resource comparison");
    table.header({"work", "platform", "LUT", "FF", "BRAM", "URAM", "DSP"});
    table.row({"FAB", "Xilinx U280", "899K", "2073K", "3840", "960",
               "5120"});
    table.row({"Poseidon", "Xilinx U280", "728K", "915K", "2048", "-",
               "8640"});

    FpgaResources r = estimateFpga(HardwareConfig::fpgaEffact());
    table.row({"FPGA-EFFACT", "Xilinx VCU128",
               Table::num(r.lut / 1e3, 4) + "K",
               Table::num(r.ff / 1e3, 4) + "K", Table::num(r.bram, 4),
               Table::num(r.uram, 4), Table::num(r.dsp, 4)});
    table.print();

    std::puts("Paper reference (Table VI): FPGA-EFFACT 1246K LUT /");
    std::puts("2096K FF / 1343 BRAM / 864 URAM / 8212 DSP. BRAM+URAM");
    std::puts("exceed 50% despite 7.6 MB because the residue mapping");
    std::puts("uses 256 of 1024/4096 array rows (Sec. VI-A).");
    return 0;
}
