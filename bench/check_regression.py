#!/usr/bin/env python3
"""Gate a perf-lane JSON against its checked-in baseline.

Understands three schemas, dispatched on the "schema" field (current
and baseline must agree):

- effact-bench-sweep-v1 (bench_perf_lane -> BENCH_sweep.json vs
  bench/baseline.json): simulator throughput + the fig11 preset x SRAM
  grid + the per-optimization win matrix (opt_wins), including per-job
  cycles/fingerprint matching.

- effact-bench-latency-v1 (bench_compile_latency ->
  BENCH_compile_latency.json vs bench/baseline_latency.json): the
  single-big-job within-job-parallelism latency measurement.

- effact-bench-kernels-v1 (bench_kernels -> BENCH_kernels.json vs
  bench/baseline_kernels.json): the SIMD kernel-tier microbench. The
  binary itself aborts if any vector tier's outputs differ from the
  scalar oracle; the exact `kernels.fingerprint` field additionally
  pins the oracle's semantics across commits and machines.

Two classes of comparison:

- Deterministic fields (simulated cycles, machine-code fingerprints,
  job/cache counts): the simulator and compiler are bit-deterministic,
  so these must match the baseline *exactly* on any machine. A mismatch
  means compiler or simulator behavior changed — if intended, regenerate
  the baseline deliberately with bench/regen_baseline.sh and commit it
  with the change that moved the numbers.

- Wall-clock fields (`*_wall_ms` / `wall_ms`): machine-dependent and
  noisy. The gate fails only on a regression beyond the threshold
  (default 25%; override with EFFACT_PERF_THRESHOLD=<fraction> or
  --threshold for noisy runners). Improvements are reported, never
  failed, so the recorded trajectory can drift downward freely.

Exit status: 0 clean, 1 regression/mismatch, 2 usage or schema error.

Usage: check_regression.py <current.json> <baseline.json> [--threshold F]

Stdlib only — runs anywhere CI has a python3.
"""

import argparse
import json
import os
import sys


def fail(msg):
    print(f"FAIL: {msg}")
    return 1


def get(tree, dotted):
    node = tree
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(dotted)
        node = node[part]
    return node


# Per-schema key lists: deterministic scalars compared exactly,
# wall-clock scalars gated by the threshold, and whether the schema
# carries the fig11 per-job results array.
SCHEMAS = {
    "effact-bench-sweep-v1": {
        "exact": [
            "sim_speed.instructions",
            "sim_speed.cycles",
            "fig11_grid.jobs",
            "fig11_grid.cache.lookups",
            "fig11_grid.cache.middle_end_runs",
            "fig11_grid.cache.frontend_skipped",
            "opt_wins.jobs",
        ],
        "wall": [
            "sim_speed.sim_wall_ms",
            "sim_speed.compile_wall_ms",
            "fig11_grid.wall_ms",
        ],
        "grid": True,
        "wins": True,
    },
    # The latency bench itself aborts if any jobThreads setting moves a
    # bit, so the exact keys here re-check the *cross-run* invariant:
    # this commit produces the same machine code and cycle count as the
    # baseline commit. The speedup ratio is recorded but not gated — it
    # measures the runner's core count, not the code.
    "effact-bench-latency-v1": {
        "exact": [
            "compile_latency.instructions",
            "compile_latency.cycles",
            "compile_latency.fingerprint",
        ],
        "wall": [
            "compile_latency.serial_wall_ms",
            "compile_latency.parallel_wall_ms",
        ],
        "grid": False,
    },
    # The kernel bench gates the scalar-vs-vector microbench walls and
    # the cross-tier output fingerprint. `tiers_exercised` and the
    # per-family speedup ratios are recorded but not gated: they
    # describe the runner (which vector tiers its CPU has), not the
    # code.
    "effact-bench-kernels-v1": {
        "exact": [
            "kernels.fingerprint",
            "kernels.degree",
        ],
        "wall": [
            "kernels.ntt_forward.scalar_wall_ms",
            "kernels.ntt_forward.vector_wall_ms",
            "kernels.ntt_inverse.scalar_wall_ms",
            "kernels.ntt_inverse.vector_wall_ms",
            "kernels.pointwise_mul.scalar_wall_ms",
            "kernels.pointwise_mul.vector_wall_ms",
            "kernels.bconv.scalar_wall_ms",
            "kernels.bconv.vector_wall_ms",
            "kernels.bconv_montgomery.scalar_wall_ms",
            "kernels.bconv_montgomery.vector_wall_ms",
        ],
        "grid": False,
    },
}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument(
        "--threshold",
        type=float,
        # `or "0.25"` also covers the env var exported as an empty
        # string (CI does that when the repo variable is unset).
        default=float(os.environ.get("EFFACT_PERF_THRESHOLD") or "0.25"),
        help="max tolerated wall-clock regression as a fraction "
        "(default 0.25 = 25%%; env: EFFACT_PERF_THRESHOLD)",
    )
    args = parser.parse_args()

    try:
        with open(args.current) as f:
            current = json.load(f)
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"ERROR: {exc}")
        return 2

    for tree, name in ((current, args.current), (baseline, args.baseline)):
        if tree.get("schema") not in SCHEMAS:
            print(f"ERROR: {name}: unknown schema {tree.get('schema')!r}")
            return 2
    if current.get("schema") != baseline.get("schema"):
        print(
            f"ERROR: schema mismatch: {current.get('schema')!r} vs "
            f"baseline {baseline.get('schema')!r}"
        )
        return 2
    schema = SCHEMAS[current["schema"]]

    status = 0

    for key in schema["exact"]:
        try:
            cur, base = get(current, key), get(baseline, key)
        except KeyError:
            status |= fail(f"{key}: missing")
            continue
        if cur != base:
            status |= fail(
                f"{key}: {cur} != baseline {base} (deterministic field "
                "changed; regenerate the baseline if intended)"
            )
        else:
            print(f"ok   {key}: {cur}")

    if schema["grid"]:
        # Per-job deterministic results, matched by (name, sram_mb).
        def job_map(tree, name):
            jobs = {}
            for job in get(tree, "fig11_grid.results"):
                jobs[(job["name"], job["sram_mb"])] = job
            return jobs

        cur_jobs, base_jobs = job_map(current, "current"), job_map(
            baseline, "baseline"
        )
        if set(cur_jobs) != set(base_jobs):
            status |= fail(
                f"grid shape changed: "
                f"{sorted(set(cur_jobs) ^ set(base_jobs))}"
            )
        for key in sorted(set(cur_jobs) & set(base_jobs)):
            cur, base = cur_jobs[key], base_jobs[key]
            for field in ("cycles", "fingerprint"):
                if cur.get(field) != base.get(field):
                    status |= fail(
                        f"{key[0]}/sram{key[1]}.{field}: "
                        f"{cur.get(field)} != baseline {base.get(field)}"
                    )
        if not status:
            print(
                f"ok   {len(cur_jobs)} grid jobs: cycles + fingerprints "
                "match"
            )

    if schema.get("wins"):
        # Per-optimization win rows, matched by (workload, opt, sram_mb).
        # The binary already asserts each optimization strictly improves
        # somewhere; this re-checks the measured numbers are the ones the
        # baseline commit recorded.
        def win_map(tree):
            rows = {}
            for row in get(tree, "opt_wins.results"):
                rows[(row["workload"], row["opt"], row["sram_mb"])] = row
            return rows

        cur_rows, base_rows = win_map(current), win_map(baseline)
        if set(cur_rows) != set(base_rows):
            status |= fail(
                f"opt_wins shape changed: "
                f"{sorted(set(cur_rows) ^ set(base_rows))}"
            )
        for key in sorted(set(cur_rows) & set(base_rows)):
            cur, base = cur_rows[key], base_rows[key]
            for field in ("cycles", "fingerprint"):
                if cur.get(field) != base.get(field):
                    status |= fail(
                        f"{key[0]}/{key[1]}/sram{key[2]}.{field}: "
                        f"{cur.get(field)} != baseline {base.get(field)}"
                    )
        if not status:
            print(
                f"ok   {len(cur_rows)} opt-win rows: cycles + "
                "fingerprints match"
            )

    for key in schema["wall"]:
        try:
            cur, base = get(current, key), get(baseline, key)
        except KeyError:
            status |= fail(f"{key}: missing")
            continue
        ratio = cur / base if base > 0 else float("inf")
        if ratio > 1.0 + args.threshold:
            status |= fail(
                f"{key}: {cur:.1f} ms vs baseline {base:.1f} ms "
                f"(+{(ratio - 1) * 100:.1f}% > {args.threshold * 100:.0f}% "
                "budget; EFFACT_PERF_THRESHOLD overrides on noisy runners)"
            )
        else:
            print(
                f"ok   {key}: {cur:.1f} ms vs baseline {base:.1f} ms "
                f"({(ratio - 1) * 100:+.1f}%)"
            )

    print("perf gate:", "FAILED" if status else "clean")
    return status


if __name__ == "__main__":
    sys.exit(main())
