/**
 * @file
 * Single-big-job latency bench: one paper-scale bootstrapping job
 * (Table III row 1, full preset, 27 MB SRAM) compiled and simulated
 * serially and with within-job parallelism (`jobThreads` 2 and 8), the
 * knob PR 7 added for exactly this shape — a batch too small for the
 * sweep engine's job-level parallelism to help.
 *
 * Two roles:
 *
 * - Determinism gate (hard): cycles, machine-code fingerprint and
 *   instruction count must be identical at every `jobThreads` setting.
 *   A divergence aborts the bench — the bit-identical contract is what
 *   makes the knob safe to flip in CI and production alike.
 *
 * - Latency trajectory (soft): per-setting wall clock plus the
 *   middle/backend/sim stage split go to `BENCH_compile_latency.json`
 *   for `bench/check_regression.py` to gate against
 *   `bench/baseline_latency.json` (deterministic fields exactly,
 *   wall-clock within EFFACT_PERF_THRESHOLD). The speedup itself is
 *   reported, not gated: it is a property of the runner's core count.
 *
 * Usage: bench_compile_latency [output.json]
 *        (default: BENCH_compile_latency.json)
 */
#include <chrono>
#include <cinttypes>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"

namespace effact {
namespace {

using Clock = std::chrono::steady_clock;

double
msSince(const Clock::time_point &t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

struct LatencyRun
{
    size_t jobThreads = 0;
    double wallMs = 0; ///< best of `kReps` end-to-end runs
    double middleMs = 0;
    double backendMs = 0;
    double simMs = 0;
    double cycles = 0;
    u64 fingerprint = 0;
    size_t instructions = 0;
};

constexpr int kReps = 2;

/** One full compile+simulate of the paper-scale job at a fixed
 *  within-job width, best-of-`kReps` wall clock. */
LatencyRun
measure(size_t job_threads)
{
    LatencyRun run;
    run.jobThreads = job_threads;
    run.wallMs = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
        SweepOptions opts;
        opts.threads = 1; // one job: job-level parallelism cannot help
        opts.verifyLevel = 0;
        opts.jobThreads = job_threads;
        SweepEngine engine(opts);
        engine.submit("bootstrapping/full/sram27",
                      [] { return buildBootstrapping(paperFhe()); },
                      HardwareConfig::asicEffact27(),
                      Platform::fullOptions(
                          HardwareConfig::asicEffact27().sramBytes));
        const Clock::time_point t0 = Clock::now();
        const SweepResult &r = engine.runAll().front();
        const double wall = msSince(t0);
        run.cycles = r.platform.sim.cycles;
        run.fingerprint = r.platform.machineFingerprint;
        run.instructions = r.platform.sim.instructions;
        if (wall < run.wallMs) {
            run.wallMs = wall;
            run.middleMs = r.platform.jobStats.get("job.middle.ms");
            run.backendMs = r.platform.jobStats.get("job.backend.ms");
            run.simMs = r.platform.jobStats.get("job.sim.ms");
        }
    }
    return run;
}

int
emit(const char *path)
{
    // Same rule as the perf lane: a verified compile is a different
    // workload than the one the baseline was recorded from.
    EFFACT_ASSERT(defaultVerifyLevel() == 0,
                  "latency bench refuses to run with EFFACT_VERIFY set: "
                  "verification would pollute the recorded wall-clock");

    const std::vector<size_t> widths = {1, 2, 8};
    std::vector<LatencyRun> runs;
    runs.reserve(widths.size());
    for (size_t w : widths)
        runs.push_back(measure(w));

    // The determinism contract, enforced before anything is written:
    // within-job width must not move a single output bit.
    const LatencyRun &serial = runs.front();
    for (const LatencyRun &run : runs) {
        EFFACT_ASSERT(run.fingerprint == serial.fingerprint &&
                          run.cycles == serial.cycles &&
                          run.instructions == serial.instructions,
                      "jobThreads=%zu diverged from serial: fp "
                      "0x%016" PRIx64 " vs 0x%016" PRIx64
                      ", cycles %.0f vs %.0f",
                      run.jobThreads, run.fingerprint, serial.fingerprint,
                      run.cycles, serial.cycles);
    }

    const LatencyRun &wide = runs.back();
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"effact-bench-latency-v1\",\n");
    std::fprintf(f, "  \"compile_latency\": {\n");
    std::fprintf(f, "    \"job\": \"bootstrapping/full/sram27\",\n");
    std::fprintf(f, "    \"instructions\": %zu,\n", serial.instructions);
    std::fprintf(f, "    \"cycles\": %.0f,\n", serial.cycles);
    std::fprintf(f, "    \"fingerprint\": \"0x%016" PRIx64 "\",\n",
                 serial.fingerprint);
    std::fprintf(f, "    \"serial_wall_ms\": %.3f,\n", serial.wallMs);
    std::fprintf(f, "    \"parallel_wall_ms\": %.3f,\n", wide.wallMs);
    std::fprintf(f, "    \"speedup\": %.3f,\n",
                 serial.wallMs / wide.wallMs);
    std::fprintf(f, "    \"runs\": [\n");
    for (size_t i = 0; i < runs.size(); ++i) {
        const LatencyRun &run = runs[i];
        std::fprintf(f,
                     "      {\"job_threads\": %zu, \"wall_ms\": %.3f, "
                     "\"middle_ms\": %.3f, \"backend_ms\": %.3f, "
                     "\"sim_ms\": %.3f}%s\n",
                     run.jobThreads, run.wallMs, run.middleMs,
                     run.backendMs, run.simMs,
                     i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n");
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);

    std::fprintf(stderr,
                 "[latency] %zu insts, %.0f cycles | serial %.1f ms, "
                 "jobThreads=8 %.1f ms (%.2fx) | outputs bit-identical "
                 "at every width\n",
                 serial.instructions, serial.cycles, serial.wallMs,
                 wide.wallMs, serial.wallMs / wide.wallMs);
    std::printf("wrote %s\n", path);
    return 0;
}

} // namespace
} // namespace effact

int
main(int argc, char **argv)
{
    return effact::emit(argc > 1 ? argv[1] : "BENCH_compile_latency.json");
}
