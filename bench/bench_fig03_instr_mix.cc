/**
 * @file
 * Fig. 3 — residue-polynomial instruction mix of DBLookup, ResNet-20,
 * HELR and fully-packed bootstrapping: NTT vs AUTO vs normal MULT/ADD
 * vs BConv MULT/ADD.
 */
#include "bench_common.h"

using namespace effact;

int
main()
{
    Table table("Fig. 3 — residue-polynomial instruction mix (%)");
    table.header({"benchmark", "NTT", "AUTO", "MULT", "ADD", "BC_MULT",
                  "BC_ADD", "total insts"});

    for (auto &[name, w] : buildAllBenchmarks(paperFhe())) {
        StatSet mix = w.program.opMix();
        // Compute-instruction population, as in the paper's IR counts.
        double total = 0;
        for (const char *key : {"NTT", "AUTO", "MULT", "ADD", "BC_MULT",
                                "BC_ADD", "MAC", "BC_MAC"})
            total += mix.get(key);
        auto pct = [&](double v) { return Table::num(100.0 * v / total, 3); };
        table.row({name, pct(mix.get("NTT")), pct(mix.get("AUTO")),
                   pct(mix.get("MULT") + mix.get("MAC")),
                   pct(mix.get("ADD")),
                   pct(mix.get("BC_MULT") + mix.get("BC_MAC")),
                   pct(mix.get("BC_ADD")), Table::num(total, 8)});
    }
    table.print();

    std::puts("Paper reference (Fig. 3): NTT 6.5-7% of instructions;");
    std::puts("MULT+ADD ~90%, of which ~52.7% of MULTs and ~51.6% of");
    std::puts("ADDs belong to BConv in HELR/bootstrapping.");
    return 0;
}
