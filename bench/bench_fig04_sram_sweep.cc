/**
 * @file
 * Fig. 4 — impact of on-chip SRAM size on FU utilization, DRAM
 * bandwidth utilization and total bootstrapping runtime (turning
 * points at 27 MB and 54 MB in the paper).
 */
#include "bench_common.h"

using namespace effact;

int
main()
{
    Table table("Fig. 4 — SRAM size sweep (fully-packed bootstrapping)");
    table.header({"SRAM (MB)", "NTT util", "MULT/ADD util", "DRAM util",
                  "runtime (ms)", "DRAM (GB)"});

    for (size_t mb : {7, 14, 27, 54, 108, 162}) {
        HardwareConfig hw = HardwareConfig::asicEffact27();
        hw.sramBytes = mb << 20;
        PlatformResult r = runOn(hw, buildBootstrapping(paperFhe()));
        table.row({Table::num(double(mb), 3), Table::num(r.sim.nttUtil, 3),
                   Table::num(r.sim.mulAddUtil, 3),
                   Table::num(r.sim.dramUtil, 3),
                   Table::num(r.benchTimeMs, 4),
                   Table::num(r.dramGb, 4)});
    }
    table.print();

    std::puts("Paper reference (Fig. 4): runtime and DRAM utilization");
    std::puts("improve steeply up to ~27 MB and flatten past ~54 MB;");
    std::puts("MULT/ADD units stay <= 50% utilized.");
    return 0;
}
