/**
 * @file
 * Table IV — ASIC-EFFACT area/power breakdown from the analytic model
 * (calibrated at the component level, then validated against totals).
 */
#include "bench_common.h"
#include "model/area_power.h"

using namespace effact;

int
main()
{
    ChipCost cost = estimateAsic(HardwareConfig::asicEffact27());
    Table table("Table IV — ASIC-EFFACT breakdown (28 nm)");
    table.header({"component", "area (mm^2)", "power (W)"});
    for (const auto &c : cost.components)
        table.row({c.name, Table::num(c.areaMm2, 4),
                   Table::num(c.powerW, 4)});
    table.row({"TOTAL", Table::num(cost.totalAreaMm2, 4),
               Table::num(cost.totalPowerW, 4)});
    table.print();

    std::puts("Paper reference (Table IV): NTTU 37.13/21.16,");
    std::puts("MADDU 3.59/3.51, MMULU 18.21/10.12, AUTOU 4.65/4.88,");
    std::puts("SRAM 81.50/43.14, HBM 29.60/31.80, Others 37.20/21.13;");
    std::puts("total 211.9 mm^2 / 135.7 W.");
    return 0;
}
