/**
 * @file
 * Table V — ASIC resource comparison with technology scaling to 28 nm
 * (HBM kept unscaled), plus the relative-area ratios the paper quotes.
 */
#include "bench_common.h"
#include "model/baselines.h"
#include "model/area_power.h"

using namespace effact;

int
main()
{
    ChipCost effact = estimateAsic(HardwareConfig::asicEffact27());

    Table table("Table V — ASIC resource comparison");
    table.header({"design", "tech", "freq (GHz)", "area (mm^2)",
                  "power (W)", "area@28nm", "EFFACT/base area"});
    for (const char *name : {"F1", "BTS", "CraterLake", "ARK",
                             "CL+MAD-32"}) {
        const BaselineSpec &b = baseline(name);
        table.row({b.name, techName(b.tech), Table::num(b.freqGhz, 3),
                   Table::num(b.areaMm2, 4), Table::num(b.powerW, 4),
                   Table::num(b.scaledAreaMm2(), 4),
                   Table::num(effact.totalAreaMm2 / b.scaledAreaMm2(),
                              3)});
    }
    table.row({"ASIC-EFFACT", "28nm", "0.5",
               Table::num(effact.totalAreaMm2, 4),
               Table::num(effact.totalPowerW, 4),
               Table::num(effact.totalAreaMm2, 4), "1"});
    table.print();

    std::puts("Paper reference (Table V): ASIC-EFFACT needs 0.783x,");
    std::puts("0.153x, 0.257x, 0.137x, 0.414x the area of F1, BTS,");
    std::puts("CraterLake, ARK, CL+MAD-32 after scaling to 28 nm.");
    return 0;
}
