/**
 * @file
 * Simulator-throughput benchmark: compiles the paper-scale fully-packed
 * bootstrapping trace (logN = 16, L = 24, ~150k machine instructions)
 * and measures both issue cores — the legacy O(n * window) rescan loop
 * (`Simulator::runReference`) and the event-driven dependence-graph
 * core (`Simulator::run`) — in simulated instructions per second.
 * Verifies cycle-count equivalence while at it. Results are recorded
 * in bench/NOTES.md.
 */
#include <chrono>
#include <cstdio>
#include <functional>

#include "bench_common.h"

namespace effact {
namespace {

double
secondsOf(const std::function<SimReport()> &fn, SimReport &out,
          int reps)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        out = fn();
        auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

int
run()
{
    std::printf("# Simulator throughput on the paper-scale "
                "bootstrapping trace (logN=16, L=24)\n");
    Workload w = buildBootstrapping(paperFhe());
    HardwareConfig hw = HardwareConfig::asicEffact27();
    Compiler compiler(Platform::fullOptions(hw.sramBytes));

    auto c0 = std::chrono::steady_clock::now();
    MachineProgram mp = compiler.compile(w.program);
    auto c1 = std::chrono::steady_clock::now();
    const double n = double(mp.insts.size());
    std::printf("trace: %zu machine instructions (compile %.2f s)\n",
                mp.insts.size(),
                std::chrono::duration<double>(c1 - c0).count());

    Simulator sim(hw);
    SimReport ref, ev;
    const double t_ref =
        secondsOf([&] { return sim.runReference(mp); }, ref, 3);
    const double t_ev = secondsOf([&] { return sim.run(mp); }, ev, 3);

    Table t("simulator throughput");
    t.header({"issue core", "time [s]", "insts/s", "cycles"});
    t.row({"legacy rescan loop", Table::num(t_ref, 3),
           Table::num(n / t_ref, 4), Table::num(ref.cycles, 9)});
    t.row({"event-driven (DepGraph)", Table::num(t_ev, 3),
           Table::num(n / t_ev, 4), Table::num(ev.cycles, 9)});
    t.print();
    std::printf("speedup: %.2fx (best of 3 each)\n", t_ref / t_ev);

    if (ev.cycles != ref.cycles || ev.dramBytes != ref.dramBytes) {
        std::printf("ERROR: issue cores disagree (%.0f vs %.0f cycles)\n",
                    ev.cycles, ref.cycles);
        return 1;
    }
    std::printf("cycle counts identical across both cores\n");
    return 0;
}

} // namespace
} // namespace effact

int
main()
{
    return effact::run();
}
