#!/usr/bin/env bash
# Regenerate bench/baseline.json, bench/baseline_latency.json and
# bench/baseline_kernels.json, the perf-gate references for the CI
# `perf` job. Run this deliberately when compiler/simulator/kernel
# behavior changes move the deterministic fields (cycles,
# fingerprints), and commit the results together with the change that
# moved them.
#
# Wall-clock fields are machine-dependent: numbers produced here come
# from *this* machine. If the CI runner class is slower, either leave
# generous headroom by hand (the checked-in baseline pads wall_ms for
# exactly this reason — see bench/NOTES.md) or set
# EFFACT_PERF_THRESHOLD on the repository for the noisy-runner case.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-perf}
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DEFFACT_BUILD_TESTS=OFF \
  -DEFFACT_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j \
  --target bench_perf_lane bench_compile_latency bench_kernels
"$BUILD_DIR"/bench/bench_perf_lane bench/baseline.json
python3 bench/check_regression.py bench/baseline.json bench/baseline.json
"$BUILD_DIR"/bench/bench_compile_latency bench/baseline_latency.json
python3 bench/check_regression.py bench/baseline_latency.json \
  bench/baseline_latency.json
"$BUILD_DIR"/bench/bench_kernels bench/baseline_kernels.json
python3 bench/check_regression.py bench/baseline_kernels.json \
  bench/baseline_kernels.json
echo "wrote bench/baseline.json + bench/baseline_latency.json +" \
  "baseline_kernels.json — review wall_ms headroom before committing"
