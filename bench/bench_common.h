/**
 * @file
 * Shared helpers for the table/figure benchmark harnesses.
 */
#ifndef EFFACT_BENCH_COMMON_H
#define EFFACT_BENCH_COMMON_H

#include "common/table.h"
#include "platform/platform.h"

namespace effact {

/** Compile + simulate a fresh copy of a workload builder's output. */
inline PlatformResult
runOn(const HardwareConfig &hw, Workload workload)
{
    Platform platform(hw, Platform::fullOptions(hw.sramBytes));
    return platform.run(workload);
}

/** Paper-scale CKKS parameters (Table III row 1). */
inline FheParams
paperFhe()
{
    return FheParams{}; // logN=16, L=24, dnum=4, lanes=1024
}

} // namespace effact

#endif // EFFACT_BENCH_COMMON_H
