/**
 * @file
 * Shared helpers for the table/figure benchmark harnesses.
 */
#ifndef EFFACT_BENCH_COMMON_H
#define EFFACT_BENCH_COMMON_H

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/table.h"
#include "platform/platform.h"
#include "runtime/sweep.h"

namespace effact {

/**
 * Whether the grid benches should share a `CompileCache` across their
 * sweep jobs. On by default; `EFFACT_COMPILE_CACHE=0` disables it,
 * which is how the byte-identical-stdout claim is checked by hand
 * (`diff <(bench) <(EFFACT_COMPILE_CACHE=0 bench)`). The figure tables
 * never mention the cache, so stdout is identical either way; cache
 * notes go to stderr.
 */
inline bool
compileCacheEnabled()
{
    const char *env = std::getenv("EFFACT_COMPILE_CACHE");
    return env == nullptr || std::strcmp(env, "0") != 0;
}

/** Stderr one-liner of a shared cache's hit accounting. */
inline void
reportCacheStats(const CompileCache &cache)
{
    const StatSet s = cache.statsSnapshot();
    std::fprintf(stderr,
                 "[cache] %.0f lookups, %.0f hits, %.0f middle-end "
                 "run(s), %.0f frontend skip(s)\n",
                 s.get("cache.lookups"), s.get("cache.hits"),
                 s.get("cache.misses"), s.get("cache.frontend_skipped"));
}

/** Compile + simulate a fresh copy of a workload builder's output. */
inline PlatformResult
runOn(const HardwareConfig &hw, Workload workload)
{
    Platform platform(hw, Platform::fullOptions(hw.sramBytes));
    return platform.run(workload);
}

/**
 * Runs a populated sweep engine and reports batch wall-clock on stderr
 * (never stdout: figure tables must stay byte-identical at any
 * `EFFACT_THREADS` setting).
 */
inline const std::vector<SweepResult> &
runTimed(SweepEngine &engine)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point t0 = Clock::now();
    const std::vector<SweepResult> &results = engine.runAll();
    const std::chrono::duration<double> seconds = Clock::now() - t0;
    std::fprintf(stderr, "[sweep] %zu jobs on %zu worker(s): %.2f s\n",
                 engine.jobCount(), engine.workersUsed(), seconds.count());
    return results;
}

/** Paper-scale CKKS parameters (Table III row 1). */
inline FheParams
paperFhe()
{
    return FheParams{}; // logN=16, L=24, dnum=4, lanes=1024
}

} // namespace effact

#endif // EFFACT_BENCH_COMMON_H
