#!/usr/bin/env python3
"""Doc-integrity gate: keep the markdown honest.

Three checks, all stdlib-only:

1. Links: every relative markdown link in README.md, docs/, and
   bench/NOTES.md resolves to an existing file or directory (external
   http(s)/mailto links and pure #anchors are skipped; an anchor on a
   local link is checked against the target file's headings).

2. Snippets: every fenced code block tagged ``cpp`` in docs/*.md is a
   self-contained translation unit and must compile (`-fsyntax-only
   -std=c++17`) against the library headers. By default that is the
   in-tree `src/` layout; CI additionally re-runs against the
   installed-header prefix produced for the examples/installed-consumer
   smoke (the include layout is identical by design, so docs stay
   correct for external consumers too). Blocks tagged anything else
   (``sh``, ``text``, ``cmake``...) are illustrative and not compiled.

3. Env vars: the README's `EFFACT_*` environment-variable table matches
   the getenv/os.environ call sites under src/, bench/, and examples/
   in both directions — no documented-but-dead variable, no
   implemented-but-undocumented one. (CMake option names like
   EFFACT_SANITIZE are cache variables, not process environment, and
   are out of scope by construction: only getenv-style reads count.)

Exit status: 0 clean, 1 any finding. Usage:

    tools/check_docs.py [--include DIR] [--compiler CXX]
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```(\w*)\s*$")
# Direct getenv plus the repo's typed wrappers (envThreadCount /
# envSize take the variable name as a string literal).
GETENV_RE = re.compile(
    r'(?:getenv|envThreadCount|envSize)\s*\(\s*"(EFFACT_[A-Z_]+)"')
PY_ENV_RE = re.compile(r'os\.environ\.get\("(EFFACT_[A-Z_]+)"')
TABLE_ROW_RE = re.compile(r"^\|\s*`(EFFACT_[A-Z_]+)`\s*\|")


def md_files():
    files = [os.path.join(REPO, "README.md"),
             os.path.join(REPO, "bench", "NOTES.md")]
    docs = os.path.join(REPO, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                files.append(os.path.join(docs, name))
    return [f for f in files if os.path.isfile(f)]


def heading_anchors(path):
    """GitHub-style anchors for every markdown heading in `path`."""
    anchors = set()
    with open(path, encoding="utf-8") as f:
        for line in f:
            if not line.startswith("#"):
                continue
            text = line.lstrip("#").strip().lower()
            text = re.sub(r"[`*]", "", text)
            text = re.sub(r"[^\w\- ]", "", text)
            anchors.add(text.replace(" ", "-"))
    return anchors


def check_links():
    failures = []
    for path in md_files():
        base = os.path.dirname(path)
        rel = os.path.relpath(path, REPO)
        in_fence = False
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                if FENCE_RE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                for target in LINK_RE.findall(line):
                    if target.startswith(("http://", "https://",
                                          "mailto:")):
                        continue
                    file_part, _, anchor = target.partition("#")
                    dest = (os.path.normpath(os.path.join(base, file_part))
                            if file_part else path)
                    if not os.path.exists(dest):
                        failures.append(
                            f"{rel}:{lineno}: broken link {target!r}")
                    elif anchor and dest.endswith(".md"):
                        if anchor not in heading_anchors(dest):
                            failures.append(
                                f"{rel}:{lineno}: link {target!r} "
                                f"anchor #{anchor} not found")
    return failures


def cpp_snippets(path):
    """(start_line, code) for each ```cpp fence in `path`."""
    snippets, code, start, lang = [], None, 0, None
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            m = FENCE_RE.match(line)
            if m and code is None:
                lang, start, code = m.group(1), lineno, []
            elif m:
                if lang == "cpp":
                    snippets.append((start, "".join(code)))
                code = None
            elif code is not None:
                code.append(line)
    return snippets


def check_snippets(include_dirs, compiler):
    failures = []
    docs = os.path.join(REPO, "docs")
    targets = [p for p in md_files() if p.startswith(docs + os.sep)]
    count = 0
    for path in targets:
        rel = os.path.relpath(path, REPO)
        for start, code in cpp_snippets(path):
            count += 1
            with tempfile.NamedTemporaryFile(
                    mode="w", suffix=".cc", delete=False) as tu:
                tu.write(code)
                tu_path = tu.name
            cmd = [compiler, "-std=c++17", "-fsyntax-only"]
            for inc in include_dirs:
                cmd += ["-I", inc]
            cmd.append(tu_path)
            proc = subprocess.run(cmd, capture_output=True, text=True)
            os.unlink(tu_path)
            if proc.returncode != 0:
                failures.append(
                    f"{rel}:{start}: cpp snippet does not compile:\n"
                    f"{proc.stderr.strip()}")
    if not failures:
        print(f"ok   {count} cpp snippet(s) compile "
              f"(-I {' -I '.join(include_dirs)})")
    return failures


def check_env_table():
    # Only the environment-variable table counts: the CMake-option
    # table also lists `EFFACT_*` names, but those are cache variables,
    # not process environment.
    documented = set()
    in_env_table = False
    with open(os.path.join(REPO, "README.md"), encoding="utf-8") as f:
        for line in f:
            if line.startswith("|"):
                if "Environment variable" in line:
                    in_env_table = True
                elif in_env_table:
                    m = TABLE_ROW_RE.match(line)
                    if m:
                        documented.add(m.group(1))
            else:
                in_env_table = False

    implemented = set()
    for top in ("src", "bench", "examples"):
        for dirpath, _, names in os.walk(os.path.join(REPO, top)):
            for name in names:
                if not name.endswith((".cc", ".h", ".py")):
                    continue
                with open(os.path.join(dirpath, name),
                          encoding="utf-8") as f:
                    text = f.read()
                implemented |= set(GETENV_RE.findall(text))
                implemented |= set(PY_ENV_RE.findall(text))

    failures = []
    for var in sorted(implemented - documented):
        failures.append(
            f"README.md env-var table: {var} is read in the code but "
            "undocumented")
    for var in sorted(documented - implemented):
        failures.append(
            f"README.md env-var table: {var} is documented but no "
            "getenv call reads it")
    if not failures:
        print(f"ok   env-var table: {len(documented)} variables, "
              "both directions")
    return failures


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument(
        "--include", action="append", default=[],
        help="header dir for snippet compiles (default: <repo>/src; "
        "repeatable — CI also passes the installed prefix)")
    parser.add_argument("--compiler", default="c++")
    args = parser.parse_args()
    include_dirs = args.include or [os.path.join(REPO, "src")]

    failures = check_links()
    if not failures:
        print(f"ok   markdown links resolve ({len(md_files())} files)")
    failures += check_snippets(include_dirs, args.compiler)
    failures += check_env_table()

    for failure in failures:
        print(f"FAIL: {failure}")
    print("doc integrity:", "FAILED" if failures else "clean")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
