/**
 * @file
 * BGV DB-Lookup (Sec. VI-D): a client encrypts a one-hot query; the
 * server multiplies it against a plaintext database column and
 * aggregates — the record comes back encrypted, the server learns
 * nothing about which record was fetched.
 */
#include <cstdio>

#include "bgv/bgv.h"

using namespace effact;

int
main()
{
    BgvParams params; // N = 1024, t = 65537
    Rng rng(2024);
    BgvScheme bgv(params, rng);
    const size_t n = bgv.slots();

    // The database: record i holds a (toy) account balance.
    std::vector<u64> balances(n);
    for (size_t i = 0; i < n; ++i)
        balances[i] = (1000 + 37 * i) % bgv.plainModulus();

    // Client: encrypt the one-hot query for record 421.
    const size_t wanted = 421;
    std::vector<u64> query(n, 0);
    query[wanted] = 1;
    BgvCiphertext ct_query = bgv.encrypt(bgv.encode(query));

    // Server: select, then fold everything into slot set via rotations
    // (the encrypted result is non-zero only at the queried slot; the
    // rotation tree aggregates so the client can read slot 0).
    BgvCiphertext selected = bgv.multPlain(ct_query,
                                           bgv.encode(balances));
    BgvCiphertext folded = selected;
    for (size_t step = 1; step < 16; step <<= 1)
        folded = bgv.add(folded, bgv.rotate(folded, static_cast<int>(step)));

    // Client: decrypt.
    auto slots = bgv.decode(bgv.decrypt(selected));
    std::printf("queried record %zu -> balance %llu (expected %llu)\n",
                wanted, static_cast<unsigned long long>(slots[wanted]),
                static_cast<unsigned long long>(balances[wanted]));
    for (size_t i = 0; i < n; ++i) {
        if (i != wanted && slots[i] != 0) {
            std::printf("leak at slot %zu!\n", i);
            return 1;
        }
    }
    std::puts("all other slots decrypt to 0: nothing leaked.");
    return slots[wanted] == balances[wanted] ? 0 : 1;
}
