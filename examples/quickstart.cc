/**
 * @file
 * Quickstart: the two halves of the EFFACT platform in ~80 lines.
 *
 * 1. Functional CKKS: encrypt two vectors, multiply and rotate them
 *    homomorphically, decrypt, and check against plaintext math.
 * 2. Acceleration: lower an HMULT to the residue-polynomial IR, compile
 *    it with the EFFACT backend, and simulate it on ASIC-EFFACT.
 */
#include <cstdio>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "platform/platform.h"

using namespace effact;

int
main()
{
    // ---- 1. Functional CKKS --------------------------------------------
    CkksParams params;
    params.logN = 12;
    params.levels = 6;
    params.logScale = 40;
    CkksContext ctx(params);
    CkksEncoder encoder(ctx);
    Rng rng(7);
    KeyGenerator keygen(ctx, rng);
    SecretKey sk = keygen.genSecretKey();
    SwitchingKey relin = keygen.genRelinKey(sk);
    GaloisKeys galois = keygen.genGaloisKeys(sk, {1});
    CkksEncryptor enc(ctx, sk, rng);
    CkksEvaluator eval(ctx, encoder, &relin, &galois);

    const size_t slots = 8;
    std::vector<cplx> a = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<cplx> b = {0.5, 0.25, 2, 1, -1, 0.1, 3, -2};

    Ciphertext ca = enc.encrypt(encoder.encode(a, ctx.scale(),
                                               ctx.levels()));
    Ciphertext cb = enc.encrypt(encoder.encode(b, ctx.scale(),
                                               ctx.levels()));
    Ciphertext prod = eval.rescale(eval.mult(ca, cb));
    Ciphertext rotated = eval.rotate(prod, 1);

    auto out = encoder.decode(enc.decrypt(rotated), slots);
    std::puts("slot:  enc(a)*enc(b) rotated left by 1  (expected)");
    for (size_t i = 0; i < slots; ++i) {
        cplx expect = a[(i + 1) % slots] * b[(i + 1) % slots];
        std::printf("  %zu: %8.4f  (%8.4f)\n", i, out[i].real(),
                    expect.real());
    }

    // ---- 2. Compile + simulate at paper scale --------------------------
    FheParams fhe; // N = 2^16, L = 24, dnum = 4
    IrProgram prog;
    prog.name = "quickstart_hmult";
    KernelBuilder kb(prog, fhe);
    int evk = kb.switchingKeyObject("relin_key");
    IrCt x = kb.inputCiphertext("x", fhe.levels);
    IrCt y = kb.inputCiphertext("y", fhe.levels);
    kb.output("xy", kb.rescale(kb.hmult(x, y, evk)));

    Workload w;
    w.fhe = fhe;
    w.program = std::move(prog);

    HardwareConfig hw = HardwareConfig::asicEffact27();
    Platform platform(hw, Platform::fullOptions(hw.sramBytes));
    PlatformResult r = platform.run(w);
    std::printf("\nHMULT+rescale at N=2^16, L=24 on %s:\n",
                hw.name.c_str());
    std::printf("  %zu machine instructions, %.0f cycles, %.3f ms, "
                "%.2f GB DRAM\n",
                r.sim.instructions, r.sim.cycles, r.sim.timeMs,
                r.sim.dramBytes / 1e9);
    return 0;
}
