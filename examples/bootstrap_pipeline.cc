/**
 * @file
 * Bootstrapping end-to-end, both ways:
 *  - functionally, at laptop scale (N=256): refresh a level-1
 *    ciphertext and verify the message survives;
 *  - at paper scale (N=2^16, L=24), through the compiler and the
 *    cycle-level simulator, reporting the Table VII metrics.
 */
#include <cmath>
#include <cstdio>

#include "ckks/bootstrap.h"
#include "ckks/encryptor.h"
#include "platform/platform.h"

using namespace effact;

int
main()
{
    // ---- Functional refresh --------------------------------------------
    CkksParams params;
    params.logN = 8;
    params.levels = 16;
    params.logScale = 45;
    params.logQ0 = 54;
    params.hammingWeight = 16;
    CkksContext ctx(params);
    CkksEncoder encoder(ctx);
    Rng rng(31337);
    KeyGenerator keygen(ctx, rng);
    SecretKey sk = keygen.genSecretKey();
    SwitchingKey relin = keygen.genRelinKey(sk);
    CkksEncryptor enc(ctx, sk, rng);

    BootstrapConfig bcfg;
    bcfg.kRange = 8.0;
    bcfg.sineDegree = 159;

    CkksEvaluator probe(ctx, encoder, &relin, nullptr);
    Bootstrapper probe_boot(ctx, encoder, probe, bcfg);
    GaloisKeys galois = keygen.genGaloisKeys(
        sk, probe_boot.requiredRotations(), /*conjugate=*/true);
    CkksEvaluator eval(ctx, encoder, &relin, &galois);
    Bootstrapper boot(ctx, encoder, eval, bcfg);

    const size_t slots = ctx.slots();
    std::vector<cplx> msg(slots);
    for (size_t i = 0; i < slots; ++i)
        msg[i] = cplx(0.5 * std::sin(0.2 * double(i)), 0.0);

    Ciphertext ct = enc.encrypt(encoder.encode(msg, ctx.scale(), 1));
    std::printf("before: level %zu (exhausted)\n", ct.level());
    Ciphertext fresh = boot.bootstrap(ct);
    auto out = encoder.decode(enc.decrypt(fresh), slots);
    double err = 0;
    for (size_t i = 0; i < slots; ++i)
        err = std::max(err, std::abs(out[i] - msg[i]));
    std::printf("after: level %zu, max slot error %.2e\n", fresh.level(),
                err);

    // ---- Paper-scale simulation ----------------------------------------
    FheParams fhe; // Table III: N=2^16, L=24, dnum=4
    Workload w = buildBootstrapping(fhe);
    HardwareConfig hw = HardwareConfig::asicEffact27();
    Platform platform(hw, Platform::fullOptions(hw.sramBytes));
    PlatformResult r = platform.run(w);
    std::printf("\nfully-packed bootstrapping on %s:\n", hw.name.c_str());
    std::printf("  %.2f ms, %.2f GB DRAM, T_A.S. = %.4f us "
                "(paper: 0.0548 us)\n",
                r.benchTimeMs, r.dramGb, r.amortizedUs);
    return err < 1e-2 ? 0 : 1;
}
