/**
 * @file
 * Record/replay driver for the compile-and-simulate service. A session
 * log (written by `effact-serve --record`, or generated here with
 * `--make-demo`) is a raw client frame stream; this tool replays it
 *
 *   - offline through a fresh `ServiceCore` (default),
 *   - offline through the uncached serial oracle (`--oracle`), or
 *   - through a live daemon over its socket (`--connect`),
 *
 * printing one canonical result line per request to stdout. The
 * determinism contract makes all three modes print byte-identical
 * lines for the same log and admission configuration — which is
 * exactly what the CI smoke step diffs.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "platform/platform.h"
#include "service/service.h"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [mode] LOG [options]\n"
        "modes:\n"
        "  (default)        offline replay through a fresh service core\n"
        "  --oracle         offline replay, serial + uncached (the\n"
        "                   determinism oracle)\n"
        "  --connect SOCK   drive the log through a live daemon\n"
        "  --make-demo      write a 3-request demo log to LOG and exit\n"
        "options: --threads N --job-threads N --queue-depth N --batch N\n"
        "         --cache-bytes N --shutdown (with --connect: stop the\n"
        "         daemon after the log)\n",
        argv0);
}

bool
parseSize(const char *arg, size_t *out)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(arg, &end, 10);
    if (end == arg || *end != '\0')
        return false;
    *out = static_cast<size_t>(v);
    return true;
}

/** Three small db-lookup design points across ablation presets: enough
 *  to exercise request/flush framing, distinct middle-end cache keys
 *  and a deterministic diffable output, in well under a second. */
int
writeDemoLog(const std::string &path)
{
    effact::RequestLogWriter writer;
    std::string error;
    if (!writer.open(path, &error)) {
        std::fprintf(stderr, "effact-replay: %s\n", error.c_str());
        return 1;
    }
    const effact::HardwareConfig hw = effact::HardwareConfig::asicEffact27();
    const struct
    {
        const char *name;
        size_t records;
        effact::CompilerOptions copts;
    } requests[] = {
        {"demo-baseline-32", 32,
         effact::Platform::baselineOptions(hw.sramBytes)},
        {"demo-streaming-48", 48,
         effact::Platform::streamingOptions(hw.sramBytes)},
        {"demo-full-64", 64, effact::Platform::fullOptions(hw.sramBytes)},
    };
    uint64_t tag = 100;
    for (const auto &spec : requests) {
        effact::ServiceRequest req;
        req.tag = tag++;
        req.name = spec.name;
        req.workload = "dblookup";
        req.fhe.logN = 12;
        req.fhe.levels = 6;
        req.fhe.dnum = 2;
        req.param = spec.records;
        req.hw = hw;
        req.copts = spec.copts;
        writer.append(effact::FrameType::Request,
                      effact::encodeRequest(req));
    }
    writer.append(effact::FrameType::Flush, {});
    std::fprintf(stderr, "effact-replay: wrote 3-request demo log to %s\n",
                 path.c_str());
    return 0;
}

void
printResults(const std::vector<effact::ServiceResult> &results)
{
    for (const effact::ServiceResult &res : results)
        std::printf("%s\n", effact::canonicalResultLine(res).c_str());
}

int
replayLive(const std::vector<effact::Frame> &frames,
           const std::string &socket_path, bool shutdown_after)
{
    effact::ServiceClient client;
    std::string error;
    if (!client.connect(socket_path, &error)) {
        std::fprintf(stderr, "effact-replay: %s\n", error.c_str());
        return 1;
    }
    auto flush_and_print = [&](bool shutdown) {
        std::vector<effact::ServiceResult> results;
        const bool ok = shutdown
                            ? client.shutdownServer(&results, &error)
                            : client.flush(&results, &error);
        if (!ok) {
            std::fprintf(stderr, "effact-replay: %s\n", error.c_str());
            return false;
        }
        printResults(results);
        return true;
    };
    size_t outstanding = 0;
    bool saw_shutdown = false;
    for (const effact::Frame &frame : frames) {
        if (frame.type == effact::FrameType::Request) {
            effact::ServiceRequest req;
            if (!effact::decodeRequest(frame.payload, &req, &error)) {
                std::fprintf(stderr, "effact-replay: corrupt log: %s\n",
                             error.c_str());
                return 1;
            }
            if (!client.sendRequest(req, &error)) {
                std::fprintf(stderr, "effact-replay: %s\n", error.c_str());
                return 1;
            }
            ++outstanding;
        } else if (frame.type == effact::FrameType::Flush) {
            if (!flush_and_print(false))
                return 1;
            outstanding = 0;
        } else if (frame.type == effact::FrameType::Shutdown) {
            if (!flush_and_print(true))
                return 1;
            outstanding = 0;
            saw_shutdown = true;
            break;
        } else {
            std::fprintf(stderr,
                         "effact-replay: unexpected frame type in log\n");
            return 1;
        }
    }
    if (!saw_shutdown && (outstanding > 0 || shutdown_after) &&
        !flush_and_print(shutdown_after))
        return 1;
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string log_path;
    std::string socket_path;
    bool oracle = false;
    bool make_demo = false;
    bool live = false;
    bool shutdown_after = false;
    effact::ServiceOptions service;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        size_t n = 0;
        if (arg == "--oracle") {
            oracle = true;
        } else if (arg == "--make-demo") {
            make_demo = true;
        } else if (arg == "--connect") {
            live = true;
            socket_path = value();
        } else if (arg == "--shutdown") {
            shutdown_after = true;
        } else if (arg == "--threads" && parseSize(value(), &n)) {
            service.threads = n;
        } else if (arg == "--job-threads" && parseSize(value(), &n)) {
            service.jobThreads = n;
        } else if (arg == "--queue-depth" && parseSize(value(), &n)) {
            service.queueCapacity = n;
        } else if (arg == "--batch" && parseSize(value(), &n)) {
            service.batchSize = n;
        } else if (arg == "--cache-bytes" && parseSize(value(), &n)) {
            service.cacheBytes = n;
        } else if (arg.rfind("--", 0) == 0) {
            usage(argv[0]);
            return 2;
        } else if (log_path.empty()) {
            log_path = arg;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (log_path.empty()) {
        usage(argv[0]);
        return 2;
    }
    if (make_demo)
        return writeDemoLog(log_path);

    std::vector<effact::Frame> frames;
    std::string error;
    if (!effact::loadRequestLog(log_path, &frames, &error)) {
        std::fprintf(stderr, "effact-replay: %s\n", error.c_str());
        return 1;
    }
    if (live)
        return replayLive(frames, socket_path, shutdown_after);

    effact::ServiceCore core(oracle ? effact::oracleOptions(service)
                                    : service);
    effact::ReplayOutcome outcome;
    if (!effact::replayFrames(frames, core, &outcome, &error)) {
        std::fprintf(stderr, "effact-replay: %s\n", error.c_str());
        return 1;
    }
    printResults(outcome.results);
    std::fprintf(stderr,
                 "effact-replay: %zu requests, %zu results (%s mode)\n",
                 outcome.requests, outcome.results.size(),
                 oracle ? "oracle" : "service");
    return 0;
}
