/**
 * @file
 * The compile-and-simulate daemon: binds an AF_UNIX socket, accepts
 * framed requests (see `src/service/protocol.h`), batches them through
 * the shared `SweepEngine` with a bounded LRU `CompileCache` and
 * bounded-queue admission control, and streams results back in
 * submission order. `--record FILE` captures the client frame stream
 * as a replayable session log (see `effact-replay`).
 *
 *     effact-serve --socket /tmp/effact.sock --threads 4 \
 *                  --cache-bytes 8000000 --record session.log
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/service.h"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--socket PATH] [--threads N] [--job-threads N]\n"
        "          [--queue-depth N] [--batch N] [--cache-bytes N]\n"
        "          [--verify N] [--record FILE]\n"
        "\n"
        "Defaults: socket $EFFACT_SOCKET (or /tmp/effact.sock), threads\n"
        "$EFFACT_THREADS, queue depth $EFFACT_QUEUE_DEPTH (64), cache\n"
        "budget $EFFACT_CACHE_BYTES bytes (0 = unbounded).\n",
        argv0);
}

bool
parseSize(const char *arg, size_t *out)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(arg, &end, 10);
    if (end == arg || *end != '\0')
        return false;
    *out = static_cast<size_t>(v);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    effact::ServiceServerOptions opts;
    const char *env_socket = std::getenv("EFFACT_SOCKET");
    opts.socketPath =
        env_socket != nullptr ? env_socket : "/tmp/effact.sock";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        size_t n = 0;
        if (arg == "--socket") {
            opts.socketPath = value();
        } else if (arg == "--record") {
            opts.recordPath = value();
        } else if (arg == "--threads" && parseSize(value(), &n)) {
            opts.service.threads = n;
        } else if (arg == "--job-threads" && parseSize(value(), &n)) {
            opts.service.jobThreads = n;
        } else if (arg == "--queue-depth" && parseSize(value(), &n)) {
            opts.service.queueCapacity = n;
        } else if (arg == "--batch" && parseSize(value(), &n)) {
            opts.service.batchSize = n;
        } else if (arg == "--cache-bytes" && parseSize(value(), &n)) {
            opts.service.cacheBytes = n;
        } else if (arg == "--verify" && parseSize(value(), &n)) {
            opts.service.verifyLevel = int(n);
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    effact::ServiceServer server(std::move(opts));
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "effact-serve: %s\n", error.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "effact-serve: listening on %s (threads=%zu, "
                 "queue=%zu, cache=%zu bytes)\n",
                 server.socketPath().c_str(),
                 server.core().options().threads,
                 server.core().options().queueCapacity,
                 server.core().options().cacheBytes);
    server.run();

    const effact::StatSet stats = server.core().statsSnapshot();
    std::fprintf(stderr,
                 "effact-serve: done (accepted=%.0f rejected=%.0f "
                 "bad=%.0f batches=%.0f evictions=%.0f)\n",
                 stats.get("service.accepted"),
                 stats.get("service.rejected"),
                 stats.get("service.bad_requests"),
                 stats.get("service.batches"),
                 stats.get("cache.evictions"));
    return 0;
}
