/**
 * @file
 * HELR-style logistic-regression training on encrypted data (the
 * paper's Sec. V-A benchmark, at laptop scale): batch gradient descent
 * with a polynomial sigmoid, everything under CKKS. Reports training
 * accuracy after decryption (the paper reaches 96.67% after 30
 * iterations at full scale).
 */
#include <cmath>
#include <cstdio>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"

using namespace effact;

int
main()
{
    // Synthetic linearly separable data: y = sign(w*.x + noise).
    const size_t samples = 64;
    const size_t features = 4;
    Rng rng(99);
    std::vector<std::vector<double>> x(features,
                                       std::vector<double>(samples));
    std::vector<double> y(samples);
    const double w_true[features] = {1.5, -2.0, 0.7, 0.9};
    for (size_t s = 0; s < samples; ++s) {
        double z = 0;
        for (size_t f = 0; f < features; ++f) {
            x[f][s] = rng.uniformReal() * 2 - 1;
            z += w_true[f] * x[f][s];
        }
        y[s] = z + 0.1 * rng.gaussian(1.0) > 0 ? 1.0 : 0.0;
    }

    CkksParams params;
    params.logN = 12;
    params.levels = 14;
    params.logScale = 40;
    CkksContext ctx(params);
    CkksEncoder encoder(ctx);
    KeyGenerator keygen(ctx, rng);
    SecretKey sk = keygen.genSecretKey();
    SwitchingKey relin = keygen.genRelinKey(sk);
    CkksEncryptor enc(ctx, sk, rng);
    CkksEvaluator eval(ctx, encoder, &relin);

    // Encrypt each feature column (one sample per slot); labels stay in
    // plaintext on the aggregating side, as in HELR's batched layout.
    std::vector<Ciphertext> cx;
    for (size_t f = 0; f < features; ++f) {
        std::vector<cplx> col(samples);
        for (size_t s = 0; s < samples; ++s)
            col[s] = x[f][s];
        cx.push_back(enc.encrypt(encoder.encode(col, ctx.scale(),
                                                ctx.levels())));
    }

    // Plaintext-side weights updated from decrypted gradients would be
    // cheating; instead run the *whole* iteration homomorphically with
    // scalar weights folded in as constants (weights are public model
    // state here, data stays encrypted).
    std::vector<double> w(features, 0.0);
    const double lr = 1.0;
    const int iterations = 6;
    for (int it = 0; it < iterations; ++it) {
        // z = sum_f w_f * x_f  (ciphertext), then the HELR degree-3
        // sigmoid approximation sig(z) ~ 0.5 + 0.15*z - 0.0015*z^3.
        Ciphertext z = eval.rescale(
            eval.multConst(cx[0], cplx(w[0], 0), ctx.scale()));
        for (size_t f = 1; f < features; ++f) {
            Ciphertext term = eval.rescale(
                eval.multConst(cx[f], cplx(w[f], 0), ctx.scale()));
            z = eval.add(z, term);
        }
        Ciphertext z3 = eval.rescale(eval.mult(eval.rescale(eval.mult(z,
                                                                      z)),
                                               z));
        Ciphertext sig = eval.add(
            eval.addConst(
                eval.rescale(eval.multConst(z, cplx(0.15, 0),
                                            ctx.scale())),
                cplx(0.5, 0)),
            eval.rescale(eval.multConst(z3, cplx(-0.0015, 0),
                                        ctx.scale())));

        // Gradient g_f = mean((sig - y) * x_f): decrypt only the final
        // per-feature aggregate (model update), never the data.
        std::vector<cplx> yv(samples);
        for (size_t s = 0; s < samples; ++s)
            yv[s] = y[s];
        Ciphertext err = eval.sub(
            sig, enc.encrypt(encoder.encode(yv, sig.scale,
                                            sig.level())));
        for (size_t f = 0; f < features; ++f) {
            Ciphertext gx = eval.rescale(
                eval.mult(err, eval.levelTo(cx[f], err.level())));
            auto dec = encoder.decode(enc.decrypt(gx), samples);
            double g = 0;
            for (auto v : dec)
                g += v.real();
            g /= double(samples);
            w[f] -= lr * g;
        }
        std::printf("iter %d: w = [%6.3f %6.3f %6.3f %6.3f]\n", it, w[0],
                    w[1], w[2], w[3]);
    }

    // Training accuracy.
    size_t correct = 0;
    for (size_t s = 0; s < samples; ++s) {
        double z = 0;
        for (size_t f = 0; f < features; ++f)
            z += w[f] * x[f][s];
        correct += ((z > 0) == (y[s] > 0.5)) ? 1 : 0;
    }
    std::printf("training accuracy: %.2f%% (paper: 96.67%% at full "
                "scale)\n",
                100.0 * double(correct) / double(samples));
    return correct * 100 >= samples * 85 ? 0 : 1;
}
