/**
 * @file
 * The Fig. 2 toy study: key-switching inside HMULT compiled (a) with
 * plentiful SRAM, (b) with tiny SRAM and no streaming (MAD-style
 * spills), and (c) with tiny SRAM plus EFFACT's streaming memory
 * access — showing how streaming recovers most of the lost time.
 */
#include <cstdio>

#include "platform/platform.h"

using namespace effact;

namespace {

Workload
keySwitchWorkload()
{
    FheParams fhe;
    fhe.logN = 16;
    fhe.levels = 12;
    fhe.dnum = 4;
    Workload w;
    w.fhe = fhe;
    w.program.name = "keyswitch_toy";
    KernelBuilder kb(w.program, fhe);
    int evk = kb.switchingKeyObject("evk");
    IrCt a = kb.inputCiphertext("a", fhe.levels);
    IrCt b = kb.inputCiphertext("b", fhe.levels);
    kb.output("ab", kb.hmult(a, b, evk));
    return w;
}

void
report(const char *label, const PlatformResult &r)
{
    std::printf("%-38s %9.0f cycles  %6.2f GB DRAM  %5zu spills\n",
                label, r.sim.cycles, r.sim.dramBytes / 1e9,
                size_t(r.compilerStats.get("regalloc.spilledValues")));
}

} // namespace

int
main()
{
    HardwareConfig big = HardwareConfig::asicEffact27();
    big.sramBytes = size_t(256) << 20; // enough SRAM for everything

    HardwareConfig small = HardwareConfig::asicEffact27();
    small.sramBytes = size_t(6) << 20; // a handful of registers

    {
        Workload w = keySwitchWorkload();
        Platform p(big, Platform::fullOptions(big.sramBytes));
        report("(b) enormous SRAM:", p.run(w));
    }
    {
        Workload w = keySwitchWorkload();
        CompilerOptions o = Platform::madEnhancedOptions(small.sramBytes);
        Platform p(small, o);
        report("(c) small SRAM, no streaming (MAD):", p.run(w));
    }
    {
        Workload w = keySwitchWorkload();
        Platform p(small, Platform::fullOptions(small.sramBytes));
        report("(d) small SRAM + streaming (EFFACT):", p.run(w));
    }
    std::puts("\nLabels mirror Fig. 2(b)-(d): streaming lets the small-");
    std::puts("SRAM design approach the big-SRAM timing by feeding");
    std::puts("function units straight from DRAM.");
    return 0;
}
