/**
 * @file
 * Resource model of the EFFACT microarchitecture, split out of the
 * issue loop so function-unit classes, the MAC-on-NTT circuit reuse
 * (Sec. III-2) and streaming HBM overlap (Sec. IV-C) are testable in
 * isolation from issue-order policy. The simulator asks `plan()` what
 * issuing an instruction *would* cost under the current occupancy and
 * `commit()`s the chosen plan; the model tracks per-unit free times,
 * the HBM channel, and busy/traffic counters for the report.
 */
#ifndef EFFACT_SIM_RESOURCES_H
#define EFFACT_SIM_RESOURCES_H

#include <cstddef>
#include <vector>

#include "isa/isa.h"
#include "sim/config.h"

namespace effact {

/** Function-unit classes. */
enum FuClass { FU_NTT = 0, FU_MUL, FU_ADD, FU_AUTO, FU_CLASSES };

/**
 * Static shape of one instruction: everything the resource model needs
 * that does not depend on the machine state. Decoded once per
 * instruction instead of on every issue-candidate evaluation.
 */
struct InstShape
{
    int fu_class = -1;      ///< FuClass, or -1 for pure memory ops
    double occupancy = 0.0; ///< FU occupancy in cycles
    bool mac = false;       ///< may steer to the NTT units' MAC path
    bool stream_fill = false; ///< >=1 source streams from DRAM
    int extra_dram = 0;       ///< DRAM-streamed sources beyond the first
                              ///< (0-2: MMAC can stream all three)
};

/** A committed or prospective issue slot. */
struct IssuePlan
{
    double start = 0.0;
    double occupancy = 0.0;
    double dram_cycles = 0.0;
    int fu_class = -1; ///< -1 for pure memory ops
    int fu_inst = -1;
    bool uses_dram = false;
};

class ResourceModel
{
  public:
    /** Pipeline fill latency added to every instruction's finish. */
    static constexpr double kStartupCycles = 16.0;

    ResourceModel(const HardwareConfig &cfg, size_t residue_bytes);

    /** Decodes the state-independent shape of one instruction. */
    InstShape decode(const MachInst &mi) const;

    /** Caches decoded shapes for every instruction of `prog` so the
     *  index-based `plan`/`commit` overloads can be used. */
    void bind(const MachineProgram &prog);

    /** Cached shape of instruction `i` (valid after `bind`). */
    const InstShape &shape(size_t i) const { return shapes_[i]; }

    /**
     * Cost of issuing `shape` once its operands are ready at
     * `data_ready`, under current occupancy: picks the earliest-free
     * unit of the class (steering MACs to an idler NTT unit when
     * enabled), serializes on the HBM channel for loads/stores and
     * streaming fills, and overlaps a streaming fill with execution.
     */
    IssuePlan plan(const InstShape &shape, double data_ready) const;
    IssuePlan plan(size_t i, double data_ready) const
    {
        return plan(shapes_[i], data_ready);
    }

    /**
     * Commits `p`: occupies the chosen unit, advances the HBM channel
     * (an instruction moves one residue per DRAM-streamed source), and
     * accrues
     * busy/traffic counters. Returns the finish time, which includes
     * the pipeline startup latency.
     */
    double commit(const InstShape &shape, const IssuePlan &p);
    double commit(size_t i, const IssuePlan &p)
    {
        return commit(shapes_[i], p);
    }

    // --- Model constants and state, for reports and tests ---------------
    double ewCycles() const { return ew_cycles_; }
    double nttCycles() const { return ntt_cycles_; }
    double memCycles() const { return mem_cycles_; }
    double hbmFree() const { return hbm_free_; }
    double hbmBusy() const { return hbm_busy_; }
    double dramBytes() const { return dram_bytes_; }
    double busy(int fu_class) const { return busy_[fu_class]; }
    double fuFreeMin(int fu_class) const { return fu_min_[fu_class]; }
    const HardwareConfig &config() const { return cfg_; }

  private:
    void refreshMin(int fu_class);

    HardwareConfig cfg_;
    size_t residue_bytes_ = 0;
    double ew_cycles_ = 0.0;
    double ntt_cycles_ = 0.0;
    double mem_cycles_ = 0.0;

    std::vector<double> fu_free_[FU_CLASSES]; ///< per-unit next-free time
    double fu_min_[FU_CLASSES] = {0, 0, 0, 0};
    int fu_argmin_[FU_CLASSES] = {0, 0, 0, 0};
    double busy_[FU_CLASSES] = {0, 0, 0, 0};
    double hbm_free_ = 0.0;
    double hbm_busy_ = 0.0;
    double dram_bytes_ = 0.0;

    std::vector<InstShape> shapes_;
};

} // namespace effact

#endif // EFFACT_SIM_RESOURCES_H
