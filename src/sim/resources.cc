#include "sim/resources.h"

#include <algorithm>

#include "common/bitops.h"

namespace effact {

ResourceModel::ResourceModel(const HardwareConfig &cfg,
                             size_t residue_bytes)
    : cfg_(cfg), residue_bytes_(residue_bytes)
{
    const size_t n_coeff = residue_bytes / 8;
    ew_cycles_ = double(ceilDiv(n_coeff, cfg_.lanes));
    ntt_cycles_ =
        double(n_coeff) * log2Floor(n_coeff) / 2.0 / double(cfg_.lanes);
    mem_cycles_ = double(residue_bytes) / cfg_.hbmBytesPerCycle();

    fu_free_[FU_NTT].assign(std::max<size_t>(cfg_.nttUnits, 1), 0.0);
    fu_free_[FU_MUL].assign(std::max<size_t>(cfg_.mulUnits, 1), 0.0);
    fu_free_[FU_ADD].assign(std::max<size_t>(cfg_.addUnits, 1), 0.0);
    fu_free_[FU_AUTO].assign(std::max<size_t>(cfg_.autoUnits, 1), 0.0);
}

InstShape
ResourceModel::decode(const MachInst &mi) const
{
    InstShape s;
    const int dram_srcs = mi.dramStreamSources();
    s.stream_fill = dram_srcs >= 1;
    s.extra_dram = dram_srcs > 1 ? dram_srcs - 1 : 0;
    switch (mi.op) {
      case Opcode::LOAD_RES:
      case Opcode::STORE_RES:
        s.fu_class = -1; // pure memory op: occupies the HBM channel only
        return s;
      case Opcode::NTT:
      case Opcode::INTT:
        s.fu_class = FU_NTT;
        s.occupancy = ntt_cycles_;
        return s;
      case Opcode::MMUL:
        s.fu_class = FU_MUL;
        break;
      case Opcode::MMAC:
        // Circuit-level reuse (Sec. III-2): MACs run on the NTT units'
        // MAC data path when that frees up earlier.
        s.fu_class = FU_MUL;
        s.mac = true;
        break;
      case Opcode::AUTO:
        s.fu_class = FU_AUTO;
        break;
      default: // MMAD, MSUB, VEC_COPY
        s.fu_class = FU_ADD;
        break;
    }
    s.occupancy = ew_cycles_;
    return s;
}

void
ResourceModel::bind(const MachineProgram &prog)
{
    shapes_.clear();
    shapes_.reserve(prog.insts.size());
    for (const MachInst &mi : prog.insts)
        shapes_.push_back(decode(mi));
}

IssuePlan
ResourceModel::plan(const InstShape &shape, double data_ready) const
{
    IssuePlan p;
    if (shape.fu_class < 0) {
        p.uses_dram = true;
        p.dram_cycles = mem_cycles_;
        p.start = std::max(data_ready, hbm_free_);
        p.occupancy = mem_cycles_;
        return p;
    }
    int cls = shape.fu_class;
    if (shape.mac && cfg_.nttMacReuse && fu_min_[FU_NTT] < fu_min_[FU_MUL])
        cls = FU_NTT;
    p.fu_class = cls;
    p.fu_inst = fu_argmin_[cls];
    p.start = std::max(data_ready, fu_min_[cls]);
    p.occupancy = shape.occupancy;
    if (shape.stream_fill) {
        // The streaming fill competes for HBM and overlaps with
        // execution (data consumed on arrival, Sec. IV-C).
        p.uses_dram = true;
        p.dram_cycles = mem_cycles_;
        p.start = std::max(p.start, hbm_free_);
        p.occupancy = std::max(p.occupancy, mem_cycles_);
    }
    return p;
}

double
ResourceModel::commit(const InstShape &shape, const IssuePlan &p)
{
    const double finish = p.start + p.occupancy + kStartupCycles;
    if (p.uses_dram) {
        hbm_free_ = p.start + p.dram_cycles;
        hbm_busy_ += p.dram_cycles;
        dram_bytes_ += double(residue_bytes_);
    }
    if (p.fu_class >= 0) {
        fu_free_[p.fu_class][p.fu_inst] = p.start + p.occupancy;
        busy_[p.fu_class] += p.occupancy;
        refreshMin(p.fu_class);
    }
    // Each DRAM-streamed operand beyond the first moves another residue.
    for (int k = 0; k < shape.extra_dram; ++k) {
        hbm_free_ += mem_cycles_;
        hbm_busy_ += mem_cycles_;
        dram_bytes_ += double(residue_bytes_);
    }
    return finish;
}

void
ResourceModel::refreshMin(int fu_class)
{
    const std::vector<double> &f = fu_free_[fu_class];
    double best = f[0];
    int arg = 0;
    for (size_t u = 1; u < f.size(); ++u) {
        if (f[u] < best) {
            best = f[u];
            arg = static_cast<int>(u);
        }
    }
    fu_min_[fu_class] = best;
    fu_argmin_[fu_class] = arg;
}

} // namespace effact
