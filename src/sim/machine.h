/**
 * @file
 * Cycle-level simulator of the EFFACT microarchitecture (Sec. IV-D):
 * an OoO scoreboard issues residue-polynomial instructions to the four
 * function-unit classes; SRAM-resident operands are free, streaming
 * operands occupy HBM bandwidth concurrently with execution; LOAD/STORE
 * and streaming fills compete for the same HBM channels (Sec. IV-D1).
 *
 * The issue core is event-driven: dependences come from the shared
 * `DepGraph` layer (sched/depgraph.h), readiness is tracked with
 * indegree counters and wake-up lists, and the FU/HBM occupancy rules
 * live in `ResourceModel` (sim/resources.h).
 */
#ifndef EFFACT_SIM_MACHINE_H
#define EFFACT_SIM_MACHINE_H

#include "common/stats.h"
#include "isa/isa.h"
#include "sim/config.h"

namespace effact {

/** Simulation results. */
struct SimReport
{
    double cycles = 0;
    double timeMs = 0;
    double dramBytes = 0;
    double dramUtil = 0;          ///< fraction of peak HBM bandwidth
    double nttUtil = 0;
    double mulAddUtil = 0;        ///< combined MULT/ADD unit utilization
    double autoUtil = 0;
    size_t instructions = 0;
    StatSet stats;                ///< detailed counters
};

/** Executes a machine program against a hardware configuration. */
class Simulator
{
  public:
    explicit Simulator(const HardwareConfig &config) : cfg_(config) {}

    /** Runs the program to completion and reports timing/utilization. */
    SimReport run(const MachineProgram &prog) const;

    /**
     * The legacy O(n * window) rescan issue loop, cycle-equivalent to
     * `run()`. Kept as the differential-testing oracle and as the
     * before/after baseline for `bench_sim_speed`; new code should use
     * `run()`.
     */
    SimReport runReference(const MachineProgram &prog) const;

    const HardwareConfig &config() const { return cfg_; }

  private:
    HardwareConfig cfg_;
};

} // namespace effact

#endif // EFFACT_SIM_MACHINE_H
