/**
 * @file
 * Hardware configuration of the simulated EFFACT accelerator
 * (Sec. IV-D / Sec. V-C) with presets for ASIC-EFFACT (27 MB / 1024
 * lanes / 1.2 TB/s / 500 MHz), FPGA-EFFACT (7.6 MB / 256 lanes /
 * 460 GB/s / 300 MHz) and the scaled EFFACT-54/108/162 design points
 * (Sec. VI-C).
 */
#ifndef EFFACT_SIM_CONFIG_H
#define EFFACT_SIM_CONFIG_H

#include <cstddef>
#include <string>

namespace effact {

/** Simulated machine description. */
struct HardwareConfig
{
    std::string name = "ASIC-EFFACT";
    size_t lanes = 1024;        ///< vector lanes (coefficients/cycle/FU)
    double freqGhz = 0.5;       ///< clock frequency
    size_t sramBytes = size_t(27) << 20; ///< on-chip SRAM capacity
    double hbmBytesPerSec = 1.2e12;      ///< off-chip bandwidth

    // Function-unit counts (each `lanes` wide).
    size_t nttUnits = 2;
    size_t mulUnits = 2;
    size_t addUnits = 3;
    size_t autoUnits = 1;

    /** Circuit-level NTT<->MAC reuse (Sec. III-2 / IV-D3). */
    bool nttMacReuse = true;

    /** OoO scoreboard window (1 = strict in-order issue). */
    size_t issueWindow = 64;

    /** Total modular multipliers (for Table VII reporting). */
    size_t multipliers() const { return (nttUnits + mulUnits) * lanes; }

    /** HBM bytes per cycle. */
    double
    hbmBytesPerCycle() const
    {
        return hbmBytesPerSec / (freqGhz * 1e9);
    }

    // --- Presets ---------------------------------------------------------
    static HardwareConfig asicEffact27();
    static HardwareConfig asicEffact54();
    static HardwareConfig asicEffact108();
    static HardwareConfig asicEffact162();
    static HardwareConfig fpgaEffact();
};

} // namespace effact

#endif // EFFACT_SIM_CONFIG_H
