#include "sim/machine.h"

#include <algorithm>
#include <unordered_map>

#include "common/bitops.h"
#include "common/logging.h"

namespace effact {

namespace {

/** Function-unit classes. */
enum FuClass { FU_NTT = 0, FU_MUL, FU_ADD, FU_AUTO, FU_CLASSES };

/** Pipeline fill latency added to every instruction. */
constexpr double kStartupCycles = 16.0;

} // namespace

SimReport
Simulator::run(const MachineProgram &prog) const
{
    const size_t n_coeff = prog.residueBytes / 8;
    const double ew_cycles =
        double(ceilDiv(n_coeff, cfg_.lanes)); // element-wise op
    const double ntt_cycles = double(n_coeff) * log2Floor(n_coeff) / 2.0 /
                              double(cfg_.lanes);
    const double bpc = cfg_.hbmBytesPerCycle();
    const double mem_cycles = double(prog.residueBytes) / bpc;

    const size_t n = prog.insts.size();

    // Resolve each source operand to its defining instruction index so
    // that out-of-order issue still honours true dependences.
    std::vector<int> def_src0(n, -1), def_src1(n, -1), dest_prev(n, -1);
    {
        std::unordered_map<int, int> last_writer;   // register -> inst
        std::unordered_map<u64, int> fifo_producer; // token -> inst
        for (size_t i = 0; i < n; ++i) {
            const MachInst &mi = prog.insts[i];
            auto resolveSrc = [&](const Operand &o) {
                if (o.kind == OperandKind::Reg) {
                    auto it = last_writer.find(o.reg);
                    return it == last_writer.end() ? -1 : it->second;
                }
                if (o.kind == OperandKind::Stream && !o.dram) {
                    auto it = fifo_producer.find(o.value);
                    return it == fifo_producer.end() ? -1 : it->second;
                }
                return -1;
            };
            def_src0[i] = resolveSrc(mi.src0);
            def_src1[i] = resolveSrc(mi.src1);
            if (mi.op != Opcode::STORE_RES) {
                if (mi.dest.kind == OperandKind::Reg) {
                    auto it = last_writer.find(mi.dest.reg);
                    dest_prev[i] = it == last_writer.end() ? -1
                                                           : it->second;
                    last_writer[mi.dest.reg] = static_cast<int>(i);
                } else if (mi.dest.kind == OperandKind::Stream &&
                           !mi.dest.dram) {
                    fifo_producer[mi.dest.value] = static_cast<int>(i);
                }
            }
        }
    }

    std::vector<std::vector<double>> fu_free(FU_CLASSES);
    fu_free[FU_NTT].assign(std::max<size_t>(cfg_.nttUnits, 1), 0.0);
    fu_free[FU_MUL].assign(std::max<size_t>(cfg_.mulUnits, 1), 0.0);
    fu_free[FU_ADD].assign(std::max<size_t>(cfg_.addUnits, 1), 0.0);
    fu_free[FU_AUTO].assign(std::max<size_t>(cfg_.autoUnits, 1), 0.0);
    double hbm_free = 0.0;

    std::vector<double> finish_time(n, 0.0);
    std::vector<uint8_t> issued(n, 0);

    double busy[FU_CLASSES] = {0, 0, 0, 0};
    double hbm_busy = 0.0;
    double dram_bytes = 0.0;
    double t_end = 0.0;

    size_t head = 0;
    size_t remaining = n;
    const size_t window = std::max<size_t>(cfg_.issueWindow, 1);

    struct Plan
    {
        double start;
        int fu_class; // -1 for pure memory ops
        int fu_inst;
        double occupancy;
        bool uses_dram;
        double dram_cycles;
    };

    auto planFor = [&](size_t i, bool &feasible) {
        const MachInst &mi = prog.insts[i];
        Plan plan{0.0, -1, -1, 0.0, false, 0.0};
        feasible = true;

        double ready = 0.0;
        bool stream_fill = false;
        for (int def : {def_src0[i], def_src1[i]}) {
            if (def >= 0) {
                if (!issued[static_cast<size_t>(def)]) {
                    feasible = false;
                    return plan;
                }
                ready = std::max(ready,
                                 finish_time[static_cast<size_t>(def)]);
            }
        }
        // Anti-dependence on the destination register (do not clobber a
        // value an earlier instruction still defines later in program
        // order — issue order enforces this cheaply).
        if (dest_prev[i] >= 0 &&
            !issued[static_cast<size_t>(dest_prev[i])]) {
            feasible = false;
            return plan;
        }
        if (mi.src0.kind == OperandKind::Stream && mi.src0.dram)
            stream_fill = true;
        if (mi.src1.kind == OperandKind::Stream && mi.src1.dram)
            stream_fill = true;

        switch (mi.op) {
          case Opcode::LOAD_RES:
          case Opcode::STORE_RES:
            plan.uses_dram = true;
            plan.dram_cycles = mem_cycles;
            plan.start = std::max(ready, hbm_free);
            plan.occupancy = mem_cycles;
            return plan;
          default:
            break;
        }

        int cls;
        double occ = ew_cycles;
        switch (mi.op) {
          case Opcode::NTT:
          case Opcode::INTT:
            cls = FU_NTT;
            occ = ntt_cycles;
            break;
          case Opcode::MMUL:
            cls = FU_MUL;
            break;
          case Opcode::MMAC: {
            // Circuit-level reuse (Sec. III-2): MACs run on the NTT
            // units' MAC data path when that frees up earlier.
            cls = FU_MUL;
            if (cfg_.nttMacReuse) {
                double mul_t = *std::min_element(fu_free[FU_MUL].begin(),
                                                 fu_free[FU_MUL].end());
                double ntt_t = *std::min_element(fu_free[FU_NTT].begin(),
                                                 fu_free[FU_NTT].end());
                if (ntt_t < mul_t)
                    cls = FU_NTT;
            }
            break;
          }
          case Opcode::AUTO:
            cls = FU_AUTO;
            break;
          default: // MMAD, MSUB, VEC_COPY
            cls = FU_ADD;
            break;
        }
        plan.fu_class = cls;
        auto it = std::min_element(fu_free[cls].begin(),
                                   fu_free[cls].end());
        plan.fu_inst = static_cast<int>(it - fu_free[cls].begin());
        plan.start = std::max(ready, *it);
        plan.occupancy = occ;
        if (stream_fill) {
            // The streaming fill competes for HBM and overlaps with
            // execution (data consumed on arrival, Sec. IV-C).
            plan.uses_dram = true;
            plan.dram_cycles = mem_cycles;
            plan.start = std::max(plan.start, hbm_free);
            plan.occupancy = std::max(plan.occupancy, mem_cycles);
        }
        return plan;
    };

    while (remaining > 0) {
        size_t best = n;
        Plan best_plan{1e300, -1, -1, 0, false, 0};
        size_t seen = 0;
        for (size_t i = head; i < n && seen < window; ++i) {
            if (issued[i])
                continue;
            ++seen;
            bool feasible = false;
            Plan p = planFor(i, feasible);
            if (feasible && p.start < best_plan.start) {
                best_plan = p;
                best = i;
            }
        }
        EFFACT_ASSERT(best < n, "deadlock: no issuable instruction");

        const MachInst &mi = prog.insts[best];
        issued[best] = 1;
        --remaining;
        while (head < n && issued[head])
            ++head;

        double finish = best_plan.start + best_plan.occupancy +
                        kStartupCycles;
        if (best_plan.uses_dram) {
            hbm_free = best_plan.start + best_plan.dram_cycles;
            hbm_busy += best_plan.dram_cycles;
            dram_bytes += double(prog.residueBytes);
        }
        if (best_plan.fu_class >= 0) {
            fu_free[best_plan.fu_class][best_plan.fu_inst] =
                best_plan.start + best_plan.occupancy;
            busy[best_plan.fu_class] += best_plan.occupancy;
        }
        // Instructions with two DRAM-streamed operands move two residues.
        if (mi.src0.kind == OperandKind::Stream && mi.src0.dram &&
            mi.src1.kind == OperandKind::Stream && mi.src1.dram) {
            hbm_free += mem_cycles;
            hbm_busy += mem_cycles;
            dram_bytes += double(prog.residueBytes);
        }

        finish_time[best] = finish;
        t_end = std::max(t_end, finish);
    }

    SimReport r;
    r.cycles = t_end;
    r.timeMs = t_end / (cfg_.freqGhz * 1e9) * 1e3;
    r.dramBytes = dram_bytes;
    r.instructions = n;
    if (t_end > 0) {
        r.dramUtil = hbm_busy / t_end;
        r.nttUtil = busy[FU_NTT] / (t_end * double(cfg_.nttUnits));
        r.mulAddUtil = (busy[FU_MUL] + busy[FU_ADD]) /
                       (t_end * double(cfg_.mulUnits + cfg_.addUnits));
        r.autoUtil = busy[FU_AUTO] / (t_end * double(cfg_.autoUnits));
    }
    r.stats.set("cycles", t_end);
    r.stats.set("dramBytes", dram_bytes);
    r.stats.set("nttBusy", busy[FU_NTT]);
    r.stats.set("mulBusy", busy[FU_MUL]);
    r.stats.set("addBusy", busy[FU_ADD]);
    r.stats.set("autoBusy", busy[FU_AUTO]);
    return r;
}

} // namespace effact
