#include "sim/machine.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/bitops.h"
#include "common/logging.h"
#include "sched/depgraph.h"
#include "sim/resources.h"
#include "verify/verify.h"

namespace effact {

namespace {

SimReport
makeReport(const ResourceModel &res, const HardwareConfig &cfg, size_t n,
           double t_end)
{
    SimReport r;
    r.cycles = t_end;
    r.timeMs = t_end / (cfg.freqGhz * 1e9) * 1e3;
    r.dramBytes = res.dramBytes();
    r.instructions = n;
    if (t_end > 0) {
        r.dramUtil = res.hbmBusy() / t_end;
        r.nttUtil = res.busy(FU_NTT) / (t_end * double(cfg.nttUnits));
        r.mulAddUtil = (res.busy(FU_MUL) + res.busy(FU_ADD)) /
                       (t_end * double(cfg.mulUnits + cfg.addUnits));
        r.autoUtil = res.busy(FU_AUTO) / (t_end * double(cfg.autoUnits));
    }
    r.stats.set("cycles", t_end);
    r.stats.set("dramBytes", res.dramBytes());
    r.stats.set("nttBusy", res.busy(FU_NTT));
    r.stats.set("mulBusy", res.busy(FU_MUL));
    r.stats.set("addBusy", res.busy(FU_ADD));
    r.stats.set("autoBusy", res.busy(FU_AUTO));
    return r;
}

/**
 * Ready instructions, partitioned by the resource "group" that decides
 * their issue start. Every member of a group shares one state-dependent
 * floor F (the group's resource-free time), so a ready instruction with
 * data-ready time d starts at max(d, F):
 *
 *  - members with d <= F all tie at F — the earliest index wins, so
 *    they sit in an index-ordered min-heap (`tied`);
 *  - members with d > F start at d — they sit in a (d, index) min-heap
 *    (`later`).
 *
 * Resource free times only move forward, so F is monotone and members
 * migrate from `later` to `tied` at most once. The group's best
 * candidate is a peek at two heap tops; the global best is the
 * lexicographic (start, index) minimum over the groups, which is
 * exactly the legacy rescan loop's "earliest feasible start, earliest
 * index on ties" policy.
 */
class ReadyGroups
{
  public:
    // One group per FU class, one per FU class with a streaming fill
    // (floor also covers the HBM channel), one for steerable MACs
    // (floor = min of NTT/MUL), its streaming variant, and one for pure
    // memory ops (floor = HBM channel only).
    enum : int {
        kPlain0 = 0,          // + FuClass
        kFill0 = FU_CLASSES,  // + FuClass
        kMac = 2 * FU_CLASSES,
        kFillMac,
        kMem,
        kGroups,
    };

    explicit ReadyGroups(const ResourceModel &res) : res_(res)
    {
        for (int grp = 0; grp < kGroups; ++grp)
            floor_[grp] = floorOf(grp);
    }

    static int groupOf(const InstShape &shape, bool ntt_mac_reuse)
    {
        if (shape.fu_class < 0)
            return kMem;
        if (shape.mac && ntt_mac_reuse)
            return shape.stream_fill ? kFillMac : kMac;
        return (shape.stream_fill ? kFill0 : kPlain0) + shape.fu_class;
    }

    void admit(int grp, int idx, double data_ready)
    {
        if (data_ready <= floor_[grp])
            tied_[grp].push(idx);
        else
            later_[grp].emplace(data_ready, idx);
    }

    /**
     * Advances the floors of the groups a commit can have moved (the
     * committed FU class and, if the HBM channel advanced, every group
     * whose floor covers it) and migrates members whose data-ready time
     * the floor has caught up with.
     *
     * Batched per commit: every floor is a max/min over resource free
     * times, the free times only move forward, and a commit moves only
     * its own FU class and (maybe) the HBM channel — so each moved
     * primitive is read once and every dependent group's floor is just
     * `max(stored floor, moved primitive)`. The per-touched-group
     * `floorOf` re-derivation (which re-read the unmoved components,
     * `FU_CLASSES + 2` HBM reads on a streaming commit) is gone; the
     * stored floors stay exactly `floorOf` by induction from the
     * constructor.
     */
    void refresh(const IssuePlan &committed)
    {
        if (committed.fu_class >= 0) {
            const double fu = res_.fuFreeMin(committed.fu_class);
            raiseTo(kPlain0 + committed.fu_class, fu);
            raiseTo(kFill0 + committed.fu_class, fu);
            if (committed.fu_class == FU_NTT ||
                committed.fu_class == FU_MUL) {
                const double mac = std::min(res_.fuFreeMin(FU_NTT),
                                            res_.fuFreeMin(FU_MUL));
                raiseTo(kMac, mac);
                raiseTo(kFillMac, mac);
            }
        }
        if (committed.uses_dram) {
            const double hbm = res_.hbmFree();
            raiseTo(kMem, hbm);
            for (int cls = 0; cls < FU_CLASSES; ++cls)
                raiseTo(kFill0 + cls, hbm);
            raiseTo(kFillMac, hbm);
        }
    }

    /** Lexicographic (start, index) minimum over all groups; returns
     *  the instruction index and its start, or -1 if nothing is ready. */
    int best(double &start_out) const
    {
        int best_idx = -1;
        double best_start = 0.0;
        for (int grp = 0; grp < kGroups; ++grp) {
            int idx;
            double start;
            // Within a group the tied heap dominates: `later` members
            // start strictly after the floor.
            if (!tied_[grp].empty()) {
                idx = tied_[grp].top();
                start = floor_[grp];
            } else if (!later_[grp].empty()) {
                idx = later_[grp].top().second;
                start = later_[grp].top().first;
            } else {
                continue;
            }
            if (best_idx < 0 || start < best_start ||
                (start == best_start && idx < best_idx)) {
                best_idx = idx;
                best_start = start;
            }
        }
        start_out = best_start;
        return best_idx;
    }

    /** Removes `idx` (the current best of group `grp`). */
    void take(int grp, int idx)
    {
        if (!tied_[grp].empty() && tied_[grp].top() == idx) {
            tied_[grp].pop();
            return;
        }
        EFFACT_ASSERT(!later_[grp].empty() &&
                          later_[grp].top().second == idx,
                      "issued instruction is not its group's best");
        later_[grp].pop();
    }

  private:
    /** Raises group `grp`'s floor to (at least) `f` and migrates the
     *  members the new floor has caught up with. No-op when the floor
     *  already covers `f` (the unmoved-component case). */
    void raiseTo(int grp, double f)
    {
        if (f <= floor_[grp])
            return;
        floor_[grp] = f;
        auto &later = later_[grp];
        while (!later.empty() && later.top().first <= f) {
            tied_[grp].push(later.top().second);
            later.pop();
        }
    }

    double floorOf(int grp) const
    {
        if (grp == kMem)
            return res_.hbmFree();
        if (grp == kMac)
            return std::min(res_.fuFreeMin(FU_NTT),
                            res_.fuFreeMin(FU_MUL));
        if (grp == kFillMac)
            return std::max(std::min(res_.fuFreeMin(FU_NTT),
                                     res_.fuFreeMin(FU_MUL)),
                            res_.hbmFree());
        if (grp >= kFill0)
            return std::max(res_.fuFreeMin(grp - kFill0),
                            res_.hbmFree());
        return res_.fuFreeMin(grp);
    }

    using IndexHeap =
        std::priority_queue<int, std::vector<int>, std::greater<int>>;
    using TimedHeap =
        std::priority_queue<std::pair<double, int>,
                            std::vector<std::pair<double, int>>,
                            std::greater<std::pair<double, int>>>;

    const ResourceModel &res_;
    double floor_[kGroups];
    IndexHeap tied_[kGroups];
    TimedHeap later_[kGroups];
};

} // namespace

/**
 * Event-driven issue core. Readiness is tracked with per-instruction
 * indegree counters over the machine-level dependence graph: when an
 * instruction issues, its wake-up list (graph successors) is walked,
 * true-dependence successors inherit its finish time as their data-ready
 * time, and instructions whose last predecessor issued become ready.
 * The OoO scoreboard window is a boundary that slides over the unissued
 * instructions (a doubly-linked list, so issued instructions are never
 * re-scanned); only ready instructions inside the window are issue
 * candidates, held in `ReadyGroups` priority queues keyed by earliest
 * feasible start. Each round is a peek across the group heads, one
 * `ResourceModel::plan` for the winner, and O(log n) heap maintenance —
 * O((n + e) log n) overall instead of the legacy loop's O(n * window)
 * rescans over an ever-wider issued gap.
 */
SimReport
Simulator::run(const MachineProgram &prog) const
{
    const size_t n = prog.insts.size();
    ResourceModel res(cfg_, prog.residueBytes);
    if (n == 0)
        return makeReport(res, cfg_, 0, 0.0);
    res.bind(prog);
    const DepGraph graph = DepGraph::fromMachine(prog);

    std::vector<uint32_t> indeg = graph.indegrees();
    std::vector<double> data_ready(n, 0.0);
    std::vector<uint8_t> ready(n, 0);
    std::vector<int> group(n);
    for (size_t i = 0; i < n; ++i)
        group[i] = ReadyGroups::groupOf(res.shape(i), cfg_.nttMacReuse);

    // Unissued instructions in program order; issue unlinks in O(1).
    std::vector<int> nxt(n), prv(n);
    for (size_t i = 0; i < n; ++i) {
        nxt[i] = static_cast<int>(i) + 1;
        prv[i] = static_cast<int>(i) - 1;
    }

    const size_t window = std::max<size_t>(cfg_.issueWindow, 1);
    // Index of the last unissued instruction inside the scoreboard
    // window (the window-th unissued in program order); `n` once the
    // window covers every remaining instruction.
    size_t bound = window < n ? window - 1 : n;

    ReadyGroups groups(res);
    for (size_t i = 0; i < n; ++i) {
        if (indeg[i] == 0) {
            ready[i] = 1;
            if (i <= bound)
                groups.admit(group[i], static_cast<int>(i), 0.0);
        }
    }

    double t_end = 0.0;
    for (size_t issued = 0; issued < n; ++issued) {
        double best_start = 0.0;
        const int best = groups.best(best_start);
        if (best < 0)
            panicMalformedMachine(prog, -1,
                                  "deadlock: no issuable instruction");
        groups.take(group[best], best);

        const IssuePlan plan =
            res.plan(static_cast<size_t>(best), data_ready[best]);
        EFFACT_ASSERT(plan.start == best_start,
                      "ready-group floor diverged from the plan");

        if (prv[best] >= 0)
            nxt[prv[best]] = nxt[best];
        if (nxt[best] < static_cast<int>(n))
            prv[nxt[best]] = prv[best];
        // One in-window instruction issued: slide the boundary to the
        // next unissued instruction (`best`'s own links are intact, so
        // this works when best == bound too) and admit it if ready.
        if (bound < n) {
            bound = static_cast<size_t>(nxt[bound]);
            if (bound < n && ready[bound])
                groups.admit(group[bound], static_cast<int>(bound),
                             data_ready[bound]);
        }

        const double finish = res.commit(static_cast<size_t>(best), plan);
        t_end = std::max(t_end, finish);
        groups.refresh(plan);

        for (const DepEdge &e : graph.succs(static_cast<size_t>(best))) {
            const size_t s = static_cast<size_t>(e.other);
            if (e.kind == DepKind::True)
                data_ready[s] = std::max(data_ready[s], finish);
            if (--indeg[s] == 0) {
                ready[s] = 1;
                if (s <= bound)
                    groups.admit(group[s], e.other, data_ready[s]);
            }
        }
    }

    return makeReport(res, cfg_, n, t_end);
}

/**
 * The pre-refactor issue loop, preserved verbatim (own dependence
 * resolution, own plan arithmetic): every round rescans the `[head, n)`
 * window skipping already-issued instructions and re-derives readiness
 * from per-operand issue flags. It is deliberately NOT refactored onto
 * `DepGraph`/`ResourceModel` so that it remains an independent oracle:
 * the equivalence tests check `run()` against it on every workload, and
 * `bench_sim_speed` measures the event-driven core against it.
 */
SimReport
Simulator::runReference(const MachineProgram &prog) const
{
    const size_t n_coeff = prog.residueBytes / 8;
    const double ew_cycles =
        double(ceilDiv(n_coeff, cfg_.lanes)); // element-wise op
    const double ntt_cycles = double(n_coeff) * log2Floor(n_coeff) / 2.0 /
                              double(cfg_.lanes);
    const double bpc = cfg_.hbmBytesPerCycle();
    const double mem_cycles = double(prog.residueBytes) / bpc;
    const double startup_cycles = ResourceModel::kStartupCycles;

    const size_t n = prog.insts.size();

    // Resolve each source operand to its defining instruction index so
    // that out-of-order issue still honours true dependences.
    std::vector<int> def_src0(n, -1), def_src1(n, -1), def_src2(n, -1),
        dest_prev(n, -1);
    {
        std::unordered_map<int, int> last_writer;   // register -> inst
        std::unordered_map<u64, int> fifo_producer; // token -> inst
        for (size_t i = 0; i < n; ++i) {
            const MachInst &mi = prog.insts[i];
            auto resolveSrc = [&](const Operand &o) {
                if (o.kind == OperandKind::Reg) {
                    auto it = last_writer.find(o.reg);
                    return it == last_writer.end() ? -1 : it->second;
                }
                if (o.kind == OperandKind::Stream && !o.dram) {
                    auto it = fifo_producer.find(o.value);
                    return it == fifo_producer.end() ? -1 : it->second;
                }
                return -1;
            };
            def_src0[i] = resolveSrc(mi.src0);
            def_src1[i] = resolveSrc(mi.src1);
            def_src2[i] = resolveSrc(mi.src2);
            if (mi.op != Opcode::STORE_RES) {
                if (mi.dest.kind == OperandKind::Reg) {
                    auto it = last_writer.find(mi.dest.reg);
                    dest_prev[i] = it == last_writer.end() ? -1
                                                           : it->second;
                    last_writer[mi.dest.reg] = static_cast<int>(i);
                } else if (mi.dest.kind == OperandKind::Stream &&
                           !mi.dest.dram) {
                    fifo_producer[mi.dest.value] = static_cast<int>(i);
                }
            }
        }
    }

    std::vector<std::vector<double>> fu_free(FU_CLASSES);
    fu_free[FU_NTT].assign(std::max<size_t>(cfg_.nttUnits, 1), 0.0);
    fu_free[FU_MUL].assign(std::max<size_t>(cfg_.mulUnits, 1), 0.0);
    fu_free[FU_ADD].assign(std::max<size_t>(cfg_.addUnits, 1), 0.0);
    fu_free[FU_AUTO].assign(std::max<size_t>(cfg_.autoUnits, 1), 0.0);
    double hbm_free = 0.0;

    std::vector<double> finish_time(n, 0.0);
    std::vector<uint8_t> issued(n, 0);

    double busy[FU_CLASSES] = {0, 0, 0, 0};
    double hbm_busy = 0.0;
    double dram_bytes = 0.0;
    double t_end = 0.0;

    size_t head = 0;
    size_t remaining = n;
    const size_t window = std::max<size_t>(cfg_.issueWindow, 1);

    struct Plan
    {
        double start;
        int fu_class; // -1 for pure memory ops
        int fu_inst;
        double occupancy;
        bool uses_dram;
        double dram_cycles;
    };

    auto planFor = [&](size_t i, bool &feasible) {
        const MachInst &mi = prog.insts[i];
        Plan plan{0.0, -1, -1, 0.0, false, 0.0};
        feasible = true;

        double ready = 0.0;
        bool stream_fill = false;
        for (int def : {def_src0[i], def_src1[i], def_src2[i]}) {
            if (def >= 0) {
                if (!issued[static_cast<size_t>(def)]) {
                    feasible = false;
                    return plan;
                }
                ready = std::max(ready,
                                 finish_time[static_cast<size_t>(def)]);
            }
        }
        // Anti-dependence on the destination register (do not clobber a
        // value an earlier instruction still defines later in program
        // order — issue order enforces this cheaply).
        if (dest_prev[i] >= 0 &&
            !issued[static_cast<size_t>(dest_prev[i])]) {
            feasible = false;
            return plan;
        }
        if (mi.dramStreamSources() >= 1)
            stream_fill = true;

        switch (mi.op) {
          case Opcode::LOAD_RES:
          case Opcode::STORE_RES:
            plan.uses_dram = true;
            plan.dram_cycles = mem_cycles;
            plan.start = std::max(ready, hbm_free);
            plan.occupancy = mem_cycles;
            return plan;
          default:
            break;
        }

        int cls;
        double occ = ew_cycles;
        switch (mi.op) {
          case Opcode::NTT:
          case Opcode::INTT:
            cls = FU_NTT;
            occ = ntt_cycles;
            break;
          case Opcode::MMUL:
            cls = FU_MUL;
            break;
          case Opcode::MMAC: {
            // Circuit-level reuse (Sec. III-2): MACs run on the NTT
            // units' MAC data path when that frees up earlier.
            cls = FU_MUL;
            if (cfg_.nttMacReuse) {
                double mul_t = *std::min_element(fu_free[FU_MUL].begin(),
                                                 fu_free[FU_MUL].end());
                double ntt_t = *std::min_element(fu_free[FU_NTT].begin(),
                                                 fu_free[FU_NTT].end());
                if (ntt_t < mul_t)
                    cls = FU_NTT;
            }
            break;
          }
          case Opcode::AUTO:
            cls = FU_AUTO;
            break;
          default: // MMAD, MSUB, VEC_COPY
            cls = FU_ADD;
            break;
        }
        plan.fu_class = cls;
        auto it = std::min_element(fu_free[cls].begin(),
                                   fu_free[cls].end());
        plan.fu_inst = static_cast<int>(it - fu_free[cls].begin());
        plan.start = std::max(ready, *it);
        plan.occupancy = occ;
        if (stream_fill) {
            // The streaming fill competes for HBM and overlaps with
            // execution (data consumed on arrival, Sec. IV-C).
            plan.uses_dram = true;
            plan.dram_cycles = mem_cycles;
            plan.start = std::max(plan.start, hbm_free);
            plan.occupancy = std::max(plan.occupancy, mem_cycles);
        }
        return plan;
    };

    while (remaining > 0) {
        size_t best = n;
        Plan best_plan{1e300, -1, -1, 0, false, 0};
        size_t seen = 0;
        for (size_t i = head; i < n && seen < window; ++i) {
            if (issued[i])
                continue;
            ++seen;
            bool feasible = false;
            Plan p = planFor(i, feasible);
            if (feasible && p.start < best_plan.start) {
                best_plan = p;
                best = i;
            }
        }
        if (best >= n)
            panicMalformedMachine(prog, -1,
                                  "deadlock: no issuable instruction");

        const MachInst &mi = prog.insts[best];
        issued[best] = 1;
        --remaining;
        while (head < n && issued[head])
            ++head;

        double finish = best_plan.start + best_plan.occupancy +
                        startup_cycles;
        if (best_plan.uses_dram) {
            hbm_free = best_plan.start + best_plan.dram_cycles;
            hbm_busy += best_plan.dram_cycles;
            dram_bytes += double(prog.residueBytes);
        }
        if (best_plan.fu_class >= 0) {
            fu_free[best_plan.fu_class][best_plan.fu_inst] =
                best_plan.start + best_plan.occupancy;
            busy[best_plan.fu_class] += best_plan.occupancy;
        }
        // Each DRAM-streamed operand beyond the first moves another
        // residue.
        for (int k = 1; k < mi.dramStreamSources(); ++k) {
            hbm_free += mem_cycles;
            hbm_busy += mem_cycles;
            dram_bytes += double(prog.residueBytes);
        }

        finish_time[best] = finish;
        t_end = std::max(t_end, finish);
    }

    SimReport r;
    r.cycles = t_end;
    r.timeMs = t_end / (cfg_.freqGhz * 1e9) * 1e3;
    r.dramBytes = dram_bytes;
    r.instructions = n;
    if (t_end > 0) {
        r.dramUtil = hbm_busy / t_end;
        r.nttUtil = busy[FU_NTT] / (t_end * double(cfg_.nttUnits));
        r.mulAddUtil = (busy[FU_MUL] + busy[FU_ADD]) /
                       (t_end * double(cfg_.mulUnits + cfg_.addUnits));
        r.autoUtil = busy[FU_AUTO] / (t_end * double(cfg_.autoUnits));
    }
    r.stats.set("cycles", t_end);
    r.stats.set("dramBytes", dram_bytes);
    r.stats.set("nttBusy", busy[FU_NTT]);
    r.stats.set("mulBusy", busy[FU_MUL]);
    r.stats.set("addBusy", busy[FU_ADD]);
    r.stats.set("autoBusy", busy[FU_AUTO]);
    return r;
}

} // namespace effact
