#include "sim/config.h"

namespace effact {

HardwareConfig
HardwareConfig::asicEffact27()
{
    return HardwareConfig{};
}

HardwareConfig
HardwareConfig::asicEffact54()
{
    HardwareConfig c;
    c.name = "EFFACT-54";
    c.sramBytes = size_t(54) << 20;
    c.nttUnits = 4;
    c.mulUnits = 4;
    c.addUnits = 6;
    c.autoUnits = 2;
    return c;
}

HardwareConfig
HardwareConfig::asicEffact108()
{
    HardwareConfig c;
    c.name = "EFFACT-108";
    c.sramBytes = size_t(108) << 20;
    c.nttUnits = 8;
    c.mulUnits = 8;
    c.addUnits = 12;
    c.autoUnits = 4;
    return c;
}

HardwareConfig
HardwareConfig::asicEffact162()
{
    HardwareConfig c;
    c.name = "EFFACT-162";
    c.sramBytes = size_t(162) << 20;
    c.nttUnits = 12;
    c.mulUnits = 12;
    c.addUnits = 18;
    c.autoUnits = 6;
    return c;
}

HardwareConfig
HardwareConfig::fpgaEffact()
{
    HardwareConfig c;
    c.name = "FPGA-EFFACT";
    c.lanes = 256;
    c.freqGhz = 0.3;
    c.sramBytes = (size_t(76) << 20) / 10; // 7.6 MB
    c.hbmBytesPerSec = 460e9;
    c.nttUnits = 1;
    c.mulUnits = 1;
    c.addUnits = 2;
    c.autoUnits = 1;
    return c;
}

} // namespace effact
