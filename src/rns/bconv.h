/**
 * @file
 * Fast RNS base conversion (BConv, Eq. 3) with the paper's merged
 * double-Montgomery form (Eq. 5).
 *
 * BConv_{C->B}(a) = { ( sum_j (a_j * qhat_j^-1 mod q_j) * qhat_j ) mod p_i }
 *
 * EFFACT removes dedicated BConv units: the conversion is expressed as
 * residue-polynomial MULT/MAC instructions on the normal units (Sec. III-1).
 * The merged form keeps runtime data in single-Montgomery (SM) form,
 * pre-folds 1/N from the preceding iNTT into the first constant, and uses
 * a double-Montgomery (DM) second constant so no explicit Montgomery
 * conversions are needed across the modulus switch (Sec. IV-D5).
 */
#ifndef EFFACT_RNS_BCONV_H
#define EFFACT_RNS_BCONV_H

#include <memory>
#include <vector>

#include "rns/poly.h"

namespace effact {

/** Precomputed converter from basis C (source) to basis B (target). */
class BaseConverter
{
  public:
    BaseConverter(std::shared_ptr<const RnsBasis> from,
                  std::shared_ptr<const RnsBasis> to);

    const RnsBasis &from() const { return *from_; }
    const RnsBasis &to() const { return *to_; }

    /**
     * Fast base conversion of a Coeff-format polynomial on `from()` to a
     * Coeff-format polynomial on `to()` (approximate: result may carry a
     * small multiple of Q, as in all HPS-style converters).
     */
    RnsPoly convert(const RnsPoly &a) const;

    /**
     * Floating-point-corrected conversion: estimates the overflow multiple
     * e = round(sum_j v_j / q_j) and subtracts e*Q, yielding the exact
     * *centered* representative on the target basis. Used for ModDown,
     * where the +eQ slack of the fast converter would become noise.
     */
    RnsPoly convertExact(const RnsPoly &a) const;

    /**
     * Same conversion computed entirely in the Montgomery domain using
     * SM inputs / DM constants (Eq. 5). `scale_n_inv` additionally folds
     * the iNTT's 1/N constant into the first multiply; the input is then
     * expected to be an un-scaled iNTT output.
     *
     * Input limbs are interpreted as SM representations; output limbs are
     * SM representations. Matches `convert` exactly when fed the same
     * logical values (see tests).
     */
    RnsPoly convertMontgomery(const RnsPoly &a_sm, bool scale_n_inv) const;

    /** Number of MULT ops one conversion costs (for Fig. 3 accounting). */
    size_t multCount() const { return from_->size() * (1 + to_->size()); }

    /** Number of ADD ops one conversion costs. */
    size_t addCount() const
    {
        return to_->size() * (from_->size() - 1);
    }

  private:
    std::shared_ptr<const RnsBasis> from_;
    std::shared_ptr<const RnsBasis> to_;

    /** qhat_j^-1 mod q_j (plain / NM). */
    std::vector<u64> qhatInv_;
    /** qhat_j mod p_i, indexed [j][i] (plain / NM). */
    std::vector<std::vector<u64>> qhatModP_;

    /** (qhat_j^-1 * 1/N) mod q_j, NM constant of Eq. 5. */
    std::vector<u64> qhatInvNInv_;
    /** 1.0 / q_j for the overflow estimate of convertExact. */
    std::vector<long double> qInvReal_;
    /** Q mod p_i for overflow subtraction in convertExact. */
    std::vector<u64> qModP_;
    /** qhat_j^-1 mod q_j in NM form (same as qhatInv_, alias for clarity) */
    /** qhat_j mod p_i in DM form, indexed [j][i]. */
    std::vector<std::vector<u64>> qhatModPDm_;
};

} // namespace effact

#endif // EFFACT_RNS_BCONV_H
