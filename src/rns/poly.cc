#include "rns/poly.h"

#include "common/logging.h"
#include "math/automorphism.h"
#include "math/kernels.h"

namespace effact {

RnsPoly::RnsPoly(std::shared_ptr<const RnsBasis> basis, PolyFormat format)
    : basis_(std::move(basis)), format_(format)
{
    limbs_.assign(basis_->size(), LimbVec(basis_->degree(), 0));
}

void
RnsPoly::sampleUniform(Rng &rng)
{
    for (size_t j = 0; j < limbs_.size(); ++j) {
        const u64 q = basis_->prime(j);
        for (auto &c : limbs_[j])
            c = rng.uniform(q);
    }
}

void
RnsPoly::setFromSigned(const std::vector<i64> &coeffs)
{
    EFFACT_ASSERT(coeffs.size() == degree(), "coefficient count mismatch");
    format_ = PolyFormat::Coeff;
    for (size_t j = 0; j < limbs_.size(); ++j) {
        const u64 q = basis_->prime(j);
        for (size_t i = 0; i < coeffs.size(); ++i)
            limbs_[j][i] = reduceSigned(coeffs[i], q);
    }
}

void
RnsPoly::addInPlace(const RnsPoly &other)
{
    EFFACT_ASSERT(format_ == other.format_ &&
                      limbs_.size() == other.limbs_.size(),
                  "operand mismatch in poly add");
    const kernels::KernelTable &k = kernels::active();
    for (size_t j = 0; j < limbs_.size(); ++j) {
        auto &lhs = limbs_[j];
        k.addModV(lhs.data(), lhs.data(), other.limbs_[j].data(),
                  lhs.size(), basis_->prime(j));
    }
}

void
RnsPoly::subInPlace(const RnsPoly &other)
{
    EFFACT_ASSERT(format_ == other.format_ &&
                      limbs_.size() == other.limbs_.size(),
                  "operand mismatch in poly sub");
    const kernels::KernelTable &k = kernels::active();
    for (size_t j = 0; j < limbs_.size(); ++j) {
        auto &lhs = limbs_[j];
        k.subModV(lhs.data(), lhs.data(), other.limbs_[j].data(),
                  lhs.size(), basis_->prime(j));
    }
}

void
RnsPoly::negInPlace()
{
    const kernels::KernelTable &k = kernels::active();
    for (size_t j = 0; j < limbs_.size(); ++j) {
        auto &lhs = limbs_[j];
        k.negModV(lhs.data(), lhs.data(), lhs.size(), basis_->prime(j));
    }
}

void
RnsPoly::mulEvalInPlace(const RnsPoly &other)
{
    EFFACT_ASSERT(format_ == PolyFormat::Eval &&
                      other.format_ == PolyFormat::Eval,
                  "pointwise mul requires Eval format");
    EFFACT_ASSERT(limbs_.size() == other.limbs_.size(),
                  "operand mismatch in poly mul");
    const kernels::KernelTable &k = kernels::active();
    for (size_t j = 0; j < limbs_.size(); ++j) {
        auto &lhs = limbs_[j];
        k.mulModV(lhs.data(), lhs.data(), other.limbs_[j].data(),
                  lhs.size(), basis_->limb(j).barrett);
    }
}

void
RnsPoly::mulScalarPerLimb(const std::vector<u64> &scalars)
{
    EFFACT_ASSERT(scalars.size() == limbs_.size(), "scalar count mismatch");
    const kernels::KernelTable &k = kernels::active();
    for (size_t j = 0; j < limbs_.size(); ++j) {
        auto &lhs = limbs_[j];
        k.mulConstV(lhs.data(), lhs.data(), lhs.size(), scalars[j],
                    basis_->limb(j).barrett);
    }
}

void
RnsPoly::mulScalarU64(u64 s)
{
    const kernels::KernelTable &k = kernels::active();
    for (size_t j = 0; j < limbs_.size(); ++j) {
        auto &lhs = limbs_[j];
        k.mulConstV(lhs.data(), lhs.data(), lhs.size(),
                    s % basis_->prime(j), basis_->limb(j).barrett);
    }
}

void
RnsPoly::toEval()
{
    if (format_ == PolyFormat::Eval)
        return;
    for (size_t j = 0; j < limbs_.size(); ++j)
        basis_->limb(j).ntt.forward(limbs_[j].data());
    format_ = PolyFormat::Eval;
}

void
RnsPoly::toCoeff()
{
    if (format_ == PolyFormat::Coeff)
        return;
    for (size_t j = 0; j < limbs_.size(); ++j)
        basis_->limb(j).ntt.backward(limbs_[j].data());
    format_ = PolyFormat::Coeff;
}

RnsPoly
RnsPoly::automorph(u64 t) const
{
    RnsPoly out(basis_, format_);
    if (format_ == PolyFormat::Coeff) {
        for (size_t j = 0; j < limbs_.size(); ++j) {
            applyAutoCoeff(limbs_[j].data(), out.limbs_[j].data(), degree(),
                           t, basis_->prime(j));
        }
    } else {
        AutoPermutation perm(degree(), t);
        for (size_t j = 0; j < limbs_.size(); ++j)
            perm.apply(limbs_[j].data(), out.limbs_[j].data());
    }
    return out;
}

RnsPoly
RnsPoly::prefixLimbs(size_t count) const
{
    RnsPoly out(basis_->prefix(count), format_);
    for (size_t j = 0; j < count; ++j)
        out.limbs_[j] = limbs_[j];
    return out;
}

RnsPoly
RnsPoly::gather(const RnsPoly &src, std::shared_ptr<const RnsBasis> basis,
                const std::vector<size_t> &limb_idx)
{
    EFFACT_ASSERT(basis->size() == limb_idx.size(),
                  "gather: index count does not match basis size");
    RnsPoly out(basis, src.format());
    for (size_t i = 0; i < limb_idx.size(); ++i) {
        EFFACT_ASSERT(limb_idx[i] < src.limbCount(),
                      "gather: limb index out of range");
        EFFACT_ASSERT(basis->prime(i) ==
                          src.basis().prime(limb_idx[i]),
                      "gather: prime mismatch at position %zu", i);
        out.limbs_[i] = src.limbs_[limb_idx[i]];
    }
    return out;
}

bool
RnsPoly::isZero() const
{
    for (const auto &limb : limbs_)
        for (u64 c : limb)
            if (c != 0)
                return false;
    return true;
}

} // namespace effact
