/**
 * @file
 * RNS residue polynomials (Fig. 1a): an element of R_Q stored as one
 * residue polynomial ("limb") per basis prime, each with N coefficients.
 * Polynomials track whether they are in coefficient or (bit-reversed)
 * evaluation/NTT order.
 */
#ifndef EFFACT_RNS_POLY_H
#define EFFACT_RNS_POLY_H

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "rns/basis.h"

namespace effact {

/** Storage domain of a polynomial's coefficients. */
enum class PolyFormat { Coeff, Eval };

/** A polynomial over an RNS basis. */
class RnsPoly
{
  public:
    /**
     * Limb storage: 64-byte-aligned so the SIMD kernel tiers may issue
     * aligned vector loads on any limb (and so a cache line never
     * straddles two limbs' first coefficients).
     */
    using LimbVec = AlignedU64Vec;

    RnsPoly() = default;

    /** Zero polynomial over `basis` in `format`. */
    RnsPoly(std::shared_ptr<const RnsBasis> basis, PolyFormat format);

    const RnsBasis &basis() const { return *basis_; }
    std::shared_ptr<const RnsBasis> basisPtr() const { return basis_; }
    PolyFormat format() const { return format_; }
    size_t degree() const { return basis_->degree(); }
    size_t limbCount() const { return limbs_.size(); }

    LimbVec &limb(size_t i) { return limbs_[i]; }
    const LimbVec &limb(size_t i) const { return limbs_[i]; }

    /** Fills every limb with uniform residues. */
    void sampleUniform(Rng &rng);

    /**
     * Sets all limbs from one signed coefficient vector (e.g. a sampled
     * error or secret): limb j gets coeffs[i] mod q_j. Coeff format.
     */
    void setFromSigned(const std::vector<i64> &coeffs);

    /** this += other (same basis, same format). */
    void addInPlace(const RnsPoly &other);

    /** this -= other. */
    void subInPlace(const RnsPoly &other);

    /** this = -this. */
    void negInPlace();

    /** Pointwise product (both operands in Eval format). */
    void mulEvalInPlace(const RnsPoly &other);

    /** Multiplies limb j by scalars[j] (any format). */
    void mulScalarPerLimb(const std::vector<u64> &scalars);

    /** Multiplies every limb by the same integer reduced per limb. */
    void mulScalarU64(u64 s);

    /** Coeff -> Eval (forward NTT on every limb). */
    void toEval();

    /** Eval -> Coeff (inverse NTT on every limb). */
    void toCoeff();

    /** Applies the Galois automorphism sigma_t in the current format. */
    RnsPoly automorph(u64 t) const;

    /**
     * Returns a copy restricted to the first `count` limbs (the prefix
     * sub-basis) — used when dropping levels.
     */
    RnsPoly prefixLimbs(size_t count) const;

    /** True iff every residue of every limb is zero. */
    bool isZero() const;

    /**
     * Builds a polynomial over `basis` by copying limbs
     * src.limb(limb_idx[i]) — the generic "gather limbs" used to restrict
     * keys and split Q/P parts. The caller guarantees that `basis` prime i
     * equals the source basis prime limb_idx[i].
     */
    static RnsPoly gather(const RnsPoly &src,
                          std::shared_ptr<const RnsBasis> basis,
                          const std::vector<size_t> &limb_idx);

  private:
    std::shared_ptr<const RnsBasis> basis_;
    PolyFormat format_ = PolyFormat::Coeff;
    std::vector<LimbVec> limbs_;
};

} // namespace effact

#endif // EFFACT_RNS_POLY_H
