#include "rns/basis.h"

#include "common/logging.h"

namespace effact {

RnsBasis::RnsBasis(size_t n, const std::vector<u64> &primes) : n_(n)
{
    EFFACT_ASSERT(!primes.empty(), "empty RNS basis");
    limbs_.reserve(primes.size());
    for (u64 q : primes)
        limbs_.push_back(std::make_shared<LimbContext>(n, q));
    finalize();
}

void
RnsBasis::finalize()
{
    const size_t k = limbs_.size();
    garnerQmod_.assign(k, {});
    garnerPrefixInv_.assign(k, 1);
    for (size_t i = 0; i < k; ++i) {
        const u64 qi = limbs_[i]->q;
        garnerQmod_[i].resize(i);
        u64 prefix = 1;
        for (size_t j = 0; j < i; ++j) {
            garnerQmod_[i][j] = limbs_[j]->q % qi;
            prefix = mulMod(prefix, garnerQmod_[i][j], qi);
        }
        garnerPrefixInv_[i] = invMod(prefix == 0 ? 1 : prefix, qi);
        EFFACT_ASSERT(prefix != 0, "duplicate prime in basis");
    }
}

std::shared_ptr<RnsBasis>
RnsBasis::prefix(size_t count) const
{
    EFFACT_ASSERT(count >= 1 && count <= limbs_.size(),
                  "prefix size %zu out of range", count);
    auto sub = std::shared_ptr<RnsBasis>(new RnsBasis());
    sub->n_ = n_;
    sub->limbs_.assign(limbs_.begin(),
                       limbs_.begin() + static_cast<long>(count));
    sub->finalize();
    return sub;
}

std::shared_ptr<RnsBasis>
RnsBasis::range(size_t begin, size_t end) const
{
    EFFACT_ASSERT(begin < end && end <= limbs_.size(),
                  "range [%zu, %zu) out of bounds", begin, end);
    auto sub = std::shared_ptr<RnsBasis>(new RnsBasis());
    sub->n_ = n_;
    sub->limbs_.assign(limbs_.begin() + static_cast<long>(begin),
                       limbs_.begin() + static_cast<long>(end));
    sub->finalize();
    return sub;
}

std::shared_ptr<RnsBasis>
RnsBasis::concat(const RnsBasis &other) const
{
    EFFACT_ASSERT(other.n_ == n_, "degree mismatch in basis concat");
    auto joined = std::shared_ptr<RnsBasis>(new RnsBasis());
    joined->n_ = n_;
    joined->limbs_ = limbs_;
    joined->limbs_.insert(joined->limbs_.end(), other.limbs_.begin(),
                          other.limbs_.end());
    joined->finalize();
    return joined;
}

BigInt
RnsBasis::product() const
{
    BigInt p(1);
    for (const auto &limb : limbs_)
        p.mulU64(limb->q);
    return p;
}

std::vector<u64>
RnsBasis::primes() const
{
    std::vector<u64> ps;
    ps.reserve(limbs_.size());
    for (const auto &limb : limbs_)
        ps.push_back(limb->q);
    return ps;
}

BigInt
RnsBasis::crtReconstruct(const std::vector<u64> &residues) const
{
    EFFACT_ASSERT(residues.size() == limbs_.size(),
                  "residue count mismatch");
    const size_t k = limbs_.size();
    // Garner: v_i = (r_i - sum_{j<i} v_j * prod_{m<j} q_m) *
    //               (q_0..q_{i-1})^-1  (mod q_i)
    std::vector<u64> v(k);
    for (size_t i = 0; i < k; ++i) {
        const u64 qi = limbs_[i]->q;
        u64 acc = residues[i] % qi;
        u64 partial = 0;
        u64 radix = 1;
        for (size_t j = 0; j < i; ++j) {
            partial = addMod(partial, mulMod(v[j], radix, qi), qi);
            radix = mulMod(radix, garnerQmod_[i][j], qi);
        }
        acc = subMod(acc, partial, qi);
        v[i] = mulMod(acc, garnerPrefixInv_[i], qi);
    }
    // x = v_0 + v_1 q_0 + v_2 q_0 q_1 + ... (Horner from the top).
    BigInt x;
    for (size_t i = k; i-- > 0;) {
        x.mulU64(limbs_[i]->q);
        x.addU64(v[i]);
    }
    return x;
}

double
RnsBasis::crtCenteredDouble(const std::vector<u64> &residues) const
{
    BigInt x = crtReconstruct(residues);
    BigInt q = product();
    BigInt half = q;
    half.shiftRight1();
    if (x.compare(half) > 0) {
        BigInt neg = q;
        neg.sub(x);
        return -neg.toDouble();
    }
    return x.toDouble();
}

} // namespace effact
