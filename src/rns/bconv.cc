#include "rns/bconv.h"

#include "common/logging.h"

namespace effact {

BaseConverter::BaseConverter(std::shared_ptr<const RnsBasis> from,
                             std::shared_ptr<const RnsBasis> to)
    : from_(std::move(from)), to_(std::move(to))
{
    EFFACT_ASSERT(from_->degree() == to_->degree(),
                  "degree mismatch in base conversion");
    const size_t l = from_->size();
    const size_t k = to_->size();

    qhatInv_.resize(l);
    qhatInvNInv_.resize(l);
    qhatModP_.assign(l, std::vector<u64>(k));
    qhatModPDm_.assign(l, std::vector<u64>(k));

    qInvReal_.resize(l);
    qModP_.resize(k);
    for (size_t i = 0; i < k; ++i) {
        const u64 pi = to_->prime(i);
        u64 acc = 1;
        for (size_t j = 0; j < l; ++j)
            acc = mulMod(acc, from_->prime(j) % pi, pi);
        qModP_[i] = acc;
    }

    for (size_t j = 0; j < l; ++j) {
        const u64 qj = from_->prime(j);
        qInvReal_[j] = 1.0L / static_cast<long double>(qj);
        // qhat_j mod q_j = prod_{j' != j} q_j' mod q_j.
        u64 qhat_mod_qj = 1;
        for (size_t j2 = 0; j2 < l; ++j2) {
            if (j2 != j)
                qhat_mod_qj = mulMod(qhat_mod_qj, from_->prime(j2) % qj, qj);
        }
        qhatInv_[j] = invMod(qhat_mod_qj, qj);
        const u64 n_inv = from_->limb(j).ntt.nInv();
        qhatInvNInv_[j] = mulMod(qhatInv_[j], n_inv, qj);

        for (size_t i = 0; i < k; ++i) {
            const u64 pi = to_->prime(i);
            u64 qhat_mod_pi = 1;
            for (size_t j2 = 0; j2 < l; ++j2) {
                if (j2 != j)
                    qhat_mod_pi =
                        mulMod(qhat_mod_pi, from_->prime(j2) % pi, pi);
            }
            qhatModP_[j][i] = qhat_mod_pi;
            qhatModPDm_[j][i] = to_->limb(i).mont.toDoubleMont(qhat_mod_pi);
        }
    }
}

RnsPoly
BaseConverter::convert(const RnsPoly &a) const
{
    EFFACT_ASSERT(a.format() == PolyFormat::Coeff,
                  "BConv operates coefficient-wise (Coeff format)");
    EFFACT_ASSERT(a.limbCount() == from_->size(), "basis mismatch");
    const size_t n = a.degree();
    const size_t l = from_->size();
    const size_t k = to_->size();

    // t_j = a_j * qhat_j^-1 mod q_j (one vector MULT per source limb).
    std::vector<std::vector<u64>> t(l);
    for (size_t j = 0; j < l; ++j) {
        const Barrett &br = from_->limb(j).barrett;
        t[j].resize(n);
        const auto &src = a.limb(j);
        for (size_t i = 0; i < n; ++i)
            t[j][i] = br.mul(src[i], qhatInv_[j]);
    }

    // out_p = sum_j t_j * (qhat_j mod p) — l MAC passes per target limb.
    RnsPoly out(to_, PolyFormat::Coeff);
    for (size_t p = 0; p < k; ++p) {
        const Barrett &br = to_->limb(p).barrett;
        const u64 pi = to_->prime(p);
        auto &dst = out.limb(p);
        for (size_t j = 0; j < l; ++j) {
            const u64 c = qhatModP_[j][p];
            for (size_t i = 0; i < n; ++i)
                dst[i] = addMod(dst[i], br.mul(t[j][i], c), pi);
        }
    }
    return out;
}

RnsPoly
BaseConverter::convertExact(const RnsPoly &a) const
{
    EFFACT_ASSERT(a.format() == PolyFormat::Coeff,
                  "BConv operates coefficient-wise (Coeff format)");
    EFFACT_ASSERT(a.limbCount() == from_->size(), "basis mismatch");
    const size_t n = a.degree();
    const size_t l = from_->size();
    const size_t k = to_->size();

    std::vector<std::vector<u64>> t(l);
    std::vector<u64> overflow(n); // e = round(sum v_j / q_j) per coeff
    std::vector<long double> frac(n, 0.0L);
    for (size_t j = 0; j < l; ++j) {
        const Barrett &br = from_->limb(j).barrett;
        t[j].resize(n);
        const auto &src = a.limb(j);
        for (size_t i = 0; i < n; ++i) {
            t[j][i] = br.mul(src[i], qhatInv_[j]);
            frac[i] += static_cast<long double>(t[j][i]) * qInvReal_[j];
        }
    }
    for (size_t i = 0; i < n; ++i)
        overflow[i] = static_cast<u64>(frac[i] + 0.5L);

    RnsPoly out(to_, PolyFormat::Coeff);
    for (size_t p = 0; p < k; ++p) {
        const Barrett &br = to_->limb(p).barrett;
        const u64 pi = to_->prime(p);
        auto &dst = out.limb(p);
        for (size_t j = 0; j < l; ++j) {
            const u64 c = qhatModP_[j][p];
            for (size_t i = 0; i < n; ++i)
                dst[i] = addMod(dst[i], br.mul(t[j][i], c), pi);
        }
        for (size_t i = 0; i < n; ++i) {
            u64 corr = mulMod(overflow[i] % pi, qModP_[p], pi);
            dst[i] = subMod(dst[i], corr, pi);
        }
    }
    return out;
}

RnsPoly
BaseConverter::convertMontgomery(const RnsPoly &a_sm, bool scale_n_inv) const
{
    EFFACT_ASSERT(a_sm.format() == PolyFormat::Coeff,
                  "BConv operates coefficient-wise (Coeff format)");
    EFFACT_ASSERT(a_sm.limbCount() == from_->size(), "basis mismatch");
    const size_t n = a_sm.degree();
    const size_t l = from_->size();
    const size_t k = to_->size();

    // MontMult(SM input, NM constant) -> NM intermediate (Sec. IV-D5).
    std::vector<std::vector<u64>> t(l);
    for (size_t j = 0; j < l; ++j) {
        const Montgomery &mont = from_->limb(j).mont;
        const u64 c = scale_n_inv ? qhatInvNInv_[j] : qhatInv_[j];
        t[j].resize(n);
        const auto &src = a_sm.limb(j);
        for (size_t i = 0; i < n; ++i)
            t[j][i] = mont.mul(src[i], c);
    }

    // MontMult(NM intermediate, DM constant) -> SM output: the DM constant
    // re-lifts the result into the Montgomery domain for free.
    RnsPoly out(to_, PolyFormat::Coeff);
    for (size_t p = 0; p < k; ++p) {
        const Montgomery &mont = to_->limb(p).mont;
        const u64 pi = to_->prime(p);
        auto &dst = out.limb(p);
        for (size_t j = 0; j < l; ++j) {
            const u64 c = qhatModPDm_[j][p];
            for (size_t i = 0; i < n; ++i)
                dst[i] = addMod(dst[i], mont.mul(t[j][i], c), pi);
        }
    }
    return out;
}

} // namespace effact
