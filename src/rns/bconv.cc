#include "rns/bconv.h"

#include "common/logging.h"
#include "math/kernels.h"

namespace effact {

BaseConverter::BaseConverter(std::shared_ptr<const RnsBasis> from,
                             std::shared_ptr<const RnsBasis> to)
    : from_(std::move(from)), to_(std::move(to))
{
    EFFACT_ASSERT(from_->degree() == to_->degree(),
                  "degree mismatch in base conversion");
    const size_t l = from_->size();
    const size_t k = to_->size();

    qhatInv_.resize(l);
    qhatInvNInv_.resize(l);
    qhatModP_.assign(l, std::vector<u64>(k));
    qhatModPDm_.assign(l, std::vector<u64>(k));

    qInvReal_.resize(l);
    qModP_.resize(k);
    for (size_t i = 0; i < k; ++i) {
        const u64 pi = to_->prime(i);
        u64 acc = 1;
        for (size_t j = 0; j < l; ++j)
            acc = mulMod(acc, from_->prime(j) % pi, pi);
        qModP_[i] = acc;
    }

    for (size_t j = 0; j < l; ++j) {
        const u64 qj = from_->prime(j);
        qInvReal_[j] = 1.0L / static_cast<long double>(qj);
        // qhat_j mod q_j = prod_{j' != j} q_j' mod q_j.
        u64 qhat_mod_qj = 1;
        for (size_t j2 = 0; j2 < l; ++j2) {
            if (j2 != j)
                qhat_mod_qj = mulMod(qhat_mod_qj, from_->prime(j2) % qj, qj);
        }
        qhatInv_[j] = invMod(qhat_mod_qj, qj);
        const u64 n_inv = from_->limb(j).ntt.nInv();
        qhatInvNInv_[j] = mulMod(qhatInv_[j], n_inv, qj);

        for (size_t i = 0; i < k; ++i) {
            const u64 pi = to_->prime(i);
            u64 qhat_mod_pi = 1;
            for (size_t j2 = 0; j2 < l; ++j2) {
                if (j2 != j)
                    qhat_mod_pi =
                        mulMod(qhat_mod_pi, from_->prime(j2) % pi, pi);
            }
            qhatModP_[j][i] = qhat_mod_pi;
            qhatModPDm_[j][i] = to_->limb(i).mont.toDoubleMont(qhat_mod_pi);
        }
    }
}

RnsPoly
BaseConverter::convert(const RnsPoly &a) const
{
    EFFACT_ASSERT(a.format() == PolyFormat::Coeff,
                  "BConv operates coefficient-wise (Coeff format)");
    EFFACT_ASSERT(a.limbCount() == from_->size(), "basis mismatch");
    const size_t n = a.degree();
    const size_t l = from_->size();
    const size_t k = to_->size();
    const kernels::KernelTable &kern = kernels::active();

    // t_j = a_j * qhat_j^-1 mod q_j (one vector MULT per source limb),
    // into one flat aligned scratch buffer instead of l separate
    // allocations. Per-limb reducer state (the Barrett context and the
    // constant's derived form) is hoisted once per kernel call.
    AlignedU64Vec t(l * n);
    for (size_t j = 0; j < l; ++j)
        kern.mulConstV(t.data() + j * n, a.limb(j).data(), n, qhatInv_[j],
                       from_->limb(j).barrett);

    // out_p = sum_j t_j * (qhat_j mod p) — l MAC passes per target limb.
    RnsPoly out(to_, PolyFormat::Coeff);
    for (size_t p = 0; p < k; ++p) {
        const Barrett &br = to_->limb(p).barrett;
        u64 *dst = out.limb(p).data();
        for (size_t j = 0; j < l; ++j)
            kern.macConstV(dst, t.data() + j * n, n, qhatModP_[j][p], br);
    }
    return out;
}

RnsPoly
BaseConverter::convertExact(const RnsPoly &a) const
{
    EFFACT_ASSERT(a.format() == PolyFormat::Coeff,
                  "BConv operates coefficient-wise (Coeff format)");
    EFFACT_ASSERT(a.limbCount() == from_->size(), "basis mismatch");
    const size_t n = a.degree();
    const size_t l = from_->size();
    const size_t k = to_->size();
    const kernels::KernelTable &kern = kernels::active();

    AlignedU64Vec t(l * n);
    std::vector<u64> overflow(n); // e = round(sum v_j / q_j) per coeff
    std::vector<long double> frac(n, 0.0L);
    for (size_t j = 0; j < l; ++j) {
        u64 *tj = t.data() + j * n;
        kern.mulConstV(tj, a.limb(j).data(), n, qhatInv_[j],
                       from_->limb(j).barrett);
        // The overflow estimate stays scalar long-double arithmetic
        // (not a dispatched kernel): same j-major accumulation order as
        // ever, so the rounded estimate is unchanged on every tier.
        const long double q_inv = qInvReal_[j];
        for (size_t i = 0; i < n; ++i)
            frac[i] += static_cast<long double>(tj[i]) * q_inv;
    }
    for (size_t i = 0; i < n; ++i)
        overflow[i] = static_cast<u64>(frac[i] + 0.5L);

    RnsPoly out(to_, PolyFormat::Coeff);
    for (size_t p = 0; p < k; ++p) {
        const Barrett &br = to_->limb(p).barrett;
        const u64 pi = to_->prime(p);
        u64 *dst = out.limb(p).data();
        for (size_t j = 0; j < l; ++j)
            kern.macConstV(dst, t.data() + j * n, n, qhatModP_[j][p], br);
        const u64 q_mod_p = qModP_[p];
        for (size_t i = 0; i < n; ++i) {
            u64 corr = mulMod(overflow[i] % pi, q_mod_p, pi);
            dst[i] = subMod(dst[i], corr, pi);
        }
    }
    return out;
}

RnsPoly
BaseConverter::convertMontgomery(const RnsPoly &a_sm, bool scale_n_inv) const
{
    EFFACT_ASSERT(a_sm.format() == PolyFormat::Coeff,
                  "BConv operates coefficient-wise (Coeff format)");
    EFFACT_ASSERT(a_sm.limbCount() == from_->size(), "basis mismatch");
    const size_t n = a_sm.degree();
    const size_t l = from_->size();
    const size_t k = to_->size();
    const kernels::KernelTable &kern = kernels::active();

    // MontMult(SM input, NM constant) -> NM intermediate (Sec. IV-D5).
    const std::vector<u64> &c1 = scale_n_inv ? qhatInvNInv_ : qhatInv_;
    AlignedU64Vec t(l * n);
    for (size_t j = 0; j < l; ++j)
        kern.montMulConstV(t.data() + j * n, a_sm.limb(j).data(), n, c1[j],
                           from_->limb(j).mont);

    // MontMult(NM intermediate, DM constant) -> SM output: the DM constant
    // re-lifts the result into the Montgomery domain for free.
    RnsPoly out(to_, PolyFormat::Coeff);
    for (size_t p = 0; p < k; ++p) {
        const Montgomery &mont = to_->limb(p).mont;
        u64 *dst = out.limb(p).data();
        for (size_t j = 0; j < l; ++j)
            kern.montMacConstV(dst, t.data() + j * n, n, qhatModPDm_[j][p],
                               mont);
    }
    return out;
}

} // namespace effact
