/**
 * @file
 * RNS bases: ordered sets of NTT-friendly limb primes sharing a ring
 * degree N (Sec. II-A). A basis owns per-prime contexts (Barrett,
 * Montgomery and NTT plans) that polynomials and converters reference.
 */
#ifndef EFFACT_RNS_BASIS_H
#define EFFACT_RNS_BASIS_H

#include <cstddef>
#include <memory>
#include <vector>

#include "math/bigint.h"
#include "math/mod_arith.h"
#include "math/montgomery.h"
#include "math/ntt.h"

namespace effact {

/** Everything needed to compute in Z_q[X]/(X^N+1) for one limb prime q. */
struct LimbContext
{
    LimbContext(size_t n, u64 q_in)
        : q(q_in), barrett(q_in), mont(q_in), ntt(n, q_in)
    {}

    u64 q;
    Barrett barrett;
    Montgomery mont;
    Ntt ntt;
};

/** An ordered RNS basis {q_0, ..., q_{k-1}} over a fixed ring degree. */
class RnsBasis
{
  public:
    /** Builds limb contexts for `primes` at ring degree `n`. */
    RnsBasis(size_t n, const std::vector<u64> &primes);

    /** Builds a sub-basis sharing contexts with this one. */
    std::shared_ptr<RnsBasis> prefix(size_t count) const;

    /** Sub-basis of limbs [begin, end), sharing contexts. */
    std::shared_ptr<RnsBasis> range(size_t begin, size_t end) const;

    /** Concatenation of this basis with `other` (shared contexts). */
    std::shared_ptr<RnsBasis> concat(const RnsBasis &other) const;

    size_t degree() const { return n_; }
    size_t size() const { return limbs_.size(); }

    const LimbContext &limb(size_t i) const { return *limbs_[i]; }
    u64 prime(size_t i) const { return limbs_[i]->q; }

    /** Product of all limb primes as a big integer. */
    BigInt product() const;

    /** All primes in order. */
    std::vector<u64> primes() const;

    /**
     * Garner mixed-radix CRT: reconstructs the unique x in [0, Q) with
     * x ≡ residues[i] (mod q_i). `residues` has one value per limb.
     */
    BigInt crtReconstruct(const std::vector<u64> &residues) const;

    /**
     * Centered CRT value as a double: the representative of the residues
     * in (-Q/2, Q/2], converted approximately.
     */
    double crtCenteredDouble(const std::vector<u64> &residues) const;

  private:
    RnsBasis() = default;

    /** Precomputes the Garner tables after limbs_ is final. */
    void finalize();

    size_t n_ = 0;
    std::vector<std::shared_ptr<const LimbContext>> limbs_;
    /** garnerQmod_[i][j] = q_j mod q_i for j < i. */
    std::vector<std::vector<u64>> garnerQmod_;
    /** garnerPrefixInv_[i] = (q_0 ... q_{i-1})^-1 mod q_i. */
    std::vector<u64> garnerPrefixInv_;
};

} // namespace effact

#endif // EFFACT_RNS_BASIS_H
