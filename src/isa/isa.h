/**
 * @file
 * The EFFACT vector ISA (Table II): residue-polynomial-level instructions
 * executed by the accelerator. One instruction operates on one residue
 * polynomial of N coefficients, vectorized over `lanes` hardware lanes.
 *
 * Machine instructions are the post-compilation form: operands are SRAM
 * register ids (the compiler splits on-chip SRAM into residue-polynomial-
 * sized registers, Sec. IV-B2) or streaming FIFO tokens (Sec. IV-B3), and
 * loads/stores carry HBM addresses.
 */
#ifndef EFFACT_ISA_ISA_H
#define EFFACT_ISA_ISA_H

#include <cstdint>
#include <string>
#include <vector>

#include "math/mod_arith.h"

namespace effact {

/** Machine opcodes, Table II. */
enum class Opcode : uint8_t {
    MMUL,     ///< modular multiply (vector x vector or x immediate)
    MMAD,     ///< modular add (vector + vector or + immediate)
    MSUB,     ///< modular subtract (encoded as MMAD with negation flag)
    MMAC,     ///< fused multiply-accumulate (executes on reused NTT units)
    NTT,      ///< forward NTT on one residue
    INTT,     ///< inverse NTT on one residue
    AUTO,     ///< automorphism (fixed network + auto-mapping units)
    LOAD_RES, ///< load a residue from HBM into SRAM
    STORE_RES,///< store a residue from SRAM to HBM
    VEC_COPY, ///< move a residue between on-chip SRAM registers
};

/** Operand kinds for machine instructions. */
enum class OperandKind : uint8_t {
    None,
    Reg,    ///< SRAM register (one residue polynomial)
    Stream, ///< streaming FIFO operand fed straight from HBM or an FU
    Imm,    ///< scalar immediate broadcast over the residue
};

/** One machine operand. */
struct Operand
{
    OperandKind kind = OperandKind::None;
    int reg = -1;    ///< register id for Reg
    u64 value = 0;   ///< immediate value, HBM address, or stream token
    bool dram = false; ///< Stream operand fed from DRAM (vs FU FIFO)

    static Operand none() { return {}; }
    static Operand regOp(int r) { return {OperandKind::Reg, r, 0, false}; }
    static Operand stream(u64 token, bool from_dram = false)
    {
        return {OperandKind::Stream, -1, token, from_dram};
    }
    static Operand imm(u64 v) { return {OperandKind::Imm, -1, v, false}; }
};

/** A machine instruction. */
struct MachInst
{
    Opcode op = Opcode::MMUL;
    Operand dest;
    Operand src0;
    Operand src1;
    /**
     * Third source: the MMAC accumulator (`dest = src0 * src1 + src2`).
     * Like any vector source it may be a register, an FU-to-FU FIFO
     * token, or a DRAM stream — which is what lets fused MAC chains ride
     * the FIFOs end to end instead of pinning an SRAM register per
     * chain. `None` on every other opcode; the destination is always
     * write-only.
     */
    Operand src2;
    uint32_t modulus = 0; ///< limb prime index (selects FU constants)
    u64 imm = 0;          ///< automorphism Galois element, etc.
    u64 hbmAddr = 0;      ///< HBM address for LOAD/STORE/stream fill
    int irId = -1;        ///< originating IR value (debug/stats)

    // --- Edge accessors (dependence construction / resource decode) ----

    /** True iff `o` is a streaming operand fed straight from DRAM. */
    static bool dramStream(const Operand &o)
    {
        return o.kind == OperandKind::Stream && o.dram;
    }

    /** Defines its destination register/FIFO token (stores do not). */
    bool writesDest() const { return op != Opcode::STORE_RES; }

    /** Number of source operands streaming from DRAM (0 to 3). */
    int dramStreamSources() const
    {
        return (dramStream(src0) ? 1 : 0) + (dramStream(src1) ? 1 : 0) +
               (dramStream(src2) ? 1 : 0);
    }
};

/** A compiled machine program plus metadata the simulator needs. */
struct MachineProgram
{
    std::vector<MachInst> insts;
    size_t numRegs = 0;        ///< SRAM registers used
    size_t residueBytes = 0;   ///< bytes per residue polynomial
    size_t spillLoads = 0;     ///< regalloc-inserted reloads
    size_t spillStores = 0;    ///< regalloc-inserted spills
    size_t streamedOps = 0;    ///< operands converted to streaming

    /**
     * Registers at the top of the file reserved as the spill-reload
     * scratch pool (0 = unknown, e.g. a hand-built test program). Not
     * part of `fingerprint()`: it describes the allocator's partition
     * of the register file, not the instruction stream, and the
     * checked-in bench baselines pin the fingerprint.
     */
    size_t scratchRegs = 0;
};

/**
 * Order-sensitive 64-bit FNV-1a fingerprint over every instruction
 * field and the program metadata. Two programs fingerprint equal iff
 * codegen emitted the same instruction stream, so batch determinism
 * tests can compare compiles across thread counts without holding every
 * `MachineProgram` in memory.
 */
uint64_t fingerprint(const MachineProgram &prog);

/** Mnemonic for an opcode. */
const char *opcodeName(Opcode op);

/** Human-readable disassembly of one instruction. */
std::string disassemble(const MachInst &inst);

/** Disassembles a whole program (for tests and debugging). */
std::string disassemble(const MachineProgram &prog, size_t limit = 0);

} // namespace effact

#endif // EFFACT_ISA_ISA_H
