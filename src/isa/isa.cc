#include "isa/isa.h"

#include <sstream>

#include "common/logging.h"

namespace effact {

uint64_t
fingerprint(const MachineProgram &prog)
{
    uint64_t h = 14695981039346656037ULL; // FNV-1a offset basis
    auto mix = [&h](u64 v) {
        // Hash the value bytewise so field boundaries stay distinct.
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (v >> (byte * 8)) & 0xff;
            h *= 1099511628211ULL;
        }
    };
    mix(prog.insts.size());
    mix(prog.numRegs);
    mix(prog.residueBytes);
    mix(prog.spillLoads);
    mix(prog.spillStores);
    mix(prog.streamedOps);
    for (const MachInst &mi : prog.insts) {
        mix(static_cast<u64>(mi.op));
        for (const Operand *o : {&mi.dest, &mi.src0, &mi.src1, &mi.src2}) {
            mix(static_cast<u64>(o->kind));
            mix(static_cast<u64>(static_cast<int64_t>(o->reg)));
            mix(o->value);
            mix(o->dram ? 1 : 0);
        }
        mix(mi.modulus);
        mix(mi.imm);
        mix(mi.hbmAddr);
        mix(static_cast<u64>(static_cast<int64_t>(mi.irId)));
    }
    return h;
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::MMUL: return "MMUL";
      case Opcode::MMAD: return "MMAD";
      case Opcode::MSUB: return "MSUB";
      case Opcode::MMAC: return "MMAC";
      case Opcode::NTT: return "NTT";
      case Opcode::INTT: return "INTT";
      case Opcode::AUTO: return "AUTO";
      case Opcode::LOAD_RES: return "LoadRes";
      case Opcode::STORE_RES: return "StoreRes";
      case Opcode::VEC_COPY: return "VecCopy";
    }
    panic("unknown opcode %d", static_cast<int>(op));
}

namespace {

std::string
operandStr(const Operand &o)
{
    switch (o.kind) {
      case OperandKind::None:
        return "-";
      case OperandKind::Reg:
        return "r" + std::to_string(o.reg);
      case OperandKind::Stream:
        return "fifo" + std::to_string(o.value);
      case OperandKind::Imm:
        return "#" + std::to_string(o.value);
    }
    return "?";
}

} // namespace

std::string
disassemble(const MachInst &inst)
{
    std::ostringstream os;
    os << opcodeName(inst.op) << " " << operandStr(inst.dest);
    if (inst.src0.kind != OperandKind::None)
        os << ", " << operandStr(inst.src0);
    if (inst.src1.kind != OperandKind::None)
        os << ", " << operandStr(inst.src1);
    if (inst.src2.kind != OperandKind::None)
        os << ", acc " << operandStr(inst.src2);
    os << " [q" << inst.modulus << "]";
    if (inst.op == Opcode::AUTO)
        os << " elt=" << inst.imm;
    if (inst.op == Opcode::LOAD_RES || inst.op == Opcode::STORE_RES)
        os << " @0x" << std::hex << inst.hbmAddr << std::dec;
    return os.str();
}

std::string
disassemble(const MachineProgram &prog, size_t limit)
{
    std::ostringstream os;
    size_t count = limit == 0 ? prog.insts.size()
                              : std::min(limit, prog.insts.size());
    for (size_t i = 0; i < count; ++i)
        os << i << ": " << disassemble(prog.insts[i]) << "\n";
    if (count < prog.insts.size())
        os << "... (" << (prog.insts.size() - count) << " more)\n";
    return os.str();
}

} // namespace effact
