#include "ckks/params.h"

#include <cmath>

#include "common/bitops.h"
#include "common/logging.h"
#include "math/primes.h"

namespace effact {

CkksContext::CkksContext(const CkksParams &params) : params_(params)
{
    n_ = size_t(1) << params.logN;
    EFFACT_ASSERT(params.levels >= 1, "need at least one level");
    EFFACT_ASSERT(params.dnum >= 1 && params.dnum <= params.levels,
                  "dnum must be in [1, levels]");
    alpha_ = ceilDiv(params.levels, params.dnum);
    scale_ = std::pow(2.0, double(params.logScale));

    // q_0 gets logQ0 bits; the remaining data primes hug the scale so that
    // rescale keeps the tracked scale close to Delta. Special primes use
    // logQ0 bits so P dominates every digit product's noise.
    auto q0 = genNttPrimes(1, params.logQ0, n_);
    std::vector<u64> exclude = q0;
    std::vector<u64> q_rest;
    if (params.levels > 1) {
        q_rest = genNttPrimes(params.levels - 1, params.logScale, n_,
                              exclude);
        exclude.insert(exclude.end(), q_rest.begin(), q_rest.end());
    }
    auto p_primes = genNttPrimes(alpha_, params.logQ0, n_, exclude);

    std::vector<u64> q_primes = q0;
    q_primes.insert(q_primes.end(), q_rest.begin(), q_rest.end());

    q_basis_ = std::make_shared<RnsBasis>(n_, q_primes);
    p_basis_ = std::make_shared<RnsBasis>(n_, p_primes);
    qp_basis_ = q_basis_->concat(*p_basis_);

    p_mod_q_.resize(params.levels);
    p_inv_mod_q_.resize(params.levels);
    for (size_t j = 0; j < params.levels; ++j) {
        const u64 qj = q_basis_->prime(j);
        u64 acc = 1;
        for (size_t i = 0; i < alpha_; ++i)
            acc = mulMod(acc, p_basis_->prime(i) % qj, qj);
        p_mod_q_[j] = acc;
        p_inv_mod_q_[j] = invMod(acc, qj);
    }

    mod_up_cache_.resize(params.levels + 1);
    for (auto &per_level : mod_up_cache_)
        per_level.resize(params.dnum);
    mod_down_cache_.resize(params.levels + 1);
}

std::shared_ptr<const RnsBasis>
CkksContext::qBasisAt(size_t level) const
{
    return q_basis_->prefix(level);
}

std::shared_ptr<const RnsBasis>
CkksContext::qpBasisAt(size_t level) const
{
    return q_basis_->prefix(level)->concat(*p_basis_);
}

std::pair<size_t, size_t>
CkksContext::digitRange(size_t digit, size_t level) const
{
    size_t begin = digit * alpha_;
    size_t end = std::min((digit + 1) * alpha_, level);
    return {begin, end};
}

size_t
CkksContext::digitCount(size_t level) const
{
    return ceilDiv(level, alpha_);
}

const BaseConverter &
CkksContext::modUpConverter(size_t digit, size_t level) const
{
    EFFACT_ASSERT(level <= params_.levels && digit < params_.dnum,
                  "modUpConverter(%zu, %zu) out of range", digit, level);
    auto &slot = mod_up_cache_[level][digit];
    if (!slot) {
        auto [begin, end] = digitRange(digit, level);
        EFFACT_ASSERT(begin < end, "digit %zu inactive at level %zu", digit,
                      level);
        slot = std::make_unique<BaseConverter>(q_basis_->range(begin, end),
                                               qpBasisAt(level));
    }
    return *slot;
}

const BaseConverter &
CkksContext::modDownConverter(size_t level) const
{
    EFFACT_ASSERT(level >= 1 && level <= params_.levels,
                  "modDownConverter level %zu out of range", level);
    auto &slot = mod_down_cache_[level];
    if (!slot)
        slot = std::make_unique<BaseConverter>(p_basis_, qBasisAt(level));
    return *slot;
}

} // namespace effact
