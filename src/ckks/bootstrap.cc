#include "ckks/bootstrap.h"

#include <cmath>

#include "common/bitops.h"
#include "common/logging.h"

namespace effact {

namespace {

/**
 * Divides a Chebyshev-basis polynomial by T_K: c = q*T_K + r, using
 * T_j = 2*T_K*T_{j-K} - T_{2K-j} for K < j < 2K. Requires deg(c) < 2K.
 */
void
chebyDivide(std::vector<double> &c, size_t big_k, std::vector<double> &q)
{
    const size_t d = c.size() - 1;
    EFFACT_ASSERT(d < 2 * big_k, "chebyDivide requires deg < 2K");
    q.assign(d >= big_k ? d - big_k + 1 : 1, 0.0);
    for (size_t j = d; j >= big_k && j > 0; --j) {
        if (c[j] == 0.0)
            continue;
        if (j == big_k) {
            q[0] += c[j];
        } else {
            q[j - big_k] += 2.0 * c[j];
            c[2 * big_k - j] -= c[j];
        }
        c[j] = 0.0;
    }
    c.resize(big_k); // remainder has degree < K
}

} // namespace

Bootstrapper::Bootstrapper(const CkksContext &ctx,
                           const CkksEncoder &encoder,
                           const CkksEvaluator &eval,
                           const BootstrapConfig &config)
    : ctx_(ctx), encoder_(encoder), eval_(eval), config_(config)
{
    const size_t slots = ctx.slots();
    EFFACT_ASSERT(isPowerOfTwo(config.babySteps),
                  "babySteps must be a power of two");

    // Build the special-FFT matrix F numerically by probing the encoder:
    // column k of F is fftSpecial(e_k). slots x slots, row-major.
    std::vector<cplx> f_mat(slots * slots), finv_mat(slots * slots);
    for (size_t k = 0; k < slots; ++k) {
        std::vector<cplx> col(slots, cplx(0, 0));
        col[k] = cplx(1, 0);
        encoder.fftSpecial(col);
        for (size_t i = 0; i < slots; ++i)
            f_mat[i * slots + k] = col[i];
        std::vector<cplx> col2(slots, cplx(0, 0));
        col2[k] = cplx(1, 0);
        encoder.fftSpecialInv(col2);
        for (size_t i = 0; i < slots; ++i)
            finv_mat[i * slots + k] = col2[i];
    }

    auto scaled = [&](const std::vector<cplx> &m, cplx factor,
                      bool conj_entries) {
        std::vector<cplx> out(m.size());
        for (size_t i = 0; i < m.size(); ++i)
            out[i] = factor * (conj_entries ? std::conj(m[i]) : m[i]);
        return out;
    };

    // CtS: lo = Re(F^-1 z) = 0.5 F^-1 z + 0.5 conj(F^-1) z̄
    //      hi = Im(F^-1 z) = -0.5i F^-1 z + 0.5i conj(F^-1) z̄
    cts_a_lo_ = std::make_unique<LinearTransform>(
        scaled(finv_mat, cplx(0.5, 0), false), slots);
    cts_b_lo_ = std::make_unique<LinearTransform>(
        scaled(finv_mat, cplx(0.5, 0), true), slots);
    cts_a_hi_ = std::make_unique<LinearTransform>(
        scaled(finv_mat, cplx(0, -0.5), false), slots);
    cts_b_hi_ = std::make_unique<LinearTransform>(
        scaled(finv_mat, cplx(0, 0.5), true), slots);

    // StC: z' = F lo + (iF) hi.
    stc_lo_ = std::make_unique<LinearTransform>(
        scaled(f_mat, cplx(1, 0), false), slots);
    stc_hi_ = std::make_unique<LinearTransform>(
        scaled(f_mat, cplx(0, 1), false), slots);

    // EvalMod target: f(x) = q'/(2pi) sin(2pi x / q') on |x| <= (K+1) q',
    // where q' = q0 / Delta is the modulus in message units. The range
    // bound is adjusted so that 1/bound * Delta is an exact integer:
    // the EvalMod normalization constant then encodes without rounding,
    // whose error would otherwise be amplified by `bound` (the dominant
    // precision loss in an early version of this pipeline).
    const double q_prime =
        static_cast<double>(ctx.qBasis()->prime(0)) / ctx.scale();
    const double bound_raw = (config.kRange + 1.0) * q_prime;
    const double c_int = std::floor(ctx.scale() / bound_raw);
    EFFACT_ASSERT(c_int >= 1.0, "EvalMod range exceeds the scale");
    const double bound = ctx.scale() / c_int;
    sine_ = ChebyshevSeries::fit(
        [q_prime](double x) {
            return q_prime / (2.0 * M_PI) * std::sin(2.0 * M_PI * x /
                                                     q_prime);
        },
        -bound, bound, config.sineDegree);
}

std::vector<int>
Bootstrapper::requiredRotations() const
{
    std::vector<bool> used(ctx_.slots(), false);
    for (const auto *lt : {cts_a_lo_.get(), cts_b_lo_.get(),
                           cts_a_hi_.get(), cts_b_hi_.get(), stc_lo_.get(),
                           stc_hi_.get()}) {
        for (int s : lt->requiredRotations())
            if (s != 0)
                used[static_cast<size_t>(s)] = true;
    }
    std::vector<int> steps;
    for (size_t s = 0; s < used.size(); ++s)
        if (used[s])
            steps.push_back(static_cast<int>(s));
    return steps;
}

Ciphertext
Bootstrapper::modRaise(const Ciphertext &ct) const
{
    EFFACT_ASSERT(ct.level() == 1,
                  "modRaise expects a level-1 ciphertext (got %zu)",
                  ct.level());
    const u64 q0 = ctx_.qBasis()->prime(0);
    const size_t n = ctx_.degree();
    auto full = ctx_.qBasisAt(ctx_.levels());

    Ciphertext out;
    out.scale = ct.scale;
    for (const auto &poly : ct.polys) {
        RnsPoly c = poly;
        c.toCoeff();
        std::vector<i64> coeffs(n);
        for (size_t i = 0; i < n; ++i)
            coeffs[i] = centered(c.limb(0)[i], q0);
        RnsPoly raised(full, PolyFormat::Coeff);
        raised.setFromSigned(coeffs);
        raised.toEval();
        out.polys.push_back(std::move(raised));
    }
    return out;
}

std::pair<Ciphertext, Ciphertext>
Bootstrapper::coeffToSlot(const Ciphertext &ct) const
{
    Ciphertext ct_conj = eval_.conjugate(ct);
    Ciphertext lo = applyPairedTransform(eval_, *cts_a_lo_, *cts_b_lo_, ct,
                                         ct_conj);
    Ciphertext hi = applyPairedTransform(eval_, *cts_a_hi_, *cts_b_hi_, ct,
                                         ct_conj);
    return {std::move(lo), std::move(hi)};
}

Ciphertext
Bootstrapper::slotToCoeff(const Ciphertext &lo, const Ciphertext &hi) const
{
    Ciphertext a = stc_lo_->apply(eval_, lo);
    Ciphertext b = stc_hi_->apply(eval_, hi);
    return eval_.add(a, b);
}

Ciphertext
Bootstrapper::evalMod(const Ciphertext &ct) const
{
    // Normalize into [-1, 1] (the series' domain), then evaluate.
    const double bound = sine_.upper();
    Ciphertext y = eval_.rescale(
        eval_.multConst(ct, cplx(1.0 / bound, 0), ctx_.scale()));
    return evalChebyshev(sine_, y);
}

Ciphertext
Bootstrapper::evalChebyshev(const ChebyshevSeries &series,
                            const Ciphertext &y) const
{
    const size_t m = config_.babySteps;
    const size_t deg = series.degree();

    // Baby steps T_1..T_m. T_{2k} = 2 T_k^2 - 1; T_{2k+1} =
    // 2 T_k T_{k+1} - T_1 (doubling via self-add keeps the scale clean).
    std::vector<Ciphertext> baby(m + 1);
    baby[1] = y;
    for (size_t k = 2; k <= m; ++k) {
        if (k % 2 == 0) {
            Ciphertext sq = eval_.rescale(eval_.mult(baby[k / 2],
                                                     baby[k / 2]));
            Ciphertext doubled = eval_.add(sq, sq);
            baby[k] = eval_.addConst(doubled, cplx(-1.0, 0));
        } else {
            Ciphertext p = eval_.rescale(eval_.mult(baby[k / 2],
                                                    baby[k / 2 + 1]));
            Ciphertext doubled = eval_.add(p, p);
            baby[k] = eval_.sub(doubled, baby[1]);
        }
    }

    // Giant steps T_{2m}, T_{4m}, ...; T_{2K} is only needed while
    // 2K <= deg (the BSGS split never divides by more than T_deg).
    std::vector<Ciphertext> giant; // giant[j] = T_{m * 2^(j+1)}
    {
        Ciphertext cur = baby[m];
        size_t idx = m;
        while (idx * 2 <= deg) {
            Ciphertext sq = eval_.rescale(eval_.mult(cur, cur));
            Ciphertext doubled = eval_.add(sq, sq);
            cur = eval_.addConst(doubled, cplx(-1.0, 0));
            giant.push_back(cur);
            idx *= 2;
        }
    }

    // Coefficient vector a_k with the T_0 half-weight folded in.
    std::vector<double> coeffs = series.coeffs();
    if (!coeffs.empty())
        coeffs[0] *= 0.5;
    coeffs.resize(deg + 1);

    return evalChebyRec(std::move(coeffs), baby, giant);
}

Ciphertext
Bootstrapper::evalChebyBase(const std::vector<double> &coeffs,
                            const std::vector<Ciphertext> &baby) const
{
    // Direct sum c_0 + sum_{k>=1} c_k T_k for deg < babySteps.
    Ciphertext acc;
    bool first = true;
    for (size_t k = 1; k < coeffs.size(); ++k) {
        if (std::fabs(coeffs[k]) < 1e-15)
            continue;
        Ciphertext term = eval_.rescale(
            eval_.multConst(baby[k], cplx(coeffs[k], 0), ctx_.scale()));
        if (first) {
            acc = std::move(term);
            first = false;
        } else {
            acc = eval_.add(acc, term);
        }
    }
    if (first) {
        // All higher coefficients vanished: encode the constant alone on
        // a fresh zero ciphertext derived from T_1.
        acc = eval_.rescale(
            eval_.multConst(baby[1], cplx(0, 0), ctx_.scale()));
    }
    return eval_.addConst(acc, cplx(coeffs.empty() ? 0.0 : coeffs[0], 0));
}

Ciphertext
Bootstrapper::evalChebyRec(std::vector<double> coeffs,
                           const std::vector<Ciphertext> &baby,
                           const std::vector<Ciphertext> &giant) const
{
    const size_t m = config_.babySteps;
    // Trim trailing zeros to find the true degree.
    while (coeffs.size() > 1 && std::fabs(coeffs.back()) < 1e-15)
        coeffs.pop_back();
    const size_t deg = coeffs.size() - 1;

    if (deg < m)
        return evalChebyBase(coeffs, baby);

    // Pick K = m * 2^j, the largest giant step <= deg.
    size_t j = 0;
    size_t big_k = m;
    while (big_k * 2 <= deg) {
        big_k *= 2;
        ++j;
    }
    EFFACT_ASSERT(j <= giant.size(),
                  "giant step table too small (deg %zu, K %zu)", deg,
                  big_k);
    // T_K is baby[m] when K == m, otherwise the (j-1)-th giant step.
    const Ciphertext &t_k = j == 0 ? baby[m] : giant[j - 1];

    std::vector<double> quot;
    chebyDivide(coeffs, big_k, quot);

    Ciphertext q_eval = evalChebyRec(std::move(quot), baby, giant);
    Ciphertext r_eval = evalChebyRec(std::move(coeffs), baby, giant);
    Ciphertext prod = eval_.rescale(eval_.mult(q_eval, t_k));
    return eval_.add(prod, r_eval);
}

Ciphertext
Bootstrapper::bootstrap(const Ciphertext &ct) const
{
    Ciphertext base = ct.level() == 1 ? ct : eval_.levelTo(ct, 1);
    Ciphertext raised = modRaise(base);
    auto [lo, hi] = coeffToSlot(raised);
    Ciphertext lo2 = evalMod(lo);
    Ciphertext hi2 = evalMod(hi);
    return slotToCoeff(lo2, hi2);
}

} // namespace effact
