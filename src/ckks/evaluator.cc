#include "ckks/evaluator.h"

#include <cmath>

#include "common/logging.h"
#include "math/automorphism.h"

namespace effact {

CkksEvaluator::CkksEvaluator(const CkksContext &ctx,
                             const CkksEncoder &encoder,
                             const SwitchingKey *relin_key,
                             const GaloisKeys *galois_keys)
    : ctx_(ctx), encoder_(encoder), relin_key_(relin_key),
      galois_keys_(galois_keys)
{
}

void
CkksEvaluator::checkAddCompatible(const Ciphertext &a,
                                  const Ciphertext &b) const
{
    EFFACT_ASSERT(a.level() == b.level(),
                  "level mismatch in add: %zu vs %zu (use levelTo)",
                  a.level(), b.level());
    double rel = std::fabs(a.scale - b.scale) / a.scale;
    if (rel > 1e-4) {
        warn("adding ciphertexts with mismatched scales (rel err %.3g)",
             rel);
    }
}

Ciphertext
CkksEvaluator::add(const Ciphertext &a, const Ciphertext &b) const
{
    const Ciphertext *pa = &a;
    const Ciphertext *pb = &b;
    Ciphertext tmp;
    if (a.level() != b.level()) {
        if (a.level() > b.level()) {
            tmp = levelTo(a, b.level());
            pa = &tmp;
        } else {
            tmp = levelTo(b, a.level());
            pb = &tmp;
        }
    }
    checkAddCompatible(*pa, *pb);
    Ciphertext out = *pa;
    const size_t common = std::min(pa->size(), pb->size());
    for (size_t i = 0; i < common; ++i)
        out.polys[i].addInPlace(pb->polys[i]);
    for (size_t i = common; i < pb->size(); ++i)
        out.polys.push_back(pb->polys[i]);
    return out;
}

Ciphertext
CkksEvaluator::sub(const Ciphertext &a, const Ciphertext &b) const
{
    return add(a, negate(b));
}

Ciphertext
CkksEvaluator::negate(const Ciphertext &ct) const
{
    Ciphertext out = ct;
    for (auto &p : out.polys)
        p.negInPlace();
    return out;
}

Ciphertext
CkksEvaluator::addPlain(const Ciphertext &ct, const Plaintext &pt) const
{
    EFFACT_ASSERT(pt.poly.limbCount() == ct.level(),
                  "plaintext level mismatch in addPlain");
    double rel = std::fabs(ct.scale - pt.scale) / ct.scale;
    if (rel > 1e-4)
        warn("addPlain scale mismatch (rel err %.3g)", rel);
    Ciphertext out = ct;
    out.polys[0].addInPlace(pt.poly);
    return out;
}

Ciphertext
CkksEvaluator::addConst(const Ciphertext &ct, cplx value) const
{
    Plaintext pt = encoder_.encodeConstant(value, ct.scale, ct.level());
    return addPlain(ct, pt);
}

Ciphertext
CkksEvaluator::multPlain(const Ciphertext &ct, const Plaintext &pt) const
{
    EFFACT_ASSERT(pt.poly.limbCount() == ct.level(),
                  "plaintext level mismatch in multPlain");
    EFFACT_ASSERT(pt.poly.format() == PolyFormat::Eval,
                  "multPlain expects Eval-format plaintext");
    Ciphertext out = ct;
    for (auto &p : out.polys)
        p.mulEvalInPlace(pt.poly);
    out.scale = ct.scale * pt.scale;
    return out;
}

Ciphertext
CkksEvaluator::multConst(const Ciphertext &ct, cplx value,
                         double const_scale) const
{
    Plaintext pt = encoder_.encodeConstant(value, const_scale, ct.level());
    return multPlain(ct, pt);
}

Ciphertext
CkksEvaluator::mult(const Ciphertext &a, const Ciphertext &b) const
{
    EFFACT_ASSERT(relin_key_ != nullptr, "mult requires a relin key");
    EFFACT_ASSERT(a.size() == 2 && b.size() == 2,
                  "mult expects relinearized inputs");
    const Ciphertext *pa = &a;
    const Ciphertext *pb = &b;
    Ciphertext tmp;
    if (a.level() != b.level()) {
        if (a.level() > b.level()) {
            tmp = levelTo(a, b.level());
            pa = &tmp;
        } else {
            tmp = levelTo(b, a.level());
            pb = &tmp;
        }
    }

    // (d0, d1, d2) = (a0 b0, a0 b1 + a1 b0, a1 b1).
    RnsPoly d0 = pa->polys[0];
    d0.mulEvalInPlace(pb->polys[0]);
    RnsPoly d1a = pa->polys[0];
    d1a.mulEvalInPlace(pb->polys[1]);
    RnsPoly d1b = pa->polys[1];
    d1b.mulEvalInPlace(pb->polys[0]);
    d1a.addInPlace(d1b);
    RnsPoly d2 = pa->polys[1];
    d2.mulEvalInPlace(pb->polys[1]);

    auto [k0, k1] = keySwitch(d2, *relin_key_);
    d0.addInPlace(k0);
    d1a.addInPlace(k1);

    Ciphertext out;
    out.scale = pa->scale * pb->scale;
    out.polys.push_back(std::move(d0));
    out.polys.push_back(std::move(d1a));
    return out;
}

Ciphertext
CkksEvaluator::square(const Ciphertext &ct) const
{
    return mult(ct, ct);
}

Ciphertext
CkksEvaluator::rescale(const Ciphertext &ct) const
{
    const size_t level = ct.level();
    EFFACT_ASSERT(level >= 2, "cannot rescale at level %zu", level);
    const u64 q_last = ctx_.qBasis()->prime(level - 1);
    auto new_basis = ctx_.qBasisAt(level - 1);

    Ciphertext out;
    out.scale = ct.scale / static_cast<double>(q_last);
    for (const auto &poly : ct.polys) {
        RnsPoly c = poly;
        c.toCoeff();
        RnsPoly dropped(new_basis, PolyFormat::Coeff);
        const auto &last = c.limb(level - 1);
        for (size_t j = 0; j + 1 < level; ++j) {
            const u64 qj = ctx_.qBasis()->prime(j);
            const u64 inv = invMod(q_last % qj, qj);
            const Barrett &br = ctx_.qBasis()->limb(j).barrett;
            auto &dst = dropped.limb(j);
            const auto &src = c.limb(j);
            for (size_t i = 0; i < src.size(); ++i) {
                u64 t = subMod(src[i], last[i] % qj, qj);
                dst[i] = br.mul(t, inv);
            }
        }
        dropped.toEval();
        out.polys.push_back(std::move(dropped));
    }
    return out;
}

Ciphertext
CkksEvaluator::levelTo(const Ciphertext &ct, size_t target_level) const
{
    EFFACT_ASSERT(target_level >= 1 && target_level <= ct.level(),
                  "levelTo target %zu invalid from %zu", target_level,
                  ct.level());
    if (target_level == ct.level())
        return ct;
    Ciphertext out;
    out.scale = ct.scale;
    for (const auto &poly : ct.polys)
        out.polys.push_back(poly.prefixLimbs(target_level));
    return out;
}

Ciphertext
CkksEvaluator::rotate(const Ciphertext &ct, int steps) const
{
    EFFACT_ASSERT(galois_keys_ != nullptr, "rotate requires Galois keys");
    if (steps == 0)
        return ct;
    const u64 t = galoisElt(steps, ctx_.degree());
    auto it = galois_keys_->find(t);
    EFFACT_ASSERT(it != galois_keys_->end(),
                  "missing Galois key for step %d (element %llu)", steps,
                  static_cast<unsigned long long>(t));

    RnsPoly c0r = ct.polys[0].automorph(t);
    RnsPoly c1r = ct.polys[1].automorph(t);
    auto [k0, k1] = keySwitch(c1r, it->second);
    c0r.addInPlace(k0);

    Ciphertext out;
    out.scale = ct.scale;
    out.polys.push_back(std::move(c0r));
    out.polys.push_back(std::move(k1));
    return out;
}

Ciphertext
CkksEvaluator::conjugate(const Ciphertext &ct) const
{
    EFFACT_ASSERT(galois_keys_ != nullptr,
                  "conjugate requires Galois keys");
    const u64 t = galoisEltConjugate(ctx_.degree());
    auto it = galois_keys_->find(t);
    EFFACT_ASSERT(it != galois_keys_->end(), "missing conjugation key");

    RnsPoly c0r = ct.polys[0].automorph(t);
    RnsPoly c1r = ct.polys[1].automorph(t);
    auto [k0, k1] = keySwitch(c1r, it->second);
    c0r.addInPlace(k0);

    Ciphertext out;
    out.scale = ct.scale;
    out.polys.push_back(std::move(c0r));
    out.polys.push_back(std::move(k1));
    return out;
}

RnsPoly
CkksEvaluator::restrictKeyPoly(const RnsPoly &kp, size_t level) const
{
    const size_t levels = ctx_.levels();
    const size_t alpha = ctx_.alpha();
    std::vector<size_t> idx;
    idx.reserve(level + alpha);
    for (size_t j = 0; j < level; ++j)
        idx.push_back(j);
    for (size_t j = 0; j < alpha; ++j)
        idx.push_back(levels + j);
    return RnsPoly::gather(kp, ctx_.qpBasisAt(level), idx);
}

RnsPoly
CkksEvaluator::modDown(RnsPoly acc, size_t level) const
{
    const size_t alpha = ctx_.alpha();
    acc.toCoeff();

    std::vector<size_t> q_idx(level), p_idx(alpha);
    for (size_t j = 0; j < level; ++j)
        q_idx[j] = j;
    for (size_t j = 0; j < alpha; ++j)
        p_idx[j] = level + j;
    RnsPoly q_part = RnsPoly::gather(acc, ctx_.qBasisAt(level), q_idx);
    RnsPoly p_part = RnsPoly::gather(acc, ctx_.pBasis(), p_idx);

    RnsPoly conv = ctx_.modDownConverter(level).convertExact(p_part);
    q_part.subInPlace(conv);

    std::vector<u64> p_inv(level);
    for (size_t j = 0; j < level; ++j)
        p_inv[j] = ctx_.pInvModQ(j);
    q_part.mulScalarPerLimb(p_inv);
    q_part.toEval();
    return q_part;
}

std::pair<RnsPoly, RnsPoly>
CkksEvaluator::keySwitch(const RnsPoly &d, const SwitchingKey &key) const
{
    const size_t level = d.limbCount();
    RnsPoly dc = d;
    dc.toCoeff();

    auto qp_basis = ctx_.qpBasisAt(level);
    RnsPoly acc0(qp_basis, PolyFormat::Eval);
    RnsPoly acc1(qp_basis, PolyFormat::Eval);

    const size_t digits = ctx_.digitCount(level);
    EFFACT_ASSERT(digits <= key.b.size(), "switching key has too few digits");
    for (size_t digit = 0; digit < digits; ++digit) {
        auto [begin, end] = ctx_.digitRange(digit, level);
        std::vector<size_t> idx;
        for (size_t j = begin; j < end; ++j)
            idx.push_back(j);
        RnsPoly digit_poly = RnsPoly::gather(
            dc, ctx_.qBasis()->range(begin, end), idx);

        RnsPoly up = ctx_.modUpConverter(digit, level).convert(digit_poly);
        up.toEval();

        RnsPoly prod_b = up;
        prod_b.mulEvalInPlace(restrictKeyPoly(key.b[digit], level));
        acc0.addInPlace(prod_b);

        up.mulEvalInPlace(restrictKeyPoly(key.a[digit], level));
        acc1.addInPlace(up);
    }

    return {modDown(std::move(acc0), level), modDown(std::move(acc1),
                                                     level)};
}

} // namespace effact
