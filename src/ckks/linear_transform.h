/**
 * @file
 * Homomorphic linear transform (matrix-vector product on slots) via the
 * diagonal method: out = sum_d diag_d ⊙ rotate(ct, d). This is the
 * building block of bootstrapping's CtS/StC stages and of the MatMul1D /
 * BlockMatMul1D patterns the paper profiles in Fig. 3.
 */
#ifndef EFFACT_CKKS_LINEAR_TRANSFORM_H
#define EFFACT_CKKS_LINEAR_TRANSFORM_H

#include "ckks/evaluator.h"

namespace effact {

/** A slots x slots complex matrix applied homomorphically. */
class LinearTransform
{
  public:
    /**
     * `matrix` is row-major slots x slots; entries below `prune_eps` in
     * magnitude are treated as zero when collecting diagonals.
     */
    LinearTransform(std::vector<cplx> matrix, size_t slots,
                    double prune_eps = 1e-12);

    /** Rotation steps needed (for Galois key generation). */
    const std::vector<int> &requiredRotations() const { return steps_; }

    /**
     * Applies the transform: one multPlain per non-zero diagonal at the
     * ciphertext's level, one rescale at the end (consumes one level).
     */
    Ciphertext apply(const CkksEvaluator &eval, const Ciphertext &ct) const;

    size_t slots() const { return slots_; }
    size_t diagonalCount() const { return steps_.size(); }

  private:
    size_t slots_;
    std::vector<int> steps_;                 ///< non-zero diagonal indices
    std::vector<std::vector<cplx>> diags_;   ///< diagonal vectors
};

/** out = A*x + B*conj(x), the paired form CtS/StC use (one level). */
Ciphertext applyPairedTransform(const CkksEvaluator &eval,
                                const LinearTransform &a,
                                const LinearTransform &b,
                                const Ciphertext &ct,
                                const Ciphertext &ct_conj);

} // namespace effact

#endif // EFFACT_CKKS_LINEAR_TRANSFORM_H
