/**
 * @file
 * CKKS plaintext and ciphertext value types.
 */
#ifndef EFFACT_CKKS_TYPES_H
#define EFFACT_CKKS_TYPES_H

#include <complex>
#include <vector>

#include "rns/poly.h"

namespace effact {

using cplx = std::complex<double>;

/** An encoded message: one polynomial plus the scale it was encoded at. */
struct Plaintext
{
    RnsPoly poly;
    double scale = 1.0;
};

/**
 * A CKKS ciphertext: 2 polynomials (3 transiently, before
 * relinearization), the active level (= limb count) and the scale.
 */
struct Ciphertext
{
    std::vector<RnsPoly> polys;
    double scale = 1.0;

    size_t level() const { return polys.empty() ? 0 : polys[0].limbCount(); }
    size_t size() const { return polys.size(); }
};

} // namespace effact

#endif // EFFACT_CKKS_TYPES_H
