/**
 * @file
 * CKKS encoder: canonical-embedding packing of N/2 complex slots into a
 * degree-N real polynomial (Sec. II-A), via the "special FFT" over the
 * 5^j orbit of 2N-th roots of unity. The slot ordering is chosen so that
 * the Galois automorphism sigma_{5} rotates slots left by one — the
 * convention the evaluator's rotation relies on.
 */
#ifndef EFFACT_CKKS_ENCODER_H
#define EFFACT_CKKS_ENCODER_H

#include "ckks/params.h"
#include "ckks/types.h"

namespace effact {

/** Encoder/decoder bound to a context. */
class CkksEncoder
{
  public:
    explicit CkksEncoder(const CkksContext &ctx);

    /**
     * Encodes `msg` (size must divide N/2; shorter vectors are packed
     * sparsely with gap replication) at `scale` onto the `level`-limb
     * prefix basis. Returns an Eval-format plaintext.
     */
    Plaintext encode(const std::vector<cplx> &msg, double scale,
                     size_t level) const;

    /** Encodes a constant into every slot. */
    Plaintext encodeConstant(cplx value, double scale, size_t level) const;

    /** Decodes `slots` values from a plaintext (any format; not modified) */
    std::vector<cplx> decode(const Plaintext &pt, size_t slots) const;

    /** Inverse special FFT on raw slot values (exposed for tests). */
    void fftSpecialInv(std::vector<cplx> &vals) const;

    /** Forward special FFT (decode direction, exposed for tests). */
    void fftSpecial(std::vector<cplx> &vals) const;

    const CkksContext &context() const { return ctx_; }

  private:
    const CkksContext &ctx_;
    std::vector<u64> rotGroup_;  ///< 5^j mod 2N
    std::vector<cplx> ksiPows_;  ///< exp(2*pi*i*k / 2N)
};

} // namespace effact

#endif // EFFACT_CKKS_ENCODER_H
