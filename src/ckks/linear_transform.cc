#include "ckks/linear_transform.h"

#include "common/logging.h"

namespace effact {

LinearTransform::LinearTransform(std::vector<cplx> matrix, size_t slots,
                                 double prune_eps)
    : slots_(slots)
{
    EFFACT_ASSERT(matrix.size() == slots * slots,
                  "matrix must be slots x slots");
    for (size_t d = 0; d < slots; ++d) {
        std::vector<cplx> diag(slots);
        bool nonzero = false;
        for (size_t i = 0; i < slots; ++i) {
            diag[i] = matrix[i * slots + (i + d) % slots];
            nonzero |= std::abs(diag[i]) > prune_eps;
        }
        if (nonzero) {
            steps_.push_back(static_cast<int>(d));
            diags_.push_back(std::move(diag));
        }
    }
}

Ciphertext
LinearTransform::apply(const CkksEvaluator &eval, const Ciphertext &ct)
    const
{
    const CkksEncoder &encoder = eval.encoder();
    const CkksContext &ctx = eval.context();
    EFFACT_ASSERT(!steps_.empty(), "empty linear transform");

    Ciphertext acc;
    bool first = true;
    for (size_t k = 0; k < steps_.size(); ++k) {
        Ciphertext rot =
            steps_[k] == 0 ? ct : eval.rotate(ct, steps_[k]);
        Plaintext diag = encoder.encode(diags_[k], ctx.scale(),
                                        rot.level());
        Ciphertext term = eval.multPlain(rot, diag);
        if (first) {
            acc = std::move(term);
            first = false;
        } else {
            acc = eval.add(acc, term);
        }
    }
    return eval.rescale(acc);
}

Ciphertext
applyPairedTransform(const CkksEvaluator &eval, const LinearTransform &a,
                     const LinearTransform &b, const Ciphertext &ct,
                     const Ciphertext &ct_conj)
{
    // Both halves are evaluated without rescale alignment issues because
    // they consume exactly one multiplicative level each.
    Ciphertext lhs = a.apply(eval, ct);
    Ciphertext rhs = b.apply(eval, ct_conj);
    return eval.add(lhs, rhs);
}

} // namespace effact
