/**
 * @file
 * CKKS homomorphic evaluator: HADD/HMULT/HROT (Fig. 1b level 2),
 * rescale, and dnum-digit key switching with ModUp/ModDown (Sec. II-C).
 */
#ifndef EFFACT_CKKS_EVALUATOR_H
#define EFFACT_CKKS_EVALUATOR_H

#include "ckks/encoder.h"
#include "ckks/keys.h"

namespace effact {

/** Evaluator bound to a context plus optional relin/Galois keys. */
class CkksEvaluator
{
  public:
    CkksEvaluator(const CkksContext &ctx, const CkksEncoder &encoder,
                  const SwitchingKey *relin_key = nullptr,
                  const GaloisKeys *galois_keys = nullptr);

    // --- Arithmetic -----------------------------------------------------

    /** Homomorphic addition (levels are aligned automatically). */
    Ciphertext add(const Ciphertext &a, const Ciphertext &b) const;

    /** Homomorphic subtraction. */
    Ciphertext sub(const Ciphertext &a, const Ciphertext &b) const;

    /** ct + encoded plaintext (same level; scale must match). */
    Ciphertext addPlain(const Ciphertext &ct, const Plaintext &pt) const;

    /** ct + constant in every slot (encoded at ct's scale). */
    Ciphertext addConst(const Ciphertext &ct, cplx value) const;

    /** ct * encoded plaintext; scale multiplies; no rescale. */
    Ciphertext multPlain(const Ciphertext &ct, const Plaintext &pt) const;

    /** ct * constant; the constant is encoded at `const_scale`. */
    Ciphertext multConst(const Ciphertext &ct, cplx value,
                         double const_scale) const;

    /** Negation. */
    Ciphertext negate(const Ciphertext &ct) const;

    /** HMULT with relinearization; scale multiplies; no rescale. */
    Ciphertext mult(const Ciphertext &a, const Ciphertext &b) const;

    /** Square with relinearization. */
    Ciphertext square(const Ciphertext &ct) const;

    // --- Maintenance (Fig. 1b level 1.5) --------------------------------

    /** Divides by the last chain prime; drops one level. */
    Ciphertext rescale(const Ciphertext &ct) const;

    /** Drops limbs without dividing (level alignment). */
    Ciphertext levelTo(const Ciphertext &ct, size_t target_level) const;

    /** HROT by `steps` slots (uses the matching Galois key). */
    Ciphertext rotate(const Ciphertext &ct, int steps) const;

    /** Complex conjugation of every slot. */
    Ciphertext conjugate(const Ciphertext &ct) const;

    /**
     * Key switching: given d (a polynomial decryptable under some s'),
     * returns (k0, k1) with k0 + k1*s ≈ d*s' (all over Q_level).
     */
    std::pair<RnsPoly, RnsPoly> keySwitch(const RnsPoly &d,
                                          const SwitchingKey &key) const;

    const CkksContext &context() const { return ctx_; }
    const CkksEncoder &encoder() const { return encoder_; }

  private:
    /** Restricts a full-basis key polynomial to Q_level ∪ P. */
    RnsPoly restrictKeyPoly(const RnsPoly &kp, size_t level) const;

    /** ModDown: Q_l ∪ P -> Q_l with P division (exact converter). */
    RnsPoly modDown(RnsPoly acc, size_t level) const;

    /** Aligns b's level/scale to a's for addition-like ops. */
    void checkAddCompatible(const Ciphertext &a, const Ciphertext &b) const;

    const CkksContext &ctx_;
    const CkksEncoder &encoder_;
    const SwitchingKey *relin_key_;
    const GaloisKeys *galois_keys_;
};

} // namespace effact

#endif // EFFACT_CKKS_EVALUATOR_H
