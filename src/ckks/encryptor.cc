#include "ckks/encryptor.h"

#include "common/logging.h"

namespace effact {

CkksEncryptor::CkksEncryptor(const CkksContext &ctx, const SecretKey &sk,
                             Rng &rng)
    : ctx_(ctx), sk_(sk), noise_(ctx, rng), rng_(rng)
{
}

RnsPoly
CkksEncryptor::secretAtLevel(size_t level) const
{
    std::vector<size_t> idx(level);
    for (size_t j = 0; j < level; ++j)
        idx[j] = j;
    return RnsPoly::gather(sk_.s, ctx_.qBasisAt(level), idx);
}

Ciphertext
CkksEncryptor::encrypt(const Plaintext &pt)
{
    EFFACT_ASSERT(pt.poly.format() == PolyFormat::Eval,
                  "encrypt expects Eval-format plaintext");
    const size_t level = pt.poly.limbCount();
    RnsPoly s = secretAtLevel(level);

    RnsPoly c1(pt.poly.basisPtr(), PolyFormat::Eval);
    c1.sampleUniform(rng_);
    RnsPoly e = noise_.sampleError(pt.poly.basisPtr());

    // c0 = -c1*s + m + e so that c0 + c1*s = m + e.
    RnsPoly c0 = c1;
    c0.mulEvalInPlace(s);
    c0.negInPlace();
    c0.addInPlace(pt.poly);
    c0.addInPlace(e);

    Ciphertext ct;
    ct.scale = pt.scale;
    ct.polys.push_back(std::move(c0));
    ct.polys.push_back(std::move(c1));
    return ct;
}

Plaintext
CkksEncryptor::decrypt(const Ciphertext &ct) const
{
    EFFACT_ASSERT(ct.size() >= 2 && ct.size() <= 3,
                  "unsupported ciphertext size %zu", ct.size());
    const size_t level = ct.level();
    RnsPoly s = secretAtLevel(level);

    // m = c0 + c1*s (+ c2*s^2).
    RnsPoly m = ct.polys[1];
    m.mulEvalInPlace(s);
    m.addInPlace(ct.polys[0]);
    if (ct.size() == 3) {
        RnsPoly c2s2 = ct.polys[2];
        c2s2.mulEvalInPlace(s);
        c2s2.mulEvalInPlace(s);
        m.addInPlace(c2s2);
    }

    Plaintext pt;
    pt.scale = ct.scale;
    pt.poly = std::move(m);
    return pt;
}

} // namespace effact
