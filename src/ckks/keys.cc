#include "ckks/keys.h"

#include <cmath>

#include "common/logging.h"
#include "math/automorphism.h"

namespace effact {

KeyGenerator::KeyGenerator(const CkksContext &ctx, Rng &rng)
    : ctx_(ctx), rng_(rng)
{
}

SecretKey
KeyGenerator::genSecretKey()
{
    const size_t n = ctx_.degree();
    const int h = ctx_.params().hammingWeight;
    EFFACT_ASSERT(h > 0 && static_cast<size_t>(h) <= n,
                  "invalid Hamming weight %d", h);

    std::vector<i64> coeffs(n, 0);
    int placed = 0;
    while (placed < h) {
        size_t pos = rng_.uniform(n);
        if (coeffs[pos] != 0)
            continue;
        coeffs[pos] = (rng_.next() & 1) ? 1 : -1;
        ++placed;
    }

    SecretKey sk;
    sk.s = RnsPoly(ctx_.qpBasis(), PolyFormat::Coeff);
    sk.s.setFromSigned(coeffs);
    sk.s.toEval();
    return sk;
}

RnsPoly
KeyGenerator::sampleError(std::shared_ptr<const RnsBasis> basis)
{
    const size_t n = basis->degree();
    std::vector<i64> coeffs(n);
    for (auto &c : coeffs)
        c = static_cast<i64>(std::llround(rng_.gaussian(
            ctx_.params().sigma)));
    RnsPoly e(std::move(basis), PolyFormat::Coeff);
    e.setFromSigned(coeffs);
    e.toEval();
    return e;
}

std::vector<u64>
KeyGenerator::gadgetFactor(size_t digit) const
{
    const size_t levels = ctx_.levels();
    const size_t alpha = ctx_.alpha();
    auto [begin, end] = ctx_.digitRange(digit, levels);
    EFFACT_ASSERT(begin < end, "digit %zu empty", digit);

    const auto qp = ctx_.qpBasis();
    auto digit_basis = ctx_.qBasis()->range(begin, end);

    // c_d = [(Q/Q_d)^-1 mod Q_d] as an exact integer (Garner CRT).
    std::vector<u64> inv_residues;
    for (size_t j = begin; j < end; ++j) {
        const u64 qj = ctx_.qBasis()->prime(j);
        u64 qhat = 1; // (Q/Q_d) mod q_j
        for (size_t j2 = 0; j2 < levels; ++j2) {
            if (j2 < begin || j2 >= end)
                qhat = mulMod(qhat, ctx_.qBasis()->prime(j2) % qj, qj);
        }
        inv_residues.push_back(invMod(qhat, qj));
    }
    BigInt c_d = digit_basis->crtReconstruct(inv_residues);

    std::vector<u64> g(qp->size());
    for (size_t i = 0; i < qp->size(); ++i) {
        const u64 r = qp->prime(i);
        // P mod r (zero when r is a special prime).
        u64 p_mod = 1;
        for (size_t k = 0; k < alpha; ++k)
            p_mod = mulMod(p_mod, ctx_.pBasis()->prime(k) % r, r);
        // (Q/Q_d) mod r.
        u64 qhat_mod = 1;
        for (size_t j2 = 0; j2 < levels; ++j2) {
            if (j2 < begin || j2 >= end)
                qhat_mod = mulMod(qhat_mod,
                                  ctx_.qBasis()->prime(j2) % r, r);
        }
        g[i] = mulMod(mulMod(p_mod, qhat_mod, r), c_d.modU64(r), r);
    }
    return g;
}

SwitchingKey
KeyGenerator::genSwitchingKey(const RnsPoly &s_from, const SecretKey &sk)
{
    EFFACT_ASSERT(s_from.format() == PolyFormat::Eval,
                  "source key must be in Eval format");
    const size_t dnum = ctx_.params().dnum;
    const size_t levels = ctx_.levels();

    SwitchingKey key;
    for (size_t d = 0; d < dnum; ++d) {
        auto [begin, end] = ctx_.digitRange(d, levels);
        if (begin >= end)
            break; // digit beyond the chain (levels not divisible by dnum)
        RnsPoly a(ctx_.qpBasis(), PolyFormat::Eval);
        a.sampleUniform(rng_);
        RnsPoly e = sampleError(ctx_.qpBasis());

        // b = -a*s + e + g_d * s_from
        RnsPoly b = a;
        b.mulEvalInPlace(sk.s);
        b.negInPlace();
        b.addInPlace(e);
        RnsPoly gs = s_from;
        gs.mulScalarPerLimb(gadgetFactor(d));
        b.addInPlace(gs);

        key.a.push_back(std::move(a));
        key.b.push_back(std::move(b));
    }
    return key;
}

SwitchingKey
KeyGenerator::genRelinKey(const SecretKey &sk)
{
    RnsPoly s2 = sk.s;
    s2.mulEvalInPlace(sk.s);
    return genSwitchingKey(s2, sk);
}

SwitchingKey
KeyGenerator::genGaloisKey(const SecretKey &sk, u64 t)
{
    RnsPoly s_rot = sk.s.automorph(t);
    return genSwitchingKey(s_rot, sk);
}

GaloisKeys
KeyGenerator::genGaloisKeys(const SecretKey &sk,
                            const std::vector<int> &steps, bool conjugate)
{
    GaloisKeys keys;
    for (int step : steps) {
        u64 t = galoisElt(step, ctx_.degree());
        if (!keys.count(t))
            keys.emplace(t, genGaloisKey(sk, t));
    }
    if (conjugate) {
        u64 t = galoisEltConjugate(ctx_.degree());
        keys.emplace(t, genGaloisKey(sk, t));
    }
    return keys;
}

} // namespace effact
