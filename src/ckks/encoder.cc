#include "ckks/encoder.h"

#include <cmath>

#include "common/bitops.h"
#include "common/logging.h"

namespace effact {

namespace {

/** In-place bit-reversal permutation of a complex vector. */
void
arrayBitReverse(std::vector<cplx> &vals)
{
    const size_t size = vals.size();
    for (size_t i = 1, j = 0; i < size; ++i) {
        size_t bit = size >> 1;
        for (; j >= bit; bit >>= 1)
            j -= bit;
        j += bit;
        if (i < j)
            std::swap(vals[i], vals[j]);
    }
}

} // namespace

CkksEncoder::CkksEncoder(const CkksContext &ctx) : ctx_(ctx)
{
    const size_t n = ctx.degree();
    const size_t m = 2 * n;
    rotGroup_.resize(n / 2);
    u64 five = 1;
    for (size_t i = 0; i < n / 2; ++i) {
        rotGroup_[i] = five;
        five = (five * 5) % m;
    }
    ksiPows_.resize(m + 1);
    for (size_t k = 0; k <= m; ++k) {
        double angle = 2.0 * M_PI * double(k) / double(m);
        ksiPows_[k] = cplx(std::cos(angle), std::sin(angle));
    }
}

void
CkksEncoder::fftSpecial(std::vector<cplx> &vals) const
{
    const size_t size = vals.size();
    const size_t m = 2 * ctx_.degree();
    EFFACT_ASSERT(isPowerOfTwo(size), "slot count must be a power of two");
    arrayBitReverse(vals);
    for (size_t len = 2; len <= size; len <<= 1) {
        for (size_t i = 0; i < size; i += len) {
            const size_t lenh = len >> 1;
            const size_t lenq = len << 2;
            for (size_t j = 0; j < lenh; ++j) {
                size_t idx = (rotGroup_[j] % lenq) * m / lenq;
                cplx u = vals[i + j];
                cplx v = vals[i + j + lenh] * ksiPows_[idx];
                vals[i + j] = u + v;
                vals[i + j + lenh] = u - v;
            }
        }
    }
}

void
CkksEncoder::fftSpecialInv(std::vector<cplx> &vals) const
{
    const size_t size = vals.size();
    const size_t m = 2 * ctx_.degree();
    EFFACT_ASSERT(isPowerOfTwo(size), "slot count must be a power of two");
    for (size_t len = size; len >= 2; len >>= 1) {
        for (size_t i = 0; i < size; i += len) {
            const size_t lenh = len >> 1;
            const size_t lenq = len << 2;
            for (size_t j = 0; j < lenh; ++j) {
                size_t idx = (lenq - (rotGroup_[j] % lenq)) * m / lenq;
                cplx u = vals[i + j] + vals[i + j + lenh];
                cplx v = (vals[i + j] - vals[i + j + lenh]) * ksiPows_[idx];
                vals[i + j] = u;
                vals[i + j + lenh] = v;
            }
        }
    }
    arrayBitReverse(vals);
    for (auto &v : vals)
        v /= double(size);
}

Plaintext
CkksEncoder::encode(const std::vector<cplx> &msg, double scale,
                    size_t level) const
{
    const size_t n = ctx_.degree();
    const size_t nh = n / 2;
    const size_t slots = msg.size();
    EFFACT_ASSERT(slots >= 1 && slots <= nh && isPowerOfTwo(slots),
                  "slot count %zu invalid for N=%zu", slots, n);

    std::vector<cplx> vals = msg;
    fftSpecialInv(vals);

    const size_t gap = nh / slots;
    std::vector<i64> coeffs(n, 0);
    for (size_t i = 0; i < slots; ++i) {
        coeffs[i * gap] = static_cast<i64>(std::llround(vals[i].real() *
                                                        scale));
        coeffs[i * gap + nh] =
            static_cast<i64>(std::llround(vals[i].imag() * scale));
    }

    Plaintext pt;
    pt.scale = scale;
    pt.poly = RnsPoly(ctx_.qBasisAt(level), PolyFormat::Coeff);
    pt.poly.setFromSigned(coeffs);
    pt.poly.toEval();
    return pt;
}

Plaintext
CkksEncoder::encodeConstant(cplx value, double scale, size_t level) const
{
    // A constant in every slot is gap-replicated; encoding a single-slot
    // message achieves this with one coefficient pair.
    std::vector<cplx> one_slot(1, value);
    return encode(one_slot, scale, level);
}

std::vector<cplx>
CkksEncoder::decode(const Plaintext &pt, size_t slots) const
{
    const size_t n = ctx_.degree();
    const size_t nh = n / 2;
    EFFACT_ASSERT(slots >= 1 && slots <= nh && isPowerOfTwo(slots),
                  "slot count %zu invalid for N=%zu", slots, n);

    RnsPoly poly = pt.poly;
    poly.toCoeff();
    const RnsBasis &basis = poly.basis();
    const size_t gap = nh / slots;

    std::vector<cplx> vals(slots);
    std::vector<u64> residues(poly.limbCount());
    for (size_t i = 0; i < slots; ++i) {
        for (size_t j = 0; j < poly.limbCount(); ++j)
            residues[j] = poly.limb(j)[i * gap];
        double re = basis.crtCenteredDouble(residues) / pt.scale;
        for (size_t j = 0; j < poly.limbCount(); ++j)
            residues[j] = poly.limb(j)[i * gap + nh];
        double im = basis.crtCenteredDouble(residues) / pt.scale;
        vals[i] = cplx(re, im);
    }
    fftSpecial(vals);
    return vals;
}

} // namespace effact
