/**
 * @file
 * CKKS key material: secret key, dnum-digit switching keys (Sec. II-C),
 * and the key generator. Switching keys live on the full Q ∪ P basis;
 * the evaluator restricts them to the active level when used.
 */
#ifndef EFFACT_CKKS_KEYS_H
#define EFFACT_CKKS_KEYS_H

#include <map>

#include "ckks/params.h"
#include "ckks/types.h"
#include "common/rng.h"

namespace effact {

/** Secret key: sparse ternary s over Q ∪ P (Eval format). */
struct SecretKey
{
    RnsPoly s;
};

/**
 * A key-switching key from some source key s' to s: one (b_d, a_d) pair
 * per decomposition digit, b_d = -a_d*s + e_d + g_d*s', over Q ∪ P.
 */
struct SwitchingKey
{
    std::vector<RnsPoly> b; ///< per digit
    std::vector<RnsPoly> a; ///< per digit
};

/** Galois keys indexed by Galois element t. */
using GaloisKeys = std::map<u64, SwitchingKey>;

/** Generates secret, relinearization and Galois keys. */
class KeyGenerator
{
  public:
    KeyGenerator(const CkksContext &ctx, Rng &rng);

    /** Samples a sparse ternary secret of the configured Hamming weight */
    SecretKey genSecretKey();

    /** Relinearization key: switches s^2 back to s. */
    SwitchingKey genRelinKey(const SecretKey &sk);

    /** Galois key for element t: switches sigma_t(s) to s. */
    SwitchingKey genGaloisKey(const SecretKey &sk, u64 t);

    /** Galois keys for a set of rotation steps (plus conjugation opt-in) */
    GaloisKeys genGaloisKeys(const SecretKey &sk,
                             const std::vector<int> &steps,
                             bool conjugate = false);

    /** Gaussian error polynomial on `basis` (Eval format). */
    RnsPoly sampleError(std::shared_ptr<const RnsBasis> basis);

    /**
     * The digit gadget factor g_d mod every prime of Q ∪ P:
     * g_d = P * (Q/Q_d) * [(Q/Q_d)^-1 mod Q_d].
     */
    std::vector<u64> gadgetFactor(size_t digit) const;

    /** Core: switching key for an arbitrary source key polynomial. */
    SwitchingKey genSwitchingKey(const RnsPoly &s_from, const SecretKey &sk);

  private:
    const CkksContext &ctx_;
    Rng &rng_;
};

} // namespace effact

#endif // EFFACT_CKKS_KEYS_H
