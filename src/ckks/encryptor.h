/**
 * @file
 * Symmetric CKKS encryption/decryption. The paper's platform operates
 * server-side on ciphertexts; encryption here exists to give the test
 * suite and examples a functional end-to-end path (the stand-in for the
 * paper's Lattigo cross-validation).
 */
#ifndef EFFACT_CKKS_ENCRYPTOR_H
#define EFFACT_CKKS_ENCRYPTOR_H

#include "ckks/keys.h"

namespace effact {

/** Encrypts/decrypts with the secret key. */
class CkksEncryptor
{
  public:
    CkksEncryptor(const CkksContext &ctx, const SecretKey &sk, Rng &rng);

    /** Encrypts an Eval-format plaintext at its basis level. */
    Ciphertext encrypt(const Plaintext &pt);

    /** Decrypts a 2- or 3-component ciphertext into a plaintext. */
    Plaintext decrypt(const Ciphertext &ct) const;

    /** Secret key restricted to the first `level` Q-chain limbs. */
    RnsPoly secretAtLevel(size_t level) const;

  private:
    const CkksContext &ctx_;
    const SecretKey &sk_;
    KeyGenerator noise_;
    Rng &rng_;
};

} // namespace effact

#endif // EFFACT_CKKS_ENCRYPTOR_H
