/**
 * @file
 * CKKS parameter set and context (Table I / Table III of the paper).
 *
 * The context owns the modulus chain: L "data" primes q_0..q_{L-1}
 * (q_0 wider for decryption margin, the rest sized to the scale) plus
 * alpha special primes p_0..p_{alpha-1} for dnum-digit key-switching.
 */
#ifndef EFFACT_CKKS_PARAMS_H
#define EFFACT_CKKS_PARAMS_H

#include <cstddef>
#include <memory>
#include <vector>

#include "rns/bconv.h"
#include "rns/poly.h"

namespace effact {

/** User-facing CKKS parameters. */
struct CkksParams
{
    size_t logN = 13;       ///< ring degree 2^logN
    size_t levels = 8;      ///< number of q-chain primes L
    unsigned logScale = 40; ///< log2 of the encoding scale Delta
    unsigned logQ0 = 54;    ///< bit width of the first prime (paper: 54)
    size_t dnum = 4;        ///< key-switching decomposition digits
    int hammingWeight = 32; ///< secret key Hamming weight (sparse ternary)
    double sigma = 3.2;     ///< error standard deviation
};

/** Precomputed CKKS context shared by all scheme objects. */
class CkksContext
{
  public:
    explicit CkksContext(const CkksParams &params);

    const CkksParams &params() const { return params_; }
    size_t degree() const { return n_; }
    size_t slots() const { return n_ / 2; }
    size_t levels() const { return params_.levels; }
    size_t alpha() const { return alpha_; }
    double scale() const { return scale_; }

    /** Full Q-chain basis (L limbs). */
    std::shared_ptr<const RnsBasis> qBasis() const { return q_basis_; }

    /** Special-prime basis (alpha limbs). */
    std::shared_ptr<const RnsBasis> pBasis() const { return p_basis_; }

    /** Q-chain prefix of `level` limbs. */
    std::shared_ptr<const RnsBasis> qBasisAt(size_t level) const;

    /** Q_l ∪ P basis used during key switching at `level`. */
    std::shared_ptr<const RnsBasis> qpBasisAt(size_t level) const;

    /** Full Q ∪ P basis (keys live here). */
    std::shared_ptr<const RnsBasis> qpBasis() const { return qp_basis_; }

    /** Digit d's prime index range [begin, end) clipped to `level`. */
    std::pair<size_t, size_t> digitRange(size_t digit, size_t level) const;

    /** Number of digits active at `level`. */
    size_t digitCount(size_t level) const;

    /** P mod q_j for every q in the chain (ModDown divisor). */
    u64 pModQ(size_t j) const { return p_mod_q_[j]; }

    /** P^-1 mod q_j. */
    u64 pInvModQ(size_t j) const { return p_inv_mod_q_[j]; }

    /** Cached converter: digit `d` at `level` -> Q_level ∪ P. */
    const BaseConverter &modUpConverter(size_t digit, size_t level) const;

    /** Cached converter: P -> Q_level (for ModDown). */
    const BaseConverter &modDownConverter(size_t level) const;

  private:
    CkksParams params_;
    size_t n_;
    size_t alpha_;
    double scale_;
    std::shared_ptr<RnsBasis> q_basis_;
    std::shared_ptr<RnsBasis> p_basis_;
    std::shared_ptr<RnsBasis> qp_basis_;
    std::vector<u64> p_mod_q_;
    std::vector<u64> p_inv_mod_q_;

    mutable std::vector<std::vector<std::unique_ptr<BaseConverter>>>
        mod_up_cache_; ///< [level][digit]
    mutable std::vector<std::unique_ptr<BaseConverter>>
        mod_down_cache_; ///< [level]
};

} // namespace effact

#endif // EFFACT_CKKS_PARAMS_H
