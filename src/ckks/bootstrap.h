/**
 * @file
 * CKKS bootstrapping (Sec. V-A of the paper): ModRaise, CoeffToSlot,
 * EvalMod (scaled-sine approximation via Chebyshev BSGS evaluation) and
 * SlotToCoeff. Fully-packed: slots = N/2, CtS/StC are dense homomorphic
 * DFT-like transforms realized with the diagonal method.
 */
#ifndef EFFACT_CKKS_BOOTSTRAP_H
#define EFFACT_CKKS_BOOTSTRAP_H

#include <memory>

#include "ckks/linear_transform.h"
#include "math/cheby.h"

namespace effact {

/** Knobs of the bootstrapping pipeline. */
struct BootstrapConfig
{
    /**
     * Chebyshev degree of the EvalMod sine. Must exceed the argument
     * span in radians, 2*pi*(kRange+1), with margin.
     */
    size_t sineDegree = 255;
    size_t babySteps = 16; ///< BSGS baby-step count (power of two)
    /**
     * Probabilistic bound K on the ModRaise overflow |I| (standard
     * practice: K=12 covers sparse ternary secrets with h <= 64).
     */
    double kRange = 12.0;
};

/** Precomputed bootstrapper bound to a context/evaluator. */
class Bootstrapper
{
  public:
    Bootstrapper(const CkksContext &ctx, const CkksEncoder &encoder,
                 const CkksEvaluator &eval,
                 const BootstrapConfig &config = {});

    /** Rotation steps the Galois key set must cover. */
    std::vector<int> requiredRotations() const;

    /** Full pipeline: level-1 ciphertext in, refreshed ciphertext out. */
    Ciphertext bootstrap(const Ciphertext &ct) const;

    // --- Individual stages (exposed for tests and benchmarks) -----------

    /** Re-interprets the level-1 ciphertext on the full chain (m + q0 I) */
    Ciphertext modRaise(const Ciphertext &ct) const;

    /** Coefficients -> slots; returns (lo, hi) halves. One level. */
    std::pair<Ciphertext, Ciphertext> coeffToSlot(const Ciphertext &ct)
        const;

    /** Approximate x mod q0 on every slot via the scaled sine. */
    Ciphertext evalMod(const Ciphertext &ct) const;

    /** Slots -> coefficients, merging the (lo, hi) halves. One level. */
    Ciphertext slotToCoeff(const Ciphertext &lo, const Ciphertext &hi)
        const;

    /**
     * Homomorphic Chebyshev-series evaluation (Han-Ki BSGS): `y` must
     * hold values in [-1, 1]; depth is about log2(degree) + 1.
     */
    Ciphertext evalChebyshev(const ChebyshevSeries &series,
                             const Ciphertext &y) const;

    const BootstrapConfig &config() const { return config_; }
    const ChebyshevSeries &sineSeries() const { return sine_; }

  private:
    /** Base case: direct sum over baby-step Chebyshev polynomials. */
    Ciphertext evalChebyBase(const std::vector<double> &coeffs,
                             const std::vector<Ciphertext> &baby) const;

    /** Recursive BSGS combine. */
    Ciphertext evalChebyRec(std::vector<double> coeffs,
                            const std::vector<Ciphertext> &baby,
                            const std::vector<Ciphertext> &giant) const;

    const CkksContext &ctx_;
    const CkksEncoder &encoder_;
    const CkksEvaluator &eval_;
    BootstrapConfig config_;

    std::unique_ptr<LinearTransform> cts_a_lo_, cts_b_lo_;
    std::unique_ptr<LinearTransform> cts_a_hi_, cts_b_hi_;
    std::unique_ptr<LinearTransform> stc_lo_, stc_hi_;
    ChebyshevSeries sine_;
};

} // namespace effact

#endif // EFFACT_CKKS_BOOTSTRAP_H
