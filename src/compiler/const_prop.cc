#include "compiler/pass.h"

namespace effact {

size_t
runConstProp(IrProgram &prog, StatSet &stats)
{
    // Identity folding on immediates: x*1 -> x, x+0 -> x, and chained
    // immediate multiplies combined into a single constant (the real
    // compiler folds mod-q; the structural IR combines the raw values,
    // which is equivalent for instruction counting).
    std::vector<int> fwd(prog.insts.size());
    for (size_t i = 0; i < fwd.size(); ++i)
        fwd[i] = static_cast<int>(i);
    auto resolve = [&](int v) {
        while (v >= 0 && fwd[v] != v)
            v = fwd[v];
        return v;
    };

    size_t folded = 0;
    size_t chained = 0;
    for (size_t i = 0; i < prog.insts.size(); ++i) {
        IrInst &inst = prog.insts[i];
        if (inst.dead)
            continue;
        for (int *slot : inst.operandSlots())
            if (*slot >= 0)
                *slot = resolve(*slot);
        if (!inst.useImm)
            continue;
        if (inst.op == IrOp::Mul && inst.imm == 1) {
            fwd[i] = inst.a;
            inst.dead = true;
            ++folded;
        } else if ((inst.op == IrOp::Add || inst.op == IrOp::Sub) &&
                   inst.imm == 0) {
            fwd[i] = inst.a;
            inst.dead = true;
            ++folded;
        } else if (inst.op == IrOp::Mul && inst.a >= 0) {
            // Mul(imm c2) of Mul(imm c1) with a single consumer chain:
            // combine into one multiply when the inner result is only
            // used here.
            IrInst &src = prog.insts[inst.a];
            if (!src.dead && src.op == IrOp::Mul && src.useImm &&
                src.modulus == inst.modulus) {
                // Count inner uses.
                // (cheap scan is avoided: rely on the fact that chained
                //  immediates in our lowering are single-use; a wrong
                //  guess only duplicates a multiply, never miscomputes)
                inst.imm = inst.imm * src.imm; // structural fold
                inst.a = src.a;
                ++chained;
            }
        }
    }
    stats.add("constProp.identityFolded", double(folded));
    stats.add("constProp.immChained", double(chained));
    return folded + chained;
}

} // namespace effact
