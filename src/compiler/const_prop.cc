#include "compiler/pass.h"

namespace effact {

namespace {

bool
identityFoldable(const IrInst &inst)
{
    if (inst.dead || !inst.useImm)
        return false;
    if (inst.op == IrOp::Mul && inst.imm == 1)
        return true;
    return (inst.op == IrOp::Add || inst.op == IrOp::Sub) && inst.imm == 0;
}

/** Legacy single-threaded scan — the serial oracle path. */
std::pair<size_t, size_t>
runConstPropSerial(IrProgram &prog)
{
    // Identity folding on immediates: x*1 -> x, x+0 -> x, and chained
    // immediate multiplies combined into a single constant (the real
    // compiler folds mod-q; the structural IR combines the raw values,
    // which is equivalent for instruction counting).
    std::vector<int> fwd(prog.insts.size());
    for (size_t i = 0; i < fwd.size(); ++i)
        fwd[i] = static_cast<int>(i);
    auto resolve = [&](int v) {
        while (v >= 0 && fwd[v] != v)
            v = fwd[v];
        return v;
    };

    size_t folded = 0;
    size_t chained = 0;
    for (size_t i = 0; i < prog.insts.size(); ++i) {
        IrInst &inst = prog.insts[i];
        if (inst.dead)
            continue;
        for (int *slot : inst.operandSlots())
            if (*slot >= 0)
                *slot = resolve(*slot);
        if (!inst.useImm)
            continue;
        if (inst.op == IrOp::Mul && inst.imm == 1) {
            fwd[i] = inst.a;
            inst.dead = true;
            ++folded;
        } else if ((inst.op == IrOp::Add || inst.op == IrOp::Sub) &&
                   inst.imm == 0) {
            fwd[i] = inst.a;
            inst.dead = true;
            ++folded;
        } else if (inst.op == IrOp::Mul && inst.a >= 0) {
            // Mul(imm c2) of Mul(imm c1) with a single consumer chain:
            // combine into one multiply when the inner result is only
            // used here.
            IrInst &src = prog.insts[inst.a];
            if (!src.dead && src.op == IrOp::Mul && src.useImm &&
                src.modulus == inst.modulus) {
                // Count inner uses.
                // (cheap scan is avoided: rely on the fact that chained
                //  immediates in our lowering are single-use; a wrong
                //  guess only duplicates a multiply, never miscomputes)
                inst.imm = inst.imm * src.imm; // structural fold
                inst.a = src.a;
                ++chained;
            }
        }
    }
    return {folded, chained};
}

/**
 * Region-sharded equivalent. Identity foldability is a pure function of
 * an instruction's entry state (nothing in this pass rewrites the op /
 * imm / useImm fields another instruction's identity check reads), so
 * the forwarding graph is known up front: `parent[i] = a` for foldable
 * instructions. Pointer-jumping resolves every operand to the same
 * non-folded root the serial scan reaches, and the folds themselves are
 * applied shard-locally.
 *
 * The Mul-of-Mul chain folds are NOT order-free — a chain of stacked
 * immediate multiplies folds one link per *visit* in ascending order
 * (each candidate reads its producer's already-folded imm/a) — so they
 * run as a short sequential sub-phase over the shard-collected
 * candidate list, concatenated in ascending order. That reproduces both
 * the serial rewrites and the serial `chained` count exactly; the
 * sub-phase touches only the (few) candidates, not the whole program.
 */
std::pair<size_t, size_t>
runConstPropParallel(IrProgram &prog, const ParallelExec &exec)
{
    const size_t n = prog.insts.size();
    std::vector<int> parent(n), next(n);
    exec.forChunks(n, kDefaultChunkGrain,
                   [&](size_t, size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) {
                           const IrInst &inst = prog.insts[i];
                           parent[i] = identityFoldable(inst)
                                           ? inst.a
                                           : static_cast<int>(i);
                       }
                   });
    const size_t chunk_count = splitChunks(n, kDefaultChunkGrain).size();
    std::vector<uint8_t> chunk_changed(chunk_count, 0);
    for (;;) {
        std::fill(chunk_changed.begin(), chunk_changed.end(), 0);
        exec.forChunks(n, kDefaultChunkGrain,
                       [&](size_t c, size_t begin, size_t end) {
                           uint8_t changed = 0;
                           for (size_t i = begin; i < end; ++i) {
                               const int p = parent[i];
                               const int pp =
                                   p >= 0 && parent[p] != p ? parent[p] : p;
                               next[i] = pp;
                               changed |= pp != p;
                           }
                           chunk_changed[c] = changed;
                       });
        parent.swap(next);
        bool any = false;
        for (uint8_t f : chunk_changed)
            any = any || f != 0;
        if (!any)
            break;
    }

    // Resolve + identity-fold, sharded; collect chain-fold candidates.
    std::vector<size_t> chunk_folded(chunk_count, 0);
    std::vector<std::vector<int>> chunk_candidates(chunk_count);
    exec.forChunks(
        n, kDefaultChunkGrain, [&](size_t c, size_t begin, size_t end) {
            size_t folded = 0;
            std::vector<int> &candidates = chunk_candidates[c];
            for (size_t i = begin; i < end; ++i) {
                IrInst &inst = prog.insts[i];
                if (inst.dead)
                    continue;
                for (int *slot : inst.operandSlots())
                    if (*slot >= 0)
                        *slot = parent[*slot];
                if (!inst.useImm)
                    continue;
                if (identityFoldable(inst)) {
                    inst.dead = true;
                    ++folded;
                } else if (inst.op == IrOp::Mul && inst.a >= 0) {
                    candidates.push_back(static_cast<int>(i));
                }
            }
            chunk_folded[c] = folded;
        });
    size_t folded = 0;
    for (size_t f : chunk_folded)
        folded += f;

    // Sequential chain-fold sub-phase, ascending over all candidates
    // (shards are index-ordered, so concatenation is ascending).
    size_t chained = 0;
    for (const std::vector<int> &candidates : chunk_candidates) {
        for (int i : candidates) {
            IrInst &inst = prog.insts[i];
            IrInst &src = prog.insts[inst.a];
            if (!src.dead && src.op == IrOp::Mul && src.useImm &&
                src.modulus == inst.modulus) {
                inst.imm = inst.imm * src.imm;
                inst.a = src.a;
                ++chained;
            }
        }
    }
    return {folded, chained};
}

} // namespace

size_t
runConstProp(IrProgram &prog, StatSet &stats, const ParallelExec &exec)
{
    const auto [folded, chained] = exec.parallel()
                                       ? runConstPropParallel(prog, exec)
                                       : runConstPropSerial(prog);
    stats.add("constProp.identityFolded", double(folded));
    stats.add("constProp.immChained", double(chained));
    return folded + chained;
}

} // namespace effact
