#include "compiler/compile_cache.h"

#include "common/logging.h"
#include "compiler/pass_manager.h"

namespace effact {

uint64_t
middleEndPresetHash(const CompilerOptions &opts)
{
    uint64_t h = 14695981039346656037ULL; // FNV-1a offset basis
    auto mixByte = [&h](unsigned char byte) {
        h ^= byte;
        h *= 1099511628211ULL;
    };
    auto mix = [&mixByte](uint64_t v) {
        for (int byte = 0; byte < 8; ++byte)
            mixByte((v >> (byte * 8)) & 0xff);
    };
    // The executed pipeline spec, not the raw switches: options that
    // derive the same spec run the same middle end.
    const std::string spec = opts.pipeline.empty()
                                 ? pipelineSpecFromOptions(opts)
                                 : opts.pipeline;
    mix(spec.size());
    for (char c : spec)
        mixByte(static_cast<unsigned char>(c));
    mix(opts.pipelineMaxIterations);
    // Back-end switches that are part of the preset identity but not of
    // the hardware config (see the header on why they are included).
    // `verifyLevel` is deliberately absent: checkpoint verification
    // never changes the emitted code, so verified and unverified
    // compiles of the same preset share one cache entry.
    mix(opts.schedule ? 1 : 0);
    mix(opts.streaming ? 1 : 0);
    mix(opts.fifoDepth);
    return h;
}

CompileCacheKey
middleEndCacheKey(const IrProgram &prog, const CompilerOptions &opts)
{
    return {fingerprint(prog), middleEndPresetHash(opts)};
}

std::shared_ptr<const MiddleEndSnapshot>
CompileCache::getOrBuild(const CompileCacheKey &key,
                         const std::function<MiddleEndSnapshot()> &build,
                         bool *hit)
{
    EFFACT_ASSERT(build != nullptr, "compile cache needs a builder");
    Shard &shard = shardFor(key);
    std::shared_ptr<Slot> slot;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(shard.mu);
        auto [it, inserted] = shard.entries.try_emplace(key, nullptr);
        if (inserted) {
            it->second = std::make_shared<Slot>();
            builder = true;
        }
        slot = it->second;
    }
    ++lookups_;

    if (builder) {
        // Build outside the shard lock: only same-key requesters wait.
        MiddleEndSnapshot snap = build();
        {
            std::lock_guard<std::mutex> lock(slot->mu);
            slot->snap = std::move(snap);
            slot->ready = true;
        }
        slot->readyCv.notify_all();
    } else {
        ++hits_;
        ++frontendSkipped_;
        std::unique_lock<std::mutex> lock(slot->mu);
        slot->readyCv.wait(lock, [&] { return slot->ready; });
    }
    if (hit != nullptr)
        *hit = !builder;
    // Aliasing shared_ptr: the snapshot's lifetime is the slot's.
    return {slot, &slot->snap};
}

StatSet
CompileCache::statsSnapshot() const
{
    const double lookups = double(lookups_.load());
    const double hit_count = double(hits_.load());
    StatSet s;
    s.set("cache.lookups", lookups);
    s.set("cache.hits", hit_count);
    s.set("cache.misses", lookups - hit_count);
    s.set("cache.frontend_skipped", double(frontendSkipped_.load()));
    s.set("cache.entries", double(entryCount()));
    return s;
}

size_t
CompileCache::entryCount() const
{
    size_t n = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        n += shard.entries.size();
    }
    return n;
}

void
CompileCache::clear()
{
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.entries.clear();
    }
    lookups_ = 0;
    hits_ = 0;
    frontendSkipped_ = 0;
}

} // namespace effact
