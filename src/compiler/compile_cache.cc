#include "compiler/compile_cache.h"

#include <cstdlib>
#include <vector>

#include "common/logging.h"
#include "compiler/pass_manager.h"

namespace effact {

size_t
snapshotBytes(const MiddleEndSnapshot &snap)
{
    size_t bytes = sizeof(MiddleEndSnapshot);
    bytes += snap.optimized.insts.size() * sizeof(IrInst);
    bytes += snap.optimized.name.size();
    for (const MemObject &obj : snap.optimized.objects)
        bytes += sizeof(MemObject) + obj.name.size();
    for (const auto &[key, value] : snap.stats.all()) {
        (void)value;
        bytes += sizeof(double) + key.size();
    }
    return bytes;
}

size_t
defaultCacheBytes()
{
    if (const char *env = std::getenv("EFFACT_CACHE_BYTES")) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(env, &end, 10);
        if (end != env && *end == '\0')
            return static_cast<size_t>(v);
        warn("ignoring invalid EFFACT_CACHE_BYTES='%s' (want a byte "
             "count; 0 = unbounded)",
             env);
    }
    return 0;
}

uint64_t
middleEndPresetHash(const CompilerOptions &opts)
{
    uint64_t h = 14695981039346656037ULL; // FNV-1a offset basis
    auto mixByte = [&h](unsigned char byte) {
        h ^= byte;
        h *= 1099511628211ULL;
    };
    auto mix = [&mixByte](uint64_t v) {
        for (int byte = 0; byte < 8; ++byte)
            mixByte((v >> (byte * 8)) & 0xff);
    };
    // The executed pipeline spec, not the raw switches: options that
    // derive the same spec run the same middle end.
    const std::string spec = opts.pipeline.empty()
                                 ? pipelineSpecFromOptions(opts)
                                 : opts.pipeline;
    mix(spec.size());
    for (char c : spec)
        mixByte(static_cast<unsigned char>(c));
    mix(opts.pipelineMaxIterations);
    // Back-end switches that are part of the preset identity but not of
    // the hardware config (see the header on why they are included).
    // `verifyLevel` is deliberately absent: checkpoint verification
    // never changes the emitted code, so verified and unverified
    // compiles of the same preset share one cache entry.
    mix(opts.schedule ? 1 : 0);
    mix(opts.streaming ? 1 : 0);
    mix(opts.fifoDepth);
    // Back-end policy strings: like schedule/streaming these never
    // change the middle end's output, but they are part of the preset
    // identity, so sweeps varying them keep distinct stats expectations.
    auto mixStr = [&](const std::string &s) {
        mix(s.size());
        for (char c : s)
            mixByte(static_cast<unsigned char>(c));
    };
    mixStr(opts.scheduler);
    mixStr(opts.regalloc);
    return h;
}

CompileCacheKey
middleEndCacheKey(const IrProgram &prog, const CompilerOptions &opts)
{
    return {fingerprint(prog), middleEndPresetHash(opts)};
}

std::shared_ptr<const MiddleEndSnapshot>
CompileCache::getOrBuild(const CompileCacheKey &key,
                         const std::function<MiddleEndSnapshot()> &build,
                         bool *hit)
{
    EFFACT_ASSERT(build != nullptr, "compile cache needs a builder");
    Shard &shard = shardFor(key);
    std::shared_ptr<Slot> slot;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(shard.mu);
        auto [it, inserted] = shard.entries.try_emplace(key, nullptr);
        if (inserted) {
            it->second = std::make_shared<Slot>();
            builder = true;
        }
        slot = it->second;
    }
    ++lookups_;

    if (builder) {
        // Build outside the shard lock: only same-key requesters wait.
        MiddleEndSnapshot snap = build();
        const size_t entry_bytes = snapshotBytes(snap);
        {
            std::lock_guard<std::mutex> lock(slot->mu);
            slot->snap = std::move(snap);
            slot->bytes = entry_bytes;
            slot->ready = true;
        }
        slot->readyCv.notify_all();
        // Waiters are unblocked before accounting: even if this entry
        // is evicted right here (budget smaller than the entry), every
        // requester already holds the slot and clones a valid snapshot.
        if (budget_ > 0)
            accountAndEvict(key, slot);
    } else {
        ++hits_;
        ++frontendSkipped_;
        {
            std::unique_lock<std::mutex> lock(slot->mu);
            slot->readyCv.wait(lock, [&] { return slot->ready; });
        }
        if (budget_ > 0)
            touch(slot);
    }
    if (hit != nullptr)
        *hit = !builder;
    // Aliasing shared_ptr: the snapshot's lifetime is the slot's.
    return {slot, &slot->snap};
}

void
CompileCache::accountAndEvict(const CompileCacheKey &key,
                              const std::shared_ptr<Slot> &slot)
{
    // Destroy evicted snapshots outside `lru_mu_` (an IrProgram free is
    // not cheap enough to hold a hot lock over).
    std::vector<std::shared_ptr<Slot>> evicted;
    {
        std::lock_guard<std::mutex> lock(lru_mu_);
        lru_.push_front(LruNode{key, slot});
        slot->lruIt = lru_.begin();
        slot->inLru = true;
        bytes_ += slot->bytes;
        while (bytes_ > budget_ && !lru_.empty()) {
            LruNode &victim = lru_.back();
            {
                // lru_mu_ -> shard.mu is the one permitted nesting.
                Shard &shard = shardFor(victim.key);
                std::lock_guard<std::mutex> shard_lock(shard.mu);
                auto it = shard.entries.find(victim.key);
                // Only un-index the entry if it is still the current
                // one for its key (a rebuilt successor must survive).
                if (it != shard.entries.end() && it->second == victim.slot)
                    shard.entries.erase(it);
            }
            victim.slot->inLru = false;
            bytes_ -= victim.slot->bytes;
            ++evictions_;
            evicted.push_back(std::move(victim.slot));
            lru_.pop_back();
        }
    }
}

void
CompileCache::touch(const std::shared_ptr<Slot> &slot)
{
    std::lock_guard<std::mutex> lock(lru_mu_);
    // Not on the list when evicted concurrently, or when this hit beat
    // the publisher's own accounting; either way there is nothing to
    // reorder (the publisher inserts at MRU anyway).
    if (slot->inLru)
        lru_.splice(lru_.begin(), lru_, slot->lruIt);
}

StatSet
CompileCache::statsSnapshot() const
{
    const double lookups = double(lookups_.load());
    const double hit_count = double(hits_.load());
    StatSet s;
    s.set("cache.lookups", lookups);
    s.set("cache.hits", hit_count);
    s.set("cache.misses", lookups - hit_count);
    s.set("cache.frontend_skipped", double(frontendSkipped_.load()));
    s.set("cache.entries", double(entryCount()));
    s.set("cache.evictions", double(evictions_.load()));
    s.set("cache.bytes", double(currentBytes()));
    s.set("cache.budget_bytes", double(budget_));
    return s;
}

size_t
CompileCache::currentBytes() const
{
    std::lock_guard<std::mutex> lock(lru_mu_);
    return bytes_;
}

size_t
CompileCache::entryCount() const
{
    size_t n = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        n += shard.entries.size();
    }
    return n;
}

void
CompileCache::clear()
{
    {
        std::lock_guard<std::mutex> lock(lru_mu_);
        for (LruNode &node : lru_)
            node.slot->inLru = false;
        lru_.clear();
        bytes_ = 0;
    }
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.entries.clear();
    }
    lookups_ = 0;
    hits_ = 0;
    frontendSkipped_ = 0;
    evictions_ = 0;
}

} // namespace effact
