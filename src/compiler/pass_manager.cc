#include "compiler/pass_manager.h"

#include <algorithm>
#include <cctype>
#include <chrono>

#include "common/logging.h"
#include "verify/verify.h"

namespace effact {

// --- AnalysisManager ------------------------------------------------------

const std::vector<std::pair<int, int>> &
AnalysisManager::aliasEdges(const IrProgram &prog, StatSet &stats)
{
    if (aliasUid_ == prog.uid() && aliasVersion_ == prog.version()) {
        stats.add("analysis.cacheHits", 1);
        return aliasEdges_;
    }
    aliasEdges_ = runAliasAnalysis(prog, stats);
    aliasUid_ = prog.uid();
    aliasVersion_ = prog.version();
    stats.add("analysis.aliasBuilds", 1);
    return aliasEdges_;
}

const DepGraph &
AnalysisManager::depGraph(const IrProgram &prog, StatSet &stats)
{
    if (graphUid_ == prog.uid() && graphVersion_ == prog.version()) {
        stats.add("analysis.cacheHits", 1);
        return graph_;
    }
    if (!exec_.parallel()) {
        graph_ = DepGraph::fromIr(prog, aliasEdges(prog, stats));
    } else {
        // Parallel analysis build: the alias scan and the SSA edge
        // shards are independent, so they run side by side on the pool.
        // Concatenating the shards in ascending chunk order and then
        // appending the memory edges reproduces `fromIr`'s serial edge
        // append order byte-for-byte, and the stat keys recorded are
        // the same as the serial path's.
        const bool alias_cached =
            aliasUid_ == prog.uid() && aliasVersion_ == prog.version();
        StatSet alias_stats; // thread-private; merged after the join
        const size_t n = prog.insts.size();
        const std::vector<ChunkRange> chunks =
            splitChunks(n, kDefaultChunkGrain);
        std::vector<std::vector<DepGraph::Edge>> shards(chunks.size());
        exec_.fork2(
            [&] {
                if (!alias_cached)
                    aliasEdges_ = runAliasAnalysis(prog, alias_stats);
            },
            [&] {
                exec_.forChunks(
                    n, kDefaultChunkGrain,
                    [&](size_t c, size_t begin, size_t end) {
                        std::vector<DepGraph::Edge> &out = shards[c];
                        for (size_t i = begin; i < end; ++i) {
                            const IrInst &inst = prog.insts[i];
                            if (inst.dead)
                                continue;
                            for (int operand : inst.operands())
                                if (operand >= 0)
                                    out.push_back({operand,
                                                   static_cast<int>(i),
                                                   DepKind::True});
                        }
                    });
            });
        if (alias_cached) {
            stats.add("analysis.cacheHits", 1);
        } else {
            // Publish: single-flight per (uid, version) — later
            // aliasEdges() calls at this version hit the cache.
            aliasUid_ = prog.uid();
            aliasVersion_ = prog.version();
            stats.add("analysis.aliasBuilds", 1);
        }
        stats.merge(alias_stats);
        DepGraph g(n);
        for (const std::vector<DepGraph::Edge> &shard : shards)
            g.addEdges(shard);
        std::vector<DepGraph::Edge> mem;
        mem.reserve(aliasEdges_.size());
        for (auto [from, to] : aliasEdges_)
            mem.push_back({from, to, DepKind::MemAlias});
        g.addEdges(mem);
        g.finalize();
        graph_ = std::move(g);
    }
    graphUid_ = prog.uid();
    graphVersion_ = prog.version();
    stats.add("analysis.depgraphBuilds", 1);
    return graph_;
}

void
AnalysisManager::invalidateAll()
{
    aliasUid_ = kNoVersion;
    aliasVersion_ = kNoVersion;
    aliasEdges_.clear();
    graphUid_ = kNoVersion;
    graphVersion_ = kNoVersion;
    graph_ = DepGraph();
}

// --- Pass adapters over the legacy pass functions -------------------------

namespace {

/**
 * Wraps one of the `run*(IrProgram&, StatSet&) -> size_t` pass
 * functions: the rewrite count the function returns is the change
 * signal, and the adapter bumps the program version exactly when it is
 * non-zero.
 */
class FnPass : public Pass
{
  public:
    using Fn = size_t (*)(IrProgram &, StatSet &, const ParallelExec &);

    FnPass(const char *pass_name, Fn fn) : name_(pass_name), fn_(fn) {}

    const char *name() const override { return name_; }

    bool run(IrProgram &prog, AnalysisManager &analyses,
             StatSet &stats) override
    {
        const bool changed = fn_(prog, stats, analyses.exec()) > 0;
        if (changed)
            prog.bumpVersion();
        return changed;
    }

  private:
    const char *name_;
    Fn fn_;
};

} // namespace

std::unique_ptr<Pass>
createPass(const std::string &name)
{
    if (name == "copyprop")
        return std::make_unique<FnPass>("copyprop", &runCopyProp);
    if (name == "constprop")
        return std::make_unique<FnPass>("constprop", &runConstProp);
    if (name == "pre")
        return std::make_unique<FnPass>("pre", &runPre);
    if (name == "peephole")
        return std::make_unique<FnPass>("peephole", &runPeephole);
    if (name == "rotalg")
        return std::make_unique<FnPass>("rotalg", &runRotAlg);
    return nullptr;
}

const std::vector<std::string> &
knownPassNames()
{
    static const std::vector<std::string> names = {
        "copyprop", "constprop", "pre", "peephole", "rotalg"};
    return names;
}

// --- Pipeline specs -------------------------------------------------------

bool
parsePipelineSpec(const std::string &spec, std::vector<std::string> *names,
                  std::string *error)
{
    names->clear();
    size_t start = 0;
    // One token per comma-separated field; a lone empty spec is the
    // empty pipeline, but an empty field between commas is an error.
    bool saw_field = false;
    while (start <= spec.size()) {
        size_t comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        size_t first = start, last = comma;
        while (first < last && std::isspace(static_cast<unsigned char>(
                                   spec[first])))
            ++first;
        while (last > first &&
               std::isspace(static_cast<unsigned char>(spec[last - 1])))
            --last;
        std::string token = spec.substr(first, last - first);
        const bool final_field = comma == spec.size();
        if (token.empty()) {
            if (final_field && !saw_field)
                return true; // "" or all-blank: empty pipeline
            if (error)
                *error = "empty pass name in pipeline spec '" + spec + "'";
            return false;
        }
        saw_field = true;
        const std::vector<std::string> &known = knownPassNames();
        if (std::find(known.begin(), known.end(), token) == known.end()) {
            if (error) {
                *error = "unknown pass '" + token + "' in pipeline spec '" +
                         spec + "' (known:";
                for (const std::string &known_name : known)
                    *error += " " + known_name;
                *error += ")";
            }
            return false;
        }
        names->push_back(std::move(token));
        start = comma + 1;
        if (final_field)
            break;
    }
    return true;
}

std::string
pipelineSpecFromOptions(const CompilerOptions &opts)
{
    std::string spec;
    auto append = [&spec](bool enabled, const char *name) {
        if (!enabled)
            return;
        if (!spec.empty())
            spec += ',';
        spec += name;
    };
    append(opts.copyProp, "copyprop");
    append(opts.constProp, "constprop");
    append(opts.pre, "pre");
    append(opts.peephole, "peephole");
    // The Eq. 5 peephole fold leaves Copies behind that only copy-prop
    // removes; a peephole pipeline therefore always carries one (the
    // legacy backend likewise ran the cleanup regardless of the
    // copyProp switch).
    append(opts.peephole && !opts.copyProp, "copyprop");
    return spec;
}

// --- PassManager ----------------------------------------------------------

PassManager
PassManager::fromSpec(const std::string &spec)
{
    std::vector<std::string> names;
    std::string error;
    if (!parsePipelineSpec(spec, &names, &error))
        fatal("bad compiler pipeline: %s", error.c_str());
    PassManager pm;
    for (const std::string &name : names)
        pm.add(createPass(name));
    return pm;
}

void
PassManager::add(std::unique_ptr<Pass> pass)
{
    EFFACT_ASSERT(pass != nullptr, "null pass added to pipeline");
    passes_.push_back(std::move(pass));
}

std::string
PassManager::spec() const
{
    std::string s;
    for (const auto &pass : passes_) {
        if (!s.empty())
            s += ',';
        s += pass->name();
    }
    return s;
}

size_t
PassManager::run(IrProgram &prog, AnalysisManager &analyses, StatSet &stats)
{
    using Clock = std::chrono::steady_clock;
    EFFACT_ASSERT(maxIterations_ > 0,
                  "pipeline sweep bound must be positive (0 would "
                  "silently skip every pass yet report convergence)");
    converged_ = true;
    size_t sweeps = 0;
    if (passes_.empty()) {
        stats.set("pipeline.iterations", 0);
        stats.set("pipeline.converged", 1);
        return 0;
    }

    // Fixed point: repeat the whole sequence until a full sweep reports
    // no change. Every pass only shrinks (or keeps) the live-instruction
    // count and in-place rewrites are finite, so this terminates; the
    // sweep bound is a backstop that turns a non-monotone pass bug into
    // a loud non-convergence instead of an endless compile.
    //
    // A pass whose input version is unchanged since its own last run is
    // skipped outright (sound by the Pass::run own-fixed-point
    // contract): the expensive quiescent re-verification runs collapse
    // to the passes that actually saw new IR.
    constexpr uint64_t kNeverRan = ~uint64_t(0);
    std::vector<uint64_t> last_seen(passes_.size(), kNeverRan);
    while (sweeps < maxIterations_) {
        ++sweeps;
        bool sweep_changed = false;
        for (size_t i = 0; i < passes_.size(); ++i) {
            const Pass &pass_ref = *passes_[i];
            const std::string prefix =
                std::string("pass.") + pass_ref.name();
            if (last_seen[i] == prog.version()) {
                stats.add(prefix + ".skipped", 1);
                continue;
            }
            const size_t live_before = prog.liveCount();
            const Clock::time_point t0 = Clock::now();
            const bool changed = passes_[i]->run(prog, analyses, stats);
            const std::chrono::duration<double, std::milli> ms =
                Clock::now() - t0;
            last_seen[i] = prog.version();
            stats.add(prefix + ".ms", ms.count());
            stats.add(prefix + ".removed",
                      double(live_before) - double(prog.liveCount()));
            stats.add(prefix + ".changed", changed ? 1 : 0);
            sweep_changed = sweep_changed || changed;
            // Pass-boundary checkpoint: a pass that changed the IR must
            // leave it well-formed. Quiescent passes are skipped — they
            // could not have broken anything the previous checkpoint
            // already accepted.
            if (verifyLevel_ > 0 && changed) {
                const Clock::time_point v0 = Clock::now();
                const VerifyReport vr = verifyIr(prog);
                const std::chrono::duration<double, std::milli> vms =
                    Clock::now() - v0;
                stats.add("verify.checks", double(vr.checksRun));
                stats.add("verify.ms", vms.count());
                enforceVerified(vr, (std::string("pass '") +
                                     pass_ref.name() + "'")
                                        .c_str());
            }
        }
        if (!sweep_changed) {
            stats.set("pipeline.iterations", double(sweeps));
            stats.set("pipeline.converged", 1);
            return sweeps;
        }
    }
    converged_ = false;
    stats.set("pipeline.iterations", double(sweeps));
    stats.set("pipeline.converged", 0);
    return sweeps;
}

} // namespace effact
