#include "compiler/pass.h"

#include "common/logging.h"

namespace effact {

MachineProgram
Compiler::compile(IrProgram &prog)
{
    stats_.clear();
    const size_t before = prog.liveCount();
    stats_.set("input.instructions", double(before));

    if (opts_.copyProp)
        runCopyProp(prog, stats_);
    if (opts_.constProp)
        runConstProp(prog, stats_);
    if (opts_.pre)
        runPre(prog, stats_);
    if (opts_.peephole) {
        runPeephole(prog, stats_);
        // The Eq. 5 fold leaves Copies behind; clean them up.
        runCopyProp(prog, stats_);
    }
    prog.compact();

    const size_t after = prog.liveCount();
    stats_.set("optimized.instructions", double(after));
    stats_.set("optimized.reductionPct",
               before == 0 ? 0.0
                           : 100.0 * double(before - after) /
                                 double(before));

    auto mem_deps = runAliasAnalysis(prog, stats_);
    auto order = runScheduler(prog, mem_deps, opts_.schedule, stats_);
    auto streaming = runStreaming(prog, order, opts_.streaming,
                                  opts_.fifoDepth, stats_);
    MachineProgram mp = runRegAllocAndCodegen(prog, order, streaming,
                                              opts_, stats_);
    stats_.set("machine.instructions", double(mp.insts.size()));
    return mp;
}

} // namespace effact
