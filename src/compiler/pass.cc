#include "compiler/pass.h"

#include "common/logging.h"
#include "compiler/pass_manager.h"

namespace effact {

MachineProgram
Compiler::compile(IrProgram &prog)
{
    AnalysisManager analyses;
    return compile(prog, analyses);
}

MachineProgram
Compiler::compile(IrProgram &prog, AnalysisManager &analyses)
{
    stats_.clear();
    const size_t before = prog.liveCount();
    stats_.set("input.instructions", double(before));

    // SSA optimizations: a declarative pipeline run to a bounded fixed
    // point. The repeat subsumes the old special-cased "copy-prop again
    // after the Eq. 5 peephole" cleanup and catches any second-order
    // reductions one sweep misses.
    PassManager pipeline = PassManager::fromSpec(
        opts_.pipeline.empty() ? pipelineSpecFromOptions(opts_)
                               : opts_.pipeline);
    pipeline.setMaxIterations(opts_.pipelineMaxIterations);
    pipeline.run(prog, analyses, stats_);
    EFFACT_ASSERT(pipeline.converged(),
                  "optimization pipeline '%s' did not converge in %zu "
                  "sweeps",
                  pipeline.spec().c_str(), pipeline.maxIterations());
    prog.compact();

    const size_t after = prog.liveCount();
    stats_.set("optimized.instructions", double(after));
    stats_.set("optimized.reductionPct",
               before == 0 ? 0.0
                           : 100.0 * double(before - after) /
                                 double(before));

    auto order = runScheduler(prog, analyses, opts_.schedule, stats_);
    auto streaming = runStreaming(prog, order, opts_.streaming,
                                  opts_.fifoDepth, stats_);
    MachineProgram mp = runRegAllocAndCodegen(prog, order, streaming,
                                              opts_, stats_);
    stats_.set("machine.instructions", double(mp.insts.size()));
    return mp;
}

} // namespace effact
