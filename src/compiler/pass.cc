#include "compiler/pass.h"

#include <chrono>

#include "common/logging.h"
#include "compiler/compile_cache.h"
#include "compiler/pass_manager.h"
#include "verify/verify.h"

namespace effact {

namespace {

/** Runs `verify()` timed, accumulates the checkpoint stats, and panics
 *  via `enforceVerified` when the report is dirty. */
template <typename VerifyFn>
void
checkpoint(VerifyFn &&verify, const char *context, StatSet &stats)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point t0 = Clock::now();
    const VerifyReport rep = verify();
    const std::chrono::duration<double, std::milli> ms =
        Clock::now() - t0;
    stats.add("verify.checks", double(rep.checksRun));
    stats.add("verify.ms", ms.count());
    enforceVerified(rep, context);
}

} // namespace

MachineProgram
Compiler::compile(IrProgram &prog)
{
    AnalysisManager analyses;
    return compile(prog, analyses);
}

MachineProgram
Compiler::compile(IrProgram &prog, AnalysisManager &analyses)
{
    return compile(prog, analyses, nullptr);
}

MachineProgram
Compiler::compile(IrProgram &prog, AnalysisManager &analyses,
                  CompileCache *cache)
{
    compileMiddle(prog, analyses, cache);
    return compileBack(prog, analyses);
}

void
Compiler::compileMiddle(IrProgram &prog, AnalysisManager &analyses,
                        CompileCache *cache)
{
    stats_.clear();
    if (cache == nullptr) {
        runMiddleEnd(prog, analyses, stats_);
        return;
    }

    // The cache key is computed over the *input* program; the build
    // below mutates it, so key first.
    const CompileCacheKey key = middleEndCacheKey(prog, opts_);
    bool hit = false;
    std::shared_ptr<const MiddleEndSnapshot> snap = cache->getOrBuild(
        key,
        [this, &prog, &analyses] {
            MiddleEndSnapshot built;
            runMiddleEnd(prog, analyses, built.stats);
            built.optimized = prog; // immutable copy (fresh uid)
            return built;
        },
        &hit);
    if (hit) {
        // Skip the whole optimization pipeline: adopt a clone of the
        // cached optimized IR. The clone's fresh uid keeps per-worker
        // analysis caches sound.
        prog = snap->optimized;
    }
    // Replaying the snapshot's stats (also on the miss path, where they
    // are exactly what runMiddleEnd just recorded) keeps hit and miss
    // compiles byte-identical except for the cache.hit marker.
    stats_.merge(snap->stats);
    stats_.set("cache.hit", hit ? 1 : 0);
}

MachineProgram
Compiler::compileBack(const IrProgram &prog, AnalysisManager &analyses)
{
    return runBackEnd(prog, analyses, stats_);
}

void
Compiler::runMiddleEnd(IrProgram &prog, AnalysisManager &analyses,
                       StatSet &stats) const
{
    const size_t before = prog.liveCount();
    stats.set("input.instructions", double(before));

    // Checkpoint the *input* too: a malformed builder/frontend program
    // should be reported against the frontend, not the first pass that
    // trips over it.
    if (opts_.verifyLevel > 0)
        checkpoint([&] { return verifyIr(prog); }, "middle-end input",
                   stats);

    // SSA optimizations: a declarative pipeline run to a bounded fixed
    // point. The repeat subsumes the old special-cased "copy-prop again
    // after the Eq. 5 peephole" cleanup and catches any second-order
    // reductions one sweep misses.
    PassManager pipeline = PassManager::fromSpec(
        opts_.pipeline.empty() ? pipelineSpecFromOptions(opts_)
                               : opts_.pipeline);
    pipeline.setMaxIterations(opts_.pipelineMaxIterations);
    pipeline.setVerifyLevel(opts_.verifyLevel);
    pipeline.run(prog, analyses, stats);
    EFFACT_ASSERT(pipeline.converged(),
                  "optimization pipeline '%s' did not converge in %zu "
                  "sweeps",
                  pipeline.spec().c_str(), pipeline.maxIterations());
    prog.compact();

    // The program leaving here is what a `CompileCache` snapshots and
    // replays into every later hit, so verify it one last time after
    // compaction (which renumbers every operand).
    if (opts_.verifyLevel > 0)
        checkpoint([&] { return verifyIr(prog); }, "middle-end output",
                   stats);

    const size_t after = prog.liveCount();
    stats.set("optimized.instructions", double(after));
    stats.set("optimized.reductionPct",
              before == 0 ? 0.0
                          : 100.0 * double(before - after) /
                                double(before));
}

MachineProgram
Compiler::runBackEnd(const IrProgram &prog, AnalysisManager &analyses,
                     StatSet &stats) const
{
    auto order = runScheduler(prog, analyses, opts_, stats);
    auto streaming = runStreaming(prog, order, opts_.streaming,
                                  opts_.fifoDepth, stats);
    MachineProgram mp = runRegAllocAndCodegen(prog, order, streaming,
                                              opts_, stats,
                                              analyses.exec());
    stats.set("machine.instructions", double(mp.insts.size()));
    // Post-backend checkpoint: the machine program handed to the
    // scheduler-graph builder and the simulator is well-formed (register
    // bounds, FIFO producer/consumer pairing, SRAM budget).
    if (opts_.verifyLevel > 0) {
        MachVerifyBudget budget;
        budget.sramBytes = opts_.sramBytes;
        checkpoint([&] { return verifyMachine(mp, budget); }, "back end",
                   stats);
    }
    return mp;
}

} // namespace effact
