/**
 * @file
 * Within-job parallel execution helper for the compiler. A
 * `ParallelExec` wraps an (optional) shared `ThreadPool` and hands the
 * middle/back end two shapes of parallelism:
 *
 *  - `forChunks(n, grain, fn)` — region-sharded loops: `[0, n)` is
 *    split into contiguous chunks whose boundaries depend only on `n`
 *    and `grain` (never on the worker count), so every thread count
 *    produces the same chunk decomposition and therefore — given
 *    order-independent chunk bodies plus a deterministic merge — the
 *    same bytes.
 *  - `fork2(a, b)` — two independent analyses side by side (alias
 *    edges and the SSA dependence graph).
 *
 * A default-constructed `ParallelExec` is the serial executor: chunk
 * bodies run inline in ascending chunk order, `fork2` runs `a` then
 * `b`. Passes use it to keep their legacy sequential scan as the
 * 1-thread oracle path.
 *
 * Nested use is safe: the chunk tasks go through
 * `ThreadPool::Group`, whose `wait()` helps execute its own queued
 * tasks, so a sweep job running on a pool worker can fan its pass
 * shards into the same pool without deadlock.
 */
#ifndef EFFACT_COMPILER_REGION_H
#define EFFACT_COMPILER_REGION_H

#include <cstddef>
#include <vector>

#include "runtime/thread_pool.h"

namespace effact {

/** One contiguous shard of an instruction index space. */
struct ChunkRange
{
    size_t begin = 0;
    size_t end = 0;
};

/**
 * Splits `[0, n)` into contiguous chunks of at least `grain` elements
 * (the final chunk absorbs the remainder up to `2*grain - 1`).
 * Boundaries are a pure function of `(n, grain)` — the worker count
 * never enters — which is what makes sharded passes thread-count
 * independent.
 */
std::vector<ChunkRange> splitChunks(size_t n, size_t grain);

/** Default shard grain for instruction-indexed loops: small enough
 *  that a paper-scale program (~100-300k insts) yields tens of shards,
 *  large enough that per-chunk overhead stays negligible. */
constexpr size_t kDefaultChunkGrain = 4096;

/**
 * Executor handle threaded through the compiler. Copyable and cheap:
 * it is a non-owning view of the pool. `parallel()` false (the default)
 * selects every pass's legacy sequential algorithm.
 */
class ParallelExec
{
  public:
    ParallelExec() = default;
    /** `helper_worker` is the pool worker index of the thread that
     *  will call into the compiler (so inline-executed chunk tasks
     *  report a stable index); SIZE_MAX = external thread. */
    explicit ParallelExec(ThreadPool *pool, size_t helper_worker = SIZE_MAX)
        : pool_(pool), helper_(helper_worker)
    {
    }

    bool parallel() const { return pool_ != nullptr; }
    ThreadPool *pool() const { return pool_; }

    /**
     * Runs `fn(chunk, begin, end)` for every chunk of `[0, n)`. Serial
     * executor: ascending chunk order inline. Parallel executor: chunks
     * run concurrently on the pool (the calling thread helps), so `fn`
     * must only write chunk-private state; combine per-chunk results
     * afterwards in ascending chunk order for determinism.
     */
    template <class Fn>
    void forChunks(size_t n, size_t grain, Fn &&fn) const
    {
        const std::vector<ChunkRange> chunks = splitChunks(n, grain);
        if (!parallel() || chunks.size() <= 1) {
            for (size_t c = 0; c < chunks.size(); ++c)
                fn(c, chunks[c].begin, chunks[c].end);
            return;
        }
        ThreadPool::Group group(*pool_);
        for (size_t c = 0; c < chunks.size(); ++c)
            group.submit([&fn, &chunks, c](size_t) {
                fn(c, chunks[c].begin, chunks[c].end);
            });
        group.wait(helper_);
    }

    /** Runs two independent thunks, concurrently when parallel. */
    template <class FnA, class FnB>
    void fork2(FnA &&a, FnB &&b) const
    {
        if (!parallel()) {
            a();
            b();
            return;
        }
        ThreadPool::Group group(*pool_);
        group.submit([&a](size_t) { a(); });
        b();
        group.wait(helper_);
    }

  private:
    ThreadPool *pool_ = nullptr;
    size_t helper_ = SIZE_MAX;
};

} // namespace effact

#endif // EFFACT_COMPILER_REGION_H
