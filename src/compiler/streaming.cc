#include "compiler/pass.h"

#include <algorithm>

namespace effact {

StreamingInfo
runStreaming(const IrProgram &prog, const std::vector<int> &order,
             bool enabled, size_t fifo_depth, StatSet &stats)
{
    const size_t n = prog.insts.size();
    StreamingInfo info;
    info.streamedLoad.assign(n, 0);
    info.streamedStore.assign(n, 0);
    info.fifoForward.assign(n, 0);
    if (!enabled) {
        stats.add("stream.enabled", 0);
        return info;
    }

    // Use counts and the single consumer of each value.
    std::vector<uint32_t> uses(n, 0);
    std::vector<int> only_use(n, -1);
    for (size_t i = 0; i < n; ++i) {
        const IrInst &inst = prog.insts[i];
        if (inst.dead)
            continue;
        for (int operand : inst.operands()) {
            if (operand >= 0) {
                ++uses[operand];
                only_use[operand] = static_cast<int>(i);
            }
        }
    }

    std::vector<int> pos(n, -1);
    for (size_t k = 0; k < order.size(); ++k)
        pos[order[k]] = static_cast<int>(k);

    size_t stream_loads = 0, stream_stores = 0, fifo = 0;
    for (size_t i = 0; i < n; ++i) {
        const IrInst &inst = prog.insts[i];
        if (inst.dead)
            continue;

        // Sec. IV-B3: a load with a single consumer merges into that
        // consumer as a streaming operand — no SRAM staging.
        if (inst.op == IrOp::Load && uses[i] == 1) {
            info.streamedLoad[i] = 1;
            ++stream_loads;
            continue;
        }
        // A store whose operand has no other consumer streams the FU
        // result straight to DRAM.
        if (inst.op == IrOp::Store && inst.a >= 0 && uses[inst.a] == 1 &&
            !prog.insts[inst.a].dead &&
            prog.insts[inst.a].op != IrOp::Load) {
            info.streamedStore[i] = 1;
            ++stream_stores;
            continue;
        }
        // FU-to-FU forwarding: a computed value with one consumer close
        // enough in the schedule rides the FIFO instead of an SRAM
        // register.
        if (inst.op != IrOp::Load && inst.op != IrOp::Store &&
            uses[i] == 1 && only_use[i] >= 0) {
            int producer_pos = pos[i];
            int consumer_pos = pos[only_use[i]];
            if (producer_pos >= 0 && consumer_pos >= 0 &&
                consumer_pos - producer_pos <=
                    static_cast<int>(fifo_depth)) {
                info.fifoForward[i] = 1;
                ++fifo;
            }
        }
    }

    stats.add("stream.enabled", 1);
    stats.add("stream.loads", double(stream_loads));
    stats.add("stream.stores", double(stream_stores));
    stats.add("stream.fifoForwards", double(fifo));
    return info;
}

} // namespace effact
