/**
 * @file
 * Rotation-chain algebraic rewrite (spec key `"rotalg"`).
 *
 * Automorphisms compose multiplicatively on the Galois element:
 * sigma_g1(sigma_g2(x)) = sigma_{g1*g2 mod 2N}(x). HE kernels emit
 * serial sigma-chains (rotate-accumulate loops, baby-step/giant-step
 * ladders), which after lowering are Auto-of-Auto dependence chains
 * that serialize on the single AUTO unit. This pass rewrites every
 * rotation to read directly from its chain's root with the composed
 * element, which
 *
 *   - breaks the serial dependence (each hoisted rotation depends only
 *     on the root, so the scheduler can overlap their key-switch work),
 *   - canonicalizes equal net rotations onto one Galois element so the
 *     value-numbering PRE pass can deduplicate them, and
 *   - leaves the bypassed intermediate rotations without uses; a
 *     rotation-restricted DCE phase retires them (no generic DCE pass
 *     exists — without this, composition would only add instructions).
 *
 * The algorithm is snapshot-based and order-free: phase A builds a
 * read-only snapshot of (source, element, chainable) per instruction,
 * then every rotation walks the *original* chain on that snapshot and
 * rewrites only its own fields. The result is independent of visit
 * order, so the serial and region-sharded paths run the same code and
 * are bit-identical at any thread count. Use counts for the DCE phase
 * are relaxed atomic increments — a commutative sum, deterministic
 * regardless of interleaving.
 *
 * Invariant (rule `ir.auto.elt`): a live immediate-form Auto carries a
 * Galois element in [1, 2N). The pass preserves it — composed elements
 * are reduced mod 2N, a composition that degenerates to 0 is skipped,
 * and identity compositions (element 1) fold into Copy instead.
 */
#include "compiler/pass.h"

#include <atomic>
#include <memory>

namespace effact {

namespace {

struct RotSnapshot
{
    std::vector<uint8_t> is_rot; ///< live immediate-form Auto
    std::vector<int> src;        ///< its input value id
    std::vector<u64> elt;        ///< Galois element, reduced mod 2N
    std::vector<uint32_t> mod;   ///< limb index (chains stay per-limb)
};

struct RotCounts
{
    size_t composed = 0;      ///< rotations re-rooted past >=1 rotation
    size_t identity = 0;      ///< net element 1 mod 2N folded to Copy
    size_t canonicalized = 0; ///< oversized element reduced into [1, 2N)
    size_t dead = 0;          ///< use-free rotations retired
};

} // namespace

size_t
runRotAlg(IrProgram &prog, StatSet &stats, const ParallelExec &exec)
{
    const size_t n = prog.insts.size();
    const u64 two_n = u64(prog.degree) * 2;
    if (n == 0 || two_n == 0)
        return 0;

    // Phase A: read-only snapshot of the rotation graph before any
    // rewrite, so phase B's chain walks are race-free and order-free.
    RotSnapshot snap;
    snap.is_rot.resize(n);
    snap.src.resize(n);
    snap.elt.resize(n);
    snap.mod.resize(n);
    exec.forChunks(n, kDefaultChunkGrain,
                   [&](size_t, size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) {
                           const IrInst &inst = prog.insts[i];
                           snap.is_rot[i] = !inst.dead &&
                                            inst.op == IrOp::Auto &&
                                            inst.useImm && inst.a >= 0;
                           snap.src[i] = inst.a;
                           snap.elt[i] = inst.imm % two_n;
                           snap.mod[i] = inst.modulus;
                       }
                   });

    // Phase B: every rotation walks its own original chain on the
    // snapshot (operands reference earlier values, so the walk strictly
    // decreases and terminates) and rewrites only its own fields.
    const size_t chunk_count = splitChunks(n, kDefaultChunkGrain).size();
    std::vector<RotCounts> per_chunk(chunk_count);
    exec.forChunks(n, kDefaultChunkGrain, [&](size_t c, size_t begin,
                                              size_t end) {
        RotCounts &rc = per_chunk[c];
        for (size_t i = begin; i < end; ++i) {
            if (!snap.is_rot[i])
                continue;
            IrInst &inst = prog.insts[i];
            u64 product = snap.elt[i];
            int root = snap.src[i];
            size_t hops = 0;
            while (root >= 0 && snap.is_rot[size_t(root)] &&
                   snap.mod[size_t(root)] == snap.mod[i]) {
                const u64 composed =
                    product * snap.elt[size_t(root)] % two_n;
                if (composed == 0)
                    break; // would leave the legal element range
                product = composed;
                root = snap.src[size_t(root)];
                ++hops;
            }
            if (hops > 0) {
                if (product == 1) {
                    inst.op = IrOp::Copy;
                    inst.a = root;
                    inst.b = -1;
                    inst.useImm = false;
                    inst.imm = 0;
                    ++rc.identity;
                } else {
                    inst.a = root;
                    inst.imm = product;
                    ++rc.composed;
                }
            } else if (product == 1) {
                inst.op = IrOp::Copy;
                inst.b = -1;
                inst.useImm = false;
                inst.imm = 0;
                ++rc.identity;
            } else if (inst.imm != product && product != 0) {
                inst.imm = product;
                ++rc.canonicalized;
            }
        }
    });

    // Phase C: retire rotations the re-rooting left without uses.
    // Relaxed atomic counts — a commutative sum is deterministic.
    std::unique_ptr<std::atomic<uint32_t>[]> uses(
        new std::atomic<uint32_t>[n]);
    for (size_t i = 0; i < n; ++i)
        uses[i].store(0, std::memory_order_relaxed);
    exec.forChunks(n, kDefaultChunkGrain,
                   [&](size_t, size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) {
                           const IrInst &inst = prog.insts[i];
                           if (inst.dead)
                               continue;
                           for (int v : inst.operands())
                               if (v >= 0)
                                   uses[size_t(v)].fetch_add(
                                       1, std::memory_order_relaxed);
                       }
                   });
    exec.forChunks(n, kDefaultChunkGrain, [&](size_t c, size_t begin,
                                              size_t end) {
        RotCounts &rc = per_chunk[c];
        for (size_t i = begin; i < end; ++i) {
            IrInst &inst = prog.insts[i];
            if (!inst.dead && inst.op == IrOp::Auto &&
                uses[i].load(std::memory_order_relaxed) == 0) {
                inst.dead = true;
                ++rc.dead;
            }
        }
    });

    RotCounts total;
    for (const RotCounts &rc : per_chunk) {
        total.composed += rc.composed;
        total.identity += rc.identity;
        total.canonicalized += rc.canonicalized;
        total.dead += rc.dead;
    }
    stats.add("rotalg.composed", double(total.composed));
    stats.add("rotalg.identity", double(total.identity));
    stats.add("rotalg.canonicalized", double(total.canonicalized));
    stats.add("rotalg.deadRotations", double(total.dead));
    return total.composed + total.identity + total.canonicalized +
           total.dead;
}

} // namespace effact
