#include "compiler/pass.h"

#include <atomic>
#include <memory>

namespace effact {

namespace {

/** Legacy single-threaded scan — the serial oracle path. */
std::pair<size_t, size_t>
runPeepholeSerial(IrProgram &prog)
{
    // Use counts (live instructions only). `c` counts too: a value kept
    // alive only as a Mac accumulator must not be fused away.
    std::vector<uint32_t> uses(prog.insts.size(), 0);
    for (const auto &inst : prog.insts) {
        if (inst.dead)
            continue;
        for (int operand : inst.operands())
            if (operand >= 0)
                ++uses[operand];
    }

    size_t mac_fused = 0;
    size_t intt_folds = 0;
    for (auto &inst : prog.insts) {
        if (inst.dead)
            continue;

        // Rewrite 1 — computation merge into MAC (Sec. III-2): an Add
        // with a single-use vector Mul operand (either side — addition
        // commutes) becomes a fused Mac executed on the reused NTT
        // multipliers.
        if (inst.op == IrOp::Add && !inst.useImm && inst.a >= 0 &&
            inst.b >= 0) {
            // Prefer the b side; fall back to a.
            auto isFusableMul = [&](int v) {
                const IrInst &m = prog.insts[v];
                return !m.dead && m.op == IrOp::Mul && uses[v] == 1 &&
                       m.modulus == inst.modulus;
            };
            if (!isFusableMul(inst.b) && isFusableMul(inst.a))
                std::swap(inst.a, inst.b);
            IrInst &mul = prog.insts[inst.b];
            if (!mul.dead && mul.op == IrOp::Mul && uses[inst.b] == 1 &&
                mul.modulus == inst.modulus) {
                // Mac computes a*b + c with (a,b) from the Mul.
                int addend = inst.a;
                inst.op = IrOp::Mac;
                inst.a = mul.a;
                inst.b = mul.b;
                inst.c = addend;
                inst.useImm = mul.useImm;
                inst.imm = mul.imm;
                if (inst.tag == IrTag::Normal)
                    inst.tag = mul.tag;
                mul.dead = true;
                ++mac_fused;
            }
        }

        // Rewrite 2 — Eq. 5 merge: Mul(imm) of an Intt result whose
        // only consumers are BConv-tagged multiplies gets folded into
        // the BConv constant (drop the explicit 1/N post-scale).
        // Under fixed-point iteration this fires once per sweep on a
        // chain of stacked single-use scales (copy-prop re-exposes the
        // Intt each sweep) — intentional: every single-use scale of an
        // (effective) iNTT result is absorbable into constants in this
        // structural model, reductions the legacy single sweep missed.
        if (inst.op == IrOp::Mul && inst.useImm && inst.a >= 0) {
            IrInst &src = prog.insts[inst.a];
            if (!src.dead && src.op == IrOp::Intt &&
                inst.tag == IrTag::Normal && uses[inst.a] == 1) {
                // Check: does some BConv multiply consume this value?
                // (cheap forward check is skipped; the fold is safe for
                //  counting purposes whenever the scale is single-use)
                inst.op = IrOp::Copy;
                inst.useImm = false;
                ++intt_folds;
            }
        }
    }
    return {mac_fused, intt_folds};
}

/**
 * Region-sharded equivalent, phased so every decision reads the same
 * state the serial scan would have seen:
 *
 * The serial scan's two rewrites interact only through single-use Mul
 * instructions: an Eq. 5 fold turns a Mul into a Copy at the *producer*
 * index, which (operands point backward) is always visited before any
 * Add that could have fused it — so serial gives the Eq. 5 fold
 * priority, and a Mac fusion decision always sees the post-fold op.
 * Fusions never interact with each other (the consumed Mul is
 * single-use, so no two Adds contend) or with fold decisions (folds
 * read Intt producers, which nothing in this pass rewrites).
 *
 * Phases, each a sharded loop with a barrier between:
 *   1. use counts via relaxed atomic adds (commutative, so the totals
 *      are thread-count independent);
 *   2. decide + apply Eq. 5 folds (pure function of entry state;
 *      writes only the candidate's own op/useImm);
 *   3. decide Mac fusions on the post-fold state (read-only), recording
 *      (add, fused-mul, swap) per shard;
 *   4. apply fusions: disjoint writes — each decided Add rewrites
 *      itself plus its privately-owned single-use Mul.
 */
std::pair<size_t, size_t>
runPeepholeParallel(IrProgram &prog, const ParallelExec &exec)
{
    const size_t n = prog.insts.size();
    const size_t chunk_count = splitChunks(n, kDefaultChunkGrain).size();

    // Phase 1: use counts.
    std::unique_ptr<std::atomic<uint32_t>[]> uses_atomic(
        new std::atomic<uint32_t>[n]);
    exec.forChunks(n, kDefaultChunkGrain,
                   [&](size_t, size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i)
                           uses_atomic[i].store(0,
                                                std::memory_order_relaxed);
                   });
    exec.forChunks(n, kDefaultChunkGrain,
                   [&](size_t, size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) {
                           const IrInst &inst = prog.insts[i];
                           if (inst.dead)
                               continue;
                           for (int operand : inst.operands())
                               if (operand >= 0)
                                   uses_atomic[operand].fetch_add(
                                       1, std::memory_order_relaxed);
                       }
                   });
    std::vector<uint32_t> uses(n);
    exec.forChunks(n, kDefaultChunkGrain,
                   [&](size_t, size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i)
                           uses[i] = uses_atomic[i].load(
                               std::memory_order_relaxed);
                   });

    // Phase 2: Eq. 5 folds. The candidate test reads only the
    // candidate's own entry fields, its Intt producer (never rewritten
    // by this pass), and the entry use counts.
    std::vector<size_t> chunk_folds(chunk_count, 0);
    exec.forChunks(n, kDefaultChunkGrain,
                   [&](size_t c, size_t begin, size_t end) {
                       size_t folds = 0;
                       for (size_t i = begin; i < end; ++i) {
                           IrInst &inst = prog.insts[i];
                           if (inst.dead || inst.op != IrOp::Mul ||
                               !inst.useImm || inst.a < 0)
                               continue;
                           const IrInst &src = prog.insts[inst.a];
                           if (!src.dead && src.op == IrOp::Intt &&
                               inst.tag == IrTag::Normal &&
                               uses[inst.a] == 1) {
                               inst.op = IrOp::Copy;
                               inst.useImm = false;
                               ++folds;
                           }
                       }
                       chunk_folds[c] = folds;
                   });
    size_t intt_folds = 0;
    for (size_t f : chunk_folds)
        intt_folds += f;

    // Phase 3: fusion decisions on the post-fold state, read-only.
    struct Fusion
    {
        int add;
        bool swapped;
    };
    std::vector<std::vector<Fusion>> chunk_fusions(chunk_count);
    exec.forChunks(
        n, kDefaultChunkGrain, [&](size_t c, size_t begin, size_t end) {
            std::vector<Fusion> &fusions = chunk_fusions[c];
            for (size_t i = begin; i < end; ++i) {
                const IrInst &inst = prog.insts[i];
                if (inst.dead || inst.op != IrOp::Add || inst.useImm ||
                    inst.a < 0 || inst.b < 0)
                    continue;
                auto isFusableMul = [&](int v) {
                    const IrInst &m = prog.insts[v];
                    return !m.dead && m.op == IrOp::Mul && uses[v] == 1 &&
                           m.modulus == inst.modulus;
                };
                if (isFusableMul(inst.b))
                    fusions.push_back({static_cast<int>(i), false});
                else if (isFusableMul(inst.a))
                    fusions.push_back({static_cast<int>(i), true});
            }
        });

    // Phase 4: apply. Writes are disjoint: each Add rewrites itself and
    // kills its fused Mul, and a fused Mul has exactly one user (its
    // Add), so no two decisions touch the same instruction. The Mul's
    // fields are read only here, by its owning decision.
    size_t mac_fused = 0;
    std::vector<const std::vector<Fusion> *> all(chunk_count);
    for (size_t c = 0; c < chunk_count; ++c) {
        all[c] = &chunk_fusions[c];
        mac_fused += chunk_fusions[c].size();
    }
    exec.forChunks(
        chunk_count, 1, [&](size_t, size_t begin, size_t end) {
            for (size_t c = begin; c < end; ++c) {
                for (const Fusion &f : *all[c]) {
                    IrInst &inst = prog.insts[f.add];
                    if (f.swapped)
                        std::swap(inst.a, inst.b);
                    IrInst &mul = prog.insts[inst.b];
                    const int addend = inst.a;
                    inst.op = IrOp::Mac;
                    inst.a = mul.a;
                    inst.b = mul.b;
                    inst.c = addend;
                    inst.useImm = mul.useImm;
                    inst.imm = mul.imm;
                    if (inst.tag == IrTag::Normal)
                        inst.tag = mul.tag;
                    mul.dead = true;
                }
            }
        });
    return {mac_fused, intt_folds};
}

} // namespace

size_t
runPeephole(IrProgram &prog, StatSet &stats, const ParallelExec &exec)
{
    const auto [mac_fused, intt_folds] =
        exec.parallel() ? runPeepholeParallel(prog, exec)
                        : runPeepholeSerial(prog);
    stats.add("peephole.macFused", double(mac_fused));
    stats.add("peephole.inttScaleFolded", double(intt_folds));
    return mac_fused + intt_folds;
}

} // namespace effact
