#include "compiler/pass.h"

namespace effact {

size_t
runPeephole(IrProgram &prog, StatSet &stats)
{
    // Use counts (live instructions only). `c` counts too: a value kept
    // alive only as a Mac accumulator must not be fused away.
    std::vector<uint32_t> uses(prog.insts.size(), 0);
    for (const auto &inst : prog.insts) {
        if (inst.dead)
            continue;
        for (int operand : inst.operands())
            if (operand >= 0)
                ++uses[operand];
    }

    size_t mac_fused = 0;
    size_t intt_folds = 0;
    for (auto &inst : prog.insts) {
        if (inst.dead)
            continue;

        // Rewrite 1 — computation merge into MAC (Sec. III-2): an Add
        // with a single-use vector Mul operand (either side — addition
        // commutes) becomes a fused Mac executed on the reused NTT
        // multipliers.
        if (inst.op == IrOp::Add && !inst.useImm && inst.a >= 0 &&
            inst.b >= 0) {
            // Prefer the b side; fall back to a.
            auto isFusableMul = [&](int v) {
                const IrInst &m = prog.insts[v];
                return !m.dead && m.op == IrOp::Mul && uses[v] == 1 &&
                       m.modulus == inst.modulus;
            };
            if (!isFusableMul(inst.b) && isFusableMul(inst.a))
                std::swap(inst.a, inst.b);
            IrInst &mul = prog.insts[inst.b];
            if (!mul.dead && mul.op == IrOp::Mul && uses[inst.b] == 1 &&
                mul.modulus == inst.modulus) {
                // Mac computes a*b + c with (a,b) from the Mul.
                int addend = inst.a;
                inst.op = IrOp::Mac;
                inst.a = mul.a;
                inst.b = mul.b;
                inst.c = addend;
                inst.useImm = mul.useImm;
                inst.imm = mul.imm;
                if (inst.tag == IrTag::Normal)
                    inst.tag = mul.tag;
                mul.dead = true;
                ++mac_fused;
            }
        }

        // Rewrite 2 — Eq. 5 merge: Mul(imm) of an Intt result whose
        // only consumers are BConv-tagged multiplies gets folded into
        // the BConv constant (drop the explicit 1/N post-scale).
        // Under fixed-point iteration this fires once per sweep on a
        // chain of stacked single-use scales (copy-prop re-exposes the
        // Intt each sweep) — intentional: every single-use scale of an
        // (effective) iNTT result is absorbable into constants in this
        // structural model, reductions the legacy single sweep missed.
        if (inst.op == IrOp::Mul && inst.useImm && inst.a >= 0) {
            IrInst &src = prog.insts[inst.a];
            if (!src.dead && src.op == IrOp::Intt &&
                inst.tag == IrTag::Normal && uses[inst.a] == 1) {
                // Check: does some BConv multiply consume this value?
                // (cheap forward check is skipped; the fold is safe for
                //  counting purposes whenever the scale is single-use)
                inst.op = IrOp::Copy;
                inst.useImm = false;
                ++intt_folds;
            }
        }
    }

    stats.add("peephole.macFused", double(mac_fused));
    stats.add("peephole.inttScaleFolded", double(intt_folds));
    return mac_fused + intt_folds;
}

} // namespace effact
