#include "compiler/region.h"

namespace effact {

std::vector<ChunkRange>
splitChunks(size_t n, size_t grain)
{
    std::vector<ChunkRange> chunks;
    if (n == 0)
        return chunks;
    const size_t g = grain == 0 ? 1 : grain;
    const size_t count = n / g == 0 ? 1 : n / g;
    chunks.reserve(count);
    // `count` full chunks of `g`, with the final chunk absorbing the
    // remainder — boundaries depend only on (n, grain).
    for (size_t c = 0; c < count; ++c) {
        const size_t begin = c * g;
        const size_t end = c + 1 == count ? n : begin + g;
        chunks.push_back(ChunkRange{begin, end});
    }
    return chunks;
}

} // namespace effact
