#include "compiler/pass.h"

#include <algorithm>
#include "common/logging.h"
#include "compiler/pass_manager.h"
#include "sched/depgraph.h"

#include <queue>

namespace effact {

namespace {

/** Legacy latency estimate (abstract lane-beats) used for the
 *  `"critical"` priority mode. */
double
estLatency(const IrInst &inst)
{
    switch (inst.op) {
      case IrOp::Ntt:
      case IrOp::Intt:
        return 16.0; // fine-grained NTT: the long pole
      case IrOp::Load:
      case IrOp::Store:
        return 8.0;
      case IrOp::Mac:
        return 1.5;
      default:
        return 1.0;
    }
}

/**
 * `"latency"` priority mode: per-instruction weight mirroring the
 * simulator's own occupancy model (`ResourceModel`), in modeled
 * cycles — element-wise ops occupy ceil(N / lanes), NTTs the
 * lane-normalized butterfly count N*log2(N)/2 / lanes, and memory ops
 * the HBM transfer time of one residue (8 bytes/coefficient), each
 * plus the fixed per-instruction startup overhead. At paper scale
 * (N=65536, 1024 lanes, 2.4 kB/cycle HBM) the ratio NTT : mem : EW is
 * roughly 528 : 234 : 80 — memory traffic is ~3x the static model's
 * weight relative to NTT, which is what re-ranks long load/store
 * chains above shallow arithmetic.
 */
double
modelLatency(const IrInst &inst, const CompilerOptions &opts,
             size_t degree)
{
    constexpr double kStartup = 16.0; // ResourceModel::kStartupCycles
    const double lanes = double(opts.lanes == 0 ? 1 : opts.lanes);
    const double n = double(degree == 0 ? 1 : degree);
    switch (inst.op) {
      case IrOp::Ntt:
      case IrOp::Intt: {
        double stages = 0.0;
        for (size_t d = 1; d < degree; d <<= 1)
            stages += 1.0;
        return kStartup + n * stages / 2.0 / lanes;
      }
      case IrOp::Load:
      case IrOp::Store: {
        const double bpc =
            opts.hbmBytesPerCycle > 0 ? opts.hbmBytesPerCycle : 1.0;
        return kStartup + n * 8.0 / bpc;
      }
      default:
        // Element-wise FU work (mul/add/sub/mac/auto/copy): one pass
        // over the residue at `lanes` coefficients per cycle.
        return kStartup + (n + lanes - 1.0) / lanes;
    }
}

} // namespace

std::vector<int>
runScheduler(const IrProgram &prog, AnalysisManager &analyses,
             const CompilerOptions &opts, StatSet &stats)
{
    const bool enabled = opts.schedule;
    const size_t n = prog.insts.size();
    // liveCount() walks every instruction; hoist it out of the scheduling
    // loop below or the pass goes quadratic on large programs (the 80k-inst
    // reduced bootstrapping took >10 s from this alone).
    const size_t live_count = prog.liveCount();
    std::vector<int> order;
    order.reserve(live_count);

    if (!enabled) {
        for (size_t i = 0; i < n; ++i)
            if (!prog.insts[i].dead)
                order.push_back(static_cast<int>(i));
        stats.add("sched.enabled", 0);
        return order;
    }

    // The shared dependence-graph layer: SSA true dependences + the
    // alias pass's memory-ordering edges, the same graph family the
    // event-driven simulator consumes at the machine level. Served from
    // the analysis cache, so a re-schedule of unchanged IR is free.
    const DepGraph &graph = analyses.depGraph(prog, stats);
    std::vector<uint32_t> preds = graph.indegrees();

    // Critical-path priority: longest latency path to any sink (node
    // ids are topological in SSA construction order, which DepGraph
    // edges preserve). Dead instructions have no edges and latency 0.
    // The per-instruction weights come from the selected latency model;
    // only this vector differs between the two modes — the windowed
    // list-scheduling mechanics below are shared.
    const bool model_latency = opts.scheduler == "latency";
    std::vector<double> latency(n, 0.0);
    for (size_t i = 0; i < n; ++i)
        if (!prog.insts[i].dead)
            latency[i] = model_latency
                             ? modelLatency(prog.insts[i], opts,
                                            prog.degree)
                             : estLatency(prog.insts[i]);
    const std::vector<double> prio = graph.criticalPath(latency);

    // Windowed list scheduling: ready instructions ordered by priority,
    // but reordering is confined to a sliding window over the original
    // program order. Unbounded reordering would interleave every
    // independent chain and explode SRAM register pressure; the window
    // keeps live ranges close to the lowering's locality while still
    // hiding latency (the paper couples this with the OoO scoreboard).
    constexpr size_t kReorderWindow = 96;
    using Entry = std::pair<double, int>;
    std::priority_queue<Entry> ready;
    std::vector<uint8_t> released(n, 0);
    size_t next_release = 0;
    size_t scheduled_floor = 0; // lowest unscheduled original index
    std::vector<uint8_t> done(n, 0);

    auto release = [&]() {
        // Admit instructions while the window [scheduled_floor,
        // next_release) stays within kReorderWindow live entries.
        while (next_release < n &&
               next_release < scheduled_floor + kReorderWindow) {
            size_t i = next_release++;
            if (!prog.insts[i].dead && preds[i] == 0 && !released[i]) {
                released[i] = 1;
                ready.emplace(prio[i], static_cast<int>(i));
            }
        }
    };
    release();

    while (order.size() < live_count) {
        if (ready.empty()) {
            // Everything released is blocked on un-released code: slide
            // the window forward.
            EFFACT_ASSERT(next_release < n, "scheduler deadlock");
            scheduled_floor = next_release;
            release();
            continue;
        }
        auto [p, idx] = ready.top();
        ready.pop();
        order.push_back(idx);
        done[idx] = 1;
        while (scheduled_floor < n &&
               (prog.insts[scheduled_floor].dead || done[scheduled_floor]))
            ++scheduled_floor;
        for (const DepEdge &e : graph.succs(static_cast<size_t>(idx))) {
            const int succ = e.other;
            if (--preds[succ] == 0 && !prog.insts[succ].dead &&
                static_cast<size_t>(succ) < next_release &&
                !released[succ]) {
                released[succ] = 1;
                ready.emplace(prio[succ], succ);
            }
        }
        release();
    }

    EFFACT_ASSERT(order.size() == live_count,
                  "scheduler dropped instructions (%zu of %zu)",
                  order.size(), live_count);
    stats.add("sched.enabled", 1);
    stats.add("sched.latencyModel", model_latency ? 1 : 0);
    stats.add("sched.criticalPath",
              n == 0 ? 0 : *std::max_element(prio.begin(), prio.end()));
    return order;
}

} // namespace effact
