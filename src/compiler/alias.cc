#include "compiler/pass.h"

#include <unordered_map>

namespace effact {

std::vector<std::pair<int, int>>
runAliasAnalysis(const IrProgram &prog, StatSet &stats)
{
    // Andersen-style analysis degenerates to exact location tracking
    // here: every memory access names its (object, index) pair, so two
    // accesses alias iff the pairs match. Read-only objects never need
    // ordering. Produces RAW/WAR/WAW edges for the scheduler.
    struct LocState
    {
        int lastStore = -1;
        std::vector<int> loadsSinceStore;
    };
    std::unordered_map<u64, LocState> locs;
    auto key = [](const MemRef &m) {
        return (static_cast<u64>(static_cast<uint32_t>(m.object)) << 32) |
               static_cast<uint32_t>(m.index);
    };

    std::vector<std::pair<int, int>> edges;
    for (size_t i = 0; i < prog.insts.size(); ++i) {
        const IrInst &inst = prog.insts[i];
        if (inst.dead || inst.mem.object < 0)
            continue;
        if (prog.objects[inst.mem.object].readOnly)
            continue;
        LocState &st = locs[key(inst.mem)];
        if (inst.op == IrOp::Load) {
            if (st.lastStore >= 0)
                edges.emplace_back(st.lastStore, static_cast<int>(i));
            st.loadsSinceStore.push_back(static_cast<int>(i));
        } else if (inst.op == IrOp::Store) {
            if (st.lastStore >= 0)
                edges.emplace_back(st.lastStore, static_cast<int>(i));
            for (int load : st.loadsSinceStore)
                edges.emplace_back(load, static_cast<int>(i));
            st.loadsSinceStore.clear();
            st.lastStore = static_cast<int>(i);
        }
    }
    stats.add("alias.memDepEdges", double(edges.size()));
    return edges;
}

} // namespace effact
