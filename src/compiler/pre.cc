#include "compiler/pass.h"

#include <unordered_map>

namespace effact {

namespace {

/** Hash key for value numbering. */
struct VnKey
{
    uint8_t op;
    int a;
    int b;
    int c; ///< Mac accumulator (-1 otherwise)
    u64 imm;
    uint8_t use_imm;
    uint32_t modulus;
    int mem_obj;
    int mem_idx;

    bool operator==(const VnKey &o) const
    {
        return op == o.op && a == o.a && b == o.b && c == o.c &&
               imm == o.imm && use_imm == o.use_imm &&
               modulus == o.modulus && mem_obj == o.mem_obj &&
               mem_idx == o.mem_idx;
    }
};

struct VnKeyHash
{
    size_t
    operator()(const VnKey &k) const
    {
        size_t h = k.op;
        h = h * 1000003 + static_cast<size_t>(k.a + 1);
        h = h * 1000003 + static_cast<size_t>(k.b + 1);
        h = h * 1000003 + static_cast<size_t>(k.c + 1);
        h = h * 1000003 + static_cast<size_t>(k.imm);
        h = h * 1000003 + k.use_imm;
        h = h * 1000003 + k.modulus;
        h = h * 1000003 + static_cast<size_t>(k.mem_obj + 1);
        h = h * 1000003 + static_cast<size_t>(k.mem_idx);
        return h;
    }
};

bool
commutative(IrOp op)
{
    return op == IrOp::Add || op == IrOp::Mul;
}

} // namespace

size_t
runPre(IrProgram &prog, StatSet &stats)
{
    // Value numbering over the SSA program (the dominator structure of a
    // straight-line program is trivial, so hash-based VN subsumes the
    // PRE of [15,32,36] here). Loads from read-only objects (keys,
    // plaintext constants) are pure and participate; mutable loads and
    // stores do not.
    std::unordered_map<VnKey, int, VnKeyHash> table;
    table.reserve(prog.insts.size());
    std::vector<int> fwd(prog.insts.size());
    for (size_t i = 0; i < fwd.size(); ++i)
        fwd[i] = static_cast<int>(i);
    auto resolve = [&](int v) {
        while (v >= 0 && fwd[v] != v)
            v = fwd[v];
        return v;
    };

    size_t cse_removed = 0;
    size_t reload_removed = 0;
    for (size_t i = 0; i < prog.insts.size(); ++i) {
        IrInst &inst = prog.insts[i];
        if (inst.dead)
            continue;
        for (int *slot : inst.operandSlots())
            if (*slot >= 0)
                *slot = resolve(*slot);

        bool pure = false;
        VnKey key{};
        key.op = static_cast<uint8_t>(inst.op);
        key.c = -1;
        key.modulus = inst.modulus;
        key.imm = inst.useImm ? inst.imm : 0;
        key.use_imm = inst.useImm;
        key.mem_obj = -1;
        key.mem_idx = 0;
        switch (inst.op) {
          case IrOp::Mul:
          case IrOp::Add:
          case IrOp::Sub:
          case IrOp::Mac:
          case IrOp::Ntt:
          case IrOp::Intt:
          case IrOp::Auto:
            pure = true;
            key.a = inst.a;
            key.b = inst.b;
            key.c = inst.c;
            if (commutative(inst.op) && !inst.useImm && key.b < key.a)
                std::swap(key.a, key.b);
            if (inst.op == IrOp::Auto)
                key.imm = inst.imm;
            break;
          case IrOp::Load:
            if (inst.mem.object >= 0 &&
                prog.objects[inst.mem.object].readOnly) {
                pure = true;
                key.a = -1;
                key.b = -1;
                key.mem_obj = inst.mem.object;
                key.mem_idx = inst.mem.index;
            }
            break;
          default:
            break;
        }
        if (!pure)
            continue;

        auto [it, inserted] = table.emplace(key, static_cast<int>(i));
        if (!inserted) {
            fwd[i] = it->second;
            inst.dead = true;
            if (inst.op == IrOp::Load)
                ++reload_removed;
            else
                ++cse_removed;
        }
    }

    // Dead-code elimination: anything unused that is not a Store.
    std::vector<uint32_t> uses(prog.insts.size(), 0);
    for (const auto &inst : prog.insts) {
        if (inst.dead)
            continue;
        for (int operand : inst.operands())
            if (operand >= 0)
                ++uses[operand];
    }
    size_t dce = 0;
    for (size_t i = prog.insts.size(); i-- > 0;) {
        IrInst &inst = prog.insts[i];
        if (inst.dead || inst.op == IrOp::Store || uses[i] != 0)
            continue;
        inst.dead = true;
        ++dce;
        // A use count hitting zero is handled when the reverse loop
        // reaches the defining instruction.
        for (int operand : inst.operands())
            if (operand >= 0)
                --uses[operand];
    }

    stats.add("pre.cseRemoved", double(cse_removed));
    stats.add("pre.readOnlyReloadsRemoved", double(reload_removed));
    stats.add("pre.deadCodeRemoved", double(dce));
    return cse_removed + reload_removed + dce;
}

} // namespace effact
