#include "compiler/pass.h"

#include <unordered_map>

namespace effact {

namespace {

/** Hash key for value numbering. */
struct VnKey
{
    uint8_t op;
    int a;
    int b;
    int c; ///< Mac accumulator (-1 otherwise)
    u64 imm;
    uint8_t use_imm;
    uint32_t modulus;
    int mem_obj;
    int mem_idx;

    bool operator==(const VnKey &o) const
    {
        return op == o.op && a == o.a && b == o.b && c == o.c &&
               imm == o.imm && use_imm == o.use_imm &&
               modulus == o.modulus && mem_obj == o.mem_obj &&
               mem_idx == o.mem_idx;
    }
};

struct VnKeyHash
{
    size_t
    operator()(const VnKey &k) const
    {
        size_t h = k.op;
        h = h * 1000003 + static_cast<size_t>(k.a + 1);
        h = h * 1000003 + static_cast<size_t>(k.b + 1);
        h = h * 1000003 + static_cast<size_t>(k.c + 1);
        h = h * 1000003 + static_cast<size_t>(k.imm);
        h = h * 1000003 + k.use_imm;
        h = h * 1000003 + k.modulus;
        h = h * 1000003 + static_cast<size_t>(k.mem_obj + 1);
        h = h * 1000003 + static_cast<size_t>(k.mem_idx);
        return h;
    }
};

bool
commutative(IrOp op)
{
    return op == IrOp::Add || op == IrOp::Mul;
}

/** Builds the VN key from an instruction's current operand values;
 *  returns false for impure instructions (stores, mutable loads). */
bool
makeKey(const IrProgram &prog, const IrInst &inst, VnKey &key)
{
    key = VnKey{};
    key.op = static_cast<uint8_t>(inst.op);
    key.c = -1;
    key.modulus = inst.modulus;
    key.imm = inst.useImm ? inst.imm : 0;
    key.use_imm = inst.useImm;
    key.mem_obj = -1;
    key.mem_idx = 0;
    switch (inst.op) {
      case IrOp::Mul:
      case IrOp::Add:
      case IrOp::Sub:
      case IrOp::Mac:
      case IrOp::Ntt:
      case IrOp::Intt:
      case IrOp::Auto:
        key.a = inst.a;
        key.b = inst.b;
        key.c = inst.c;
        if (commutative(inst.op) && !inst.useImm && key.b < key.a)
            std::swap(key.a, key.b);
        if (inst.op == IrOp::Auto)
            key.imm = inst.imm;
        return true;
      case IrOp::Load:
        if (inst.mem.object >= 0 &&
            prog.objects[inst.mem.object].readOnly) {
            key.a = -1;
            key.b = -1;
            key.mem_obj = inst.mem.object;
            key.mem_idx = inst.mem.index;
            return true;
        }
        return false;
      default:
        return false;
    }
}

/** Shared dead-code elimination tail (identical input state in both
 *  paths, so one implementation serves both). */
size_t
runDce(IrProgram &prog)
{
    std::vector<uint32_t> uses(prog.insts.size(), 0);
    for (const auto &inst : prog.insts) {
        if (inst.dead)
            continue;
        for (int operand : inst.operands())
            if (operand >= 0)
                ++uses[operand];
    }
    size_t dce = 0;
    for (size_t i = prog.insts.size(); i-- > 0;) {
        IrInst &inst = prog.insts[i];
        if (inst.dead || inst.op == IrOp::Store || uses[i] != 0)
            continue;
        inst.dead = true;
        ++dce;
        // A use count hitting zero is handled when the reverse loop
        // reaches the defining instruction.
        for (int operand : inst.operands())
            if (operand >= 0)
                --uses[operand];
    }
    return dce;
}

struct CseCounts
{
    size_t cse = 0;
    size_t reload = 0;
};

/** Legacy single-threaded scan — the serial oracle path. */
CseCounts
runCseSerial(IrProgram &prog)
{
    // Value numbering over the SSA program (the dominator structure of a
    // straight-line program is trivial, so hash-based VN subsumes the
    // PRE of [15,32,36] here). Loads from read-only objects (keys,
    // plaintext constants) are pure and participate; mutable loads and
    // stores do not.
    std::unordered_map<VnKey, int, VnKeyHash> table;
    table.reserve(prog.insts.size());
    std::vector<int> fwd(prog.insts.size());
    for (size_t i = 0; i < fwd.size(); ++i)
        fwd[i] = static_cast<int>(i);
    auto resolve = [&](int v) {
        while (v >= 0 && fwd[v] != v)
            v = fwd[v];
        return v;
    };

    CseCounts counts;
    for (size_t i = 0; i < prog.insts.size(); ++i) {
        IrInst &inst = prog.insts[i];
        if (inst.dead)
            continue;
        for (int *slot : inst.operandSlots())
            if (*slot >= 0)
                *slot = resolve(*slot);
        VnKey key;
        if (!makeKey(prog, inst, key))
            continue;
        auto [it, inserted] = table.emplace(key, static_cast<int>(i));
        if (!inserted) {
            fwd[i] = it->second;
            inst.dead = true;
            if (inst.op == IrOp::Load)
                ++counts.reload;
            else
                ++counts.cse;
        }
    }
    return counts;
}

/**
 * Region-sharded equivalent of the serial CSE scan. The serial pass's
 * fixpoint is exactly the *congruence closure* of the program with
 * min-index winners: the ascending scan sees every operand fully
 * resolved by the time it visits an instruction, so two instructions
 * end up forwarded to the same value iff their structures are equal
 * after recursively resolving operands, and each class keeps its
 * smallest index. That characterization is order-free, so the parallel
 * algorithm computes the same closure by rounds:
 *
 *  - Round 1 handles the bulk: keys over the raw operands are computed
 *    per shard, deduplicated by a hash-partitioned map-reduce (S fixed
 *    key shards, each merging its chunk streams in ascending order, so
 *    every shard map is thread-count independent — and min-index
 *    winners make it order-independent anyway), then kills are applied
 *    per shard.
 *  - Later rounds converge the cascades: any live instruction with an
 *    operand forwarded this pass re-resolves and re-keys against the
 *    persistent winner table. These worklists are tiny (only consumers
 *    of killed values), so they run sequentially in ascending index
 *    order — which is precisely the serial scan's tie-break, keeping
 *    winner selection identical. A re-keyed instruction that collides
 *    with a *larger* live winner replaces it (the old winner becomes
 *    the dup), which is exactly where the serial scan's min-index
 *    winner would have been the newcomer.
 *
 * The fixpoint kills the same instruction set with the same forwarding
 * roots as the serial scan, and a final sharded sweep resolves every
 * entry-live instruction's operands (dead ones too — the serial scan
 * resolves an instruction's operands before killing it).
 */
CseCounts
runCseParallel(IrProgram &prog, const ParallelExec &exec)
{
    const size_t n = prog.insts.size();
    constexpr size_t kKeyShards = 64;
    const std::vector<ChunkRange> chunks = splitChunks(n, kDefaultChunkGrain);
    const size_t chunk_count = chunks.size();

    std::vector<int> fwd(n);
    for (size_t i = 0; i < n; ++i)
        fwd[i] = static_cast<int>(i);
    auto resolve = [&](int v) {
        while (v >= 0 && fwd[v] != v)
            v = fwd[v];
        return v;
    };

    std::vector<VnKey> keys(n);
    std::vector<uint8_t> pure(n, 0);
    std::vector<uint8_t> entry_dead(n, 0);

    // Round 1, phase A: keys on raw operands + purity + entry liveness.
    exec.forChunks(n, kDefaultChunkGrain,
                   [&](size_t, size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) {
                           const IrInst &inst = prog.insts[i];
                           entry_dead[i] = inst.dead ? 1 : 0;
                           if (!inst.dead)
                               pure[i] =
                                   makeKey(prog, inst, keys[i]) ? 1 : 0;
                       }
                   });

    // Phase B: bucket pure instructions by key-hash shard. Shard choice
    // depends only on the key, never on the worker count.
    std::vector<std::vector<std::vector<int>>> buckets(
        chunk_count, std::vector<std::vector<int>>(kKeyShards));
    exec.forChunks(n, kDefaultChunkGrain,
                   [&](size_t c, size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i)
                           if (pure[i])
                               buckets[c][VnKeyHash()(keys[i]) % kKeyShards]
                                   .push_back(static_cast<int>(i));
                   });

    // Phase C: per-shard winner maps — merge chunk streams in ascending
    // order; first insert wins, which is the min index.
    std::vector<std::unordered_map<VnKey, int, VnKeyHash>> table(kKeyShards);
    exec.forChunks(kKeyShards, 1, [&](size_t, size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s) {
            size_t total = 0;
            for (size_t c = 0; c < chunk_count; ++c)
                total += buckets[c][s].size();
            table[s].reserve(total);
            for (size_t c = 0; c < chunk_count; ++c)
                for (int i : buckets[c][s])
                    table[s].emplace(keys[i], i);
        }
    });

    // Phase D: kills. Winners are min-index, so they always survive.
    std::vector<CseCounts> chunk_counts(chunk_count);
    exec.forChunks(
        n, kDefaultChunkGrain, [&](size_t c, size_t begin, size_t end) {
            CseCounts &counts = chunk_counts[c];
            for (size_t i = begin; i < end; ++i) {
                if (!pure[i])
                    continue;
                const int w =
                    table[VnKeyHash()(keys[i]) % kKeyShards].at(keys[i]);
                if (w < static_cast<int>(i)) {
                    IrInst &inst = prog.insts[i];
                    fwd[i] = w;
                    inst.dead = true;
                    if (inst.op == IrOp::Load)
                        ++counts.reload;
                    else
                        ++counts.cse;
                }
            }
        });
    CseCounts counts;
    for (const CseCounts &cc : chunk_counts) {
        counts.cse += cc.cse;
        counts.reload += cc.reload;
    }

    // Rounds >= 2: cascade convergence. A slot pointing at a value this
    // pass forwarded (fwd[s] != s) means the owner must re-resolve and
    // re-key; entry-dead operands never trip the test, matching the
    // serial scan which leaves them untouched.
    std::vector<std::vector<int>> chunk_worklists(chunk_count);
    for (;;) {
        exec.forChunks(n, kDefaultChunkGrain,
                       [&](size_t c, size_t begin, size_t end) {
                           std::vector<int> &wl = chunk_worklists[c];
                           wl.clear();
                           for (size_t i = begin; i < end; ++i) {
                               const IrInst &inst = prog.insts[i];
                               if (inst.dead)
                                   continue;
                               for (int s : inst.operands())
                                   if (s >= 0 && fwd[s] != s) {
                                       wl.push_back(static_cast<int>(i));
                                       break;
                                   }
                           }
                       });
        size_t pending = 0;
        for (const std::vector<int> &wl : chunk_worklists)
            pending += wl.size();
        if (pending == 0)
            break;
        // Sequential, ascending: identical tie-breaks to the serial
        // scan. The worklist is only consumers of freshly killed
        // values, a vanishing fraction of the program.
        for (const std::vector<int> &wl : chunk_worklists) {
            for (int i : wl) {
                IrInst &inst = prog.insts[i];
                if (inst.dead)
                    continue; // killed earlier this round
                for (int *slot : inst.operandSlots())
                    if (*slot >= 0)
                        *slot = resolve(*slot);
                if (!pure[i])
                    continue;
                VnKey key;
                makeKey(prog, inst, key);
                if (key == keys[i])
                    continue;
                // Drop the stale entry if this instruction was its
                // key's winner.
                auto &old_shard =
                    table[VnKeyHash()(keys[i]) % kKeyShards];
                auto old_it = old_shard.find(keys[i]);
                if (old_it != old_shard.end() && old_it->second == i)
                    old_shard.erase(old_it);
                keys[i] = key;
                auto &shard = table[VnKeyHash()(key) % kKeyShards];
                auto [it, inserted] = shard.emplace(key, i);
                if (inserted)
                    continue;
                const int w = it->second;
                if (w < i) {
                    fwd[i] = w;
                    inst.dead = true;
                    if (inst.op == IrOp::Load)
                        ++counts.reload;
                    else
                        ++counts.cse;
                } else {
                    // This instruction is the smaller index: it becomes
                    // the winner and the old winner becomes the dup —
                    // the serial scan would have chosen the same class
                    // representative.
                    IrInst &loser = prog.insts[w];
                    fwd[w] = i;
                    loser.dead = true;
                    if (loser.op == IrOp::Load)
                        ++counts.reload;
                    else
                        ++counts.cse;
                    it->second = i;
                }
            }
        }
    }

    // Final sweep: every entry-live instruction's operands resolve to
    // their closure roots (the serial scan resolved an instruction's
    // slots before deciding its fate, dups included).
    exec.forChunks(n, kDefaultChunkGrain,
                   [&](size_t, size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) {
                           if (entry_dead[i])
                               continue;
                           IrInst &inst = prog.insts[i];
                           for (int *slot : inst.operandSlots())
                               if (*slot >= 0)
                                   *slot = resolve(*slot);
                       }
                   });
    return counts;
}

} // namespace

size_t
runPre(IrProgram &prog, StatSet &stats, const ParallelExec &exec)
{
    const CseCounts counts = exec.parallel() ? runCseParallel(prog, exec)
                                             : runCseSerial(prog);
    // Dead-code elimination: anything unused that is not a Store.
    const size_t dce = runDce(prog);

    stats.add("pre.cseRemoved", double(counts.cse));
    stats.add("pre.readOnlyReloadsRemoved", double(counts.reload));
    stats.add("pre.deadCodeRemoved", double(dce));
    return counts.cse + counts.reload + dce;
}

} // namespace effact
