#include "compiler/pass.h"

#include "common/logging.h"

#include <algorithm>
#include <set>

namespace effact {

namespace {

Opcode
toOpcode(IrOp op)
{
    switch (op) {
      case IrOp::Mul: return Opcode::MMUL;
      case IrOp::Add: return Opcode::MMAD;
      case IrOp::Sub: return Opcode::MSUB;
      case IrOp::Mac: return Opcode::MMAC;
      case IrOp::Ntt: return Opcode::NTT;
      case IrOp::Intt: return Opcode::INTT;
      case IrOp::Auto: return Opcode::AUTO;
      case IrOp::Load: return Opcode::LOAD_RES;
      case IrOp::Store: return Opcode::STORE_RES;
      case IrOp::Copy: return Opcode::VEC_COPY;
    }
    panic("bad IrOp");
}

/** Read-only state shared by the emission core and its counting twin. */
struct EmitCtx
{
    const IrProgram &prog;
    const StreamingInfo &streaming;
    const std::vector<uint8_t> &value_streams_to_store;
    const std::vector<int> &assigned;
    const std::vector<uint8_t> &spilled;
    const std::vector<uint8_t> &remat;
    const std::vector<u64> &spill_addr;
    const std::vector<u64> &obj_base;
    size_t residue_bytes;
    size_t alloc_regs;
    size_t num_scratch;
};

/**
 * Emits the machine code for one scheduled IR instruction into `sink`
 * (spill reloads first, then the instruction, then its spill store —
 * the exact order the classic single append loop produced).
 * `scratch_calls` is the global running count of scratch-register
 * grabs; the register is `alloc_regs + scratch_calls % num_scratch`,
 * which makes the round-robin resumable at any point — the key to
 * sharded emission: a shard seeds it with the exclusive prefix sum of
 * earlier shards' counts and emits bytes identical to the serial loop.
 */
template <class Sink>
void
emitOne(const EmitCtx &cx, int idx, Sink &sink, u64 &scratch_calls)
{
    const size_t i = static_cast<size_t>(idx);
    const IrInst &inst = cx.prog.insts[i];

    auto scratchReg = [&]() {
        const int r = static_cast<int>(
            cx.alloc_regs + scratch_calls % cx.num_scratch);
        ++scratch_calls;
        return r;
    };

    auto operandFor = [&](int value) {
        const IrInst &def = cx.prog.insts[value];
        if (def.op == IrOp::Load && cx.streaming.streamedLoad[value]) {
            // Streaming operand fed straight from DRAM (Sec. IV-C).
            Operand o = Operand::stream(0, /*from_dram=*/true);
            o.value = cx.obj_base[def.mem.object] +
                      static_cast<u64>(def.mem.index) * cx.residue_bytes;
            return o;
        }
        if (cx.streaming.fifoForward[value])
            return Operand::stream(static_cast<u64>(value));
        if (cx.assigned[value] >= 0)
            return Operand::regOp(cx.assigned[value]);
        if (cx.spilled[value]) {
            // Reload from the spill slot into a scratch register.
            int r = scratchReg();
            MachInst load;
            load.op = Opcode::LOAD_RES;
            load.dest = Operand::regOp(r);
            load.hbmAddr = cx.spill_addr[value];
            load.irId = value;
            sink.push(load);
            ++sink.spillLoads;
            return Operand::regOp(r);
        }
        // Value streams to a store or is scratch-resident.
        return Operand::regOp(scratchReg());
    };

    if (inst.op == IrOp::Load) {
        if (cx.streaming.streamedLoad[i])
            return; // merged into its consumer
        if (cx.remat[i])
            return; // reloaded at each use instead
        MachInst mi;
        mi.op = Opcode::LOAD_RES;
        // A load whose value is never used (possible when DCE is
        // off) has no allocated register; land it in scratch like
        // any other unconsumed result — emitting register id -1
        // would corrupt dependence tracking downstream.
        mi.dest = cx.assigned[i] >= 0 ? Operand::regOp(cx.assigned[i])
                                      : Operand::regOp(scratchReg());
        mi.hbmAddr = cx.obj_base[inst.mem.object] +
                     static_cast<u64>(inst.mem.index) * cx.residue_bytes;
        mi.modulus = inst.modulus;
        mi.irId = idx;
        sink.push(mi);
        return;
    }

    if (inst.op == IrOp::Store) {
        MachInst mi;
        mi.op = Opcode::STORE_RES;
        mi.src0 = cx.streaming.streamedStore[i]
                      ? Operand::stream(static_cast<u64>(inst.a))
                      : operandFor(inst.a);
        mi.hbmAddr = cx.obj_base[inst.mem.object] +
                     static_cast<u64>(inst.mem.index) * cx.residue_bytes;
        mi.modulus = inst.modulus;
        mi.irId = idx;
        sink.push(mi);
        return;
    }

    MachInst mi;
    mi.op = toOpcode(inst.op);
    mi.modulus = inst.modulus;
    mi.imm = inst.imm;
    mi.irId = idx;
    if (inst.a >= 0)
        mi.src0 = operandFor(inst.a);
    if (inst.useImm)
        mi.src1 = Operand::imm(inst.imm);
    else if (inst.b >= 0)
        mi.src1 = operandFor(inst.b);

    if (inst.op == IrOp::Mac && inst.c >= 0)
        mi.src2 = operandFor(inst.c);

    if (cx.value_streams_to_store[i]) {
        mi.dest = Operand::stream(static_cast<u64>(i));
    } else if (cx.streaming.fifoForward[i]) {
        mi.dest = Operand::stream(static_cast<u64>(i));
    } else if (cx.assigned[i] >= 0) {
        mi.dest = Operand::regOp(cx.assigned[i]);
    } else {
        mi.dest = Operand::regOp(scratchReg());
    }
    sink.push(mi);

    if (cx.spilled[i] && !cx.remat[i]) {
        MachInst spill;
        spill.op = Opcode::STORE_RES;
        spill.src0 = mi.dest;
        spill.hbmAddr = cx.spill_addr[i];
        spill.irId = idx;
        sink.push(spill);
        ++sink.spillStores;
    }
}

/** Emission-count twin of `emitOne`: how many machine instructions and
 *  scratch-register grabs one scheduled instruction produces. Pure per
 *  instruction — this is what lets shards compute exact output offsets
 *  and round-robin seeds without emitting anything. */
struct EmitCount
{
    uint32_t insts = 0;
    uint32_t scratch = 0;
};

EmitCount
countOne(const EmitCtx &cx, int idx)
{
    const size_t i = static_cast<size_t>(idx);
    const IrInst &inst = cx.prog.insts[i];
    EmitCount count;

    auto countOperand = [&](int value) {
        const IrInst &def = cx.prog.insts[value];
        if (def.op == IrOp::Load && cx.streaming.streamedLoad[value])
            return;
        if (cx.streaming.fifoForward[value])
            return;
        if (cx.assigned[value] >= 0)
            return;
        if (cx.spilled[value]) {
            ++count.insts; // reload load
            ++count.scratch;
            return;
        }
        ++count.scratch; // scratch-resident fallback
    };

    if (inst.op == IrOp::Load) {
        if (cx.streaming.streamedLoad[i] || cx.remat[i])
            return count;
        ++count.insts;
        if (cx.assigned[i] < 0)
            ++count.scratch;
        return count;
    }
    if (inst.op == IrOp::Store) {
        if (!cx.streaming.streamedStore[i])
            countOperand(inst.a);
        ++count.insts;
        return count;
    }
    if (inst.a >= 0)
        countOperand(inst.a);
    if (!inst.useImm && inst.b >= 0)
        countOperand(inst.b);
    if (inst.op == IrOp::Mac && inst.c >= 0)
        countOperand(inst.c);
    if (!cx.value_streams_to_store[i] && !cx.streaming.fifoForward[i] &&
        cx.assigned[i] < 0)
        ++count.scratch;
    ++count.insts;
    if (cx.spilled[i] && !cx.remat[i])
        ++count.insts; // spill store
    return count;
}

/** Serial sink: appends to the program like the classic loop. */
struct AppendSink
{
    std::vector<MachInst> &out;
    size_t spillLoads = 0;
    size_t spillStores = 0;
    void push(const MachInst &mi) { out.push_back(mi); }
};

/** Sharded sink: writes into a precomputed slice of the output. */
struct SliceSink
{
    MachInst *cursor;
    size_t spillLoads = 0;
    size_t spillStores = 0;
    void push(const MachInst &mi) { *cursor++ = mi; }
};

} // namespace

MachineProgram
runRegAllocAndCodegen(const IrProgram &prog, const std::vector<int> &order,
                      const StreamingInfo &streaming,
                      const CompilerOptions &opts, StatSet &stats,
                      const ParallelExec &exec)
{
    const size_t n = prog.insts.size();
    const size_t residue_bytes = prog.degree * 8;
    size_t num_regs = std::max<size_t>(opts.sramBytes / residue_bytes, 8);
    // Scratch registers for spill reloads; sized from measured reload
    // pressure after a first allocation pass (see below).
    const size_t max_scratch = 4;

    // Scheduled position of each instruction.
    std::vector<int> pos(n, -1);
    for (size_t k = 0; k < order.size(); ++k)
        pos[order[k]] = static_cast<int>(k);

    // Which values need an SRAM register at all.
    std::vector<uint8_t> needs_reg(n, 0);
    std::vector<int> last_use(n, -1);
    for (size_t i = 0; i < n; ++i) {
        const IrInst &inst = prog.insts[i];
        if (inst.dead)
            continue;
        for (int operand : {inst.a, inst.b, inst.c})
            if (operand >= 0)
                last_use[operand] = std::max(last_use[operand], pos[i]);
    }
    // Which values stream straight from their FU to a store. Computed
    // in a pass of its own BEFORE the needs_reg scan: a store always
    // follows its operand in value order, so folding this into the scan
    // below would visit the producer before the flag is set, hand the
    // value a register interval, and let linear scan spill it — whose
    // spill store would then consume the producer's one-shot FIFO token
    // and leave the real streamed store with an unproduced token
    // (caught by mach.stream.producer at the back-end checkpoint).
    std::vector<uint8_t> value_streams_to_store(n, 0);
    for (size_t i = 0; i < n; ++i) {
        const IrInst &inst = prog.insts[i];
        if (!inst.dead && inst.op == IrOp::Store &&
            streaming.streamedStore[i] && inst.a >= 0)
            value_streams_to_store[inst.a] = 1;
    }
    for (size_t i = 0; i < n; ++i) {
        const IrInst &inst = prog.insts[i];
        if (inst.dead)
            continue;
        if (inst.op == IrOp::Store)
            continue; // stores produce no value
        if (inst.op == IrOp::Load && streaming.streamedLoad[i])
            continue; // consumer reads the FIFO
        if (streaming.fifoForward[i])
            continue; // forwarded FU-to-FU
        if (value_streams_to_store[i])
            continue; // result streams straight to DRAM
        if (last_use[i] < 0)
            continue; // dead result (kept only for Store-less outputs)
        needs_reg[i] = 1;
    }

    // Linear scan over the schedule.
    std::vector<int> assigned(n, -1);    // register id per value
    std::vector<uint8_t> spilled(n, 0);  // spilled to HBM
    size_t spill_count = 0;

    // Priority policy (`CompilerOptions::regalloc == "priority"`):
    // sorted use-position lists per value, so a spill decision can score
    // every candidate against the spill-dominated cycle model. A
    // spilled value never regains a register — emission reloads it at
    // EVERY remaining use and writes its slot once at the def — so the
    // cost of evicting v at position s is its remaining-use count r
    // plus a fixed kStoreCost charge for the spill store; the benefit
    // is how long the freed register stays free: the distance to v's
    // interval END. Evict the candidate minimizing cost per cycle of
    // occupancy freed, (r + kStoreCost)/(end - s). The end-distance
    // denominator keeps the legacy scan's strength (parking the
    // longest-lived interval defers the next pressure event, which is
    // what decides cycles when spills are rare, e.g. bootstrapping at
    // 54 MB SRAM), while the reload numerator keeps many-use values
    // resident even when their interval end is far away — the case
    // the legacy furthest-END heuristic gets wrong and what buys the
    // double-digit win at 13 MB. Scoring breathing room by NEXT USE
    // instead (classic Belady) loses at large SRAM: with eviction
    // permanent, a far next use says nothing about how soon the
    // register is truly free. Both constants were swept on the perf
    // lane's win grid; (r + 1)/(end - s) wins or ties every measured
    // (workload, SRAM) point.
    const bool priority_alloc = opts.regalloc == "priority";
    constexpr long long kStoreCost = 1;
    std::vector<std::vector<int>> use_pos;
    if (priority_alloc) {
        use_pos.resize(n);
        for (size_t i = 0; i < n; ++i) {
            const IrInst &inst = prog.insts[i];
            if (inst.dead)
                continue;
            for (int operand : {inst.a, inst.b, inst.c})
                if (operand >= 0 && pos[i] >= 0)
                    use_pos[operand].push_back(pos[i]);
        }
        for (std::vector<int> &u : use_pos)
            std::sort(u.begin(), u.end());
    }

    auto linearScan = [&](size_t alloc_regs) {
        assigned.assign(n, -1);
        spilled.assign(n, 0);
        spill_count = 0;
        std::vector<int> free_regs;
        for (size_t r = 0; r < alloc_regs; ++r)
            free_regs.push_back(static_cast<int>(r));
        // Active intervals ordered by end position.
        std::set<std::pair<int, int>> active; // (end, value)

        auto reloadsDue = [&](int v, int s) -> long long {
            const std::vector<int> &u = use_pos[static_cast<size_t>(v)];
            return u.end() - std::lower_bound(u.begin(), u.end(), s);
        };
        for (int idx : order) {
            const size_t i = static_cast<size_t>(idx);
            if (!needs_reg[i])
                continue;
            const int start = pos[i];
            const int end = last_use[i];
            // Expire finished intervals.
            while (!active.empty() && active.begin()->first < start) {
                free_regs.push_back(assigned[active.begin()->second]);
                active.erase(active.begin());
            }
            if (!free_regs.empty()) {
                assigned[i] = free_regs.back();
                free_regs.pop_back();
                active.emplace(end, static_cast<int>(i));
            } else if (!priority_alloc) {
                // Legacy: spill the interval that ends furthest away.
                auto furthest = std::prev(active.end());
                if (furthest->first > end) {
                    int victim = furthest->second;
                    assigned[i] = assigned[victim];
                    spilled[victim] = 1;
                    assigned[victim] = -1;
                    active.erase(furthest);
                    active.emplace(end, static_cast<int>(i));
                } else {
                    spilled[i] = 1;
                }
                ++spill_count;
            } else {
                // Priority: candidates are every active plus the
                // incoming value itself. Compare (r + 1)/(end - s)
                // ratios with exact integer cross-multiplication (the
                // end distance can be 0 for an interval expiring at
                // this position — cost/0 = infinity keeps it resident,
                // and it frees its register on its own next tick
                // anyway). Ties prefer the larger end distance, then
                // the smaller value id: fully deterministic.
                long long best_r = reloadsDue(idx, start);
                long long best_d = end - start;
                int best_v = idx;
                for (const std::pair<int, int> &entry : active) {
                    const int v = entry.second;
                    const long long r = reloadsDue(v, start);
                    const long long d = entry.first - start;
                    const long long lhs = (r + kStoreCost) * best_d;
                    const long long rhs = (best_r + kStoreCost) * d;
                    if (lhs < rhs ||
                        (lhs == rhs &&
                         (d > best_d || (d == best_d && v < best_v)))) {
                        best_r = r;
                        best_d = d;
                        best_v = v;
                    }
                }
                if (best_v != idx) {
                    assigned[i] = assigned[best_v];
                    spilled[best_v] = 1;
                    assigned[best_v] = -1;
                    active.erase({last_use[best_v], best_v});
                    active.emplace(end, static_cast<int>(i));
                } else {
                    spilled[i] = 1;
                }
                ++spill_count;
            }
        }
    };
    // First pass with the whole pool minus one scratch register (the
    // minimum: non-reload fallbacks below also target scratch).
    linearScan(num_regs - 1);

    // Size the scratch pool from measured reload pressure. Reloads
    // round-robin through the pool, so reuse of a scratch register
    // within the OoO scoreboard's reach creates WAW anti-dependences
    // between reloads; spacing them over `pressure` registers (the
    // most reloads observed in any issue-window span of the schedule)
    // removes that serialization. The pool is capped at the historic 4:
    // a cycle sweep across SRAM sizes showed anti-dependences only gate
    // issue in this machine model (they are nearly free), while every
    // register taken from the allocator adds spills — spill count, not
    // WAW spacing, dominates simulated cycles. So low pressure shrinks
    // the pool and returns registers to the allocator; high pressure
    // never grows it past 4.
    size_t num_scratch = 1;
    if (spill_count > 0) {
        // The span over which reloads can be in flight concurrently is
        // the target's OoO scoreboard depth.
        const size_t pressure_window =
            std::max<size_t>(opts.issueWindow, 1);
        std::vector<uint32_t> reloads;
        reloads.reserve(order.size());
        for (int idx : order) {
            const IrInst &inst = prog.insts[static_cast<size_t>(idx)];
            uint32_t cnt = 0;
            if (inst.op == IrOp::Store) {
                if (!streaming.streamedStore[static_cast<size_t>(idx)] &&
                    inst.a >= 0 && spilled[inst.a])
                    ++cnt;
            } else {
                if (inst.a >= 0 && spilled[inst.a])
                    ++cnt;
                if (!inst.useImm && inst.b >= 0 && spilled[inst.b])
                    ++cnt;
                if (inst.op == IrOp::Mac && inst.c >= 0 &&
                    spilled[inst.c])
                    ++cnt;
            }
            reloads.push_back(cnt);
        }
        size_t in_window = 0, pressure = 0;
        for (size_t k = 0; k < reloads.size(); ++k) {
            in_window += reloads[k];
            if (k >= pressure_window)
                in_window -= reloads[k - pressure_window];
            pressure = std::max(pressure, in_window);
        }
        stats.add("regalloc.reloadPressure", double(pressure));
        num_scratch = std::min(std::max<size_t>(pressure, 1), max_scratch);
        if (num_scratch > 1) {
            // Re-allocate with the final pool (one resize pass; the
            // re-run's pressure is close enough not to iterate).
            linearScan(num_regs - num_scratch);
        }
    }
    const size_t alloc_regs = num_regs - num_scratch;
    stats.add("regalloc.spilledValues", double(spill_count));

    // HBM address map: program objects first, then the spill area.
    std::vector<u64> obj_base(prog.objects.size(), 0);
    u64 next_addr = 0;
    for (size_t o = 0; o < prog.objects.size(); ++o) {
        obj_base[o] = next_addr;
        next_addr += static_cast<u64>(prog.objects[o].residues) *
                     residue_bytes;
    }
    // Values defined by read-only loads are rematerialized (reloaded
    // from their home address) rather than spilled: no spill store, and
    // the reload models the paper's key/constant streaming from HBM.
    std::vector<uint8_t> remat(n, 0);
    for (size_t i = 0; i < n; ++i) {
        const IrInst &inst = prog.insts[i];
        if (spilled[i] && inst.op == IrOp::Load && inst.mem.object >= 0 &&
            prog.objects[inst.mem.object].readOnly)
            remat[i] = 1;
    }
    std::vector<u64> spill_addr(n, 0);
    for (size_t i = 0; i < n; ++i) {
        if (spilled[i] && !remat[i]) {
            spill_addr[i] = next_addr;
            next_addr += residue_bytes;
        } else if (remat[i]) {
            const IrInst &inst = prog.insts[i];
            spill_addr[i] = obj_base[inst.mem.object] +
                            static_cast<u64>(inst.mem.index) *
                                residue_bytes;
        }
    }

    // --- Emission --------------------------------------------------------
    MachineProgram mp;
    mp.residueBytes = residue_bytes;
    mp.numRegs = num_regs;
    mp.scratchRegs = num_scratch;

    const EmitCtx cx{prog,       streaming, value_streams_to_store,
                     assigned,   spilled,   remat,
                     spill_addr, obj_base,  residue_bytes,
                     alloc_regs, num_scratch};

    if (!exec.parallel()) {
        // Serial path: one append loop in schedule order, exactly the
        // classic emission. The exact-count pre-pass is skipped; a
        // heuristic reserve avoids the worst reallocation churn.
        mp.insts.reserve(order.size() + order.size() / 4);
        AppendSink sink{mp.insts};
        u64 scratch_calls = 0;
        for (int idx : order)
            emitOne(cx, idx, sink, scratch_calls);
        mp.spillLoads += sink.spillLoads;
        mp.spillStores += sink.spillStores;
    } else {
        // Sharded emission: per-instruction output sizes and scratch
        // grabs are position-independent, so shards count, a prefix sum
        // fixes each shard's output offset and round-robin seed, and
        // every shard emits its slice — byte-identical to the serial
        // loop at any thread count.
        const std::vector<ChunkRange> chunks =
            splitChunks(order.size(), kDefaultChunkGrain);
        const size_t chunk_count = chunks.size();
        std::vector<u64> chunk_insts(chunk_count, 0);
        std::vector<u64> chunk_scratch(chunk_count, 0);
        exec.forChunks(order.size(), kDefaultChunkGrain,
                       [&](size_t c, size_t begin, size_t end) {
                           u64 insts = 0, scratch = 0;
                           for (size_t k = begin; k < end; ++k) {
                               const EmitCount ec = countOne(cx, order[k]);
                               insts += ec.insts;
                               scratch += ec.scratch;
                           }
                           chunk_insts[c] = insts;
                           chunk_scratch[c] = scratch;
                       });
        std::vector<u64> base_insts(chunk_count + 1, 0);
        std::vector<u64> base_scratch(chunk_count + 1, 0);
        for (size_t c = 0; c < chunk_count; ++c) {
            base_insts[c + 1] = base_insts[c] + chunk_insts[c];
            base_scratch[c + 1] = base_scratch[c] + chunk_scratch[c];
        }
        mp.insts.resize(base_insts[chunk_count]);
        std::vector<size_t> shard_spill_loads(chunk_count, 0);
        std::vector<size_t> shard_spill_stores(chunk_count, 0);
        exec.forChunks(
            order.size(), kDefaultChunkGrain,
            [&](size_t c, size_t begin, size_t end) {
                SliceSink sink{mp.insts.data() + base_insts[c]};
                u64 scratch_calls = base_scratch[c];
                for (size_t k = begin; k < end; ++k)
                    emitOne(cx, order[k], sink, scratch_calls);
                EFFACT_ASSERT(sink.cursor ==
                                      mp.insts.data() + base_insts[c + 1] &&
                                  scratch_calls == base_scratch[c] +
                                                       chunk_scratch[c],
                              "sharded emission diverged from its count "
                              "pre-pass in chunk %zu",
                              c);
                shard_spill_loads[c] = sink.spillLoads;
                shard_spill_stores[c] = sink.spillStores;
            });
        for (size_t c = 0; c < chunk_count; ++c) {
            mp.spillLoads += shard_spill_loads[c];
            mp.spillStores += shard_spill_stores[c];
        }
    }

    for (uint8_t s : streaming.streamedLoad)
        mp.streamedOps += s;
    for (uint8_t s : streaming.streamedStore)
        mp.streamedOps += s;

    stats.add("regalloc.registers", double(num_regs));
    stats.add("regalloc.scratchRegs", double(num_scratch));
    stats.add("regalloc.spilledValues", double(spill_count));
    stats.add("regalloc.spillLoads", double(mp.spillLoads));
    stats.add("regalloc.spillStores", double(mp.spillStores));
    return mp;
}

} // namespace effact
