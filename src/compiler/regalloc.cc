#include "compiler/pass.h"

#include "common/logging.h"

#include <algorithm>
#include <set>

namespace effact {

namespace {

Opcode
toOpcode(IrOp op)
{
    switch (op) {
      case IrOp::Mul: return Opcode::MMUL;
      case IrOp::Add: return Opcode::MMAD;
      case IrOp::Sub: return Opcode::MSUB;
      case IrOp::Mac: return Opcode::MMAC;
      case IrOp::Ntt: return Opcode::NTT;
      case IrOp::Intt: return Opcode::INTT;
      case IrOp::Auto: return Opcode::AUTO;
      case IrOp::Load: return Opcode::LOAD_RES;
      case IrOp::Store: return Opcode::STORE_RES;
      case IrOp::Copy: return Opcode::VEC_COPY;
    }
    panic("bad IrOp");
}

} // namespace

MachineProgram
runRegAllocAndCodegen(const IrProgram &prog, const std::vector<int> &order,
                      const StreamingInfo &streaming,
                      const CompilerOptions &opts, StatSet &stats)
{
    const size_t n = prog.insts.size();
    const size_t residue_bytes = prog.degree * 8;
    size_t num_regs = std::max<size_t>(opts.sramBytes / residue_bytes, 8);
    // Scratch registers for spill reloads; sized from measured reload
    // pressure after a first allocation pass (see below).
    const size_t max_scratch = 4;

    // Scheduled position of each instruction.
    std::vector<int> pos(n, -1);
    for (size_t k = 0; k < order.size(); ++k)
        pos[order[k]] = static_cast<int>(k);

    // Which values need an SRAM register at all.
    std::vector<uint8_t> needs_reg(n, 0);
    std::vector<int> last_use(n, -1);
    for (size_t i = 0; i < n; ++i) {
        const IrInst &inst = prog.insts[i];
        if (inst.dead)
            continue;
        for (int operand : {inst.a, inst.b, inst.c})
            if (operand >= 0)
                last_use[operand] = std::max(last_use[operand], pos[i]);
    }
    // Which values stream straight from their FU to a store. Computed
    // in a pass of its own BEFORE the needs_reg scan: a store always
    // follows its operand in value order, so folding this into the scan
    // below would visit the producer before the flag is set, hand the
    // value a register interval, and let linear scan spill it — whose
    // spill store would then consume the producer's one-shot FIFO token
    // and leave the real streamed store with an unproduced token
    // (caught by mach.stream.producer at the back-end checkpoint).
    std::vector<uint8_t> value_streams_to_store(n, 0);
    for (size_t i = 0; i < n; ++i) {
        const IrInst &inst = prog.insts[i];
        if (!inst.dead && inst.op == IrOp::Store &&
            streaming.streamedStore[i] && inst.a >= 0)
            value_streams_to_store[inst.a] = 1;
    }
    for (size_t i = 0; i < n; ++i) {
        const IrInst &inst = prog.insts[i];
        if (inst.dead)
            continue;
        if (inst.op == IrOp::Store)
            continue; // stores produce no value
        if (inst.op == IrOp::Load && streaming.streamedLoad[i])
            continue; // consumer reads the FIFO
        if (streaming.fifoForward[i])
            continue; // forwarded FU-to-FU
        if (value_streams_to_store[i])
            continue; // result streams straight to DRAM
        if (last_use[i] < 0)
            continue; // dead result (kept only for Store-less outputs)
        needs_reg[i] = 1;
    }

    // Linear scan over the schedule.
    std::vector<int> assigned(n, -1);    // register id per value
    std::vector<uint8_t> spilled(n, 0);  // spilled to HBM
    size_t spill_count = 0;

    auto linearScan = [&](size_t alloc_regs) {
        assigned.assign(n, -1);
        spilled.assign(n, 0);
        spill_count = 0;
        std::vector<int> free_regs;
        for (size_t r = 0; r < alloc_regs; ++r)
            free_regs.push_back(static_cast<int>(r));
        // Active intervals ordered by end position.
        std::set<std::pair<int, int>> active; // (end, value)

        for (int idx : order) {
            const size_t i = static_cast<size_t>(idx);
            if (!needs_reg[i])
                continue;
            const int start = pos[i];
            const int end = last_use[i];
            // Expire finished intervals.
            while (!active.empty() && active.begin()->first < start) {
                free_regs.push_back(assigned[active.begin()->second]);
                active.erase(active.begin());
            }
            if (!free_regs.empty()) {
                assigned[i] = free_regs.back();
                free_regs.pop_back();
                active.emplace(end, static_cast<int>(i));
            } else {
                // Spill the interval that ends furthest away.
                auto furthest = std::prev(active.end());
                if (furthest->first > end) {
                    int victim = furthest->second;
                    assigned[i] = assigned[victim];
                    spilled[victim] = 1;
                    assigned[victim] = -1;
                    active.erase(furthest);
                    active.emplace(end, static_cast<int>(i));
                } else {
                    spilled[i] = 1;
                }
                ++spill_count;
            }
        }
    };
    // First pass with the whole pool minus one scratch register (the
    // minimum: non-reload fallbacks below also target scratch).
    linearScan(num_regs - 1);

    // Size the scratch pool from measured reload pressure. Reloads
    // round-robin through the pool, so reuse of a scratch register
    // within the OoO scoreboard's reach creates WAW anti-dependences
    // between reloads; spacing them over `pressure` registers (the
    // most reloads observed in any issue-window span of the schedule)
    // removes that serialization. The pool is capped at the historic 4:
    // a cycle sweep across SRAM sizes showed anti-dependences only gate
    // issue in this machine model (they are nearly free), while every
    // register taken from the allocator adds spills — spill count, not
    // WAW spacing, dominates simulated cycles. So low pressure shrinks
    // the pool and returns registers to the allocator; high pressure
    // never grows it past 4.
    size_t num_scratch = 1;
    if (spill_count > 0) {
        // The span over which reloads can be in flight concurrently is
        // the target's OoO scoreboard depth.
        const size_t pressure_window =
            std::max<size_t>(opts.issueWindow, 1);
        std::vector<uint32_t> reloads;
        reloads.reserve(order.size());
        for (int idx : order) {
            const IrInst &inst = prog.insts[static_cast<size_t>(idx)];
            uint32_t cnt = 0;
            if (inst.op == IrOp::Store) {
                if (!streaming.streamedStore[static_cast<size_t>(idx)] &&
                    inst.a >= 0 && spilled[inst.a])
                    ++cnt;
            } else {
                if (inst.a >= 0 && spilled[inst.a])
                    ++cnt;
                if (!inst.useImm && inst.b >= 0 && spilled[inst.b])
                    ++cnt;
                if (inst.op == IrOp::Mac && inst.c >= 0 &&
                    spilled[inst.c])
                    ++cnt;
            }
            reloads.push_back(cnt);
        }
        size_t in_window = 0, pressure = 0;
        for (size_t k = 0; k < reloads.size(); ++k) {
            in_window += reloads[k];
            if (k >= pressure_window)
                in_window -= reloads[k - pressure_window];
            pressure = std::max(pressure, in_window);
        }
        stats.add("regalloc.reloadPressure", double(pressure));
        num_scratch = std::min(std::max<size_t>(pressure, 1), max_scratch);
        if (num_scratch > 1) {
            // Re-allocate with the final pool (one resize pass; the
            // re-run's pressure is close enough not to iterate).
            linearScan(num_regs - num_scratch);
        }
    }
    const size_t alloc_regs = num_regs - num_scratch;

    // HBM address map: program objects first, then the spill area.
    std::vector<u64> obj_base(prog.objects.size(), 0);
    u64 next_addr = 0;
    for (size_t o = 0; o < prog.objects.size(); ++o) {
        obj_base[o] = next_addr;
        next_addr += static_cast<u64>(prog.objects[o].residues) *
                     residue_bytes;
    }
    // Values defined by read-only loads are rematerialized (reloaded
    // from their home address) rather than spilled: no spill store, and
    // the reload models the paper's key/constant streaming from HBM.
    std::vector<uint8_t> remat(n, 0);
    for (size_t i = 0; i < n; ++i) {
        const IrInst &inst = prog.insts[i];
        if (spilled[i] && inst.op == IrOp::Load && inst.mem.object >= 0 &&
            prog.objects[inst.mem.object].readOnly)
            remat[i] = 1;
    }
    std::vector<u64> spill_addr(n, 0);
    for (size_t i = 0; i < n; ++i) {
        if (spilled[i] && !remat[i]) {
            spill_addr[i] = next_addr;
            next_addr += residue_bytes;
        } else if (remat[i]) {
            const IrInst &inst = prog.insts[i];
            spill_addr[i] = obj_base[inst.mem.object] +
                            static_cast<u64>(inst.mem.index) *
                                residue_bytes;
        }
    }

    // --- Emission --------------------------------------------------------
    MachineProgram mp;
    mp.residueBytes = residue_bytes;
    mp.numRegs = num_regs;
    mp.scratchRegs = num_scratch;

    // Values live in scratch after a reload (round robin).
    int next_scratch = 0;
    auto scratchReg = [&]() {
        int r = static_cast<int>(alloc_regs) + next_scratch;
        next_scratch = (next_scratch + 1) % static_cast<int>(num_scratch);
        return r;
    };

    auto operandFor = [&](int value, std::vector<MachInst> &out) {
        const IrInst &def = prog.insts[value];
        if (def.op == IrOp::Load && streaming.streamedLoad[value]) {
            // Streaming operand fed straight from DRAM (Sec. IV-C).
            Operand o = Operand::stream(0, /*from_dram=*/true);
            o.value = obj_base[def.mem.object] +
                      static_cast<u64>(def.mem.index) * residue_bytes;
            return o;
        }
        if (streaming.fifoForward[value])
            return Operand::stream(static_cast<u64>(value));
        if (assigned[value] >= 0)
            return Operand::regOp(assigned[value]);
        if (spilled[value]) {
            // Reload from the spill slot into a scratch register.
            int r = scratchReg();
            MachInst load;
            load.op = Opcode::LOAD_RES;
            load.dest = Operand::regOp(r);
            load.hbmAddr = spill_addr[value];
            load.irId = value;
            out.push_back(load);
            ++mp.spillLoads;
            return Operand::regOp(r);
        }
        // Value streams to a store or is scratch-resident.
        return Operand::regOp(scratchReg());
    };

    for (int idx : order) {
        const size_t i = static_cast<size_t>(idx);
        const IrInst &inst = prog.insts[i];

        if (inst.op == IrOp::Load) {
            if (streaming.streamedLoad[i])
                continue; // merged into its consumer
            if (remat[i])
                continue; // reloaded at each use instead
            MachInst mi;
            mi.op = Opcode::LOAD_RES;
            // A load whose value is never used (possible when DCE is
            // off) has no allocated register; land it in scratch like
            // any other unconsumed result — emitting register id -1
            // would corrupt dependence tracking downstream.
            mi.dest = assigned[i] >= 0 ? Operand::regOp(assigned[i])
                                       : Operand::regOp(scratchReg());
            mi.hbmAddr = obj_base[inst.mem.object] +
                         static_cast<u64>(inst.mem.index) * residue_bytes;
            mi.modulus = inst.modulus;
            mi.irId = idx;
            mp.insts.push_back(mi);
            continue;
        }

        if (inst.op == IrOp::Store) {
            MachInst mi;
            mi.op = Opcode::STORE_RES;
            mi.src0 = streaming.streamedStore[i]
                          ? Operand::stream(static_cast<u64>(inst.a))
                          : operandFor(inst.a, mp.insts);
            mi.hbmAddr = obj_base[inst.mem.object] +
                         static_cast<u64>(inst.mem.index) * residue_bytes;
            mi.modulus = inst.modulus;
            mi.irId = idx;
            mp.insts.push_back(mi);
            continue;
        }

        MachInst mi;
        mi.op = toOpcode(inst.op);
        mi.modulus = inst.modulus;
        mi.imm = inst.imm;
        mi.irId = idx;
        if (inst.a >= 0)
            mi.src0 = operandFor(inst.a, mp.insts);
        if (inst.useImm)
            mi.src1 = Operand::imm(inst.imm);
        else if (inst.b >= 0)
            mi.src1 = operandFor(inst.b, mp.insts);

        if (inst.op == IrOp::Mac && inst.c >= 0)
            mi.src2 = operandFor(inst.c, mp.insts);

        if (value_streams_to_store[i]) {
            mi.dest = Operand::stream(static_cast<u64>(i));
        } else if (streaming.fifoForward[i]) {
            mi.dest = Operand::stream(static_cast<u64>(i));
        } else if (assigned[i] >= 0) {
            mi.dest = Operand::regOp(assigned[i]);
        } else {
            mi.dest = Operand::regOp(scratchReg());
        }
        mp.insts.push_back(mi);

        if (spilled[i] && !remat[i]) {
            MachInst spill;
            spill.op = Opcode::STORE_RES;
            spill.src0 = mi.dest;
            spill.hbmAddr = spill_addr[i];
            spill.irId = idx;
            mp.insts.push_back(spill);
            ++mp.spillStores;
        }
    }

    for (uint8_t s : streaming.streamedLoad)
        mp.streamedOps += s;
    for (uint8_t s : streaming.streamedStore)
        mp.streamedOps += s;

    stats.add("regalloc.registers", double(num_regs));
    stats.add("regalloc.scratchRegs", double(num_scratch));
    stats.add("regalloc.spilledValues", double(spill_count));
    stats.add("regalloc.spillLoads", double(mp.spillLoads));
    stats.add("regalloc.spillStores", double(mp.spillStores));
    return mp;
}

} // namespace effact
