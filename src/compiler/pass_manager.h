/**
 * @file
 * Pass-manager layer of the compiler backend (Sec. IV-B): a `Pass`
 * interface over the SSA optimizations, an `AnalysisManager` that
 * caches derived analyses (alias-dependence edges, the IR-level
 * `sched::DepGraph`) keyed on `IrProgram::version()`, and a
 * `PassManager` that runs a declarative pipeline to a bounded fixed
 * point instead of one hardcoded sweep.
 *
 * Pipelines are named by spec strings (`"copyprop,constprop,pre,
 * peephole"`), so the Fig. 11 ablation presets, `CompilerOptions`
 * switches, and benches all describe the same thing in one vocabulary.
 */
#ifndef EFFACT_COMPILER_PASS_MANAGER_H
#define EFFACT_COMPILER_PASS_MANAGER_H

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "compiler/pass.h"
#include "ir/ir.h"
#include "sched/depgraph.h"

namespace effact {

/**
 * Caches analyses derived from an `IrProgram`, keyed on the program's
 * mutation counter: a request at an unchanged `version()` returns the
 * cached result, a request after any mutation rebuilds. Build and hit
 * counts are recorded in the caller's stats (`analysis.aliasBuilds`,
 * `analysis.depgraphBuilds`, `analysis.cacheHits`), which is how tests
 * pin "the DepGraph is built at most once per compile".
 */
class AnalysisManager
{
  public:
    /** Alias-dependence (memory ordering) edges from `runAliasAnalysis`. */
    const std::vector<std::pair<int, int>> &
    aliasEdges(const IrProgram &prog, StatSet &stats);

    /** IR-level dependence graph: SSA true edges + the alias edges.
     *  Under a parallel executor the alias scan and the sharded SSA
     *  edge collection run side by side (they are independent per
     *  (uid, version)); the merge reproduces `DepGraph::fromIr`'s
     *  serial edge order exactly. The alias result is published to this
     *  manager's cache either way — single-flight per key: a later
     *  `aliasEdges()` at the same version is a hit, never a rebuild. */
    const DepGraph &depGraph(const IrProgram &prog, StatSet &stats);

    /** Drops every cached analysis (version keying normally suffices). */
    void invalidateAll();

    /**
     * Installs the within-job executor used by passes and analysis
     * builds that this manager drives. Default is the serial executor
     * (legacy single-threaded algorithms). The manager itself must
     * still be driven by one thread at a time; the executor only fans
     * work *it* initiates into the pool.
     */
    void setExec(const ParallelExec &exec) { exec_ = exec; }
    const ParallelExec &exec() const { return exec_; }

  private:
    ParallelExec exec_;
    static constexpr uint64_t kNoVersion = ~uint64_t(0);

    // Keys are (IrProgram::uid, version): version counters of two
    // independently built programs can collide and addresses can be
    // reused by successive stack-locals, so the process-unique program
    // id matters when one manager serves a re-compilation sweep.
    uint64_t aliasUid_ = kNoVersion;
    uint64_t aliasVersion_ = kNoVersion;
    std::vector<std::pair<int, int>> aliasEdges_;
    uint64_t graphUid_ = kNoVersion;
    uint64_t graphVersion_ = kNoVersion;
    DepGraph graph_;
};

/** One unit of IR transformation runnable by the `PassManager`. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Stable identifier; also the token used in pipeline specs. */
    virtual const char *name() const = 0;

    /**
     * Transforms `prog`; returns true iff the IR changed. An
     * implementation that mutates the program in place must bump
     * `prog.version()` exactly when it reports a change, so cached
     * analyses stay sound without being dropped needlessly.
     *
     * Contract: one `run` call reaches the pass's own fixed point —
     * re-running immediately, with no intervening IR change, finds
     * nothing (all four stock passes iterate forward through resolved
     * operands, so a single call is transitive). The manager relies on
     * this to skip a pass whose input version is unchanged since its
     * last run.
     */
    virtual bool run(IrProgram &prog, AnalysisManager &analyses,
                     StatSet &stats) = 0;
};

/**
 * Runs an ordered pipeline of passes to a bounded fixed point: the
 * sequence repeats until one full sweep reports no change (converged)
 * or `maxIterations()` sweeps have run. Per-pass wall-clock and
 * instruction-delta statistics are recorded under namespaced keys
 * (`pass.<name>.ms`, `pass.<name>.removed`, `pass.<name>.changed`),
 * plus `pipeline.iterations` / `pipeline.converged` for the loop.
 */
class PassManager
{
  public:
    PassManager() = default;

    /**
     * Builds a pipeline from a spec string: comma-separated pass names,
     * whitespace around names ignored, empty spec = empty pipeline.
     * Unknown names are a user error (`fatal`); use `parsePipelineSpec`
     * first when the spec comes from untrusted input.
     */
    static PassManager fromSpec(const std::string &spec);

    void add(std::unique_ptr<Pass> pass);

    size_t passCount() const { return passes_.size(); }

    /** Round-trips the pipeline back to its spec string. */
    std::string spec() const;

    /** Fixed-point sweep bound (default 64, matching
     *  `CompilerOptions::pipelineMaxIterations`). */
    void setMaxIterations(size_t n) { maxIterations_ = n; }
    size_t maxIterations() const { return maxIterations_; }

    /**
     * When > 0, the IR verifier runs after every pass that reported a
     * change and the manager panics (naming the pass and the violated
     * invariant) on the first malformed program. Checkpoint cost is
     * recorded under `verify.checks` / `verify.ms`.
     */
    void setVerifyLevel(int level) { verifyLevel_ = level; }
    int verifyLevel() const { return verifyLevel_; }

    /**
     * Runs the pipeline on `prog` to a fixed point; returns the number
     * of sweeps executed. `converged()` reports whether the last sweep
     * was change-free (always true for an empty pipeline).
     */
    size_t run(IrProgram &prog, AnalysisManager &analyses, StatSet &stats);

    bool converged() const { return converged_; }

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
    size_t maxIterations_ = 64;
    int verifyLevel_ = 0;
    bool converged_ = true;
};

/**
 * Creates an optimization pass by registry name (`"copyprop"`,
 * `"constprop"`, `"pre"`, `"peephole"`); nullptr if unknown.
 */
std::unique_ptr<Pass> createPass(const std::string &name);

/** Registry names in canonical pipeline order. */
const std::vector<std::string> &knownPassNames();

/**
 * Parses a pipeline spec into pass names. Returns false on an unknown
 * or empty element and, when `error` is non-null, stores a message
 * naming the offending token; `names` then holds the tokens parsed so
 * far. A valid empty spec yields an empty name list.
 */
bool parsePipelineSpec(const std::string &spec,
                       std::vector<std::string> *names,
                       std::string *error = nullptr);

/**
 * The declarative pipeline equivalent of a set of `CompilerOptions`
 * optimization switches (e.g. all-true -> the full
 * `"copyprop,constprop,pre,peephole"` pipeline).
 */
std::string pipelineSpecFromOptions(const CompilerOptions &opts);

} // namespace effact

#endif // EFFACT_COMPILER_PASS_MANAGER_H
