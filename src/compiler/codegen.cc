#include "compiler/pass.h"

namespace effact {

// Machine-code emission lives in runRegAllocAndCodegen (regalloc.cc) —
// register assignment and emission are one walk over the schedule. This
// translation unit hosts the small shared helpers.

namespace codegen_detail {

/** Bytes moved over HBM by one machine instruction. */
size_t
hbmBytes(const MachInst &inst, size_t residue_bytes)
{
    size_t bytes = 0;
    if (inst.op == Opcode::LOAD_RES || inst.op == Opcode::STORE_RES)
        bytes += residue_bytes;
    // Streaming fills from DRAM; FU-to-FU FIFO operands move nothing.
    bytes += static_cast<size_t>(inst.dramStreamSources()) * residue_bytes;
    return bytes;
}

} // namespace codegen_detail

} // namespace effact
