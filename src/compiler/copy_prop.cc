#include "compiler/pass.h"

namespace effact {

size_t
runCopyProp(IrProgram &prog, StatSet &stats)
{
    // Union-find style forwarding: a Copy's value is its source's value.
    std::vector<int> fwd(prog.insts.size());
    for (size_t i = 0; i < fwd.size(); ++i)
        fwd[i] = static_cast<int>(i);

    auto resolve = [&](int v) {
        while (v >= 0 && fwd[v] != v)
            v = fwd[v];
        return v;
    };

    size_t removed = 0;
    for (size_t i = 0; i < prog.insts.size(); ++i) {
        IrInst &inst = prog.insts[i];
        if (inst.dead)
            continue;
        for (int *slot : inst.operandSlots())
            if (*slot >= 0)
                *slot = resolve(*slot);
        if (inst.op == IrOp::Copy) {
            fwd[i] = inst.a;
            inst.dead = true;
            ++removed;
        }
    }
    stats.add("copyProp.removed", double(removed));
    return removed;
}

} // namespace effact
