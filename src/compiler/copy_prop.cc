#include "compiler/pass.h"

namespace effact {

namespace {

/** Legacy single-threaded scan — the serial oracle path. */
size_t
runCopyPropSerial(IrProgram &prog)
{
    // Union-find style forwarding: a Copy's value is its source's value.
    std::vector<int> fwd(prog.insts.size());
    for (size_t i = 0; i < fwd.size(); ++i)
        fwd[i] = static_cast<int>(i);

    auto resolve = [&](int v) {
        while (v >= 0 && fwd[v] != v)
            v = fwd[v];
        return v;
    };

    size_t removed = 0;
    for (size_t i = 0; i < prog.insts.size(); ++i) {
        IrInst &inst = prog.insts[i];
        if (inst.dead)
            continue;
        for (int *slot : inst.operandSlots())
            if (*slot >= 0)
                *slot = resolve(*slot);
        if (inst.op == IrOp::Copy) {
            fwd[i] = inst.a;
            inst.dead = true;
            ++removed;
        }
    }
    return removed;
}

/**
 * Region-sharded equivalent. The serial scan's final state is fully
 * characterized: every live-at-entry instruction's operands point at
 * the transitive non-Copy root of their copy chain, and every
 * live-at-entry Copy is dead. Both are order-free properties, so the
 * parallel algorithm computes the same fixpoint directly:
 *
 *   1. seed `parent[i] = a` for live Copies (else `i`), sharded;
 *   2. pointer-jump (`parent[i] <- parent[parent[i]]`) to convergence
 *      with double buffering — each round is a pure function of the
 *      previous array, so the result is thread-count independent;
 *   3. rewrite every live instruction's slots to `parent[slot]` and
 *      kill the Copies, sharded (each shard writes only its own
 *      instructions' fields).
 *
 * `removed` sums the per-shard Copy kills in ascending shard order.
 */
size_t
runCopyPropParallel(IrProgram &prog, const ParallelExec &exec)
{
    const size_t n = prog.insts.size();
    std::vector<int> parent(n), next(n);
    exec.forChunks(n, kDefaultChunkGrain,
                   [&](size_t, size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) {
                           const IrInst &inst = prog.insts[i];
                           parent[i] = !inst.dead && inst.op == IrOp::Copy
                                           ? inst.a
                                           : static_cast<int>(i);
                       }
                   });

    // Pointer jumping halves every chain's length per round, so this
    // loop runs O(log chain) times. `changed` flags are shard-private
    // and OR-reduced after the join.
    const size_t chunk_count = splitChunks(n, kDefaultChunkGrain).size();
    std::vector<uint8_t> chunk_changed(chunk_count, 0);
    for (;;) {
        std::fill(chunk_changed.begin(), chunk_changed.end(), 0);
        exec.forChunks(n, kDefaultChunkGrain,
                       [&](size_t c, size_t begin, size_t end) {
                           uint8_t changed = 0;
                           for (size_t i = begin; i < end; ++i) {
                               const int p = parent[i];
                               const int pp =
                                   p >= 0 && parent[p] != p ? parent[p] : p;
                               next[i] = pp;
                               changed |= pp != p;
                           }
                           chunk_changed[c] = changed;
                       });
        parent.swap(next);
        bool any = false;
        for (uint8_t f : chunk_changed)
            any = any || f != 0;
        if (!any)
            break;
    }

    std::vector<size_t> chunk_removed(chunk_count, 0);
    exec.forChunks(n, kDefaultChunkGrain,
                   [&](size_t c, size_t begin, size_t end) {
                       size_t removed = 0;
                       for (size_t i = begin; i < end; ++i) {
                           IrInst &inst = prog.insts[i];
                           if (inst.dead)
                               continue;
                           for (int *slot : inst.operandSlots())
                               if (*slot >= 0)
                                   *slot = parent[*slot];
                           if (inst.op == IrOp::Copy) {
                               inst.dead = true;
                               ++removed;
                           }
                       }
                       chunk_removed[c] = removed;
                   });
    size_t removed = 0;
    for (size_t r : chunk_removed)
        removed += r;
    return removed;
}

} // namespace

size_t
runCopyProp(IrProgram &prog, StatSet &stats, const ParallelExec &exec)
{
    const size_t removed = exec.parallel() ? runCopyPropParallel(prog, exec)
                                           : runCopyPropSerial(prog);
    stats.add("copyProp.removed", double(removed));
    return removed;
}

} // namespace effact
