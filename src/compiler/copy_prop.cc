#include "compiler/pass.h"

namespace effact {

void
runCopyProp(IrProgram &prog, StatSet &stats)
{
    // Union-find style forwarding: a Copy's value is its source's value.
    std::vector<int> fwd(prog.insts.size());
    for (size_t i = 0; i < fwd.size(); ++i)
        fwd[i] = static_cast<int>(i);

    auto resolve = [&](int v) {
        while (v >= 0 && fwd[v] != v)
            v = fwd[v];
        return v;
    };

    size_t removed = 0;
    for (size_t i = 0; i < prog.insts.size(); ++i) {
        IrInst &inst = prog.insts[i];
        if (inst.dead)
            continue;
        if (inst.a >= 0)
            inst.a = resolve(inst.a);
        if (inst.b >= 0)
            inst.b = resolve(inst.b);
        if (inst.op == IrOp::Copy) {
            fwd[i] = inst.a;
            inst.dead = true;
            ++removed;
        }
    }
    stats.add("copyProp.removed", double(removed));
}

} // namespace effact
