/**
 * @file
 * Content-addressed cache for the hardware-independent half of a
 * compile (the middle end: the fixed-point optimization pipeline over
 * IR). A re-compilation sweep that varies only the hardware config —
 * e.g. the Fig. 11 preset x SRAM grid — optimizes each (workload,
 * preset) pair once; every other cell skips straight to the back end
 * (scheduling, streaming, regalloc, codegen) on a clone of the cached
 * optimized-IR snapshot.
 *
 * Keying. The key is `(fingerprint(IrProgram), preset hash)`:
 *
 * - the content half is the order-sensitive structural fingerprint from
 *   `src/ir` — independently built copies of the same workload hash
 *   equal, and any real mutation (which also bumps `version()`) changes
 *   it;
 * - the preset half covers every `CompilerOptions` field *except* the
 *   hardware-derived knobs `sramBytes` and `issueWindow`, the two
 *   fields `Platform` overwrites from its `HardwareConfig`. That split
 *   is the whole point: jobs that differ only in hardware share an
 *   entry. Presets that happen to share a pipeline spec but differ in
 *   back-end switches (e.g. MAD-enhanced vs streaming, both
 *   `"copyprop,constprop,pre"`) keep separate entries on purpose — it
 *   costs one extra pipeline run per such pair, keeps hit accounting
 *   per-(workload, preset) — the unit sweep grids are defined over —
 *   and stays trivially sound if a future pass consults those switches.
 *
 * Concurrency. The store is sharded and mutex-protected, and lookups
 * are single-flight: the first requester of a key runs the build while
 * later requesters of the same key block until the snapshot is
 * published, then clone it. Entries are immutable after publication, so
 * any thread count and any hit pattern produce byte-identical compiles
 * — the build count per key is exactly one, which is what makes
 * `cache.*` statistics deterministic. Per-worker `AnalysisManager`s are
 * untouched by all of this and stay lock-free.
 */
#ifndef EFFACT_COMPILER_COMPILE_CACHE_H
#define EFFACT_COMPILER_COMPILE_CACHE_H

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/stats.h"
#include "compiler/pass.h"
#include "ir/ir.h"

namespace effact {

/** Cache key: structural program content x compiler preset. */
struct CompileCacheKey
{
    uint64_t irFingerprint = 0; ///< `fingerprint(IrProgram)`
    uint64_t presetHash = 0;    ///< `middleEndPresetHash(CompilerOptions)`

    bool operator==(const CompileCacheKey &o) const
    {
        return irFingerprint == o.irFingerprint &&
               presetHash == o.presetHash;
    }
};

/**
 * FNV-1a hash of the middle-end-relevant compiler preset: the executed
 * pipeline spec (the explicit `pipeline` string, or the one derived
 * from the four optimization switches), the fixed-point sweep bound,
 * and the remaining non-hardware options (`schedule`, `streaming`,
 * `fifoDepth`). `sramBytes` and `issueWindow` are excluded — `Platform`
 * rewrites them from `HardwareConfig`, and splitting on them is exactly
 * what the cache exists to avoid.
 */
uint64_t middleEndPresetHash(const CompilerOptions &opts);

/** The full cache key for compiling `prog` under `opts`. */
CompileCacheKey middleEndCacheKey(const IrProgram &prog,
                                  const CompilerOptions &opts);

/**
 * Immutable result of one middle-end run: the optimized (pipelined +
 * compacted) program and the statistics the run recorded. A cache hit
 * clones `optimized` (the copy gets a fresh `uid()`, so per-worker
 * analysis caches can never confuse it with another program) and
 * replays `stats`, so a hit's compiler statistics are byte-identical to
 * the miss that built the entry, wall-clock keys included.
 */
struct MiddleEndSnapshot
{
    IrProgram optimized;
    StatSet stats;
};

/**
 * The sharded, single-flight snapshot store. Opt-in and shared: one
 * instance serves a whole sweep (`SweepOptions::compileCache`), or any
 * set of concurrent `Compiler::compile` calls. Entries are never
 * evicted — the store lives as long as the sweep that owns it, and one
 * snapshot per (workload, preset) is small next to the jobs themselves.
 *
 * Statistics (all monotone, reset only by `clear()`):
 * - `cache.lookups`  — compiles that consulted the cache;
 * - `cache.hits`     — lookups served from an existing entry (including
 *                      ones that waited on an in-flight build);
 * - `cache.misses`   — lookups that ran the middle end (= entries
 *                      built; single-flight makes this exactly the
 *                      distinct-key count, at any thread count);
 * - `cache.frontend_skipped` — compiles that skipped the optimization
 *                      pipeline entirely. Equal to `cache.hits` under
 *                      `Compiler::compile`'s wiring, where every hit
 *                      reuses the snapshot; tracked separately so a
 *                      future lookup-only consumer can't skew it;
 * - `cache.entries`  — entries currently stored.
 */
class CompileCache
{
  public:
    CompileCache() = default;
    CompileCache(const CompileCache &) = delete;
    CompileCache &operator=(const CompileCache &) = delete;

    /**
     * Returns the snapshot for `key`, building it if absent. The first
     * caller for a key runs `build` (outside any shard lock, so other
     * keys proceed concurrently); concurrent callers for the same key
     * block until the snapshot is published. `hit` (optional) reports
     * whether the snapshot came from the cache (true) or from this
     * call's own `build` (false). `build` must not re-enter the cache.
     */
    std::shared_ptr<const MiddleEndSnapshot>
    getOrBuild(const CompileCacheKey &key,
               const std::function<MiddleEndSnapshot()> &build,
               bool *hit = nullptr);

    /** Point-in-time `cache.*` statistics (see class comment). */
    StatSet statsSnapshot() const;

    /** Entries currently stored (published or in flight). */
    size_t entryCount() const;

    /** Drops every entry and resets the counters. Not meant to race
     *  with in-flight compiles (a sweep clears between batches). */
    void clear();

  private:
    struct Slot
    {
        std::mutex mu;
        std::condition_variable readyCv;
        bool ready = false;
        MiddleEndSnapshot snap;
    };

    struct KeyHash
    {
        size_t operator()(const CompileCacheKey &k) const
        {
            // The fingerprints are already well-mixed FNV hashes; one
            // multiply keeps the two halves from cancelling.
            return static_cast<size_t>(k.irFingerprint * 1099511628211ULL ^
                                       k.presetHash);
        }
    };

    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_map<CompileCacheKey, std::shared_ptr<Slot>, KeyHash>
            entries;
    };

    Shard &shardFor(const CompileCacheKey &key)
    {
        return shards_[KeyHash{}(key) % kShards];
    }

    static constexpr size_t kShards = 16;
    std::array<Shard, kShards> shards_;
    std::atomic<uint64_t> lookups_{0};
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> frontendSkipped_{0};
};

} // namespace effact

#endif // EFFACT_COMPILER_COMPILE_CACHE_H
