/**
 * @file
 * Content-addressed cache for the hardware-independent half of a
 * compile (the middle end: the fixed-point optimization pipeline over
 * IR). A re-compilation sweep that varies only the hardware config —
 * e.g. the Fig. 11 preset x SRAM grid — optimizes each (workload,
 * preset) pair once; every other cell skips straight to the back end
 * (scheduling, streaming, regalloc, codegen) on a clone of the cached
 * optimized-IR snapshot.
 *
 * Keying. The key is `(fingerprint(IrProgram), preset hash)`:
 *
 * - the content half is the order-sensitive structural fingerprint from
 *   `src/ir` — independently built copies of the same workload hash
 *   equal, and any real mutation (which also bumps `version()`) changes
 *   it;
 * - the preset half covers every `CompilerOptions` field *except* the
 *   hardware-derived knobs `sramBytes` and `issueWindow`, the two
 *   fields `Platform` overwrites from its `HardwareConfig`. That split
 *   is the whole point: jobs that differ only in hardware share an
 *   entry. Presets that happen to share a pipeline spec but differ in
 *   back-end switches (e.g. MAD-enhanced vs streaming, both
 *   `"copyprop,constprop,pre"`) keep separate entries on purpose — it
 *   costs one extra pipeline run per such pair, keeps hit accounting
 *   per-(workload, preset) — the unit sweep grids are defined over —
 *   and stays trivially sound if a future pass consults those switches.
 *
 * Concurrency. The store is sharded and mutex-protected, and lookups
 * are single-flight: the first requester of a key runs the build while
 * later requesters of the same key block until the snapshot is
 * published, then clone it. Entries are immutable after publication, so
 * any thread count and any hit pattern produce byte-identical compiles
 * — the build count per key is exactly one, which is what makes
 * `cache.*` statistics deterministic. Per-worker `AnalysisManager`s are
 * untouched by all of this and stay lock-free.
 */
#ifndef EFFACT_COMPILER_COMPILE_CACHE_H
#define EFFACT_COMPILER_COMPILE_CACHE_H

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/stats.h"
#include "compiler/pass.h"
#include "ir/ir.h"

namespace effact {

/** Cache key: structural program content x compiler preset. */
struct CompileCacheKey
{
    uint64_t irFingerprint = 0; ///< `fingerprint(IrProgram)`
    uint64_t presetHash = 0;    ///< `middleEndPresetHash(CompilerOptions)`

    bool operator==(const CompileCacheKey &o) const
    {
        return irFingerprint == o.irFingerprint &&
               presetHash == o.presetHash;
    }
};

/**
 * FNV-1a hash of the middle-end-relevant compiler preset: the executed
 * pipeline spec (the explicit `pipeline` string, or the one derived
 * from the four optimization switches), the fixed-point sweep bound,
 * and the remaining non-hardware options (`schedule`, `streaming`,
 * `fifoDepth`). `sramBytes` and `issueWindow` are excluded — `Platform`
 * rewrites them from `HardwareConfig`, and splitting on them is exactly
 * what the cache exists to avoid.
 */
uint64_t middleEndPresetHash(const CompilerOptions &opts);

/** The full cache key for compiling `prog` under `opts`. */
CompileCacheKey middleEndCacheKey(const IrProgram &prog,
                                  const CompilerOptions &opts);

/**
 * Immutable result of one middle-end run: the optimized (pipelined +
 * compacted) program and the statistics the run recorded. A cache hit
 * clones `optimized` (the copy gets a fresh `uid()`, so per-worker
 * analysis caches can never confuse it with another program) and
 * replays `stats`, so a hit's compiler statistics are byte-identical to
 * the miss that built the entry, wall-clock keys included.
 */
struct MiddleEndSnapshot
{
    IrProgram optimized;
    StatSet stats;
};

/**
 * Deterministic size estimate of one published snapshot, used for the
 * byte-budget accounting below: the instruction and object payloads of
 * the optimized program plus the recorded stat entries. A function of
 * the snapshot's *content* only (string sizes, not capacities; no
 * allocator or layout terms), so two byte-identical snapshots — e.g.
 * the same key rebuilt after an eviction — always account the same
 * bytes, at any thread count.
 */
size_t snapshotBytes(const MiddleEndSnapshot &snap);

/**
 * Byte-budget default for daemon-style owners: the `EFFACT_CACHE_BYTES`
 * environment variable when set to a positive integer (bytes),
 * otherwise 0 = unbounded. Batch sweeps keep the unbounded default —
 * one snapshot per (workload, preset) is small next to the jobs
 * themselves; the budget exists for long-lived services that see
 * thousands of distinct keys.
 */
size_t defaultCacheBytes();

/**
 * The sharded, single-flight snapshot store. Opt-in and shared: one
 * instance serves a whole sweep (`SweepOptions::compileCache`), or any
 * set of concurrent `Compiler::compile` calls.
 *
 * Bounding. With a zero byte budget (the default) entries are never
 * evicted — the store lives as long as the sweep that owns it. With a
 * positive budget, published entries are tracked on a global LRU list
 * with `snapshotBytes` accounting, and publishing a new entry evicts
 * least-recently-used entries until the total fits the budget (a
 * single entry larger than the whole budget is evicted immediately
 * after publication: the store never retains more than the budget).
 * Eviction only removes the key from the index — waiters and holders
 * keep the snapshot alive through their `shared_ptr`, and an in-flight
 * build is not on the LRU list at all until it publishes, so it can
 * never be evicted out from under the requesters blocked on it. A
 * re-requested evicted key simply rebuilds (counted as a fresh miss).
 *
 * Statistics (all monotone, reset only by `clear()`):
 * - `cache.lookups`  — compiles that consulted the cache;
 * - `cache.hits`     — lookups served from an existing entry (including
 *                      ones that waited on an in-flight build);
 * - `cache.misses`   — lookups that ran the middle end (= entries
 *                      built; single-flight makes this exactly the
 *                      distinct-key count when nothing is evicted, and
 *                      counts rebuilds of evicted keys otherwise);
 * - `cache.frontend_skipped` — compiles that skipped the optimization
 *                      pipeline entirely. Equal to `cache.hits` under
 *                      `Compiler::compile`'s wiring, where every hit
 *                      reuses the snapshot; tracked separately so a
 *                      future lookup-only consumer can't skew it;
 * - `cache.evictions` — entries dropped by the byte budget;
 * - `cache.entries`  — entries currently stored;
 * - `cache.bytes`    — accounted bytes of the published entries;
 * - `cache.budget_bytes` — the configured budget (0 = unbounded).
 */
class CompileCache
{
  public:
    /** `byteBudget` = 0 keeps the legacy never-evict behavior. */
    explicit CompileCache(size_t byteBudget = 0) : budget_(byteBudget) {}
    CompileCache(const CompileCache &) = delete;
    CompileCache &operator=(const CompileCache &) = delete;

    size_t byteBudget() const { return budget_; }

    /** Accounted bytes of the currently published entries. */
    size_t currentBytes() const;

    /** Entries dropped by the byte budget so far. */
    uint64_t evictionCount() const { return evictions_.load(); }

    /**
     * Returns the snapshot for `key`, building it if absent. The first
     * caller for a key runs `build` (outside any shard lock, so other
     * keys proceed concurrently); concurrent callers for the same key
     * block until the snapshot is published. `hit` (optional) reports
     * whether the snapshot came from the cache (true) or from this
     * call's own `build` (false). `build` must not re-enter the cache.
     */
    std::shared_ptr<const MiddleEndSnapshot>
    getOrBuild(const CompileCacheKey &key,
               const std::function<MiddleEndSnapshot()> &build,
               bool *hit = nullptr);

    /** Point-in-time `cache.*` statistics (see class comment). */
    StatSet statsSnapshot() const;

    /** Entries currently stored (published or in flight). */
    size_t entryCount() const;

    /** Drops every entry and resets the counters. Not meant to race
     *  with in-flight compiles (a sweep clears between batches). */
    void clear();

  private:
    struct Slot;

    /** LRU node: front of the list = most recently used. Holds its own
     *  reference to the slot so an evicted-but-still-waited-on snapshot
     *  stays alive until the last holder drops it. */
    struct LruNode
    {
        CompileCacheKey key;
        std::shared_ptr<Slot> slot;
    };

    struct Slot
    {
        std::mutex mu;
        std::condition_variable readyCv;
        bool ready = false;
        MiddleEndSnapshot snap;
        /** `snapshotBytes(snap)`, fixed at publication (entries are
         *  immutable afterwards). */
        size_t bytes = 0;
        // LRU bookkeeping, guarded by `lru_mu_` (not this->mu).
        std::list<LruNode>::iterator lruIt;
        bool inLru = false;
    };

    struct KeyHash
    {
        size_t operator()(const CompileCacheKey &k) const
        {
            // The fingerprints are already well-mixed FNV hashes; one
            // multiply keeps the two halves from cancelling.
            return static_cast<size_t>(k.irFingerprint * 1099511628211ULL ^
                                       k.presetHash);
        }
    };

    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_map<CompileCacheKey, std::shared_ptr<Slot>, KeyHash>
            entries;
    };

    Shard &shardFor(const CompileCacheKey &key)
    {
        return shards_[KeyHash{}(key) % kShards];
    }

    /** Publishes `slot` on the LRU list and evicts until the budget
     *  holds. Called with no locks held. */
    void accountAndEvict(const CompileCacheKey &key,
                         const std::shared_ptr<Slot> &slot);

    /** Moves a hit entry to the MRU position. No locks held on entry. */
    void touch(const std::shared_ptr<Slot> &slot);

    static constexpr size_t kShards = 16;
    std::array<Shard, kShards> shards_;
    std::atomic<uint64_t> lookups_{0};
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> frontendSkipped_{0};
    std::atomic<uint64_t> evictions_{0};

    const size_t budget_; ///< 0 = unbounded
    /**
     * Global recency list + byte total, guarded by `lru_mu_`. Lock
     * ordering: `lru_mu_` may be taken alone or *before* a shard mutex
     * (the eviction path erases index entries while holding it); no
     * path takes `lru_mu_` while holding a shard mutex or a slot mutex.
     */
    mutable std::mutex lru_mu_;
    std::list<LruNode> lru_;
    size_t bytes_ = 0;
};

} // namespace effact

#endif // EFFACT_COMPILER_COMPILE_CACHE_H
