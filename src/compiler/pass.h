/**
 * @file
 * Compiler backend driver (Sec. IV-B): SSA optimization passes, alias
 * analysis, global static scheduling, linear-scan SRAM allocation,
 * streaming-merge, and machine-code generation.
 */
#ifndef EFFACT_COMPILER_PASS_H
#define EFFACT_COMPILER_PASS_H

#include "common/stats.h"
#include "compiler/region.h"
#include "ir/ir.h"
#include "isa/isa.h"

namespace effact {

int defaultVerifyLevel(); // verify/verify.h (EFFACT_VERIFY)

/** Which optimizations run; switches drive the Fig. 11 ablation. */
struct CompilerOptions
{
    bool copyProp = true;
    bool constProp = true;
    bool pre = true;       ///< partial redundancy elimination (CSE/VN)
    bool peephole = true;  ///< computation merge (MAC fusion, Eq. 5 fold)
    /**
     * Declarative optimization pipeline, a comma-separated pass-name
     * spec (e.g. `"copyprop,constprop,pre,peephole"`). When empty the
     * pipeline is derived from the four switches above
     * (`pipelineSpecFromOptions`); when set it overrides them. The
     * pipeline runs to a bounded fixed point (see `PassManager`).
     */
    std::string pipeline;
    /**
     * Fixed-point sweep bound for the optimization pipeline; compile
     * panics if it has not converged within this many sweeps. A guard
     * against non-monotone pass bugs, set generously: rewrite chains
     * (e.g. stacked single-use scale multiplies folding one link per
     * sweep) legitimately take many sweeps, and quiescent sweeps cost
     * almost nothing under the version-skip.
     */
    size_t pipelineMaxIterations = 64;
    bool schedule = true;  ///< global list scheduling (off = program order)
    bool streaming = true; ///< streaming memory access (Sec. IV-C)
    /**
     * Back-end scheduler priority function, applied when `schedule` is
     * on: `"critical"` is the legacy static-weight critical path
     * (NTT 16 / mem 8 / MAC 1.5 / else 1), `"latency"` derives each
     * instruction's weight from the simulator's own occupancy model
     * (lane-normalized NTT butterfly count, HBM bytes/cycle, startup
     * overhead — see `ResourceModel`), so the longest path is measured
     * in modeled cycles rather than abstract units. Part of the
     * middle-end preset hash? No — scheduling is back-end (hardware-
     * dependent), but the string *is* mixed into `middleEndPresetHash`
     * so sweeps that vary it never share middle-end snapshots with
     * mismatched stats expectations.
     */
    std::string scheduler = "critical";
    /**
     * Spill-victim policy for the SRAM register allocator: `"linear"`
     * is the legacy furthest-interval-end heuristic, `"priority"`
     * scores candidates against the spill-dominated cycle model —
     * evict the value minimizing (reloads still due) / (distance to
     * next use), i.e. the fewest reload instructions re-materialized
     * per cycle of breathing room bought. The legacy allocator is kept
     * as the differential oracle.
     */
    std::string regalloc = "linear";
    /** Vector lanes of the target (drives the latency scheduler's
     *  occupancy weights); `Platform` overwrites it from
     *  `HardwareConfig::lanes`. */
    size_t lanes = 1024;
    /** HBM bandwidth in bytes per clock at the target frequency;
     *  `Platform` overwrites it from
     *  `HardwareConfig::hbmBytesPerCycle()`. */
    double hbmBytesPerCycle = 2400.0;
    size_t sramBytes = size_t(27) << 20; ///< on-chip SRAM capacity
    size_t fifoDepth = 96; ///< FU-to-FU forwarding window (instructions)
    /** Target machine's OoO scoreboard depth (the span over which the
     *  regalloc measures spill-reload pressure); `Platform` overwrites
     *  it with `HardwareConfig::issueWindow`. */
    size_t issueWindow = 64;
    /**
     * Checkpoint verification level: 0 = off, > 0 = run the IR verifier
     * after every optimization pass and at the middle-end boundaries,
     * and the machine verifier at back-end exit, panicking on the first
     * malformed program (see verify/verify.h). Defaults to the
     * `EFFACT_VERIFY` environment variable so test binaries opt in
     * without code changes; Release benches leave it off. Verification
     * never changes the emitted code, so the level is deliberately NOT
     * part of `middleEndPresetHash` — verified and unverified compiles
     * share `CompileCache` entries.
     */
    int verifyLevel = defaultVerifyLevel();
};

// --- Individual passes ----------------------------------------------------
// Each records detailed statistics and returns its total number of
// rewrites, so the pass-manager layer can detect change (and keep
// cached analyses sound) without duplicating the passes' stat keys.
//
// Every pass takes an optional `ParallelExec`. The default (serial)
// executor selects the legacy single-threaded scan — the oracle path.
// A parallel executor selects a region-sharded algorithm that produces
// the *identical* final IR and the identical stat counts at any thread
// count (chunk boundaries depend only on the program size, and every
// cross-chunk merge is performed in deterministic ascending-chunk
// order), so machine code, fingerprints and `CompileCache` snapshots
// are byte-identical to the serial pipeline.

/** Copy propagation: removes VecCopy chains. */
size_t runCopyProp(IrProgram &prog, StatSet &stats,
                   const ParallelExec &exec = ParallelExec());

/** Constant propagation/folding on immediate operands. */
size_t runConstProp(IrProgram &prog, StatSet &stats,
                    const ParallelExec &exec = ParallelExec());

/** Value-numbering PRE: removes redundant computations and re-loads of
 *  read-only data (models on-chip key/constant reuse). */
size_t runPre(IrProgram &prog, StatSet &stats,
              const ParallelExec &exec = ParallelExec());

/** Peephole computation merge: MUL+ADD -> MAC (executed on reused NTT
 *  units, Sec. III-2) and iNTT 1/N post-scale folding into BConv
 *  constants (Eq. 5). */
size_t runPeephole(IrProgram &prog, StatSet &stats,
                   const ParallelExec &exec = ParallelExec());

/**
 * Rotation-chain algebraic rewrite (spec key `"rotalg"`): composes
 * chains of automorphisms into a single rotation from the chain root
 * (sigma_a . sigma_b = sigma_{a*b mod 2N}), folds identity rotations
 * (element = 1 mod 2N) into copies, canonicalizes Galois elements into
 * [1, 2N), and retires rotation instructions left without uses.
 * Composition both shortens serial sigma-chains (each hoisted rotation
 * depends only on the chain root, exposing parallelism on the scarce
 * AUTO unit) and canonicalizes equal net rotations onto one Galois
 * element so PRE can deduplicate them.
 */
size_t runRotAlg(IrProgram &prog, StatSet &stats,
                 const ParallelExec &exec = ParallelExec());

/**
 * Alias analysis (Sec. IV-B2): orders memory operations that may touch
 * the same HBM location. Returns extra dependence edges (from, to).
 */
std::vector<std::pair<int, int>> runAliasAnalysis(const IrProgram &prog,
                                                  StatSet &stats);

class AnalysisManager; // pass_manager.h

/**
 * Global list scheduling on the SSA + memory dependence graph using
 * critical-path priorities (longest path to a sink). Consumes the
 * cached `DepGraph` analysis (built on demand when `opts.schedule`).
 * `opts.scheduler` selects the per-instruction latency model behind
 * the priorities ("critical" = legacy static weights, "latency" =
 * `ResourceModel` occupancy weights from `opts.lanes` /
 * `opts.hbmBytesPerCycle`). Returns the instruction order.
 */
std::vector<int> runScheduler(const IrProgram &prog,
                              AnalysisManager &analyses,
                              const CompilerOptions &opts,
                              StatSet &stats);

/** Streaming decision per value (Sec. IV-B3). */
struct StreamingInfo
{
    std::vector<uint8_t> streamedLoad;   ///< load feeds its FU directly
    std::vector<uint8_t> streamedStore;  ///< result streams to DRAM
    std::vector<uint8_t> fifoForward;    ///< FU-to-FU FIFO, no register
};

StreamingInfo runStreaming(const IrProgram &prog,
                           const std::vector<int> &order, bool enabled,
                           size_t fifo_depth, StatSet &stats);

/**
 * Linear-scan register allocation over the scheduled order with the
 * SRAM partitioned into residue-polynomial registers (Sec. IV-B2),
 * followed by machine-code emission.
 */
MachineProgram runRegAllocAndCodegen(const IrProgram &prog,
                                     const std::vector<int> &order,
                                     const StreamingInfo &streaming,
                                     const CompilerOptions &opts,
                                     StatSet &stats,
                                     const ParallelExec &exec = ParallelExec());

class CompileCache; // compiler/compile_cache.h

/**
 * Full pipeline: optimize, schedule, allocate, emit — split at the
 * hardware boundary into an explicit **middle end** (the fixed-point
 * optimization pipeline over IR, depending only on the program and the
 * pipeline preset) and **back end** (scheduling, streaming, regalloc,
 * codegen — everything `HardwareConfig`-dependent). The split is what
 * lets a shared `CompileCache` reuse one middle-end run across every
 * hardware point of a re-compilation sweep.
 */
class Compiler
{
  public:
    explicit Compiler(CompilerOptions opts = {}) : opts_(opts) {}

    /** Compiles (mutates `prog` through the optimization passes). */
    MachineProgram compile(IrProgram &prog);

    /**
     * Same, against a caller-owned `AnalysisManager`. Analyses are
     * cached keyed on (program uid, version), so one manager can serve
     * a whole re-compilation sweep — a batch worker reuses its manager
     * across jobs without locking, and a re-compile of unchanged IR
     * hits the cache. The manager must not be shared across threads.
     */
    MachineProgram compile(IrProgram &prog, AnalysisManager &analyses);

    /**
     * Same, consulting a shared `CompileCache` (may be null = uncached).
     * On a hit the middle end is skipped: `prog` is replaced by a clone
     * of the cached optimized-IR snapshot and the cached middle-end
     * statistics are replayed, so the compile's results — machine code,
     * stats — are byte-identical to the miss that built the entry. The
     * cache is safe to share across threads; `analyses` still is not.
     */
    MachineProgram compile(IrProgram &prog, AnalysisManager &analyses,
                           CompileCache *cache);

    /**
     * Staged variant of `compile`, stage 1: the cache-aware middle end
     * alone (pipeline to fixed point, or snapshot adoption on a cache
     * hit). Resets the compiler's stats. Pairs with `compileBack`; the
     * pair is exactly `compile(prog, analyses, cache)` split at the
     * hardware boundary, so a stage-pipelined driver can run another
     * job's back end between the two.
     */
    void compileMiddle(IrProgram &prog, AnalysisManager &analyses,
                       CompileCache *cache);

    /** Staged variant of `compile`, stage 2: the back end over the
     *  program `compileMiddle` optimized. Appends to the stats
     *  `compileMiddle` started. */
    MachineProgram compileBack(const IrProgram &prog,
                               AnalysisManager &analyses);

    /**
     * Middle end: runs the declarative optimization pipeline to its
     * bounded fixed point (asserting convergence) and compacts the
     * program. Hardware-independent by construction — no
     * `HardwareConfig`-derived option is consulted. Records
     * `input.instructions`, `pass.*`, `pipeline.*` and `optimized.*`
     * into `stats`.
     */
    void runMiddleEnd(IrProgram &prog, AnalysisManager &analyses,
                      StatSet &stats) const;

    /**
     * Back end: global scheduling, streaming decisions, SRAM regalloc
     * and machine-code emission over the (already optimized) program.
     * This is the `HardwareConfig`-dependent half (`sramBytes`,
     * `issueWindow`, `fifoDepth`, the schedule/streaming switches).
     */
    MachineProgram runBackEnd(const IrProgram &prog,
                              AnalysisManager &analyses,
                              StatSet &stats) const;

    const StatSet &stats() const { return stats_; }
    const CompilerOptions &options() const { return opts_; }

  private:
    CompilerOptions opts_;
    StatSet stats_;
};

} // namespace effact

#endif // EFFACT_COMPILER_PASS_H
