#include "ir/workloads.h"

#include <cmath>

#include "common/bitops.h"
#include "common/logging.h"

namespace effact {

IrCt
emitModRaise(KernelBuilder &kb, const std::string &name)
{
    // A level-1 ciphertext is loaded, iNTT'd, and its coefficient image
    // broadcast-NTT'd onto every limb of the full chain.
    IrBuilder &b = kb.builder();
    const size_t levels = kb.params().levels;
    IrCt in = kb.inputCiphertext(name, 1);
    IrCt out;
    out.level = levels;
    for (const PolyVal *poly : {&in.c0, &in.c1}) {
        PolyVal coeff = b.intt(*poly);
        PolyVal raised;
        for (size_t j = 0; j < levels; ++j)
            raised.limbs.push_back(
                b.emit1(IrOp::Ntt, coeff.limbs[0], -1,
                        static_cast<uint32_t>(j)));
        (poly == &in.c0 ? out.c0 : out.c1) = raised;
    }
    return out;
}

namespace {

/** Per-stage diagonal count for a radix-factored DFT over `slots`. */
size_t
stageDiags(size_t slots, size_t stages)
{
    // Factoring the slots-point transform into `stages` radix-r stages
    // gives roughly 2r-1 diagonals per stage with r = slots^(1/stages).
    double r = std::pow(double(slots), 1.0 / double(stages));
    size_t d = static_cast<size_t>(2.0 * r) | 1;
    return std::max<size_t>(d, 3);
}

/** BSGS baby count ~ sqrt(diags), rounded to a power of two. */
size_t
babyFor(size_t diags)
{
    size_t n1 = 1;
    while (n1 * n1 < diags)
        n1 <<= 1;
    return n1;
}

} // namespace

Workload
buildBootstrapping(const FheParams &fhe, const BootstrapBudget &budget)
{
    Workload w;
    w.fhe = fhe;
    // T_A.S. divisor: slots x (L - L_boot), L_boot = CtS+EvalMod+StC.
    w.amortizeFactor = double(budget.slots) *
                       double(fhe.levels - (budget.levelsCtS + 8 + budget.levelsStC));
    w.program.name = "bootstrapping";

    KernelBuilder kb(w.program, fhe);
    int evk = kb.switchingKeyObject("relin_key");
    int gk = kb.switchingKeyObject("galois_keys");
    int conj_key = kb.switchingKeyObject("conj_key");

    IrCt ct = emitModRaise(kb, "ct_in");

    // CtS: levelsCtS radix stages on the packed ciphertext, then the
    // conjugation pair producing the (lo, hi) halves.
    const size_t cts_diags = stageDiags(budget.slots, budget.levelsCtS);
    for (size_t s = 0; s < budget.levelsCtS; ++s) {
        int diag_obj = kb.plainObject(
            "cts_diag_" + std::to_string(s),
            static_cast<int>(cts_diags * ct.level));
        ct = kb.linearTransform(ct, cts_diags, babyFor(cts_diags),
                                diag_obj, gk);
    }
    IrCt conj = kb.rotate(ct, 2 * fhe.degree() - 1, conj_key);
    IrCt lo = kb.hadd(ct, conj);
    IrCt hi = kb.hadd(ct, conj); // structurally identical (subtract path)

    // EvalMod on both halves.
    IrCt lo2 = kb.polyEval(kb.rescale(kb.multImm(lo, 9)),
                           budget.sineDegree, budget.babySteps, evk);
    IrCt hi2 = kb.polyEval(kb.rescale(kb.multImm(hi, 9)),
                           budget.sineDegree, budget.babySteps, evk);

    // StC stages, then merge the halves.
    const size_t stc_diags = stageDiags(budget.slots, budget.levelsStC);
    IrCt merged = kb.hadd(lo2, hi2);
    for (size_t s = 0; s < budget.levelsStC; ++s) {
        int diag_obj = kb.plainObject(
            "stc_diag_" + std::to_string(s),
            static_cast<int>(stc_diags * merged.level));
        merged = kb.linearTransform(merged, stc_diags,
                                    babyFor(stc_diags), diag_obj, gk);
    }
    kb.output("ct_out", merged);
    return w;
}

Workload
buildHelr(const FheParams &fhe)
{
    // Two HELR iterations plus one 256-slot bootstrapping (the paper's
    // HELR performs 256-slot bootstrapping every two iterations); the
    // repeat factor amortizes to a single iteration.
    Workload w;
    w.fhe = fhe;
    w.amortizeFactor = 256.0;
    w.program.name = "helr";

    KernelBuilder kb(w.program, fhe);
    int evk = kb.switchingKeyObject("relin_key");
    int gk = kb.switchingKeyObject("galois_keys");

    IrCt weights = kb.inputCiphertext("weights", fhe.levels - 1);
    for (int iter = 0; iter < 2; ++iter) {
        IrCt x = kb.inputCiphertext("batch_" + std::to_string(iter),
                                    weights.level);
        // z = X*w: one BSGS matmul over the 256-slot batch.
        int xw_diag = kb.plainObject("xw_diag_" + std::to_string(iter),
                                     static_cast<int>(16 * x.level));
        IrCt z = kb.linearTransform(kb.hmult(x, weights, evk), 16, 4,
                                    xw_diag, gk);
        // Sigmoid: degree-7 polynomial (HELR uses a cubic/7th approx).
        IrCt sig = kb.polyEval(z, 7, 4, evk);
        // Gradient: X^T * sig via log2(256) rotation-accumulate steps.
        IrCt grad = kb.hmult(sig, x, evk);
        for (int s = 0; s < 8; ++s)
            grad = kb.hadd(grad, kb.rotate(grad, 5 + s, gk));
        // Weight update: w -= lr * grad.
        IrCt scaled = kb.rescale(kb.multImm(grad, 13));
        weights = kb.hadd(kb.rescale(kb.multImm(weights, 17)), scaled);
    }

    // 256-slot bootstrapping budget (Table III row 2): CtS 3, StC 2.
    BootstrapBudget small;
    small.slots = 256;
    small.levelsCtS = 3;
    small.levelsStC = 2;
    small.sineDegree = 255;
    small.babySteps = 16;

    // Re-enter the bootstrap pipeline on the (now low-level) weights.
    KernelBuilder kb2(w.program, fhe);
    IrCt raised = emitModRaise(kb2, "weights_boot");
    const size_t cts_diags = stageDiags(small.slots, small.levelsCtS);
    for (size_t s = 0; s < small.levelsCtS; ++s) {
        int diag_obj = kb2.plainObject(
            "helr_cts_" + std::to_string(s),
            static_cast<int>(cts_diags * raised.level));
        raised = kb2.linearTransform(raised, cts_diags,
                                     babyFor(cts_diags), diag_obj, gk);
    }
    IrCt em = kb2.polyEval(kb2.rescale(kb2.multImm(raised, 9)),
                           small.sineDegree, small.babySteps, evk);
    const size_t stc_diags = stageDiags(small.slots, small.levelsStC);
    for (size_t s = 0; s < small.levelsStC; ++s) {
        int diag_obj = kb2.plainObject(
            "helr_stc_" + std::to_string(s),
            static_cast<int>(stc_diags * em.level));
        em = kb2.linearTransform(em, stc_diags, babyFor(stc_diags),
                                 diag_obj, gk);
    }
    kb2.output("weights_out", em);

    w.repeat = 0.5; // program covers two iterations; report one
    return w;
}

Workload
buildResNet20(const FheParams &fhe)
{
    // One segment: two homomorphic convolutions (BSGS diagonal matmuls
    // with 3x3 kernels over packed channels), a degree-27 activation,
    // and one bootstrapping. ResNet-20 ~ 10 such segments.
    Workload w;
    w.fhe = fhe;
    w.amortizeFactor = double(size_t(1) << 15);
    w.program.name = "resnet20";

    KernelBuilder kb(w.program, fhe);
    int evk = kb.switchingKeyObject("relin_key");
    int gk = kb.switchingKeyObject("galois_keys");

    IrCt act = kb.inputCiphertext("activations", 20);
    for (int layer = 0; layer < 2; ++layer) {
        int conv_diag = kb.plainObject(
            "conv_diag_" + std::to_string(layer),
            static_cast<int>(27 * act.level));
        act = kb.linearTransform(act, 27, 8, conv_diag, gk);
        act = kb.polyEval(act, 27, 8, evk); // ReLU approximation
    }

    BootstrapBudget full;
    full.levelsCtS = 4;
    full.levelsStC = 3;
    KernelBuilder kb2(w.program, fhe);
    IrCt raised = emitModRaise(kb2, "act_boot");
    const size_t cts_diags = stageDiags(full.slots, full.levelsCtS);
    for (size_t s = 0; s < full.levelsCtS; ++s) {
        int diag_obj = kb2.plainObject(
            "rn_cts_" + std::to_string(s),
            static_cast<int>(cts_diags * raised.level));
        raised = kb2.linearTransform(raised, cts_diags,
                                     babyFor(cts_diags), diag_obj, gk);
    }
    IrCt em = kb2.polyEval(kb2.rescale(kb2.multImm(raised, 9)),
                           full.sineDegree, full.babySteps, evk);
    const size_t stc_diags = stageDiags(full.slots, full.levelsStC);
    for (size_t s = 0; s < full.levelsStC; ++s) {
        int diag_obj = kb2.plainObject(
            "rn_stc_" + std::to_string(s),
            static_cast<int>(stc_diags * em.level));
        em = kb2.linearTransform(em, stc_diags, babyFor(stc_diags),
                                 diag_obj, gk);
    }
    kb2.output("act_out", em);

    w.repeat = 10.0; // 20 layers + ~10 bootstraps
    return w;
}

Workload
buildDbLookup(const FheParams &fhe, size_t records)
{
    // HElib-style lookup on BGV: select via encrypted one-hot query
    // (records plaintext multiplies + tree adds) and aggregate with
    // log2(records) rotations. Depth 1, small chain.
    Workload w;
    FheParams bgv = fhe;
    bgv.logN = 13;
    bgv.levels = 3;
    bgv.dnum = 1;
    w.fhe = bgv;
    w.amortizeFactor = double(bgv.degree());
    w.program.name = "dblookup";

    KernelBuilder kb(w.program, bgv);
    int gk = kb.switchingKeyObject("galois_keys");
    int db = kb.plainObject("database",
                            static_cast<int>(records * bgv.levels));

    IrCt query = kb.inputCiphertext("query", bgv.levels);
    std::vector<IrCt> selected;
    for (size_t r = 0; r < records; ++r)
        selected.push_back(
            kb.multPlain(query, db, static_cast<int>(r * bgv.levels)));
    // Tree reduction.
    while (selected.size() > 1) {
        std::vector<IrCt> next;
        for (size_t i = 0; i + 1 < selected.size(); i += 2)
            next.push_back(kb.hadd(selected[i], selected[i + 1]));
        if (selected.size() % 2)
            next.push_back(selected.back());
        selected = std::move(next);
    }
    IrCt acc = selected[0];
    for (size_t s = 0; s < log2Exact(records); ++s)
        acc = kb.hadd(acc, kb.rotate(acc, 5 + s, gk));
    kb.output("result", acc);
    return w;
}

Workload
buildRotationBatch(const FheParams &fhe, size_t chains, size_t hops)
{
    Workload w;
    FheParams p = fhe;
    w.fhe = p;
    w.amortizeFactor = double(p.degree());
    w.program.name = "rotbatch";

    KernelBuilder kb(w.program, p);
    IrBuilder &b = kb.builder();
    const int gk = kb.switchingKeyObject("galois_keys");
    IrCt ct = kb.inputCiphertext("ct", p.levels);
    const u64 two_n = u64(p.degree()) * 2;

    // Paired generators (g, g^2): chain 2k steps by g and accumulates
    // every second hop, chain 2k+1 steps by g^2 and accumulates every
    // hop, so chain 2k's step 2s lands on the same net element as
    // chain 2k+1's step s.  Neither accumulates the hops it merely
    // steps through, so after rotalg re-roots both chains at `ct` the
    // bypassed intermediates die (dead-rotation sweep) and the
    // colliding survivors canonicalize to identical forms that PRE
    // deduplicates — each pair of chains collapses from hops + hops/2
    // rotations to hops/2 shared ones.
    IrCt acc = ct;
    for (size_t c = 0; c < chains; ++c) {
        const u64 base = 5 + 2 * (c / 2);
        const bool squared = c % 2 != 0;
        const u64 g = squared ? base * base % two_n : base % two_n;
        const size_t steps = squared ? hops / 2 : hops;
        IrCt v = ct;
        for (size_t s = 0; s < steps; ++s) {
            v = {b.automorph(v.c0, g), b.automorph(v.c1, g), v.level};
            if (squared || s % 2 == 1 || s + 1 == steps)
                acc = kb.hadd(acc, v);
        }
    }

    // One hoisted key switch over the accumulated c1, as in rotate().
    auto [k0, k1] = kb.keySwitch(acc.c1, acc.level, gk);
    kb.output("result", IrCt{b.add(acc.c0, k0), k1, acc.level});
    return w;
}

Workload
buildTfheBootstrap()
{
    // TFHE gate bootstrapping (Sec. VI-D): n_lwe blind-rotation steps,
    // each an external product of 2 RGSW rows over l = 2 decomposition
    // digits, on N = 2^13; shifts map onto the automorphism unit with
    // the fixed network bypassed.
    Workload w;
    FheParams p;
    p.logN = 13;
    p.levels = 2; // l = 2 decomposition digits as limbs
    p.dnum = 1;
    w.fhe = p;
    w.amortizeFactor = 1.0;
    w.program.name = "tfhe_bootstrap";

    KernelBuilder kb(w.program, p);
    IrBuilder &b = kb.builder();
    const size_t n_lwe = 512;
    int bsk = b.object("bootstrap_key",
                       static_cast<int>(n_lwe * 4 * p.levels), true);

    IrCt acc = kb.inputCiphertext("acc", p.levels);
    for (size_t i = 0; i < n_lwe; ++i) {
        // Blind rotation step: X^{a_i} shift (AUTO), then the external
        // product: decompose (iNTT), per digit multiply with the RGSW
        // row (NTT-domain) and accumulate.
        PolyVal rot0 = b.automorph(acc.c0, 5);
        PolyVal rot1 = b.automorph(acc.c1, 5);
        PolyVal d0 = b.intt(rot0);
        PolyVal d1 = b.intt(rot1);
        PolyVal acc0, acc1;
        for (size_t digit = 0; digit < 2; ++digit) {
            PolyVal row_b = b.load(
                bsk, static_cast<int>((i * 4 + digit * 2) * p.levels),
                p.levels);
            PolyVal row_a = b.load(
                bsk,
                static_cast<int>((i * 4 + digit * 2 + 1) * p.levels),
                p.levels);
            PolyVal src = digit == 0 ? d0 : d1;
            PolyVal up = b.ntt(src);
            PolyVal pb = b.mul(up, row_b);
            PolyVal pa = b.mul(up, row_a);
            if (digit == 0) {
                acc0 = pb;
                acc1 = pa;
            } else {
                acc0 = b.add(acc0, pb);
                acc1 = b.add(acc1, pa);
            }
        }
        acc.c0 = acc0;
        acc.c1 = acc1;
    }
    // Sample extraction: one AUTO (shift/reverse) per poly.
    acc.c0 = b.automorph(acc.c0, 3);
    acc.c1 = b.automorph(acc.c1, 3);
    kb.output("lwe_out", acc);
    return w;
}

std::vector<std::pair<std::string, Workload>>
buildAllBenchmarks(const FheParams &fhe)
{
    std::vector<std::pair<std::string, Workload>> out;
    out.emplace_back("DBLookup", buildDbLookup(fhe));
    out.emplace_back("ResNet20", buildResNet20(fhe));
    out.emplace_back("HELR", buildHelr(fhe));
    out.emplace_back("Bootstrapping", buildBootstrapping(fhe));
    return out;
}

} // namespace effact
