#include "ir/builder.h"

#include "common/logging.h"

namespace effact {

int
IrBuilder::object(const std::string &name, int residues, bool read_only)
{
    return prog_.addObject(name, residues, read_only);
}

int
IrBuilder::emit1(IrOp op, int a, int b, uint32_t modulus, IrTag tag,
                 u64 imm, bool use_imm)
{
    IrInst inst;
    inst.op = op;
    inst.a = a;
    inst.b = b;
    inst.modulus = modulus;
    inst.tag = tag;
    inst.imm = imm;
    inst.useImm = use_imm;
    return prog_.emit(inst);
}

PolyVal
IrBuilder::load(int obj, int first, size_t limbs)
{
    PolyVal v;
    v.limbs.reserve(limbs);
    for (size_t j = 0; j < limbs; ++j) {
        IrInst inst;
        inst.op = IrOp::Load;
        inst.modulus = static_cast<uint32_t>(first + j);
        inst.mem = {obj, first + static_cast<int>(j)};
        v.limbs.push_back(prog_.emit(inst));
    }
    return v;
}

void
IrBuilder::store(int obj, int first, const PolyVal &v)
{
    for (size_t j = 0; j < v.size(); ++j) {
        IrInst inst;
        inst.op = IrOp::Store;
        inst.a = v.limbs[j];
        inst.modulus = static_cast<uint32_t>(first + j);
        inst.mem = {obj, first + static_cast<int>(j)};
        prog_.emit(inst);
    }
}

PolyVal
IrBuilder::mul(const PolyVal &a, const PolyVal &b, IrTag tag)
{
    EFFACT_ASSERT(a.size() == b.size(), "limb count mismatch in mul");
    PolyVal out;
    for (size_t j = 0; j < a.size(); ++j)
        out.limbs.push_back(emit1(IrOp::Mul, a.limbs[j], b.limbs[j],
                                  static_cast<uint32_t>(j), tag));
    return out;
}

PolyVal
IrBuilder::add(const PolyVal &a, const PolyVal &b, IrTag tag)
{
    EFFACT_ASSERT(a.size() == b.size(), "limb count mismatch in add");
    PolyVal out;
    for (size_t j = 0; j < a.size(); ++j)
        out.limbs.push_back(emit1(IrOp::Add, a.limbs[j], b.limbs[j],
                                  static_cast<uint32_t>(j), tag));
    return out;
}

PolyVal
IrBuilder::sub(const PolyVal &a, const PolyVal &b, IrTag tag)
{
    EFFACT_ASSERT(a.size() == b.size(), "limb count mismatch in sub");
    PolyVal out;
    for (size_t j = 0; j < a.size(); ++j)
        out.limbs.push_back(emit1(IrOp::Sub, a.limbs[j], b.limbs[j],
                                  static_cast<uint32_t>(j), tag));
    return out;
}

PolyVal
IrBuilder::mulImm(const PolyVal &a, u64 imm, IrTag tag)
{
    PolyVal out;
    for (size_t j = 0; j < a.size(); ++j)
        out.limbs.push_back(emit1(IrOp::Mul, a.limbs[j], -1,
                                  static_cast<uint32_t>(j), tag, imm,
                                  true));
    return out;
}

PolyVal
IrBuilder::addImm(const PolyVal &a, u64 imm, IrTag tag)
{
    PolyVal out;
    for (size_t j = 0; j < a.size(); ++j)
        out.limbs.push_back(emit1(IrOp::Add, a.limbs[j], -1,
                                  static_cast<uint32_t>(j), tag, imm,
                                  true));
    return out;
}

PolyVal
IrBuilder::ntt(const PolyVal &a)
{
    PolyVal out;
    for (size_t j = 0; j < a.size(); ++j)
        out.limbs.push_back(emit1(IrOp::Ntt, a.limbs[j], -1,
                                  static_cast<uint32_t>(j)));
    return out;
}

PolyVal
IrBuilder::intt(const PolyVal &a)
{
    PolyVal out;
    for (size_t j = 0; j < a.size(); ++j)
        out.limbs.push_back(emit1(IrOp::Intt, a.limbs[j], -1,
                                  static_cast<uint32_t>(j)));
    return out;
}

PolyVal
IrBuilder::automorph(const PolyVal &a, u64 elt)
{
    PolyVal out;
    for (size_t j = 0; j < a.size(); ++j)
        out.limbs.push_back(emit1(IrOp::Auto, a.limbs[j], -1,
                                  static_cast<uint32_t>(j),
                                  IrTag::Normal, elt, true));
    return out;
}

} // namespace effact
