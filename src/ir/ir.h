/**
 * @file
 * SSA intermediate representation at the residue-polynomial level
 * (Sec. IV-B). HE primitives are lowered to vector instructions over
 * single residues; the compiler optimizes this form and then allocates
 * SRAM registers and emits machine code.
 */
#ifndef EFFACT_IR_IR_H
#define EFFACT_IR_IR_H

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "math/mod_arith.h"

namespace effact {

/** IR operations (pre-scheduling form of the ISA). */
enum class IrOp : uint8_t {
    Load,  ///< read a residue from an HBM object
    Store, ///< write a residue to an HBM object
    Mul,   ///< modular multiply (second arg may be an immediate)
    Add,   ///< modular add
    Sub,   ///< modular subtract
    Mac,   ///< fused multiply-add (created by the peephole merge)
    Ntt,   ///< forward NTT
    Intt,  ///< inverse NTT
    Auto,  ///< automorphism
    Copy,  ///< residue copy
};

/**
 * Instruction tag: which HE-level construct the instruction came from.
 * This is what Fig. 3 plots (BConv's MULT/ADD counted separately).
 */
enum class IrTag : uint8_t {
    Normal, ///< normal MULT/ADD and everything else
    BConv,  ///< part of a base conversion
};

/** Symbolic HBM location: an object (ciphertext/key/constant) + index. */
struct MemRef
{
    int object = -1; ///< HBM object id (-1 = none)
    int index = 0;   ///< residue index inside the object

    bool operator==(const MemRef &o) const
    {
        return object == o.object && index == o.index;
    }
};

/** HBM object metadata. */
struct MemObject
{
    std::string name;
    int residues = 0;   ///< number of residue polynomials
    bool readOnly = false; ///< keys/plaintext constants
};

/** One SSA instruction; its index in the program is its value id. */
struct IrInst
{
    IrOp op = IrOp::Copy;
    int a = -1;         ///< first operand value id
    int b = -1;         ///< second operand value id (-1 if immediate/none)
    int c = -1;         ///< third operand (Mac accumulator only)
    u64 imm = 0;        ///< immediate scalar / Galois element
    bool useImm = false;///< second operand is `imm` instead of `b`
    uint32_t modulus = 0; ///< limb prime index
    IrTag tag = IrTag::Normal;
    MemRef mem;         ///< Load/Store location
    bool dead = false;  ///< marked by passes instead of O(n) erases

    /** The operand slots (a, b, c) for uniform traversal/rewriting: a
     *  pass that resolves or counts operands must cover all three (a
     *  value can be live only as a Mac accumulator). */
    std::array<int *, 3> operandSlots() { return {&a, &b, &c}; }
    std::array<int, 3> operands() const { return {a, b, c}; }
};

/** An SSA program over residue polynomials. */
struct IrProgram
{
    std::string name;
    size_t degree = 0;   ///< ring degree N
    size_t lanes = 0;    ///< vector lanes (informational)
    std::vector<IrInst> insts;
    std::vector<MemObject> objects;

    /** Creates an HBM object; returns its id. */
    int addObject(std::string obj_name, int residues, bool read_only);

    /** Appends an instruction; returns its value id. */
    int emit(IrInst inst);

    /** Number of live (non-dead) instructions. */
    size_t liveCount() const;

    /** Compacts dead instructions and renumbers value ids. */
    void compact();

    /**
     * Mutation counter keying cached analyses (`AnalysisManager`): two
     * calls observing the same version may reuse results computed at
     * that version. `emit`/`compact` bump it internally; passes that
     * rewrite instructions in place must call `bumpVersion()` when (and
     * only when) they report a change.
     */
    uint64_t version() const { return version_; }
    void bumpVersion() { ++version_; }

    /**
     * Process-unique program identity, part of the analysis cache key
     * next to `version()`. Every program object — including copies and
     * move targets — gets a fresh id, so a cache can never confuse two
     * programs that reuse an address or happen to share a mutation
     * count (e.g. successive stack-local programs in a
     * re-compilation sweep). The cost of the fresh-on-move choice is
     * only a spurious analysis rebuild, never a stale hit.
     */
    uint64_t uid() const { return uid_.value; }

    /** Op histogram over live instructions, keyed for Fig. 3. */
    StatSet opMix() const;

    /** Total bytes of all read-only objects (key/constant footprint). */
    size_t readOnlyBytes() const;

  private:
    struct UniqueId
    {
        uint64_t value = next();
        UniqueId() = default;
        UniqueId(const UniqueId &) : value(next()) {}
        UniqueId(UniqueId &&) noexcept : value(next()) {}
        UniqueId &operator=(const UniqueId &) { value = next(); return *this; }
        UniqueId &operator=(UniqueId &&) noexcept
        {
            value = next();
            return *this;
        }
        static uint64_t next()
        {
            static std::atomic<uint64_t> counter{0};
            return ++counter;
        }
    };

    UniqueId uid_;
    uint64_t version_ = 0;
};

/** Name used in the Fig. 3 histogram for an instruction. */
std::string mixKey(const IrInst &inst);

/** Mnemonic for an IR operation. */
const char *irOpName(IrOp op);

/**
 * Human-readable rendering of one instruction ("Mac v3, v7, acc v1
 * [q2]"), the IR sibling of `isa`'s `disassemble`: verifier and pass
 * diagnostics use it to name the offending instruction.
 */
std::string display(const IrInst &inst);

/**
 * Order-sensitive 64-bit fingerprint over the instruction stream and
 * the semantic program metadata (degree, lanes, object shapes):
 * word-wise FNV-1a with a splitmix64 finalizer, the cache-lookup-rate
 * sibling of `isa`'s bytewise `fingerprint(MachineProgram)`. Two
 * programs
 * fingerprint equal iff they are structurally identical inputs to the
 * compiler; display-only metadata (`name`, object names) and the
 * process-local identity (`uid()`, `version()`) are deliberately
 * excluded, so independently built copies of the same workload hash
 * equal. This is the content half of the `CompileCache` key.
 */
uint64_t fingerprint(const IrProgram &prog);

} // namespace effact

#endif // EFFACT_IR_IR_H
