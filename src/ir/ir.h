/**
 * @file
 * SSA intermediate representation at the residue-polynomial level
 * (Sec. IV-B). HE primitives are lowered to vector instructions over
 * single residues; the compiler optimizes this form and then allocates
 * SRAM registers and emits machine code.
 */
#ifndef EFFACT_IR_IR_H
#define EFFACT_IR_IR_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "math/mod_arith.h"

namespace effact {

/** IR operations (pre-scheduling form of the ISA). */
enum class IrOp : uint8_t {
    Load,  ///< read a residue from an HBM object
    Store, ///< write a residue to an HBM object
    Mul,   ///< modular multiply (second arg may be an immediate)
    Add,   ///< modular add
    Sub,   ///< modular subtract
    Mac,   ///< fused multiply-add (created by the peephole merge)
    Ntt,   ///< forward NTT
    Intt,  ///< inverse NTT
    Auto,  ///< automorphism
    Copy,  ///< residue copy
};

/**
 * Instruction tag: which HE-level construct the instruction came from.
 * This is what Fig. 3 plots (BConv's MULT/ADD counted separately).
 */
enum class IrTag : uint8_t {
    Normal, ///< normal MULT/ADD and everything else
    BConv,  ///< part of a base conversion
};

/** Symbolic HBM location: an object (ciphertext/key/constant) + index. */
struct MemRef
{
    int object = -1; ///< HBM object id (-1 = none)
    int index = 0;   ///< residue index inside the object

    bool operator==(const MemRef &o) const
    {
        return object == o.object && index == o.index;
    }
};

/** HBM object metadata. */
struct MemObject
{
    std::string name;
    int residues = 0;   ///< number of residue polynomials
    bool readOnly = false; ///< keys/plaintext constants
};

/** One SSA instruction; its index in the program is its value id. */
struct IrInst
{
    IrOp op = IrOp::Copy;
    int a = -1;         ///< first operand value id
    int b = -1;         ///< second operand value id (-1 if immediate/none)
    int c = -1;         ///< third operand (Mac accumulator only)
    u64 imm = 0;        ///< immediate scalar / Galois element
    bool useImm = false;///< second operand is `imm` instead of `b`
    uint32_t modulus = 0; ///< limb prime index
    IrTag tag = IrTag::Normal;
    MemRef mem;         ///< Load/Store location
    bool dead = false;  ///< marked by passes instead of O(n) erases
};

/** An SSA program over residue polynomials. */
struct IrProgram
{
    std::string name;
    size_t degree = 0;   ///< ring degree N
    size_t lanes = 0;    ///< vector lanes (informational)
    std::vector<IrInst> insts;
    std::vector<MemObject> objects;

    /** Creates an HBM object; returns its id. */
    int addObject(std::string obj_name, int residues, bool read_only);

    /** Appends an instruction; returns its value id. */
    int emit(IrInst inst);

    /** Number of live (non-dead) instructions. */
    size_t liveCount() const;

    /** Compacts dead instructions and renumbers value ids. */
    void compact();

    /** Op histogram over live instructions, keyed for Fig. 3. */
    StatSet opMix() const;

    /** Total bytes of all read-only objects (key/constant footprint). */
    size_t readOnlyBytes() const;
};

/** Name used in the Fig. 3 histogram for an instruction. */
std::string mixKey(const IrInst &inst);

} // namespace effact

#endif // EFFACT_IR_IR_H
