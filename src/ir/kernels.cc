#include "ir/kernels.h"

#include "common/logging.h"

namespace effact {

namespace {

/** Slice of a polynomial's limbs [begin, end). */
PolyVal
slice(const PolyVal &v, size_t begin, size_t end)
{
    PolyVal out;
    out.limbs.assign(v.limbs.begin() + static_cast<long>(begin),
                     v.limbs.begin() + static_cast<long>(end));
    return out;
}

/** Placeholder immediates for structural constants (value irrelevant). */
constexpr u64 kQhatInvImm = 3;
constexpr u64 kPInvImm = 5;
constexpr u64 kRescaleInvImm = 7;

} // namespace

KernelBuilder::KernelBuilder(IrProgram &prog, const FheParams &params)
    : b_(prog), p_(params)
{
    prog.degree = params.degree();
    prog.lanes = params.lanes;
}

IrCt
KernelBuilder::inputCiphertext(const std::string &name, size_t level)
{
    int obj = b_.object(name, static_cast<int>(2 * level), false);
    IrCt ct;
    ct.level = level;
    ct.c0 = b_.load(obj, 0, level);
    ct.c1 = b_.load(obj, static_cast<int>(level), level);
    return ct;
}

int
KernelBuilder::switchingKeyObject(const std::string &name)
{
    // dnum digits x 2 polys x (L + alpha) residues, read-only.
    int residues = static_cast<int>(p_.dnum * 2 * (p_.levels + p_.alpha()));
    return b_.object(name, residues, true);
}

int
KernelBuilder::plainObject(const std::string &name, int residues)
{
    return b_.object(name, residues, true);
}

void
KernelBuilder::output(const std::string &name, const IrCt &ct)
{
    int obj = b_.object(name, static_cast<int>(2 * ct.level), false);
    b_.store(obj, 0, ct.c0);
    b_.store(obj, static_cast<int>(ct.level), ct.c1);
}

namespace {

/** Drops limbs to align a ciphertext to `target` level. */
IrCt
alignTo(const IrCt &ct, size_t target)
{
    if (ct.level == target)
        return ct;
    IrCt out;
    out.level = target;
    out.c0 = slice(ct.c0, 0, target);
    out.c1 = slice(ct.c1, 0, target);
    return out;
}

} // namespace

IrCt
KernelBuilder::hadd(const IrCt &a, const IrCt &b)
{
    const size_t level = std::min(a.level, b.level);
    IrCt aa = alignTo(a, level);
    IrCt bb = alignTo(b, level);
    return {b_.add(aa.c0, bb.c0), b_.add(aa.c1, bb.c1), level};
}

IrCt
KernelBuilder::multPlain(const IrCt &ct, int plain_obj, int plain_first)
{
    PolyVal pt = b_.load(plain_obj, plain_first,
                         static_cast<int>(ct.level));
    return {b_.mul(ct.c0, pt), b_.mul(ct.c1, pt), ct.level};
}

IrCt
KernelBuilder::multImm(const IrCt &ct, u64 imm)
{
    return {b_.mulImm(ct.c0, imm), b_.mulImm(ct.c1, imm), ct.level};
}

PolyVal
KernelBuilder::bconv(const PolyVal &v, size_t to_limbs)
{
    // t_j = v_j * (qhat_j^-1 * 1/N) — the Eq. 5 merged constant.
    PolyVal t;
    for (size_t j = 0; j < v.size(); ++j)
        t.limbs.push_back(b_.emit1(IrOp::Mul, v.limbs[j], -1,
                                   static_cast<uint32_t>(j), IrTag::BConv,
                                   kQhatInvImm + j, true));
    // out_i = sum_j t_j * (qhat_j mod p_i): a MULT then MAC-able ADDs.
    PolyVal out;
    for (size_t i = 0; i < to_limbs; ++i) {
        int acc = b_.emit1(IrOp::Mul, t.limbs[0], -1,
                           static_cast<uint32_t>(i), IrTag::BConv,
                           kQhatInvImm, true);
        for (size_t j = 1; j < v.size(); ++j) {
            int prod = b_.emit1(IrOp::Mul, t.limbs[j], -1,
                                static_cast<uint32_t>(i), IrTag::BConv,
                                kQhatInvImm + j, true);
            acc = b_.emit1(IrOp::Add, acc, prod,
                           static_cast<uint32_t>(i), IrTag::BConv);
        }
        out.limbs.push_back(acc);
    }
    return out;
}

PolyVal
KernelBuilder::modDown(const PolyVal &acc, size_t level)
{
    const size_t alpha = p_.alpha();
    EFFACT_ASSERT(acc.size() == level + alpha, "modDown limb mismatch");
    PolyVal q_part = slice(acc, 0, level);
    PolyVal p_part = slice(acc, level, level + alpha);

    PolyVal p_coeff = b_.intt(p_part);
    PolyVal conv = bconv(p_coeff, level);
    PolyVal conv_eval = b_.ntt(conv);
    PolyVal diff = b_.sub(q_part, conv_eval);
    return b_.mulImm(diff, kPInvImm);
}

std::pair<PolyVal, PolyVal>
KernelBuilder::keySwitch(const PolyVal &d2, size_t level, int key_obj)
{
    const size_t alpha = p_.alpha();
    const size_t ext = level + alpha;
    const size_t digits = (level + alpha - 1) / alpha;
    const int key_stride = static_cast<int>(p_.levels + p_.alpha());

    PolyVal dc = b_.intt(d2);

    PolyVal acc0, acc1;
    for (size_t d = 0; d < digits; ++d) {
        size_t begin = d * alpha;
        size_t end = std::min(begin + alpha, level);
        PolyVal digit = slice(dc, begin, end);

        PolyVal up = bconv(digit, ext);
        PolyVal up_eval = b_.ntt(up);

        // evk digit d: b at offset (2d)*stride, a at (2d+1)*stride.
        PolyVal kb = b_.load(key_obj, static_cast<int>(2 * d) * key_stride,
                             ext);
        PolyVal ka = b_.load(key_obj,
                             static_cast<int>(2 * d + 1) * key_stride, ext);
        PolyVal pb = b_.mul(up_eval, kb);
        PolyVal pa = b_.mul(up_eval, ka);
        if (d == 0) {
            acc0 = pb;
            acc1 = pa;
        } else {
            acc0 = b_.add(acc0, pb);
            acc1 = b_.add(acc1, pa);
        }
    }
    return {modDown(acc0, level), modDown(acc1, level)};
}

IrCt
KernelBuilder::hmult(const IrCt &a, const IrCt &b, int evk)
{
    const size_t level = std::min(a.level, b.level);
    IrCt aa = alignTo(a, level);
    IrCt bb = alignTo(b, level);
    PolyVal d0 = b_.mul(aa.c0, bb.c0);
    PolyVal d1 = b_.add(b_.mul(aa.c0, bb.c1), b_.mul(aa.c1, bb.c0));
    PolyVal d2 = b_.mul(aa.c1, bb.c1);
    auto [k0, k1] = keySwitch(d2, level, evk);
    return {b_.add(d0, k0), b_.add(d1, k1), level};
}

IrCt
KernelBuilder::rescale(const IrCt &ct)
{
    EFFACT_ASSERT(ct.level >= 2, "cannot rescale at level %zu", ct.level);
    IrCt out;
    out.level = ct.level - 1;
    for (const PolyVal *poly : {&ct.c0, &ct.c1}) {
        // iNTT the dropped limb once, re-NTT per remaining limb, then
        // subtract and scale by q_last^-1.
        PolyVal last = slice(*poly, ct.level - 1, ct.level);
        PolyVal last_coeff = b_.intt(last);
        PolyVal kept = slice(*poly, 0, ct.level - 1);
        PolyVal broadcast;
        for (size_t j = 0; j + 1 < ct.level; ++j)
            broadcast.limbs.push_back(
                b_.emit1(IrOp::Ntt, last_coeff.limbs[0], -1,
                         static_cast<uint32_t>(j)));
        PolyVal diff = b_.sub(kept, broadcast);
        PolyVal scaled = b_.mulImm(diff, kRescaleInvImm);
        (poly == &ct.c0 ? out.c0 : out.c1) = scaled;
    }
    return out;
}

IrCt
KernelBuilder::rotate(const IrCt &ct, u64 elt, int gk)
{
    PolyVal c0r = b_.automorph(ct.c0, elt);
    PolyVal c1r = b_.automorph(ct.c1, elt);
    auto [k0, k1] = keySwitch(c1r, ct.level, gk);
    return {b_.add(c0r, k0), k1, ct.level};
}

IrCt
KernelBuilder::linearTransform(const IrCt &ct, size_t diags, size_t n1,
                               int plain_obj, int gk_obj, int)
{
    EFFACT_ASSERT(n1 >= 1 && diags >= 1, "invalid BSGS split");
    const size_t n2 = (diags + n1 - 1) / n1;
    const size_t level = ct.level;
    const size_t alpha = p_.alpha();
    const size_t ext = level + alpha;
    const size_t digits = (level + alpha - 1) / alpha;
    const int key_stride = static_cast<int>(p_.levels + p_.alpha());

    // Hoisting [13]: decompose c1 once, reuse for all n1 baby rotations.
    PolyVal dc = b_.intt(ct.c1);
    std::vector<PolyVal> up_eval(digits);
    for (size_t d = 0; d < digits; ++d) {
        size_t begin = d * alpha;
        size_t end = std::min(begin + alpha, level);
        up_eval[d] = b_.ntt(bconv(slice(dc, begin, end), ext));
    }

    // Baby rotations r = 0..n1-1 (r=0 is the unrotated ciphertext).
    std::vector<IrCt> rotated(n1);
    rotated[0] = ct;
    for (size_t r = 1; r < n1; ++r) {
        PolyVal acc0, acc1;
        for (size_t d = 0; d < digits; ++d) {
            PolyVal rot = b_.automorph(up_eval[d], 5 + r);
            PolyVal kb = b_.load(gk_obj,
                                 static_cast<int>((2 * d) * key_stride),
                                 ext);
            PolyVal ka = b_.load(
                gk_obj, static_cast<int>((2 * d + 1) * key_stride), ext);
            PolyVal pb = b_.mul(rot, kb);
            PolyVal pa = b_.mul(rot, ka);
            if (d == 0) {
                acc0 = pb;
                acc1 = pa;
            } else {
                acc0 = b_.add(acc0, pb);
                acc1 = b_.add(acc1, pa);
            }
        }
        IrCt rct;
        rct.level = level;
        rct.c0 = b_.add(b_.automorph(ct.c0, 5 + r), modDown(acc0, level));
        rct.c1 = modDown(acc1, level);
        rotated[r] = rct;
    }

    // Giant accumulation: sum_g rot_{g*n1}( sum_r diag ⊙ rotated[r] ).
    IrCt result;
    bool have_result = false;
    int diag_idx = 0;
    for (size_t g = 0; g < n2; ++g) {
        IrCt acc;
        bool have_acc = false;
        for (size_t r = 0; r < n1; ++r) {
            if (static_cast<size_t>(diag_idx) >= diags)
                break;
            IrCt term = multPlain(rotated[r], plain_obj,
                                  diag_idx * static_cast<int>(level));
            ++diag_idx;
            acc = have_acc ? hadd(acc, term) : term;
            have_acc = true;
        }
        if (!have_acc)
            break;
        IrCt shifted = g == 0 ? acc : rotate(acc, 5 + g, gk_obj);
        result = have_result ? hadd(result, shifted) : shifted;
        have_result = true;
    }
    return rescale(result);
}

IrCt
KernelBuilder::polyEval(const IrCt &ct, size_t degree, size_t baby, int evk)
{
    // Structural mirror of Bootstrapper::evalChebyshev: baby steps,
    // giant steps, then the BSGS recursion counted via a coefficient-
    // count recursion (constant multiplies stand in for the series).
    std::vector<IrCt> tk(baby + 1);
    tk[1] = ct;
    for (size_t k = 2; k <= baby; ++k) {
        IrCt prod = k % 2 == 0 ? hmult(tk[k / 2], tk[k / 2], evk)
                               : hmult(tk[k / 2], tk[k / 2 + 1], evk);
        IrCt scaled = rescale(prod);
        tk[k] = hadd(scaled, scaled); // 2*T_a*T_b (self-add)
    }

    std::vector<IrCt> giant;
    {
        IrCt cur = tk[baby];
        size_t idx = baby;
        while (idx * 2 <= degree) {
            IrCt sq = rescale(hmult(cur, cur, evk));
            cur = hadd(sq, sq);
            giant.push_back(cur);
            idx *= 2;
        }
    }

    // Recursion over coefficient counts.
    struct Rec
    {
        KernelBuilder &kb;
        const std::vector<IrCt> &tk;
        const std::vector<IrCt> &giant;
        size_t baby;
        int evk;

        IrCt run(size_t deg)
        {
            if (deg < baby) {
                // Base: sum of constant-multiplied baby polynomials.
                IrCt acc = kb.rescale(kb.multImm(tk[1], 11));
                for (size_t k = 2; k <= deg && k < tk.size(); ++k)
                    acc = kb.hadd(acc,
                                  kb.rescale(kb.multImm(tk[k], 11 + k)));
                return acc;
            }
            size_t big_k = baby;
            size_t j = 0;
            while (big_k * 2 <= deg) {
                big_k *= 2;
                ++j;
            }
            const IrCt &t_k = j == 0 ? tk[baby] : giant[j - 1];
            IrCt q = run(deg - big_k);
            IrCt r = run(big_k - 1);
            IrCt prod = kb.rescale(kb.hmult(q, t_k, evk));
            return kb.hadd(prod, r);
        }
    } rec{*this, tk, giant, baby, evk};

    return rec.run(degree);
}

} // namespace effact
