/**
 * @file
 * Benchmark program generators (Sec. V-A): fully-packed bootstrapping,
 * HELR logistic-regression training, ResNet-20 inference segments, the
 * BGV DB-Lookup, and TFHE gate bootstrapping. Each returns a residue-
 * polynomial IR program at paper-scale parameters plus a `repeat`
 * factor: the simulated runtime of the program times `repeat` is the
 * full-benchmark runtime (the paper similarly scales measured segments,
 * Sec. V-C).
 */
#ifndef EFFACT_IR_WORKLOADS_H
#define EFFACT_IR_WORKLOADS_H

#include "ir/kernels.h"

namespace effact {

/** A generated workload: the IR program plus scaling metadata. */
struct Workload
{
    IrProgram program;
    double repeat = 1.0;   ///< full benchmark = program runtime * repeat
    /** Divisor for amortized-time reporting: slots x (L - L_boot), the
     *  standard T_A.S. definition of [30]. */
    double amortizeFactor = 1.0;
    FheParams fhe;
};

/** Bootstrapping stage budget (Table III). */
struct BootstrapBudget
{
    size_t slots = size_t(1) << 15;
    size_t levelsCtS = 4;
    size_t levelsStC = 3;
    size_t sineDegree = 255;
    size_t babySteps = 16;
};

/** Fully-packed CKKS bootstrapping (Table III row 1). */
Workload buildBootstrapping(const FheParams &fhe,
                            const BootstrapBudget &budget = {});

/** One HELR training iteration pair + its 256-slot bootstrapping. */
Workload buildHelr(const FheParams &fhe);

/** A ResNet-20 segment (2 convolution layers + 1 bootstrapping),
 *  repeated to cover the 20-layer network. */
Workload buildResNet20(const FheParams &fhe);

/** HElib-style DB-Lookup on BGV (depth-1 select + aggregation). */
Workload buildDbLookup(const FheParams &fhe, size_t records = 256);

/** TFHE gate bootstrapping (Sec. VI-D): blind rotation + extraction. */
Workload buildTfheBootstrap();

/**
 * Hoisted rotate-accumulate batch: `chains` independent serial
 * automorphism chains of `hops` steps each (v_{s+1} = sigma_g(v_s)),
 * accumulated into one ciphertext with a single deferred key switch —
 * the pre-key-switch hoisting pattern of BSGS linear transforms.
 * The serial Auto-of-Auto chains are exactly the shape the `rotalg`
 * pass rewrites: composition re-roots every rotation at the chain
 * head (breaking the serial dependence on the lone AUTO unit), the
 * hops each chain merely steps through (even chains accumulate only
 * every second hop, odd chains run the squared generator for half
 * the steps) become dead rotations the pass retires, and the
 * surviving paired elements g^{2s} == (g^2)^s collide after
 * canonicalization so PRE deduplicates them across each pair.
 */
Workload buildRotationBatch(const FheParams &fhe, size_t chains = 4,
                            size_t hops = 8);

/** Emits the ModRaise data movement + broadcast NTTs. */
IrCt emitModRaise(KernelBuilder &kb, const std::string &name);

/** All four paper benchmarks keyed by name (for Fig. 3). */
std::vector<std::pair<std::string, Workload>> buildAllBenchmarks(
    const FheParams &fhe);

} // namespace effact

#endif // EFFACT_IR_WORKLOADS_H
