#include "ir/ir.h"

#include <map>

#include "common/logging.h"

namespace effact {

int
IrProgram::addObject(std::string obj_name, int residues, bool read_only)
{
    objects.push_back({std::move(obj_name), residues, read_only});
    bumpVersion();
    return static_cast<int>(objects.size()) - 1;
}

int
IrProgram::emit(IrInst inst)
{
    insts.push_back(inst);
    bumpVersion();
    return static_cast<int>(insts.size()) - 1;
}

size_t
IrProgram::liveCount() const
{
    size_t n = 0;
    for (const auto &inst : insts)
        n += inst.dead ? 0 : 1;
    return n;
}

void
IrProgram::compact()
{
    if (liveCount() == insts.size())
        return; // nothing dead: ids (and cached analyses) stay valid
    std::vector<int> remap(insts.size(), -1);
    std::vector<IrInst> kept;
    kept.reserve(insts.size());
    for (size_t i = 0; i < insts.size(); ++i) {
        if (insts[i].dead)
            continue;
        remap[i] = static_cast<int>(kept.size());
        kept.push_back(insts[i]);
    }
    for (auto &inst : kept) {
        for (int *operand : inst.operandSlots()) {
            if (*operand >= 0) {
                EFFACT_ASSERT(remap[*operand] >= 0,
                              "live instruction uses dead value %d",
                              *operand);
                *operand = remap[*operand];
            }
        }
    }
    insts = std::move(kept);
    bumpVersion();
}

const char *
irOpName(IrOp op)
{
    switch (op) {
      case IrOp::Load: return "Load";
      case IrOp::Store: return "Store";
      case IrOp::Mul: return "Mul";
      case IrOp::Add: return "Add";
      case IrOp::Sub: return "Sub";
      case IrOp::Mac: return "Mac";
      case IrOp::Ntt: return "Ntt";
      case IrOp::Intt: return "Intt";
      case IrOp::Auto: return "Auto";
      case IrOp::Copy: return "Copy";
    }
    panic("unknown IrOp %d", static_cast<int>(op));
}

std::string
display(const IrInst &inst)
{
    std::string s = irOpName(inst.op);
    if (inst.a >= 0)
        s += " v" + std::to_string(inst.a);
    if (inst.useImm)
        s += ", #" + std::to_string(inst.imm);
    else if (inst.b >= 0)
        s += ", v" + std::to_string(inst.b);
    if (inst.c >= 0)
        s += ", acc v" + std::to_string(inst.c);
    if (inst.mem.object >= 0)
        s += ", obj" + std::to_string(inst.mem.object) + "[" +
             std::to_string(inst.mem.index) + "]";
    s += " [q" + std::to_string(inst.modulus) + "]";
    if (inst.dead)
        s += " (dead)";
    return s;
}

std::string
mixKey(const IrInst &inst)
{
    switch (inst.op) {
      case IrOp::Mul:
        return inst.tag == IrTag::BConv ? "BC_MULT" : "MULT";
      case IrOp::Mac:
        return inst.tag == IrTag::BConv ? "BC_MAC" : "MAC";
      case IrOp::Add:
      case IrOp::Sub:
        return inst.tag == IrTag::BConv ? "BC_ADD" : "ADD";
      case IrOp::Ntt:
      case IrOp::Intt:
        return "NTT";
      case IrOp::Auto:
        return "AUTO";
      case IrOp::Load:
        return "LOAD";
      case IrOp::Store:
        return "STORE";
      case IrOp::Copy:
        return "COPY";
    }
    return "OTHER";
}

StatSet
IrProgram::opMix() const
{
    StatSet mix;
    for (const auto &inst : insts) {
        if (!inst.dead)
            mix.add(mixKey(inst), 1);
    }
    return mix;
}

uint64_t
fingerprint(const IrProgram &prog)
{
    // Word-wise FNV-1a (one xor-multiply per field, not per byte): this
    // runs once per cache lookup over programs of 10^5..10^6
    // instructions, so the bytewise mixing `isa::fingerprint` uses on
    // its once-per-compile machine stream would dominate small compiles
    // (~25 ms at paper scale vs ~3 ms word-wise). The weaker per-step
    // avalanche is repaired by a splitmix64 finalizer; the cache-key
    // sensitivity tests cover the cases that matter (field tweaks,
    // order swaps).
    uint64_t h = 14695981039346656037ULL; // FNV-1a offset basis
    auto mix = [&h](u64 v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    mix(prog.degree);
    mix(prog.lanes);
    mix(prog.objects.size());
    for (const MemObject &obj : prog.objects) {
        mix(static_cast<u64>(static_cast<int64_t>(obj.residues)));
        mix(obj.readOnly ? 1 : 0);
    }
    mix(prog.insts.size());
    for (const IrInst &inst : prog.insts) {
        mix(static_cast<u64>(inst.op));
        mix(static_cast<u64>(static_cast<int64_t>(inst.a)));
        mix(static_cast<u64>(static_cast<int64_t>(inst.b)));
        mix(static_cast<u64>(static_cast<int64_t>(inst.c)));
        mix(inst.imm);
        mix(inst.useImm ? 1 : 0);
        mix(inst.modulus);
        mix(static_cast<u64>(inst.tag));
        mix(static_cast<u64>(static_cast<int64_t>(inst.mem.object)));
        mix(static_cast<u64>(static_cast<int64_t>(inst.mem.index)));
        mix(inst.dead ? 1 : 0);
    }
    // splitmix64 finalizer: full avalanche over the FNV accumulator.
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return h;
}

size_t
IrProgram::readOnlyBytes() const
{
    size_t bytes = 0;
    for (const auto &obj : objects) {
        if (obj.readOnly)
            bytes += static_cast<size_t>(obj.residues) * degree * 8;
    }
    return bytes;
}

} // namespace effact
