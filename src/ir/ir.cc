#include "ir/ir.h"

#include <map>

#include "common/logging.h"

namespace effact {

int
IrProgram::addObject(std::string obj_name, int residues, bool read_only)
{
    objects.push_back({std::move(obj_name), residues, read_only});
    bumpVersion();
    return static_cast<int>(objects.size()) - 1;
}

int
IrProgram::emit(IrInst inst)
{
    insts.push_back(inst);
    bumpVersion();
    return static_cast<int>(insts.size()) - 1;
}

size_t
IrProgram::liveCount() const
{
    size_t n = 0;
    for (const auto &inst : insts)
        n += inst.dead ? 0 : 1;
    return n;
}

void
IrProgram::compact()
{
    if (liveCount() == insts.size())
        return; // nothing dead: ids (and cached analyses) stay valid
    std::vector<int> remap(insts.size(), -1);
    std::vector<IrInst> kept;
    kept.reserve(insts.size());
    for (size_t i = 0; i < insts.size(); ++i) {
        if (insts[i].dead)
            continue;
        remap[i] = static_cast<int>(kept.size());
        kept.push_back(insts[i]);
    }
    for (auto &inst : kept) {
        for (int *operand : inst.operandSlots()) {
            if (*operand >= 0) {
                EFFACT_ASSERT(remap[*operand] >= 0,
                              "live instruction uses dead value %d",
                              *operand);
                *operand = remap[*operand];
            }
        }
    }
    insts = std::move(kept);
    bumpVersion();
}

std::string
mixKey(const IrInst &inst)
{
    switch (inst.op) {
      case IrOp::Mul:
        return inst.tag == IrTag::BConv ? "BC_MULT" : "MULT";
      case IrOp::Mac:
        return inst.tag == IrTag::BConv ? "BC_MAC" : "MAC";
      case IrOp::Add:
      case IrOp::Sub:
        return inst.tag == IrTag::BConv ? "BC_ADD" : "ADD";
      case IrOp::Ntt:
      case IrOp::Intt:
        return "NTT";
      case IrOp::Auto:
        return "AUTO";
      case IrOp::Load:
        return "LOAD";
      case IrOp::Store:
        return "STORE";
      case IrOp::Copy:
        return "COPY";
    }
    return "OTHER";
}

StatSet
IrProgram::opMix() const
{
    StatSet mix;
    for (const auto &inst : insts) {
        if (!inst.dead)
            mix.add(mixKey(inst), 1);
    }
    return mix;
}

size_t
IrProgram::readOnlyBytes() const
{
    size_t bytes = 0;
    for (const auto &obj : objects) {
        if (obj.readOnly)
            bytes += static_cast<size_t>(obj.residues) * degree * 8;
    }
    return bytes;
}

} // namespace effact
