/**
 * @file
 * HE-primitive kernel generators: lower CKKS/BGV primitives (HMULT's
 * key-switching, rescale, hoisted rotations, linear transforms,
 * polynomial evaluation) into residue-polynomial IR at paper-scale
 * parameters (Table III). These are *structural* generators — they emit
 * the exact instruction sequences the functional evaluator executes,
 * without carrying ciphertext data, so that full-size (N = 2^16, L = 24)
 * programs can be compiled and simulated.
 */
#ifndef EFFACT_IR_KERNELS_H
#define EFFACT_IR_KERNELS_H

#include "ir/builder.h"

namespace effact {

/** Scheme-level parameters for kernel generation. */
struct FheParams
{
    size_t logN = 16;  ///< ring degree 2^logN
    size_t levels = 24;///< Q-chain length L
    size_t dnum = 4;   ///< key-switching digits
    size_t lanes = 1024; ///< hardware vector lanes (informational)

    size_t degree() const { return size_t(1) << logN; }
    size_t alpha() const { return (levels + dnum - 1) / dnum; }
};

/** An IR-level ciphertext: two polynomials at some level. */
struct IrCt
{
    PolyVal c0, c1;
    size_t level = 0;
};

/** Emits HE primitives into an IR program. */
class KernelBuilder
{
  public:
    KernelBuilder(IrProgram &prog, const FheParams &params);

    IrBuilder &builder() { return b_; }
    const FheParams &params() const { return p_; }

    /** Declares and loads a fresh input ciphertext at `level`. */
    IrCt inputCiphertext(const std::string &name, size_t level);

    /** Declares a switching key object (dnum digits, 2 polys each). */
    int switchingKeyObject(const std::string &name);

    /** Declares a plaintext-constant object of `residues` residues. */
    int plainObject(const std::string &name, int residues);

    /** Stores a ciphertext to a fresh output object. */
    void output(const std::string &name, const IrCt &ct);

    // --- Primitives ------------------------------------------------------

    /** HADD: element-wise addition. */
    IrCt hadd(const IrCt &a, const IrCt &b);

    /** Multiply by a plaintext polynomial loaded from `plain_obj`. */
    IrCt multPlain(const IrCt &ct, int plain_obj, int plain_first);

    /** Multiply by a scalar immediate. */
    IrCt multImm(const IrCt &ct, u64 imm);

    /** HMULT with relinearization via `evk`. */
    IrCt hmult(const IrCt &a, const IrCt &b, int evk);

    /** Rescale: drop one level. */
    IrCt rescale(const IrCt &ct);

    /** HROT by a Galois element, switching with `gk`. */
    IrCt rotate(const IrCt &ct, u64 elt, int gk);

    /**
     * Base conversion of `v` (coeff domain) from its limbs onto
     * `to_limbs` target limbs (Eq. 3 as MULT/MAC instructions,
     * Sec. III-1: executed on the normal units, tagged BConv).
     */
    PolyVal bconv(const PolyVal &v, size_t to_limbs);

    /** Digit-decomposed key switching of d2 at `level` (Sec. II-C). */
    std::pair<PolyVal, PolyVal> keySwitch(const PolyVal &d2, size_t level,
                                          int key_obj);

    /**
     * Hoisted-rotation linear transform (BSGS): `diags` diagonals split
     * into n1 baby x n2 giant; consumes one level (includes rescale).
     */
    IrCt linearTransform(const IrCt &ct, size_t diags, size_t n1,
                         int plain_obj, int gk_obj, int evk_unused = -1);

    /**
     * Homomorphic polynomial evaluation of `degree` via BSGS with
     * `baby` baby steps (the EvalMod pattern).
     */
    IrCt polyEval(const IrCt &ct, size_t degree, size_t baby, int evk);

    /** ModDown of one accumulated (Q_l ∪ P) polynomial (helper). */
    PolyVal modDown(const PolyVal &acc, size_t level);

  private:
    IrBuilder b_;
    FheParams p_;
    int fresh_ = 0; ///< unique-name counter
};

} // namespace effact

#endif // EFFACT_IR_KERNELS_H
