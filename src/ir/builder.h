/**
 * @file
 * Low-level IR builder: emits per-limb residue instructions for whole
 * RNS polynomials. The HE-kernel layer (ir/kernels.h) composes these
 * into key-switching, rescale, rotations and full benchmarks.
 */
#ifndef EFFACT_IR_BUILDER_H
#define EFFACT_IR_BUILDER_H

#include "ir/ir.h"

namespace effact {

/** An RNS polynomial value in the IR: one SSA id per limb. */
struct PolyVal
{
    std::vector<int> limbs;

    size_t size() const { return limbs.size(); }
};

/** Emits residue-level instructions over whole polynomials. */
class IrBuilder
{
  public:
    explicit IrBuilder(IrProgram &prog) : prog_(prog) {}

    IrProgram &program() { return prog_; }

    /** Declares an HBM object holding `residues` residue polynomials. */
    int object(const std::string &name, int residues, bool read_only);

    /** Loads `limbs` consecutive residues starting at `first`. */
    PolyVal load(int obj, int first, size_t limbs);

    /** Stores a polynomial to consecutive residues starting at `first` */
    void store(int obj, int first, const PolyVal &v);

    /** Element-wise ops; limb counts must match. */
    PolyVal mul(const PolyVal &a, const PolyVal &b, IrTag tag = IrTag::Normal);
    PolyVal add(const PolyVal &a, const PolyVal &b, IrTag tag = IrTag::Normal);
    PolyVal sub(const PolyVal &a, const PolyVal &b, IrTag tag = IrTag::Normal);

    /** Multiply every limb by a scalar immediate. */
    PolyVal mulImm(const PolyVal &a, u64 imm, IrTag tag = IrTag::Normal);

    /** Add a scalar immediate to every limb. */
    PolyVal addImm(const PolyVal &a, u64 imm, IrTag tag = IrTag::Normal);

    /** NTT / iNTT on every limb. */
    PolyVal ntt(const PolyVal &a);
    PolyVal intt(const PolyVal &a);

    /** Automorphism with Galois element `elt` on every limb. */
    PolyVal automorph(const PolyVal &a, u64 elt);

    /** Single-limb helpers. */
    int emit1(IrOp op, int a, int b, uint32_t modulus,
              IrTag tag = IrTag::Normal, u64 imm = 0, bool use_imm = false);

  private:
    IrProgram &prog_;
};

} // namespace effact

#endif // EFFACT_IR_BUILDER_H
