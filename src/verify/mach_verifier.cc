/**
 * @file
 * Post-backend well-formedness checks for `MachineProgram` (the
 * `mach.*` rules in verify.h). One forward walk over the instruction
 * stream tracks which SRAM registers have been written and which FIFO
 * tokens have a producer, so register reads through reuse chains and
 * FU-to-FU forwards are checked in issue order — exactly the order the
 * scoreboard consumes them.
 */
#include "verify/verify.h"

#include <algorithm>
#include <climits>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace effact {

namespace {

void
report(VerifyReport &out, const char *rule, int inst, std::string msg)
{
    out.findings.push_back({rule, inst, std::move(msg)});
}

/** "dest"/"src0"/"src1"/"src2" for diagnostics. */
const char *
slotName(int slot)
{
    switch (slot) {
      case 0: return "dest";
      case 1: return "src0";
      case 2: return "src1";
      default: return "src2";
    }
}

} // namespace

VerifyReport
verifyMachine(const MachineProgram &prog, const MachVerifyBudget &budget)
{
    VerifyReport rep;

    if (!prog.insts.empty() &&
        (prog.numRegs == 0 || prog.residueBytes == 0))
        report(rep, "mach.program.meta", -1,
               "non-empty program with numRegs=" +
                   std::to_string(prog.numRegs) + " residueBytes=" +
                   std::to_string(prog.residueBytes));

    // The allocator reserves a clamped scratch pool at the top of the
    // register file (regalloc.cc); 0 means "not produced by the
    // allocator" (hand-built test programs) and skips the rule.
    if (prog.scratchRegs != 0 &&
        (prog.scratchRegs > budget.scratchCap ||
         prog.scratchRegs >= prog.numRegs))
        report(rep, "mach.scratch.pool", -1,
               "scratch pool of " + std::to_string(prog.scratchRegs) +
                   " registers outside [1, " +
                   std::to_string(budget.scratchCap) + "] (numRegs=" +
                   std::to_string(prog.numRegs) + ")");

    // Register-file/SRAM consistency with the configured hardware: the
    // backend sizes the file as max(sramBytes/residueBytes, 8).
    if (budget.sramBytes != 0 && prog.residueBytes != 0) {
        const size_t cap = std::max<size_t>(
            budget.sramBytes / prog.residueBytes, 8);
        if (prog.numRegs > cap)
            report(rep, "mach.sram.budget", -1,
                   std::to_string(prog.numRegs) + " registers x " +
                       std::to_string(prog.residueBytes) +
                       " bytes exceeds the " +
                       std::to_string(budget.sramBytes) +
                       "-byte SRAM budget");
    }
    rep.checksRun += 3;

    std::vector<uint8_t> written(prog.numRegs, 0);
    std::unordered_set<u64> fifo_live; // produced, not yet consumed
    // Per-HBM-address issue history for the memory-ordering rule: the
    // alias pass orders every store-involving pair of same-location
    // accesses by IR value id, and the scheduler must preserve those
    // edges — so in issue order, a store must not follow any access
    // with a greater irId at its address, and a load must not follow a
    // store with a greater irId. Equal ids are one value's own spill
    // store/reload traffic. Loads reorder freely among themselves, and
    // instructions without IR provenance (irId < 0, hand-built
    // programs) are exempt. DRAM-stream operands are not covered —
    // only explicit LOAD_RES/STORE_RES.
    struct AddrHistory
    {
        int maxSeenIr = INT_MIN;   ///< any access at this address
        int lastStoreIr = INT_MIN; ///< most recent store's irId
    };
    std::unordered_map<u64, AddrHistory> mem_history;
    const int n = static_cast<int>(prog.insts.size());
    for (int i = 0; i < n; ++i) {
        const MachInst &mi = prog.insts[i];
        rep.checksRun += 8;
        auto who = [&] { return disassemble(mi); };

        // Register ids in range for every Reg operand (the PR 4
        // "register -1" class lands here).
        const Operand *slots[4] = {&mi.dest, &mi.src0, &mi.src1,
                                   &mi.src2};
        for (int s = 0; s < 4; ++s) {
            const Operand &o = *slots[s];
            if (o.kind == OperandKind::Reg &&
                (o.reg < 0 ||
                 o.reg >= static_cast<int>(prog.numRegs)))
                report(rep, "mach.reg.bounds", i,
                       std::string(slotName(s)) + " register " +
                           std::to_string(o.reg) + " outside [0, " +
                           std::to_string(prog.numRegs) + ") in " +
                           who());
        }

        // Destination shape. Stores define nothing; everything else
        // writes a register or a (FU-fed) FIFO token.
        if (mi.op == Opcode::STORE_RES) {
            if (mi.dest.kind != OperandKind::None)
                report(rep, "mach.stream.dest", i,
                       "store carries a destination in " + who());
        } else {
            if (mi.dest.kind == OperandKind::None)
                report(rep, "mach.stream.dest", i,
                       "missing destination in " + who());
            else if (mi.dest.kind == OperandKind::Imm)
                report(rep, "mach.stream.dest", i,
                       "immediate destination in " + who());
            else if (mi.dest.kind == OperandKind::Stream && mi.dest.dram)
                report(rep, "mach.stream.dest", i,
                       "DRAM-stream destination in " + who());
        }

        // Per-opcode source shapes, matching what codegen can emit
        // (regalloc.cc): src0 is always a vector (register or stream),
        // never an immediate; src1 carries the immediate forms.
        const bool src0_vec = mi.src0.kind == OperandKind::Reg ||
                              mi.src0.kind == OperandKind::Stream;
        const bool src1_vec = mi.src1.kind == OperandKind::Reg ||
                              mi.src1.kind == OperandKind::Stream;
        switch (mi.op) {
          case Opcode::LOAD_RES:
            if (mi.src0.kind != OperandKind::None ||
                mi.src1.kind != OperandKind::None)
                report(rep, "mach.operand.shape", i,
                       "load takes no source operands in " + who());
            break;
          case Opcode::STORE_RES:
          case Opcode::VEC_COPY:
          case Opcode::NTT:
          case Opcode::INTT:
            if (!src0_vec)
                report(rep, "mach.operand.shape", i,
                       "src0 must be a register or stream in " + who());
            if (mi.src1.kind != OperandKind::None)
                report(rep, "mach.operand.shape", i,
                       "unexpected src1 in " + who());
            break;
          case Opcode::AUTO:
            if (!src0_vec)
                report(rep, "mach.operand.shape", i,
                       "src0 must be a register or stream in " + who());
            if (mi.src1.kind != OperandKind::None &&
                mi.src1.kind != OperandKind::Imm)
                report(rep, "mach.operand.shape", i,
                       "src1 must be empty or the Galois immediate "
                       "in " +
                           who());
            break;
          case Opcode::MMUL:
          case Opcode::MMAD:
          case Opcode::MSUB:
          case Opcode::MMAC:
            if (!src0_vec)
                report(rep, "mach.operand.shape", i,
                       "src0 must be a register or stream in " + who());
            if (!src1_vec && mi.src1.kind != OperandKind::Imm)
                report(rep, "mach.operand.shape", i,
                       "missing second source in " + who());
            break;
        }
        // src2 is the MMAC accumulator and nothing else: a vector
        // source (register or stream) there, None everywhere else. The
        // destination is always write-only.
        if (mi.op == Opcode::MMAC) {
            if (mi.src2.kind != OperandKind::None &&
                mi.src2.kind != OperandKind::Reg &&
                mi.src2.kind != OperandKind::Stream)
                report(rep, "mach.operand.shape", i,
                       "MMAC accumulator must be a register or stream "
                       "in " +
                           who());
        } else if (mi.src2.kind != OperandKind::None) {
            report(rep, "mach.operand.shape", i,
                   "src2 on a non-MMAC instruction in " + who());
        }

        // Reads happen before this instruction's write takes effect.
        for (int s = 1; s < 4; ++s) {
            const Operand &o = *slots[s];
            if (o.kind == OperandKind::Reg && o.reg >= 0 &&
                o.reg < static_cast<int>(prog.numRegs) &&
                !written[o.reg])
                report(rep, "mach.reg.uninit", i,
                       std::string(slotName(s)) + " reads r" +
                           std::to_string(o.reg) +
                           " before any write in " + who());
            if (o.kind == OperandKind::Stream && !o.dram &&
                fifo_live.find(o.value) == fifo_live.end())
                report(rep, "mach.stream.producer", i,
                       std::string(slotName(s)) + " consumes fifo" +
                           std::to_string(o.value) +
                           " with no producer in " + who());
            if (o.kind == OperandKind::Stream && !o.dram)
                fifo_live.erase(o.value); // FIFO tokens are one-shot
        }
        if (mi.writesDest()) {
            if (mi.dest.kind == OperandKind::Reg && mi.dest.reg >= 0 &&
                mi.dest.reg < static_cast<int>(prog.numRegs))
                written[mi.dest.reg] = 1;
            if (mi.dest.kind == OperandKind::Stream && !mi.dest.dram) {
                if (!fifo_live.insert(mi.dest.value).second)
                    report(rep, "mach.stream.producer", i,
                           "fifo" + std::to_string(mi.dest.value) +
                               " produced again before being consumed "
                               "in " +
                               who());
            }
        }

        // Explicit memory accesses: residue-aligned addresses (the
        // regalloc lays objects and spill slots out in whole-residue
        // units) and per-address issue order consistent with IR value
        // order (see `mem_history` above).
        if (mi.op == Opcode::LOAD_RES || mi.op == Opcode::STORE_RES) {
            if (prog.residueBytes != 0 &&
                mi.hbmAddr % prog.residueBytes != 0)
                report(rep, "mach.mem.align", i,
                       "HBM address " + std::to_string(mi.hbmAddr) +
                           " not a multiple of residueBytes=" +
                           std::to_string(prog.residueBytes) + " in " +
                           who());
            if (mi.irId >= 0) {
                AddrHistory &h = mem_history[mi.hbmAddr];
                if (mi.op == Opcode::STORE_RES) {
                    if (h.maxSeenIr > mi.irId)
                        report(rep, "mach.mem.order", i,
                               "store of v" + std::to_string(mi.irId) +
                                   " issued after an access of v" +
                                   std::to_string(h.maxSeenIr) +
                                   " at the same address in " + who());
                    h.lastStoreIr = std::max(h.lastStoreIr, mi.irId);
                } else if (h.lastStoreIr > mi.irId) {
                    report(rep, "mach.mem.order", i,
                           "load of v" + std::to_string(mi.irId) +
                               " issued after the store of v" +
                               std::to_string(h.lastStoreIr) +
                               " at the same address in " + who());
                }
                h.maxSeenIr = std::max(h.maxSeenIr, mi.irId);
            }
        }
    }
    return rep;
}

VerifyReport
verifyMachine(const MachineProgram &prog, const HardwareConfig &hw)
{
    MachVerifyBudget budget;
    budget.sramBytes = hw.sramBytes;
    return verifyMachine(prog, budget);
}

void
panicMalformedMachine(const MachineProgram &prog, int inst,
                      const char *what)
{
    VerifyReport rep = verifyMachine(prog);
    std::string culprit =
        inst >= 0 && inst < static_cast<int>(prog.insts.size())
            ? std::to_string(inst) + ": " + disassemble(prog.insts[inst])
            : std::string("<program>");
    panic("%s\n  at %s\n  verifier: %zu finding(s)\n%s", what,
          culprit.c_str(), rep.findings.size(),
          rep.toString().c_str());
}

} // namespace effact
