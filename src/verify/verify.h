/**
 * @file
 * LLVM-style well-formedness verifiers for the two program forms that
 * flow between compiler stages: the SSA `IrProgram` (checked at every
 * pass boundary and before a middle-end snapshot enters the
 * `CompileCache`) and the post-backend `MachineProgram` (checked at
 * back-end exit, before the simulator consumes it).
 *
 * The verifiers are pure: they never mutate the program and report
 * every violation they find as a structured `VerifyFinding` (stable
 * rule id, offending instruction index, human-readable message naming
 * the instruction via its disassembly/display form). Callers decide
 * the policy — the compiler's checkpoints panic on a non-empty report
 * (a pass or the backend produced malformed code, an internal bug),
 * while tests assert on exact rule ids.
 *
 * Rule catalogue (stable ids; add a rule here alongside any new pass
 * or codegen feature that introduces a new invariant):
 *
 *  IR (verifyIr):
 *   - ir.degree.pow2        program degree is a nonzero power of two
 *   - ir.object.shape       HBM object with residues <= 0
 *   - ir.operand.range      operand value id outside [-1, insts)
 *   - ir.operand.order      def-before-use: operand id >= own index
 *   - ir.operand.dead       live instruction references a dead value
 *   - ir.operand.novalue    operand references a Store (defines nothing)
 *   - ir.operand.arity      missing/extra operand for the opcode
 *   - ir.imm.exclusive      useImm set while b names a vector operand
 *   - ir.mac.conly          c operand on a non-Mac instruction
 *   - ir.mem.object         Load/Store object id outside the table
 *   - ir.mem.index          Load/Store residue index out of bounds
 *   - ir.mem.readonly       Store targets a read-only object
 *   - ir.mem.stray          non-memory instruction carries a MemRef
 *   - ir.modulus.range      limb index >= kMaxLimbIndex
 *   - ir.auto.elt           live immediate-form Auto carries a Galois
 *                           element outside [1, 2N) — the range the
 *                           rotalg pass composes/canonicalizes within
 *
 *  Machine (verifyMachine):
 *   - mach.program.meta     residueBytes/numRegs metadata malformed
 *   - mach.reg.bounds       register id outside [0, numRegs) — the
 *                           PR 4 "-1 register" bug class
 *   - mach.reg.uninit       register read before any write reaches it
 *   - mach.stream.producer  FIFO operand with no producer of its token
 *   - mach.stream.dest      malformed destination (dram-stream dest,
 *                           immediate dest, store with a dest, ...)
 *   - mach.operand.shape    per-opcode operand-kind legality
 *   - mach.scratch.pool     spill scratch pool outside the regalloc's
 *                           clamped [1, 4] range (or >= the whole pool)
 *   - mach.sram.budget      register file inconsistent with the
 *                           `HardwareConfig` SRAM capacity
 *   - mach.mem.align        LOAD_RES/STORE_RES HBM address not a
 *                           multiple of residueBytes — the regalloc's
 *                           object/spill-slot layout invariant
 *   - mach.mem.order        explicit memory accesses to one HBM address
 *                           issued inconsistently with their IR value
 *                           order (a scheduler/codegen pass dropped a
 *                           memory dependence)
 */
#ifndef EFFACT_VERIFY_VERIFY_H
#define EFFACT_VERIFY_VERIFY_H

#include <string>
#include <vector>

#include "ir/ir.h"
#include "isa/isa.h"
#include "sim/config.h"

namespace effact {

/** One invariant violation. */
struct VerifyFinding
{
    std::string rule;    ///< stable rule id (see catalogue above)
    int inst = -1;       ///< offending instruction index (-1 = program)
    std::string message; ///< diagnostic naming the instruction
};

/** Outcome of one verifier run. */
struct VerifyReport
{
    std::vector<VerifyFinding> findings;
    size_t checksRun = 0; ///< instructions x rule groups examined

    bool ok() const { return findings.empty(); }

    /** Renders up to `limit` findings, one line each ("rule @inst:
     *  message"); 0 = all. */
    std::string toString(size_t limit = 8) const;
};

/**
 * Architectural ceiling on RNS limb indices. Paper-scale modulus
 * chains stay below L + alpha + 1 ~ 31 limbs; the cap only exists to
 * catch uninitialized/corrupted `modulus` fields (e.g. 0xffffffff)
 * without ever rejecting a legitimate chain.
 */
constexpr uint32_t kMaxLimbIndex = 4096;

/** Checks SSA well-formedness of an IR program (rules `ir.*`). */
VerifyReport verifyIr(const IrProgram &prog);

/**
 * Optional machine-side budget: when `sramBytes` is nonzero the
 * verifier additionally checks the register file against the SRAM
 * capacity the backend was configured with (`mach.sram.budget`).
 */
struct MachVerifyBudget
{
    size_t sramBytes = 0;  ///< 0 = skip the SRAM-consistency rule
    size_t scratchCap = 4; ///< regalloc's historic scratch-pool clamp
};

/** Checks a compiled machine program (rules `mach.*`). */
VerifyReport verifyMachine(const MachineProgram &prog,
                           const MachVerifyBudget &budget = {});

/** Same, deriving the budget from a hardware configuration. */
VerifyReport verifyMachine(const MachineProgram &prog,
                           const HardwareConfig &hw);

/**
 * Panics with the report's findings (prefixed by `context`, e.g. the
 * pass that just ran) unless the report is clean. The panic message
 * names the rule, the instruction index and its display form, so a
 * broken invariant surfaces at the stage that introduced it instead of
 * as a crash deep inside `DepGraph`/the simulator.
 */
void enforceVerified(const VerifyReport &report, const char *context);

/**
 * Rich failure path for machine-code consumers (`DepGraph::fromMachine`
 * and the simulator): verifies `prog` and panics with the full report
 * plus the disassembly of `inst` (when >= 0). Call when a consumer-side
 * sanity check already failed — it upgrades a bare assert into a
 * diagnostic that names the offending instruction and every other
 * violated invariant. Never returns.
 */
[[noreturn]] void panicMalformedMachine(const MachineProgram &prog,
                                        int inst, const char *what);

/**
 * The process-wide default verify level, read once from `EFFACT_VERIFY`
 * (unset/"0" = 0 = off; any other integer enables checkpoint
 * verification). `CompilerOptions::verifyLevel` defaults to this, so
 * exporting `EFFACT_VERIFY=1` turns every compile in a test binary into
 * a fully verified one without code changes.
 */
int defaultVerifyLevel();

} // namespace effact

#endif // EFFACT_VERIFY_VERIFY_H
