/**
 * @file
 * SSA well-formedness checks for `IrProgram` (the `ir.*` rules in
 * verify.h). The verifier walks the instruction stream once in value-id
 * order and applies every rule to every live instruction; dead
 * instructions are skipped entirely because passes mark values dead in
 * place and deliberately leave stale operands behind (`compact()` is
 * what renumbers).
 */
#include "verify/verify.h"

#include <cstdlib>

#include "common/logging.h"

namespace effact {

namespace {

/** Per-opcode operand conventions, as produced by `IrBuilder` and the
 *  passes (see builder.cc / peephole.cc): which slots must be present,
 *  which must stay empty, and whether `useImm` can stand in for `b`. */
struct IrShape
{
    bool needsA = false;    ///< `a` must name a value
    bool usesB = false;     ///< second operand (`b` xor `imm`) required
    bool needsC = false;    ///< Mac accumulator required
    bool allowsImm = false; ///< `useImm` legal for this opcode
    bool isMem = false;     ///< carries a MemRef (Load/Store)
};

IrShape
shapeOf(IrOp op)
{
    switch (op) {
      case IrOp::Load:
        return {false, false, false, false, true};
      case IrOp::Store:
        return {true, false, false, false, true};
      case IrOp::Mul:
      case IrOp::Add:
      case IrOp::Sub:
        return {true, true, false, true, false};
      case IrOp::Mac:
        return {true, true, true, true, false};
      case IrOp::Ntt:
      case IrOp::Intt:
      case IrOp::Copy:
        return {true, false, false, false, false};
      case IrOp::Auto:
        // The Galois element rides in `imm` with `useImm` set
        // (builder.cc automorph); there is never a vector `b`.
        return {true, false, false, true, false};
    }
    return {};
}

void
report(VerifyReport &out, const char *rule, int inst, std::string msg)
{
    out.findings.push_back({rule, inst, std::move(msg)});
}

bool
isPow2(size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

std::string
VerifyReport::toString(size_t limit) const
{
    std::string s;
    size_t count = limit == 0 ? findings.size()
                              : std::min(limit, findings.size());
    for (size_t i = 0; i < count; ++i) {
        const VerifyFinding &f = findings[i];
        s += f.rule;
        if (f.inst >= 0)
            s += " @" + std::to_string(f.inst);
        s += ": " + f.message + "\n";
    }
    if (count < findings.size())
        s += "... (" + std::to_string(findings.size() - count) +
             " more findings)\n";
    return s;
}

void
enforceVerified(const VerifyReport &rep, const char *context)
{
    if (rep.ok())
        return;
    panic("%s produced a malformed program: %zu finding(s)\n%s", context,
          rep.findings.size(), rep.toString().c_str());
}

int
defaultVerifyLevel()
{
    static const int level = [] {
        const char *env = std::getenv("EFFACT_VERIFY");
        return env ? std::atoi(env) : 0;
    }();
    return level;
}

VerifyReport
verifyIr(const IrProgram &prog)
{
    VerifyReport rep;

    if (!isPow2(prog.degree))
        report(rep, "ir.degree.pow2", -1,
               "ring degree " + std::to_string(prog.degree) +
                   " is not a nonzero power of two");
    for (size_t o = 0; o < prog.objects.size(); ++o) {
        if (prog.objects[o].residues <= 0)
            report(rep, "ir.object.shape", -1,
                   "object " + std::to_string(o) + " ('" +
                       prog.objects[o].name + "') has " +
                       std::to_string(prog.objects[o].residues) +
                       " residues");
    }
    rep.checksRun += 2 + prog.objects.size();

    const int n = static_cast<int>(prog.insts.size());
    for (int i = 0; i < n; ++i) {
        const IrInst &inst = prog.insts[i];
        if (inst.dead)
            continue; // stale operands on dead values are expected
        const IrShape shape = shapeOf(inst.op);
        const std::string who = display(inst);
        rep.checksRun += 9;

        // Operand ids: in range, defined earlier, live, value-producing.
        for (int slot = 0; slot < 3; ++slot) {
            const int v = inst.operands()[slot];
            const char *name = slot == 0 ? "a" : slot == 1 ? "b" : "c";
            if (v < 0)
                continue;
            if (v >= n) {
                report(rep, "ir.operand.range", i,
                       "operand " + std::string(name) + "=v" +
                           std::to_string(v) + " out of range in " + who);
                continue;
            }
            if (v >= i) {
                report(rep, "ir.operand.order", i,
                       "operand " + std::string(name) + "=v" +
                           std::to_string(v) +
                           " is not defined before its use in " + who);
                continue;
            }
            if (prog.insts[v].dead)
                report(rep, "ir.operand.dead", i,
                       "live instruction " + who + " references dead v" +
                           std::to_string(v));
            if (prog.insts[v].op == IrOp::Store)
                report(rep, "ir.operand.novalue", i,
                       "operand " + std::string(name) + "=v" +
                           std::to_string(v) +
                           " names a Store (defines no value) in " + who);
        }

        // Arity: required slots present, forbidden slots empty.
        if (shape.needsA && inst.a < 0)
            report(rep, "ir.operand.arity", i,
                   "missing operand a in " + who);
        if (!shape.needsA && inst.a >= 0)
            report(rep, "ir.operand.arity", i,
                   "unexpected operand a in " + who);
        if (shape.usesB && inst.b < 0 && !inst.useImm)
            report(rep, "ir.operand.arity", i,
                   "missing second operand (b or imm) in " + who);
        if (!shape.usesB && inst.b >= 0)
            report(rep, "ir.operand.arity", i,
                   "unexpected operand b in " + who);
        if (shape.needsC && inst.c < 0)
            report(rep, "ir.operand.arity", i,
                   "missing Mac accumulator c in " + who);
        if (inst.op != IrOp::Mac && inst.c >= 0)
            report(rep, "ir.mac.conly", i,
                   "operand c on non-Mac instruction " + who);
        if (inst.useImm && inst.b >= 0)
            report(rep, "ir.imm.exclusive", i,
                   "useImm set while b=v" + std::to_string(inst.b) +
                       " names a vector operand in " + who);
        if (inst.useImm && !shape.allowsImm)
            report(rep, "ir.imm.exclusive", i,
                   "useImm set on an opcode without an immediate form "
                   "in " +
                       who);

        // Memory references: only Load/Store carry one, and it must
        // name a real residue slot; stores must not hit key/constant
        // objects.
        if (shape.isMem) {
            if (inst.mem.object < 0 ||
                inst.mem.object >= static_cast<int>(prog.objects.size())) {
                report(rep, "ir.mem.object", i,
                       "object id " + std::to_string(inst.mem.object) +
                           " out of range in " + who);
            } else {
                const MemObject &obj = prog.objects[inst.mem.object];
                if (inst.mem.index < 0 || inst.mem.index >= obj.residues)
                    report(rep, "ir.mem.index", i,
                           "residue index " +
                               std::to_string(inst.mem.index) +
                               " outside object '" + obj.name + "' (" +
                               std::to_string(obj.residues) +
                               " residues) in " + who);
                if (inst.op == IrOp::Store && obj.readOnly)
                    report(rep, "ir.mem.readonly", i,
                           "store to read-only object '" + obj.name +
                               "' in " + who);
            }
        } else if (inst.mem.object >= 0) {
            report(rep, "ir.mem.stray", i,
                   "non-memory instruction carries a MemRef in " + who);
        }

        if (inst.modulus >= kMaxLimbIndex)
            report(rep, "ir.modulus.range", i,
                   "limb index " + std::to_string(inst.modulus) +
                       " exceeds the architectural cap in " + who);

        // Galois elements index the automorphism group (Z/2NZ)*; the
        // builder emits them in [1, 2N) and the rotalg pass composes
        // and canonicalizes within that range (note the group has odd
        // elements only, but kernels legitimately encode even raw
        // indices like 5 + r, so the rule checks the range alone).
        if (inst.op == IrOp::Auto && inst.useImm) {
            const u64 two_n = u64(prog.degree) * 2;
            if (inst.imm < 1 || (two_n > 0 && inst.imm >= two_n))
                report(rep, "ir.auto.elt", i,
                       "Galois element " + std::to_string(inst.imm) +
                           " outside [1, " + std::to_string(two_n) +
                           ") in " + who);
        }
    }
    return rep;
}

} // namespace effact
