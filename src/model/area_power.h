/**
 * @file
 * Analytic area/power model of EFFACT at 28 nm, calibrated with the
 * per-component breakdown the paper reports for ASIC-EFFACT (Table IV)
 * and scaled by unit counts / SRAM capacity for the EFFACT-54/108/162
 * design points. Also provides the FPGA resource estimate (Table VI).
 */
#ifndef EFFACT_MODEL_AREA_POWER_H
#define EFFACT_MODEL_AREA_POWER_H

#include <string>
#include <vector>

#include "sim/config.h"

namespace effact {

/** One breakdown row: component, mm^2, W. */
struct ComponentCost
{
    std::string name;
    double areaMm2 = 0;
    double powerW = 0;
};

/** Full chip estimate. */
struct ChipCost
{
    std::vector<ComponentCost> components;
    double totalAreaMm2 = 0;
    double totalPowerW = 0;
};

/** Estimates area/power of a hardware configuration at 28 nm. */
ChipCost estimateAsic(const HardwareConfig &config);

/** FPGA resource estimate (Table VI row for FPGA-EFFACT). */
struct FpgaResources
{
    double lut = 0, ff = 0, bram = 0, uram = 0, dsp = 0;
};

FpgaResources estimateFpga(const HardwareConfig &config);

} // namespace effact

#endif // EFFACT_MODEL_AREA_POWER_H
