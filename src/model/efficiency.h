/**
 * @file
 * Performance density (throughput per mm^2) and power efficiency
 * (throughput per W) normalized to F1, as plotted in Fig. 9. Throughput
 * is 1/runtime for each benchmark.
 */
#ifndef EFFACT_MODEL_EFFICIENCY_H
#define EFFACT_MODEL_EFFICIENCY_H

#include <string>
#include <vector>

#include "model/baselines.h"

namespace effact {

/** One design point's runtime + scaled cost for efficiency plots. */
struct EfficiencyPoint
{
    std::string name;
    double runtime = 0; ///< any consistent unit per benchmark
    double areaMm2 = 0; ///< scaled to 28 nm
    double powerW = 0;  ///< scaled to 28 nm
};

/** Performance density relative to the first entry (F1). */
std::vector<double> perfDensityNormalized(
    const std::vector<EfficiencyPoint> &points);

/** Power efficiency relative to the first entry (F1). */
std::vector<double> powerEfficiencyNormalized(
    const std::vector<EfficiencyPoint> &points);

/** Geometric mean of a ratio list. */
double gmean(const std::vector<double> &values);

} // namespace effact

#endif // EFFACT_MODEL_EFFICIENCY_H
