#include "model/baselines.h"

#include "common/logging.h"

namespace effact {

double
BaselineSpec::scaledAreaMm2() const
{
    // HBM PHY area does not shrink with logic scaling; Table IV puts it
    // near 30 mm^2, which we hold constant across designs with HBM.
    const double hbm = hbmTBs > 0 ? 29.6 : 0.0;
    double logic = areaMm2 > hbm ? areaMm2 - hbm : areaMm2;
    return logic * areaScaleTo28(tech) + hbm;
}

double
BaselineSpec::scaledPowerW() const
{
    const double hbm = hbmTBs > 0 ? 31.8 : 0.0;
    double logic = powerW > hbm ? powerW - hbm : powerW;
    return logic * powerScaleTo28(tech) + hbm;
}

const std::vector<BaselineSpec> &
baselineTable()
{
    // Sources: Table V (tech/freq/area/power), Table VII (parallelism,
    // multipliers, HBM, SRAM, per-benchmark results).
    static const std::vector<BaselineSpec> table = {
        // name       tech              GHz   mm^2   W     par    mults  TB/s SRAM  bootUs  helrMs resnetMs dbMs  asic
        {"GPU-100x",  TechNode::Nm7,    1.0,  826,   300,  0,     0,     0.9, 40,   0.74,   775,   0,      0,    false},
        {"F1",        TechNode::Nm14_12,1.0,  151.4, 180.4,2048,  18432, 1.0, 64,   260,    1024,  2693,   4.36, true},
        {"BTS",       TechNode::Nm7,    1.2,  373.6, 133.8,2048,  8192,  1.0, 512,  0.045,  28.4,  2020,   0,    true},
        {"CraterLake",TechNode::Nm14_12,1.0,  472.3, 320.0,2048,  33792, 1.0, 282,  0.017,  3.73,  249.45, 0,    true},
        {"ARK",       TechNode::Nm7,    1.0,  418.3, 281.3,1024,  20480, 1.0, 588,  0.014,  7.72,  294,    0,    true},
        {"CL+MAD-32", TechNode::Nm14_12,1.0,  333.9, 213.4,2048,  14336, 1.0, 32,   0.270,  47.81, 1015.8, 0,    true},
        {"FAB",       TechNode::Nm28,   0.3,  0,     0,    256,   256,   0.46,43,   0.477,  103,   0,      0,    false},
        {"Poseidon",  TechNode::Nm28,   0.3,  0,     0,    256,   256,   0.46,8.6,  0.840,  86.3,  2661.23,0,    false},
    };
    return table;
}

const BaselineSpec &
baseline(const std::string &name)
{
    for (const auto &b : baselineTable())
        if (b.name == name)
            return b;
    fatal("unknown baseline '%s'", name.c_str());
}

} // namespace effact
