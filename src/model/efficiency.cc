#include "model/efficiency.h"

#include <cmath>

#include "common/logging.h"

namespace effact {

std::vector<double>
perfDensityNormalized(const std::vector<EfficiencyPoint> &points)
{
    EFFACT_ASSERT(!points.empty(), "no efficiency points");
    const auto &ref = points.front();
    const double ref_density = 1.0 / (ref.runtime * ref.areaMm2);
    std::vector<double> out;
    for (const auto &p : points) {
        EFFACT_ASSERT(p.runtime > 0 && p.areaMm2 > 0,
                      "invalid efficiency point %s", p.name.c_str());
        out.push_back((1.0 / (p.runtime * p.areaMm2)) / ref_density);
    }
    return out;
}

std::vector<double>
powerEfficiencyNormalized(const std::vector<EfficiencyPoint> &points)
{
    EFFACT_ASSERT(!points.empty(), "no efficiency points");
    const auto &ref = points.front();
    const double ref_eff = 1.0 / (ref.runtime * ref.powerW);
    std::vector<double> out;
    for (const auto &p : points) {
        EFFACT_ASSERT(p.runtime > 0 && p.powerW > 0,
                      "invalid efficiency point %s", p.name.c_str());
        out.push_back((1.0 / (p.runtime * p.powerW)) / ref_eff);
    }
    return out;
}

double
gmean(const std::vector<double> &values)
{
    EFFACT_ASSERT(!values.empty(), "gmean of empty set");
    double acc = 0.0;
    for (double v : values)
        acc += std::log(v);
    return std::exp(acc / double(values.size()));
}

} // namespace effact
