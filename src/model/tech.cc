#include "model/tech.h"

namespace effact {

double
areaScaleTo28(TechNode node)
{
    switch (node) {
      case TechNode::Nm7: return 3.70;     // [51], [73] density data
      case TechNode::Nm14_12: return 1.77; // [72]
      case TechNode::Nm28: return 1.0;
    }
    return 1.0;
}

double
powerScaleTo28(TechNode node)
{
    switch (node) {
      case TechNode::Nm7: return 1.95;
      case TechNode::Nm14_12: return 1.35;
      case TechNode::Nm28: return 1.0;
    }
    return 1.0;
}

const char *
techName(TechNode node)
{
    switch (node) {
      case TechNode::Nm7: return "7nm";
      case TechNode::Nm14_12: return "14/12nm";
      case TechNode::Nm28: return "28nm";
    }
    return "?";
}

} // namespace effact
