/**
 * @file
 * Technology scaling to the 28 nm node (Sec. VI-A/VI-B). The paper
 * scales prior ASICs to 28 nm with TSMC-published rules [51], [72],
 * [73], keeping HBM unchanged. The factors below are calibrated so the
 * scaled-area ratios of Table V are reproduced.
 */
#ifndef EFFACT_MODEL_TECH_H
#define EFFACT_MODEL_TECH_H

#include <string>

namespace effact {

/** Process nodes appearing in Table V. */
enum class TechNode { Nm7, Nm14_12, Nm28 };

/** Area multiplier when porting logic from `node` to 28 nm. */
double areaScaleTo28(TechNode node);

/** Power multiplier when porting logic from `node` to 28 nm. */
double powerScaleTo28(TechNode node);

const char *techName(TechNode node);

} // namespace effact

#endif // EFFACT_MODEL_TECH_H
