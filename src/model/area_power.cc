#include "model/area_power.h"

namespace effact {

namespace {

// Calibration constants from Table IV (ASIC-EFFACT: 2 NTTU, 2 MMULU,
// 3 MADDU, 1 AUTOU at 1024 lanes; 27 MB SRAM; HBM fixed).
constexpr double kNttuAreaPerUnit = 37.13 / 2;   // mm^2
constexpr double kNttuPowerPerUnit = 21.16 / 2;  // W
constexpr double kMaddAreaPerUnit = 3.59 / 3;
constexpr double kMaddPowerPerUnit = 3.51 / 3;
constexpr double kMmulAreaPerUnit = 18.21 / 2;
constexpr double kMmulPowerPerUnit = 10.12 / 2;
constexpr double kAutoAreaPerUnit = 4.65;
constexpr double kAutoPowerPerUnit = 4.88;
constexpr double kSramAreaPerMb = 81.50 / 27;
constexpr double kSramPowerPerMb = 43.14 / 27;
constexpr double kHbmArea = 29.60; // [27], independent of logic scaling
constexpr double kHbmPower = 31.80;
constexpr double kOtherAreaFrac = 37.20 / (211.9 - 37.20); // NoC, ctrl
constexpr double kOtherPowerFrac = 21.13 / (135.7 - 21.13);
constexpr double kRefLanes = 1024.0;

} // namespace

ChipCost
estimateAsic(const HardwareConfig &config)
{
    const double lane_scale = double(config.lanes) / kRefLanes;
    ChipCost cost;
    auto addRow = [&](const std::string &name, double area, double power) {
        cost.components.push_back({name, area, power});
        cost.totalAreaMm2 += area;
        cost.totalPowerW += power;
    };

    addRow("NTTU", kNttuAreaPerUnit * double(config.nttUnits) * lane_scale,
           kNttuPowerPerUnit * double(config.nttUnits) * lane_scale);
    addRow("MADDU",
           kMaddAreaPerUnit * double(config.addUnits) * lane_scale,
           kMaddPowerPerUnit * double(config.addUnits) * lane_scale);
    addRow("MMULU",
           kMmulAreaPerUnit * double(config.mulUnits) * lane_scale,
           kMmulPowerPerUnit * double(config.mulUnits) * lane_scale);
    addRow("AUTOU",
           kAutoAreaPerUnit * double(config.autoUnits) * lane_scale,
           kAutoPowerPerUnit * double(config.autoUnits) * lane_scale);
    const double sram_mb = double(config.sramBytes) / (1 << 20);
    addRow("SRAM", kSramAreaPerMb * sram_mb, kSramPowerPerMb * sram_mb);
    addRow("HBM", kHbmArea, kHbmPower);
    addRow("Others", cost.totalAreaMm2 * kOtherAreaFrac,
           cost.totalPowerW * kOtherPowerFrac);
    return cost;
}

FpgaResources
estimateFpga(const HardwareConfig &config)
{
    // Calibrated against the FPGA-EFFACT row of Table VI (256 lanes,
    // 7.6 MB): LUT 1246K, FF 2096K, BRAM 1343, URAM 864, DSP 8212.
    const double lane_scale = double(config.lanes) / 256.0;
    const double sram_mb = double(config.sramBytes) / (1 << 20);
    FpgaResources r;
    r.lut = 1246e3 * lane_scale;
    r.ff = 2096e3 * lane_scale;
    // BRAM/URAM: residue mapping uses 256 of 1024/4096 rows (Sec. VI-A),
    // so capacity utilization over-reports by ~4x relative to bytes.
    r.bram = 1343 * (sram_mb / 7.6);
    r.uram = 864 * (sram_mb / 7.6);
    r.dsp = 8212 * lane_scale;
    return r;
}

} // namespace effact
