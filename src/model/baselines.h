/**
 * @file
 * Baseline accelerator database: the published per-design numbers the
 * paper compares against (Tables V and VII). Absolute baseline runtimes
 * are literature values (the authors likewise quote them); EFFACT's own
 * numbers come from our simulator.
 */
#ifndef EFFACT_MODEL_BASELINES_H
#define EFFACT_MODEL_BASELINES_H

#include <string>
#include <vector>

#include "model/tech.h"

namespace effact {

/** One accelerator row across Tables V and VII. */
struct BaselineSpec
{
    std::string name;
    TechNode tech = TechNode::Nm28;
    double freqGhz = 1.0;
    double areaMm2 = 0;   ///< as published, at native node
    double powerW = 0;
    double parallelism = 0;
    double multipliers = 0;
    double hbmTBs = 0;
    double sramMB = 0;
    // Table VII benchmark results (0 = not reported).
    double bootstrapAmortUs = 0;
    double helrIterMs = 0;
    double resnetMs = 0;
    double dbLookupMs = 0;
    bool isAsic = true;

    /** Area scaled to 28 nm (HBM share kept unscaled). */
    double scaledAreaMm2() const;
    /** Power scaled to 28 nm. */
    double scaledPowerW() const;
};

/** All baselines in paper order. */
const std::vector<BaselineSpec> &baselineTable();

/** Looks up one baseline by name (fatal if missing). */
const BaselineSpec &baseline(const std::string &name);

} // namespace effact

#endif // EFFACT_MODEL_BASELINES_H
