/**
 * @file
 * Fixed-network (FN) transpose model, Fig. 7 of the paper.
 *
 * ARK/SHARP transpose the coefficient matrix around the auto-mapping units
 * by banked register-file column access; CraterLake uses a large transpose
 * unit. EFFACT instead exploits the bit-reversed NTT ordering: if x is an
 * array of N = R*C elements stored in bit-reversed order, then the matrix
 * B[r][c] = x[r*C + c] satisfies B = P · A^T · P, where A is the natural-
 * order matrix and P is the bit-reversal permutation applied to rows and to
 * columns. Hence A^T = P · B · P: the transpose is obtained by fetching
 * rows in bit-reversed order (an SRAM addressing change) and passing every
 * row through the *same* fixed wiring P — no transpose unit and no banked
 * column access required.
 */
#ifndef EFFACT_MATH_FIXED_NETWORK_H
#define EFFACT_MATH_FIXED_NETWORK_H

#include <cstddef>
#include <vector>

#include "math/mod_arith.h"

namespace effact {

/** Fixed-wiring network permuting one row of `lanes` elements. */
class FixedNetwork
{
  public:
    explicit FixedNetwork(size_t lanes);

    size_t lanes() const { return lanes_; }

    /** Applies the fixed bit-reversal wiring to one row (in-place copy). */
    void permuteRow(const u64 *in, u64 *out) const;

    /**
     * Full transpose via the fixed network. `x_bitrev` holds the natural
     * array in bit-reversed order (the NTT-domain layout); returns the
     * row-major transpose of the natural R x C matrix, with R = C = lanes.
     */
    std::vector<u64> transposeFromBitrev(const std::vector<u64> &x_bitrev)
        const;

    /**
     * Estimated wiring cost in wire-crossings: the FN is a static
     * permutation of `lanes` wires, O(lanes), versus O(lanes^2) for a
     * crossbar-based transpose unit (CraterLake) — used by the area model.
     */
    static double wiringCost(size_t lanes) { return double(lanes); }

  private:
    size_t lanes_;
    std::vector<uint32_t> wiring_; ///< column bit-reversal pattern
};

} // namespace effact

#endif // EFFACT_MATH_FIXED_NETWORK_H
