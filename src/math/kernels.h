/**
 * @file
 * Runtime-dispatched hot-loop kernels of the math substrate.
 *
 * Three kernel families dominate workload construction and every
 * crypto test: the Cooley-Tukey / Gentleman-Sande NTT butterflies,
 * Barrett/Montgomery modular multiplication, and the BConv / RnsPoly
 * elementwise MAC chains. Each family is implemented once per
 * `SimdTier` behind a function-pointer table:
 *
 *  - kernels_scalar.cc — the original scalar loops, kept verbatim.
 *    This tier is the *oracle*: every other tier must produce the
 *    exact same `u64` outputs on the same inputs (pinned by
 *    tests/test_simd_kernels.cc), which is what keeps fingerprints,
 *    `CompileCache` keys and `bench/baseline.json` byte-identical no
 *    matter which tier runs.
 *
 *  - kernels_avx2.cc — 4 x u64 lanes via AVX2 integer intrinsics:
 *    widening 32-bit multiplies (`_mm256_mul_epu32`) compose the
 *    64x64->128 products Barrett/Montgomery need, reductions are
 *    branchless conditional subtracts, and the NTT uses Shoup
 *    twiddle pre-scaling (floor(w * 2^64 / q), precomputed per plan)
 *    — exact because a canonical residue is unique: any correct
 *    reduction yields the identical representative in [0, q).
 *
 * Exactness contracts (same as the scalar classes they mirror):
 * elementwise operands are reduced (< q); `mulConstV`/`macConstV`
 * constants are < q. Outputs are always canonical.
 *
 * Callers that already hold per-limb reducers pass them in; the
 * kernels hoist whatever per-call constants they need (e.g. the Shoup
 * image of a MAC constant) once per call, never per element.
 */
#ifndef EFFACT_MATH_KERNELS_H
#define EFFACT_MATH_KERNELS_H

#include <cstddef>

#include "common/simd.h"
#include "math/mod_arith.h"
#include "math/montgomery.h"

namespace effact {
namespace kernels {

/**
 * Twiddle tables of one NTT plan, in the layout the butterflies want:
 * bit-reversed root order (contiguous per stage, so lane-parallel
 * stages load twiddles with plain vector loads) plus the Shoup
 * pre-scaled image of every root for the vector tiers.
 */
struct NttTables
{
    u64 q = 0;
    const u64 *roots = nullptr;         ///< psi^k, k bit-reversed (CT)
    const u64 *rootsShoup = nullptr;    ///< floor(roots * 2^64 / q)
    const u64 *invRoots = nullptr;      ///< psi^-k, bit-reversed (GS)
    const u64 *invRootsShoup = nullptr; ///< floor(invRoots * 2^64 / q)
    const Barrett *barrett = nullptr;   ///< scalar-oracle reducer for q
};

/** One function pointer per hot kernel; one table per tier. */
struct KernelTable
{
    /** dst[i] = addMod(a[i], b[i], q) */
    void (*addModV)(u64 *dst, const u64 *a, const u64 *b, size_t n, u64 q);
    /** dst[i] = subMod(a[i], b[i], q) */
    void (*subModV)(u64 *dst, const u64 *a, const u64 *b, size_t n, u64 q);
    /** dst[i] = negMod(a[i], q) */
    void (*negModV)(u64 *dst, const u64 *a, size_t n, u64 q);
    /** dst[i] = br.mul(a[i], b[i]) */
    void (*mulModV)(u64 *dst, const u64 *a, const u64 *b, size_t n,
                    const Barrett &br);
    /** dst[i] = br.mul(a[i], c), constant c < q hoisted per call */
    void (*mulConstV)(u64 *dst, const u64 *a, size_t n, u64 c,
                      const Barrett &br);
    /** dst[i] = addMod(dst[i], br.mul(a[i], c), q) — the BConv MAC */
    void (*macConstV)(u64 *dst, const u64 *a, size_t n, u64 c,
                      const Barrett &br);
    /** dst[i] = mont.mul(a[i], c) — REDC(a[i] * c) */
    void (*montMulConstV)(u64 *dst, const u64 *a, size_t n, u64 c,
                          const Montgomery &mont);
    /** dst[i] = addMod(dst[i], mont.mul(a[i], c), q) */
    void (*montMacConstV)(u64 *dst, const u64 *a, size_t n, u64 c,
                          const Montgomery &mont);
    /** In-place forward NTT (natural -> bit-reversed), full transform. */
    void (*nttForward)(u64 *a, size_t n, const NttTables &t);
    /** In-place inverse NTT core (no 1/N scale), full transform. */
    void (*nttInverse)(u64 *a, size_t n, const NttTables &t);
};

/** The scalar oracle table — always available. */
const KernelTable &scalarKernels();

/**
 * Table for `tier`, falling back to the highest available lower tier
 * (e.g. Avx2 on a non-x86 build resolves to scalar). Total: every tier
 * value maps to a usable table.
 */
const KernelTable &forTier(SimdTier tier);

/** Table for the process-wide active tier (common/simd.h). */
inline const KernelTable &
active()
{
    return forTier(activeSimdTier());
}

/**
 * Shoup pre-scaling: floor(w * 2^64 / q) for w < q. With q < 2^62 and
 * any 64-bit x, `x * w mod q` is then two multiplies and one
 * conditional subtract (used by the vector tiers; precomputed per
 * twiddle table or per kernel call, never per element).
 */
inline u64
shoupPrecompute(u64 w, u64 q)
{
    return static_cast<u64>((static_cast<u128>(w) << 64) / q);
}

} // namespace kernels
} // namespace effact

#endif // EFFACT_MATH_KERNELS_H
