/**
 * @file
 * Galois automorphisms σ_t : X -> X^t (t odd) on Z_q[X]/(X^N + 1).
 *
 * Used for homomorphic rotation (t = 5^s mod 2N, Eq. 4) and conjugation
 * (t = 2N - 1). Supports both coefficient-domain application (index map
 * with sign wrap) and evaluation-domain application on the bit-reversed
 * NTT ordering produced by `Ntt::forward` (Eq. 2's BR(σ'(BR(·))) form).
 */
#ifndef EFFACT_MATH_AUTOMORPHISM_H
#define EFFACT_MATH_AUTOMORPHISM_H

#include <cstddef>
#include <vector>

#include "math/mod_arith.h"

namespace effact {

/** Galois element for a left-rotation by `steps` slots: 5^steps mod 2N. */
u64 galoisElt(int steps, size_t n);

/** Galois element for complex conjugation: 2N - 1. */
u64 galoisEltConjugate(size_t n);

/**
 * Applies σ_t in the coefficient domain: out[it mod N] = ±in[i], with a
 * sign flip when floor(it / N) is odd (X^N = -1).
 */
void applyAutoCoeff(const u64 *in, u64 *out, size_t n, u64 t, u64 q);

/**
 * Precomputed evaluation-domain permutation for σ_t on the bit-reversed
 * NTT layout: slot j holds a(ψ^(2·br(j)+1)), so σ_t(a) at slot j reads
 * the input slot whose exponent is t·(2·br(j)+1) mod 2N. Pure permutation,
 * no sign flips (signs are absorbed by the evaluation points).
 */
class AutoPermutation
{
  public:
    AutoPermutation(size_t n, u64 t);

    /** out[j] = in[source(j)]. */
    void apply(const u64 *in, u64 *out) const;

    size_t source(size_t j) const { return src_[j]; }
    size_t degree() const { return src_.size(); }

  private:
    std::vector<uint32_t> src_;
};

} // namespace effact

#endif // EFFACT_MATH_AUTOMORPHISM_H
