/**
 * @file
 * AVX2 kernel tier: 4 x u64 lanes for the NTT butterflies, the
 * Barrett/Montgomery modular multiplies and the BConv MAC chains.
 *
 * This translation unit is the only one compiled with -mavx2 (set per
 * source file in src/CMakeLists.txt); it is reached exclusively
 * through the dispatch table, which only selects it after a CPUID
 * check, so no AVX2 instruction can execute on a host without the
 * feature. On builds where the compiler cannot target AVX2 the file
 * degrades to a stub returning nullptr and dispatch falls back to the
 * scalar oracle.
 *
 * Exactness. Every kernel returns the canonical representative in
 * [0, q) — the same unique value the scalar Barrett/Montgomery code
 * computes — so the tiers are exact-`u64`-identical by construction:
 *
 *  - 64x64->128 products are composed from four widening 32-bit
 *    multiplies (`_mm256_mul_epu32`) with exact carry propagation.
 *  - Barrett reduction replays the scalar algorithm lane-parallel
 *    (same mu, same k, correction loop unrolled to its worst case of
 *    two branchless conditional subtracts).
 *  - Montgomery REDC uses the standard identity lo64(t + m*q) == 0,
 *    so the 128-bit carry is just (lo64(t) != 0).
 *  - NTT twiddle multiplies use Shoup pre-scaling (tables precomputed
 *    per plan, laid out bit-reversed so lane-parallel stages read
 *    them contiguously); the result is reduced to canonical form, so
 *    it equals the scalar Barrett butterfly bit for bit.
 *
 * All comparisons ride signed 64-bit compares: every compared value is
 * < 2^63 (q < 2^62, intermediate residues < 3q < 2^61 for Barrett
 * moduli, < 2q < 2^63 for Montgomery).
 */
#include "math/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace effact {
namespace kernels {
namespace {

inline __m256i
loadu(const u64 *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}

inline void
storeu(u64 *p, __m256i v)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
}

/** Per-lane 64x64 -> 128 product from widening 32-bit multiplies. */
inline void
mul64wide(__m256i a, __m256i b, __m256i &hi, __m256i &lo)
{
    const __m256i mask32 = _mm256_set1_epi64x(0xFFFFFFFFll);
    const __m256i a_hi = _mm256_srli_epi64(a, 32);
    const __m256i b_hi = _mm256_srli_epi64(b, 32);
    const __m256i ll = _mm256_mul_epu32(a, b);
    const __m256i lh = _mm256_mul_epu32(a, b_hi);
    const __m256i hl = _mm256_mul_epu32(a_hi, b);
    const __m256i hh = _mm256_mul_epu32(a_hi, b_hi);
    // Cross-term column sum: < 3 * 2^32, never overflows a lane.
    const __m256i cross = _mm256_add_epi64(
        _mm256_srli_epi64(ll, 32),
        _mm256_add_epi64(_mm256_and_si256(lh, mask32),
                         _mm256_and_si256(hl, mask32)));
    lo = _mm256_add_epi64(
        ll, _mm256_slli_epi64(_mm256_add_epi64(lh, hl), 32));
    hi = _mm256_add_epi64(
        _mm256_add_epi64(hh, _mm256_srli_epi64(cross, 32)),
        _mm256_add_epi64(_mm256_srli_epi64(lh, 32),
                         _mm256_srli_epi64(hl, 32)));
}

/** Per-lane low 64 bits of a*b. */
inline __m256i
mullo64(__m256i a, __m256i b)
{
    const __m256i a_hi = _mm256_srli_epi64(a, 32);
    const __m256i b_hi = _mm256_srli_epi64(b, 32);
    const __m256i ll = _mm256_mul_epu32(a, b);
    const __m256i cross =
        _mm256_add_epi64(_mm256_mul_epu32(a, b_hi),
                         _mm256_mul_epu32(a_hi, b));
    return _mm256_add_epi64(ll, _mm256_slli_epi64(cross, 32));
}

/** Per-lane high 64 bits of a*b. */
inline __m256i
mulhi64(__m256i a, __m256i b)
{
    __m256i hi, lo;
    mul64wide(a, b, hi, lo);
    return hi;
}

/** r >= q ? r - q : r, for r, q < 2^63 (signed compare is safe). */
inline __m256i
condSubQ(__m256i r, __m256i q)
{
    // q > r  <=>  r < q: keep; else subtract q.
    const __m256i keep = _mm256_cmpgt_epi64(q, r);
    return _mm256_sub_epi64(r, _mm256_andnot_si256(keep, q));
}

/** addMod lane-parallel: a, b < q. */
inline __m256i
addMod4(__m256i a, __m256i b, __m256i q)
{
    return condSubQ(_mm256_add_epi64(a, b), q);
}

/** subMod lane-parallel: a, b < q. */
inline __m256i
subMod4(__m256i a, __m256i b, __m256i q)
{
    const __m256i borrow = _mm256_cmpgt_epi64(b, a);
    return _mm256_add_epi64(_mm256_sub_epi64(a, b),
                            _mm256_and_si256(borrow, q));
}

/**
 * Shoup multiply: x * w mod q with w < q and wsh = floor(w * 2^64 / q)
 * (per-lane w/wsh). Exact canonical result for any 64-bit x.
 */
inline __m256i
shoupMul4(__m256i x, __m256i w, __m256i wsh, __m256i q)
{
    const __m256i qhat = mulhi64(x, wsh);
    const __m256i r =
        _mm256_sub_epi64(mullo64(x, w), mullo64(qhat, q));
    return condSubQ(r, q);
}

/** Runtime-count 64-bit shifts (stage shift amounts vary per call). */
inline __m256i
sllVar(__m256i a, unsigned count)
{
    return _mm256_sll_epi64(a, _mm_cvtsi32_si128(static_cast<int>(count)));
}

inline __m256i
srlVar(__m256i a, unsigned count)
{
    return _mm256_srl_epi64(a, _mm_cvtsi32_si128(static_cast<int>(count)));
}

/**
 * Lane-parallel replay of Barrett::reduce on x = a*b (per-lane b):
 * q1 = x >> (k-1); q3 = (q1 * mu) >> (k+1); r = x - q3*q, then the
 * worst-case two correction subtracts, branchless.
 */
inline __m256i
barrettMul4(__m256i a, __m256i b, __m256i q, __m256i mu, unsigned k)
{
    __m256i x_hi, x_lo;
    mul64wide(a, b, x_hi, x_lo);
    // x < q^2 < 2^(2k), so q1 = x >> (k-1) < 2^(k+1) fits a lane.
    const __m256i q1 = _mm256_or_si256(sllVar(x_hi, 65 - k),
                                       srlVar(x_lo, k - 1));
    __m256i q2_hi, q2_lo;
    mul64wide(q1, mu, q2_hi, q2_lo);
    const __m256i q3 = _mm256_or_si256(sllVar(q2_hi, 63 - k),
                                       srlVar(q2_lo, k + 1));
    // True remainder is in [0, 3q) and fits 64 bits, so wrapping
    // low-64 arithmetic computes it exactly.
    __m256i r = _mm256_sub_epi64(x_lo, mullo64(q3, q));
    r = condSubQ(r, q);
    return condSubQ(r, q);
}

/** [w0, w1] (two u64s at p) -> [w0, w0, w1, w1]. */
inline __m256i
expandPairs(const u64 *p)
{
    const __m128i two = _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
    return _mm256_permute4x64_epi64(_mm256_castsi128_si256(two), 0x50);
}

// --- elementwise kernels --------------------------------------------------

void
addModAvx2(u64 *dst, const u64 *a, const u64 *b, size_t n, u64 q)
{
    const __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
    size_t i = 0;
    for (; i + 4 <= n; i += 4)
        storeu(dst + i, addMod4(loadu(a + i), loadu(b + i), qv));
    for (; i < n; ++i)
        dst[i] = addMod(a[i], b[i], q);
}

void
subModAvx2(u64 *dst, const u64 *a, const u64 *b, size_t n, u64 q)
{
    const __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
    size_t i = 0;
    for (; i + 4 <= n; i += 4)
        storeu(dst + i, subMod4(loadu(a + i), loadu(b + i), qv));
    for (; i < n; ++i)
        dst[i] = subMod(a[i], b[i], q);
}

void
negModAvx2(u64 *dst, const u64 *a, size_t n, u64 q)
{
    const __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
    const __m256i zero = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x = loadu(a + i);
        const __m256i is_zero = _mm256_cmpeq_epi64(x, zero);
        const __m256i r =
            _mm256_andnot_si256(is_zero, _mm256_sub_epi64(qv, x));
        storeu(dst + i, r);
    }
    for (; i < n; ++i)
        dst[i] = negMod(a[i], q);
}

void
mulModAvx2(u64 *dst, const u64 *a, const u64 *b, size_t n, const Barrett &br)
{
    const __m256i qv = _mm256_set1_epi64x(static_cast<long long>(br.modulus()));
    const __m256i muv = _mm256_set1_epi64x(static_cast<long long>(br.mu()));
    const unsigned k = br.kBits();
    size_t i = 0;
    for (; i + 4 <= n; i += 4)
        storeu(dst + i,
               barrettMul4(loadu(a + i), loadu(b + i), qv, muv, k));
    for (; i < n; ++i)
        dst[i] = br.mul(a[i], b[i]);
}

void
mulConstAvx2(u64 *dst, const u64 *a, size_t n, u64 c, const Barrett &br)
{
    const u64 q = br.modulus();
    const u64 csh = shoupPrecompute(c, q); // hoisted once per call
    const __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
    const __m256i cv = _mm256_set1_epi64x(static_cast<long long>(c));
    const __m256i cshv = _mm256_set1_epi64x(static_cast<long long>(csh));
    size_t i = 0;
    for (; i + 4 <= n; i += 4)
        storeu(dst + i, shoupMul4(loadu(a + i), cv, cshv, qv));
    for (; i < n; ++i)
        dst[i] = br.mul(a[i], c);
}

void
macConstAvx2(u64 *dst, const u64 *a, size_t n, u64 c, const Barrett &br)
{
    const u64 q = br.modulus();
    const u64 csh = shoupPrecompute(c, q);
    const __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
    const __m256i cv = _mm256_set1_epi64x(static_cast<long long>(c));
    const __m256i cshv = _mm256_set1_epi64x(static_cast<long long>(csh));
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i prod = shoupMul4(loadu(a + i), cv, cshv, qv);
        storeu(dst + i, addMod4(loadu(dst + i), prod, qv));
    }
    for (; i < n; ++i)
        dst[i] = addMod(dst[i], br.mul(a[i], c), q);
}

// The constant-multiplier Montgomery kernels don't replay REDC per
// element: REDC(a*c) = a * (c*R^-1 mod q) mod q, and canonical residues
// are unique, so hoisting d = REDC(c) once per call and Shoup-multiplying
// by d gives the exact scalar outputs at shoupMul cost (2 muls vs the
// ~3 muls + carry chain of a lane-parallel REDC).

void
montMulConstAvx2(u64 *dst, const u64 *a, size_t n, u64 c,
                 const Montgomery &mont)
{
    const u64 q = mont.modulus();
    const u64 d = mont.reduce(c); // c * R^-1 mod q, canonical
    const u64 dsh = shoupPrecompute(d, q);
    const __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
    const __m256i dv = _mm256_set1_epi64x(static_cast<long long>(d));
    const __m256i dshv = _mm256_set1_epi64x(static_cast<long long>(dsh));
    size_t i = 0;
    for (; i + 4 <= n; i += 4)
        storeu(dst + i, shoupMul4(loadu(a + i), dv, dshv, qv));
    for (; i < n; ++i)
        dst[i] = mont.mul(a[i], c);
}

void
montMacConstAvx2(u64 *dst, const u64 *a, size_t n, u64 c,
                 const Montgomery &mont)
{
    const u64 q = mont.modulus();
    const u64 d = mont.reduce(c);
    const u64 dsh = shoupPrecompute(d, q);
    const __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
    const __m256i dv = _mm256_set1_epi64x(static_cast<long long>(d));
    const __m256i dshv = _mm256_set1_epi64x(static_cast<long long>(dsh));
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i prod = shoupMul4(loadu(a + i), dv, dshv, qv);
        storeu(dst + i, addMod4(loadu(dst + i), prod, qv));
    }
    for (; i < n; ++i)
        dst[i] = addMod(dst[i], mont.mul(a[i], c), q);
}

// --- NTT ------------------------------------------------------------------

/** Scalar CT butterfly for the tiny-stage tails (oracle arithmetic). */
inline void
ctButterfly(u64 *a, size_t j, size_t t, u64 w, u64 q, const Barrett &br)
{
    const u64 u = a[j];
    const u64 v = br.mul(a[j + t], w);
    a[j] = addMod(u, v, q);
    a[j + t] = subMod(u, v, q);
}

/** Scalar GS butterfly for the tiny-stage tails. */
inline void
gsButterfly(u64 *a, size_t j, size_t t, u64 w, u64 q, const Barrett &br)
{
    const u64 u = a[j];
    const u64 v = a[j + t];
    a[j] = addMod(u, v, q);
    a[j + t] = br.mul(subMod(u, v, q), w);
}

void
nttForwardAvx2(u64 *a, size_t n, const NttTables &tb)
{
    const u64 q = tb.q;
    const Barrett &br = *tb.barrett;
    const __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
    size_t t = n;
    for (size_t m = 1; m < n; m <<= 1) {
        t >>= 1;
        if (t >= 4) {
            // Lane-parallel across the inner j-loop: one twiddle per
            // block, broadcast; t is a power of two, so no j tail.
            for (size_t i = 0; i < m; ++i) {
                const __m256i wv = _mm256_set1_epi64x(
                    static_cast<long long>(tb.roots[m + i]));
                const __m256i wsv = _mm256_set1_epi64x(
                    static_cast<long long>(tb.rootsShoup[m + i]));
                u64 *p = a + 2 * i * t;
                for (size_t j = 0; j < t; j += 4) {
                    const __m256i u = loadu(p + j);
                    const __m256i v =
                        shoupMul4(loadu(p + j + t), wv, wsv, qv);
                    storeu(p + j, addMod4(u, v, qv));
                    storeu(p + j + t, subMod4(u, v, qv));
                }
            }
        } else if (t == 2) {
            // Two i-blocks per vector: [u0 u1 v0 v1 | u2 u3 v2 v3];
            // twiddles are contiguous at roots[m + i], duplicated into
            // lane pairs.
            size_t i = 0;
            for (; i + 2 <= m; i += 2) {
                u64 *p = a + 4 * i;
                const __m256i blk_a = loadu(p);
                const __m256i blk_b = loadu(p + 4);
                const __m256i u =
                    _mm256_permute2x128_si256(blk_a, blk_b, 0x20);
                const __m256i v0 =
                    _mm256_permute2x128_si256(blk_a, blk_b, 0x31);
                const __m256i wv = expandPairs(tb.roots + m + i);
                const __m256i wsv = expandPairs(tb.rootsShoup + m + i);
                const __m256i v = shoupMul4(v0, wv, wsv, qv);
                const __m256i lo = addMod4(u, v, qv);
                const __m256i hi = subMod4(u, v, qv);
                storeu(p, _mm256_permute2x128_si256(lo, hi, 0x20));
                storeu(p + 4, _mm256_permute2x128_si256(lo, hi, 0x31));
            }
            for (; i < m; ++i) {
                const u64 w = tb.roots[m + i];
                ctButterfly(a, 4 * i, 2, w, q, br);
                ctButterfly(a, 4 * i + 1, 2, w, q, br);
            }
        } else { // t == 1: four interleaved butterflies per 8 elements
            size_t i = 0;
            for (; i + 4 <= m; i += 4) {
                u64 *p = a + 2 * i;
                const __m256i blk_a = loadu(p);     // [u0 v0 u1 v1]
                const __m256i blk_b = loadu(p + 4); // [u2 v2 u3 v3]
                const __m256i u = _mm256_unpacklo_epi64(blk_a, blk_b);
                const __m256i v0 = _mm256_unpackhi_epi64(blk_a, blk_b);
                // roots[m+i..m+i+3] = [w0 w1 w2 w3] -> unpack order
                // [w0 w2 w1 w3] to match the data scramble.
                const __m256i wv = _mm256_permute4x64_epi64(
                    loadu(tb.roots + m + i), 0xD8);
                const __m256i wsv = _mm256_permute4x64_epi64(
                    loadu(tb.rootsShoup + m + i), 0xD8);
                const __m256i v = shoupMul4(v0, wv, wsv, qv);
                const __m256i lo = addMod4(u, v, qv);
                const __m256i hi = subMod4(u, v, qv);
                storeu(p, _mm256_unpacklo_epi64(lo, hi));
                storeu(p + 4, _mm256_unpackhi_epi64(lo, hi));
            }
            for (; i < m; ++i)
                ctButterfly(a, 2 * i, 1, tb.roots[m + i], q, br);
        }
    }
}

void
nttInverseAvx2(u64 *a, size_t n, const NttTables &tb)
{
    const u64 q = tb.q;
    const Barrett &br = *tb.barrett;
    const __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
    size_t t = 1;
    for (size_t m = n; m > 1; m >>= 1) {
        const size_t h = m >> 1;
        if (t >= 4) {
            for (size_t i = 0; i < h; ++i) {
                const __m256i wv = _mm256_set1_epi64x(
                    static_cast<long long>(tb.invRoots[h + i]));
                const __m256i wsv = _mm256_set1_epi64x(
                    static_cast<long long>(tb.invRootsShoup[h + i]));
                u64 *p = a + 2 * i * t;
                for (size_t j = 0; j < t; j += 4) {
                    const __m256i u = loadu(p + j);
                    const __m256i v = loadu(p + j + t);
                    storeu(p + j, addMod4(u, v, qv));
                    storeu(p + j + t,
                           shoupMul4(subMod4(u, v, qv), wv, wsv, qv));
                }
            }
        } else if (t == 2) {
            size_t i = 0;
            for (; i + 2 <= h; i += 2) {
                u64 *p = a + 4 * i;
                const __m256i blk_a = loadu(p);
                const __m256i blk_b = loadu(p + 4);
                const __m256i u =
                    _mm256_permute2x128_si256(blk_a, blk_b, 0x20);
                const __m256i v =
                    _mm256_permute2x128_si256(blk_a, blk_b, 0x31);
                const __m256i wv = expandPairs(tb.invRoots + h + i);
                const __m256i wsv = expandPairs(tb.invRootsShoup + h + i);
                const __m256i lo = addMod4(u, v, qv);
                const __m256i hi =
                    shoupMul4(subMod4(u, v, qv), wv, wsv, qv);
                storeu(p, _mm256_permute2x128_si256(lo, hi, 0x20));
                storeu(p + 4, _mm256_permute2x128_si256(lo, hi, 0x31));
            }
            for (; i < h; ++i) {
                const u64 w = tb.invRoots[h + i];
                gsButterfly(a, 4 * i, 2, w, q, br);
                gsButterfly(a, 4 * i + 1, 2, w, q, br);
            }
        } else { // t == 1
            size_t i = 0;
            for (; i + 4 <= h; i += 4) {
                u64 *p = a + 2 * i;
                const __m256i blk_a = loadu(p);
                const __m256i blk_b = loadu(p + 4);
                const __m256i u = _mm256_unpacklo_epi64(blk_a, blk_b);
                const __m256i v = _mm256_unpackhi_epi64(blk_a, blk_b);
                const __m256i wv = _mm256_permute4x64_epi64(
                    loadu(tb.invRoots + h + i), 0xD8);
                const __m256i wsv = _mm256_permute4x64_epi64(
                    loadu(tb.invRootsShoup + h + i), 0xD8);
                const __m256i lo = addMod4(u, v, qv);
                const __m256i hi =
                    shoupMul4(subMod4(u, v, qv), wv, wsv, qv);
                storeu(p, _mm256_unpacklo_epi64(lo, hi));
                storeu(p + 4, _mm256_unpackhi_epi64(lo, hi));
            }
            for (; i < h; ++i)
                gsButterfly(a, 2 * i, 1, tb.invRoots[h + i], q, br);
        }
        t <<= 1;
    }
}

} // namespace

const KernelTable *
avx2KernelsOrNull()
{
    static const KernelTable table = {
        addModAvx2,       subModAvx2,       negModAvx2,
        mulModAvx2,       mulConstAvx2,     macConstAvx2,
        montMulConstAvx2, montMacConstAvx2,
        nttForwardAvx2,   nttInverseAvx2,
    };
    return &table;
}

} // namespace kernels
} // namespace effact

#else // !__AVX2__

namespace effact {
namespace kernels {

const KernelTable *
avx2KernelsOrNull()
{
    return nullptr;
}

} // namespace kernels
} // namespace effact

#endif
