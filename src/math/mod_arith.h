/**
 * @file
 * 64-bit modular arithmetic used throughout the RNS/CKKS substrate.
 *
 * All moduli are < 2^59 (the paper uses log q = 54-bit limb primes) so
 * that add/sub never overflow and Barrett reduction has headroom.
 * Multiplication goes through a 128-bit product.
 */
#ifndef EFFACT_MATH_MOD_ARITH_H
#define EFFACT_MATH_MOD_ARITH_H

#include <cstdint>

namespace effact {

using u64 = uint64_t;
using u128 = unsigned __int128;
using i64 = int64_t;

/** (a + b) mod q, for a, b < q. */
inline u64
addMod(u64 a, u64 b, u64 q)
{
    u64 s = a + b;
    return s >= q ? s - q : s;
}

/** (a - b) mod q, for a, b < q. */
inline u64
subMod(u64 a, u64 b, u64 q)
{
    return a >= b ? a - b : a + q - b;
}

/** (a * b) mod q via 128-bit product. */
inline u64
mulMod(u64 a, u64 b, u64 q)
{
    return static_cast<u64>((static_cast<u128>(a) * b) % q);
}

/** -a mod q, for a < q. */
inline u64
negMod(u64 a, u64 q)
{
    return a == 0 ? 0 : q - a;
}

/** a^e mod q by square-and-multiply. */
u64 powMod(u64 a, u64 e, u64 q);

/** Modular inverse of a mod q (q prime). */
u64 invMod(u64 a, u64 q);

/** Reduces a signed value into [0, q). */
inline u64
reduceSigned(i64 v, u64 q)
{
    i64 m = v % static_cast<i64>(q);
    if (m < 0)
        m += static_cast<i64>(q);
    return static_cast<u64>(m);
}

/** Centered representative of a mod q, in [-q/2, q/2). */
inline i64
centered(u64 a, u64 q)
{
    return a >= (q + 1) / 2 ? static_cast<i64>(a) - static_cast<i64>(q)
                            : static_cast<i64>(a);
}

/**
 * Barrett reducer for a fixed modulus q < 2^59.
 *
 * Precomputes mu = floor(2^(2k) / q) with k = bits(q); `reduce` then
 * replaces the hardware divide with two multiplies and a correction loop
 * that runs at most twice.
 */
class Barrett
{
  public:
    Barrett() : q_(0), mu_(0), k_(0) {}
    explicit Barrett(u64 q);

    u64 modulus() const { return q_; }

    /** floor(2^(2k) / q) — exposed for the vectorized kernel tiers. */
    u64 mu() const { return mu_; }

    /** Bit length k of q — exposed for the vectorized kernel tiers. */
    unsigned kBits() const { return k_; }

    /** x mod q for x < q^2. */
    u64
    reduce(u128 x) const
    {
        u128 q1 = x >> (k_ - 1);
        u128 q2 = q1 * mu_;
        u64 q3 = static_cast<u64>(q2 >> (k_ + 1));
        u64 r = static_cast<u64>(x - static_cast<u128>(q3) * q_);
        while (r >= q_)
            r -= q_;
        return r;
    }

    /** (a * b) mod q. */
    u64
    mul(u64 a, u64 b) const
    {
        return reduce(static_cast<u128>(a) * b);
    }

  private:
    u64 q_;
    u64 mu_; ///< floor(2^(2k) / q)
    unsigned k_; ///< bit length of q
};

} // namespace effact

#endif // EFFACT_MATH_MOD_ARITH_H
