/**
 * @file
 * Scalar kernel tier — the dispatchable oracle.
 *
 * These are the original (pre-SIMD) loop bodies of Ntt::forward /
 * Ntt::transformBackward, the RnsPoly elementwise ops and the
 * BaseConverter inner loops, moved here verbatim. Every other tier is
 * pinned exact-`u64`-identical to these functions by
 * tests/test_simd_kernels.cc; do not "optimize" them — their value is
 * being the reference.
 */
#include "math/kernels.h"

namespace effact {
namespace kernels {
namespace {

void
addModScalar(u64 *dst, const u64 *a, const u64 *b, size_t n, u64 q)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = addMod(a[i], b[i], q);
}

void
subModScalar(u64 *dst, const u64 *a, const u64 *b, size_t n, u64 q)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = subMod(a[i], b[i], q);
}

void
negModScalar(u64 *dst, const u64 *a, size_t n, u64 q)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = negMod(a[i], q);
}

void
mulModScalar(u64 *dst, const u64 *a, const u64 *b, size_t n,
             const Barrett &br)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = br.mul(a[i], b[i]);
}

void
mulConstScalar(u64 *dst, const u64 *a, size_t n, u64 c, const Barrett &br)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = br.mul(a[i], c);
}

void
macConstScalar(u64 *dst, const u64 *a, size_t n, u64 c, const Barrett &br)
{
    const u64 q = br.modulus();
    for (size_t i = 0; i < n; ++i)
        dst[i] = addMod(dst[i], br.mul(a[i], c), q);
}

void
montMulConstScalar(u64 *dst, const u64 *a, size_t n, u64 c,
                   const Montgomery &mont)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = mont.mul(a[i], c);
}

void
montMacConstScalar(u64 *dst, const u64 *a, size_t n, u64 c,
                   const Montgomery &mont)
{
    const u64 q = mont.modulus();
    for (size_t i = 0; i < n; ++i)
        dst[i] = addMod(dst[i], mont.mul(a[i], c), q);
}

void
nttForwardScalar(u64 *a, size_t n, const NttTables &tb)
{
    // Cooley-Tukey DIT with merged psi powers (Longa-Naehrig style):
    // natural-order input, bit-reversed-order output.
    const Barrett &barrett = *tb.barrett;
    const u64 q = tb.q;
    size_t t = n;
    for (size_t m = 1; m < n; m <<= 1) {
        t >>= 1;
        for (size_t i = 0; i < m; ++i) {
            const u64 w = tb.roots[m + i];
            const size_t j1 = 2 * i * t;
            for (size_t j = j1; j < j1 + t; ++j) {
                const u64 u = a[j];
                const u64 v = barrett.mul(a[j + t], w);
                a[j] = addMod(u, v, q);
                a[j + t] = subMod(u, v, q);
            }
        }
    }
}

void
nttInverseScalar(u64 *a, size_t n, const NttTables &tb)
{
    // Gentleman-Sande DIF consuming bit-reversed order.
    const Barrett &barrett = *tb.barrett;
    const u64 q = tb.q;
    size_t t = 1;
    for (size_t m = n; m > 1; m >>= 1) {
        const size_t h = m >> 1;
        for (size_t i = 0; i < h; ++i) {
            const u64 w = tb.invRoots[h + i];
            const size_t j1 = 2 * i * t;
            for (size_t j = j1; j < j1 + t; ++j) {
                const u64 u = a[j];
                const u64 v = a[j + t];
                a[j] = addMod(u, v, q);
                a[j + t] = barrett.mul(subMod(u, v, q), w);
            }
        }
        t <<= 1;
    }
}

} // namespace

const KernelTable &
scalarKernels()
{
    static const KernelTable table = {
        addModScalar,      subModScalar,      negModScalar,
        mulModScalar,      mulConstScalar,    macConstScalar,
        montMulConstScalar, montMacConstScalar,
        nttForwardScalar,  nttInverseScalar,
    };
    return table;
}

} // namespace kernels
} // namespace effact
