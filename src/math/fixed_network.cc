#include "math/fixed_network.h"

#include "common/bitops.h"
#include "common/logging.h"

namespace effact {

FixedNetwork::FixedNetwork(size_t lanes) : lanes_(lanes)
{
    EFFACT_ASSERT(isPowerOfTwo(lanes), "lane count must be a power of two");
    const uint32_t bits = log2Exact(lanes);
    wiring_.resize(lanes);
    for (size_t c = 0; c < lanes; ++c)
        wiring_[c] = bitReverse(static_cast<uint32_t>(c), bits);
}

void
FixedNetwork::permuteRow(const u64 *in, u64 *out) const
{
    for (size_t c = 0; c < lanes_; ++c)
        out[c] = in[wiring_[c]];
}

std::vector<u64>
FixedNetwork::transposeFromBitrev(const std::vector<u64> &x_bitrev) const
{
    const size_t rows = lanes_;
    EFFACT_ASSERT(x_bitrev.size() == rows * lanes_,
                  "fixed network expects a square lanes x lanes matrix");
    const uint32_t bits = log2Exact(rows);
    std::vector<u64> out(x_bitrev.size());
    for (size_t r = 0; r < rows; ++r) {
        // SRAM fetch-order change: output row r is input row br(r).
        size_t src_row = bitReverse(static_cast<uint32_t>(r), bits);
        permuteRow(&x_bitrev[src_row * lanes_], &out[r * lanes_]);
    }
    return out;
}

} // namespace effact
