/**
 * @file
 * Kernel-table dispatch: tier -> table, with graceful fallback when a
 * tier's translation unit was built without its instruction set (the
 * AVX2 TU compiles to a stub on non-x86 hosts). The active tier itself
 * is resolved in common/simd.cc from CPUID + `EFFACT_SIMD`.
 */
#include "math/kernels.h"

namespace effact {
namespace kernels {

// Defined in kernels_avx2.cc; returns nullptr when that TU was built
// without AVX2 support.
const KernelTable *avx2KernelsOrNull();

const KernelTable &
forTier(SimdTier tier)
{
    if (tier >= SimdTier::Avx2) {
        if (const KernelTable *t = avx2KernelsOrNull())
            return *t;
    }
    return scalarKernels();
}

} // namespace kernels
} // namespace effact
