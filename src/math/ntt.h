/**
 * @file
 * Negative-wrapped-convolution (NWC) NTT over Z_q[X]/(X^N + 1) (Eq. 1).
 *
 * The forward transform is a Cooley-Tukey decimation-in-time network whose
 * twiddle factors are stored in bit-reversed order, so coefficient vectors
 * never need an explicit bit-reversal pass — exactly the optimization
 * EFFACT applies in hardware (Sec. IV-D3: "perform the bit-reversal
 * operation on twiddle factors rather than the N coefficients"). Output is
 * in bit-reversed evaluation order; the inverse (Gentleman-Sande) consumes
 * that order and restores natural coefficient order.
 *
 * `backwardNoScale` omits the final 1/N multiplication so that callers can
 * fold it into the first BConv constant per Eq. 5.
 */
#ifndef EFFACT_MATH_NTT_H
#define EFFACT_MATH_NTT_H

#include <cstddef>
#include <vector>

#include "common/simd.h"
#include "math/kernels.h"
#include "math/mod_arith.h"

namespace effact {

/** NWC NTT plan for a fixed (N, q) pair. */
class Ntt
{
  public:
    /** Builds tables for ring degree `n` (power of two) and prime q. */
    Ntt(size_t n, u64 q);

    size_t degree() const { return n_; }
    u64 modulus() const { return q_; }

    /** 2N-th primitive root used by this plan. */
    u64 psi() const { return psi_; }

    /** In-place forward NTT: natural coeff order -> bit-reversed eval. */
    void forward(u64 *a) const;

    /** In-place inverse NTT: bit-reversed eval -> natural coeff order. */
    void backward(u64 *a) const;

    /** Inverse NTT without the final 1/N scaling (Eq. 5 merge). */
    void backwardNoScale(u64 *a) const;

    /** N^-1 mod q, the scaling the no-scale variant omits. */
    u64 nInv() const { return nInv_; }

    /** Convenience on vectors (size must be N). */
    void forward(std::vector<u64> &a) const;
    void backward(std::vector<u64> &a) const;

    /**
     * Negacyclic convolution reference: c = a * b mod (X^N + 1, q).
     * O(N^2); used only by tests as ground truth for the NTT path.
     * Pointer spans so callers can pass any u64 storage (plain or
     * aligned vectors).
     */
    static std::vector<u64> negacyclicMulSchoolbook(const u64 *a,
                                                    const u64 *b, size_t n,
                                                    u64 q);

    /**
     * Twiddle tables in kernel-dispatch form (bit-reversed roots plus
     * their Shoup pre-scaled images) — what the SIMD tiers consume.
     */
    kernels::NttTables kernelTables() const;

  private:
    void transformBackward(u64 *a, bool scale) const;

    size_t n_;
    u64 q_;
    u64 psi_;
    u64 nInv_;
    Barrett barrett_;
    AlignedU64Vec rootsBitrev_;      ///< psi^k, k bit-reversed, CT order
    AlignedU64Vec rootsShoup_;       ///< floor(rootsBitrev * 2^64 / q)
    AlignedU64Vec invRootsBitrev_;   ///< psi^-k for the GS network
    AlignedU64Vec invRootsShoup_;    ///< floor(invRootsBitrev * 2^64 / q)
};

} // namespace effact

#endif // EFFACT_MATH_NTT_H
