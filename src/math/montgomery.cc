#include "math/montgomery.h"

#include "common/logging.h"

namespace effact {

Montgomery::Montgomery(u64 q) : q_(q)
{
    EFFACT_ASSERT((q & 1) == 1 && q >= 3 && q < (1ULL << 62),
                  "Montgomery modulus must be odd and < 2^62");

    // Newton iteration for q^-1 mod 2^64: each step doubles precision.
    u64 inv = q; // correct mod 2^3
    for (int i = 0; i < 6; ++i)
        inv *= 2 - q * inv;
    qInvNeg_ = ~inv + 1; // -q^-1 mod 2^64

    // R mod q = 2^64 mod q.
    r1_ = static_cast<u64>(((static_cast<u128>(1) << 64)) % q);
    r2_ = mulMod(r1_, r1_, q);
}

} // namespace effact
