#include "math/cheby.h"

#include <cmath>

#include "common/logging.h"

namespace effact {

ChebyshevSeries
ChebyshevSeries::fit(const std::function<double(double)> &f, double a,
                     double b, size_t degree)
{
    EFFACT_ASSERT(b > a, "invalid Chebyshev interval");
    const size_t n = degree + 1;
    ChebyshevSeries s;
    s.a_ = a;
    s.b_ = b;
    s.coeffs_.assign(n, 0.0);

    // Sample f at the Chebyshev nodes of the interval.
    std::vector<double> fv(n);
    for (size_t k = 0; k < n; ++k) {
        double theta = M_PI * (k + 0.5) / n;
        double y = std::cos(theta);
        double x = 0.5 * (b - a) * y + 0.5 * (a + b);
        fv[k] = f(x);
    }
    for (size_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (size_t k = 0; k < n; ++k)
            acc += fv[k] * std::cos(M_PI * j * (k + 0.5) / n);
        s.coeffs_[j] = 2.0 * acc / n;
    }
    return s;
}

double
ChebyshevSeries::normalize(double x) const
{
    return (2.0 * x - (a_ + b_)) / (b_ - a_);
}

double
ChebyshevSeries::eval(double x) const
{
    const double y = normalize(x);
    // Clenshaw recurrence.
    double b1 = 0.0, b2 = 0.0;
    for (size_t j = coeffs_.size(); j-- > 1;) {
        double t = 2.0 * y * b1 - b2 + coeffs_[j];
        b2 = b1;
        b1 = t;
    }
    return y * b1 - b2 + 0.5 * coeffs_[0];
}

} // namespace effact
