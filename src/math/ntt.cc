#include "math/ntt.h"

#include "common/bitops.h"
#include "common/logging.h"
#include "math/primes.h"

namespace effact {

Ntt::Ntt(size_t n, u64 q) : n_(n), q_(q), barrett_(q)
{
    EFFACT_ASSERT(isPowerOfTwo(n) && n >= 2, "NTT size must be a power of 2");
    EFFACT_ASSERT((q - 1) % (2 * n) == 0,
                  "modulus %llu is not NTT-friendly for N=%zu",
                  static_cast<unsigned long long>(q), n);

    psi_ = findPrimitiveRoot(2 * static_cast<u64>(n), q);
    nInv_ = invMod(static_cast<u64>(n), q);

    const uint32_t logn = log2Exact(n);
    rootsBitrev_.resize(n);
    invRootsBitrev_.resize(n);
    rootsShoup_.resize(n);
    invRootsShoup_.resize(n);
    const u64 psi_inv = invMod(psi_, q);
    u64 fwd = 1;
    u64 inv = 1;
    std::vector<u64> fwd_pow(n), inv_pow(n);
    for (size_t i = 0; i < n; ++i) {
        fwd_pow[i] = fwd;
        inv_pow[i] = inv;
        fwd = mulMod(fwd, psi_, q);
        inv = mulMod(inv, psi_inv, q);
    }
    for (size_t i = 0; i < n; ++i) {
        uint32_t r = bitReverse(static_cast<uint32_t>(i), logn);
        rootsBitrev_[i] = fwd_pow[r];
        invRootsBitrev_[i] = inv_pow[r];
        // Shoup pre-scaled images, stored in the same bit-reversed
        // layout so every butterfly stage reads both tables with the
        // same contiguous access pattern.
        rootsShoup_[i] = kernels::shoupPrecompute(rootsBitrev_[i], q);
        invRootsShoup_[i] = kernels::shoupPrecompute(invRootsBitrev_[i], q);
    }
}

kernels::NttTables
Ntt::kernelTables() const
{
    kernels::NttTables t;
    t.q = q_;
    t.roots = rootsBitrev_.data();
    t.rootsShoup = rootsShoup_.data();
    t.invRoots = invRootsBitrev_.data();
    t.invRootsShoup = invRootsShoup_.data();
    t.barrett = &barrett_;
    return t;
}

void
Ntt::forward(u64 *a) const
{
    kernels::active().nttForward(a, n_, kernelTables());
}

void
Ntt::transformBackward(u64 *a, bool scale) const
{
    const kernels::KernelTable &k = kernels::active();
    k.nttInverse(a, n_, kernelTables());
    if (scale)
        k.mulConstV(a, a, n_, nInv_, barrett_);
}

void
Ntt::backward(u64 *a) const
{
    transformBackward(a, true);
}

void
Ntt::backwardNoScale(u64 *a) const
{
    transformBackward(a, false);
}

void
Ntt::forward(std::vector<u64> &a) const
{
    EFFACT_ASSERT(a.size() == n_, "NTT size mismatch");
    forward(a.data());
}

void
Ntt::backward(std::vector<u64> &a) const
{
    EFFACT_ASSERT(a.size() == n_, "NTT size mismatch");
    backward(a.data());
}

std::vector<u64>
Ntt::negacyclicMulSchoolbook(const u64 *a, const u64 *b, size_t n, u64 q)
{
    std::vector<u64> c(n, 0);
    for (size_t i = 0; i < n; ++i) {
        if (a[i] == 0)
            continue;
        for (size_t j = 0; j < n; ++j) {
            u64 prod = mulMod(a[i], b[j], q);
            size_t k = i + j;
            if (k < n) {
                c[k] = addMod(c[k], prod, q);
            } else {
                // X^N = -1: wrap with sign flip.
                c[k - n] = subMod(c[k - n], prod, q);
            }
        }
    }
    return c;
}

} // namespace effact
