#include "math/ntt.h"

#include "common/bitops.h"
#include "common/logging.h"
#include "math/primes.h"

namespace effact {

Ntt::Ntt(size_t n, u64 q) : n_(n), q_(q), barrett_(q)
{
    EFFACT_ASSERT(isPowerOfTwo(n) && n >= 2, "NTT size must be a power of 2");
    EFFACT_ASSERT((q - 1) % (2 * n) == 0,
                  "modulus %llu is not NTT-friendly for N=%zu",
                  static_cast<unsigned long long>(q), n);

    psi_ = findPrimitiveRoot(2 * static_cast<u64>(n), q);
    nInv_ = invMod(static_cast<u64>(n), q);

    const uint32_t logn = log2Exact(n);
    rootsBitrev_.resize(n);
    invRootsBitrev_.resize(n);
    const u64 psi_inv = invMod(psi_, q);
    u64 fwd = 1;
    u64 inv = 1;
    std::vector<u64> fwd_pow(n), inv_pow(n);
    for (size_t i = 0; i < n; ++i) {
        fwd_pow[i] = fwd;
        inv_pow[i] = inv;
        fwd = mulMod(fwd, psi_, q);
        inv = mulMod(inv, psi_inv, q);
    }
    for (size_t i = 0; i < n; ++i) {
        uint32_t r = bitReverse(static_cast<uint32_t>(i), logn);
        rootsBitrev_[i] = fwd_pow[r];
        invRootsBitrev_[i] = inv_pow[r];
    }
}

void
Ntt::forward(u64 *a) const
{
    // Cooley-Tukey DIT with merged psi powers (Longa-Naehrig style):
    // natural-order input, bit-reversed-order output.
    size_t t = n_;
    for (size_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (size_t i = 0; i < m; ++i) {
            const u64 w = rootsBitrev_[m + i];
            const size_t j1 = 2 * i * t;
            for (size_t j = j1; j < j1 + t; ++j) {
                const u64 u = a[j];
                const u64 v = barrett_.mul(a[j + t], w);
                a[j] = addMod(u, v, q_);
                a[j + t] = subMod(u, v, q_);
            }
        }
    }
}

void
Ntt::transformBackward(u64 *a, bool scale) const
{
    // Gentleman-Sande DIF consuming bit-reversed order.
    size_t t = 1;
    for (size_t m = n_; m > 1; m >>= 1) {
        const size_t h = m >> 1;
        for (size_t i = 0; i < h; ++i) {
            const u64 w = invRootsBitrev_[h + i];
            const size_t j1 = 2 * i * t;
            for (size_t j = j1; j < j1 + t; ++j) {
                const u64 u = a[j];
                const u64 v = a[j + t];
                a[j] = addMod(u, v, q_);
                a[j + t] = barrett_.mul(subMod(u, v, q_), w);
            }
        }
        t <<= 1;
    }
    if (scale) {
        for (size_t i = 0; i < n_; ++i)
            a[i] = barrett_.mul(a[i], nInv_);
    }
}

void
Ntt::backward(u64 *a) const
{
    transformBackward(a, true);
}

void
Ntt::backwardNoScale(u64 *a) const
{
    transformBackward(a, false);
}

void
Ntt::forward(std::vector<u64> &a) const
{
    EFFACT_ASSERT(a.size() == n_, "NTT size mismatch");
    forward(a.data());
}

void
Ntt::backward(std::vector<u64> &a) const
{
    EFFACT_ASSERT(a.size() == n_, "NTT size mismatch");
    backward(a.data());
}

std::vector<u64>
Ntt::negacyclicMulSchoolbook(const std::vector<u64> &a,
                             const std::vector<u64> &b, u64 q)
{
    const size_t n = a.size();
    EFFACT_ASSERT(b.size() == n, "operand size mismatch");
    std::vector<u64> c(n, 0);
    for (size_t i = 0; i < n; ++i) {
        if (a[i] == 0)
            continue;
        for (size_t j = 0; j < n; ++j) {
            u64 prod = mulMod(a[i], b[j], q);
            size_t k = i + j;
            if (k < n) {
                c[k] = addMod(c[k], prod, q);
            } else {
                // X^N = -1: wrap with sign flip.
                c[k - n] = subMod(c[k - n], prod, q);
            }
        }
    }
    return c;
}

} // namespace effact
