#include "math/mod_arith.h"

#include "common/logging.h"

namespace effact {

u64
powMod(u64 a, u64 e, u64 q)
{
    u64 result = 1 % q;
    u64 base = a % q;
    while (e > 0) {
        if (e & 1)
            result = mulMod(result, base, q);
        base = mulMod(base, base, q);
        e >>= 1;
    }
    return result;
}

u64
invMod(u64 a, u64 q)
{
    EFFACT_ASSERT(a % q != 0, "inverse of 0 mod %llu",
                  static_cast<unsigned long long>(q));
    // q is prime in all our uses: Fermat's little theorem.
    return powMod(a % q, q - 2, q);
}

Barrett::Barrett(u64 q) : q_(q)
{
    EFFACT_ASSERT(q >= 2 && q < (1ULL << 59), "Barrett modulus out of range");
    k_ = 64 - static_cast<unsigned>(__builtin_clzll(q));
    // mu = floor(2^(2k) / q); 2k <= 118 so the division fits in u128.
    u128 numerator = static_cast<u128>(1) << (2 * k_);
    mu_ = static_cast<u64>(numerator / q);
}

} // namespace effact
