/**
 * @file
 * NTT-friendly prime generation. An RNS limb prime q must satisfy
 * q ≡ 1 (mod 2N) so that a primitive 2N-th root of unity exists in Z_q,
 * enabling the negative-wrapped-convolution NTT (Sec. II-B).
 */
#ifndef EFFACT_MATH_PRIMES_H
#define EFFACT_MATH_PRIMES_H

#include <cstddef>
#include <vector>

#include "math/mod_arith.h"

namespace effact {

/** Deterministic Miller-Rabin primality test, exact for 64-bit inputs. */
bool isPrime(u64 n);

/**
 * Generates `count` distinct primes of roughly `bits` bits with
 * q ≡ 1 (mod 2N), scanning downward from 2^bits, skipping `exclude`.
 */
std::vector<u64> genNttPrimes(size_t count, unsigned bits, size_t n,
                              const std::vector<u64> &exclude = {});

/** Finds a generator-derived primitive `order`-th root of unity mod q. */
u64 findPrimitiveRoot(u64 order, u64 q);

} // namespace effact

#endif // EFFACT_MATH_PRIMES_H
