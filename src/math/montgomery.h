/**
 * @file
 * Montgomery modular multiplication with single- (SM) and double- (DM)
 * Montgomery representations.
 *
 * Section IV-D5 of the paper: runtime data is kept in SM form
 * (X -> X*R mod q). Constants that must lift a non-Montgomery (NM)
 * intermediate back into SM form are stored in DM form (X -> X*R^2 mod q);
 * multiplying an NM value by a DM constant yields an SM result, merging
 * the Montgomery conversion into BConv (Eq. 5).
 */
#ifndef EFFACT_MATH_MONTGOMERY_H
#define EFFACT_MATH_MONTGOMERY_H

#include "math/mod_arith.h"

namespace effact {

/** Montgomery arithmetic for a fixed odd modulus q < 2^62, R = 2^64. */
class Montgomery
{
  public:
    Montgomery() : q_(0), qInvNeg_(0), r1_(0), r2_(0) {}
    explicit Montgomery(u64 q);

    u64 modulus() const { return q_; }

    /** R mod q, the SM representation of 1. */
    u64 one() const { return r1_; }

    /** R^2 mod q, used to enter the Montgomery domain. */
    u64 rSquared() const { return r2_; }

    /** -q^-1 mod 2^64 — exposed for the vectorized kernel tiers. */
    u64 qInvNeg() const { return qInvNeg_; }

    /**
     * Montgomery reduction: REDC(T) = T * R^-1 mod q for T < q * R.
     */
    u64
    reduce(u128 t) const
    {
        u64 m = static_cast<u64>(t) * qInvNeg_;
        u128 sum = t + static_cast<u128>(m) * q_;
        u64 r = static_cast<u64>(sum >> 64);
        return r >= q_ ? r - q_ : r;
    }

    /** Product of two Montgomery-domain values: (a*b*R^-1) mod q. */
    u64
    mul(u64 a, u64 b) const
    {
        return reduce(static_cast<u128>(a) * b);
    }

    /** NM -> SM: X -> X*R mod q. */
    u64 toMont(u64 x) const { return mul(x, r2_); }

    /** SM -> NM: X*R -> X mod q. */
    u64 fromMont(u64 x) const { return reduce(x); }

    /** NM -> DM: X -> X*R^2 mod q (for merged-conversion constants). */
    u64 toDoubleMont(u64 x) const { return mul(toMont(x), r2_); }

  private:
    u64 q_;
    u64 qInvNeg_; ///< -q^-1 mod 2^64
    u64 r1_;      ///< R mod q
    u64 r2_;      ///< R^2 mod q
};

} // namespace effact

#endif // EFFACT_MATH_MONTGOMERY_H
