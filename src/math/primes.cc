#include "math/primes.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/logging.h"

namespace effact {

namespace {

/** Miller-Rabin witness check. */
bool
witness(u64 a, u64 d, unsigned r, u64 n)
{
    u64 x = powMod(a, d, n);
    if (x == 1 || x == n - 1)
        return false;
    for (unsigned i = 1; i < r; ++i) {
        x = mulMod(x, x, n);
        if (x == n - 1)
            return false;
    }
    return true; // composite witness found
}

} // namespace

bool
isPrime(u64 n)
{
    if (n < 2)
        return false;
    for (u64 p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                  23ULL, 29ULL, 31ULL, 37ULL}) {
        if (n == p)
            return true;
        if (n % p == 0)
            return false;
    }
    u64 d = n - 1;
    unsigned r = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++r;
    }
    // This witness set is deterministic for all 64-bit integers.
    for (u64 a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                  23ULL, 29ULL, 31ULL, 37ULL}) {
        if (witness(a, d, r, n))
            return false;
    }
    return true;
}

std::vector<u64>
genNttPrimes(size_t count, unsigned bits, size_t n,
             const std::vector<u64> &exclude)
{
    EFFACT_ASSERT(isPowerOfTwo(n), "ring degree must be a power of two");
    EFFACT_ASSERT(bits >= log2Exact(2 * n) + 2 && bits <= 59,
                  "prime bit width %u out of range for N=%zu", bits, n);

    const u64 step = 2 * static_cast<u64>(n);
    std::vector<u64> primes;
    // Largest candidate < 2^bits congruent to 1 mod 2N.
    u64 candidate = ((((1ULL << bits) - 1) / step) * step) + 1;
    while (primes.size() < count && candidate > (1ULL << (bits - 1))) {
        if (isPrime(candidate) &&
            std::find(exclude.begin(), exclude.end(), candidate) ==
                exclude.end()) {
            primes.push_back(candidate);
        }
        candidate -= step;
    }
    if (primes.size() < count)
        fatal("could not find %zu NTT primes of %u bits for N=%zu", count,
              bits, n);
    return primes;
}

u64
findPrimitiveRoot(u64 order, u64 q)
{
    EFFACT_ASSERT((q - 1) % order == 0,
                  "no %llu-th root of unity mod %llu",
                  static_cast<unsigned long long>(order),
                  static_cast<unsigned long long>(q));
    const u64 cofactor = (q - 1) / order;
    for (u64 g = 2; g < q; ++g) {
        u64 root = powMod(g, cofactor, q);
        // root has order dividing `order`; check it is exactly `order`
        // by verifying root^(order/2) != 1 (order is a power of two here).
        if (order == 1)
            return 1;
        if (powMod(root, order / 2, q) == q - 1)
            return root;
    }
    panic("no primitive root found (modulus %llu not prime?)",
          static_cast<unsigned long long>(q));
}

} // namespace effact
