/**
 * @file
 * Chebyshev approximation utilities, used by CKKS bootstrapping's EvalMod
 * step to approximate (q/2π)·sin(2πx/q) on the ModRaise range.
 */
#ifndef EFFACT_MATH_CHEBY_H
#define EFFACT_MATH_CHEBY_H

#include <cstddef>
#include <functional>
#include <vector>

namespace effact {

/** Chebyshev series c_0/2 + sum c_k T_k(y) on an interval [a, b]. */
class ChebyshevSeries
{
  public:
    /**
     * Fits `degree + 1` coefficients to f over [a, b] via the classic
     * Chebyshev-node projection.
     */
    static ChebyshevSeries fit(const std::function<double(double)> &f,
                               double a, double b, size_t degree);

    /** Clenshaw evaluation (double-precision reference). */
    double eval(double x) const;

    const std::vector<double> &coeffs() const { return coeffs_; }
    double lower() const { return a_; }
    double upper() const { return b_; }
    size_t degree() const { return coeffs_.empty() ? 0 : coeffs_.size() - 1; }

    /** Maps x in [a,b] to y in [-1,1]. */
    double normalize(double x) const;

  private:
    std::vector<double> coeffs_;
    double a_ = -1.0;
    double b_ = 1.0;
};

} // namespace effact

#endif // EFFACT_MATH_CHEBY_H
