#include "math/bigint.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace effact {

BigInt::BigInt(u64 v)
{
    if (v != 0)
        words_.push_back(v);
}

bool
BigInt::isZero() const
{
    return words_.empty();
}

void
BigInt::trim()
{
    while (!words_.empty() && words_.back() == 0)
        words_.pop_back();
}

void
BigInt::add(const BigInt &other)
{
    const size_t n = std::max(words_.size(), other.words_.size());
    words_.resize(n, 0);
    u64 carry = 0;
    for (size_t i = 0; i < n; ++i) {
        u128 s = static_cast<u128>(words_[i]) + carry +
                 (i < other.words_.size() ? other.words_[i] : 0);
        words_[i] = static_cast<u64>(s);
        carry = static_cast<u64>(s >> 64);
    }
    if (carry)
        words_.push_back(carry);
}

void
BigInt::sub(const BigInt &other)
{
    EFFACT_ASSERT(compare(other) >= 0, "BigInt::sub would underflow");
    u64 borrow = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
        u64 rhs = (i < other.words_.size() ? other.words_[i] : 0);
        u128 lhs = static_cast<u128>(words_[i]);
        u128 need = static_cast<u128>(rhs) + borrow;
        if (lhs >= need) {
            words_[i] = static_cast<u64>(lhs - need);
            borrow = 0;
        } else {
            words_[i] = static_cast<u64>((static_cast<u128>(1) << 64) +
                                         lhs - need);
            borrow = 1;
        }
    }
    EFFACT_ASSERT(borrow == 0, "BigInt::sub underflow");
    trim();
}

void
BigInt::mulU64(u64 m)
{
    if (m == 0 || words_.empty()) {
        words_.clear();
        return;
    }
    u64 carry = 0;
    for (auto &w : words_) {
        u128 p = static_cast<u128>(w) * m + carry;
        w = static_cast<u64>(p);
        carry = static_cast<u64>(p >> 64);
    }
    if (carry)
        words_.push_back(carry);
}

void
BigInt::addU64(u64 v)
{
    add(BigInt(v));
}

u64
BigInt::modU64(u64 m) const
{
    EFFACT_ASSERT(m != 0, "mod by zero");
    u64 r = 0;
    for (size_t i = words_.size(); i-- > 0;) {
        u128 acc = (static_cast<u128>(r) << 64) | words_[i];
        r = static_cast<u64>(acc % m);
    }
    return r;
}

int
BigInt::compare(const BigInt &other) const
{
    if (words_.size() != other.words_.size())
        return words_.size() < other.words_.size() ? -1 : 1;
    for (size_t i = words_.size(); i-- > 0;) {
        if (words_[i] != other.words_[i])
            return words_[i] < other.words_[i] ? -1 : 1;
    }
    return 0;
}

void
BigInt::shiftRight1()
{
    for (size_t i = 0; i < words_.size(); ++i) {
        words_[i] >>= 1;
        if (i + 1 < words_.size() && (words_[i + 1] & 1))
            words_[i] |= (1ULL << 63);
    }
    trim();
}

double
BigInt::toDouble() const
{
    double acc = 0.0;
    for (size_t i = words_.size(); i-- > 0;)
        acc = acc * 0x1.0p64 + static_cast<double>(words_[i]);
    return acc;
}

std::string
BigInt::toString() const
{
    if (isZero())
        return "0";
    BigInt tmp = *this;
    std::string digits;
    while (!tmp.isZero()) {
        u64 rem = tmp.modU64(10);
        digits.push_back(static_cast<char>('0' + rem));
        // tmp /= 10 via schoolbook division by a word.
        u64 carry = 0;
        for (size_t i = tmp.words_.size(); i-- > 0;) {
            u128 acc = (static_cast<u128>(carry) << 64) | tmp.words_[i];
            tmp.words_[i] = static_cast<u64>(acc / 10);
            carry = static_cast<u64>(acc % 10);
        }
        tmp.trim();
    }
    std::reverse(digits.begin(), digits.end());
    return digits;
}

} // namespace effact
