/**
 * @file
 * Minimal unsigned big integer used for exact CRT reconstruction
 * (Garner's mixed-radix algorithm) when decrypting/decoding RNS
 * polynomials. Only the operations the CRT path needs are provided.
 */
#ifndef EFFACT_MATH_BIGINT_H
#define EFFACT_MATH_BIGINT_H

#include <cstdint>
#include <string>
#include <vector>

#include "math/mod_arith.h"

namespace effact {

/** Arbitrary-precision unsigned integer, little-endian 64-bit words. */
class BigInt
{
  public:
    BigInt() = default;
    explicit BigInt(u64 v);

    bool isZero() const;

    /** this += other. */
    void add(const BigInt &other);

    /** this -= other; requires this >= other. */
    void sub(const BigInt &other);

    /** this *= m (64-bit multiplier). */
    void mulU64(u64 m);

    /** this += v (64-bit addend). */
    void addU64(u64 v);

    /** this mod m (64-bit modulus). */
    u64 modU64(u64 m) const;

    /** -1, 0, 1 comparison. */
    int compare(const BigInt &other) const;

    /** this >>= 1. */
    void shiftRight1();

    /** Approximate conversion to double (may overflow to inf for huge). */
    double toDouble() const;

    /** Decimal string (for diagnostics). */
    std::string toString() const;

    const std::vector<u64> &words() const { return words_; }

  private:
    void trim();

    std::vector<u64> words_; ///< little-endian; empty == zero
};

} // namespace effact

#endif // EFFACT_MATH_BIGINT_H
