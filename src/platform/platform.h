/**
 * @file
 * The EFFACT platform facade: compile a workload with the EFFACT
 * compiler backend, execute it on the cycle-level simulator, and
 * report benchmark-level results. Ablation presets reproduce the
 * incremental design points of Fig. 11.
 */
#ifndef EFFACT_PLATFORM_PLATFORM_H
#define EFFACT_PLATFORM_PLATFORM_H

#include "compiler/pass.h"
#include "ir/workloads.h"
#include "sim/machine.h"

namespace effact {

class AnalysisManager; // compiler/pass_manager.h
class CompileCache;    // compiler/compile_cache.h

/** Benchmark-level result. */
struct PlatformResult
{
    SimReport sim;            ///< one program instance
    StatSet compilerStats;
    /**
     * Per-stage wall-clock of this job (`job.middle.ms`,
     * `job.backend.ms`, `job.sim.ms`; the batch driver adds
     * `job.ir.ms` for workload construction). Host timings, not
     * simulated ones — the one result family that is *not*
     * deterministic; `SweepEngine` aggregates it so perf lanes can see
     * where a job's latency goes.
     */
    StatSet jobStats;
    double benchTimeMs = 0;   ///< program time x workload repeat factor
    double amortizedUs = 0;   ///< per-slot amortized time (bootstrapping)
    double dramGb = 0;        ///< DRAM traffic of the full benchmark
    /** `fingerprint()` of the compiled machine code: equal fingerprints
     *  mean codegen emitted identical instruction streams, which is how
     *  batch runs prove thread-count independence. */
    uint64_t machineFingerprint = 0;
};

/** Compile-and-simulate driver. */
class Platform
{
  public:
    Platform(HardwareConfig hw, CompilerOptions copts);

    /** Runs a workload end-to-end (mutates its IR through the passes) */
    PlatformResult run(Workload &workload) const;

    /**
     * Same, compiling against a caller-owned `AnalysisManager` (see
     * `Compiler::compile`): a batch worker keeps one manager across its
     * jobs so cached analyses are reused without locking. Not safe to
     * share one manager between concurrently running jobs.
     */
    PlatformResult run(Workload &workload, AnalysisManager &analyses) const;

    /**
     * Same, additionally consulting a shared `CompileCache` (may be
     * null = uncached): the hardware-independent middle end of the
     * compile is reused across every `Platform` that shares the cache,
     * so a hardware sweep optimizes each (workload, preset) once. Hits
     * are byte-identical to uncached compiles (see `Compiler::compile`).
     */
    PlatformResult run(Workload &workload, AnalysisManager &analyses,
                       CompileCache *cache) const;

    // --- Staged pieces (the pipelined sweep path) -----------------------
    // `run` is exactly `Compiler::compileMiddle` + `compileBack` +
    // `simulate` + `assemble`; a stage-pipelined driver calls the pieces
    // as separate pool tasks so stages of different jobs overlap. The
    // assembled result is identical either way.

    /** A compiler configured for this platform (hardware-adjusted
     *  options: `sramBytes`, `issueWindow`). */
    Compiler makeCompiler() const { return Compiler(copts_); }

    /** Simulates a compiled program on this platform's hardware. */
    SimReport simulate(const MachineProgram &mp) const;

    /** Assembles the benchmark-level result from the staged pieces. */
    PlatformResult assemble(const Compiler &compiler,
                            const MachineProgram &mp,
                            const Workload &workload, SimReport sim) const;

    const HardwareConfig &hardware() const { return hw_; }
    const CompilerOptions &compilerOptions() const { return copts_; }

    // --- Fig. 11 ablation presets ---------------------------------------

    /** Resource-constrained baseline: no compiler or hardware opts. */
    static CompilerOptions baselineOptions(size_t sram_bytes);

    /** + MAD-style caching (on-chip reuse) without global scheduling. */
    static CompilerOptions madEnhancedOptions(size_t sram_bytes);

    /** + EFFACT global scheduling and streaming memory access. */
    static CompilerOptions streamingOptions(size_t sram_bytes);

    /** Full EFFACT (adds the circuit-level NTT reuse on the hw side). */
    static CompilerOptions fullOptions(size_t sram_bytes);

    /**
     * Full EFFACT plus the PR 10 pass-zoo additions: the rotation-chain
     * algebraic rewrite in the pipeline, the priority spill policy, and
     * the `ResourceModel`-weighted list scheduler. A separate preset —
     * the four Fig. 11 factories above stay byte-for-byte what the
     * paper ablates (and what the perf-lane fingerprints pin).
     */
    static CompilerOptions optimizedOptions(size_t sram_bytes);

  private:
    HardwareConfig hw_;
    CompilerOptions copts_;
};

} // namespace effact

#endif // EFFACT_PLATFORM_PLATFORM_H
