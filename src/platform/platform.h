/**
 * @file
 * The EFFACT platform facade: compile a workload with the EFFACT
 * compiler backend, execute it on the cycle-level simulator, and
 * report benchmark-level results. Ablation presets reproduce the
 * incremental design points of Fig. 11.
 */
#ifndef EFFACT_PLATFORM_PLATFORM_H
#define EFFACT_PLATFORM_PLATFORM_H

#include "compiler/pass.h"
#include "ir/workloads.h"
#include "sim/machine.h"

namespace effact {

class AnalysisManager; // compiler/pass_manager.h
class CompileCache;    // compiler/compile_cache.h

/** Benchmark-level result. */
struct PlatformResult
{
    SimReport sim;            ///< one program instance
    StatSet compilerStats;
    double benchTimeMs = 0;   ///< program time x workload repeat factor
    double amortizedUs = 0;   ///< per-slot amortized time (bootstrapping)
    double dramGb = 0;        ///< DRAM traffic of the full benchmark
    /** `fingerprint()` of the compiled machine code: equal fingerprints
     *  mean codegen emitted identical instruction streams, which is how
     *  batch runs prove thread-count independence. */
    uint64_t machineFingerprint = 0;
};

/** Compile-and-simulate driver. */
class Platform
{
  public:
    Platform(HardwareConfig hw, CompilerOptions copts);

    /** Runs a workload end-to-end (mutates its IR through the passes) */
    PlatformResult run(Workload &workload) const;

    /**
     * Same, compiling against a caller-owned `AnalysisManager` (see
     * `Compiler::compile`): a batch worker keeps one manager across its
     * jobs so cached analyses are reused without locking. Not safe to
     * share one manager between concurrently running jobs.
     */
    PlatformResult run(Workload &workload, AnalysisManager &analyses) const;

    /**
     * Same, additionally consulting a shared `CompileCache` (may be
     * null = uncached): the hardware-independent middle end of the
     * compile is reused across every `Platform` that shares the cache,
     * so a hardware sweep optimizes each (workload, preset) once. Hits
     * are byte-identical to uncached compiles (see `Compiler::compile`).
     */
    PlatformResult run(Workload &workload, AnalysisManager &analyses,
                       CompileCache *cache) const;

    const HardwareConfig &hardware() const { return hw_; }
    const CompilerOptions &compilerOptions() const { return copts_; }

    // --- Fig. 11 ablation presets ---------------------------------------

    /** Resource-constrained baseline: no compiler or hardware opts. */
    static CompilerOptions baselineOptions(size_t sram_bytes);

    /** + MAD-style caching (on-chip reuse) without global scheduling. */
    static CompilerOptions madEnhancedOptions(size_t sram_bytes);

    /** + EFFACT global scheduling and streaming memory access. */
    static CompilerOptions streamingOptions(size_t sram_bytes);

    /** Full EFFACT (adds the circuit-level NTT reuse on the hw side). */
    static CompilerOptions fullOptions(size_t sram_bytes);

  private:
    HardwareConfig hw_;
    CompilerOptions copts_;
};

} // namespace effact

#endif // EFFACT_PLATFORM_PLATFORM_H
