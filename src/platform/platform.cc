#include "platform/platform.h"

#include <chrono>

#include "compiler/pass_manager.h"

namespace effact {

Platform::Platform(HardwareConfig hw, CompilerOptions copts)
    : hw_(std::move(hw)), copts_(copts)
{
    copts_.sramBytes = hw_.sramBytes;
    copts_.issueWindow = hw_.issueWindow;
    copts_.lanes = hw_.lanes;
    copts_.hbmBytesPerCycle = hw_.hbmBytesPerCycle();
}

PlatformResult
Platform::run(Workload &workload) const
{
    AnalysisManager analyses;
    return run(workload, analyses);
}

PlatformResult
Platform::run(Workload &workload, AnalysisManager &analyses) const
{
    return run(workload, analyses, nullptr);
}

PlatformResult
Platform::run(Workload &workload, AnalysisManager &analyses,
              CompileCache *cache) const
{
    using Clock = std::chrono::steady_clock;
    using Ms = std::chrono::duration<double, std::milli>;

    Compiler compiler = makeCompiler();
    const Clock::time_point t0 = Clock::now();
    compiler.compileMiddle(workload.program, analyses, cache);
    const Clock::time_point t1 = Clock::now();
    MachineProgram mp = compiler.compileBack(workload.program, analyses);
    const Clock::time_point t2 = Clock::now();
    SimReport sim = simulate(mp);
    const Clock::time_point t3 = Clock::now();

    PlatformResult result = assemble(compiler, mp, workload,
                                     std::move(sim));
    result.jobStats.set("job.middle.ms", Ms(t1 - t0).count());
    result.jobStats.set("job.backend.ms", Ms(t2 - t1).count());
    result.jobStats.set("job.sim.ms", Ms(t3 - t2).count());
    return result;
}

SimReport
Platform::simulate(const MachineProgram &mp) const
{
    Simulator sim(hw_);
    return sim.run(mp);
}

PlatformResult
Platform::assemble(const Compiler &compiler, const MachineProgram &mp,
                   const Workload &workload, SimReport sim) const
{
    PlatformResult result;
    result.sim = std::move(sim);
    result.compilerStats = compiler.stats();
    result.benchTimeMs = result.sim.timeMs * workload.repeat;
    result.amortizedUs =
        result.benchTimeMs * 1e3 / workload.amortizeFactor;
    result.dramGb = result.sim.dramBytes * workload.repeat / 1e9;
    result.machineFingerprint = fingerprint(mp);
    return result;
}

// Each Fig. 11 design point is one declarative pipeline spec; the
// bool switches are kept consistent for code that inspects them.

CompilerOptions
Platform::baselineOptions(size_t sram_bytes)
{
    CompilerOptions o;
    o.copyProp = false;
    o.constProp = false;
    o.pre = false;
    o.peephole = false;
    o.pipeline = "";
    o.schedule = false;
    o.streaming = false;
    o.sramBytes = sram_bytes;
    return o;
}

CompilerOptions
Platform::madEnhancedOptions(size_t sram_bytes)
{
    // MAD's caching keeps reused data on chip (PRE models the reuse of
    // keys/constants) but schedules data paths by hand within HE
    // primitives: no global scheduling or streaming.
    CompilerOptions o;
    o.peephole = false;
    o.pipeline = "copyprop,constprop,pre";
    o.schedule = false;
    o.streaming = false;
    o.sramBytes = sram_bytes;
    return o;
}

CompilerOptions
Platform::streamingOptions(size_t sram_bytes)
{
    CompilerOptions o;
    o.peephole = false;
    o.pipeline = "copyprop,constprop,pre";
    o.schedule = true;
    o.streaming = true;
    o.sramBytes = sram_bytes;
    return o;
}

CompilerOptions
Platform::fullOptions(size_t sram_bytes)
{
    CompilerOptions o;
    o.pipeline = "copyprop,constprop,pre,peephole";
    o.sramBytes = sram_bytes;
    return o;
}

CompilerOptions
Platform::optimizedOptions(size_t sram_bytes)
{
    // rotalg runs before PRE so composed rotations are canonical when
    // value numbering looks for duplicates; the fixed point re-runs the
    // sequence anyway, so the order only affects sweep count.
    CompilerOptions o;
    o.pipeline = "copyprop,constprop,rotalg,pre,peephole";
    o.regalloc = "priority";
    o.scheduler = "latency";
    o.sramBytes = sram_bytes;
    return o;
}

} // namespace effact
