/**
 * @file
 * Compact BGV scheme (Sec. VI-D: EFFACT accelerates BGV workloads such
 * as HElib's DB-Lookup). Exact integer arithmetic mod a plaintext prime
 * t with SIMD slot packing via the NTT mod t. Single-modulus variant
 * with word-decomposed relinearization — enough depth for the lookup
 * workloads while sharing the residue-polynomial substrate.
 */
#ifndef EFFACT_BGV_BGV_H
#define EFFACT_BGV_BGV_H

#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "math/ntt.h"
#include "rns/poly.h"

namespace effact {

/** BGV parameters. */
struct BgvParams
{
    size_t logN = 10;       ///< ring degree 2^logN
    unsigned logQ = 58;     ///< ciphertext modulus bits
    u64 t = 65537;          ///< plaintext modulus, prime, t ≡ 1 (mod 2N)
    unsigned decompLog = 16;///< relinearization digit width (bits)
    double sigma = 3.2;     ///< error stddev
};

/** BGV ciphertext: (c0, c1) in Eval format over the single-prime basis. */
struct BgvCiphertext
{
    std::vector<std::vector<u64>> polys; ///< Eval-format, size 2 or 3
};

/** Full BGV context: keys, encoder and evaluator in one object. */
class BgvScheme
{
  public:
    BgvScheme(const BgvParams &params, Rng &rng);

    const BgvParams &params() const { return params_; }
    size_t degree() const { return n_; }
    size_t slots() const { return n_; }
    u64 plainModulus() const { return params_.t; }
    u64 q() const { return q_; }

    /** Packs `n` integer slots (mod t) into a plaintext polynomial. */
    std::vector<u64> encode(const std::vector<u64> &slots_vals) const;

    /** Unpacks a plaintext polynomial into slots (mod t). */
    std::vector<u64> decode(const std::vector<u64> &poly) const;

    /** Encrypts an encoded plaintext polynomial. */
    BgvCiphertext encrypt(const std::vector<u64> &plain);

    /** Decrypts to the encoded plaintext polynomial. */
    std::vector<u64> decrypt(const BgvCiphertext &ct) const;

    /** Slot-wise ciphertext addition. */
    BgvCiphertext add(const BgvCiphertext &a, const BgvCiphertext &b) const;

    /** Slot-wise addition of a plaintext. */
    BgvCiphertext addPlain(const BgvCiphertext &a,
                           const std::vector<u64> &plain) const;

    /** Slot-wise multiplication by a plaintext. */
    BgvCiphertext multPlain(const BgvCiphertext &a,
                            const std::vector<u64> &plain) const;

    /** Ciphertext multiplication with relinearization. */
    BgvCiphertext mult(const BgvCiphertext &a, const BgvCiphertext &b)
        const;

    /** Slot rotation by `steps` (generates Galois keys lazily). */
    BgvCiphertext rotate(const BgvCiphertext &ct, int steps);

  private:
    /** Decompose-and-dot key switch of `target` under `key`. */
    void keySwitchAccum(const std::vector<u64> &target_eval,
                        const std::vector<std::vector<u64>> &key_b,
                        const std::vector<std::vector<u64>> &key_a,
                        std::vector<u64> &c0, std::vector<u64> &c1) const;

    /** Builds a decomposition key for source key polynomial s'. */
    void genKswKey(const std::vector<u64> &s_from_eval,
                   std::vector<std::vector<u64>> &key_b,
                   std::vector<std::vector<u64>> &key_a);

    std::vector<u64> sampleErrorTimesT();
    std::vector<u64> sampleUniformEval();

    BgvParams params_;
    size_t n_;
    u64 q_;
    Barrett barrett_;
    std::unique_ptr<Ntt> ntt_q_;
    std::unique_ptr<Ntt> ntt_t_;
    Rng &rng_;

    std::vector<u64> s_eval_; ///< secret key, Eval format mod q
    size_t digits_;           ///< relin decomposition digit count
    std::vector<std::vector<u64>> relin_b_, relin_a_;
    /** Galois keys per element, generated on demand. */
    std::map<u64, std::pair<std::vector<std::vector<u64>>,
                            std::vector<std::vector<u64>>>> galois_;
};

} // namespace effact

#endif // EFFACT_BGV_BGV_H
