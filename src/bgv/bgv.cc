#include "bgv/bgv.h"

#include <cmath>

#include "common/bitops.h"
#include "common/logging.h"
#include "math/automorphism.h"
#include "math/primes.h"

namespace effact {

BgvScheme::BgvScheme(const BgvParams &params, Rng &rng)
    : params_(params), n_(size_t(1) << params.logN), rng_(rng)
{
    EFFACT_ASSERT(isPrime(params.t) && (params.t - 1) % (2 * n_) == 0,
                  "plaintext modulus must be prime with t ≡ 1 (mod 2N)");
    q_ = genNttPrimes(1, params.logQ, n_)[0];
    barrett_ = Barrett(q_);
    ntt_q_ = std::make_unique<Ntt>(n_, q_);
    ntt_t_ = std::make_unique<Ntt>(n_, params.t);

    // Ternary secret.
    std::vector<i64> s_coeff(n_);
    for (auto &c : s_coeff)
        c = rng.ternary();
    s_eval_.resize(n_);
    for (size_t i = 0; i < n_; ++i)
        s_eval_[i] = reduceSigned(s_coeff[i], q_);
    ntt_q_->forward(s_eval_.data());

    digits_ = ceilDiv(params.logQ, params.decompLog);

    // Relinearization key for s^2.
    std::vector<u64> s2(n_);
    for (size_t i = 0; i < n_; ++i)
        s2[i] = barrett_.mul(s_eval_[i], s_eval_[i]);
    genKswKey(s2, relin_b_, relin_a_);
}

std::vector<u64>
BgvScheme::sampleUniformEval()
{
    std::vector<u64> a(n_);
    for (auto &c : a)
        c = rng_.uniform(q_);
    return a;
}

std::vector<u64>
BgvScheme::sampleErrorTimesT()
{
    std::vector<u64> e(n_);
    for (auto &c : e) {
        i64 v = static_cast<i64>(std::llround(rng_.gaussian(params_.sigma)));
        c = reduceSigned(v * static_cast<i64>(params_.t), q_);
    }
    ntt_q_->forward(e.data());
    return e;
}

void
BgvScheme::genKswKey(const std::vector<u64> &s_from_eval,
                     std::vector<std::vector<u64>> &key_b,
                     std::vector<std::vector<u64>> &key_a)
{
    key_b.assign(digits_, {});
    key_a.assign(digits_, {});
    for (size_t d = 0; d < digits_; ++d) {
        const u64 base = (d * params_.decompLog < 63)
                             ? (1ULL << (d * params_.decompLog)) % q_
                             : powMod(2, d * params_.decompLog, q_);
        std::vector<u64> a = sampleUniformEval();
        std::vector<u64> b = sampleErrorTimesT();
        for (size_t i = 0; i < n_; ++i) {
            u64 as = barrett_.mul(a[i], s_eval_[i]);
            u64 gs = barrett_.mul(base, s_from_eval[i]);
            b[i] = addMod(subMod(gs, as, q_), b[i], q_);
        }
        key_b[d] = std::move(b);
        key_a[d] = std::move(a);
    }
}

std::vector<u64>
BgvScheme::encode(const std::vector<u64> &slots_vals) const
{
    EFFACT_ASSERT(slots_vals.size() == n_, "BGV encode expects N slots");
    std::vector<u64> poly(n_);
    for (size_t i = 0; i < n_; ++i)
        poly[i] = slots_vals[i] % params_.t;
    ntt_t_->backward(poly.data()); // slots are the NTT-domain view mod t
    return poly;
}

std::vector<u64>
BgvScheme::decode(const std::vector<u64> &poly) const
{
    std::vector<u64> slots = poly;
    ntt_t_->forward(slots.data());
    return slots;
}

BgvCiphertext
BgvScheme::encrypt(const std::vector<u64> &plain)
{
    EFFACT_ASSERT(plain.size() == n_, "plaintext size mismatch");
    // Lift plaintext coefficients (mod t, centered) into mod q.
    std::vector<u64> m(n_);
    for (size_t i = 0; i < n_; ++i)
        m[i] = reduceSigned(centered(plain[i] % params_.t, params_.t), q_);
    ntt_q_->forward(m.data());

    std::vector<u64> c1 = sampleUniformEval();
    std::vector<u64> c0 = sampleErrorTimesT();
    for (size_t i = 0; i < n_; ++i) {
        u64 cs = barrett_.mul(c1[i], s_eval_[i]);
        c0[i] = addMod(c0[i], subMod(m[i], cs, q_), q_);
    }
    BgvCiphertext ct;
    ct.polys.push_back(std::move(c0));
    ct.polys.push_back(std::move(c1));
    return ct;
}

std::vector<u64>
BgvScheme::decrypt(const BgvCiphertext &ct) const
{
    EFFACT_ASSERT(ct.polys.size() >= 2 && ct.polys.size() <= 3,
                  "unsupported BGV ciphertext size");
    std::vector<u64> m(n_);
    for (size_t i = 0; i < n_; ++i) {
        u64 acc = addMod(ct.polys[0][i],
                         barrett_.mul(ct.polys[1][i], s_eval_[i]), q_);
        if (ct.polys.size() == 3) {
            u64 s2 = barrett_.mul(s_eval_[i], s_eval_[i]);
            acc = addMod(acc, barrett_.mul(ct.polys[2][i], s2), q_);
        }
        m[i] = acc;
    }
    ntt_q_->backward(m.data());
    // Centered reduction mod t recovers the plaintext coefficients.
    for (auto &c : m)
        c = reduceSigned(centered(c, q_), params_.t);
    return m;
}

BgvCiphertext
BgvScheme::add(const BgvCiphertext &a, const BgvCiphertext &b) const
{
    EFFACT_ASSERT(a.polys.size() == b.polys.size(), "size mismatch");
    BgvCiphertext out = a;
    for (size_t k = 0; k < out.polys.size(); ++k)
        for (size_t i = 0; i < n_; ++i)
            out.polys[k][i] = addMod(out.polys[k][i], b.polys[k][i], q_);
    return out;
}

BgvCiphertext
BgvScheme::addPlain(const BgvCiphertext &a, const std::vector<u64> &plain)
    const
{
    std::vector<u64> m(n_);
    for (size_t i = 0; i < n_; ++i)
        m[i] = reduceSigned(centered(plain[i] % params_.t, params_.t), q_);
    ntt_q_->forward(m.data());
    BgvCiphertext out = a;
    for (size_t i = 0; i < n_; ++i)
        out.polys[0][i] = addMod(out.polys[0][i], m[i], q_);
    return out;
}

BgvCiphertext
BgvScheme::multPlain(const BgvCiphertext &a, const std::vector<u64> &plain)
    const
{
    std::vector<u64> m(n_);
    for (size_t i = 0; i < n_; ++i)
        m[i] = reduceSigned(centered(plain[i] % params_.t, params_.t), q_);
    ntt_q_->forward(m.data());
    BgvCiphertext out = a;
    for (auto &poly : out.polys)
        for (size_t i = 0; i < n_; ++i)
            poly[i] = barrett_.mul(poly[i], m[i]);
    return out;
}

void
BgvScheme::keySwitchAccum(const std::vector<u64> &target_eval,
                          const std::vector<std::vector<u64>> &key_b,
                          const std::vector<std::vector<u64>> &key_a,
                          std::vector<u64> &c0, std::vector<u64> &c1) const
{
    // Word-decompose the target in coefficient space, then dot with the
    // key digits back in Eval space.
    std::vector<u64> coeff = target_eval;
    ntt_q_->backward(coeff.data());

    const u64 mask = (1ULL << params_.decompLog) - 1;
    for (size_t d = 0; d < digits_; ++d) {
        std::vector<u64> digit(n_);
        for (size_t i = 0; i < n_; ++i)
            digit[i] = (coeff[i] >> (d * params_.decompLog)) & mask;
        ntt_q_->forward(digit.data());
        for (size_t i = 0; i < n_; ++i) {
            c0[i] = addMod(c0[i], barrett_.mul(digit[i], key_b[d][i]), q_);
            c1[i] = addMod(c1[i], barrett_.mul(digit[i], key_a[d][i]), q_);
        }
    }
}

BgvCiphertext
BgvScheme::mult(const BgvCiphertext &a, const BgvCiphertext &b) const
{
    EFFACT_ASSERT(a.polys.size() == 2 && b.polys.size() == 2,
                  "mult expects relinearized inputs");
    std::vector<u64> d0(n_), d1(n_), d2(n_);
    for (size_t i = 0; i < n_; ++i) {
        d0[i] = barrett_.mul(a.polys[0][i], b.polys[0][i]);
        d1[i] = addMod(barrett_.mul(a.polys[0][i], b.polys[1][i]),
                       barrett_.mul(a.polys[1][i], b.polys[0][i]), q_);
        d2[i] = barrett_.mul(a.polys[1][i], b.polys[1][i]);
    }
    keySwitchAccum(d2, relin_b_, relin_a_, d0, d1);
    BgvCiphertext out;
    out.polys.push_back(std::move(d0));
    out.polys.push_back(std::move(d1));
    return out;
}

BgvCiphertext
BgvScheme::rotate(const BgvCiphertext &ct, int steps)
{
    EFFACT_ASSERT(ct.polys.size() == 2, "rotate expects a 2-poly ct");
    const u64 t_elt = galoisElt(steps, n_);
    auto it = galois_.find(t_elt);
    if (it == galois_.end()) {
        AutoPermutation perm(n_, t_elt);
        std::vector<u64> s_rot(n_);
        perm.apply(s_eval_.data(), s_rot.data());
        std::pair<std::vector<std::vector<u64>>,
                  std::vector<std::vector<u64>>> key;
        genKswKey(s_rot, key.first, key.second);
        it = galois_.emplace(t_elt, std::move(key)).first;
    }

    AutoPermutation perm(n_, t_elt);
    std::vector<u64> c0r(n_), c1r(n_);
    perm.apply(ct.polys[0].data(), c0r.data());
    perm.apply(ct.polys[1].data(), c1r.data());

    std::vector<u64> k1(n_, 0);
    keySwitchAccum(c1r, it->second.first, it->second.second, c0r, k1);
    BgvCiphertext out;
    out.polys.push_back(std::move(c0r));
    out.polys.push_back(std::move(k1));
    return out;
}

} // namespace effact
