#include "sched/depgraph.h"

#include <algorithm>

#include "common/logging.h"
#include "verify/verify.h"

namespace effact {

void
DepGraph::addEdge(int from, int to, DepKind kind)
{
    EFFACT_ASSERT(from >= 0 && to >= 0 && from < to &&
                      static_cast<size_t>(to) < n_ && !finalized_,
                  "bad dependence edge %d -> %d", from, to);
    raw_.push_back({from, to, kind});
}

void
DepGraph::addEdges(const std::vector<Edge> &edges)
{
    raw_.reserve(raw_.size() + edges.size());
    for (const Edge &e : edges)
        addEdge(e.from, e.to, e.kind);
}

void
DepGraph::finalize()
{
    EFFACT_ASSERT(!finalized_, "graph already finalized");
    soff_.assign(n_ + 1, 0);
    poff_.assign(n_ + 1, 0);
    for (const Edge &e : raw_) {
        ++soff_[static_cast<size_t>(e.from) + 1];
        ++poff_[static_cast<size_t>(e.to) + 1];
    }
    for (size_t i = 0; i < n_; ++i) {
        soff_[i + 1] += soff_[i];
        poff_[i + 1] += poff_[i];
    }
    sedge_.resize(raw_.size());
    pedge_.resize(raw_.size());
    // Stable fill: per-node edge order is append order.
    std::vector<uint32_t> scur(soff_.begin(), soff_.end() - 1);
    std::vector<uint32_t> pcur(poff_.begin(), poff_.end() - 1);
    for (const Edge &e : raw_) {
        sedge_[scur[static_cast<size_t>(e.from)]++] = {e.to, e.kind};
        pedge_[pcur[static_cast<size_t>(e.to)]++] = {e.from, e.kind};
    }
    finalized_ = true;
}

DepGraph
DepGraph::fromIr(const IrProgram &prog,
                 const std::vector<std::pair<int, int>> &mem_deps)
{
    DepGraph g(prog.insts.size());
    g.raw_.reserve(prog.insts.size() * 2 + mem_deps.size());
    for (size_t i = 0; i < prog.insts.size(); ++i) {
        const IrInst &inst = prog.insts[i];
        if (inst.dead)
            continue;
        for (int operand : inst.operands())
            if (operand >= 0)
                g.addEdge(operand, static_cast<int>(i), DepKind::True);
    }
    for (auto [from, to] : mem_deps)
        g.addEdge(from, to, DepKind::MemAlias);
    g.finalize();
    return g;
}

DepGraph
DepGraph::fromMachine(const MachineProgram &prog)
{
    const size_t n = prog.insts.size();
    DepGraph g(n);
    g.raw_.reserve(n * 2);

    // Dense producer maps: register ids are small consecutive ints from
    // the allocator and FIFO tokens are IR value ids, so direct-indexed
    // tables beat hash maps on the hot build path.
    u64 max_reg = 0, max_tok = 0;
    for (size_t i = 0; i < n; ++i) {
        const MachInst &mi = prog.insts[i];
        if (mi.dest.kind == OperandKind::Reg) {
            if (mi.dest.reg < 0)
                panicMalformedMachine(prog, static_cast<int>(i),
                                      "destination register id is "
                                      "negative");
            max_reg = std::max<u64>(max_reg, static_cast<u64>(mi.dest.reg));
        }
        if (mi.dest.kind == OperandKind::Stream && !mi.dest.dram)
            max_tok = std::max<u64>(max_tok, mi.dest.value);
    }
    std::vector<int> last_writer(max_reg + 1, -1);   // register -> inst
    std::vector<int> fifo_producer(max_tok + 1, -1); // token -> inst

    for (size_t i = 0; i < n; ++i) {
        const MachInst &mi = prog.insts[i];
        auto resolveSrc = [&](const Operand &o) {
            if (o.kind == OperandKind::Reg &&
                static_cast<u64>(o.reg) <= max_reg)
                return last_writer[static_cast<size_t>(o.reg)];
            if (o.kind == OperandKind::Stream && !o.dram &&
                o.value <= max_tok)
                return fifo_producer[static_cast<size_t>(o.value)];
            return -1;
        };
        // A source with no resolvable producer (a live-in register, an
        // HBM address, an immediate) simply has no edge.
        for (const Operand *src : {&mi.src0, &mi.src1, &mi.src2}) {
            int def = resolveSrc(*src);
            if (def >= 0)
                g.addEdge(def, static_cast<int>(i), DepKind::True);
        }
        if (mi.writesDest()) {
            if (mi.dest.kind == OperandKind::Reg) {
                int prev = last_writer[static_cast<size_t>(mi.dest.reg)];
                if (prev >= 0)
                    g.addEdge(prev, static_cast<int>(i), DepKind::Anti);
                last_writer[static_cast<size_t>(mi.dest.reg)] =
                    static_cast<int>(i);
            } else if (mi.dest.kind == OperandKind::Stream &&
                       !mi.dest.dram) {
                fifo_producer[static_cast<size_t>(mi.dest.value)] =
                    static_cast<int>(i);
            }
        }
    }
    g.finalize();
    return g;
}

std::vector<uint32_t>
DepGraph::indegrees() const
{
    EFFACT_ASSERT(finalized_, "graph not finalized");
    std::vector<uint32_t> indeg(n_, 0);
    for (size_t i = 0; i < n_; ++i)
        indeg[i] = poff_[i + 1] - poff_[i];
    return indeg;
}

std::vector<double>
DepGraph::criticalPath(const std::vector<double> &node_latency) const
{
    EFFACT_ASSERT(finalized_ && node_latency.size() == n_,
                  "graph not finalized or latency table size mismatch");
    std::vector<double> prio(n_, 0.0);
    for (size_t i = n_; i-- > 0;) {
        double best = 0.0;
        for (const DepEdge &e : succs(i))
            best = std::max(best, prio[static_cast<size_t>(e.other)]);
        prio[i] = best + node_latency[i];
    }
    return prio;
}

} // namespace effact
