/**
 * @file
 * Shared dependence-graph layer. Both the compiler's global list
 * scheduler (IR level, Sec. IV-B) and the cycle simulator's event-driven
 * issue core (machine level, Sec. IV-D) need the same information — who
 * must run before whom, and which of those edges carry data latency —
 * and previously each rebuilt it from scratch with separate ad-hoc code.
 * A `DepGraph` is built once from an instruction stream and exposes
 * successor/predecessor edge ranges, indegrees for ready-list countdown,
 * and critical-path priorities.
 */
#ifndef EFFACT_SCHED_DEPGRAPH_H
#define EFFACT_SCHED_DEPGRAPH_H

#include <cstdint>
#include <utility>
#include <vector>

#include "ir/ir.h"
#include "isa/isa.h"

namespace effact {

/** Dependence-edge kinds. */
enum class DepKind : uint8_t {
    True,     ///< RAW: consumer becomes data-ready at the producer's finish
    Anti,     ///< WAW on a register: orders issue, carries no data latency
    MemAlias, ///< may-alias memory ordering (from alias analysis)
};

/** One directed edge; `other` is the successor (in `succs`) or the
 *  predecessor (in `preds`). */
struct DepEdge
{
    int other;
    DepKind kind;
};

/**
 * Dependence graph over an instruction stream. Node ids are instruction
 * indices and edges always point forward (`from < to`), so reverse node
 * order is a topological order — `criticalPath` relies on this.
 *
 * Edges are appended with `addEdge` and compacted into CSR form by
 * `finalize()`; the factory builders return finalized graphs. Duplicate
 * edges are kept (an instruction reading the same value through both
 * source operands counts it twice in the indegree and is woken twice,
 * which keeps the countdown consistent).
 */
class DepGraph
{
  public:
    /** A contiguous edge range (CSR slice), iterable by range-for. */
    struct EdgeRange
    {
        const DepEdge *first;
        const DepEdge *last;
        const DepEdge *begin() const { return first; }
        const DepEdge *end() const { return last; }
        size_t size() const { return static_cast<size_t>(last - first); }
    };

    DepGraph() = default;
    explicit DepGraph(size_t n) : n_(n) {}

    /** One raw `(from, to, kind)` edge, for bulk append. */
    struct Edge
    {
        int from;
        int to;
        DepKind kind;
    };

    /**
     * IR-level graph: SSA true dependences from the operand ids of every
     * live instruction, plus the memory-ordering edges produced by
     * `runAliasAnalysis`.
     */
    static DepGraph fromIr(const IrProgram &prog,
                           const std::vector<std::pair<int, int>> &mem_deps);

    /**
     * Machine-level graph: register and streaming-FIFO true dependences
     * (each source operand resolved to its defining instruction), plus
     * anti-dependence edges from each register write to the previous
     * writer of the same register.
     */
    static DepGraph fromMachine(const MachineProgram &prog);

    /** Appends one edge; `from` must precede `to` in the stream. */
    void addEdge(int from, int to, DepKind kind);

    /** Appends a batch of edges (same precondition as `addEdge`).
     *  Shard-collected edge lists concatenated in ascending chunk order
     *  reproduce the serial append order byte-for-byte — this is how
     *  the parallel `AnalysisManager` build stays bit-identical to
     *  `fromIr`. */
    void addEdges(const std::vector<Edge> &edges);

    /** Compacts appended edges into CSR form; call before queries. */
    void finalize();

    size_t size() const { return n_; }
    size_t edgeCount() const { return raw_.size(); }

    EdgeRange succs(size_t i) const
    {
        return {sedge_.data() + soff_[i], sedge_.data() + soff_[i + 1]};
    }
    EdgeRange preds(size_t i) const
    {
        return {pedge_.data() + poff_[i], pedge_.data() + poff_[i + 1]};
    }

    /** Per-node indegree snapshot, for ready-list countdown. */
    std::vector<uint32_t> indegrees() const;

    /**
     * Longest-latency path from each node to any sink (the classic
     * critical-path list-scheduling priority): `prio[i] = latency[i] +
     * max(prio[succ])`.
     */
    std::vector<double>
    criticalPath(const std::vector<double> &node_latency) const;

  private:
    size_t n_ = 0;
    std::vector<Edge> raw_;
    // CSR form, valid after finalize().
    std::vector<uint32_t> soff_, poff_;
    std::vector<DepEdge> sedge_, pedge_;
    bool finalized_ = false;
};

} // namespace effact

#endif // EFFACT_SCHED_DEPGRAPH_H
