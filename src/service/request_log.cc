#include "service/request_log.h"

#include <cerrno>
#include <cstring>

namespace effact {

RequestLogWriter::~RequestLogWriter() { close(); }

bool
RequestLogWriter::open(const std::string &path, std::string *error)
{
    close();
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr) {
        if (error != nullptr)
            *error = "cannot open '" + path + "': " + std::strerror(errno);
        return false;
    }
    return true;
}

bool
RequestLogWriter::append(const std::vector<uint8_t> &frame_bytes)
{
    if (file_ == nullptr)
        return false;
    const size_t written =
        std::fwrite(frame_bytes.data(), 1, frame_bytes.size(), file_);
    // Flush per frame: a recorded log should be replayable up to the
    // last completed request even if the daemon dies mid-session.
    std::fflush(file_);
    return written == frame_bytes.size();
}

bool
RequestLogWriter::append(FrameType type, const std::vector<uint8_t> &payload)
{
    return append(encodeFrame(type, payload));
}

void
RequestLogWriter::close()
{
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

bool
decodeFrameStream(const std::vector<uint8_t> &bytes,
                  std::vector<Frame> *frames, std::string *error)
{
    size_t pos = 0;
    while (pos < bytes.size()) {
        Frame frame;
        size_t consumed = 0;
        const FrameDecodeStatus status = decodeFrame(
            bytes.data() + pos, bytes.size() - pos, &frame, &consumed);
        if (status != FrameDecodeStatus::Ok) {
            if (error != nullptr)
                *error = std::string("frame decode failed at offset ") +
                         std::to_string(pos) + ": " +
                         frameDecodeStatusName(status);
            return false;
        }
        frames->push_back(std::move(frame));
        pos += consumed;
    }
    return true;
}

bool
loadRequestLog(const std::string &path, std::vector<Frame> *frames,
               std::string *error)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        if (error != nullptr)
            *error = "cannot open '" + path + "': " + std::strerror(errno);
        return false;
    }
    std::vector<uint8_t> bytes;
    uint8_t chunk[4096];
    size_t got = 0;
    while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0)
        bytes.insert(bytes.end(), chunk, chunk + got);
    std::fclose(file);
    return decodeFrameStream(bytes, frames, error);
}

} // namespace effact
