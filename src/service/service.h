/**
 * @file
 * The long-lived compile-and-simulate service. Three pieces:
 *
 * - `ServiceCore`: the daemon's brain, independent of any transport.
 *   Single-driver-thread request window with validation, admission
 *   control (bounded pending queue, explicit reject-when-full) and
 *   batched execution through the shared `SweepEngine` on one
 *   long-lived `ThreadPool` + bounded `CompileCache`. Fully
 *   deterministic given its configuration and the request stream:
 *   statuses, batching boundaries and every deterministic result field
 *   replay byte-identically — which is what lets a recorded session be
 *   pinned against the uncached serial oracle (`oracleOptions`).
 * - `ServiceServer` / `ServiceClient`: the AF_UNIX transport speaking
 *   the framed protocol of `service/protocol.h`, with optional raw
 *   frame recording (`service/request_log.h`).
 * - `replayFrames`: drives a recorded frame stream through a
 *   `ServiceCore` offline — the `effact-replay` engine and the replay-
 *   determinism test harness.
 */
#ifndef EFFACT_SERVICE_SERVICE_H
#define EFFACT_SERVICE_SERVICE_H

#include <atomic>
#include <chrono>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "compiler/compile_cache.h"
#include "runtime/sweep.h"
#include "service/protocol.h"
#include "service/request_log.h"

namespace effact {

/**
 * Pending-queue capacity default: the `EFFACT_QUEUE_DEPTH` environment
 * variable when set to a positive integer, otherwise 64. This is the
 * admission bound — the maximum accepted-but-not-yet-executed requests;
 * request 65 of a burst is refused with `RejectedQueueFull`.
 */
size_t defaultQueueCapacity();

/** `ServiceCore` configuration. Every field is part of the replay
 *  contract: two cores with equal options produce byte-identical
 *  result streams for the same request stream. */
struct ServiceOptions
{
    /** Sweep worker count (1 = run batches serially on the driver
     *  thread; no pool is created). */
    size_t threads = defaultThreadCount();
    /** Within-job parallelism width (see `SweepOptions::jobThreads`) */
    size_t jobThreads = defaultJobThreadCount();
    /** Admission bound on accepted-but-unexecuted requests. */
    size_t queueCapacity = defaultQueueCapacity();
    /** Auto-execute threshold: once this many requests are pending the
     *  core runs them as one sweep batch without waiting for a flush
     *  (capping both queue latency and window memory). */
    size_t batchSize = 16;
    /** `CompileCache` byte budget (0 = unbounded; see
     *  `EFFACT_CACHE_BYTES` / `defaultCacheBytes`). */
    size_t cacheBytes = defaultCacheBytes();
    /** False = compile every request cold (the oracle configuration) */
    bool useCache = true;
    /** Service-wide verification override: -1 = per-request levels
     *  (see `ServiceRequest::verifyLevel`), >= 0 forces the level. */
    int verifyLevel = -1;
};

/**
 * The oracle configuration for `base`: identical admission behavior
 * (queue capacity, batch size, verify override) but serial, uncached
 * execution — every request compiles cold on one thread. The replay-
 * determinism contract: a core with *any* thread count and cache
 * budget produces the same canonical result bytes as its oracle.
 */
ServiceOptions oracleOptions(const ServiceOptions &base);

/**
 * Validates a request against the service's admission rules: known
 * workload kind, scheme/hardware/compiler parameters inside sane
 * bounds, and a parseable pipeline spec (unknown pass names are a
 * client error, reported — never a `fatal` in the daemon). False +
 * `error` on the first violation.
 */
bool validateRequest(const ServiceRequest &req, std::string *error);

/** The workload factory for a *validated* request (a `SweepJob::build`:
 *  safe to invoke on any worker thread). */
std::function<Workload()> makeWorkloadBuild(const ServiceRequest &req);

/**
 * Transport-independent service engine. Not thread-safe: one driver
 * thread (the server's connection handler, a replayer, a test) calls
 * `submit`/`flush`; the parallelism is inside the batches.
 */
class ServiceCore
{
  public:
    explicit ServiceCore(ServiceOptions opts = {});

    const ServiceOptions &options() const { return opts_; }

    /**
     * Validates and admits one request; returns its server-assigned
     * sequence number. Every call produces exactly one result entry —
     * `Ok` work, `BadRequest`, or `RejectedQueueFull` — delivered by
     * the next `flush()` in submission order. May execute a batch
     * inline when `batchSize` pending requests have accumulated.
     */
    uint64_t submit(const ServiceRequest &req);

    /**
     * Executes every pending request and returns all results since the
     * previous flush, in submission order.
     */
    std::vector<ServiceResult> flush();

    /** Accepted requests not yet executed (the admission pressure). */
    size_t pendingCount() const;

    /** Results accumulated for the next `flush()` (incl. rejects). */
    size_t windowCount() const { return window_.size(); }

    /**
     * `service.*` counters (accepted/rejected/bad_requests/flushes/
     * batches/queue_peak) merged with the cache's `cache.*` snapshot.
     */
    StatSet statsSnapshot() const;

    CompileCache &cache() { return cache_; }

  private:
    using Clock = std::chrono::steady_clock;

    struct Entry
    {
        ServiceRequest req;
        ServiceResult res;
        bool runnable = false; ///< accepted, awaiting execution
        bool done = false;     ///< result fields are final
        Clock::time_point submitted;
    };

    void runBatch();

    ServiceOptions opts_;
    CompileCache cache_;
    /** Long-lived batch pool (absent when `threads <= 1`): one pool
     *  serves every batch, so worker threads are created once per
     *  daemon, not once per flush. */
    std::optional<ThreadPool> pool_;
    std::vector<Entry> window_;
    uint64_t next_seq_ = 0;
    uint64_t accepted_ = 0;
    uint64_t rejected_ = 0;
    uint64_t bad_requests_ = 0;
    uint64_t flushes_ = 0;
    uint64_t batches_ = 0;
    uint64_t queue_peak_ = 0;
};

/** Outcome of replaying a frame stream through a `ServiceCore`. */
struct ReplayOutcome
{
    std::vector<ServiceResult> results; ///< submission order
    size_t requests = 0;                ///< Request frames consumed
    bool sawShutdown = false;
};

/**
 * Drives recorded client frames (`Request`/`Flush`/`Shutdown`) through
 * `core`, collecting every flushed result. Strict about the log: an
 * undecodable request payload or a server-side frame type in the
 * stream is a corrupt log (false + `error`), not a skipped entry. A
 * log that ends without `Shutdown` gets a final implicit flush.
 */
bool replayFrames(const std::vector<Frame> &frames, ServiceCore &core,
                  ReplayOutcome *out, std::string *error);

// --- AF_UNIX transport -----------------------------------------------------

struct ServiceServerOptions
{
    std::string socketPath;
    /** When nonempty, every accepted client frame is appended here
     *  (the replayable session log). */
    std::string recordPath;
    ServiceOptions service;
};

/**
 * Single-threaded AF_UNIX stream server: accepts one connection at a
 * time and speaks the framed protocol. Malformed frames are answered
 * with an `Error` frame and a connection close — never a crash. A
 * `Shutdown` frame (or `stop()` from another thread) ends `run()`.
 */
class ServiceServer
{
  public:
    explicit ServiceServer(ServiceServerOptions opts);
    ~ServiceServer();

    ServiceServer(const ServiceServer &) = delete;
    ServiceServer &operator=(const ServiceServer &) = delete;

    /** Binds and listens on the socket path (and opens the recorder
     *  when configured); false + `error` on failure. */
    bool start(std::string *error);

    /** Accept-and-serve loop; returns once a client sent `Shutdown`
     *  or `stop()` was called. */
    void run();

    /** Asynchronously ends `run()` (safe from another thread). */
    void stop();

    ServiceCore &core() { return core_; }
    const std::string &socketPath() const { return opts_.socketPath; }

  private:
    /** Serves one connection; returns false when the server should
     *  stop accepting (client sent `Shutdown`). */
    bool handleConnection(int fd);

    ServiceServerOptions opts_;
    ServiceCore core_;
    RequestLogWriter recorder_;
    int listen_fd_ = -1;
    std::atomic<bool> stop_{false};
};

/** Blocking client for the framed AF_UNIX protocol. Tracks how many
 *  requests are outstanding so `flush()` knows how many result frames
 *  to collect (the server returns exactly one per submitted request) */
class ServiceClient
{
  public:
    ServiceClient() = default;
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    bool connect(const std::string &socketPath, std::string *error);
    bool isConnected() const { return fd_ >= 0; }

    /** Sends one request frame (does not wait for its result). */
    bool sendRequest(const ServiceRequest &req, std::string *error);

    /** Sends `Flush` and collects one result per outstanding request */
    bool flush(std::vector<ServiceResult> *results, std::string *error);

    /** Sends `Shutdown`: like `flush`, then the server stops. */
    bool shutdownServer(std::vector<ServiceResult> *results,
                        std::string *error);

    void close();

  private:
    bool sendFrame(FrameType type, const std::vector<uint8_t> &payload,
                   std::string *error);
    bool readFrame(Frame *out, std::string *error);
    bool collectResults(size_t count, std::vector<ServiceResult> *results,
                        std::string *error);

    int fd_ = -1;
    size_t outstanding_ = 0;
    std::vector<uint8_t> rxbuf_;
};

} // namespace effact

#endif // EFFACT_SERVICE_SERVICE_H
