/**
 * @file
 * Request-log recording and replay. A log is nothing but the raw
 * client->server frame stream (`Request`, `Flush`, `Shutdown` frames,
 * in arrival order) appended to a file — the same checksummed framing
 * as the wire, so a recorded session is self-validating and replays
 * through exactly the decode path the live server uses. Because the
 * service is deterministic given its configuration and the request
 * stream, replaying a log offline (`effact-replay`) reproduces the
 * live session's canonical result bytes.
 */
#ifndef EFFACT_SERVICE_REQUEST_LOG_H
#define EFFACT_SERVICE_REQUEST_LOG_H

#include <cstdio>
#include <string>
#include <vector>

#include "service/protocol.h"

namespace effact {

/** Appends raw frames to a log file as they arrive. */
class RequestLogWriter
{
  public:
    RequestLogWriter() = default;
    ~RequestLogWriter();

    RequestLogWriter(const RequestLogWriter &) = delete;
    RequestLogWriter &operator=(const RequestLogWriter &) = delete;

    /** Opens (truncates) `path`; false + `error` on failure. */
    bool open(const std::string &path, std::string *error);

    bool isOpen() const { return file_ != nullptr; }

    /** Appends one already-encoded frame (header + payload bytes). */
    bool append(const std::vector<uint8_t> &frame_bytes);

    /** Appends `encodeFrame(type, payload)`. */
    bool append(FrameType type, const std::vector<uint8_t> &payload);

    void close();

  private:
    std::FILE *file_ = nullptr;
};

/**
 * Loads a recorded log back into frames. Strict: the file must be a
 * clean concatenation of valid frames; any decode failure (truncation,
 * corruption) reports the offending offset and status in `error`.
 */
bool loadRequestLog(const std::string &path, std::vector<Frame> *frames,
                    std::string *error);

/** Decodes a frame stream already in memory (same contract). */
bool decodeFrameStream(const std::vector<uint8_t> &bytes,
                       std::vector<Frame> *frames, std::string *error);

} // namespace effact

#endif // EFFACT_SERVICE_REQUEST_LOG_H
