#include "service/protocol.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace effact {

namespace {

// --- Little-endian wire primitives -----------------------------------------

void
putU8(std::vector<uint8_t> &buf, uint8_t v)
{
    buf.push_back(v);
}

void
putU16(std::vector<uint8_t> &buf, uint16_t v)
{
    buf.push_back(uint8_t(v & 0xff));
    buf.push_back(uint8_t(v >> 8));
}

void
putU32(std::vector<uint8_t> &buf, uint32_t v)
{
    for (int byte = 0; byte < 4; ++byte)
        buf.push_back(uint8_t((v >> (byte * 8)) & 0xff));
}

void
putU64(std::vector<uint8_t> &buf, uint64_t v)
{
    for (int byte = 0; byte < 8; ++byte)
        buf.push_back(uint8_t((v >> (byte * 8)) & 0xff));
}

/** Doubles travel as IEEE-754 bit patterns: encode/decode is exact, so
 *  byte comparison of encoded results is value comparison. */
void
putF64(std::vector<uint8_t> &buf, double v)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(buf, bits);
}

void
putString(std::vector<uint8_t> &buf, const std::string &s)
{
    putU32(buf, uint32_t(s.size()));
    buf.insert(buf.end(), s.begin(), s.end());
}

/** Bounds-checked sequential reader: any out-of-range read latches the
 *  fail flag and returns zeros, so decoders are crash-free on any
 *  input and check `ok()` once at the end. */
class Reader
{
  public:
    Reader(const uint8_t *data, size_t size) : data_(data), size_(size) {}

    bool ok() const { return ok_; }
    bool atEnd() const { return pos_ == size_; }

    uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return data_[pos_++];
    }

    uint16_t
    u16()
    {
        if (!need(2))
            return 0;
        uint16_t v = uint16_t(data_[pos_]) | uint16_t(data_[pos_ + 1]) << 8;
        pos_ += 2;
        return v;
    }

    uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        uint32_t v = 0;
        for (int byte = 0; byte < 4; ++byte)
            v |= uint32_t(data_[pos_ + byte]) << (byte * 8);
        pos_ += 4;
        return v;
    }

    uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        uint64_t v = 0;
        for (int byte = 0; byte < 8; ++byte)
            v |= uint64_t(data_[pos_ + byte]) << (byte * 8);
        pos_ += 8;
        return v;
    }

    double
    f64()
    {
        const uint64_t bits = u64();
        double v = 0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        const uint32_t len = u32();
        // A string longer than the payload bound is structurally
        // impossible; refuse before allocating.
        if (len > kMaxFramePayload || !need(len)) {
            ok_ = false;
            return {};
        }
        std::string s(reinterpret_cast<const char *>(data_ + pos_), len);
        pos_ += len;
        return s;
    }

  private:
    bool
    need(size_t n)
    {
        if (!ok_ || size_ - pos_ < n) {
            ok_ = false;
            return false;
        }
        return true;
    }

    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
    bool ok_ = true;
};

uint64_t
fnv1a(uint64_t h, const uint8_t *data, size_t size)
{
    for (size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 1099511628211ULL;
    }
    return h;
}

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;

/** The frame checksum: FNV-1a over (version, type, payload), each in
 *  its wire byte order. Covering version and type means a flip between
 *  two *valid* values of either field still fails the checksum. */
uint64_t
frameChecksum(uint16_t version, uint16_t type, const uint8_t *payload,
              size_t size)
{
    const uint8_t head[4] = {uint8_t(version & 0xff), uint8_t(version >> 8),
                             uint8_t(type & 0xff), uint8_t(type >> 8)};
    return fnv1a(fnv1a(kFnvOffset, head, sizeof(head)), payload, size);
}

bool
validFrameType(uint16_t type)
{
    return type >= uint16_t(FrameType::Request) &&
           type <= uint16_t(FrameType::Shutdown);
}

} // namespace

const char *
frameDecodeStatusName(FrameDecodeStatus status)
{
    switch (status) {
    case FrameDecodeStatus::Ok: return "ok";
    case FrameDecodeStatus::Truncated: return "truncated";
    case FrameDecodeStatus::BadMagic: return "bad magic";
    case FrameDecodeStatus::BadVersion: return "bad version";
    case FrameDecodeStatus::BadType: return "bad frame type";
    case FrameDecodeStatus::Oversized: return "oversized payload";
    case FrameDecodeStatus::BadChecksum: return "bad checksum";
    }
    return "unknown";
}

std::vector<uint8_t>
encodeFrame(FrameType type, const std::vector<uint8_t> &payload)
{
    std::vector<uint8_t> buf;
    buf.reserve(kFrameHeaderBytes + payload.size());
    putU32(buf, kFrameMagic);
    putU16(buf, kProtocolVersion);
    putU16(buf, uint16_t(type));
    putU32(buf, uint32_t(payload.size()));
    putU64(buf, frameChecksum(kProtocolVersion, uint16_t(type),
                              payload.data(), payload.size()));
    buf.insert(buf.end(), payload.begin(), payload.end());
    return buf;
}

FrameDecodeStatus
decodeFrame(const uint8_t *data, size_t size, Frame *out, size_t *consumed)
{
    if (size < kFrameHeaderBytes)
        return FrameDecodeStatus::Truncated;
    Reader r(data, size);
    const uint32_t magic = r.u32();
    if (magic != kFrameMagic)
        return FrameDecodeStatus::BadMagic;
    const uint16_t version = r.u16();
    if (version != kProtocolVersion)
        return FrameDecodeStatus::BadVersion;
    const uint16_t type = r.u16();
    if (!validFrameType(type))
        return FrameDecodeStatus::BadType;
    const uint32_t length = r.u32();
    if (length > kMaxFramePayload)
        return FrameDecodeStatus::Oversized;
    if (size - kFrameHeaderBytes < length)
        return FrameDecodeStatus::Truncated;
    const uint64_t checksum = r.u64();
    const uint8_t *payload = data + kFrameHeaderBytes;
    if (checksum != frameChecksum(version, type, payload, length))
        return FrameDecodeStatus::BadChecksum;
    if (out != nullptr) {
        out->version = version;
        out->type = FrameType(type);
        out->payload.assign(payload, payload + length);
    }
    if (consumed != nullptr)
        *consumed = kFrameHeaderBytes + length;
    return FrameDecodeStatus::Ok;
}

const char *
serviceStatusName(ServiceStatus status)
{
    switch (status) {
    case ServiceStatus::Ok: return "ok";
    case ServiceStatus::RejectedQueueFull: return "rejected-queue-full";
    case ServiceStatus::BadRequest: return "bad-request";
    case ServiceStatus::InternalError: return "internal-error";
    }
    return "unknown";
}

std::vector<uint8_t>
encodeRequest(const ServiceRequest &req)
{
    std::vector<uint8_t> buf;
    putU64(buf, req.tag);
    putString(buf, req.name);
    putString(buf, req.workload);
    putU64(buf, req.fhe.logN);
    putU64(buf, req.fhe.levels);
    putU64(buf, req.fhe.dnum);
    putU64(buf, req.fhe.lanes);
    putU64(buf, req.param);
    // Hardware design point, every field.
    putString(buf, req.hw.name);
    putU64(buf, req.hw.lanes);
    putF64(buf, req.hw.freqGhz);
    putU64(buf, req.hw.sramBytes);
    putF64(buf, req.hw.hbmBytesPerSec);
    putU64(buf, req.hw.nttUnits);
    putU64(buf, req.hw.mulUnits);
    putU64(buf, req.hw.addUnits);
    putU64(buf, req.hw.autoUnits);
    putU8(buf, req.hw.nttMacReuse ? 1 : 0);
    putU64(buf, req.hw.issueWindow);
    // Compiler preset, minus the hardware-derived fields Platform
    // overwrites (`sramBytes`, `issueWindow`).
    putU8(buf, req.copts.copyProp ? 1 : 0);
    putU8(buf, req.copts.constProp ? 1 : 0);
    putU8(buf, req.copts.pre ? 1 : 0);
    putU8(buf, req.copts.peephole ? 1 : 0);
    putString(buf, req.copts.pipeline);
    putU64(buf, req.copts.pipelineMaxIterations);
    putU8(buf, req.copts.schedule ? 1 : 0);
    putU8(buf, req.copts.streaming ? 1 : 0);
    putU64(buf, req.copts.fifoDepth);
    putString(buf, req.copts.scheduler);
    putString(buf, req.copts.regalloc);
    putU64(buf, uint64_t(req.verifyLevel));
    return buf;
}

bool
decodeRequest(const std::vector<uint8_t> &payload, ServiceRequest *out,
              std::string *error)
{
    Reader r(payload.data(), payload.size());
    ServiceRequest req;
    req.tag = r.u64();
    req.name = r.str();
    req.workload = r.str();
    req.fhe.logN = size_t(r.u64());
    req.fhe.levels = size_t(r.u64());
    req.fhe.dnum = size_t(r.u64());
    req.fhe.lanes = size_t(r.u64());
    req.param = r.u64();
    req.hw.name = r.str();
    req.hw.lanes = size_t(r.u64());
    req.hw.freqGhz = r.f64();
    req.hw.sramBytes = size_t(r.u64());
    req.hw.hbmBytesPerSec = r.f64();
    req.hw.nttUnits = size_t(r.u64());
    req.hw.mulUnits = size_t(r.u64());
    req.hw.addUnits = size_t(r.u64());
    req.hw.autoUnits = size_t(r.u64());
    req.hw.nttMacReuse = r.u8() != 0;
    req.hw.issueWindow = size_t(r.u64());
    req.copts.copyProp = r.u8() != 0;
    req.copts.constProp = r.u8() != 0;
    req.copts.pre = r.u8() != 0;
    req.copts.peephole = r.u8() != 0;
    req.copts.pipeline = r.str();
    req.copts.pipelineMaxIterations = size_t(r.u64());
    req.copts.schedule = r.u8() != 0;
    req.copts.streaming = r.u8() != 0;
    req.copts.fifoDepth = size_t(r.u64());
    req.copts.scheduler = r.str();
    req.copts.regalloc = r.str();
    req.verifyLevel = int64_t(r.u64());
    if (!r.ok() || !r.atEnd()) {
        if (error != nullptr)
            *error = r.ok() ? "trailing bytes in request payload"
                            : "short request payload";
        return false;
    }
    *out = std::move(req);
    return true;
}

std::vector<uint8_t>
encodeResult(const ServiceResult &res)
{
    std::vector<uint8_t> buf;
    putU64(buf, res.seq);
    putU64(buf, res.tag);
    putString(buf, res.name);
    putU32(buf, uint32_t(res.status));
    putString(buf, res.error);
    putF64(buf, res.cycles);
    putF64(buf, res.timeMs);
    putF64(buf, res.dramBytes);
    putF64(buf, res.dramUtil);
    putF64(buf, res.nttUtil);
    putF64(buf, res.mulAddUtil);
    putF64(buf, res.autoUtil);
    putU64(buf, res.instructions);
    putU64(buf, res.machineFingerprint);
    putF64(buf, res.benchTimeMs);
    putF64(buf, res.amortizedUs);
    putF64(buf, res.dramGb);
    // Stats travel sorted by key (StatSet is an ordered map), so the
    // encoding is canonical.
    putU32(buf, uint32_t(res.stats.all().size()));
    for (const auto &[key, value] : res.stats.all()) {
        putString(buf, key);
        putF64(buf, value);
    }
    putU64(buf, res.queueDepth);
    putF64(buf, res.queueMs);
    putF64(buf, res.serviceMs);
    return buf;
}

bool
decodeResult(const std::vector<uint8_t> &payload, ServiceResult *out,
             std::string *error)
{
    Reader r(payload.data(), payload.size());
    ServiceResult res;
    res.seq = r.u64();
    res.tag = r.u64();
    res.name = r.str();
    const uint32_t status = r.u32();
    if (status > uint32_t(ServiceStatus::InternalError)) {
        if (error != nullptr)
            *error = "unknown status code in result payload";
        return false;
    }
    res.status = ServiceStatus(status);
    res.error = r.str();
    res.cycles = r.f64();
    res.timeMs = r.f64();
    res.dramBytes = r.f64();
    res.dramUtil = r.f64();
    res.nttUtil = r.f64();
    res.mulAddUtil = r.f64();
    res.autoUtil = r.f64();
    res.instructions = r.u64();
    res.machineFingerprint = r.u64();
    res.benchTimeMs = r.f64();
    res.amortizedUs = r.f64();
    res.dramGb = r.f64();
    const uint32_t n_stats = r.u32();
    // Each entry is at least 12 bytes; an impossible count is refused
    // up front instead of looping on a poisoned reader.
    if (n_stats > kMaxFramePayload / 12) {
        if (error != nullptr)
            *error = "implausible stat count in result payload";
        return false;
    }
    for (uint32_t i = 0; i < n_stats && r.ok(); ++i) {
        const std::string key = r.str();
        const double value = r.f64();
        if (r.ok())
            res.stats.set(key, value);
    }
    res.queueDepth = r.u64();
    res.queueMs = r.f64();
    res.serviceMs = r.f64();
    if (!r.ok() || !r.atEnd()) {
        if (error != nullptr)
            *error = r.ok() ? "trailing bytes in result payload"
                            : "short result payload";
        return false;
    }
    *out = std::move(res);
    return true;
}

std::vector<uint8_t>
encodeErrorPayload(const std::string &message)
{
    std::vector<uint8_t> buf;
    putString(buf, message);
    return buf;
}

bool
decodeErrorPayload(const std::vector<uint8_t> &payload, std::string *message)
{
    Reader r(payload.data(), payload.size());
    std::string s = r.str();
    if (!r.ok() || !r.atEnd())
        return false;
    if (message != nullptr)
        *message = std::move(s);
    return true;
}

ServiceResult
canonicalResult(const ServiceResult &res)
{
    ServiceResult canon = res;
    canon.queueDepth = 0;
    canon.queueMs = 0;
    canon.serviceMs = 0;
    StatSet filtered;
    for (const auto &[key, value] : res.stats.all()) {
        const bool wall_clock =
            key.size() >= 3 && key.compare(key.size() - 3, 3, ".ms") == 0;
        const bool cache_key = key.find("cache.") != std::string::npos;
        const bool service_key = key.rfind("service.", 0) == 0;
        if (!wall_clock && !cache_key && !service_key)
            filtered.set(key, value);
    }
    canon.stats = std::move(filtered);
    return canon;
}

std::vector<uint8_t>
canonicalResultBytes(const ServiceResult &res)
{
    return encodeResult(canonicalResult(res));
}

std::string
canonicalResultLine(const ServiceResult &res)
{
    const ServiceResult canon = canonicalResult(res);
    uint64_t stats_hash = kFnvOffset;
    for (const auto &[key, value] : canon.stats.all()) {
        stats_hash = fnv1a(stats_hash,
                           reinterpret_cast<const uint8_t *>(key.data()),
                           key.size());
        uint64_t bits = 0;
        std::memcpy(&bits, &value, sizeof(bits));
        uint8_t raw[8];
        for (int byte = 0; byte < 8; ++byte)
            raw[byte] = uint8_t((bits >> (byte * 8)) & 0xff);
        stats_hash = fnv1a(stats_hash, raw, sizeof(raw));
    }
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "seq=%" PRIu64 " tag=%" PRIu64 " name=%s status=%s "
                  "cycles=%.17g timeMs=%.17g instr=%" PRIu64
                  " fp=%016" PRIx64 " bench=%.17g amortized=%.17g "
                  "dramGb=%.17g stats=%016" PRIx64 "%s%s",
                  canon.seq, canon.tag, canon.name.c_str(),
                  serviceStatusName(canon.status), canon.cycles,
                  canon.timeMs, canon.instructions,
                  canon.machineFingerprint, canon.benchTimeMs,
                  canon.amortizedUs, canon.dramGb, stats_hash,
                  canon.error.empty() ? "" : " error=",
                  canon.error.c_str());
    return std::string(buf);
}

} // namespace effact
