#include "service/service.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.h"
#include "compiler/pass_manager.h"
#include "ir/workloads.h"

namespace effact {

namespace {

using Ms = std::chrono::duration<double, std::milli>;

size_t
envSize(const char *name, size_t fallback)
{
    if (const char *env = std::getenv(name)) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<size_t>(v);
        warn("ignoring invalid %s='%s' (want a positive integer)", name,
             env);
    }
    return fallback;
}

bool
inRange(uint64_t v, uint64_t lo, uint64_t hi)
{
    return v >= lo && v <= hi;
}

bool
finitePositive(double v, double hi)
{
    return std::isfinite(v) && v > 0 && v <= hi;
}

} // namespace

size_t
defaultQueueCapacity()
{
    return envSize("EFFACT_QUEUE_DEPTH", 64);
}

ServiceOptions
oracleOptions(const ServiceOptions &base)
{
    ServiceOptions oracle = base;
    oracle.threads = 1;
    oracle.jobThreads = 1;
    oracle.cacheBytes = 0;
    oracle.useCache = false;
    return oracle;
}

bool
validateRequest(const ServiceRequest &req, std::string *error)
{
    auto fail = [error](const std::string &why) {
        if (error != nullptr)
            *error = why;
        return false;
    };
    const bool paper_scale_kind = req.workload == "bootstrap" ||
                                  req.workload == "helr" ||
                                  req.workload == "resnet20";
    if (!paper_scale_kind && req.workload != "dblookup" &&
        req.workload != "tfhe")
        return fail("unknown workload kind '" + req.workload + "'");
    // Scheme parameters. The paper-scale builders (bootstrapping and
    // the benchmarks embedding it) assume realistic CKKS parameters;
    // the small kinds (dblookup, tfhe) accept toy ones.
    const size_t min_logn = paper_scale_kind ? 13 : 8;
    const size_t min_levels = paper_scale_kind ? 9 : 1;
    if (!inRange(req.fhe.logN, min_logn, 17))
        return fail("fhe.logN out of range for kind '" + req.workload +
                    "'");
    if (!inRange(req.fhe.levels, min_levels, 64))
        return fail("fhe.levels out of range");
    if (!inRange(req.fhe.dnum, 1, req.fhe.levels))
        return fail("fhe.dnum out of range (want 1 <= dnum <= levels)");
    if (!inRange(req.fhe.lanes, 1, 1u << 16))
        return fail("fhe.lanes out of range");
    if (req.workload == "dblookup" &&
        !inRange(req.param == 0 ? 256 : req.param, 1, 1u << 16))
        return fail("dblookup records out of range");
    // Hardware design point.
    if (!inRange(req.hw.lanes, 1, 1u << 16))
        return fail("hw.lanes out of range");
    if (!finitePositive(req.hw.freqGhz, 100.0))
        return fail("hw.freqGhz must be finite and in (0, 100]");
    if (!inRange(req.hw.sramBytes, 1u << 16, uint64_t(1) << 40))
        return fail("hw.sramBytes out of range (want 64KB..1TB)");
    if (!finitePositive(req.hw.hbmBytesPerSec, 1e15))
        return fail("hw.hbmBytesPerSec must be finite and positive");
    if (!inRange(req.hw.nttUnits, 1, 1024) ||
        !inRange(req.hw.mulUnits, 1, 1024) ||
        !inRange(req.hw.addUnits, 1, 1024) ||
        !inRange(req.hw.autoUnits, 1, 1024))
        return fail("hw function-unit counts out of range (want 1..1024)");
    if (!inRange(req.hw.issueWindow, 1, 1u << 16))
        return fail("hw.issueWindow out of range");
    // Compiler options.
    if (!inRange(req.copts.pipelineMaxIterations, 1, 4096))
        return fail("copts.pipelineMaxIterations out of range");
    if (!inRange(req.copts.fifoDepth, 1, 1u << 20))
        return fail("copts.fifoDepth out of range");
    if (!req.copts.pipeline.empty()) {
        // An unknown pass name in an explicit spec must surface as a
        // BadRequest, not as `PassManager::fromSpec`'s `fatal` in the
        // middle of a batch.
        std::vector<std::string> names;
        std::string spec_error;
        if (!parsePipelineSpec(req.copts.pipeline, &names, &spec_error))
            return fail("bad pipeline spec: " + spec_error);
    }
    if (req.verifyLevel < -1 || req.verifyLevel > 8)
        return fail("verifyLevel out of range (want -1..8)");
    return true;
}

std::function<Workload()>
makeWorkloadBuild(const ServiceRequest &req)
{
    const FheParams fhe = req.fhe;
    if (req.workload == "dblookup") {
        const size_t records =
            req.param == 0 ? 256 : static_cast<size_t>(req.param);
        return [fhe, records] { return buildDbLookup(fhe, records); };
    }
    if (req.workload == "bootstrap") {
        BootstrapBudget budget;
        budget.slots = std::min(budget.slots, fhe.degree() / 2);
        return [fhe, budget] { return buildBootstrapping(fhe, budget); };
    }
    if (req.workload == "helr")
        return [fhe] { return buildHelr(fhe); };
    if (req.workload == "resnet20")
        return [fhe] { return buildResNet20(fhe); };
    if (req.workload == "tfhe")
        return [] { return buildTfheBootstrap(); };
    return nullptr; // unreachable for validated requests
}

ServiceCore::ServiceCore(ServiceOptions opts)
    : opts_(opts), cache_(opts.cacheBytes)
{
    if (opts_.threads == 0)
        opts_.threads = 1;
    if (opts_.queueCapacity == 0)
        opts_.queueCapacity = 1;
    if (opts_.batchSize == 0)
        opts_.batchSize = 1;
    const size_t job_threads = std::max<size_t>(opts_.jobThreads, 1);
    if (opts_.threads > 1)
        pool_.emplace(std::max(opts_.threads, job_threads));
}

size_t
ServiceCore::pendingCount() const
{
    size_t n = 0;
    for (const Entry &entry : window_)
        if (entry.runnable && !entry.done)
            ++n;
    return n;
}

uint64_t
ServiceCore::submit(const ServiceRequest &req)
{
    Entry entry;
    entry.req = req;
    entry.submitted = Clock::now();
    entry.res.seq = next_seq_++;
    entry.res.tag = req.tag;
    entry.res.name = req.name;

    std::string why;
    const size_t pending = pendingCount();
    if (!validateRequest(req, &why)) {
        entry.res.status = ServiceStatus::BadRequest;
        entry.res.error = why;
        entry.done = true;
        ++bad_requests_;
    } else if (pending >= opts_.queueCapacity) {
        // The documented backpressure contract: a full pending queue
        // refuses the request outright instead of growing without
        // bound; the client sees the explicit status code and may
        // retry after a flush.
        entry.res.status = ServiceStatus::RejectedQueueFull;
        entry.res.error = "pending queue full (capacity " +
                          std::to_string(opts_.queueCapacity) + ")";
        entry.done = true;
        ++rejected_;
    } else {
        entry.runnable = true;
        entry.res.queueDepth = pending;
        ++accepted_;
        queue_peak_ = std::max<uint64_t>(queue_peak_, pending + 1);
    }
    const uint64_t seq = entry.res.seq;
    window_.push_back(std::move(entry));
    if (pendingCount() >= opts_.batchSize)
        runBatch();
    return seq;
}

void
ServiceCore::runBatch()
{
    std::vector<size_t> batch;
    for (size_t i = 0; i < window_.size(); ++i)
        if (window_[i].runnable && !window_[i].done)
            batch.push_back(i);
    if (batch.empty())
        return;
    ++batches_;

    SweepOptions so;
    so.threads = opts_.threads;
    so.jobThreads = std::max<size_t>(opts_.jobThreads, 1);
    so.compileCache = opts_.useCache ? &cache_ : nullptr;
    so.pool = pool_ ? &*pool_ : nullptr;
    SweepEngine engine(so);
    for (size_t idx : batch) {
        const ServiceRequest &req = window_[idx].req;
        CompilerOptions copts = req.copts;
        if (opts_.verifyLevel >= 0)
            copts.verifyLevel = opts_.verifyLevel;
        else if (req.verifyLevel >= 0)
            copts.verifyLevel = int(req.verifyLevel);
        else
            copts.verifyLevel = defaultVerifyLevel();
        engine.submit(req.name, makeWorkloadBuild(req), req.hw, copts);
    }
    const Clock::time_point batch_start = Clock::now();
    const std::vector<SweepResult> &results = engine.runAll();
    const Clock::time_point batch_end = Clock::now();

    for (size_t k = 0; k < batch.size(); ++k) {
        Entry &entry = window_[batch[k]];
        const PlatformResult &p = results[k].platform;
        ServiceResult &res = entry.res;
        res.status = ServiceStatus::Ok;
        res.cycles = p.sim.cycles;
        res.timeMs = p.sim.timeMs;
        res.dramBytes = p.sim.dramBytes;
        res.dramUtil = p.sim.dramUtil;
        res.nttUtil = p.sim.nttUtil;
        res.mulAddUtil = p.sim.mulAddUtil;
        res.autoUtil = p.sim.autoUtil;
        res.instructions = p.sim.instructions;
        res.machineFingerprint = p.machineFingerprint;
        res.benchTimeMs = p.benchTimeMs;
        res.amortizedUs = p.amortizedUs;
        res.dramGb = p.dramGb;
        for (const auto &[key, value] : p.compilerStats.all())
            res.stats.set("compile." + key, value);
        for (const auto &[key, value] : p.sim.stats.all())
            res.stats.set("sim." + key, value);
        for (const auto &[key, value] : p.jobStats.all())
            res.stats.set(key, value); // already `job.`-prefixed
        res.queueMs = Ms(batch_start - entry.submitted).count();
        res.serviceMs = Ms(batch_end - entry.submitted).count();
        entry.done = true;
    }
}

std::vector<ServiceResult>
ServiceCore::flush()
{
    runBatch();
    ++flushes_;
    std::vector<ServiceResult> out;
    out.reserve(window_.size());
    for (Entry &entry : window_)
        out.push_back(std::move(entry.res));
    window_.clear();
    return out;
}

StatSet
ServiceCore::statsSnapshot() const
{
    StatSet s;
    s.set("service.accepted", double(accepted_));
    s.set("service.rejected", double(rejected_));
    s.set("service.bad_requests", double(bad_requests_));
    s.set("service.flushes", double(flushes_));
    s.set("service.batches", double(batches_));
    s.set("service.queue_peak", double(queue_peak_));
    s.merge(cache_.statsSnapshot());
    return s;
}

bool
replayFrames(const std::vector<Frame> &frames, ServiceCore &core,
             ReplayOutcome *out, std::string *error)
{
    ReplayOutcome outcome;
    auto take = [&outcome](std::vector<ServiceResult> results) {
        for (ServiceResult &res : results)
            outcome.results.push_back(std::move(res));
    };
    for (size_t i = 0; i < frames.size(); ++i) {
        const Frame &frame = frames[i];
        switch (frame.type) {
        case FrameType::Request: {
            ServiceRequest req;
            std::string decode_error;
            if (!decodeRequest(frame.payload, &req, &decode_error)) {
                if (error != nullptr)
                    *error = "corrupt request at frame " +
                             std::to_string(i) + ": " + decode_error;
                return false;
            }
            core.submit(req);
            ++outcome.requests;
            break;
        }
        case FrameType::Flush:
            take(core.flush());
            break;
        case FrameType::Shutdown:
            take(core.flush());
            outcome.sawShutdown = true;
            break;
        default:
            if (error != nullptr)
                *error = "unexpected server-side frame type in request "
                         "log at frame " +
                         std::to_string(i);
            return false;
        }
        if (outcome.sawShutdown)
            break;
    }
    if (!outcome.sawShutdown && core.windowCount() > 0)
        take(core.flush());
    if (out != nullptr)
        *out = std::move(outcome);
    return true;
}

// --- AF_UNIX transport -----------------------------------------------------

namespace {

/** Writes all of `data`, riding out EINTR and partial sends. */
bool
writeAll(int fd, const uint8_t *data, size_t size, std::string *error)
{
    size_t sent = 0;
    while (sent < size) {
        const ssize_t n =
            ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error != nullptr)
                *error = std::string("send failed: ") +
                         std::strerror(errno);
            return false;
        }
        sent += size_t(n);
    }
    return true;
}

bool
sendFrameTo(int fd, FrameType type, const std::vector<uint8_t> &payload,
            std::string *error)
{
    const std::vector<uint8_t> bytes = encodeFrame(type, payload);
    return writeAll(fd, bytes.data(), bytes.size(), error);
}

/**
 * Reads the next complete frame from `fd` into `out`, buffering
 * partial reads in `buf`. Returns Ok, Truncated for a clean EOF with
 * an empty buffer (the caller distinguishes via `eof`), or the decode
 * failure for a malformed stream.
 */
FrameDecodeStatus
readFrameFrom(int fd, std::vector<uint8_t> &buf, Frame *out, bool *eof,
              std::string *error)
{
    *eof = false;
    for (;;) {
        if (!buf.empty()) {
            size_t consumed = 0;
            const FrameDecodeStatus status =
                decodeFrame(buf.data(), buf.size(), out, &consumed);
            if (status == FrameDecodeStatus::Ok) {
                buf.erase(buf.begin(),
                          buf.begin() + std::ptrdiff_t(consumed));
                return status;
            }
            if (status != FrameDecodeStatus::Truncated)
                return status; // malformed beyond repair
        }
        uint8_t chunk[4096];
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error != nullptr)
                *error = std::string("recv failed: ") +
                         std::strerror(errno);
            return FrameDecodeStatus::Truncated;
        }
        if (n == 0) {
            *eof = true;
            return FrameDecodeStatus::Truncated;
        }
        buf.insert(buf.end(), chunk, chunk + n);
    }
}

bool
makeSocketAddress(const std::string &path, sockaddr_un *addr,
                  std::string *error)
{
    if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
        if (error != nullptr)
            *error = "socket path empty or too long (max " +
                     std::to_string(sizeof(addr->sun_path) - 1) +
                     " bytes): '" + path + "'";
        return false;
    }
    std::memset(addr, 0, sizeof(*addr));
    addr->sun_family = AF_UNIX;
    std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

ServiceServer::ServiceServer(ServiceServerOptions opts)
    : opts_(std::move(opts)), core_(opts_.service)
{
}

ServiceServer::~ServiceServer()
{
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        ::unlink(opts_.socketPath.c_str());
    }
}

bool
ServiceServer::start(std::string *error)
{
    sockaddr_un addr;
    if (!makeSocketAddress(opts_.socketPath, &addr, error))
        return false;
    if (!opts_.recordPath.empty() &&
        !recorder_.open(opts_.recordPath, error))
        return false;
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        if (error != nullptr)
            *error = std::string("socket failed: ") + std::strerror(errno);
        return false;
    }
    // A stale socket file from a dead daemon would fail the bind.
    ::unlink(opts_.socketPath.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 8) != 0) {
        if (error != nullptr)
            *error = std::string("bind/listen on '") + opts_.socketPath +
                     "' failed: " + std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    return true;
}

void
ServiceServer::run()
{
    EFFACT_ASSERT(listen_fd_ >= 0, "ServiceServer::run before start()");
    while (!stop_.load()) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break; // listening socket gone
        }
        const bool keep_serving = stop_.load() || handleConnection(fd);
        ::close(fd);
        if (!keep_serving)
            break;
    }
}

void
ServiceServer::stop()
{
    stop_.store(true);
    // Poke the accept loop awake with a throwaway connection.
    sockaddr_un addr;
    std::string ignored;
    if (!makeSocketAddress(opts_.socketPath, &addr, &ignored))
        return;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return;
    ::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr));
    ::close(fd);
}

bool
ServiceServer::handleConnection(int fd)
{
    std::vector<uint8_t> buf;
    for (;;) {
        Frame frame;
        bool eof = false;
        std::string io_error;
        const FrameDecodeStatus status =
            readFrameFrom(fd, buf, &frame, &eof, &io_error);
        if (status != FrameDecodeStatus::Ok) {
            if (eof && buf.empty())
                return true; // clean disconnect; keep serving
            // Malformed or truncated stream: structured error reply,
            // close this connection, daemon stays up.
            std::string reply = eof ? "connection closed mid-frame"
                                    : frameDecodeStatusName(status);
            if (!io_error.empty())
                reply += ": " + io_error;
            sendFrameTo(fd, FrameType::Error, encodeErrorPayload(reply),
                        &io_error);
            return true;
        }
        switch (frame.type) {
        case FrameType::Request: {
            ServiceRequest req;
            std::string decode_error;
            if (!decodeRequest(frame.payload, &req, &decode_error)) {
                sendFrameTo(fd, FrameType::Error,
                            encodeErrorPayload("bad request payload: " +
                                               decode_error),
                            &decode_error);
                return true;
            }
            if (recorder_.isOpen())
                recorder_.append(FrameType::Request, frame.payload);
            core_.submit(req);
            break;
        }
        case FrameType::Flush:
        case FrameType::Shutdown: {
            if (recorder_.isOpen())
                recorder_.append(frame.type, frame.payload);
            const std::vector<ServiceResult> results = core_.flush();
            std::string send_error;
            for (const ServiceResult &res : results)
                if (!sendFrameTo(fd, FrameType::Result,
                                 encodeResult(res), &send_error)) {
                    warn("service: dropping connection: %s",
                         send_error.c_str());
                    return frame.type != FrameType::Shutdown;
                }
            if (frame.type == FrameType::Shutdown)
                return false; // end the accept loop
            break;
        }
        default:
            sendFrameTo(
                fd, FrameType::Error,
                encodeErrorPayload("unexpected client frame type"),
                nullptr);
            return true;
        }
    }
}

// --- Client ----------------------------------------------------------------

ServiceClient::~ServiceClient() { close(); }

bool
ServiceClient::connect(const std::string &socketPath, std::string *error)
{
    close();
    sockaddr_un addr;
    if (!makeSocketAddress(socketPath, &addr, error))
        return false;
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        if (error != nullptr)
            *error = std::string("socket failed: ") + std::strerror(errno);
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (error != nullptr)
            *error = std::string("connect to '") + socketPath +
                     "' failed: " + std::strerror(errno);
        close();
        return false;
    }
    return true;
}

void
ServiceClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    outstanding_ = 0;
    rxbuf_.clear();
}

bool
ServiceClient::sendFrame(FrameType type,
                         const std::vector<uint8_t> &payload,
                         std::string *error)
{
    if (fd_ < 0) {
        if (error != nullptr)
            *error = "not connected";
        return false;
    }
    return sendFrameTo(fd_, type, payload, error);
}

bool
ServiceClient::readFrame(Frame *out, std::string *error)
{
    bool eof = false;
    std::string io_error;
    const FrameDecodeStatus status =
        readFrameFrom(fd_, rxbuf_, out, &eof, &io_error);
    if (status == FrameDecodeStatus::Ok)
        return true;
    if (error != nullptr) {
        if (eof)
            *error = "server closed the connection";
        else if (!io_error.empty())
            *error = io_error;
        else
            *error = std::string("malformed server frame: ") +
                     frameDecodeStatusName(status);
    }
    return false;
}

bool
ServiceClient::sendRequest(const ServiceRequest &req, std::string *error)
{
    if (!sendFrame(FrameType::Request, encodeRequest(req), error))
        return false;
    ++outstanding_;
    return true;
}

bool
ServiceClient::collectResults(size_t count,
                              std::vector<ServiceResult> *results,
                              std::string *error)
{
    for (size_t i = 0; i < count; ++i) {
        Frame frame;
        if (!readFrame(&frame, error))
            return false;
        if (frame.type == FrameType::Error) {
            std::string message;
            decodeErrorPayload(frame.payload, &message);
            if (error != nullptr)
                *error = "server error: " + message;
            return false;
        }
        if (frame.type != FrameType::Result) {
            if (error != nullptr)
                *error = "unexpected frame type from server";
            return false;
        }
        ServiceResult res;
        std::string decode_error;
        if (!decodeResult(frame.payload, &res, &decode_error)) {
            if (error != nullptr)
                *error = "bad result payload: " + decode_error;
            return false;
        }
        if (results != nullptr)
            results->push_back(std::move(res));
    }
    return true;
}

bool
ServiceClient::flush(std::vector<ServiceResult> *results, std::string *error)
{
    if (!sendFrame(FrameType::Flush, {}, error))
        return false;
    const size_t expect = outstanding_;
    outstanding_ = 0;
    return collectResults(expect, results, error);
}

bool
ServiceClient::shutdownServer(std::vector<ServiceResult> *results,
                              std::string *error)
{
    if (!sendFrame(FrameType::Shutdown, {}, error))
        return false;
    const size_t expect = outstanding_;
    outstanding_ = 0;
    return collectResults(expect, results, error);
}

} // namespace effact
