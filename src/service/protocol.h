/**
 * @file
 * Wire format of the compile-and-simulate service: a length-prefixed,
 * versioned, checksummed binary framing plus the request/result
 * message payloads. The format is deliberately dumb — little-endian
 * fixed-width fields, length-prefixed strings, doubles as IEEE-754 bit
 * patterns — so that encoded bytes are a *canonical* function of the
 * message content. That is what makes the replay-determinism contract
 * checkable at the byte level: two service sessions (or a session and
 * the uncached serial oracle) agree iff their encoded result streams
 * are identical.
 *
 * Framing. Every message on the wire (and in a recorded request log)
 * is one frame:
 *
 *     u32 magic     'EFCT' (little-endian)
 *     u16 version   kProtocolVersion
 *     u16 type      FrameType
 *     u32 length    payload bytes that follow (<= kMaxFramePayload)
 *     u64 checksum  FNV-1a over (version, type, payload)
 *     u8  payload[length]
 *
 * The checksum covers the type and version fields, so *any* single-byte
 * corruption of a frame — header or payload — is detected: magic and
 * version bytes fail their direct checks, and everything else (type
 * flips between valid values, length edits, payload edits) lands on a
 * checksum mismatch. `decodeFrame` never reads past the supplied
 * buffer and reports structured `FrameDecodeStatus` errors instead of
 * crashing; malformed input from an untrusted client costs one error
 * frame, not the daemon.
 */
#ifndef EFFACT_SERVICE_PROTOCOL_H
#define EFFACT_SERVICE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "compiler/pass.h"
#include "ir/kernels.h"
#include "sim/config.h"

namespace effact {

// --- Framing ---------------------------------------------------------------

/** 'E','F','C','T' read as a little-endian u32. */
constexpr uint32_t kFrameMagic = 0x54434645u;
/** v2: request payloads carry the back-end policy strings
 *  (`CompilerOptions::scheduler` / `::regalloc`) after `fifoDepth`. */
constexpr uint16_t kProtocolVersion = 2;
/** Hard payload bound: a request or result is a few KB; anything
 *  megabytes-large is garbage and refused before allocation. */
constexpr uint32_t kMaxFramePayload = 1u << 20;
/** Bytes before the payload: magic + version + type + length + checksum */
constexpr size_t kFrameHeaderBytes = 4 + 2 + 2 + 4 + 8;

enum class FrameType : uint16_t
{
    Request = 1,  ///< client -> server: one ServiceRequest
    Result = 2,   ///< server -> client: one ServiceResult
    Error = 3,    ///< server -> client: protocol-level error string
    Flush = 4,    ///< client -> server: run pending, return all results
    Shutdown = 5, ///< client -> server: final flush, then stop serving
};

/** One decoded frame. */
struct Frame
{
    uint16_t version = kProtocolVersion;
    FrameType type = FrameType::Error;
    std::vector<uint8_t> payload;
};

enum class FrameDecodeStatus
{
    Ok,
    Truncated,   ///< buffer shorter than header + declared payload
    BadMagic,
    BadVersion,
    BadType,
    Oversized,   ///< declared payload length exceeds kMaxFramePayload
    BadChecksum,
};

const char *frameDecodeStatusName(FrameDecodeStatus status);

/** Encodes `payload` as one frame of `type`. */
std::vector<uint8_t> encodeFrame(FrameType type,
                                 const std::vector<uint8_t> &payload);

/**
 * Decodes the frame at the front of `data`. On `Ok`, fills `out` and
 * sets `consumed` to the frame's total size (header + payload). Never
 * reads past `size`; never crashes on malformed input.
 */
FrameDecodeStatus decodeFrame(const uint8_t *data, size_t size, Frame *out,
                              size_t *consumed);

// --- Messages --------------------------------------------------------------

/**
 * One compile-and-simulate request: which workload to build (by kind
 * name + scheme parameters), the hardware design point, and the
 * compiler options. `hw.sramBytes` / `hw.issueWindow` are authoritative
 * — `Platform` overwrites the corresponding `CompilerOptions` fields,
 * exactly as in batch mode.
 */
struct ServiceRequest
{
    uint64_t tag = 0;      ///< client-chosen id, echoed in the result
    std::string name;      ///< display name, echoed in the result
    std::string workload;  ///< kind: dblookup|bootstrap|helr|resnet20|tfhe
    FheParams fhe;         ///< scheme parameters for the builder
    uint64_t param = 0;    ///< kind-specific knob (dblookup: records;
                           ///< 0 = the builder's default)
    HardwareConfig hw;
    CompilerOptions copts;
    /** Wire verify level: -1 = resolve `defaultVerifyLevel()` (the
     *  `EFFACT_VERIFY` env) on the *server* at execution time; >= 0 =
     *  explicit. Carried separately from `copts.verifyLevel` so a
     *  recorded log replays identically under a different client env. */
    int64_t verifyLevel = -1;
};

/** Request outcome, the admission-control contract of the daemon. */
enum class ServiceStatus : uint32_t
{
    Ok = 0,
    /** Refused by backpressure: the pending queue already held
     *  `queueCapacity` accepted requests. The documented reject-when-
     *  full error code. */
    RejectedQueueFull = 1,
    BadRequest = 2,    ///< failed validation; `error` says why
    InternalError = 3, ///< server-side failure unrelated to the request
};

const char *serviceStatusName(ServiceStatus status);

/**
 * One request's outcome. For `Ok`, the deterministic result fields
 * (cycles, fingerprint, instructions, bench metrics, stats) are
 * byte-identical to a batch-mode `SweepEngine` run of the same job —
 * modulo wall-clock (`*.ms`) and queue-observability fields, which
 * `canonicalResult` strips for comparisons.
 */
struct ServiceResult
{
    uint64_t seq = 0; ///< server-assigned submission order
    uint64_t tag = 0;
    std::string name;
    ServiceStatus status = ServiceStatus::Ok;
    std::string error;

    // Deterministic payload (valid when status == Ok).
    double cycles = 0;
    double timeMs = 0;
    double dramBytes = 0;
    double dramUtil = 0;
    double nttUtil = 0;
    double mulAddUtil = 0;
    double autoUtil = 0;
    uint64_t instructions = 0;
    uint64_t machineFingerprint = 0;
    double benchTimeMs = 0;
    double amortizedUs = 0;
    double dramGb = 0;
    /** Merged per-job stats: compiler stats under `compile.`, simulator
     *  stats under `sim.`, per-stage wall-clock under `job.`. */
    StatSet stats;

    // Queue observability (never part of the determinism contract).
    uint64_t queueDepth = 0; ///< pending entries at admission time
    double queueMs = 0;      ///< submit -> batch start
    double serviceMs = 0;    ///< submit -> result ready
};

std::vector<uint8_t> encodeRequest(const ServiceRequest &req);
bool decodeRequest(const std::vector<uint8_t> &payload, ServiceRequest *out,
                   std::string *error);

std::vector<uint8_t> encodeResult(const ServiceResult &res);
bool decodeResult(const std::vector<uint8_t> &payload, ServiceResult *out,
                  std::string *error);

/** Error-frame payload: just a length-prefixed string. */
std::vector<uint8_t> encodeErrorPayload(const std::string &message);
bool decodeErrorPayload(const std::vector<uint8_t> &payload,
                        std::string *message);

// --- Canonicalization ------------------------------------------------------

/**
 * The comparison form of a result: queue-observability fields zeroed
 * and nondeterministic stat keys dropped (any `*.ms` wall-clock key,
 * any `cache.*` hit/miss accounting, any `service.*` key). What
 * remains — status, cycles, fingerprints, instruction counts, bench
 * metrics, deterministic stats — must be byte-identical across thread
 * counts, cache configurations and record/replay runs.
 */
ServiceResult canonicalResult(const ServiceResult &res);

/** `encodeResult(canonicalResult(res))`: the bytes the determinism
 *  tests concatenate and pin. */
std::vector<uint8_t> canonicalResultBytes(const ServiceResult &res);

/**
 * One-line text form of a canonical result (exact: doubles printed
 * with %.17g round-trip precision, stats folded into an FNV-1a hash),
 * for CLI diffing between a live session, an offline replay and the
 * batch oracle.
 */
std::string canonicalResultLine(const ServiceResult &res);

} // namespace effact

#endif // EFFACT_SERVICE_PROTOCOL_H
