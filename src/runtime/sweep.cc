#include "runtime/sweep.h"

#include <algorithm>

#include "common/logging.h"
#include "compiler/pass_manager.h"

namespace effact {

namespace {

/** Runs one job against a worker-owned analysis manager (and, when the
 *  engine has one, the shared compile cache). */
SweepResult
runJob(const SweepJob &job, size_t index, AnalysisManager &analyses,
       CompileCache *cache)
{
    EFFACT_ASSERT(job.build != nullptr, "sweep job '%s' has no workload",
                  job.name.c_str());
    Workload workload = job.build();
    Platform platform(job.hw, job.copts);
    SweepResult r;
    r.name = job.name;
    r.jobIndex = index;
    r.platform = platform.run(workload, analyses, cache);
    return r;
}

/** Accumulates one value into `<key>.{sum,min,max,count}`. */
void
accumulate(StatSet &agg, const std::string &key, double value)
{
    agg.add(key + ".sum", value);
    agg.add(key + ".count", 1);
    const std::string min_key = key + ".min";
    const std::string max_key = key + ".max";
    if (!agg.has(min_key) || value < agg.get(min_key))
        agg.set(min_key, value);
    if (!agg.has(max_key) || value > agg.get(max_key))
        agg.set(max_key, value);
}

} // namespace

size_t
SweepEngine::submit(SweepJob job)
{
    EFFACT_ASSERT(!ran_, "submit after runAll");
    if (opts_.verifyLevel >= 0)
        job.copts.verifyLevel = opts_.verifyLevel;
    jobs_.push_back(std::move(job));
    return jobs_.size() - 1;
}

size_t
SweepEngine::submit(std::string name, std::function<Workload()> build,
                    HardwareConfig hw, CompilerOptions copts)
{
    SweepJob job;
    job.name = std::move(name);
    job.build = std::move(build);
    job.hw = std::move(hw);
    job.copts = copts;
    return submit(std::move(job));
}

const std::vector<SweepResult> &
SweepEngine::runAll()
{
    EFFACT_ASSERT(!ran_, "runAll is one-shot per engine");
    ran_ = true;
    results_.resize(jobs_.size());

    const size_t want = threads();
    if (want <= 1 || jobs_.size() <= 1) {
        // Serial path: submission order on the calling thread, one
        // shared analysis manager (sound: caches key on program uid).
        workers_used_ = 1;
        AnalysisManager analyses;
        for (size_t i = 0; i < jobs_.size(); ++i)
            results_[i] = runJob(jobs_[i], i, analyses,
                                 opts_.compileCache);
    } else {
        const size_t n_workers = std::min(want, jobs_.size());
        workers_used_ = n_workers;
        // Per-worker analysis managers: caching without locking.
        // Workers write disjoint result slots, so the only
        // synchronization is the pool's queue and the final wait
        // barrier.
        std::vector<AnalysisManager> analyses(n_workers);
        ThreadPool pool(n_workers);
        for (size_t i = 0; i < jobs_.size(); ++i) {
            pool.submit([this, i, &analyses](size_t worker) {
                results_[i] = runJob(jobs_[i], i, analyses[worker],
                                     opts_.compileCache);
            });
        }
        pool.wait();
    }

    // Aggregates from the ordered results on the calling thread:
    // deterministic accumulation order regardless of worker timing.
    aggregates_.clear();
    for (const SweepResult &r : results_) {
        for (const auto &[key, value] : r.platform.compilerStats.all())
            accumulate(aggregates_, "compile." + key, value);
        for (const auto &[key, value] : r.platform.sim.stats.all())
            accumulate(aggregates_, "sim." + key, value);
        accumulate(aggregates_, "platform.benchTimeMs",
                   r.platform.benchTimeMs);
        accumulate(aggregates_, "platform.dramGb", r.platform.dramGb);
        accumulate(aggregates_, "platform.cycles", r.platform.sim.cycles);
        accumulate(aggregates_, "platform.instructions",
                   double(r.platform.sim.instructions));
    }
    // Derive means once the sums are complete.
    std::vector<std::pair<std::string, double>> means;
    for (const auto &[key, value] : aggregates_.all()) {
        const size_t dot = key.rfind(".sum");
        if (dot == std::string::npos || dot + 4 != key.size())
            continue;
        const std::string base = key.substr(0, dot);
        const double count = aggregates_.get(base + ".count");
        if (count > 0)
            means.emplace_back(base + ".mean", value / count);
    }
    for (const auto &[key, value] : means)
        aggregates_.set(key, value);
    aggregates_.set("sweep.jobs", double(jobs_.size()));
    aggregates_.set("sweep.threads", double(workers_used_));
    // Shared-cache totals ride along under their own `cache.*` keys.
    // Cumulative for the cache's lifetime: a cache shared across
    // engines reports its running totals, not this batch's delta.
    if (opts_.compileCache != nullptr)
        aggregates_.merge(opts_.compileCache->statsSnapshot());
    return results_;
}

} // namespace effact
