#include "runtime/sweep.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>

#include "common/logging.h"
#include "compiler/pass_manager.h"

namespace effact {

namespace {

using Clock = std::chrono::steady_clock;
using Ms = std::chrono::duration<double, std::milli>;

/** Runs one job monolithically against a worker-owned analysis manager
 *  (and, when the engine has one, the shared compile cache). `exec`
 *  carries the within-job parallelism: a default executor keeps every
 *  pass on the legacy serial scans. */
SweepResult
runJob(const SweepJob &job, size_t index, AnalysisManager &analyses,
       CompileCache *cache, const ParallelExec &exec)
{
    EFFACT_ASSERT(job.build != nullptr, "sweep job '%s' has no workload",
                  job.name.c_str());
    const Clock::time_point t0 = Clock::now();
    Workload workload = job.build();
    const double ir_ms = Ms(Clock::now() - t0).count();
    analyses.setExec(exec);
    Platform platform(job.hw, job.copts);
    SweepResult r;
    r.name = job.name;
    r.jobIndex = index;
    r.platform = platform.run(workload, analyses, cache);
    r.platform.jobStats.set("job.ir.ms", ir_ms);
    return r;
}

/**
 * Mutable state of one stage-pipelined job, alive from its IR-build
 * task to its simulate task. Stages chain strictly (each submits the
 * next when it finishes), so no synchronization beyond the pool queue
 * is needed; each job owns a private `AnalysisManager` because
 * consecutive stages may land on different workers.
 */
struct StagedJob
{
    std::optional<Workload> workload;
    std::optional<Platform> platform;
    std::optional<Compiler> compiler;
    AnalysisManager analyses;
    MachineProgram mp;
    double irMs = 0;
    double middleMs = 0;
    double backendMs = 0;
};

/** Accumulates one value into `<key>.{sum,min,max,count}`. */
void
accumulate(StatSet &agg, const std::string &key, double value)
{
    agg.add(key + ".sum", value);
    agg.add(key + ".count", 1);
    const std::string min_key = key + ".min";
    const std::string max_key = key + ".max";
    if (!agg.has(min_key) || value < agg.get(min_key))
        agg.set(min_key, value);
    if (!agg.has(max_key) || value > agg.get(max_key))
        agg.set(max_key, value);
}

} // namespace

size_t
SweepEngine::submit(SweepJob job)
{
    EFFACT_ASSERT(!ran_, "submit after runAll");
    if (opts_.verifyLevel >= 0)
        job.copts.verifyLevel = opts_.verifyLevel;
    jobs_.push_back(std::move(job));
    return jobs_.size() - 1;
}

size_t
SweepEngine::submit(std::string name, std::function<Workload()> build,
                    HardwareConfig hw, CompilerOptions copts)
{
    SweepJob job;
    job.name = std::move(name);
    job.build = std::move(build);
    job.hw = std::move(hw);
    job.copts = copts;
    return submit(std::move(job));
}

const std::vector<SweepResult> &
SweepEngine::runAll()
{
    EFFACT_ASSERT(!ran_, "runAll is one-shot per engine");
    ran_ = true;
    results_.resize(jobs_.size());

    const size_t want = threads();
    const size_t job_threads = std::max<size_t>(opts_.jobThreads, 1);
    if (want <= 1 || jobs_.size() <= 1) {
        // Serial path: submission order on the calling thread, one
        // shared analysis manager (sound: caches key on program uid).
        // Within-job parallelism still applies — a pool sized
        // `jobThreads` runs the region shards while the job itself
        // stays on the calling thread (the single-big-job latency
        // case).
        workers_used_ = 1;
        AnalysisManager analyses;
        std::optional<ThreadPool> shard_pool;
        ParallelExec exec;
        if (job_threads > 1 && !jobs_.empty()) {
            shard_pool.emplace(job_threads);
            exec = ParallelExec(&*shard_pool);
        }
        for (size_t i = 0; i < jobs_.size(); ++i)
            results_[i] = runJob(jobs_[i], i, analyses,
                                 opts_.compileCache, exec);
    } else {
        const size_t n_workers = std::min(want, jobs_.size());
        workers_used_ = n_workers;
        // Pool sized for both levels: job tasks outside, region shards
        // inside (nested task groups share the queue and the workers).
        // An external pool arrives pre-sized by its owner.
        const size_t pool_size = std::max(n_workers, job_threads);
        std::optional<ThreadPool> owned;
        ThreadPool *pool = opts_.pool;
        if (pool == nullptr) {
            owned.emplace(pool_size);
            pool = &*owned;
        }
        if (!opts_.pipelineStages || opts_.pool != nullptr) {
            // Per-worker analysis managers: caching without locking.
            // Workers write disjoint result slots, so the only
            // synchronization is the pool's queue and the group wait
            // barrier. One extra manager slot for the calling thread:
            // `Group::wait` helps run queued tasks inline, and inline
            // tasks on an external thread report index
            // `threadCount()`.
            std::vector<AnalysisManager> analyses(pool->threadCount() + 1);
            ThreadPool::Group group(*pool);
            for (size_t i = 0; i < jobs_.size(); ++i) {
                group.submit([this, i, &analyses, pool,
                              job_threads](size_t worker) {
                    const ParallelExec exec =
                        job_threads > 1 ? ParallelExec(pool, worker)
                                        : ParallelExec();
                    results_[i] = runJob(jobs_[i], i, analyses[worker],
                                         opts_.compileCache, exec);
                });
            }
            group.wait();
        } else {
            // Stage-pipelined: each job is four chained tasks. A stage
            // submits its successor on completion, so job A's simulate
            // overlaps job B's back end; `pool.wait()` returns only
            // once every chain has run to its end (chained submissions
            // keep the pool busy).
            std::vector<StagedJob> staged(jobs_.size());
            for (size_t i = 0; i < jobs_.size(); ++i) {
                pool->submit([this, i, &staged, pool,
                             job_threads](size_t) {
                    const SweepJob &job = jobs_[i];
                    EFFACT_ASSERT(job.build != nullptr,
                                  "sweep job '%s' has no workload",
                                  job.name.c_str());
                    StagedJob &st = staged[i];
                    const Clock::time_point t0 = Clock::now();
                    st.workload.emplace(job.build());
                    st.irMs = Ms(Clock::now() - t0).count();

                    pool->submit([this, i, &staged, pool,
                                 job_threads](size_t worker) {
                        const SweepJob &job = jobs_[i];
                        StagedJob &st = staged[i];
                        st.platform.emplace(job.hw, job.copts);
                        st.compiler.emplace(st.platform->makeCompiler());
                        st.analyses.setExec(
                            job_threads > 1 ? ParallelExec(pool, worker)
                                            : ParallelExec());
                        const Clock::time_point t0 = Clock::now();
                        st.compiler->compileMiddle(st.workload->program,
                                                   st.analyses,
                                                   opts_.compileCache);
                        st.middleMs = Ms(Clock::now() - t0).count();

                        pool->submit([this, i, &staged, pool,
                                     job_threads](size_t worker) {
                            StagedJob &st = staged[i];
                            st.analyses.setExec(
                                job_threads > 1
                                    ? ParallelExec(pool, worker)
                                    : ParallelExec());
                            const Clock::time_point t0 = Clock::now();
                            st.mp = st.compiler->compileBack(
                                st.workload->program, st.analyses);
                            st.backendMs = Ms(Clock::now() - t0).count();

                            pool->submit([this, i, &staged](size_t) {
                                StagedJob &st = staged[i];
                                const Clock::time_point t0 = Clock::now();
                                SimReport rep =
                                    st.platform->simulate(st.mp);
                                const double sim_ms =
                                    Ms(Clock::now() - t0).count();
                                SweepResult &r = results_[i];
                                r.name = jobs_[i].name;
                                r.jobIndex = i;
                                r.platform = st.platform->assemble(
                                    *st.compiler, st.mp, *st.workload,
                                    std::move(rep));
                                r.platform.jobStats.set("job.ir.ms",
                                                        st.irMs);
                                r.platform.jobStats.set("job.middle.ms",
                                                        st.middleMs);
                                r.platform.jobStats.set("job.backend.ms",
                                                        st.backendMs);
                                r.platform.jobStats.set("job.sim.ms",
                                                        sim_ms);
                                // Release the job's working set early:
                                // a big grid holds N IR programs
                                // otherwise.
                                st.workload.reset();
                                st.compiler.reset();
                                st.mp = MachineProgram();
                            });
                        });
                    });
                });
            }
            pool->wait();
        }
    }

    // Aggregates from the ordered results on the calling thread:
    // deterministic accumulation order regardless of worker timing.
    aggregates_.clear();
    for (const SweepResult &r : results_) {
        for (const auto &[key, value] : r.platform.compilerStats.all())
            accumulate(aggregates_, "compile." + key, value);
        for (const auto &[key, value] : r.platform.sim.stats.all())
            accumulate(aggregates_, "sim." + key, value);
        for (const auto &[key, value] : r.platform.jobStats.all())
            accumulate(aggregates_, key, value); // already `job.`-prefixed
        accumulate(aggregates_, "platform.benchTimeMs",
                   r.platform.benchTimeMs);
        accumulate(aggregates_, "platform.dramGb", r.platform.dramGb);
        accumulate(aggregates_, "platform.cycles", r.platform.sim.cycles);
        accumulate(aggregates_, "platform.instructions",
                   double(r.platform.sim.instructions));
    }
    // Derive means once the sums are complete.
    std::vector<std::pair<std::string, double>> means;
    for (const auto &[key, value] : aggregates_.all()) {
        const size_t dot = key.rfind(".sum");
        if (dot == std::string::npos || dot + 4 != key.size())
            continue;
        const std::string base = key.substr(0, dot);
        const double count = aggregates_.get(base + ".count");
        if (count > 0)
            means.emplace_back(base + ".mean", value / count);
    }
    for (const auto &[key, value] : means)
        aggregates_.set(key, value);
    aggregates_.set("sweep.jobs", double(jobs_.size()));
    aggregates_.set("sweep.threads", double(workers_used_));
    // Shared-cache totals ride along under their own `cache.*` keys.
    // Cumulative for the cache's lifetime: a cache shared across
    // engines reports its running totals, not this batch's delta.
    if (opts_.compileCache != nullptr)
        aggregates_.merge(opts_.compileCache->statsSnapshot());
    return results_;
}

} // namespace effact
