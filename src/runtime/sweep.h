/**
 * @file
 * Batch-execution engine: submit N (workload, hardware, compiler
 * options) jobs, compile and simulate them concurrently on a fixed-size
 * `ThreadPool`, and collect results in deterministic submission order.
 * Every worker owns a private `AnalysisManager`, so analysis caching
 * needs no locking. Cross-job reuse is the (opt-in) shared
 * `CompileCache`: keyed on program *content* plus the compiler preset
 * — not process-local ids — it deduplicates the hardware-independent
 * middle end across jobs, so a preset x hardware grid optimizes each
 * (workload, preset) once. Each job is pure given its inputs, and
 * cache entries are immutable single-flight snapshots, so results —
 * simulated cycles, machine-code fingerprints, stat aggregates — are
 * byte-identical at any thread count and any hit pattern. `threads = 1`
 * is the serial path: jobs run in submission order on the calling
 * thread with no pool.
 */
#ifndef EFFACT_RUNTIME_SWEEP_H
#define EFFACT_RUNTIME_SWEEP_H

#include <functional>
#include <string>
#include <vector>

#include "compiler/compile_cache.h"
#include "platform/platform.h"
#include "runtime/thread_pool.h"

namespace effact {

/** One batch job: how to build the workload and where to run it. */
struct SweepJob
{
    std::string name;
    /** Workload factory, invoked on the executing worker (program
     *  construction is part of the parallel work). Must be safe to call
     *  from any thread — build the IR inside, don't capture shared
     *  mutable state. */
    std::function<Workload()> build;
    HardwareConfig hw;
    CompilerOptions copts;
};

/** One job's outcome, delivered in submission order. */
struct SweepResult
{
    std::string name;
    size_t jobIndex = 0;
    PlatformResult platform;
};

/** Engine knobs. */
struct SweepOptions
{
    /** Worker count; 1 = serial on the calling thread (no pool). */
    size_t threads = 1;
    /**
     * Opt-in shared compile cache: when set, every job's compile
     * consults it, so the hardware-independent middle end runs once per
     * (workload, preset) key instead of once per job. The store is
     * sharded, mutex-protected and single-flight; per-worker
     * `AnalysisManager`s stay lock-free. Results are byte-identical to
     * an uncached run at any thread count and any hit pattern. The
     * caller owns the cache (it may outlive the engine and be shared
     * across engines); its cumulative `cache.*` stats are merged into
     * the engine's aggregates after `runAll()`.
     */
    CompileCache *compileCache = nullptr;
    /**
     * Batch-wide verification override: -1 (default) leaves every job's
     * `CompilerOptions::verifyLevel` alone; >= 0 forces that level onto
     * all jobs, so a harness can run a whole sweep fully checkpointed
     * (or force it off in a Release perf lane) without editing each
     * job's options.
     */
    int verifyLevel = -1;
    /**
     * Within-job parallelism width (defaults to the `EFFACT_JOB_THREADS`
     * environment variable, which defaults to 1 = serial passes). When
     * > 1, each job's middle end, analysis builds and back-end emission
     * run region-sharded on that many workers (`ParallelExec`): a single
     * paper-scale job drops its latency instead of only the batch
     * throughput scaling. Results are bit-identical at any setting —
     * chunk boundaries depend only on program sizes and every
     * cross-chunk merge is deterministic — so this knob is deliberately
     * NOT part of any cache key or preset hash. With `threads > 1` the
     * shards share the batch pool via nested task groups; the pool is
     * sized `max(threads, jobThreads)` so a lone job can still fan out.
     */
    size_t jobThreads = defaultJobThreadCount();
    /**
     * Stage-pipelined execution: run each job as four chained pool
     * tasks (IR build -> middle end -> back end -> simulate) instead of
     * one monolithic task, so job A's simulation overlaps job B's back
     * end even when the grid is small relative to the worker count.
     * Results (and their order) are identical to the monolithic mode;
     * only host scheduling changes. Ignored on the serial path
     * (`threads <= 1`), where stages would chain on one thread anyway,
     * and with an external `pool` (see below).
     */
    bool pipelineStages = false;
    /**
     * Caller-owned worker pool: when set, the parallel path runs its
     * job tasks as a `ThreadPool::Group` on this pool instead of
     * constructing a private one — the long-lived-service shape, where
     * one fixed pool serves every batch and pool construction cost /
     * thread churn per batch would be wrong. The engine neither sizes
     * nor shuts the pool down; `threads` still caps this batch's
     * concurrency appetite but the pool's own width is what actually
     * bounds parallelism. Results are byte-identical to a private
     * pool of any size (worker scheduling is never observable).
     * `pipelineStages` is ignored with an external pool (stage
     * chaining is wired to private-pool draining); the monolithic
     * per-job tasks are used instead. Ignored on the serial path.
     */
    ThreadPool *pool = nullptr;
};

/**
 * Compile-and-simulate batch driver. `submit()` jobs, then `runAll()`
 * once; results and per-stat aggregates are then available. Aggregates
 * are computed from the ordered results on the calling thread, so they
 * are independent of worker scheduling.
 */
class SweepEngine
{
  public:
    explicit SweepEngine(SweepOptions opts = {}) : opts_(opts) {}

    /** Enqueues a job; returns its index (= result position). */
    size_t submit(SweepJob job);

    /** Convenience overload building the `SweepJob` in place. */
    size_t submit(std::string name, std::function<Workload()> build,
                  HardwareConfig hw, CompilerOptions copts);

    /**
     * Runs every submitted job (concurrently when `threads > 1`) and
     * returns the results in submission order. One-shot per engine.
     */
    const std::vector<SweepResult> &runAll();

    /** Results of `runAll()`, in submission order. */
    const std::vector<SweepResult> &results() const { return results_; }

    /**
     * Per-statistic aggregates over all jobs, valid after `runAll()`:
     * for every key `k` in a job's compiler stats (prefixed
     * `compile.`), simulator stats (`sim.`), per-stage wall-clock stats
     * (already prefixed `job.`) and benchmark-level metrics
     * (`platform.`), the batch records `<k>.sum`, `<k>.min`, `<k>.max`,
     * `<k>.mean` and `<k>.count` (jobs reporting the key), plus
     * `sweep.jobs` and `sweep.threads`.
     */
    const StatSet &aggregates() const { return aggregates_; }

    size_t jobCount() const { return jobs_.size(); }

    /** Requested worker count (the `SweepOptions` knob, floored at 1) */
    size_t threads() const { return opts_.threads == 0 ? 1 : opts_.threads; }

    /** Workers actually used by `runAll()` — the request clamped to the
     *  job count (1 before the run). This is what `sweep.threads`
     *  reports, so per-worker throughput math has the right
     *  denominator. */
    size_t workersUsed() const { return workers_used_; }

  private:
    SweepOptions opts_;
    std::vector<SweepJob> jobs_;
    std::vector<SweepResult> results_;
    StatSet aggregates_;
    size_t workers_used_ = 1;
    bool ran_ = false;
};

} // namespace effact

#endif // EFFACT_RUNTIME_SWEEP_H
