/**
 * @file
 * Fixed-size worker thread pool for the batch-execution runtime. Tasks
 * are plain callables invoked with the executing worker's index, so a
 * submitter can give each worker its own unlocked context (the
 * `SweepEngine` hands every worker a private `AnalysisManager`).
 *
 * `ThreadPool::Group` adds nested-task support: a task already running
 * on a worker can fan out sub-tasks into the shared queue and block on
 * just those, helping execute them while it waits. That makes the pool
 * safe for two-level parallelism (jobs outside, per-job region shards
 * inside) without a second pool and without deadlock: a waiter never
 * sleeps while one of its own sub-tasks is still queued.
 */
#ifndef EFFACT_RUNTIME_THREAD_POOL_H
#define EFFACT_RUNTIME_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace effact {

/**
 * A fixed set of worker threads draining a FIFO task queue. Tasks must
 * not throw (the codebase reports errors through `panic`/`fatal`, which
 * abort the process from any thread). The destructor drains the queue
 * before joining, so a submitted task always runs.
 */
class ThreadPool
{
  public:
    /** Task signature: `worker` is the executing worker's index in
     *  `[0, threadCount())`, stable for that worker's lifetime. Tasks
     *  executed inline by a thread blocked in `Group::wait()` receive
     *  the index that waiter passed (its own worker index, or
     *  `threadCount()` for an external thread). */
    using Task = std::function<void(size_t worker)>;

    /**
     * Spawns `threads` workers (at least one). `maxQueued` bounds the
     * *queued* (not yet running) task count seen by `trySubmit`:
     * 0 = unbounded (the batch default), > 0 = admission control for
     * service owners. Plain `submit` ignores the bound — internal
     * fan-out (group sub-tasks, stage chaining) must never be refused,
     * or a half-submitted job would deadlock its own barrier.
     */
    explicit ThreadPool(size_t threads, size_t maxQueued = 0);

    /** Drains outstanding tasks, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    size_t threadCount() const { return workers_.size(); }

    /** The `maxQueued` admission bound (0 = unbounded). */
    size_t maxQueued() const { return max_queued_; }

    /** Enqueues one task; runnable immediately by any idle worker. */
    void submit(Task task);

    /**
     * Bounded-admission enqueue: refuses (returns false, task not
     * enqueued) when the queue already holds `maxQueued()` tasks
     * (given a nonzero bound) or the pool is shutting down; otherwise
     * behaves exactly like `submit` and returns true. An accepted task
     * always runs, exactly once — `shutdown()` drains before joining.
     */
    bool trySubmit(Task task);

    /** Tasks currently queued (excluding running ones): the admission
     *  pressure `trySubmit` checks. A point-in-time reading. */
    size_t queueDepth() const;

    /**
     * Stops accepting new work, drains every already-accepted task,
     * and joins the workers. Idempotent; the destructor calls it.
     * After shutdown, `trySubmit` returns false (and `submit`
     * asserts). Safe to race with concurrent `trySubmit` calls: each
     * task is either refused or runs exactly once.
     */
    void shutdown();

    /** Blocks until every submitted task has finished executing
     *  (including tasks submitted through groups). Intended for the
     *  top-level owner; nested tasks use `Group::wait()`. */
    void wait();

    /**
     * A batch of related tasks that can be waited on independently of
     * the rest of the pool. Sub-tasks share the pool's queue and
     * workers; `wait()` *helps*: while its own tasks sit in the queue it
     * dequeues and runs them on the calling thread, and it only sleeps
     * when every remaining task of the group is already running on some
     * other thread. Safe to use from inside a pool task (nested
     * parallelism) and from external threads alike. Not thread-safe
     * itself: one thread drives a given group.
     */
    class Group
    {
      public:
        explicit Group(ThreadPool &pool) : pool_(pool) {}
        /** Waits for any stragglers (a submitted task always runs). */
        ~Group() { wait(); }

        Group(const Group &) = delete;
        Group &operator=(const Group &) = delete;

        /** Enqueues one task belonging to this group. */
        void submit(Task task);

        /**
         * Blocks until every task submitted to this group has finished,
         * executing queued group tasks inline while it waits. Tasks run
         * inline receive `helper_worker` as their worker index; pass
         * the caller's own worker index when waiting from inside a pool
         * task (defaults to `threadCount()`, the "external thread"
         * slot).
         */
        void wait(size_t helper_worker = SIZE_MAX);

      private:
        friend class ThreadPool;
        ThreadPool &pool_;
        size_t pending_ = 0; ///< queued + running, guarded by pool mu_
    };

  private:
    /** Queue entry: the task plus its owning group (null = top level) */
    struct Entry
    {
        Task task;
        Group *group = nullptr;
    };

    void workerLoop(size_t worker);
    /** Marks one task of `group` finished; wakes waiters. Caller holds
     *  `mu_`. */
    void finishTask(Group *group);

    std::vector<std::thread> workers_;
    std::deque<Entry> queue_;
    mutable std::mutex mu_;
    std::condition_variable work_ready_;
    std::condition_variable all_done_;
    std::condition_variable group_done_;
    size_t running_ = 0; ///< tasks currently executing
    size_t max_queued_ = 0; ///< `trySubmit` admission bound (0 = none)
    bool stopping_ = false;
    bool joined_ = false; ///< workers joined (shutdown ran to the end)
};

/**
 * Worker-count default for batch runs: the `EFFACT_THREADS` environment
 * variable when set to a positive integer, otherwise the hardware
 * concurrency (at least 1). `EFFACT_THREADS=1` selects the serial path.
 */
size_t defaultThreadCount();

/**
 * Within-job worker-count default: the `EFFACT_JOB_THREADS` environment
 * variable when set to a positive integer, otherwise 1 (within-job
 * parallelism is opt-in; results are identical at any setting).
 */
size_t defaultJobThreadCount();

} // namespace effact

#endif // EFFACT_RUNTIME_THREAD_POOL_H
