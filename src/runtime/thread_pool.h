/**
 * @file
 * Fixed-size worker thread pool for the batch-execution runtime. Tasks
 * are plain callables invoked with the executing worker's index, so a
 * submitter can give each worker its own unlocked context (the
 * `SweepEngine` hands every worker a private `AnalysisManager`).
 */
#ifndef EFFACT_RUNTIME_THREAD_POOL_H
#define EFFACT_RUNTIME_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace effact {

/**
 * A fixed set of worker threads draining a FIFO task queue. Tasks must
 * not throw (the codebase reports errors through `panic`/`fatal`, which
 * abort the process from any thread). The destructor drains the queue
 * before joining, so a submitted task always runs.
 */
class ThreadPool
{
  public:
    /** Task signature: `worker` is the executing worker's index in
     *  `[0, threadCount())`, stable for that worker's lifetime. */
    using Task = std::function<void(size_t worker)>;

    /** Spawns `threads` workers (at least one). */
    explicit ThreadPool(size_t threads);

    /** Drains outstanding tasks, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    size_t threadCount() const { return workers_.size(); }

    /** Enqueues one task; runnable immediately by any idle worker. */
    void submit(Task task);

    /** Blocks until every submitted task has finished executing. */
    void wait();

  private:
    void workerLoop(size_t worker);

    std::vector<std::thread> workers_;
    std::deque<Task> queue_;
    std::mutex mu_;
    std::condition_variable work_ready_;
    std::condition_variable all_done_;
    size_t running_ = 0; ///< tasks currently executing
    bool stopping_ = false;
};

/**
 * Worker-count default for batch runs: the `EFFACT_THREADS` environment
 * variable when set to a positive integer, otherwise the hardware
 * concurrency (at least 1). `EFFACT_THREADS=1` selects the serial path.
 */
size_t defaultThreadCount();

} // namespace effact

#endif // EFFACT_RUNTIME_THREAD_POOL_H
