#include "runtime/thread_pool.h"

#include <cstdlib>
#include <string>

#include "common/logging.h"

namespace effact {

ThreadPool::ThreadPool(size_t threads, size_t maxQueued)
    : max_queued_(maxQueued)
{
    const size_t n = threads == 0 ? 1 : threads;
    workers_.reserve(n);
    for (size_t w = 0; w < n; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void
ThreadPool::shutdown()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        stopping_ = true;
        if (joined_)
            return;
        joined_ = true;
    }
    work_ready_.notify_all();
    // Workers drain the queue before exiting (workerLoop's
    // drain-before-stop check), so every accepted task has run by the
    // time the joins return.
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(Task task)
{
    EFFACT_ASSERT(task != nullptr, "null task submitted to thread pool");
    {
        std::unique_lock<std::mutex> lock(mu_);
        EFFACT_ASSERT(!stopping_, "submit after thread pool shutdown");
        queue_.push_back(Entry{std::move(task), nullptr});
    }
    work_ready_.notify_one();
}

bool
ThreadPool::trySubmit(Task task)
{
    EFFACT_ASSERT(task != nullptr, "null task submitted to thread pool");
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (stopping_)
            return false;
        if (max_queued_ > 0 && queue_.size() >= max_queued_)
            return false;
        queue_.push_back(Entry{std::move(task), nullptr});
    }
    work_ready_.notify_one();
    return true;
}

size_t
ThreadPool::queueDepth() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return queue_.size();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock,
                   [this] { return queue_.empty() && running_ == 0; });
}

void
ThreadPool::finishTask(Group *group)
{
    --running_;
    if (group != nullptr) {
        EFFACT_ASSERT(group->pending_ > 0, "group task count underflow");
        if (--group->pending_ == 0)
            group_done_.notify_all();
    }
    if (queue_.empty() && running_ == 0)
        all_done_.notify_all();
}

void
ThreadPool::workerLoop(size_t worker)
{
    for (;;) {
        Entry entry;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_ready_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            // Drain-before-stop: shutdown only once the queue is empty.
            if (queue_.empty())
                return;
            entry = std::move(queue_.front());
            queue_.pop_front();
            ++running_;
        }
        entry.task(worker);
        {
            std::unique_lock<std::mutex> lock(mu_);
            finishTask(entry.group);
        }
    }
}

void
ThreadPool::Group::submit(Task task)
{
    EFFACT_ASSERT(task != nullptr, "null task submitted to task group");
    {
        std::unique_lock<std::mutex> lock(pool_.mu_);
        EFFACT_ASSERT(!pool_.stopping_, "submit after thread pool shutdown");
        pool_.queue_.push_back(Entry{std::move(task), this});
        ++pending_;
    }
    pool_.work_ready_.notify_one();
    // A waiter of this same group (possible when a group task fans out
    // further work into its own group) must notice the new queue entry.
    pool_.group_done_.notify_all();
}

void
ThreadPool::Group::wait(size_t helper_worker)
{
    const size_t inline_index =
        helper_worker == SIZE_MAX ? pool_.threadCount() : helper_worker;
    std::unique_lock<std::mutex> lock(pool_.mu_);
    while (pending_ > 0) {
        // Help: steal one of our own queued tasks and run it inline.
        auto it = pool_.queue_.begin();
        for (; it != pool_.queue_.end(); ++it)
            if (it->group == this)
                break;
        if (it != pool_.queue_.end()) {
            Entry entry = std::move(*it);
            pool_.queue_.erase(it);
            ++pool_.running_;
            lock.unlock();
            entry.task(inline_index);
            lock.lock();
            pool_.finishTask(this);
            continue;
        }
        // Every remaining task of this group is running on another
        // thread; sleep until one finishes (or new group work appears).
        pool_.group_done_.wait(lock, [this] {
            if (pending_ == 0)
                return true;
            for (const Entry &e : pool_.queue_)
                if (e.group == this)
                    return true;
            return false;
        });
    }
}

namespace {

size_t
envThreadCount(const char *name, size_t fallback)
{
    if (const char *env = std::getenv(name)) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<size_t>(v);
        warn("ignoring invalid %s='%s' (want a positive integer)", name,
             env);
    }
    return fallback;
}

} // namespace

size_t
defaultThreadCount()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return envThreadCount("EFFACT_THREADS",
                          hw == 0 ? 1 : static_cast<size_t>(hw));
}

size_t
defaultJobThreadCount()
{
    return envThreadCount("EFFACT_JOB_THREADS", 1);
}

} // namespace effact
