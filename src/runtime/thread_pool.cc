#include "runtime/thread_pool.h"

#include <cstdlib>
#include <string>

#include "common/logging.h"

namespace effact {

ThreadPool::ThreadPool(size_t threads)
{
    const size_t n = threads == 0 ? 1 : threads;
    workers_.reserve(n);
    for (size_t w = 0; w < n; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(Task task)
{
    EFFACT_ASSERT(task != nullptr, "null task submitted to thread pool");
    {
        std::unique_lock<std::mutex> lock(mu_);
        EFFACT_ASSERT(!stopping_, "submit after thread pool shutdown");
        queue_.push_back(std::move(task));
    }
    work_ready_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock,
                   [this] { return queue_.empty() && running_ == 0; });
}

void
ThreadPool::workerLoop(size_t worker)
{
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_ready_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            // Drain-before-stop: shutdown only once the queue is empty.
            if (queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
            ++running_;
        }
        task(worker);
        {
            std::unique_lock<std::mutex> lock(mu_);
            --running_;
            if (queue_.empty() && running_ == 0)
                all_done_.notify_all();
        }
    }
}

size_t
defaultThreadCount()
{
    if (const char *env = std::getenv("EFFACT_THREADS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<size_t>(v);
        warn("ignoring invalid EFFACT_THREADS='%s' (want a positive "
             "integer)",
             env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
}

} // namespace effact
