#include "common/table.h"

#include <cstdio>
#include <sstream>

namespace effact {

void
Table::header(std::vector<std::string> cols)
{
    header_ = std::move(cols);
}

void
Table::row(std::vector<std::string> cols)
{
    rows_.push_back(std::move(cols));
}

std::string
Table::num(double v, int prec)
{
    std::ostringstream os;
    os.precision(prec);
    os << v;
    return os.str();
}

std::string
Table::toString() const
{
    // Compute column widths over header and all rows.
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &cols) {
        if (widths.size() < cols.size())
            widths.resize(cols.size(), 0);
        for (size_t i = 0; i < cols.size(); ++i)
            widths[i] = std::max(widths[i], cols[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    std::ostringstream os;
    os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &cols) {
        for (size_t i = 0; i < cols.size(); ++i) {
            os << cols[i];
            if (i + 1 < cols.size())
                os << std::string(widths[i] - cols[i].size() + 2, ' ');
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

void
Table::print() const
{
    std::fputs(toString().c_str(), stdout);
    std::fputs("\n", stdout);
}

} // namespace effact
