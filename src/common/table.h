/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to render the
 * paper's tables and figure series in a uniform way.
 */
#ifndef EFFACT_COMMON_TABLE_H
#define EFFACT_COMMON_TABLE_H

#include <string>
#include <vector>

namespace effact {

/** Column-aligned ASCII table with a title and a header row. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Sets the header row. */
    void header(std::vector<std::string> cols);

    /** Appends a data row; may be shorter than the header. */
    void row(std::vector<std::string> cols);

    /** Convenience: formats a double with `prec` significant digits. */
    static std::string num(double v, int prec = 4);

    /** Renders the table with column alignment and a rule under the title. */
    std::string toString() const;

    /** Prints to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace effact

#endif // EFFACT_COMMON_TABLE_H
