/**
 * @file
 * Deterministic pseudo-random generator (xoshiro256**) used for key
 * generation, error sampling and workload synthesis. Determinism matters:
 * tests and benchmark tables must be reproducible run-to-run.
 */
#ifndef EFFACT_COMMON_RNG_H
#define EFFACT_COMMON_RNG_H

#include <cstdint>

namespace effact {

/** xoshiro256** PRNG; not cryptographically secure (fine for a simulator). */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initializes state via splitmix64 expansion of `seed`. */
    void
    reseed(uint64_t seed)
    {
        uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next 64 uniform random bits. */
    uint64_t
    next()
    {
        uint64_t result = rotl(state_[1] * 5, 7) * 9;
        uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). */
    uint64_t
    uniform(uint64_t bound)
    {
        // Rejection sampling to avoid modulo bias.
        uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform double in [0, 1). */
    double
    uniformReal()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Approximately Gaussian sample (central limit of 12 uniforms). */
    double
    gaussian(double sigma)
    {
        double acc = 0.0;
        for (int i = 0; i < 12; ++i)
            acc += uniformReal();
        return (acc - 6.0) * sigma;
    }

    /** Ternary sample in {-1, 0, 1}. */
    int
    ternary()
    {
        return static_cast<int>(uniform(3)) - 1;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace effact

#endif // EFFACT_COMMON_RNG_H
