#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <vector>

namespace effact {

namespace {
// Atomic: batch workers log while the main thread may toggle verbosity.
std::atomic<bool> g_verbose{false};
} // namespace

void
setLogVerbose(bool verbose)
{
    g_verbose.store(verbose, std::memory_order_relaxed);
}

bool
logVerbose()
{
    return g_verbose.load(std::memory_order_relaxed);
}

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(len));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (!logVerbose())
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace effact
