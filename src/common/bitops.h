/**
 * @file
 * Small bit-manipulation helpers shared across the NTT, automorphism and
 * simulator code.
 */
#ifndef EFFACT_COMMON_BITOPS_H
#define EFFACT_COMMON_BITOPS_H

#include <cstdint>

namespace effact {

/** Returns true iff `x` is a (nonzero) power of two. */
constexpr bool
isPowerOfTwo(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** floor(log2(x)) for x > 0. */
constexpr uint32_t
log2Floor(uint64_t x)
{
    uint32_t r = 0;
    while (x >>= 1)
        ++r;
    return r;
}

/** Exact log2 for powers of two. */
constexpr uint32_t
log2Exact(uint64_t x)
{
    return log2Floor(x);
}

/** Reverses the low `bits` bits of `x`. */
constexpr uint32_t
bitReverse(uint32_t x, uint32_t bits)
{
    uint32_t r = 0;
    for (uint32_t i = 0; i < bits; ++i) {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    return r;
}

/** Ceil division for unsigned integers. */
constexpr uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace effact

#endif // EFFACT_COMMON_BITOPS_H
