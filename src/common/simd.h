/**
 * @file
 * Runtime SIMD tier selection and aligned storage for the math
 * substrate.
 *
 * The hot functional kernels (NTT butterflies, modular multiply, base
 * conversion — see math/kernels.h) exist in one implementation per
 * *tier*. A tier is picked once per process from CPUID, clamped by the
 * `EFFACT_SIMD` environment variable (`scalar`, `avx2` or `native`,
 * mirroring `EFFACT_JOB_THREADS`' env-default pattern), and every
 * kernel call dispatches through a per-tier function table. All tiers
 * are exact-value identical — same `u64` outputs, not just the same
 * residues — so the tier knob can never move a fingerprint, a cycle
 * count or a `CompileCache` key; it only moves wall clock.
 *
 * This header owns only the tier policy and the aligned allocator; the
 * kernel tables themselves live in math/kernels.h so `common/` does not
 * depend on the math layer.
 */
#ifndef EFFACT_COMMON_SIMD_H
#define EFFACT_COMMON_SIMD_H

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace effact {

/**
 * Kernel implementation tiers, ordered: a higher tier is a superset
 * requirement (Avx2 needs x86-64 + AVX2 at build and run time).
 */
enum class SimdTier : int {
    Scalar = 0, ///< portable C++ loops — the dispatchable oracle
    Avx2 = 1,   ///< 4 x u64 lanes via AVX2 integer intrinsics
};

/** Display name ("scalar", "avx2") for logs, stats and tests. */
const char *simdTierName(SimdTier tier);

/**
 * Best tier this build *and* this CPU support: compile-time kernel
 * availability (the AVX2 translation unit is only vectorized on x86-64
 * with a compiler that takes -mavx2) intersected with CPUID.
 */
SimdTier maxSupportedSimdTier();

/**
 * The tier kernels dispatch on. Resolved once on first use:
 * `EFFACT_SIMD` = `scalar` | `avx2` | `native` (default `native` =
 * maxSupportedSimdTier()); a requested tier the host cannot run is
 * clamped down with a warning, never an error.
 */
SimdTier activeSimdTier();

/**
 * Forces the active tier (clamped to maxSupportedSimdTier()); returns
 * the tier actually installed. Tests and benches use this to compare
 * tiers inside one process; production code should leave the env-
 * resolved default alone.
 */
SimdTier setSimdTier(SimdTier tier);

/**
 * Minimal C++17 aligned allocator: `RnsPoly` limb storage uses it so
 * coefficient vectors start on a 64-byte (cache-line / AVX-512-ready)
 * boundary, making aligned vector loads legal by construction instead
 * of by luck. Kernels still issue unaligned load instructions — free on
 * aligned data, and safe on the arbitrary buffers tests throw at them.
 */
template <typename T, std::size_t Alignment>
class AlignedAllocator
{
    static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                  "alignment must be a power of two >= alignof(T)");

  public:
    using value_type = T;

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Alignment> &) noexcept
    {}

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Alignment>;
    };

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(
            ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t(Alignment));
    }

    friend bool
    operator==(const AlignedAllocator &, const AlignedAllocator &) noexcept
    {
        return true;
    }
    friend bool
    operator!=(const AlignedAllocator &, const AlignedAllocator &) noexcept
    {
        return false;
    }
};

/** 64-byte-aligned u64 vector: the math substrate's limb storage type. */
using AlignedU64Vec = std::vector<uint64_t, AlignedAllocator<uint64_t, 64>>;

} // namespace effact

#endif // EFFACT_COMMON_SIMD_H
