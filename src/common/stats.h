/**
 * @file
 * Lightweight named-statistics registry, used by the compiler passes and
 * the cycle-level simulator to expose counters that benchmarks print.
 */
#ifndef EFFACT_COMMON_STATS_H
#define EFFACT_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace effact {

/** A bag of named scalar statistics (counters and gauges). */
class StatSet
{
  public:
    /** Adds `delta` to counter `name` (creating it at zero). */
    void add(const std::string &name, double delta);

    /** Sets gauge `name` to `value`. */
    void set(const std::string &name, double value);

    /** Returns the value of `name`, or 0 if absent. */
    double get(const std::string &name) const;

    /** True iff `name` has been recorded. */
    bool has(const std::string &name) const;

    /** All statistics in name order. */
    const std::map<std::string, double> &all() const { return stats_; }

    /** Merges another set into this one (summing counters). */
    void merge(const StatSet &other);

    /** Renders a human-readable block, one `name = value` line each. */
    std::string toString(const std::string &prefix = "") const;

    void clear() { stats_.clear(); }

  private:
    std::map<std::string, double> stats_;
};

} // namespace effact

#endif // EFFACT_COMMON_STATS_H
