/**
 * @file
 * Logging and error-handling primitives, gem5-style.
 *
 * `panic()` is for internal invariant violations (a bug in EFFACT itself);
 * `fatal()` is for user errors (bad configuration, invalid parameters).
 * `warn()`/`inform()` report conditions without stopping execution.
 */
#ifndef EFFACT_COMMON_LOGGING_H
#define EFFACT_COMMON_LOGGING_H

#include <cstdarg>
#include <cstdio>
#include <string>

namespace effact {

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/** Global verbosity: messages below this level are suppressed. */
void setLogVerbose(bool verbose);
bool logVerbose();

/** Formats printf-style arguments into a std::string. */
std::string vstrprintf(const char *fmt, va_list ap);
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Internal invariant violation: prints the message and aborts.
 * Use when EFFACT itself is broken, never for user errors.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Unrecoverable user error: prints the message and exits with code 1.
 * Use for bad configuration or invalid arguments.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning about questionable behaviour. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informative status message (suppressed unless verbose). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** panic() unless `cond` holds. */
#define EFFACT_ASSERT(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::effact::panic("assertion '%s' failed at %s:%d: %s", #cond,  \
                            __FILE__, __LINE__,                           \
                            ::effact::strprintf(__VA_ARGS__).c_str());    \
        }                                                                 \
    } while (0)

} // namespace effact

#endif // EFFACT_COMMON_LOGGING_H
