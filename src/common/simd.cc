#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace effact {

namespace {

/** CPUID AVX2 probe; false on non-x86 builds. */
bool
cpuSupportsAvx2()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

/**
 * Parses `EFFACT_SIMD` into a tier request. `native` (and unset) asks
 * for the best supported tier; anything unrecognized warns and falls
 * back to `native` so a typo degrades gracefully instead of silently
 * pinning scalar.
 */
SimdTier
tierFromEnv(SimdTier max_supported)
{
    const char *env = std::getenv("EFFACT_SIMD");
    if (env == nullptr || *env == '\0' || std::strcmp(env, "native") == 0)
        return max_supported;
    if (std::strcmp(env, "scalar") == 0)
        return SimdTier::Scalar;
    if (std::strcmp(env, "avx2") == 0) {
        if (SimdTier::Avx2 > max_supported) {
            warn("EFFACT_SIMD=avx2 requested but unsupported on this "
                 "host/build; falling back to %s",
                 simdTierName(max_supported));
            return max_supported;
        }
        return SimdTier::Avx2;
    }
    warn("ignoring invalid EFFACT_SIMD='%s' (want scalar|avx2|native)", env);
    return max_supported;
}

/**
 * Active tier, lazily resolved. -1 = unresolved; worker threads may
 * race on first use, but both racers compute the same value from the
 * same env + CPUID, so the exchange is idempotent.
 */
std::atomic<int> g_active_tier{-1};

} // namespace

const char *
simdTierName(SimdTier tier)
{
    switch (tier) {
    case SimdTier::Scalar:
        return "scalar";
    case SimdTier::Avx2:
        return "avx2";
    }
    return "unknown";
}

SimdTier
maxSupportedSimdTier()
{
#if defined(EFFACT_SIMD_AVX2_COMPILED)
    if (cpuSupportsAvx2())
        return SimdTier::Avx2;
#endif
    return SimdTier::Scalar;
}

SimdTier
activeSimdTier()
{
    int tier = g_active_tier.load(std::memory_order_acquire);
    if (tier < 0) {
        tier = static_cast<int>(tierFromEnv(maxSupportedSimdTier()));
        g_active_tier.store(tier, std::memory_order_release);
    }
    return static_cast<SimdTier>(tier);
}

SimdTier
setSimdTier(SimdTier tier)
{
    const SimdTier max = maxSupportedSimdTier();
    if (tier > max) {
        warn("setSimdTier(%s) clamped to %s (host/build limit)",
             simdTierName(tier), simdTierName(max));
        tier = max;
    }
    g_active_tier.store(static_cast<int>(tier), std::memory_order_release);
    return tier;
}

} // namespace effact
