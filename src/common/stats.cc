#include "common/stats.h"

#include <sstream>

namespace effact {

void
StatSet::add(const std::string &name, double delta)
{
    stats_[name] += delta;
}

void
StatSet::set(const std::string &name, double value)
{
    stats_[name] = value;
}

double
StatSet::get(const std::string &name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return stats_.count(name) != 0;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[name, value] : other.stats_)
        stats_[name] += value;
}

std::string
StatSet::toString(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &[name, value] : stats_)
        os << prefix << name << " = " << value << "\n";
    return os.str();
}

} // namespace effact
