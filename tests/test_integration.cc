/**
 * @file
 * Cross-stack integration sweeps: every compiler-option combination
 * must produce a program that simulates to completion with consistent
 * invariants, across schemes and design points (parameterized gtest).
 */
#include <gtest/gtest.h>

#include "platform/platform.h"

namespace effact {
namespace {

Workload
tinyWorkload()
{
    FheParams fhe;
    fhe.logN = 14;
    fhe.levels = 16;
    fhe.dnum = 4;
    return buildBootstrapping(fhe, {256, 2, 2, 63, 8});
}

/** Bitmask over {pre, peephole, schedule, streaming}. */
class OptionMatrix : public ::testing::TestWithParam<int> {};

TEST_P(OptionMatrix, EveryPassComboSimulates)
{
    const int mask = GetParam();
    CompilerOptions opts;
    opts.pre = mask & 1;
    opts.peephole = mask & 2;
    opts.schedule = mask & 4;
    opts.streaming = mask & 8;
    opts.sramBytes = size_t(8) << 20;

    Workload w = tinyWorkload();
    HardwareConfig hw = HardwareConfig::asicEffact27();
    hw.sramBytes = opts.sramBytes;
    Platform platform(hw, opts);
    PlatformResult r = platform.run(w);

    EXPECT_GT(r.sim.cycles, 0.0);
    EXPECT_GT(r.sim.instructions, 0u);
    EXPECT_GT(r.sim.dramBytes, 0.0);
    // Utilizations remain physical under every pass combination.
    for (double u : {r.sim.dramUtil, r.sim.nttUtil, r.sim.mulAddUtil,
                     r.sim.autoUtil}) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0 + 1e-9);
    }

    // The event-driven issue core must reproduce the legacy rescan
    // loop under every pass combination.
    Workload w2 = tinyWorkload();
    Compiler compiler(opts);
    MachineProgram mp = compiler.compile(w2.program);
    SimReport ev = Simulator(hw).run(mp);
    SimReport ref = Simulator(hw).runReference(mp);
    EXPECT_DOUBLE_EQ(ev.cycles, ref.cycles);
    EXPECT_DOUBLE_EQ(ev.dramBytes, ref.dramBytes);
}

INSTANTIATE_TEST_SUITE_P(AllCombos, OptionMatrix, ::testing::Range(0, 16));

/** Optimizations must never *increase* simulated time materially. */
TEST(Integration, FullOptionsNeverSlowerThanBaseline)
{
    HardwareConfig hw = HardwareConfig::asicEffact27();
    hw.sramBytes = size_t(8) << 20;
    Workload w1 = tinyWorkload();
    Platform base(hw, Platform::baselineOptions(hw.sramBytes));
    auto rb = base.run(w1);
    Workload w2 = tinyWorkload();
    Platform full(hw, Platform::fullOptions(hw.sramBytes));
    auto rf = full.run(w2);
    EXPECT_LE(rf.sim.cycles, rb.sim.cycles * 1.02);
    EXPECT_LE(rf.dramGb, rb.dramGb * 1.02);
}

/** DRAM traffic is invariant to clock frequency; time is not. */
TEST(Integration, FrequencyScalesTimeNotTraffic)
{
    Workload w = tinyWorkload();
    Compiler compiler;
    MachineProgram mp = compiler.compile(w.program);

    HardwareConfig hw = HardwareConfig::asicEffact27();
    SimReport a = Simulator(hw).run(mp);
    hw.freqGhz = 1.0; // same cycles/byte budget per cycle halves
    SimReport b = Simulator(hw).run(mp);
    // Same bytes moved regardless of clock.
    EXPECT_DOUBLE_EQ(a.dramBytes, b.dramBytes);
    // Wall-clock improves with frequency (not fully linearly: the HBM
    // contributes a frequency-independent floor).
    EXPECT_LT(b.timeMs, a.timeMs);
}

/** All design points run all CKKS benchmarks to completion. */
class DesignPoints : public ::testing::TestWithParam<int> {};

TEST_P(DesignPoints, RunsReducedBootstrapping)
{
    HardwareConfig hw;
    switch (GetParam()) {
      case 0: hw = HardwareConfig::asicEffact27(); break;
      case 1: hw = HardwareConfig::asicEffact54(); break;
      case 2: hw = HardwareConfig::asicEffact108(); break;
      case 3: hw = HardwareConfig::asicEffact162(); break;
      default: hw = HardwareConfig::fpgaEffact(); break;
    }
    Workload w = tinyWorkload();
    Platform p(hw, Platform::fullOptions(hw.sramBytes));
    PlatformResult r = p.run(w);
    EXPECT_GT(r.benchTimeMs, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Configs, DesignPoints, ::testing::Range(0, 5));

} // namespace
} // namespace effact
