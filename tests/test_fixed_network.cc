/**
 * @file
 * Fixed-network transpose tests (Fig. 7): the FN plus bit-reversed row
 * fetch order must reproduce the exact matrix transpose that ARK/SHARP
 * obtain with banked register files.
 */
#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/rng.h"
#include "math/fixed_network.h"

namespace effact {
namespace {

class FnSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(FnSizes, MatchesTrueTranspose)
{
    const size_t lanes = GetParam();
    const size_t n = lanes * lanes;
    const uint32_t logn = log2Exact(n);
    FixedNetwork fn(lanes);

    // Natural-order data a[0..n), its natural matrix A[i][j] = a[i*C+j].
    Rng rng(lanes);
    std::vector<u64> a(n);
    for (auto &v : a)
        v = rng.next();

    // NTT-domain layout: position p holds a[br(p)].
    std::vector<u64> bitrev(n);
    for (size_t p = 0; p < n; ++p)
        bitrev[p] = a[bitReverse(static_cast<uint32_t>(p), logn)];

    auto got = fn.transposeFromBitrev(bitrev);

    // Ground truth transpose of the natural matrix.
    for (size_t r = 0; r < lanes; ++r)
        for (size_t c = 0; c < lanes; ++c)
            EXPECT_EQ(got[r * lanes + c], a[c * lanes + r])
                << "lanes=" << lanes << " r=" << r << " c=" << c;
}

INSTANTIATE_TEST_SUITE_P(Square, FnSizes, ::testing::Values(2, 4, 8, 16, 64));

TEST(FixedNetwork, RowPermutationIsInvolution)
{
    // Bit reversal is its own inverse: applying the wiring twice is a no-op.
    const size_t lanes = 32;
    FixedNetwork fn(lanes);
    Rng rng(99);
    std::vector<u64> row(lanes), once(lanes), twice(lanes);
    for (auto &v : row)
        v = rng.next();
    fn.permuteRow(row.data(), once.data());
    fn.permuteRow(once.data(), twice.data());
    EXPECT_EQ(row, twice);
}

TEST(FixedNetwork, WiringCostLinearInLanes)
{
    EXPECT_DOUBLE_EQ(FixedNetwork::wiringCost(256), 256.0);
    EXPECT_LT(FixedNetwork::wiringCost(1024), 1024.0 * 1024.0);
}

} // namespace
} // namespace effact
