/**
 * @file
 * Within-job parallelism equivalence: every region-sharded pass and the
 * sharded back-end emission must produce *bit-identical* results to the
 * legacy serial scans at any worker count — same final IR (including
 * dead flags and operand rewrites), same rewrite-count statistics, same
 * machine code. Chunk boundaries depend only on the program size, never
 * on the worker count, so 1, 2 and 8 threads must all match the serial
 * oracle exactly; this suite pins that contract per pass and end to end
 * through `Compiler::compile`.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "compiler/compile_cache.h"
#include "compiler/pass_manager.h"
#include "ir/builder.h"
#include "ir/workloads.h"
#include "runtime/thread_pool.h"

namespace effact {
namespace {

/** Stat comparison that ignores wall-clock keys (`*.ms`): timings are
 *  the one legitimately nondeterministic stat family. */
std::string
countsOnly(const StatSet &stats)
{
    std::string out;
    for (const auto &[key, value] : stats.all()) {
        if (key.size() > 3 && key.compare(key.size() - 3, 3, ".ms") == 0)
            continue;
        out += key;
        out += '=';
        out += std::to_string(value);
        out += '\n';
    }
    return out;
}

/** Reduced-size stock workloads (paper benchmarks at small params). */
std::vector<std::pair<std::string, IrProgram>>
stockPrograms()
{
    FheParams fhe;
    fhe.logN = 14;
    fhe.levels = 16;
    fhe.dnum = 4;
    std::vector<std::pair<std::string, IrProgram>> all;
    all.emplace_back(
        "bootstrapping",
        buildBootstrapping(fhe, {256, 2, 2, 63, 8}).program);
    all.emplace_back("dblookup", buildDbLookup(fhe, 64).program);
    return all;
}

/** Long copy chain (pointer jumping needs multiple rounds), an
 *  immediate-multiply chain (sequential sub-phase), identity folds, an
 *  iNTT scale chain (Eq. 5 fold + MAC interplay), and redundant
 *  subexpressions (PRE winner selection) — every pass's tricky case in
 *  one directed program. */
IrProgram
directedProgram()
{
    IrProgram prog;
    prog.name = "directed";
    prog.degree = 1 << 12;
    IrBuilder b(prog);
    int in = b.object("in", 4, true);
    int out = b.object("out", 8, false);
    PolyVal x = b.load(in, 0, 1);
    PolyVal y = b.load(in, 1, 1);
    // Copy chain deep enough that one pointer-jump round cannot close it.
    PolyVal c = x;
    for (int k = 0; k < 9; ++k) {
        PolyVal next;
        next.limbs.push_back(b.emit1(IrOp::Copy, c.limbs[0], -1, 0));
        c = next;
    }
    // Identity folds feeding an immediate chain.
    PolyVal m = b.mulImm(c, 1);
    m = b.addImm(m, 0);
    m = b.mulImm(m, 3);
    m = b.mulImm(m, 5);
    m = b.mulImm(m, 7);
    b.store(out, 0, m);
    // Redundant subexpressions, commutative on purpose.
    PolyVal p1 = b.mul(x, y);
    PolyVal p2 = b.mul(y, x);
    b.store(out, 1, b.add(p1, p2));
    // Redundant read-only loads (reload elimination).
    PolyVal x2 = b.load(in, 0, 1);
    b.store(out, 2, b.add(x2, y));
    // iNTT scale chain: Eq. 5 folds collapse one link per sweep.
    PolyVal w = b.intt(y);
    w = b.mulImm(w, 11);
    w = b.mulImm(w, 13);
    b.store(out, 3, w);
    // Mul+Add pairs for MAC fusion, both operand orders.
    PolyVal q1 = b.mul(x, y);
    b.store(out, 4, b.add(q1, x));
    PolyVal q2 = b.mul(y, y);
    b.store(out, 5, b.add(x, q2));
    return prog;
}

std::vector<std::pair<std::string, IrProgram>>
allPrograms()
{
    auto all = stockPrograms();
    all.emplace_back("directed", directedProgram());
    return all;
}

using PassFn = size_t (*)(IrProgram &, StatSet &, const ParallelExec &);

const std::vector<std::pair<std::string, PassFn>> kPasses = {
    {"copyprop", &runCopyProp},
    {"constprop", &runConstProp},
    {"pre", &runPre},
    {"peephole", &runPeephole},
};

TEST(ParallelPasses, EveryPassMatchesSerialAtAnyThreadCount)
{
    for (const auto &[prog_name, original] : allPrograms()) {
        // Serial oracle, once per pass.
        for (const auto &[pass_name, fn] : kPasses) {
            IrProgram serial = original;
            StatSet serial_stats;
            const size_t serial_rewrites =
                fn(serial, serial_stats, ParallelExec());
            const uint64_t serial_fp = fingerprint(serial);

            for (size_t threads : {1, 2, 8}) {
                ThreadPool pool(threads);
                ParallelExec exec(&pool);
                ASSERT_TRUE(exec.parallel());
                IrProgram parallel = original;
                StatSet parallel_stats;
                const size_t parallel_rewrites =
                    fn(parallel, parallel_stats, exec);
                EXPECT_EQ(parallel_rewrites, serial_rewrites)
                    << prog_name << "/" << pass_name << " @" << threads;
                EXPECT_EQ(fingerprint(parallel), serial_fp)
                    << prog_name << "/" << pass_name << " @" << threads;
                EXPECT_EQ(countsOnly(parallel_stats),
                          countsOnly(serial_stats))
                    << prog_name << "/" << pass_name << " @" << threads;
            }
        }
    }
}

TEST(ParallelPasses, RepeatedSweepsStayIdentical)
{
    // Fixed-point iteration feeds each pass its own previous output;
    // divergence can hide in later sweeps (partially-folded chains,
    // dead-operand patterns the first sweep never shows). Sweep the
    // whole pipeline to quiescence pass-by-pass and compare each step.
    for (const auto &[prog_name, original] : allPrograms()) {
        IrProgram serial = original;
        ThreadPool pool(8);
        ParallelExec exec(&pool);
        IrProgram parallel = original;
        for (int sweep = 0; sweep < 4; ++sweep) {
            for (const auto &[pass_name, fn] : kPasses) {
                StatSet s1, s2;
                fn(serial, s1, ParallelExec());
                fn(parallel, s2, exec);
                ASSERT_EQ(fingerprint(parallel), fingerprint(serial))
                    << prog_name << "/" << pass_name << " sweep "
                    << sweep;
                ASSERT_EQ(countsOnly(s2), countsOnly(s1))
                    << prog_name << "/" << pass_name << " sweep "
                    << sweep;
            }
        }
    }
}

TEST(ParallelPasses, FullCompileMatchesSerialAtAnyThreadCount)
{
    // End to end through the fixed-point pipeline, parallel analysis
    // builds and the sharded back-end emission. The tight SRAM budget
    // forces spills, so the scratch round-robin seeding and the reload
    // emission paths are exercised.
    for (const auto &[prog_name, original] : allPrograms()) {
        for (size_t sram_mb : {1, 27}) {
            CompilerOptions opts;
            opts.sramBytes = sram_mb << 20;

            IrProgram serial_prog = original;
            Compiler serial_compiler(opts);
            AnalysisManager serial_analyses;
            const MachineProgram serial_mp =
                serial_compiler.compile(serial_prog, serial_analyses);
            const uint64_t serial_fp = fingerprint(serial_mp);

            for (size_t threads : {1, 2, 8}) {
                ThreadPool pool(threads);
                IrProgram prog = original;
                Compiler compiler(opts);
                AnalysisManager analyses;
                analyses.setExec(ParallelExec(&pool));
                const MachineProgram mp = compiler.compile(prog, analyses);
                EXPECT_EQ(fingerprint(mp), serial_fp)
                    << prog_name << " sram=" << sram_mb << "MB @"
                    << threads;
                EXPECT_EQ(fingerprint(prog), fingerprint(serial_prog))
                    << prog_name << " sram=" << sram_mb << "MB @"
                    << threads;
                EXPECT_EQ(countsOnly(compiler.stats()),
                          countsOnly(serial_compiler.stats()))
                    << prog_name << " sram=" << sram_mb << "MB @"
                    << threads;
            }
        }
    }
}

TEST(ParallelPasses, CacheSnapshotsMatchSerial)
{
    // A region-sharded middle end must publish a CompileCache snapshot
    // byte-identical to the serial one: same optimized IR, same stat
    // counts — so hits cross over freely (a serial compile replaying a
    // parallel-built snapshot and vice versa is indistinguishable from
    // staying in one mode).
    auto dropHitMarker = [](const StatSet &stats) {
        std::string out;
        for (const auto &[key, value] : stats.all()) {
            if (key == "cache.hit" ||
                (key.size() > 3 &&
                 key.compare(key.size() - 3, 3, ".ms") == 0))
                continue;
            out += key + '=' + std::to_string(value) + '\n';
        }
        return out;
    };
    ThreadPool pool(8);
    for (const auto &[prog_name, original] : allPrograms()) {
        const CompilerOptions opts;

        // Serial-built and parallel-built snapshots, separate caches.
        CompileCache serial_cache, parallel_cache;
        IrProgram p_serial = original;
        Compiler c_serial(opts);
        AnalysisManager a_serial;
        const MachineProgram mp_serial =
            c_serial.compile(p_serial, a_serial, &serial_cache);

        IrProgram p_parallel = original;
        Compiler c_parallel(opts);
        AnalysisManager a_parallel;
        a_parallel.setExec(ParallelExec(&pool));
        const MachineProgram mp_parallel =
            c_parallel.compile(p_parallel, a_parallel, &parallel_cache);

        // The published optimized programs and the machine code match.
        EXPECT_EQ(fingerprint(p_parallel), fingerprint(p_serial))
            << prog_name;
        EXPECT_EQ(fingerprint(mp_parallel), fingerprint(mp_serial))
            << prog_name;
        EXPECT_EQ(dropHitMarker(c_parallel.stats()),
                  dropHitMarker(c_serial.stats()))
            << prog_name;

        // Cross hits: serial compile adopting the parallel-built
        // snapshot (and vice versa) reproduces the same results.
        IrProgram p_cross1 = original;
        Compiler c_cross1(opts);
        AnalysisManager a_cross1;
        const MachineProgram mp_cross1 =
            c_cross1.compile(p_cross1, a_cross1, &parallel_cache);
        EXPECT_EQ(c_cross1.stats().get("cache.hit"), 1.0) << prog_name;
        EXPECT_EQ(fingerprint(mp_cross1), fingerprint(mp_serial))
            << prog_name;
        EXPECT_EQ(dropHitMarker(c_cross1.stats()),
                  dropHitMarker(c_serial.stats()))
            << prog_name;

        IrProgram p_cross2 = original;
        Compiler c_cross2(opts);
        AnalysisManager a_cross2;
        a_cross2.setExec(ParallelExec(&pool));
        const MachineProgram mp_cross2 =
            c_cross2.compile(p_cross2, a_cross2, &serial_cache);
        EXPECT_EQ(c_cross2.stats().get("cache.hit"), 1.0) << prog_name;
        EXPECT_EQ(fingerprint(mp_cross2), fingerprint(mp_serial))
            << prog_name;
    }
}

TEST(ParallelPasses, ChunkBoundariesIgnoreWorkerCount)
{
    // splitChunks is the determinism keystone: boundaries are a pure
    // function of (n, grain).
    const auto chunks = splitChunks(10000, 4096);
    ASSERT_EQ(chunks.size(), 2u);
    EXPECT_EQ(chunks[0].begin, 0u);
    EXPECT_EQ(chunks[0].end, 4096u);
    EXPECT_EQ(chunks[1].begin, 4096u);
    EXPECT_EQ(chunks[1].end, 10000u); // last chunk absorbs the tail
    EXPECT_EQ(splitChunks(0, 4096).size(), 0u);
    EXPECT_EQ(splitChunks(1, 4096).size(), 1u);
    EXPECT_EQ(splitChunks(4096, 4096).size(), 1u);
    EXPECT_EQ(splitChunks(4097, 4096).size(), 1u);
    EXPECT_EQ(splitChunks(8192, 4096).size(), 2u);
}

TEST(ParallelPasses, NestedGroupsDoNotDeadlock)
{
    // Two-level nesting on a tiny pool: outer tasks each fan out inner
    // chunked loops. Group::wait must help run queued tasks instead of
    // sleeping, or a 1-thread pool deadlocks here.
    ThreadPool pool(1);
    ParallelExec outer(&pool);
    std::vector<size_t> sums(3, 0);
    outer.forChunks(3, 1, [&](size_t c, size_t begin, size_t end) {
        ASSERT_EQ(begin + 1, end);
        ParallelExec inner(&pool);
        std::vector<size_t> parts(4, 0);
        inner.forChunks(4096 * 4, 4096,
                        [&](size_t inner_c, size_t b, size_t e) {
                            size_t s = 0;
                            for (size_t i = b; i < e; ++i)
                                s += i % 7;
                            parts[inner_c] = s;
                        });
        size_t total = 0;
        for (size_t p : parts)
            total += p;
        sums[c] = total + begin;
    });
    EXPECT_EQ(sums[1], sums[0] + 1);
    EXPECT_EQ(sums[2], sums[0] + 2);
}

} // namespace
} // namespace effact
