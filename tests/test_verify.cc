/**
 * @file
 * Verifier-layer tests (verify/verify.h): one directed negative test
 * per rule id in the catalogue, randomized corruption fuzzing (every
 * injected defect must be caught), the compiler's checkpoint wiring
 * (pass boundaries, middle-end snapshot boundaries, back-end exit), the
 * PR 4 "register -1" regression class, and fully verified compiles of
 * seed workloads across the Fig. 11 presets and sweep thread counts.
 *
 * `SlowVerify*` suites re-run the verified-workload matrix at paper
 * scale; the default ctest registration filters them out.
 */
#include <gtest/gtest.h>

#include <functional>
#include <random>
#include <string>
#include <vector>

#include "compiler/compile_cache.h"
#include "compiler/pass.h"
#include "compiler/pass_manager.h"
#include "ir/builder.h"
#include "ir/workloads.h"
#include "platform/platform.h"
#include "runtime/sweep.h"
#include "sched/depgraph.h"
#include "verify/verify.h"

namespace effact {
namespace {

size_t
countRule(const VerifyReport &rep, const std::string &rule)
{
    size_t n = 0;
    for (const VerifyFinding &f : rep.findings)
        n += f.rule == rule;
    return n;
}

/** Asserts the report contains `rule` and nothing but `rule`. */
void
expectOnly(const VerifyReport &rep, const std::string &rule)
{
    EXPECT_GE(countRule(rep, rule), 1u) << rep.toString();
    EXPECT_EQ(countRule(rep, rule), rep.findings.size()) << rep.toString();
}

/** Tiny well-formed program: load a, load b, t=a*b, u=t+a, store u. */
IrProgram
tinyProgram()
{
    IrProgram prog;
    prog.name = "tiny";
    prog.degree = 1 << 12;
    prog.lanes = 64;
    IrBuilder b(prog);
    int in = b.object("in", 2, false);
    int out = b.object("out", 1, false);
    PolyVal a = b.load(in, 0, 1);
    PolyVal bb = b.load(in, 1, 1);
    PolyVal t = b.mul(a, bb);
    PolyVal u = b.add(t, a);
    b.store(out, 0, u);
    return prog;
}

/** Tiny well-formed machine program over an 8-register file. */
MachineProgram
tinyMachine()
{
    MachineProgram mp;
    mp.numRegs = 8;
    mp.residueBytes = size_t(1) << 12;
    MachInst ld0;
    ld0.op = Opcode::LOAD_RES;
    ld0.dest = Operand::regOp(0);
    mp.insts.push_back(ld0);
    MachInst ld1;
    ld1.op = Opcode::LOAD_RES;
    ld1.dest = Operand::regOp(1);
    mp.insts.push_back(ld1);
    MachInst mul;
    mul.op = Opcode::MMUL;
    mul.dest = Operand::regOp(2);
    mul.src0 = Operand::regOp(0);
    mul.src1 = Operand::regOp(1);
    mp.insts.push_back(mul);
    MachInst st;
    st.op = Opcode::STORE_RES;
    st.src0 = Operand::regOp(2);
    mp.insts.push_back(st);
    return mp;
}

// --- IR rules: the bases are clean, each corruption trips one rule -------

TEST(IrVerifier, AcceptsWellFormedPrograms)
{
    const VerifyReport rep = verifyIr(tinyProgram());
    EXPECT_TRUE(rep.ok()) << rep.toString();
    EXPECT_GT(rep.checksRun, 0u);
}

TEST(IrVerifier, DegreePow2)
{
    IrProgram prog = tinyProgram();
    prog.degree = 3;
    expectOnly(verifyIr(prog), "ir.degree.pow2");
}

TEST(IrVerifier, ObjectShape)
{
    IrProgram prog = tinyProgram();
    prog.addObject("empty", 0, false);
    expectOnly(verifyIr(prog), "ir.object.shape");
}

TEST(IrVerifier, OperandRange)
{
    IrProgram prog = tinyProgram();
    prog.insts[2].a = 1000; // the Mul's first operand
    expectOnly(verifyIr(prog), "ir.operand.range");
}

TEST(IrVerifier, OperandOrder)
{
    IrProgram prog = tinyProgram();
    prog.insts[2].a = 3; // Mul reads the later Add: use before def
    expectOnly(verifyIr(prog), "ir.operand.order");
}

TEST(IrVerifier, OperandDead)
{
    IrProgram prog = tinyProgram();
    prog.insts[1].dead = true; // kill load b; the Mul still reads it
    expectOnly(verifyIr(prog), "ir.operand.dead");
}

TEST(IrVerifier, OperandNoValue)
{
    IrProgram prog = tinyProgram();
    IrBuilder b(prog);
    // An Add whose operand names the Store (index 4): no value there.
    b.emit1(IrOp::Add, 4, 0, 0);
    expectOnly(verifyIr(prog), "ir.operand.novalue");
}

TEST(IrVerifier, OperandArity)
{
    IrProgram prog = tinyProgram();
    prog.insts[2].a = -1; // Mul with no first operand
    expectOnly(verifyIr(prog), "ir.operand.arity");

    IrProgram prog2 = tinyProgram();
    prog2.insts[1].a = 0; // Load must not carry an operand
    expectOnly(verifyIr(prog2), "ir.operand.arity");
}

TEST(IrVerifier, ImmExclusive)
{
    IrProgram prog = tinyProgram();
    prog.insts[2].useImm = true; // b still names load 1
    expectOnly(verifyIr(prog), "ir.imm.exclusive");

    IrProgram prog2 = tinyProgram();
    IrBuilder b(prog2);
    PolyVal v{{2}};
    b.ntt(v); // Ntt has no immediate form...
    prog2.insts.back().useImm = true; // ...so useImm is illegal on it
    expectOnly(verifyIr(prog2), "ir.imm.exclusive");
}

TEST(IrVerifier, MacCOnly)
{
    IrProgram prog = tinyProgram();
    prog.insts[3].c = 0; // c on the Add
    expectOnly(verifyIr(prog), "ir.mac.conly");
}

TEST(IrVerifier, MacRequiresAccumulator)
{
    IrProgram prog = tinyProgram();
    prog.insts[3].op = IrOp::Mac; // Add -> Mac without a c operand
    expectOnly(verifyIr(prog), "ir.operand.arity");
}

TEST(IrVerifier, MemObject)
{
    IrProgram prog = tinyProgram();
    prog.insts[0].mem.object = 99;
    expectOnly(verifyIr(prog), "ir.mem.object");
}

TEST(IrVerifier, MemIndex)
{
    IrProgram prog = tinyProgram();
    prog.insts[0].mem.index = 2; // object "in" has 2 residues: 0, 1
    expectOnly(verifyIr(prog), "ir.mem.index");
}

TEST(IrVerifier, MemReadOnly)
{
    IrProgram prog = tinyProgram();
    prog.objects[1].readOnly = true; // "out", the Store target
    expectOnly(verifyIr(prog), "ir.mem.readonly");
}

TEST(IrVerifier, MemStray)
{
    IrProgram prog = tinyProgram();
    prog.insts[2].mem.object = 0; // MemRef on the Mul
    expectOnly(verifyIr(prog), "ir.mem.stray");
}

TEST(IrVerifier, ModulusRange)
{
    IrProgram prog = tinyProgram();
    prog.insts[2].modulus = kMaxLimbIndex;
    expectOnly(verifyIr(prog), "ir.modulus.range");
}

TEST(IrVerifier, AutoElt)
{
    // A Galois element lives in [1, 2N); the rotalg pass reduces every
    // composed element mod 2N, so anything outside the range is a
    // malformed rotation, not a big rotation.
    IrProgram prog = tinyProgram();
    IrBuilder b(prog);
    b.automorph(PolyVal{{2}}, 5); // rotate the Mul's limb: well-formed
    ASSERT_TRUE(verifyIr(prog).ok());
    prog.insts.back().imm = u64(prog.degree) * 2; // == 2N: out of range
    expectOnly(verifyIr(prog), "ir.auto.elt");

    IrProgram prog2 = tinyProgram();
    IrBuilder b2(prog2);
    b2.automorph(PolyVal{{2}}, 5);
    prog2.insts.back().imm = 0; // below the range
    expectOnly(verifyIr(prog2), "ir.auto.elt");
}

TEST(IrVerifier, DeadInstructionsKeepStaleOperandsSilently)
{
    // Passes mark values dead in place and leave stale operands behind;
    // the verifier must not flag them.
    IrProgram prog = tinyProgram();
    prog.insts[3].dead = true;
    prog.insts[3].a = 500;     // garbage on a dead value: fine
    prog.insts[4].dead = true; // the store of it too
    EXPECT_TRUE(verifyIr(prog).ok());
}

// --- Machine rules --------------------------------------------------------

TEST(MachVerifier, AcceptsWellFormedPrograms)
{
    const VerifyReport rep = verifyMachine(tinyMachine());
    EXPECT_TRUE(rep.ok()) << rep.toString();
}

TEST(MachVerifier, ProgramMeta)
{
    MachineProgram mp = tinyMachine();
    mp.numRegs = 0;
    EXPECT_GE(countRule(verifyMachine(mp), "mach.program.meta"), 1u);
}

TEST(MachVerifier, RegBounds)
{
    MachineProgram mp = tinyMachine();
    mp.insts[2].src0 = Operand::regOp(-1); // the PR 4 class
    expectOnly(verifyMachine(mp), "mach.reg.bounds");

    MachineProgram mp2 = tinyMachine();
    mp2.insts[2].src1 = Operand::regOp(8); // == numRegs
    expectOnly(verifyMachine(mp2), "mach.reg.bounds");
}

TEST(MachVerifier, RegUninit)
{
    MachineProgram mp = tinyMachine();
    mp.insts[2].src1 = Operand::regOp(5); // nothing ever wrote r5
    expectOnly(verifyMachine(mp), "mach.reg.uninit");
}

TEST(MachVerifier, StreamProducerMissing)
{
    MachineProgram mp = tinyMachine();
    mp.insts[2].src0 = Operand::stream(77); // FU FIFO with no producer
    expectOnly(verifyMachine(mp), "mach.stream.producer");
}

TEST(MachVerifier, StreamProducedTwice)
{
    // Two producers of one FIFO token before any consumer — exactly the
    // duplicated-token shape of the Mac-fusion miscompile this layer
    // was built to catch.
    MachineProgram mp = tinyMachine();
    mp.insts[0].dest = Operand::stream(7);
    mp.insts[1].dest = Operand::stream(7);
    mp.insts[2].src0 = Operand::stream(7);
    mp.insts[2].src1 = Operand::imm(3);
    const VerifyReport rep = verifyMachine(mp);
    EXPECT_GE(countRule(rep, "mach.stream.producer"), 1u)
        << rep.toString();
}

/** tinyMachine plus a trailing NTT of r2 whose result nothing reads —
 *  a safe victim for destination corruption (no downstream cascade). */
MachineProgram
tinyMachineWithTail()
{
    MachineProgram mp = tinyMachine();
    MachInst tail;
    tail.op = Opcode::NTT;
    tail.dest = Operand::regOp(3);
    tail.src0 = Operand::regOp(2);
    mp.insts.push_back(tail);
    return mp;
}

TEST(MachVerifier, StreamDest)
{
    MachineProgram mp = tinyMachine();
    mp.insts[3].dest = Operand::regOp(3); // store with a destination
    expectOnly(verifyMachine(mp), "mach.stream.dest");

    MachineProgram mp2 = tinyMachineWithTail();
    mp2.insts[4].dest = Operand::none(); // compute with no destination
    expectOnly(verifyMachine(mp2), "mach.stream.dest");

    MachineProgram mp3 = tinyMachineWithTail();
    mp3.insts[4].dest = Operand::stream(0, /*from_dram=*/true);
    expectOnly(verifyMachine(mp3), "mach.stream.dest");

    MachineProgram mp4 = tinyMachineWithTail();
    mp4.insts[4].dest = Operand::imm(1); // immediate destination
    expectOnly(verifyMachine(mp4), "mach.stream.dest");
}

TEST(MachVerifier, OperandShape)
{
    MachineProgram mp = tinyMachine();
    mp.insts[0].src0 = Operand::regOp(1); // load takes no sources
    EXPECT_GE(countRule(verifyMachine(mp), "mach.operand.shape"), 1u);

    MachineProgram mp2 = tinyMachine();
    mp2.insts[2].src1 = Operand::none(); // MMUL missing its second source
    expectOnly(verifyMachine(mp2), "mach.operand.shape");

    // src2 is the MMAC accumulator and nothing else.
    MachineProgram mp3 = tinyMachine();
    mp3.insts[2].src2 = Operand::regOp(0); // src2 on a MMUL
    expectOnly(verifyMachine(mp3), "mach.operand.shape");

    MachineProgram mp4 = tinyMachine();
    mp4.insts[2].op = Opcode::MMAC;
    mp4.insts[2].src2 = Operand::imm(3); // immediate accumulator
    expectOnly(verifyMachine(mp4), "mach.operand.shape");
}

TEST(MachVerifier, MmacAccumulatorReadsAreChecked)
{
    MachineProgram mp = tinyMachine();
    mp.insts[2].op = Opcode::MMAC;
    mp.insts[2].src2 = Operand::regOp(6); // r6 never written
    expectOnly(verifyMachine(mp), "mach.reg.uninit");

    // A written accumulator register is fine.
    MachineProgram ok = tinyMachine();
    ok.insts[2].op = Opcode::MMAC;
    ok.insts[2].src2 = Operand::regOp(1);
    EXPECT_TRUE(verifyMachine(ok).ok());
}

TEST(MachVerifier, ScratchPool)
{
    MachineProgram mp = tinyMachine();
    mp.scratchRegs = 5; // above the regalloc's historic clamp of 4
    expectOnly(verifyMachine(mp), "mach.scratch.pool");

    mp.scratchRegs = 0; // hand-built sentinel: rule skipped
    EXPECT_TRUE(verifyMachine(mp).ok());
}

TEST(MachVerifier, SramBudget)
{
    MachineProgram mp = tinyMachine();
    mp.numRegs = 64;
    MachVerifyBudget budget;
    budget.sramBytes = 16 * mp.residueBytes; // fits only 16 registers
    expectOnly(verifyMachine(mp, budget), "mach.sram.budget");
    // Without a budget the rule is skipped.
    EXPECT_TRUE(verifyMachine(mp).ok());
}

TEST(MachVerifier, MemAlign)
{
    // The regalloc lays objects and spill slots out in whole-residue
    // units; a mid-residue HBM address is a layout bug.
    MachineProgram mp = tinyMachine();
    mp.insts[0].hbmAddr = mp.residueBytes + 17;
    expectOnly(verifyMachine(mp), "mach.mem.align");

    MachineProgram ok = tinyMachine();
    ok.insts[0].hbmAddr = 4 * ok.residueBytes; // aligned: clean
    EXPECT_TRUE(verifyMachine(ok).ok());
}

TEST(MachVerifier, MemOrder)
{
    // A store issued after an IR-later access of its address — the
    // alias-edge inversion (WAR here) no scheduler order may produce.
    MachineProgram mp = tinyMachine();
    mp.insts[0].irId = 9; // load of v9 at address 0 issues first...
    mp.insts[3].irId = 4; // ...then the store of IR-earlier v4
    expectOnly(verifyMachine(mp), "mach.mem.order");

    // A load issued after the store of an IR-later value (RAW
    // inversion).
    MachineProgram mp2 = tinyMachine();
    mp2.insts[3].irId = 9; // store of v9 at address 0
    MachInst ld;
    ld.op = Opcode::LOAD_RES;
    ld.dest = Operand::regOp(4);
    ld.irId = 4; // IR-earlier load issued after it
    mp2.insts.push_back(ld);
    expectOnly(verifyMachine(mp2), "mach.mem.order");

    // Equal ids are one value's own spill store/reload traffic, and
    // IR-ordered accesses are what the alias edges require: both clean.
    MachineProgram ok = tinyMachine();
    ok.insts[0].irId = 3;
    ok.insts[1].irId = 3;
    ok.insts[3].irId = 7;
    EXPECT_TRUE(verifyMachine(ok).ok());
}

// --- The PR 4 regression class --------------------------------------------

/** Live-but-unused load: its value needs a home even with DCE off. */
IrProgram
unusedLoadProgram()
{
    IrProgram prog;
    prog.name = "unused-load";
    prog.degree = 1 << 12;
    prog.lanes = 64;
    IrBuilder b(prog);
    int in = b.object("in", 2, false);
    int out = b.object("out", 1, false);
    PolyVal a = b.load(in, 0, 1);
    b.load(in, 1, 1); // never consumed; only DCE would remove it
    b.store(out, 0, a);
    return prog;
}

TEST(MachVerifier, UnusedLoadCompilesToABoundedRegister)
{
    // The historic bug: with every optimization off, codegen emitted
    // the unconsumed load with destination register -1. The backend now
    // lands it in scratch, and the verifier pins the invariant.
    CompilerOptions opts;
    opts.pipeline = "";
    opts.copyProp = opts.constProp = opts.pre = opts.peephole = false;
    opts.verifyLevel = 0; // verify explicitly below
    IrProgram prog = unusedLoadProgram();
    Compiler compiler(opts);
    MachineProgram mp = compiler.compile(prog);
    const VerifyReport rep = verifyMachine(mp);
    EXPECT_TRUE(rep.ok()) << rep.toString();
}

TEST(MachVerifier, InjectedBadRegisterIsCaughtWithTheRightRule)
{
    CompilerOptions opts;
    opts.copyProp = opts.constProp = opts.pre = opts.peephole = false;
    opts.verifyLevel = 0;
    IrProgram prog = unusedLoadProgram();
    Compiler compiler(opts);
    MachineProgram mp = compiler.compile(prog);
    ASSERT_FALSE(mp.insts.empty());
    // Re-inject the bug shape into the compiled program.
    mp.insts[0].dest = Operand::regOp(-1);
    EXPECT_GE(countRule(verifyMachine(mp), "mach.reg.bounds"), 1u);
}

TEST(MachVerifier, SpillPressureNeverStealsAStreamedStoreToken)
{
    // Second bug the verifier layer caught (after the Mac-fusion token
    // duplication): a value whose only use is a streamed store entered
    // linear scan anyway, and under register pressure its longest-lived
    // interval was the preferred spill victim — the inserted spill
    // store then consumed the producer's one-shot FIFO token and left
    // the real streamed store with an unproduced token. Build that
    // exact shape: a streamed-to-store value live across enough
    // multi-use values to overflow the minimum 8-register file, with
    // more than fifoDepth instructions between producer and store so
    // FU-to-FU forwarding cannot paper over it.
    IrProgram prog;
    prog.degree = 1 << 12;
    prog.lanes = 64;
    IrBuilder b(prog);
    int in = b.object("in", 64, false);
    int out = b.object("out", 64, false);
    PolyVal first = b.load(in, 0, 1);
    PolyVal second = b.load(in, 1, 1);
    PolyVal streamed = b.mul(first, second); // only use: final store
    std::vector<PolyVal> held;
    for (int k = 2; k < 62; ++k)
        held.push_back(b.load(in, k, 1));
    for (int k = 0; k + 1 < 60; ++k) // middle loads used twice: need regs
        b.store(out, k + 2, b.add(held[k], held[k + 1]));
    b.store(out, 0, streamed);

    CompilerOptions opts = Platform::fullOptions(1); // minimum: 8 regs
    opts.schedule = false; // program order pins the live ranges
    opts.verifyLevel = 0;  // verify explicitly below
    Compiler compiler(opts);
    MachineProgram mp = compiler.compile(prog);
    EXPECT_GT(mp.spillLoads + mp.spillStores, 0u); // pressure was real
    const VerifyReport rep = verifyMachine(mp);
    EXPECT_TRUE(rep.ok()) << rep.toString();
}

TEST(MachVerifierDeathTest, DepGraphNamesTheMalformedInstruction)
{
    // The consumer-side guard: DepGraph::fromMachine on a corrupted
    // program dies with a diagnostic naming the instruction and the
    // violated rule, not a bare assert (let alone a segfault).
    MachineProgram mp = tinyMachine();
    mp.insts[2].dest = Operand::regOp(-1);
    EXPECT_DEATH(DepGraph::fromMachine(mp),
                 "destination register id is negative");
    EXPECT_DEATH(DepGraph::fromMachine(mp), "mach.reg.bounds");
}

// --- Compiler checkpoints -------------------------------------------------

TEST(Checkpoints, VerifiedCompileIsCleanAndRecordsStats)
{
    IrProgram prog = tinyProgram();
    CompilerOptions opts;
    opts.verifyLevel = 1;
    Compiler compiler(opts);
    MachineProgram mp = compiler.compile(prog);
    EXPECT_FALSE(mp.insts.empty());
    EXPECT_GT(compiler.stats().get("verify.checks"), 0.0);
    EXPECT_TRUE(compiler.stats().has("verify.ms"));
}

TEST(Checkpoints, VerificationDoesNotChangeTheEmittedCode)
{
    IrProgram verified_prog = tinyProgram();
    IrProgram plain_prog = tinyProgram();
    CompilerOptions verified_opts;
    verified_opts.verifyLevel = 1;
    CompilerOptions plain_opts;
    plain_opts.verifyLevel = 0;
    MachineProgram verified =
        Compiler(verified_opts).compile(verified_prog);
    MachineProgram plain = Compiler(plain_opts).compile(plain_prog);
    EXPECT_EQ(fingerprint(verified), fingerprint(plain));
}

TEST(Checkpoints, VerifyLevelSharesCompileCacheEntries)
{
    // verifyLevel is excluded from the middle-end preset hash: a
    // verified and an unverified compile of the same preset hit the
    // same cache entry.
    CompileCache cache;
    CompilerOptions opts;
    opts.verifyLevel = 1;
    IrProgram first = tinyProgram();
    AnalysisManager analyses;
    Compiler compiler(opts);
    compiler.compile(first, analyses, &cache);
    EXPECT_EQ(compiler.stats().get("cache.hit"), 0.0);
    const double miss_checks = compiler.stats().get("verify.checks");

    opts.verifyLevel = 0;
    IrProgram second = tinyProgram();
    Compiler unverified(opts);
    unverified.compile(second, analyses, &cache);
    EXPECT_EQ(unverified.stats().get("cache.hit"), 1.0);
    // The replayed snapshot stats carry the miss's middle-end verify
    // counters (hit == miss byte-identity), even though the hit itself
    // ran no middle-end verification.
    EXPECT_GT(miss_checks, 0.0);
}

TEST(Checkpoints, PassManagerVerifiesAtPassBoundaries)
{
    // A program with PRE-removable redundancy, so at least one pass
    // reports a change and its post-pass checkpoint actually runs.
    IrProgram prog;
    prog.degree = 1 << 12;
    prog.lanes = 64;
    IrBuilder b(prog);
    int in = b.object("in", 2, false);
    int out = b.object("out", 2, false);
    PolyVal x = b.load(in, 0, 1);
    PolyVal y = b.load(in, 1, 1);
    b.store(out, 0, b.mul(x, y));
    b.store(out, 1, b.mul(x, y)); // redundant: PRE removes one
    AnalysisManager analyses;
    StatSet stats;
    PassManager pm = PassManager::fromSpec("copyprop,constprop,pre");
    pm.setVerifyLevel(1);
    pm.run(prog, analyses, stats);
    EXPECT_TRUE(pm.converged());
    EXPECT_GT(stats.get("verify.checks"), 0.0);
    EXPECT_GT(stats.get("pass.pre.removed"), 0.0);
}

TEST(CheckpointsDeathTest, MalformedInputNamedAtTheMiddleEndBoundary)
{
    // A malformed frontend program is reported against the middle-end
    // input checkpoint with its rule id, not against whichever pass
    // trips over it first.
    IrProgram prog = tinyProgram();
    prog.insts[2].modulus = kMaxLimbIndex;
    CompilerOptions opts;
    opts.verifyLevel = 1;
    Compiler compiler(opts);
    EXPECT_DEATH(Compiler(opts).compile(prog), "middle-end input");
    EXPECT_DEATH(compiler.compile(prog), "ir.modulus.range");
}

// --- Randomized corruption fuzz -------------------------------------------

/** A mid-sized compiled-shape IR base for corruption. */
IrProgram
fuzzBase()
{
    FheParams fhe;
    fhe.logN = 12;
    fhe.levels = 4;
    fhe.dnum = 2;
    Workload w = buildDbLookup(fhe, 8);
    return w.program;
}

TEST(CorruptionFuzz, EveryInjectedIrDefectIsCaught)
{
    const IrProgram base = fuzzBase();
    ASSERT_TRUE(verifyIr(base).ok());
    const int n = static_cast<int>(base.insts.size());
    std::mt19937 rng(0xEFFAC7u);
    auto pick = [&](auto &&pred) {
        for (;;) {
            int i = static_cast<int>(rng() % n);
            if (!base.insts[i].dead && pred(base.insts[i]))
                return i;
        }
    };

    size_t caught = 0;
    const size_t kRounds = 200;
    for (size_t round = 0; round < kRounds; ++round) {
        IrProgram prog = base;
        switch (round % 8) {
          case 0: { // use-before-def
            int i = pick([](const IrInst &x) { return x.a >= 0; });
            prog.insts[i].a = i;
            break;
          }
          case 1: { // operand id out of range
            int i = pick([](const IrInst &x) { return x.a >= 0; });
            prog.insts[i].a = n + 1 + static_cast<int>(rng() % 100);
            break;
          }
          case 2: { // corrupted limb index
            int i = pick([](const IrInst &) { return true; });
            prog.insts[i].modulus = kMaxLimbIndex + rng() % 1000;
            break;
          }
          case 3: { // live user of a dead value
            int i = pick([](const IrInst &x) { return x.a >= 0; });
            prog.insts[prog.insts[i].a].dead = true;
            break;
          }
          case 4: { // memory reference outside the object table
            int i = pick([](const IrInst &x) {
                return x.op == IrOp::Load || x.op == IrOp::Store;
            });
            prog.insts[i].mem.object =
                static_cast<int>(prog.objects.size()) + 1;
            break;
          }
          case 5: { // stray MemRef on a compute instruction
            int i = pick([](const IrInst &x) {
                return x.op != IrOp::Load && x.op != IrOp::Store;
            });
            prog.insts[i].mem.object = 0;
            break;
          }
          case 6: { // accumulator on a non-Mac opcode
            int i = pick([](const IrInst &x) {
                return x.op != IrOp::Mac && x.a >= 0;
            });
            prog.insts[i].c = 0;
            break;
          }
          default: { // Galois element outside [1, 2N)
            int i = pick([](const IrInst &x) {
                return x.op == IrOp::Auto && x.useImm;
            });
            prog.insts[i].imm = 2 * u64(prog.degree) + rng() % 100;
            break;
          }
        }
        caught += !verifyIr(prog).ok();
    }
    EXPECT_EQ(caught, kRounds); // 100% catch rate
}

TEST(CorruptionFuzz, EveryInjectedMachineDefectIsCaught)
{
    IrProgram prog = fuzzBase();
    CompilerOptions opts = Platform::fullOptions(size_t(1) << 20);
    opts.verifyLevel = 0;
    const MachineProgram base = Compiler(opts).compile(prog);
    ASSERT_TRUE(verifyMachine(base).ok());
    const int n = static_cast<int>(base.insts.size());
    const int regs = static_cast<int>(base.numRegs);
    std::mt19937 rng(0xBADC0DEu);
    auto pick = [&](auto &&pred) {
        for (;;) {
            int i = static_cast<int>(rng() % n);
            if (pred(base.insts[i]))
                return i;
        }
    };

    size_t caught = 0;
    const size_t kRounds = 200;
    for (size_t round = 0; round < kRounds; ++round) {
        MachineProgram mp = base;
        switch (round % 8) {
          case 0: { // the PR 4 class: negative register id
            int i = pick([](const MachInst &x) {
                return x.dest.kind == OperandKind::Reg;
            });
            mp.insts[i].dest.reg = -1;
            break;
          }
          case 1: { // register id past the file
            int i = pick([](const MachInst &x) {
                return x.src0.kind == OperandKind::Reg;
            });
            mp.insts[i].src0.reg = regs + static_cast<int>(rng() % 8);
            break;
          }
          case 2: { // compute instruction loses its destination
            int i = pick([](const MachInst &x) {
                return x.op != Opcode::STORE_RES;
            });
            mp.insts[i].dest = Operand::none();
            break;
          }
          case 3: { // FIFO consumer with no producer
            int i = pick([](const MachInst &x) {
                return x.op != Opcode::LOAD_RES &&
                       x.op != Opcode::STORE_RES;
            });
            mp.insts[i].src0 = Operand::stream(u64(1) << 40);
            break;
          }
          case 4: { // src2 outside MMAC
            int i = pick([](const MachInst &x) {
                return x.op != Opcode::MMAC;
            });
            mp.insts[i].src2 = Operand::regOp(0);
            break;
          }
          case 5: { // scratch pool outside the clamp
            mp.scratchRegs = 5 + rng() % 10;
            break;
          }
          case 6: { // mid-residue HBM address on a memory access
            int i = pick([](const MachInst &x) {
                return x.op == Opcode::LOAD_RES ||
                       x.op == Opcode::STORE_RES;
            });
            mp.insts[i].hbmAddr +=
                1 + rng() % (base.residueBytes - 1);
            break;
          }
          default: { // reload issued before the IR-ordered spill store
            int i = pick([](const MachInst &x) {
                return x.dest.kind == OperandKind::Reg;
            });
            const u64 addr = u64(n + 100) * base.residueBytes;
            MachInst st;
            st.op = Opcode::STORE_RES;
            st.src0 = base.insts[i].dest;
            st.hbmAddr = addr;
            st.irId = 5;
            mp.insts.push_back(st);
            MachInst ld;
            ld.op = Opcode::LOAD_RES;
            ld.dest = base.insts[i].dest;
            ld.hbmAddr = addr;
            ld.irId = 4; // IR-before the store it follows
            mp.insts.push_back(ld);
            break;
          }
        }
        caught += !verifyMachine(mp).ok();
    }
    EXPECT_EQ(caught, kRounds); // 100% catch rate
}

// --- Verified seed workloads across presets and thread counts -------------

/** The four Fig. 11 presets plus the rotalg/priority/latency optimized
 *  preset — every verified sweep covers all five. */
std::vector<CompilerOptions>
fig11Presets(size_t sram)
{
    return {Platform::baselineOptions(sram),
            Platform::madEnhancedOptions(sram),
            Platform::streamingOptions(sram), Platform::fullOptions(sram),
            Platform::optimizedOptions(sram)};
}

/** Submits small-workload jobs for every Fig. 11 preset. */
void
submitVerifiedGrid(SweepEngine &engine)
{
    FheParams fhe;
    fhe.logN = 13;
    fhe.levels = 8;
    fhe.dnum = 2;
    const HardwareConfig hw = HardwareConfig::asicEffact27();
    int preset_idx = 0;
    for (const CompilerOptions &opts : fig11Presets(hw.sramBytes)) {
        SweepJob job;
        job.name = "preset" + std::to_string(preset_idx++);
        job.build = [fhe] { return buildDbLookup(fhe, 32); };
        job.hw = hw;
        job.copts = opts;
        engine.submit(std::move(job));
    }
}

TEST(VerifiedWorkloads, CleanAtEveryBoundaryAcrossPresetsAndThreads)
{
    // Checkpoint enforcement panics on the first malformed program, so
    // a run to completion IS the assertion that every boundary of every
    // preset is verifier-clean — at each sweep thread count.
    uint64_t serial_fp = 0;
    for (size_t threads : {size_t(1), size_t(2), size_t(8)}) {
        SweepOptions sopts;
        sopts.threads = threads;
        sopts.verifyLevel = 1; // batch-wide override
        SweepEngine engine(sopts);
        submitVerifiedGrid(engine);
        const std::vector<SweepResult> &results = engine.runAll();
        ASSERT_EQ(results.size(), 5u);
        uint64_t fp = 0;
        for (const SweepResult &r : results) {
            EXPECT_GT(r.platform.sim.cycles, 0.0) << r.name;
            fp ^= r.platform.machineFingerprint;
        }
        EXPECT_GT(engine.aggregates().get("compile.verify.checks.sum"),
                  0.0);
        if (threads == 1)
            serial_fp = fp;
        else // verified parallel sweeps stay deterministic
            EXPECT_EQ(fp, serial_fp);
    }
}

// --- Paper-scale verified matrix (slow registration only) -----------------

TEST(SlowVerify, StockWorkloadsAllPresetsVerifyClean)
{
    FheParams fhe; // paper defaults
    FheParams boot = fhe;
    boot.logN = 15;
    boot.levels = 16;
    boot.dnum = 4;
    const HardwareConfig hw = HardwareConfig::asicEffact27();

    struct W
    {
        const char *name;
        std::function<Workload()> build;
    };
    const std::vector<W> workloads = {
        {"boot",
         [boot] {
             return buildBootstrapping(boot,
                                       {size_t(1) << 14, 3, 2, 127, 8});
         }},
        {"helr", [fhe] { return buildHelr(fhe); }},
        {"dblookup", [fhe] { return buildDbLookup(fhe); }},
        {"tfhe", [] { return buildTfheBootstrap(); }},
    };

    CompileCache cache;
    for (size_t threads : {size_t(1), size_t(8)}) {
        SweepOptions sopts;
        sopts.threads = threads;
        sopts.verifyLevel = 1;
        sopts.compileCache = &cache;
        SweepEngine engine(sopts);
        int preset_idx = 0;
        for (const CompilerOptions &opts : fig11Presets(hw.sramBytes)) {
            for (const W &w : workloads) {
                SweepJob job;
                job.name = std::string(w.name) + "/preset" +
                           std::to_string(preset_idx);
                job.build = w.build;
                job.hw = hw;
                job.copts = opts;
                engine.submit(std::move(job));
            }
            ++preset_idx;
        }
        const std::vector<SweepResult> &results = engine.runAll();
        for (const SweepResult &r : results)
            EXPECT_GT(r.platform.sim.cycles, 0.0) << r.name;
    }
}

} // namespace
} // namespace effact
