/**
 * @file
 * Exactness pin for the SIMD kernel tiers (math/kernels.h): every tier
 * this host can run must produce byte-identical `u64` outputs to the
 * scalar oracle on every kernel, every tail length and a seeded fuzz
 * sweep of NTT-friendly moduli. This is the contract that lets the
 * `EFFACT_SIMD` knob move wall clock without ever moving a
 * fingerprint, a cycle count or a `CompileCache` key.
 *
 * On a host whose best tier is scalar the tier-comparison loops are
 * empty and the suite degenerates to plumbing + alignment checks;
 * HostTierReport records which tiers actually ran so CI logs show what
 * was exercised.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "math/kernels.h"
#include "math/ntt.h"
#include "math/primes.h"
#include "rns/bconv.h"
#include "rns/poly.h"

namespace effact {
namespace {

/** Tiers above scalar that this build + CPU can actually run. */
std::vector<SimdTier>
vectorTiers()
{
    std::vector<SimdTier> tiers;
    for (int t = 1; t <= static_cast<int>(maxSupportedSimdTier()); ++t)
        tiers.push_back(static_cast<SimdTier>(t));
    return tiers;
}

/** Tail-heavy length set: everything around the 4-lane boundaries. */
const size_t kLengths[] = {0,  1,  2,  3,   4,   5,    6,    7,   8,
                           9,  11, 12, 13,  15,  16,   17,   31,  32,
                           33, 63, 64, 100, 255, 1000, 1024, 4097};

const unsigned kBitWidths[] = {30, 40, 50, 58};

std::vector<u64>
randomResidues(Rng &rng, size_t n, u64 q)
{
    std::vector<u64> v(n);
    for (auto &c : v)
        c = rng.uniform(q);
    return v;
}

TEST(SimdTierPlumbing, HostTierReport)
{
    const SimdTier best = maxSupportedSimdTier();
    // Not an assertion — the suite must pass on any host — but the log
    // line tells CI readers which tiers the equivalence loops covered.
    std::printf("[host] max supported tier: %s, active: %s\n",
                simdTierName(best), simdTierName(activeSimdTier()));
    EXPECT_GE(static_cast<int>(best), static_cast<int>(SimdTier::Scalar));
    EXPECT_STREQ(simdTierName(SimdTier::Scalar), "scalar");
    EXPECT_STREQ(simdTierName(SimdTier::Avx2), "avx2");
}

TEST(SimdTierPlumbing, SetTierClampsToHostMaximum)
{
    const SimdTier prev = activeSimdTier();
    const SimdTier best = maxSupportedSimdTier();
    // Requesting more than the host supports installs the host maximum,
    // never an unusable tier.
    const SimdTier got = setSimdTier(SimdTier::Avx2);
    EXPECT_LE(static_cast<int>(got), static_cast<int>(best));
    EXPECT_EQ(got, activeSimdTier());
    EXPECT_EQ(setSimdTier(SimdTier::Scalar), SimdTier::Scalar);
    EXPECT_EQ(activeSimdTier(), SimdTier::Scalar);
    setSimdTier(prev);
}

TEST(SimdTierPlumbing, EveryTierValueResolvesToUsableTable)
{
    // forTier is total: even a tier the build lacks must come back as a
    // usable table (the highest available lower tier).
    for (int t = 0; t <= static_cast<int>(SimdTier::Avx2); ++t) {
        const kernels::KernelTable &tab = kernels::forTier(SimdTier(t));
        EXPECT_NE(tab.nttForward, nullptr);
        EXPECT_NE(tab.addModV, nullptr);
    }
}

TEST(SimdAlignment, LimbStorageIs64ByteAligned)
{
    auto basis =
        std::make_shared<RnsBasis>(size_t(64), genNttPrimes(3, 40, 64));
    RnsPoly p(basis, PolyFormat::Coeff);
    for (size_t j = 0; j < p.limbCount(); ++j)
        EXPECT_EQ(reinterpret_cast<uintptr_t>(p.limb(j).data()) % 64, 0u)
            << "limb " << j;
    AlignedU64Vec v(17);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % 64, 0u);
}

// --- Elementwise kernels: scalar vs every available tier ------------------

TEST(SimdKernelEquivalence, ElementwiseAllTailLengths)
{
    const kernels::KernelTable &oracle = kernels::scalarKernels();
    Rng rng(7001);
    for (unsigned bits : kBitWidths) {
        const u64 q = genNttPrimes(1, bits, 64)[0];
        const Barrett br(q);
        const Montgomery mont(q);
        for (size_t n : kLengths) {
            const std::vector<u64> a = randomResidues(rng, n, q);
            const std::vector<u64> b = randomResidues(rng, n, q);
            const std::vector<u64> acc0 = randomResidues(rng, n, q);
            const u64 c = rng.uniform(q);
            for (SimdTier tier : vectorTiers()) {
                const kernels::KernelTable &tab = kernels::forTier(tier);
                std::vector<u64> want(n), got(n);

                oracle.addModV(want.data(), a.data(), b.data(), n, q);
                tab.addModV(got.data(), a.data(), b.data(), n, q);
                EXPECT_EQ(want, got) << "addModV n=" << n << " q=" << q;

                oracle.subModV(want.data(), a.data(), b.data(), n, q);
                tab.subModV(got.data(), a.data(), b.data(), n, q);
                EXPECT_EQ(want, got) << "subModV n=" << n << " q=" << q;

                oracle.negModV(want.data(), a.data(), n, q);
                tab.negModV(got.data(), a.data(), n, q);
                EXPECT_EQ(want, got) << "negModV n=" << n << " q=" << q;

                oracle.mulModV(want.data(), a.data(), b.data(), n, br);
                tab.mulModV(got.data(), a.data(), b.data(), n, br);
                EXPECT_EQ(want, got) << "mulModV n=" << n << " q=" << q;

                oracle.mulConstV(want.data(), a.data(), n, c, br);
                tab.mulConstV(got.data(), a.data(), n, c, br);
                EXPECT_EQ(want, got) << "mulConstV n=" << n << " q=" << q;

                want = acc0;
                got = acc0;
                oracle.macConstV(want.data(), a.data(), n, c, br);
                tab.macConstV(got.data(), a.data(), n, c, br);
                EXPECT_EQ(want, got) << "macConstV n=" << n << " q=" << q;

                oracle.montMulConstV(want.data(), a.data(), n, c, mont);
                tab.montMulConstV(got.data(), a.data(), n, c, mont);
                EXPECT_EQ(want, got)
                    << "montMulConstV n=" << n << " q=" << q;

                want = acc0;
                got = acc0;
                oracle.montMacConstV(want.data(), a.data(), n, c, mont);
                tab.montMacConstV(got.data(), a.data(), n, c, mont);
                EXPECT_EQ(want, got)
                    << "montMacConstV n=" << n << " q=" << q;
            }
        }
    }
}

TEST(SimdKernelEquivalence, MulModAcceptsAnyReducedOperands)
{
    // Stress the Barrett replay at the extremes: residues packed near q
    // (worst-case correction count) and near 0, under the widest q.
    const u64 q = genNttPrimes(1, 58, 64)[0];
    const Barrett br(q);
    const kernels::KernelTable &oracle = kernels::scalarKernels();
    const size_t n = 64;
    std::vector<u64> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = i % 2 == 0 ? q - 1 - i / 2 : i / 2;
        b[i] = i % 3 == 0 ? q - 1 : (i % 3 == 1 ? 1 : q / 2);
    }
    for (SimdTier tier : vectorTiers()) {
        std::vector<u64> want(n), got(n);
        oracle.mulModV(want.data(), a.data(), b.data(), n, br);
        kernels::forTier(tier).mulModV(got.data(), a.data(), b.data(), n,
                                       br);
        EXPECT_EQ(want, got) << simdTierName(tier);
    }
}

// --- NTT: scalar vs every available tier, every size ----------------------

TEST(SimdKernelEquivalence, NttForwardInverseAllSizes)
{
    const kernels::KernelTable &oracle = kernels::scalarKernels();
    Rng rng(7002);
    for (size_t n = 2; n <= 4096; n <<= 1) {
        for (unsigned bits : {30u, 50u}) {
            const u64 q = genNttPrimes(1, bits, n)[0];
            const Ntt plan(n, q);
            const kernels::NttTables tables = plan.kernelTables();
            const std::vector<u64> input = randomResidues(rng, n, q);
            for (SimdTier tier : vectorTiers()) {
                const kernels::KernelTable &tab = kernels::forTier(tier);
                std::vector<u64> want = input, got = input;
                oracle.nttForward(want.data(), n, tables);
                tab.nttForward(got.data(), n, tables);
                EXPECT_EQ(want, got) << "forward n=" << n << " q=" << q
                                     << " tier=" << simdTierName(tier);
                oracle.nttInverse(want.data(), n, tables);
                tab.nttInverse(got.data(), n, tables);
                EXPECT_EQ(want, got) << "inverse n=" << n << " q=" << q
                                     << " tier=" << simdTierName(tier);
            }
        }
    }
}

TEST(SimdKernelEquivalence, NttRoundTripAtEveryTier)
{
    Rng rng(7003);
    const size_t n = 1024;
    const u64 q = genNttPrimes(1, 54, n)[0];
    const Ntt plan(n, q);
    const std::vector<u64> input = randomResidues(rng, n, q);
    const SimdTier prev = activeSimdTier();
    for (int t = 0; t <= static_cast<int>(maxSupportedSimdTier()); ++t) {
        setSimdTier(static_cast<SimdTier>(t));
        std::vector<u64> a = input;
        plan.forward(a.data());
        plan.backward(a.data());
        EXPECT_EQ(a, input) << simdTierName(static_cast<SimdTier>(t));
    }
    setSimdTier(prev);
}

// --- End-to-end: RnsPoly / BaseConverter under tier switch ----------------

/** Runs a mixed RnsPoly + BConv scene under `tier`, returns all limbs. */
std::vector<std::vector<u64>>
runPolyScene(SimdTier tier, u64 seed)
{
    const SimdTier prev = activeSimdTier();
    setSimdTier(tier);
    const size_t n = 256;
    auto from = std::make_shared<RnsBasis>(n, genNttPrimes(3, 40, n));
    auto to = std::make_shared<RnsBasis>(
        n, genNttPrimes(3, 40, n, from->primes()));
    BaseConverter bc(from, to);

    Rng rng(seed);
    RnsPoly a(from, PolyFormat::Coeff), b(from, PolyFormat::Coeff);
    a.sampleUniform(rng);
    b.sampleUniform(rng);

    RnsPoly prod = a;
    prod.toEval();
    RnsPoly fb = b;
    fb.toEval();
    prod.mulEvalInPlace(fb);
    prod.toCoeff();
    prod.addInPlace(a);
    prod.subInPlace(b);
    prod.negInPlace();
    prod.mulScalarU64(12345);

    RnsPoly conv = bc.convert(prod);
    RnsPoly exact = bc.convertExact(prod);
    RnsPoly mont = bc.convertMontgomery(prod, true);

    std::vector<std::vector<u64>> limbs;
    for (const RnsPoly *p : {&prod, &conv, &exact, &mont})
        for (size_t j = 0; j < p->limbCount(); ++j)
            limbs.emplace_back(p->limb(j).begin(), p->limb(j).end());
    setSimdTier(prev);
    return limbs;
}

TEST(SimdKernelEquivalence, PolyAndBconvSceneMatchesScalar)
{
    const auto want = runPolyScene(SimdTier::Scalar, 99);
    for (SimdTier tier : vectorTiers())
        EXPECT_EQ(want, runPolyScene(tier, 99)) << simdTierName(tier);
}

// --- Seeded fuzz over genNttPrimes moduli ---------------------------------

TEST(SimdKernelEquivalence, FuzzRandomLengthsAndModuli)
{
    const kernels::KernelTable &oracle = kernels::scalarKernels();
    const std::vector<SimdTier> tiers = vectorTiers();
    if (tiers.empty())
        GTEST_SKIP() << "host has no vector tier; nothing to fuzz";
    Rng rng(20250808);
    for (int round = 0; round < 200; ++round) {
        const unsigned bits = 30 + unsigned(rng.uniform(29)); // 30..58
        const size_t ntt_n = size_t(64) << rng.uniform(4);    // 64..512
        const u64 q = genNttPrimes(1, bits, ntt_n)[0];
        const Barrett br(q);
        const Montgomery mont(q);
        const size_t n = 1 + size_t(rng.uniform(300));
        const std::vector<u64> a = randomResidues(rng, n, q);
        const std::vector<u64> b = randomResidues(rng, n, q);
        const u64 c = rng.uniform(q);
        const SimdTier tier = tiers[rng.uniform(tiers.size())];
        const kernels::KernelTable &tab = kernels::forTier(tier);
        std::vector<u64> want(n), got(n);
        switch (rng.uniform(5)) {
          case 0:
            oracle.mulModV(want.data(), a.data(), b.data(), n, br);
            tab.mulModV(got.data(), a.data(), b.data(), n, br);
            break;
          case 1:
            oracle.mulConstV(want.data(), a.data(), n, c, br);
            tab.mulConstV(got.data(), a.data(), n, c, br);
            break;
          case 2:
            want = b;
            got = b;
            oracle.macConstV(want.data(), a.data(), n, c, br);
            tab.macConstV(got.data(), a.data(), n, c, br);
            break;
          case 3:
            oracle.montMulConstV(want.data(), a.data(), n, c, mont);
            tab.montMulConstV(got.data(), a.data(), n, c, mont);
            break;
          default: {
            const std::vector<u64> input = randomResidues(rng, ntt_n, q);
            const Ntt plan(ntt_n, q);
            want = input;
            got = input;
            oracle.nttForward(want.data(), ntt_n, plan.kernelTables());
            tab.nttForward(got.data(), ntt_n, plan.kernelTables());
            break;
          }
        }
        ASSERT_EQ(want, got) << "round " << round << " bits=" << bits
                             << " n=" << n << " q=" << q << " tier="
                             << simdTierName(tier);
    }
}

} // namespace
} // namespace effact
