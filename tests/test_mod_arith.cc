/**
 * @file
 * Unit and property tests for 64-bit modular arithmetic, Barrett and
 * Montgomery reduction, and prime generation.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/mod_arith.h"
#include "math/montgomery.h"
#include "math/primes.h"

namespace effact {
namespace {

TEST(ModArith, AddSubBasic)
{
    const u64 q = 17;
    EXPECT_EQ(addMod(9, 9, q), 1u);
    EXPECT_EQ(addMod(0, 0, q), 0u);
    EXPECT_EQ(addMod(16, 16, q), 15u);
    EXPECT_EQ(subMod(3, 9, q), 11u);
    EXPECT_EQ(subMod(9, 9, q), 0u);
    EXPECT_EQ(negMod(0, q), 0u);
    EXPECT_EQ(negMod(5, q), 12u);
}

TEST(ModArith, MulMatchesWideProduct)
{
    Rng rng(1);
    const u64 q = (1ULL << 58) - 27; // arbitrary large odd value
    for (int i = 0; i < 1000; ++i) {
        u64 a = rng.uniform(q);
        u64 b = rng.uniform(q);
        u64 expect = static_cast<u64>((static_cast<u128>(a) * b) % q);
        EXPECT_EQ(mulMod(a, b, q), expect);
    }
}

TEST(ModArith, PowMod)
{
    EXPECT_EQ(powMod(2, 10, 1000000007ULL), 1024u);
    EXPECT_EQ(powMod(5, 0, 97), 1u);
    EXPECT_EQ(powMod(0, 5, 97), 0u);
    // Fermat: a^(q-1) = 1 mod prime q.
    const u64 q = 998244353;
    for (u64 a : {2ULL, 3ULL, 12345ULL})
        EXPECT_EQ(powMod(a, q - 1, q), 1u);
}

TEST(ModArith, InvMod)
{
    const u64 q = 998244353;
    Rng rng(2);
    for (int i = 0; i < 200; ++i) {
        u64 a = 1 + rng.uniform(q - 1);
        u64 inv = invMod(a, q);
        EXPECT_EQ(mulMod(a, inv, q), 1u);
    }
}

TEST(ModArith, CenteredRepresentative)
{
    const u64 q = 11;
    EXPECT_EQ(centered(0, q), 0);
    EXPECT_EQ(centered(5, q), 5);
    EXPECT_EQ(centered(6, q), -5);
    EXPECT_EQ(centered(10, q), -1);
}

TEST(ModArith, ReduceSigned)
{
    const u64 q = 13;
    EXPECT_EQ(reduceSigned(-1, q), 12u);
    EXPECT_EQ(reduceSigned(13, q), 0u);
    EXPECT_EQ(reduceSigned(-27, q), 12u);
}

TEST(Barrett, MatchesDivision)
{
    Rng rng(3);
    for (u64 q : {3ULL, 17ULL, 998244353ULL, (1ULL << 54) - 33ULL,
                  (1ULL << 58) + 1ULL}) {
        if (q >= (1ULL << 59))
            continue;
        Barrett br(q);
        for (int i = 0; i < 500; ++i) {
            u64 a = rng.uniform(q);
            u64 b = rng.uniform(q);
            EXPECT_EQ(br.mul(a, b), mulMod(a, b, q))
                << "q=" << q << " a=" << a << " b=" << b;
        }
        // Edge: largest representable product.
        EXPECT_EQ(br.mul(q - 1, q - 1), mulMod(q - 1, q - 1, q));
        EXPECT_EQ(br.mul(0, q - 1), 0u);
    }
}

TEST(Montgomery, RoundTrip)
{
    Rng rng(4);
    const u64 q = genNttPrimes(1, 54, 1 << 10)[0];
    Montgomery mont(q);
    for (int i = 0; i < 500; ++i) {
        u64 x = rng.uniform(q);
        EXPECT_EQ(mont.fromMont(mont.toMont(x)), x);
    }
    EXPECT_EQ(mont.toMont(1), mont.one());
}

TEST(Montgomery, MulMatchesPlain)
{
    Rng rng(5);
    const u64 q = genNttPrimes(1, 50, 1 << 10)[0];
    Montgomery mont(q);
    for (int i = 0; i < 500; ++i) {
        u64 a = rng.uniform(q);
        u64 b = rng.uniform(q);
        u64 got = mont.fromMont(mont.mul(mont.toMont(a), mont.toMont(b)));
        EXPECT_EQ(got, mulMod(a, b, q));
    }
}

TEST(Montgomery, DoubleMontLiftsNmToSm)
{
    // Key identity behind Eq. 5: MontMult(NM value, DM constant) = SM
    // representation of the product.
    Rng rng(6);
    const u64 q = genNttPrimes(1, 48, 1 << 10)[0];
    Montgomery mont(q);
    for (int i = 0; i < 500; ++i) {
        u64 x_nm = rng.uniform(q);
        u64 c = rng.uniform(q);
        u64 got = mont.mul(x_nm, mont.toDoubleMont(c));
        EXPECT_EQ(got, mont.toMont(mulMod(x_nm, c, q)));
    }
}

TEST(Primes, MillerRabinKnownValues)
{
    EXPECT_FALSE(isPrime(0));
    EXPECT_FALSE(isPrime(1));
    EXPECT_TRUE(isPrime(2));
    EXPECT_TRUE(isPrime(3));
    EXPECT_FALSE(isPrime(4));
    EXPECT_TRUE(isPrime(998244353));
    EXPECT_FALSE(isPrime(998244353ULL * 3));
    EXPECT_TRUE(isPrime((1ULL << 61) - 1)); // Mersenne prime
    EXPECT_FALSE(isPrime((1ULL << 59) - 1));
}

TEST(Primes, NttPrimesAreNttFriendly)
{
    const size_t n = 1 << 12;
    auto primes = genNttPrimes(5, 54, n);
    ASSERT_EQ(primes.size(), 5u);
    for (u64 q : primes) {
        EXPECT_TRUE(isPrime(q));
        EXPECT_EQ((q - 1) % (2 * n), 0u);
        EXPECT_LT(q, 1ULL << 54);
        EXPECT_GT(q, 1ULL << 53);
    }
    // Distinctness.
    for (size_t i = 0; i < primes.size(); ++i)
        for (size_t j = i + 1; j < primes.size(); ++j)
            EXPECT_NE(primes[i], primes[j]);
}

TEST(Primes, ExclusionRespected)
{
    const size_t n = 1 << 10;
    auto first = genNttPrimes(2, 40, n);
    auto second = genNttPrimes(2, 40, n, first);
    for (u64 q : second)
        for (u64 e : first)
            EXPECT_NE(q, e);
}

TEST(Primes, PrimitiveRootHasExactOrder)
{
    const size_t n = 1 << 10;
    const u64 q = genNttPrimes(1, 40, n)[0];
    const u64 order = 2 * n;
    u64 root = findPrimitiveRoot(order, q);
    EXPECT_EQ(powMod(root, order, q), 1u);
    EXPECT_EQ(powMod(root, order / 2, q), q - 1);
}

} // namespace
} // namespace effact
