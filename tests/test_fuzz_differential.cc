/**
 * @file
 * Randomized differential testing of the compiler and simulator:
 *
 *  (a) the fixed-point pass pipeline against the pre-pass-manager
 *      single hardcoded sweep — both optimized programs (and the
 *      un-optimized original) must be *semantically* equivalent under a
 *      reference interpreter, on seeded random IR programs the stock
 *      workloads never produce;
 *  (b) the event-driven `Simulator::run` against the legacy rescan
 *      oracle `runReference` — cycle/traffic-identical on the compiled
 *      random programs across random hardware shapes, SRAM budgets
 *      (spill pressure!), issue windows and pipeline presets.
 *
 * Reference semantics. Values are u64 scalars with wrapping arithmetic
 * (Add/Sub/Mul/Mac), and NTT/iNTT/automorphism are opaque injective
 * mixes — a model under which every implemented rewrite is sound:
 * identity folds (x*1, x+0), immediate-chain merging (the pass combines
 * raw immediates, exactly wrapping multiplication), commutative value
 * numbering, MAC fusion, and DCE. The one deliberate exception is the
 * Eq. 5 peephole: a Normal-tagged immediate scale of an iNTT result is
 * *specified* to be absorbed into downstream BConv constants (the fold
 * rewrites the scale to a Copy), so the interpreter tracks an
 * "absorbable" flag — iNTT results carry it, Copies and identity folds
 * propagate it, and a Normal-tagged immediate multiply (or the
 * immediate path of a fused MAC) of a flagged value contributes factor
 * one. Two generator modes keep this honest: `kArithmetic` never feeds
 * a Normal immediate scale from an iNTT-rooted value, so the flag never
 * fires and the check is exact wrapping arithmetic end-to-end;
 * `kScaleChains` deliberately stacks scales on iNTT results to exercise
 * the fold (and its fixed-point chain collapse) under the absorbed
 * semantics. Immediate multiplies are always Normal-tagged: chaining a
 * Normal scale into a BConv immediate would legitimately pick a
 * different representative of the same structural class than the Eq. 5
 * absorption, which is exactly the ambiguity the paper's counting model
 * does not distinguish.
 */
#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "compiler/pass_manager.h"
#include "math/primes.h"
#include "platform/platform.h"
#include "rns/bconv.h"
#include "runtime/thread_pool.h"
#include "sim/machine.h"

namespace effact {
namespace {

// --- Reference interpreter ------------------------------------------------

u64
mix64(u64 x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

/** A value in the reference semantics. */
struct SemVal
{
    u64 v = 0;
    bool absorb = false; ///< iNTT-rooted: Normal imm scales contribute 1
    /**
     * Rotation provenance, the compositional model behind the rotalg
     * pass: an automorphism result remembers its chain root (as a value
     * id into the interpreter's own `vals` array) and the accumulated
     * Galois element mod 2N, so sigma_g2(sigma_g1(x)) evaluates to the
     * same hash as sigma_{g1*g2 mod 2N}(x) — associativity makes the
     * hash invariant under any partial composition the pass performs.
     * An accumulated element of 1 yields the root's SemVal verbatim
     * (matching the pass's identity-fold to Copy, absorb flag and all).
     * Chains only compose within one modulus, mirroring the pass.
     */
    int rotRootId = -1;  ///< chain root value id (-1 = not a rotation)
    u64 rotElt = 1;      ///< accumulated Galois element mod 2N
    uint32_t rotMod = 0; ///< modulus of the chain
};

using MemKey = std::pair<int, int>; // (object, residue index)

/**
 * Executes `prog` in program order; returns the final memory image
 * (every stored location). Pure function of the program, so any two
 * semantics-preserving rewrites of the same program agree.
 */
std::map<MemKey, u64>
interpret(const IrProgram &prog)
{
    std::vector<SemVal> vals(prog.insts.size());
    std::map<MemKey, u64> mem;
    auto initial = [](const MemRef &m) {
        return mix64(0x4c6f6164ULL ^ (u64(uint32_t(m.object)) << 32) ^
                     u64(uint32_t(m.index)));
    };
    for (size_t i = 0; i < prog.insts.size(); ++i) {
        const IrInst &inst = prog.insts[i];
        if (inst.dead)
            continue;
        const SemVal a = inst.a >= 0 ? vals[inst.a] : SemVal{};
        const SemVal b = inst.b >= 0 ? vals[inst.b] : SemVal{};
        const SemVal c = inst.c >= 0 ? vals[inst.c] : SemVal{};
        SemVal out;
        switch (inst.op) {
          case IrOp::Load: {
            auto it = mem.find({inst.mem.object, inst.mem.index});
            out.v = it != mem.end() ? it->second : initial(inst.mem);
            break;
          }
          case IrOp::Store:
            mem[{inst.mem.object, inst.mem.index}] = a.v;
            continue;
          case IrOp::Copy:
            out = a;
            break;
          case IrOp::Add:
          case IrOp::Sub:
            if (inst.useImm) {
                if (inst.imm == 0) {
                    out = a; // identity: const-prop forwards the operand
                } else {
                    out.v = inst.op == IrOp::Add ? a.v + inst.imm
                                                 : a.v - inst.imm;
                }
            } else {
                out.v = inst.op == IrOp::Add ? a.v + b.v : a.v - b.v;
            }
            break;
          case IrOp::Mul:
            if (inst.useImm) {
                if (inst.imm == 1) {
                    out = a; // identity
                } else if (inst.tag == IrTag::Normal && a.absorb) {
                    out = a; // Eq. 5: scale absorbed into constants
                } else {
                    out.v = a.v * inst.imm;
                }
            } else {
                out.v = a.v * b.v;
            }
            break;
          case IrOp::Mac:
            if (inst.useImm) {
                // The immediate path of a fused MAC follows the same
                // Eq. 5 absorption rule as the Mul it came from.
                out.v = inst.tag == IrTag::Normal && a.absorb
                            ? a.v + c.v
                            : a.v * inst.imm + c.v;
            } else {
                out.v = a.v * b.v + c.v;
            }
            break;
          case IrOp::Ntt:
            out.v = mix64(0x4e7474ULL ^ a.v ^ (u64(inst.modulus) << 48));
            break;
          case IrOp::Intt:
            out.v = mix64(0x494e7474ULL ^ a.v ^ (u64(inst.modulus) << 48));
            out.absorb = true;
            break;
          case IrOp::Auto: {
            // Compositional rotation semantics (see SemVal): resolve the
            // chain root and the accumulated element mod 2N, then hash
            // (root, element) — so the value is invariant under any
            // partial sigma-composition the rotalg pass performs.
            const u64 two_n = u64(prog.degree) * 2;
            int root_id = inst.a;
            u64 elt = two_n != 0 ? inst.imm % two_n : inst.imm;
            if (a.rotRootId >= 0 && a.rotMod == inst.modulus &&
                two_n != 0) {
                root_id = a.rotRootId;
                elt = elt * a.rotElt % two_n;
            }
            const SemVal root = root_id >= 0 ? vals[root_id] : SemVal{};
            if (elt == 1) {
                // Identity rotation: the pass folds it to a Copy of the
                // root, so the interpreter must yield the root verbatim
                // (absorb flag and provenance included).
                out = root;
            } else {
                out.v = mix64(0x4175746fULL ^ root.v ^ mix64(elt) ^
                              (u64(inst.modulus) << 48));
                out.rotRootId = root_id;
                out.rotElt = elt;
                out.rotMod = inst.modulus;
            }
            break;
          }
        }
        vals[i] = out;
    }
    return mem;
}

// --- Random program generator ---------------------------------------------

enum class GenMode {
    kArithmetic,  ///< no iNTT-rooted Normal scales: exact arithmetic
    kScaleChains, ///< deliberately stacks Eq. 5-foldable scale chains
};

constexpr uint32_t kModuli = 3;

/** Seeded random IR program builder. */
class ProgramGen
{
  public:
    ProgramGen(uint64_t seed, GenMode mode, size_t target_insts)
        : rng_(seed), mode_(mode), target_(target_insts)
    {
        prog_.name = "fuzz";
        prog_.degree = size_t(1) << (8 + rng_.uniform(3)); // 256..1024
        prog_.lanes = 64;
        mutable_objs_.push_back(prog_.addObject("mem0", 8, false));
        mutable_objs_.push_back(prog_.addObject("mem1", 8, false));
        ro_obj_ = prog_.addObject("keys", 8, true);
    }

    IrProgram
    build()
    {
        // Seed every modulus pool so binary ops always have operands.
        for (uint32_t m = 0; m < kModuli; ++m)
            emitLoad(m);
        while (prog_.insts.size() < target_)
            emitRandom();
        // Keep results observable: store a handful of live values.
        const size_t n_stores = 1 + rng_.uniform(3);
        for (size_t s = 0; s < n_stores; ++s)
            emitStore();
        return std::move(prog_);
    }

  private:
    /** A random value id of modulus `m` (pools are never empty). */
    int
    pick(uint32_t m)
    {
        const std::vector<int> &p = pool_[m];
        return p[rng_.uniform(p.size())];
    }

    /** A random *untainted* (never iNTT-derived) value, or -1. */
    int
    pickUntainted(uint32_t m)
    {
        const std::vector<int> &p = pool_[m];
        for (int attempt = 0; attempt < 8; ++attempt) {
            int v = p[rng_.uniform(p.size())];
            if (!tainted_[v])
                return v;
        }
        return -1;
    }

    int
    record(int id, uint32_t m, bool taint)
    {
        pool_[m].push_back(id);
        tainted_.resize(prog_.insts.size(), 0);
        tainted_[id] = taint ? 1 : 0;
        return id;
    }

    int
    emitLoad(uint32_t m)
    {
        IrInst inst;
        inst.op = IrOp::Load;
        inst.modulus = m;
        const bool read_only = rng_.uniform(3) == 0;
        const int obj = read_only
                            ? ro_obj_
                            : mutable_objs_[rng_.uniform(
                                  mutable_objs_.size())];
        inst.mem = {obj, int(rng_.uniform(8))};
        return record(prog_.emit(inst), m, false);
    }

    void
    emitStore()
    {
        const uint32_t m = uint32_t(rng_.uniform(kModuli));
        IrInst inst;
        inst.op = IrOp::Store;
        inst.a = pick(m);
        inst.modulus = m;
        inst.mem = {mutable_objs_[rng_.uniform(mutable_objs_.size())],
                    int(rng_.uniform(8))};
        prog_.emit(inst);
    }

    u64
    randomImm()
    {
        // Includes 0 and 1 so the identity folds fire.
        static constexpr u64 imms[] = {0, 1, 1, 2, 3, 5, 9, 257};
        return imms[rng_.uniform(sizeof(imms) / sizeof(imms[0]))];
    }

    void
    emitRandom()
    {
        const uint32_t m = uint32_t(rng_.uniform(kModuli));
        const uint32_t roll = uint32_t(rng_.uniform(24));
        IrInst inst;
        inst.modulus = m;
        bool taint = false;

        if (roll < 3) { // load
            emitLoad(m);
            return;
        }
        if (roll < 5) { // store (mid-program: exercises alias ordering)
            emitStore();
            return;
        }
        if (roll < 10) { // vector add/sub/mul
            inst.op = roll < 7 ? IrOp::Add
                               : (roll < 9 ? IrOp::Mul : IrOp::Sub);
            inst.a = pick(m);
            inst.b = pick(m);
            // Occasional BConv tag, on vector multiplies only (Fig. 3
            // bookkeeping). Not on Add/Sub: MAC fusion keeps a tagged
            // Add's BConv tag while fusing a Normal single-use scale,
            // which legitimately moves the scale out of the Eq. 5
            // absorbed class — a representative change the structural
            // counting model does not rank, so the generator keeps
            // adds Normal and the interpreter stays decisive.
            if (inst.op == IrOp::Mul && rng_.uniform(4) == 0)
                inst.tag = IrTag::BConv;
            taint = tainted_[inst.a] || tainted_[inst.b];
        } else if (roll < 12) { // fused MAC, as the peephole would emit
            inst.op = IrOp::Mac;
            inst.a = pick(m);
            inst.c = pick(m);
            if (rng_.uniform(2) == 0) {
                inst.useImm = true;
                inst.imm = randomImm();
                // An immediate MAC models a fused Normal scale; keep
                // its `a` leg un-absorbable so the interpreter's
                // absorb rule matches what fusion could produce.
                if (mode_ == GenMode::kArithmetic || tainted_[inst.a]) {
                    inst.useImm = false;
                    inst.b = pick(m);
                }
            }
            if (!inst.useImm)
                inst.b = pick(m);
            taint = true; // conservative
        } else if (roll < 15) { // immediate add/sub
            inst.op = rng_.uniform(2) == 0 ? IrOp::Add : IrOp::Sub;
            inst.a = pick(m);
            inst.useImm = true;
            inst.imm = randomImm();
            taint = tainted_[inst.a];
        } else if (roll < 18) { // immediate multiply (always Normal tag)
            inst.op = IrOp::Mul;
            inst.a = pick(m);
            if (mode_ == GenMode::kArithmetic) {
                const int v = pickUntainted(m);
                if (v < 0) {
                    // Nothing untainted around: emit a vector mul
                    // instead of an unrepresentable scale.
                    inst.b = pick(m);
                    taint = tainted_[inst.a] || tainted_[inst.b];
                    prog_.emit(inst);
                    record(int(prog_.insts.size()) - 1, m, taint);
                    return;
                }
                inst.a = v;
            }
            inst.useImm = true;
            inst.imm = randomImm();
            taint = tainted_[inst.a];
        } else if (roll < 20) { // NTT / iNTT
            inst.op = rng_.uniform(2) == 0 ? IrOp::Ntt : IrOp::Intt;
            inst.a = pick(m);
            taint = inst.op == IrOp::Intt || tainted_[inst.a];
            if (mode_ == GenMode::kScaleChains && inst.op == IrOp::Intt &&
                rng_.uniform(2) == 0) {
                // Stack 1-3 single-use Normal scales on the iNTT: the
                // Eq. 5 ladder the fixed point collapses link by link.
                int v = prog_.emit(inst);
                record(v, m, true);
                const size_t links = 1 + rng_.uniform(3);
                for (size_t link = 0; link < links; ++link) {
                    IrInst scale;
                    scale.op = IrOp::Mul;
                    scale.a = v;
                    scale.useImm = true;
                    scale.imm = 3 + 2 * rng_.uniform(8);
                    scale.modulus = m;
                    v = prog_.emit(scale);
                    record(v, m, true);
                }
                return;
            }
        } else if (roll < 22) { // rotation (automorphism)
            inst.op = IrOp::Auto;
            inst.a = pick(m);
            inst.useImm = true;
            inst.imm = 2 * rng_.uniform(prog_.degree / 2) + 1;
            taint = tainted_[inst.a];
            if (rng_.uniform(2) == 0) {
                // Serial sigma-chain v_{s+1} = sigma_g(v_s): the shape
                // rotalg composes, identity-folds (odd elements cycle,
                // so accumulated products hit 1 mod 2N), and retires as
                // dead rotations once composition bypasses the links.
                int v = record(prog_.emit(inst), m, taint);
                const size_t links = 1 + rng_.uniform(3);
                for (size_t link = 0; link < links; ++link) {
                    IrInst rot;
                    rot.op = IrOp::Auto;
                    rot.a = v;
                    rot.useImm = true;
                    rot.imm = 2 * rng_.uniform(prog_.degree / 2) + 1;
                    rot.modulus = m;
                    v = record(prog_.emit(rot), m, taint);
                }
                return;
            }
        } else if (roll < 23) { // copy chain fodder
            inst.op = IrOp::Copy;
            inst.a = pick(m);
            taint = tainted_[inst.a];
        } else { // exact duplicate of an earlier pure op (CSE fodder)
            const int v = pick(m);
            const IrInst &src = prog_.insts[v];
            if (src.op == IrOp::Load &&
                !prog_.objects[src.mem.object].readOnly) {
                // Duplicating a mutable load could observe an
                // intervening store; duplicate as a Copy instead.
                inst.op = IrOp::Copy;
                inst.a = v;
                taint = tainted_[v];
            } else {
                inst = src;
                taint = tainted_[v];
            }
        }
        const int id = prog_.emit(inst);
        record(id, m, taint);
    }

    Rng rng_;
    GenMode mode_;
    size_t target_;
    IrProgram prog_;
    std::vector<std::vector<int>> pool_ =
        std::vector<std::vector<int>>(kModuli);
    std::vector<uint8_t> tainted_;
    std::vector<int> mutable_objs_;
    int ro_obj_ = -1;
};

// --- The legacy single-sweep oracle ---------------------------------------

/**
 * The pre-pass-manager optimization sequence, verbatim: one hardcoded
 * sweep with the special-cased extra copy-prop after the peephole.
 */
void
legacyOptimize(IrProgram &prog, const CompilerOptions &opts, StatSet &stats)
{
    if (opts.copyProp)
        runCopyProp(prog, stats);
    if (opts.constProp)
        runConstProp(prog, stats);
    if (opts.pre)
        runPre(prog, stats);
    if (opts.peephole) {
        runPeephole(prog, stats);
        runCopyProp(prog, stats);
    }
    prog.compact();
}

/** Shard workers for the within-job-parallel recompiles, shared across
 *  seeds (the pool is stateless between uses). */
ThreadPool &
fuzzPool()
{
    static ThreadPool pool(8);
    return pool;
}

/** The fixed-point pipeline over the same option switches. A parallel
 *  `exec` runs every pass region-sharded — the randomized pin that the
 *  sharded pipeline is bit-identical to the serial one. */
void
fixedPointOptimize(IrProgram &prog, const CompilerOptions &opts,
                   StatSet &stats,
                   const ParallelExec &exec = ParallelExec())
{
    AnalysisManager analyses;
    analyses.setExec(exec);
    PassManager pm = PassManager::fromSpec(pipelineSpecFromOptions(opts));
    pm.setMaxIterations(opts.pipelineMaxIterations);
    // Every randomized pipeline run is checkpointed: a pass that leaves
    // malformed IR on any generated program panics here, naming itself.
    pm.setVerifyLevel(1);
    pm.run(prog, analyses, stats);
    ASSERT_TRUE(pm.converged()) << "pipeline did not converge";
    prog.compact();
}

/** A fixed-point run of an *explicit* pipeline spec — the only way to
 *  reach passes (rotalg) that `pipelineSpecFromOptions` never emits. */
void
fixedPointOptimizeSpec(IrProgram &prog, const std::string &spec,
                       StatSet &stats,
                       const ParallelExec &exec = ParallelExec())
{
    AnalysisManager analyses;
    analyses.setExec(exec);
    PassManager pm = PassManager::fromSpec(spec);
    pm.setVerifyLevel(1);
    pm.run(prog, analyses, stats);
    ASSERT_TRUE(pm.converged()) << "pipeline did not converge";
    prog.compact();
}

/** The rotalg-bearing pipeline, as `Platform::optimizedOptions` orders
 *  it (composition before PRE so net elements are canonical). */
constexpr const char *kRotalgSpec = "copyprop,constprop,rotalg,pre,peephole";

/** Option presets swept per seed (switch combinations, not specs). */
std::vector<CompilerOptions>
optionPresets(Rng &rng)
{
    std::vector<CompilerOptions> presets;
    CompilerOptions full; // all four passes on
    presets.push_back(full);
    CompilerOptions mad = full;
    mad.peephole = false;
    presets.push_back(mad);
    CompilerOptions peep_only = full;
    peep_only.copyProp = peep_only.constProp = peep_only.pre = false;
    presets.push_back(peep_only);
    CompilerOptions coin; // one random corner per seed
    coin.copyProp = rng.uniform(2) == 0;
    coin.constProp = rng.uniform(2) == 0;
    coin.pre = rng.uniform(2) == 0;
    coin.peephole = rng.uniform(2) == 0;
    presets.push_back(coin);
    return presets;
}

void
checkSemanticEquivalence(uint64_t seed, GenMode mode, size_t target_insts)
{
    IrProgram original =
        ProgramGen(seed, mode, target_insts).build();
    const std::map<MemKey, u64> mem_original = interpret(original);
    ASSERT_FALSE(mem_original.empty()) << "seed " << seed;

    Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
    size_t preset_idx = 0;
    for (const CompilerOptions &opts : optionPresets(rng)) {
        const std::string tag = "seed " + std::to_string(seed) +
                                " preset " + std::to_string(preset_idx++);
        StatSet stats;
        IrProgram legacy = original;
        legacyOptimize(legacy, opts, stats);
        IrProgram fixed_point = original;
        fixedPointOptimize(fixed_point, opts, stats);
        // Region-sharded run of the same pipeline: identical final IR.
        IrProgram sharded = original;
        fixedPointOptimize(sharded, opts, stats,
                           ParallelExec(&fuzzPool()));
        EXPECT_EQ(fingerprint(sharded), fingerprint(fixed_point)) << tag;

        EXPECT_EQ(interpret(legacy), mem_original) << tag;
        EXPECT_EQ(interpret(fixed_point), mem_original) << tag;
        // The fixed point never ends with more instructions than the
        // single sweep (it subsumes it).
        EXPECT_LE(fixed_point.liveCount(), legacy.liveCount()) << tag;
    }

    // The rotalg pipeline (unreachable from the bool switches): the
    // algebraic rewrites must preserve the memory image, never grow the
    // program (in-place rewrites + Auto-restricted DCE only), and stay
    // bit-identical under region sharding.
    const std::string rtag = "seed " + std::to_string(seed) + " rotalg";
    StatSet rot_stats;
    IrProgram rotalg_opt = original;
    fixedPointOptimizeSpec(rotalg_opt, kRotalgSpec, rot_stats);
    IrProgram rotalg_sharded = original;
    fixedPointOptimizeSpec(rotalg_sharded, kRotalgSpec, rot_stats,
                           ParallelExec(&fuzzPool()));
    EXPECT_EQ(fingerprint(rotalg_sharded), fingerprint(rotalg_opt)) << rtag;
    EXPECT_EQ(interpret(rotalg_opt), mem_original) << rtag;
    EXPECT_LE(rotalg_opt.liveCount(), original.liveCount()) << rtag;
}

// --- Simulator differential -----------------------------------------------

/** Random hardware shape: unit counts, window, SRAM budget, bandwidth. */
HardwareConfig
randomHardware(Rng &rng)
{
    HardwareConfig hw = HardwareConfig::asicEffact27();
    hw.lanes = 256;
    hw.nttUnits = 1 + rng.uniform(3);
    hw.mulUnits = 1 + rng.uniform(3);
    hw.addUnits = 1 + rng.uniform(3);
    hw.autoUnits = 1 + rng.uniform(2);
    hw.nttMacReuse = rng.uniform(2) == 0;
    static constexpr size_t windows[] = {1, 2, 7, 32, 256};
    hw.issueWindow = windows[rng.uniform(5)];
    static constexpr double bandwidths[] = {2.4e11, 1.0e12, 1.2e12};
    hw.hbmBytesPerSec = bandwidths[rng.uniform(3)];
    // Random SRAM budget, down to spill-heavy handfuls of registers
    // (the program degree is at most 1024 -> 8 KB residues).
    hw.sramBytes = size_t(16 + rng.uniform(512)) << 10; // 16 KB..528 KB
    return hw;
}

void
checkSimulatorEquivalence(uint64_t seed, size_t target_insts)
{
    const GenMode mode =
        seed % 2 == 0 ? GenMode::kArithmetic : GenMode::kScaleChains;
    IrProgram prog = ProgramGen(seed, mode, target_insts).build();

    Rng rng(seed ^ 0xda3e39cb94b95bdbULL);
    HardwareConfig hw = randomHardware(rng);
    CompilerOptions opts;
    opts.copyProp = rng.uniform(2) == 0;
    opts.constProp = rng.uniform(2) == 0;
    opts.pre = rng.uniform(2) == 0;
    opts.peephole = rng.uniform(2) == 0;
    opts.schedule = rng.uniform(2) == 0;
    opts.streaming = rng.uniform(2) == 0;
    opts.fifoDepth = 1 + rng.uniform(128);
    // Back-end policy sampling: both schedulers, both allocators, and
    // (half the time) the rotalg-bearing explicit pipeline — every
    // combination must satisfy the event-vs-reference contract.
    opts.scheduler = rng.uniform(2) == 0 ? "latency" : "critical";
    opts.regalloc = rng.uniform(2) == 0 ? "priority" : "linear";
    if (rng.uniform(2) == 0)
        opts.pipeline = kRotalgSpec;
    opts.sramBytes = hw.sramBytes;
    opts.issueWindow = hw.issueWindow;
    opts.lanes = hw.lanes;
    opts.hbmBytesPerCycle = hw.hbmBytesPerCycle();
    // Fully verified compiles: IR checked at every pass boundary and
    // the machine program at back-end exit, for every random shape.
    opts.verifyLevel = 1;

    Compiler compiler(opts);
    MachineProgram mp = compiler.compile(prog);
    ASSERT_FALSE(mp.insts.empty()) << "seed " << seed;

    // Within-job-parallel recompile of the same input: machine code
    // byte-identical across the whole random option/hardware space
    // (spill-heavy SRAM budgets exercise the sharded emission's scratch
    // round-robin seeding).
    {
        IrProgram prog_sharded =
            ProgramGen(seed, mode, target_insts).build();
        Compiler sharded_compiler(opts);
        AnalysisManager analyses;
        analyses.setExec(ParallelExec(&fuzzPool()));
        const MachineProgram mp_sharded =
            sharded_compiler.compile(prog_sharded, analyses);
        EXPECT_EQ(fingerprint(mp_sharded), fingerprint(mp))
            << "seed " << seed;
    }

    Simulator sim(hw);
    const SimReport ev = sim.run(mp);
    const SimReport ref = sim.runReference(mp);
    const std::string tag = "seed " + std::to_string(seed);
    EXPECT_DOUBLE_EQ(ev.cycles, ref.cycles) << tag;
    EXPECT_DOUBLE_EQ(ev.dramBytes, ref.dramBytes) << tag;
    EXPECT_DOUBLE_EQ(ev.dramUtil, ref.dramUtil) << tag;
    EXPECT_DOUBLE_EQ(ev.nttUtil, ref.nttUtil) << tag;
    EXPECT_DOUBLE_EQ(ev.mulAddUtil, ref.mulAddUtil) << tag;
    EXPECT_DOUBLE_EQ(ev.autoUtil, ref.autoUtil) << tag;
    EXPECT_EQ(ev.instructions, ref.instructions) << tag;
}

// --- SIMD tier differential ------------------------------------------------

/**
 * Runs a random chain of RnsPoly / BConv operations under a randomly
 * sampled SIMD tier and replays the identical chain under the scalar
 * oracle tier; every limb must match exactly (common/simd.h's
 * exact-value contract, end-to-end rather than per kernel —
 * test_simd_kernels.cc covers the per-kernel pin).
 */
void
checkSimdTierEquivalence(uint64_t seed, size_t degree)
{
    Rng plan_rng(seed * 2 + 1);
    const std::vector<SimdTier> tiers = [] {
        std::vector<SimdTier> t;
        for (int i = 1; i <= static_cast<int>(maxSupportedSimdTier()); ++i)
            t.push_back(static_cast<SimdTier>(i));
        return t;
    }();
    if (tiers.empty())
        GTEST_SKIP() << "host has no vector tier; nothing to sample";
    const SimdTier tier = tiers[plan_rng.uniform(tiers.size())];
    const size_t limbs = 2 + plan_rng.uniform(3);
    const unsigned bits = 35 + unsigned(plan_rng.uniform(16)); // 35..50
    const int steps = 3 + int(plan_rng.uniform(6));

    auto run = [&](SimdTier active) {
        const SimdTier prev = activeSimdTier();
        setSimdTier(active);
        auto from = std::make_shared<RnsBasis>(
            degree, genNttPrimes(limbs, bits, degree));
        auto to = std::make_shared<RnsBasis>(
            degree, genNttPrimes(limbs, bits, degree, from->primes()));
        BaseConverter bc(from, to);
        Rng rng(seed);
        RnsPoly a(from, PolyFormat::Coeff), b(from, PolyFormat::Coeff);
        a.sampleUniform(rng);
        b.sampleUniform(rng);
        Rng op_rng(seed + 17);
        for (int s = 0; s < steps; ++s) {
            switch (op_rng.uniform(6)) {
              case 0: a.addInPlace(b); break;
              case 1: a.subInPlace(b); break;
              case 2: a.negInPlace(); break;
              case 3: a.mulScalarU64(op_rng.next()); break;
              case 4: {
                a.toEval();
                RnsPoly fb = b;
                fb.toEval();
                a.mulEvalInPlace(fb);
                a.toCoeff();
                break;
              }
              default: {
                RnsPoly fa = a;
                fa.toEval();
                fa.toCoeff();
                a = fa;
                break;
              }
            }
        }
        std::vector<std::vector<u64>> out;
        for (const RnsPoly &p :
             {bc.convert(a), bc.convertExact(a), bc.convertMontgomery(a, true)})
            for (size_t j = 0; j < p.limbCount(); ++j)
                out.emplace_back(p.limb(j).begin(), p.limb(j).end());
        for (size_t j = 0; j < a.limbCount(); ++j)
            out.emplace_back(a.limb(j).begin(), a.limb(j).end());
        setSimdTier(prev);
        return out;
    };

    ASSERT_EQ(run(SimdTier::Scalar), run(tier))
        << "seed " << seed << " tier " << simdTierName(tier) << " limbs "
        << limbs << " bits " << bits;
}

// --- Fast suites (~200 seeds each check) ----------------------------------

TEST(FuzzDifferential, SimdTierMatchesScalarOracle)
{
    for (uint64_t seed = 0; seed < 40; ++seed)
        checkSimdTierEquivalence(seed, 128);
}

TEST(SlowFuzz, SimdTierMatchesScalarOracleLarge)
{
    for (uint64_t seed = 400; seed < 480; ++seed)
        checkSimdTierEquivalence(seed, 1024);
}

TEST(FuzzDifferential, PipelineMatchesLegacySweepArithmetic)
{
    for (uint64_t seed = 0; seed < 100; ++seed)
        checkSemanticEquivalence(seed, GenMode::kArithmetic, 80);
}

TEST(FuzzDifferential, PipelineMatchesLegacySweepScaleChains)
{
    for (uint64_t seed = 1000; seed < 1100; ++seed)
        checkSemanticEquivalence(seed, GenMode::kScaleChains, 80);
}

TEST(FuzzDifferential, EventCoreMatchesReferenceSimulator)
{
    for (uint64_t seed = 0; seed < 200; ++seed)
        checkSimulatorEquivalence(seed, 120);
}

// --- Slow sweep (ctest -C slow -L slow) -----------------------------------

TEST(SlowFuzz, PipelineMatchesLegacySweepLarge)
{
    for (uint64_t seed = 5000; seed < 6200; ++seed) {
        checkSemanticEquivalence(seed, GenMode::kArithmetic, 600);
        checkSemanticEquivalence(seed, GenMode::kScaleChains, 600);
    }
}

TEST(SlowFuzz, EventCoreMatchesReferenceSimulatorLarge)
{
    for (uint64_t seed = 9000; seed < 11000; ++seed)
        checkSimulatorEquivalence(seed, 1000);
}

} // namespace
} // namespace effact
