/**
 * @file
 * Suite for the compile-and-simulate service: wire-protocol round-trips
 * and malformed-frame rejection (including a seeded single-byte
 * corruption fuzz loop with a 100% detection requirement), service-core
 * validation / admission / batching semantics, the replay-determinism
 * contract — a recorded 50-request session with forced evictions and
 * rejections pins byte-identical against the uncached serial oracle —
 * and the AF_UNIX transport end to end, recording included.
 */
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "platform/platform.h"
#include "runtime/sweep.h"
#include "service/service.h"

namespace effact {
namespace {

/** A small, valid db-lookup request (fast enough to appear 50x in the
 *  replay session). */
ServiceRequest
smallRequest(const std::string &name, uint64_t records,
             const CompilerOptions &copts)
{
    ServiceRequest req;
    req.tag = 1000 + records;
    req.name = name;
    req.workload = "dblookup";
    req.fhe.logN = 12;
    req.fhe.levels = 6;
    req.fhe.dnum = 2;
    req.param = records;
    req.hw = HardwareConfig::asicEffact27();
    req.copts = copts;
    return req;
}

ServiceRequest
smallRequest(const std::string &name, uint64_t records)
{
    const HardwareConfig hw = HardwareConfig::asicEffact27();
    return smallRequest(name, records, Platform::fullOptions(hw.sramBytes));
}

std::vector<uint8_t>
concatCanonical(const std::vector<ServiceResult> &results)
{
    std::vector<uint8_t> bytes;
    for (const ServiceResult &res : results) {
        const std::vector<uint8_t> one = canonicalResultBytes(res);
        bytes.insert(bytes.end(), one.begin(), one.end());
    }
    return bytes;
}

// --- Protocol: message round-trips ----------------------------------------

TEST(Protocol, RequestRoundTripPreservesEveryField)
{
    ServiceRequest req;
    req.tag = 0xdeadbeefcafe1234ULL;
    req.name = "round-trip";
    req.workload = "bootstrap";
    req.fhe.logN = 15;
    req.fhe.levels = 23;
    req.fhe.dnum = 3;
    req.fhe.lanes = 512;
    req.param = 77;
    req.hw = HardwareConfig::fpgaEffact();
    req.hw.lanes = 2048;
    req.hw.freqGhz = 1.75;
    req.hw.sramBytes = size_t(54) << 20;
    req.hw.hbmBytesPerSec = 9.8e11;
    req.hw.nttUnits = 3;
    req.hw.mulUnits = 5;
    req.hw.addUnits = 7;
    req.hw.autoUnits = 2;
    req.hw.nttMacReuse = !req.hw.nttMacReuse;
    req.hw.issueWindow = 192;
    req.copts.copyProp = false;
    req.copts.constProp = true;
    req.copts.pre = false;
    req.copts.peephole = true;
    req.copts.pipeline = "copyprop,constprop";
    req.copts.pipelineMaxIterations = 17;
    req.copts.schedule = false;
    req.copts.streaming = true;
    req.copts.sramBytes = size_t(13) << 20;
    req.copts.fifoDepth = 33;
    req.copts.issueWindow = 128;
    req.verifyLevel = 2;

    ServiceRequest out;
    std::string error;
    ASSERT_TRUE(decodeRequest(encodeRequest(req), &out, &error)) << error;
    EXPECT_EQ(out.tag, req.tag);
    EXPECT_EQ(out.name, req.name);
    EXPECT_EQ(out.workload, req.workload);
    EXPECT_EQ(out.fhe.logN, req.fhe.logN);
    EXPECT_EQ(out.fhe.levels, req.fhe.levels);
    EXPECT_EQ(out.fhe.dnum, req.fhe.dnum);
    EXPECT_EQ(out.fhe.lanes, req.fhe.lanes);
    EXPECT_EQ(out.param, req.param);
    EXPECT_EQ(out.hw.name, req.hw.name);
    EXPECT_EQ(out.hw.lanes, req.hw.lanes);
    EXPECT_EQ(out.hw.freqGhz, req.hw.freqGhz);
    EXPECT_EQ(out.hw.sramBytes, req.hw.sramBytes);
    EXPECT_EQ(out.hw.hbmBytesPerSec, req.hw.hbmBytesPerSec);
    EXPECT_EQ(out.hw.nttUnits, req.hw.nttUnits);
    EXPECT_EQ(out.hw.mulUnits, req.hw.mulUnits);
    EXPECT_EQ(out.hw.addUnits, req.hw.addUnits);
    EXPECT_EQ(out.hw.autoUnits, req.hw.autoUnits);
    EXPECT_EQ(out.hw.nttMacReuse, req.hw.nttMacReuse);
    EXPECT_EQ(out.hw.issueWindow, req.hw.issueWindow);
    EXPECT_EQ(out.copts.copyProp, req.copts.copyProp);
    EXPECT_EQ(out.copts.constProp, req.copts.constProp);
    EXPECT_EQ(out.copts.pre, req.copts.pre);
    EXPECT_EQ(out.copts.peephole, req.copts.peephole);
    EXPECT_EQ(out.copts.pipeline, req.copts.pipeline);
    EXPECT_EQ(out.copts.pipelineMaxIterations,
              req.copts.pipelineMaxIterations);
    EXPECT_EQ(out.copts.schedule, req.copts.schedule);
    EXPECT_EQ(out.copts.streaming, req.copts.streaming);
    EXPECT_EQ(out.copts.fifoDepth, req.copts.fifoDepth);
    // The two hardware-derived knobs are deliberately NOT on the wire:
    // `hw.sramBytes` / `hw.issueWindow` are authoritative (`Platform`
    // overwrites them), so a request can't smuggle in a mismatch.
    EXPECT_EQ(out.copts.sramBytes, CompilerOptions{}.sramBytes);
    EXPECT_EQ(out.copts.issueWindow, CompilerOptions{}.issueWindow);
    EXPECT_EQ(out.verifyLevel, req.verifyLevel);
    // The byte encoding is canonical: re-encoding the decoded message
    // reproduces the exact input bytes.
    EXPECT_EQ(encodeRequest(out), encodeRequest(req));
}

TEST(Protocol, ResultRoundTripPreservesEveryField)
{
    ServiceResult res;
    res.seq = 41;
    res.tag = 0x123456789abcdef0ULL;
    res.name = "res-round-trip";
    res.status = ServiceStatus::RejectedQueueFull;
    res.error = "pending queue full (capacity 8)";
    res.cycles = 12345.6789;
    res.timeMs = 0.0123456789012345678;
    res.dramBytes = 9.87e9;
    res.dramUtil = 0.625;
    res.nttUtil = 0.1;
    res.mulAddUtil = 0.2;
    res.autoUtil = 0.3;
    res.instructions = 4242;
    res.machineFingerprint = 0xfeedfacefeedfaceULL;
    res.benchTimeMs = 3.25;
    res.amortizedUs = 0.5;
    res.dramGb = 1.5;
    res.stats.set("compile.insts", 4242);
    res.stats.set("sim.cycles", 12345.6789);
    res.queueDepth = 7;
    res.queueMs = 1.25;
    res.serviceMs = 2.5;

    ServiceResult out;
    std::string error;
    ASSERT_TRUE(decodeResult(encodeResult(res), &out, &error)) << error;
    EXPECT_EQ(out.seq, res.seq);
    EXPECT_EQ(out.tag, res.tag);
    EXPECT_EQ(out.name, res.name);
    EXPECT_EQ(out.status, res.status);
    EXPECT_EQ(out.error, res.error);
    EXPECT_EQ(out.cycles, res.cycles);
    EXPECT_EQ(out.timeMs, res.timeMs);
    EXPECT_EQ(out.dramBytes, res.dramBytes);
    EXPECT_EQ(out.dramUtil, res.dramUtil);
    EXPECT_EQ(out.nttUtil, res.nttUtil);
    EXPECT_EQ(out.mulAddUtil, res.mulAddUtil);
    EXPECT_EQ(out.autoUtil, res.autoUtil);
    EXPECT_EQ(out.instructions, res.instructions);
    EXPECT_EQ(out.machineFingerprint, res.machineFingerprint);
    EXPECT_EQ(out.benchTimeMs, res.benchTimeMs);
    EXPECT_EQ(out.amortizedUs, res.amortizedUs);
    EXPECT_EQ(out.dramGb, res.dramGb);
    EXPECT_EQ(out.stats.all(), res.stats.all());
    EXPECT_EQ(out.queueDepth, res.queueDepth);
    EXPECT_EQ(out.queueMs, res.queueMs);
    EXPECT_EQ(out.serviceMs, res.serviceMs);
    EXPECT_EQ(encodeResult(out), encodeResult(res));
}

TEST(Protocol, ErrorPayloadRoundTrip)
{
    const std::string message = "bad request: unknown workload 'x'";
    std::string out;
    ASSERT_TRUE(decodeErrorPayload(encodeErrorPayload(message), &out));
    EXPECT_EQ(out, message);
}

TEST(Protocol, TruncatedOrGarbageMessagePayloadsAreRejected)
{
    const std::vector<uint8_t> full = encodeRequest(smallRequest("t", 32));
    ServiceRequest req;
    std::string error;
    // Every proper prefix must be rejected (no partial decodes), and so
    // must trailing garbage (strict atEnd check).
    for (size_t len = 0; len < full.size(); ++len) {
        const std::vector<uint8_t> prefix(full.begin(), full.begin() + len);
        EXPECT_FALSE(decodeRequest(prefix, &req, &error)) << len;
    }
    std::vector<uint8_t> padded = full;
    padded.push_back(0);
    EXPECT_FALSE(decodeRequest(padded, &req, &error));

    ServiceResult res;
    const std::vector<uint8_t> rfull = encodeResult(ServiceResult{});
    for (size_t len = 0; len < rfull.size(); ++len) {
        const std::vector<uint8_t> prefix(rfull.begin(),
                                          rfull.begin() + len);
        EXPECT_FALSE(decodeResult(prefix, &res, &error)) << len;
    }
}

// --- Protocol: framing -----------------------------------------------------

TEST(Protocol, FrameRoundTripAndStreamDecode)
{
    const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
    std::vector<uint8_t> bytes = encodeFrame(FrameType::Request, payload);
    EXPECT_EQ(bytes.size(), kFrameHeaderBytes + payload.size());

    Frame frame;
    size_t consumed = 0;
    ASSERT_EQ(decodeFrame(bytes.data(), bytes.size(), &frame, &consumed),
              FrameDecodeStatus::Ok);
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(frame.version, kProtocolVersion);
    EXPECT_EQ(frame.type, FrameType::Request);
    EXPECT_EQ(frame.payload, payload);

    // Concatenated frames decode one at a time (streaming transport).
    const std::vector<uint8_t> second = encodeFrame(FrameType::Flush, {});
    bytes.insert(bytes.end(), second.begin(), second.end());
    ASSERT_EQ(decodeFrame(bytes.data(), bytes.size(), &frame, &consumed),
              FrameDecodeStatus::Ok);
    EXPECT_EQ(frame.type, FrameType::Request);
    ASSERT_EQ(decodeFrame(bytes.data() + consumed, bytes.size() - consumed,
                          &frame, &consumed),
              FrameDecodeStatus::Ok);
    EXPECT_EQ(frame.type, FrameType::Flush);
    EXPECT_TRUE(frame.payload.empty());
}

TEST(Protocol, TruncatedFramesAreRejectedAtEveryPrefix)
{
    const std::vector<uint8_t> bytes =
        encodeFrame(FrameType::Request, {9, 8, 7});
    Frame frame;
    size_t consumed = 0;
    for (size_t len = 0; len < bytes.size(); ++len)
        EXPECT_EQ(decodeFrame(bytes.data(), len, &frame, &consumed),
                  FrameDecodeStatus::Truncated)
            << "prefix length " << len;
}

TEST(Protocol, StructuredRejectionPerHeaderField)
{
    const std::vector<uint8_t> good = encodeFrame(FrameType::Flush, {1, 2});
    Frame frame;
    size_t consumed = 0;

    std::vector<uint8_t> bad = good;
    bad[0] ^= 0xff; // magic
    EXPECT_EQ(decodeFrame(bad.data(), bad.size(), &frame, &consumed),
              FrameDecodeStatus::BadMagic);

    bad = good;
    bad[4] = 99; // version
    EXPECT_EQ(decodeFrame(bad.data(), bad.size(), &frame, &consumed),
              FrameDecodeStatus::BadVersion);

    bad = good;
    bad[6] = 0; // type 0: outside the enum
    EXPECT_EQ(decodeFrame(bad.data(), bad.size(), &frame, &consumed),
              FrameDecodeStatus::BadType);
    bad[6] = 200;
    EXPECT_EQ(decodeFrame(bad.data(), bad.size(), &frame, &consumed),
              FrameDecodeStatus::BadType);

    bad = good;
    // Declared length just over the hard bound -> refused before any
    // allocation or checksum work.
    const uint32_t oversized = kMaxFramePayload + 1;
    std::memcpy(&bad[8], &oversized, sizeof(oversized));
    EXPECT_EQ(decodeFrame(bad.data(), bad.size(), &frame, &consumed),
              FrameDecodeStatus::Oversized);

    bad = good;
    bad.back() ^= 0x01; // payload bit
    EXPECT_EQ(decodeFrame(bad.data(), bad.size(), &frame, &consumed),
              FrameDecodeStatus::BadChecksum);
}

TEST(Protocol, SeededSingleByteCorruptionIsAlwaysDetected)
{
    // The checksum covers (version, type, payload) and magic/version
    // have direct checks, so *every* single-byte corruption of a frame
    // must be detected — the fuzz loop requires 100%, not "usually".
    const std::vector<uint8_t> frame_bytes =
        encodeFrame(FrameType::Request, encodeRequest(smallRequest("f", 48)));
    uint64_t rng = 0x5eed0001;
    auto next = [&rng] {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        return rng >> 33;
    };
    Frame frame;
    size_t consumed = 0;
    int detected = 0;
    constexpr int kIterations = 600;
    for (int iter = 0; iter < kIterations; ++iter) {
        std::vector<uint8_t> bad = frame_bytes;
        const size_t pos = next() % bad.size();
        const uint8_t delta = uint8_t(1 + next() % 255);
        bad[pos] = uint8_t(bad[pos] ^ delta);
        const FrameDecodeStatus status =
            decodeFrame(bad.data(), bad.size(), &frame, &consumed);
        if (status != FrameDecodeStatus::Ok)
            ++detected;
        else
            ADD_FAILURE() << "corruption at byte " << pos << " (xor 0x"
                          << std::hex << int(delta)
                          << ") decoded as a valid frame";
    }
    EXPECT_EQ(detected, kIterations);
    // And the pristine bytes still decode: the detector is not just
    // rejecting everything.
    ASSERT_EQ(decodeFrame(frame_bytes.data(), frame_bytes.size(), &frame,
                          &consumed),
              FrameDecodeStatus::Ok);
}

TEST(Protocol, CanonicalResultStripsNondeterminism)
{
    ServiceResult a;
    a.seq = 3;
    a.tag = 9;
    a.name = "canon";
    a.cycles = 100.5;
    a.machineFingerprint = 0xabcdef;
    a.stats.set("compile.insts", 42);
    a.stats.set("compile.time.ms", 1.23);
    a.stats.set("compile.cache.hit", 1.0);
    a.stats.set("service.accepted", 10);
    a.queueDepth = 5;
    a.queueMs = 0.5;
    a.serviceMs = 1.5;

    // Same deterministic content, different timing/cache observations.
    ServiceResult b = a;
    b.stats.set("compile.time.ms", 99.0);
    b.stats.set("compile.cache.hit", 0.0);
    b.queueDepth = 0;
    b.queueMs = 0.0;
    b.serviceMs = 123.0;

    const ServiceResult canon = canonicalResult(a);
    EXPECT_EQ(canon.queueDepth, 0u);
    EXPECT_EQ(canon.queueMs, 0.0);
    EXPECT_EQ(canon.serviceMs, 0.0);
    EXPECT_EQ(canon.stats.all().count("compile.insts"), 1u);
    EXPECT_EQ(canon.stats.all().count("compile.time.ms"), 0u);
    EXPECT_EQ(canon.stats.all().count("compile.cache.hit"), 0u);
    EXPECT_EQ(canon.stats.all().count("service.accepted"), 0u);

    EXPECT_EQ(canonicalResultBytes(a), canonicalResultBytes(b));
    EXPECT_EQ(canonicalResultLine(a), canonicalResultLine(b));
    // A deterministic field difference does show up.
    b.cycles = 101.5;
    EXPECT_NE(canonicalResultBytes(a), canonicalResultBytes(b));
}

// --- ServiceCore: validation, admission, batching --------------------------

TEST(ServiceCore, BadRequestsAreReportedNotExecuted)
{
    ServiceOptions opts;
    opts.threads = 1;
    ServiceCore core(opts);

    ServiceRequest unknown = smallRequest("unknown-kind", 32);
    unknown.workload = "quantum";
    core.submit(unknown);

    ServiceRequest bad_pipeline = smallRequest("bad-pipeline", 32);
    bad_pipeline.copts.pipeline = "copyprop,bogus_pass";
    core.submit(bad_pipeline);

    ServiceRequest bad_logn = smallRequest("bad-logn", 32);
    bad_logn.fhe.logN = 40;
    core.submit(bad_logn);

    // Paper-scale builders refuse toy parameters instead of panicking
    // inside the workload builder.
    ServiceRequest tiny_bootstrap = smallRequest("tiny-bootstrap", 0);
    tiny_bootstrap.workload = "bootstrap";
    core.submit(tiny_bootstrap);

    core.submit(smallRequest("fine", 32));

    const std::vector<ServiceResult> results = core.flush();
    ASSERT_EQ(results.size(), 5u);
    for (size_t i = 0; i + 1 < results.size(); ++i) {
        EXPECT_EQ(results[i].status, ServiceStatus::BadRequest) << i;
        EXPECT_FALSE(results[i].error.empty()) << i;
        EXPECT_EQ(results[i].cycles, 0.0) << i;
    }
    EXPECT_EQ(results[4].status, ServiceStatus::Ok);
    EXPECT_GT(results[4].cycles, 0.0);
    EXPECT_EQ(core.statsSnapshot().get("service.bad_requests"), 4.0);
}

TEST(ServiceCore, RejectsWhenPendingQueueIsFull)
{
    ServiceOptions opts;
    opts.threads = 1;
    opts.queueCapacity = 2;
    opts.batchSize = 100; // no auto-batch: pressure only drains on flush
    ServiceCore core(opts);

    for (int i = 0; i < 5; ++i)
        core.submit(smallRequest("burst" + std::to_string(i), 32));
    EXPECT_EQ(core.pendingCount(), 2u);

    const std::vector<ServiceResult> results = core.flush();
    ASSERT_EQ(results.size(), 5u);
    EXPECT_EQ(results[0].status, ServiceStatus::Ok);
    EXPECT_EQ(results[1].status, ServiceStatus::Ok);
    for (size_t i = 2; i < 5; ++i) {
        EXPECT_EQ(results[i].status, ServiceStatus::RejectedQueueFull) << i;
        EXPECT_NE(results[i].error.find("queue full"), std::string::npos)
            << "the documented error code must say why: "
            << results[i].error;
    }
    // Results arrive in submission order, rejects interleaved.
    for (size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i].seq, i);

    const StatSet stats = core.statsSnapshot();
    EXPECT_EQ(stats.get("service.accepted"), 2.0);
    EXPECT_EQ(stats.get("service.rejected"), 3.0);

    // The flush drained the queue: admission slots are free again.
    core.submit(smallRequest("after", 32));
    const std::vector<ServiceResult> next = core.flush();
    ASSERT_EQ(next.size(), 1u);
    EXPECT_EQ(next[0].status, ServiceStatus::Ok);
    EXPECT_EQ(next[0].seq, 5u);
}

TEST(ServiceCore, AutoBatchRunsAtBatchSizeWithoutFlush)
{
    ServiceOptions opts;
    opts.threads = 1;
    opts.batchSize = 2;
    opts.queueCapacity = 64;
    ServiceCore core(opts);

    core.submit(smallRequest("a", 32));
    EXPECT_EQ(core.pendingCount(), 1u);
    core.submit(smallRequest("b", 32));
    EXPECT_EQ(core.pendingCount(), 0u) << "batchSize reached -> executed";
    core.submit(smallRequest("c", 32));
    EXPECT_EQ(core.pendingCount(), 1u);

    const std::vector<ServiceResult> results = core.flush();
    ASSERT_EQ(results.size(), 3u);
    for (const ServiceResult &res : results)
        EXPECT_EQ(res.status, ServiceStatus::Ok);
    EXPECT_EQ(core.statsSnapshot().get("service.batches"), 2.0);
}

TEST(ServiceCore, ResultsMatchBatchModeSweepEngine)
{
    // The daemon's results must be the batch path's results: same
    // cycles, fingerprints and instruction counts as a SweepEngine run
    // of the equivalent jobs.
    const HardwareConfig hw = HardwareConfig::asicEffact27();
    const std::vector<uint64_t> records = {32, 48, 64};

    SweepEngine engine({1});
    for (uint64_t n : records) {
        SweepJob job;
        job.name = "batch" + std::to_string(n);
        job.build = [n] {
            FheParams fhe;
            fhe.logN = 12;
            fhe.levels = 6;
            fhe.dnum = 2;
            return buildDbLookup(fhe, size_t(n));
        };
        job.hw = hw;
        job.copts = Platform::fullOptions(hw.sramBytes);
        engine.submit(std::move(job));
    }
    const std::vector<SweepResult> &batch = engine.runAll();

    ServiceOptions opts;
    opts.threads = 2;
    ServiceCore core(opts);
    for (uint64_t n : records)
        core.submit(smallRequest("svc" + std::to_string(n), n));
    const std::vector<ServiceResult> served = core.flush();

    ASSERT_EQ(served.size(), batch.size());
    for (size_t i = 0; i < served.size(); ++i) {
        ASSERT_EQ(served[i].status, ServiceStatus::Ok);
        EXPECT_DOUBLE_EQ(served[i].cycles, batch[i].platform.sim.cycles);
        EXPECT_EQ(served[i].machineFingerprint,
                  batch[i].platform.machineFingerprint);
        EXPECT_EQ(served[i].instructions,
                  uint64_t(batch[i].platform.sim.instructions));
        EXPECT_DOUBLE_EQ(served[i].benchTimeMs,
                         batch[i].platform.benchTimeMs);
    }
    // Repeats hit the shared cache (unbounded here), without changing
    // the results.
    core.submit(smallRequest("again", 32));
    const std::vector<ServiceResult> again = core.flush();
    ASSERT_EQ(again.size(), 1u);
    EXPECT_DOUBLE_EQ(again[0].cycles, batch[0].platform.sim.cycles);
    EXPECT_GT(core.statsSnapshot().get("cache.hits"), 0.0);
}

// --- Replay determinism ----------------------------------------------------

/**
 * The recorded 50-request mixed session of the acceptance criterion:
 * five distinct (records, preset) design points cycled across bursts
 * (cache-hot repeats + cache-cold first sightings), burst size above
 * the queue capacity (forced rejections), and a cache budget below one
 * snapshot (forced evictions).
 */
std::vector<Frame>
recordedSession()
{
    const HardwareConfig hw = HardwareConfig::asicEffact27();
    const struct
    {
        uint64_t records;
        CompilerOptions copts;
    } points[] = {
        {16, Platform::baselineOptions(hw.sramBytes)},
        {24, Platform::streamingOptions(hw.sramBytes)},
        {32, Platform::fullOptions(hw.sramBytes)},
        {40, Platform::madEnhancedOptions(hw.sramBytes)},
        {48, Platform::fullOptions(hw.sramBytes)},
    };
    std::vector<Frame> frames;
    size_t emitted = 0;
    for (int burst = 0; burst < 5; ++burst) {
        for (int i = 0; i < 10; ++i) {
            const auto &pt = points[(burst + i) % 5];
            ServiceRequest req = smallRequest(
                "s" + std::to_string(burst) + "-" + std::to_string(i),
                pt.records, pt.copts);
            req.tag = 5000 + emitted++;
            Frame frame;
            frame.type = FrameType::Request;
            frame.payload = encodeRequest(req);
            frames.push_back(std::move(frame));
        }
        Frame flush;
        flush.type = FrameType::Flush;
        frames.push_back(std::move(flush));
    }
    return frames;
}

/** Session config under test: parallel, bounded cache, tight queue. */
ServiceOptions
sessionOptions()
{
    ServiceOptions opts;
    opts.threads = 3;
    opts.jobThreads = 2;
    opts.queueCapacity = 7; // burst of 10 -> 3 rejections per burst
    opts.batchSize = 100;   // batching driven by the Flush frames
    opts.cacheBytes = 4096; // below one snapshot -> every publish evicts
    return opts;
}

TEST(Replay, FiftyRequestSessionMatchesUncachedSerialOracleByteForByte)
{
    const std::vector<Frame> frames = recordedSession();

    ServiceCore session(sessionOptions());
    ReplayOutcome live;
    std::string error;
    ASSERT_TRUE(replayFrames(frames, session, &live, &error)) << error;
    EXPECT_EQ(live.requests, 50u);
    ASSERT_EQ(live.results.size(), 50u);

    // The acceptance gates: the session genuinely exercised eviction
    // and rejection, not just the happy path.
    EXPECT_GE(session.cache().evictionCount(), 1u);
    EXPECT_EQ(session.statsSnapshot().get("service.rejected"), 15.0)
        << "7-deep queue x 10-request bursts -> 3 rejections per burst";
    EXPECT_EQ(session.statsSnapshot().get("service.accepted"), 35.0);

    // Oracle: same admission config, serial + uncached execution.
    ServiceCore oracle(oracleOptions(sessionOptions()));
    ReplayOutcome ref;
    ASSERT_TRUE(replayFrames(frames, oracle, &ref, &error)) << error;
    ASSERT_EQ(ref.results.size(), live.results.size());
    EXPECT_EQ(oracle.statsSnapshot().get("cache.lookups"), 0.0);

    for (size_t i = 0; i < live.results.size(); ++i) {
        EXPECT_EQ(live.results[i].status, ref.results[i].status) << i;
        EXPECT_EQ(canonicalResultBytes(live.results[i]),
                  canonicalResultBytes(ref.results[i]))
            << "result " << i << " (" << live.results[i].name
            << ") diverged from the oracle";
    }
    EXPECT_EQ(concatCanonical(live.results), concatCanonical(ref.results));
}

TEST(Replay, ReplayingTheSameLogTwiceIsByteIdentical)
{
    const std::vector<Frame> frames = recordedSession();
    std::string error;

    ServiceCore first(sessionOptions());
    ReplayOutcome a;
    ASSERT_TRUE(replayFrames(frames, first, &a, &error)) << error;

    ServiceCore second(sessionOptions());
    ReplayOutcome b;
    ASSERT_TRUE(replayFrames(frames, second, &b, &error)) << error;

    EXPECT_EQ(concatCanonical(a.results), concatCanonical(b.results));

    // An unbounded-cache config also agrees (cache-hot repeats change
    // the work done, never the results) and actually hits.
    ServiceOptions hot = sessionOptions();
    hot.cacheBytes = 0;
    ServiceCore cached(hot);
    ReplayOutcome c;
    ASSERT_TRUE(replayFrames(frames, cached, &c, &error)) << error;
    EXPECT_EQ(concatCanonical(c.results), concatCanonical(a.results));
    EXPECT_GT(cached.statsSnapshot().get("cache.hits"), 0.0);
    EXPECT_EQ(cached.cache().evictionCount(), 0u);
}

TEST(Replay, LogRoundTripsThroughTheWriterAndLoader)
{
    const std::vector<Frame> frames = recordedSession();
    const std::string path =
        "/tmp/effact-test-log-" + std::to_string(::getpid()) + ".bin";

    RequestLogWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path, &error)) << error;
    for (const Frame &frame : frames)
        ASSERT_TRUE(writer.append(frame.type, frame.payload));
    writer.close();

    std::vector<Frame> loaded;
    ASSERT_TRUE(loadRequestLog(path, &loaded, &error)) << error;
    ASSERT_EQ(loaded.size(), frames.size());
    for (size_t i = 0; i < frames.size(); ++i) {
        EXPECT_EQ(loaded[i].type, frames[i].type) << i;
        EXPECT_EQ(loaded[i].payload, frames[i].payload) << i;
    }
    std::remove(path.c_str());
}

TEST(Replay, CorruptLogsAreReportedNotReplayed)
{
    std::vector<uint8_t> stream;
    const std::vector<uint8_t> frame =
        encodeFrame(FrameType::Request, encodeRequest(smallRequest("x", 32)));
    stream.insert(stream.end(), frame.begin(), frame.end());
    stream.insert(stream.end(), frame.begin(), frame.end() - 3); // torn tail

    std::vector<Frame> frames;
    std::string error;
    EXPECT_FALSE(decodeFrameStream(stream, &frames, &error));
    EXPECT_NE(error.find("offset"), std::string::npos)
        << "the error must locate the corruption: " << error;

    // A server-side frame type in a "request log" is corrupt by
    // definition — the replayer refuses rather than guessing.
    std::vector<Frame> bogus;
    Frame result_frame;
    result_frame.type = FrameType::Result;
    result_frame.payload = encodeResult(ServiceResult{});
    bogus.push_back(std::move(result_frame));
    ServiceCore core(ServiceOptions{});
    ReplayOutcome outcome;
    EXPECT_FALSE(replayFrames(bogus, core, &outcome, &error));
}

// --- AF_UNIX transport -----------------------------------------------------

std::string
testSocketPath(const char *suffix)
{
    return "/tmp/effact-test-" + std::to_string(::getpid()) + "-" + suffix +
           ".sock";
}

TEST(ServiceSocket, EndToEndMatchesOfflineReplayAndSurvivesGarbage)
{
    const std::string record_path =
        "/tmp/effact-test-" + std::to_string(::getpid()) + "-e2e.log";
    ServiceServerOptions server_opts;
    server_opts.socketPath = testSocketPath("e2e");
    server_opts.recordPath = record_path;
    server_opts.service.threads = 2;
    server_opts.service.queueCapacity = 8;

    ServiceServer server(std::move(server_opts));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    std::thread server_thread([&server] { server.run(); });

    const std::vector<uint64_t> records = {32, 48, 64};
    std::vector<ServiceResult> live;
    {
        ServiceClient client;
        ASSERT_TRUE(client.connect(server.socketPath(), &error)) << error;
        for (uint64_t n : records)
            ASSERT_TRUE(client.sendRequest(
                smallRequest("live" + std::to_string(n), n), &error))
                << error;
        ASSERT_TRUE(client.flush(&live, &error)) << error;
    }
    ASSERT_EQ(live.size(), records.size());
    for (const ServiceResult &res : live)
        EXPECT_EQ(res.status, ServiceStatus::Ok);

    // Garbage on a fresh connection: the server answers with an Error
    // frame and closes that connection — and keeps serving.
    {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, server.socketPath().c_str(),
                     sizeof(addr.sun_path) - 1);
        ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)),
                  0);
        const char garbage[] = "this is not a frame at all, sorry";
        ASSERT_GT(::send(fd, garbage, sizeof(garbage), 0), 0);
        // The reply must be a valid Error frame.
        std::vector<uint8_t> reply(4096);
        size_t got = 0;
        while (got < reply.size()) {
            const ssize_t n =
                ::recv(fd, reply.data() + got, reply.size() - got, 0);
            if (n <= 0)
                break; // server closed after the error frame
            got += size_t(n);
        }
        ::close(fd);
        Frame frame;
        size_t consumed = 0;
        ASSERT_EQ(decodeFrame(reply.data(), got, &frame, &consumed),
                  FrameDecodeStatus::Ok);
        EXPECT_EQ(frame.type, FrameType::Error);
        std::string message;
        ASSERT_TRUE(decodeErrorPayload(frame.payload, &message));
        EXPECT_FALSE(message.empty());
    }

    // A post-garbage client still gets served, then stops the daemon.
    std::vector<ServiceResult> after;
    {
        ServiceClient client;
        ASSERT_TRUE(client.connect(server.socketPath(), &error)) << error;
        ASSERT_TRUE(client.sendRequest(smallRequest("after", 32), &error))
            << error;
        ASSERT_TRUE(client.shutdownServer(&after, &error)) << error;
    }
    server_thread.join();
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(after[0].status, ServiceStatus::Ok);

    // The recorded session replays offline to the same canonical bytes
    // the live clients saw (in the same order).
    std::vector<Frame> recorded;
    ASSERT_TRUE(loadRequestLog(record_path, &recorded, &error)) << error;
    ServiceOptions offline_opts;
    offline_opts.threads = 2;
    offline_opts.queueCapacity = 8;
    ServiceCore offline(offline_opts);
    ReplayOutcome outcome;
    ASSERT_TRUE(replayFrames(recorded, offline, &outcome, &error)) << error;
    std::vector<ServiceResult> all_live = live;
    all_live.insert(all_live.end(), after.begin(), after.end());
    ASSERT_EQ(outcome.results.size(), all_live.size());
    EXPECT_EQ(concatCanonical(outcome.results), concatCanonical(all_live));
    EXPECT_TRUE(outcome.sawShutdown);

    std::remove(record_path.c_str());
}

// --- Environment defaults --------------------------------------------------

TEST(ServiceDefaults, EnvironmentOverridesParse)
{
    ::setenv("EFFACT_QUEUE_DEPTH", "17", 1);
    EXPECT_EQ(defaultQueueCapacity(), 17u);
    ::setenv("EFFACT_QUEUE_DEPTH", "not-a-number", 1);
    EXPECT_EQ(defaultQueueCapacity(), 64u);
    ::unsetenv("EFFACT_QUEUE_DEPTH");
    EXPECT_EQ(defaultQueueCapacity(), 64u);

    ::setenv("EFFACT_CACHE_BYTES", "123456", 1);
    EXPECT_EQ(defaultCacheBytes(), 123456u);
    ::unsetenv("EFFACT_CACHE_BYTES");
    EXPECT_EQ(defaultCacheBytes(), 0u);
}

TEST(ServiceDefaults, OracleOptionsKeepAdmissionConfig)
{
    ServiceOptions base;
    base.threads = 8;
    base.jobThreads = 4;
    base.queueCapacity = 5;
    base.batchSize = 3;
    base.cacheBytes = 999;
    base.verifyLevel = 1;
    const ServiceOptions oracle = oracleOptions(base);
    EXPECT_EQ(oracle.threads, 1u);
    EXPECT_EQ(oracle.jobThreads, 1u);
    EXPECT_FALSE(oracle.useCache);
    EXPECT_EQ(oracle.cacheBytes, 0u);
    // Admission behavior must replay identically.
    EXPECT_EQ(oracle.queueCapacity, base.queueCapacity);
    EXPECT_EQ(oracle.batchSize, base.batchSize);
    EXPECT_EQ(oracle.verifyLevel, base.verifyLevel);
}

} // namespace
} // namespace effact
