/**
 * @file
 * Platform end-to-end tests: the Fig. 11 ablation ordering, the Fig. 10
 * scaling trend, Fig. 4 SRAM-sweep monotonicity, and the area/power
 * model against Table IV / Table V.
 */
#include <gtest/gtest.h>

#include <chrono>

#include "compiler/compile_cache.h"
#include "compiler/pass_manager.h"
#include "model/area_power.h"
#include "model/baselines.h"
#include "model/efficiency.h"
#include "platform/platform.h"

namespace effact {
namespace {

/** A reduced-size bootstrapping for fast platform tests. */
Workload
smallBoot()
{
    FheParams fhe;
    fhe.logN = 15;
    fhe.levels = 16;
    fhe.dnum = 4;
    return buildBootstrapping(fhe, {size_t(1) << 14, 3, 2, 127, 8});
}

/** The four Fig. 11 design points, shared by the ordering and the
 *  wall-clock regression test so they cannot drift apart. */
struct AblationConfig
{
    const char *name;
    CompilerOptions opts;
    bool macReuse;
};

std::vector<AblationConfig>
ablationConfigs(size_t sram_bytes)
{
    return {
        {"baseline", Platform::baselineOptions(sram_bytes), false},
        {"MAD-enhanced", Platform::madEnhancedOptions(sram_bytes), false},
        {"streaming", Platform::streamingOptions(sram_bytes), false},
        {"full", Platform::fullOptions(sram_bytes), true},
    };
}

/** Compile + simulate smallBoot() under one ablation design point. */
PlatformResult
runAblation(const HardwareConfig &hw, const AblationConfig &config)
{
    HardwareConfig cfg = hw;
    cfg.nttMacReuse = config.macReuse;
    Workload w = smallBoot();
    Platform p(cfg, config.opts);
    return p.run(w);
}

TEST(Platform, AblationOrderingMatchesFig11)
{
    // baseline >= MAD-enhanced >= +streaming/scheduling >= full EFFACT,
    // in both DRAM transfer and runtime (Fig. 11's four bars). The test
    // workload is a reduced bootstrapping (logN=15, L=16), so the SRAM
    // is reduced proportionally to stay in the resource-constrained
    // regime Fig. 11 studies (27 MB at N=2^16, L=24).
    HardwareConfig hw = HardwareConfig::asicEffact27();
    hw.sramBytes = size_t(6) << 20;
    auto configs = ablationConfigs(hw.sramBytes);
    ASSERT_EQ(configs.size(), 4u);

    auto base = runAblation(hw, configs[0]);
    auto mad = runAblation(hw, configs[1]);
    auto stream = runAblation(hw, configs[2]);
    auto full = runAblation(hw, configs[3]);

    EXPECT_GE(base.dramGb, mad.dramGb * 0.999);
    EXPECT_GT(mad.dramGb, stream.dramGb);
    EXPECT_GE(stream.dramGb, full.dramGb * 0.999);

    EXPECT_GT(base.benchTimeMs, stream.benchTimeMs);
    EXPECT_GE(stream.benchTimeMs, full.benchTimeMs * 0.98);
}

TEST(Platform, AblationConfigsCompileWithinBudget)
{
    // Regression guard for the Fig. 11 bring-up hang: the scheduler once
    // re-evaluated liveCount() (an O(n) scan) in its main-loop condition,
    // turning compilation of the ~80k-instruction reduced bootstrapping
    // quadratic (>10 s per scheduled config; minutes at -O0). Each of the
    // four ablation configurations must now compile + simulate well under
    // a wall-clock budget that the quadratic path cannot meet.
#ifdef EFFACT_RELAXED_TIMING // sanitized/Debug CI builds
    constexpr double kBudgetSecs = 120.0;
#else
    constexpr double kBudgetSecs = 5.0;
#endif
    HardwareConfig hw = HardwareConfig::asicEffact27();
    hw.sramBytes = size_t(6) << 20;
    for (const AblationConfig &c : ablationConfigs(hw.sramBytes)) {
        auto t0 = std::chrono::steady_clock::now();
        auto r = runAblation(hw, c);
        std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - t0;
        EXPECT_LT(elapsed.count(), kBudgetSecs) << c.name;
        EXPECT_GT(r.benchTimeMs, 0.0) << c.name;
    }
}

TEST(Platform, SharedCompileCacheAcrossHardwarePointsIsTransparent)
{
    // An SRAM sweep of one (workload, preset) through Platform::run
    // with a shared cache: the first point builds the middle-end
    // snapshot, every further point reuses it, and each point's result
    // is identical to its uncached run.
    const auto configs = ablationConfigs(size_t(6) << 20);
    const CompilerOptions opts = configs.back().opts; // full preset
    const std::vector<size_t> sram_points = {
        size_t(6) << 20, size_t(3) << 20, size_t(12) << 20};

    CompileCache cache;
    AnalysisManager analyses;
    for (size_t i = 0; i < sram_points.size(); ++i) {
        HardwareConfig hw = HardwareConfig::asicEffact27();
        hw.sramBytes = sram_points[i];
        CompilerOptions copts = opts;
        copts.sramBytes = sram_points[i];
        Platform platform(hw, copts);

        Workload cached_w = smallBoot();
        const PlatformResult cached =
            platform.run(cached_w, analyses, &cache);
        EXPECT_EQ(cached.compilerStats.get("cache.hit"), i == 0 ? 0.0
                                                                : 1.0);

        Workload plain_w = smallBoot();
        const PlatformResult plain = platform.run(plain_w);
        EXPECT_EQ(cached.machineFingerprint, plain.machineFingerprint);
        EXPECT_DOUBLE_EQ(cached.sim.cycles, plain.sim.cycles);
        EXPECT_DOUBLE_EQ(cached.dramGb, plain.dramGb);
    }
    const StatSet cs = cache.statsSnapshot();
    EXPECT_EQ(cs.get("cache.lookups"), 3.0);
    EXPECT_EQ(cs.get("cache.misses"), 1.0);
    EXPECT_EQ(cs.get("cache.frontend_skipped"), 2.0);
}

TEST(Platform, ScalingUpResourcesHelps)
{
    // Fig. 10: EFFACT-54/108/162 speed up over EFFACT-27.
    Workload w27 = smallBoot();
    Platform p27(HardwareConfig::asicEffact27(),
                 Platform::fullOptions(HardwareConfig::asicEffact27()
                                           .sramBytes));
    auto r27 = p27.run(w27);

    Workload w108 = smallBoot();
    Platform p108(HardwareConfig::asicEffact108(),
                  Platform::fullOptions(HardwareConfig::asicEffact108()
                                            .sramBytes));
    auto r108 = p108.run(w108);

    EXPECT_LT(r108.benchTimeMs, r27.benchTimeMs);
}

TEST(Platform, SramSweepReducesDramTraffic)
{
    // Fig. 4: larger SRAM -> fewer spills -> less DRAM traffic and
    // shorter runtime, saturating past the working set.
    double prev_dram = 1e300;
    for (size_t mb : {8, 27, 108}) {
        HardwareConfig hw = HardwareConfig::asicEffact27();
        hw.sramBytes = mb << 20;
        Workload w = smallBoot();
        Platform p(hw, Platform::fullOptions(hw.sramBytes));
        auto r = p.run(w);
        EXPECT_LE(r.dramGb, prev_dram * 1.001) << mb << " MB";
        prev_dram = r.dramGb;
    }
}

TEST(Model, Table4BreakdownReproduced)
{
    ChipCost cost = estimateAsic(HardwareConfig::asicEffact27());
    // Calibration must reproduce the published totals.
    EXPECT_NEAR(cost.totalAreaMm2, 211.9, 3.0);
    EXPECT_NEAR(cost.totalPowerW, 135.7, 3.0);
    double sram_area = 0;
    for (const auto &c : cost.components)
        if (c.name == "SRAM")
            sram_area = c.areaMm2;
    EXPECT_NEAR(sram_area / cost.totalAreaMm2, 0.3846, 0.02);
}

TEST(Model, Table5AreaRatiosReproduced)
{
    // ASIC-EFFACT area over scaled baselines (Table V narrative):
    // 0.783x F1, 0.153x BTS, 0.257x CraterLake, 0.137x ARK.
    const double effact_area = estimateAsic(
        HardwareConfig::asicEffact27()).totalAreaMm2;
    struct Row { const char *name; double expect; };
    for (const Row &row : {Row{"F1", 0.783}, Row{"BTS", 0.153},
                           Row{"CraterLake", 0.257}, Row{"ARK", 0.137}}) {
        double ratio = effact_area / baseline(row.name).scaledAreaMm2();
        EXPECT_NEAR(ratio, row.expect, row.expect * 0.25) << row.name;
    }
}

TEST(Model, EfficiencyNormalization)
{
    std::vector<EfficiencyPoint> pts = {
        {"F1", 10.0, 100.0, 50.0},
        {"X", 5.0, 100.0, 50.0},  // 2x faster, same cost
        {"Y", 10.0, 50.0, 25.0},  // same speed, half cost
    };
    auto density = perfDensityNormalized(pts);
    auto power = powerEfficiencyNormalized(pts);
    EXPECT_DOUBLE_EQ(density[0], 1.0);
    EXPECT_DOUBLE_EQ(density[1], 2.0);
    EXPECT_DOUBLE_EQ(density[2], 2.0);
    EXPECT_DOUBLE_EQ(power[1], 2.0);
    EXPECT_DOUBLE_EQ(power[2], 2.0);
    EXPECT_NEAR(gmean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Model, FpgaResourceEstimateMatchesTable6)
{
    FpgaResources r = estimateFpga(HardwareConfig::fpgaEffact());
    EXPECT_NEAR(r.lut, 1246e3, 1e3);
    EXPECT_NEAR(r.dsp, 8212, 1);
    EXPECT_NEAR(r.bram, 1343, 2);
}

TEST(Platform, FpgaSlowerThanAsic)
{
    Workload wa = smallBoot();
    Platform pa(HardwareConfig::asicEffact27(),
                Platform::fullOptions(
                    HardwareConfig::asicEffact27().sramBytes));
    auto ra = pa.run(wa);

    Workload wf = smallBoot();
    Platform pf(HardwareConfig::fpgaEffact(),
                Platform::fullOptions(
                    HardwareConfig::fpgaEffact().sramBytes));
    auto rf = pf.run(wf);
    EXPECT_GT(rf.benchTimeMs, ra.benchTimeMs);
}

} // namespace
} // namespace effact
