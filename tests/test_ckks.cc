/**
 * @file
 * End-to-end CKKS correctness: encode/decode round trips, encryption,
 * HADD/HMULT/rescale, key switching, rotation and conjugation. This is
 * the repo's stand-in for the paper's Lattigo cross-validation — every
 * homomorphic result is checked against plaintext reference computation.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"

namespace effact {
namespace {

CkksParams
testParams()
{
    CkksParams p;
    p.logN = 10;
    p.levels = 6;
    p.logScale = 40;
    p.logQ0 = 54;
    p.dnum = 3;
    p.hammingWeight = 32;
    return p;
}

std::vector<cplx>
randomMessage(Rng &rng, size_t slots, double mag = 1.0)
{
    std::vector<cplx> msg(slots);
    for (auto &v : msg)
        v = cplx((rng.uniformReal() * 2 - 1) * mag,
                 (rng.uniformReal() * 2 - 1) * mag);
    return msg;
}

double
maxErr(const std::vector<cplx> &a, const std::vector<cplx> &b)
{
    double err = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        err = std::max(err, std::abs(a[i] - b[i]));
    return err;
}

class CkksFixture : public ::testing::Test
{
  protected:
    CkksFixture()
        : ctx(testParams()), encoder(ctx), rng(42), keygen(ctx, rng),
          sk(keygen.genSecretKey()), relin(keygen.genRelinKey(sk)),
          galois(keygen.genGaloisKeys(sk, {1, 2, 3, -1, 4}, true)),
          enc(ctx, sk, rng), eval(ctx, encoder, &relin, &galois)
    {}

    CkksContext ctx;
    CkksEncoder encoder;
    Rng rng;
    KeyGenerator keygen;
    SecretKey sk;
    SwitchingKey relin;
    GaloisKeys galois;
    CkksEncryptor enc;
    CkksEvaluator eval;
};

TEST_F(CkksFixture, EncodeDecodeRoundTrip)
{
    for (size_t slots : {size_t(1), size_t(8), ctx.slots()}) {
        auto msg = randomMessage(rng, slots);
        Plaintext pt = encoder.encode(msg, ctx.scale(), ctx.levels());
        auto out = encoder.decode(pt, slots);
        EXPECT_LT(maxErr(msg, out), 1e-7) << "slots=" << slots;
    }
}

TEST_F(CkksFixture, EncodeIsAdditive)
{
    auto a = randomMessage(rng, 16);
    auto b = randomMessage(rng, 16);
    Plaintext pa = encoder.encode(a, ctx.scale(), 2);
    Plaintext pb = encoder.encode(b, ctx.scale(), 2);
    pa.poly.addInPlace(pb.poly);
    auto out = encoder.decode(pa, 16);
    for (size_t i = 0; i < 16; ++i)
        EXPECT_LT(std::abs(out[i] - (a[i] + b[i])), 1e-6);
}

TEST_F(CkksFixture, EncryptDecryptRoundTrip)
{
    auto msg = randomMessage(rng, ctx.slots());
    Plaintext pt = encoder.encode(msg, ctx.scale(), ctx.levels());
    Ciphertext ct = enc.encrypt(pt);
    auto out = encoder.decode(enc.decrypt(ct), ctx.slots());
    EXPECT_LT(maxErr(msg, out), 1e-5);
}

TEST_F(CkksFixture, HomomorphicAddition)
{
    auto a = randomMessage(rng, 64);
    auto b = randomMessage(rng, 64);
    Ciphertext ca = enc.encrypt(encoder.encode(a, ctx.scale(), 4));
    Ciphertext cb = enc.encrypt(encoder.encode(b, ctx.scale(), 4));
    Ciphertext sum = eval.add(ca, cb);
    auto out = encoder.decode(enc.decrypt(sum), 64);
    for (size_t i = 0; i < 64; ++i)
        EXPECT_LT(std::abs(out[i] - (a[i] + b[i])), 1e-5);
}

TEST_F(CkksFixture, HomomorphicSubtractionAndNegate)
{
    auto a = randomMessage(rng, 32);
    auto b = randomMessage(rng, 32);
    Ciphertext ca = enc.encrypt(encoder.encode(a, ctx.scale(), 3));
    Ciphertext cb = enc.encrypt(encoder.encode(b, ctx.scale(), 3));
    auto out = encoder.decode(enc.decrypt(eval.sub(ca, cb)), 32);
    for (size_t i = 0; i < 32; ++i)
        EXPECT_LT(std::abs(out[i] - (a[i] - b[i])), 1e-5);
}

TEST_F(CkksFixture, AddPlainAndConst)
{
    auto a = randomMessage(rng, 16);
    Ciphertext ca = enc.encrypt(encoder.encode(a, ctx.scale(), 2));
    Ciphertext shifted = eval.addConst(ca, cplx(2.5, -1.0));
    auto out = encoder.decode(enc.decrypt(shifted), 16);
    for (size_t i = 0; i < 16; ++i)
        EXPECT_LT(std::abs(out[i] - (a[i] + cplx(2.5, -1.0))), 1e-5);
}

TEST_F(CkksFixture, MultPlainWithRescale)
{
    auto a = randomMessage(rng, 32);
    auto b = randomMessage(rng, 32);
    Ciphertext ca = enc.encrypt(encoder.encode(a, ctx.scale(), 3));
    Plaintext pb = encoder.encode(b, ctx.scale(), 3);
    Ciphertext prod = eval.rescale(eval.multPlain(ca, pb));
    auto out = encoder.decode(enc.decrypt(prod), 32);
    for (size_t i = 0; i < 32; ++i)
        EXPECT_LT(std::abs(out[i] - a[i] * b[i]), 1e-4);
}

TEST_F(CkksFixture, HomomorphicMultiplication)
{
    auto a = randomMessage(rng, ctx.slots());
    auto b = randomMessage(rng, ctx.slots());
    Ciphertext ca = enc.encrypt(encoder.encode(a, ctx.scale(),
                                               ctx.levels()));
    Ciphertext cb = enc.encrypt(encoder.encode(b, ctx.scale(),
                                               ctx.levels()));
    Ciphertext prod = eval.rescale(eval.mult(ca, cb));
    auto out = encoder.decode(enc.decrypt(prod), ctx.slots());
    double err = 0;
    for (size_t i = 0; i < ctx.slots(); ++i)
        err = std::max(err, std::abs(out[i] - a[i] * b[i]));
    EXPECT_LT(err, 1e-3);
}

TEST_F(CkksFixture, MultiplicationDepthChain)
{
    // Chain x -> x^2 -> x^4 -> x^8 through three rescales.
    std::vector<cplx> a(8);
    for (size_t i = 0; i < 8; ++i)
        a[i] = cplx(0.4 + 0.05 * double(i), 0.1);
    Ciphertext ct = enc.encrypt(encoder.encode(a, ctx.scale(),
                                               ctx.levels()));
    for (int d = 0; d < 3; ++d)
        ct = eval.rescale(eval.square(ct));
    auto out = encoder.decode(enc.decrypt(ct), 8);
    for (size_t i = 0; i < 8; ++i) {
        cplx expect = std::pow(a[i], 8.0);
        EXPECT_LT(std::abs(out[i] - expect), 1e-2) << "slot " << i;
    }
}

TEST_F(CkksFixture, RotationMatchesSlotShift)
{
    const size_t slots = ctx.slots();
    auto a = randomMessage(rng, slots);
    Ciphertext ct = enc.encrypt(encoder.encode(a, ctx.scale(), 3));
    for (int steps : {1, 2, 3}) {
        Ciphertext rot = eval.rotate(ct, steps);
        auto out = encoder.decode(enc.decrypt(rot), slots);
        for (size_t i = 0; i < slots; ++i) {
            cplx expect = a[(i + size_t(steps)) % slots];
            ASSERT_LT(std::abs(out[i] - expect), 1e-4)
                << "steps=" << steps << " slot=" << i;
        }
    }
}

TEST_F(CkksFixture, NegativeRotation)
{
    const size_t slots = ctx.slots();
    auto a = randomMessage(rng, slots);
    Ciphertext ct = enc.encrypt(encoder.encode(a, ctx.scale(), 3));
    Ciphertext rot = eval.rotate(ct, -1);
    auto out = encoder.decode(enc.decrypt(rot), slots);
    for (size_t i = 0; i < slots; ++i) {
        cplx expect = a[(i + slots - 1) % slots];
        ASSERT_LT(std::abs(out[i] - expect), 1e-4) << "slot " << i;
    }
}

TEST_F(CkksFixture, ConjugationConjugatesSlots)
{
    auto a = randomMessage(rng, 16);
    Ciphertext ct = enc.encrypt(encoder.encode(a, ctx.scale(), 3));
    Ciphertext conj = eval.conjugate(ct);
    auto out = encoder.decode(enc.decrypt(conj), 16);
    for (size_t i = 0; i < 16; ++i)
        EXPECT_LT(std::abs(out[i] - std::conj(a[i])), 1e-4);
}

TEST_F(CkksFixture, RescaleTracksScale)
{
    auto a = randomMessage(rng, 8);
    Ciphertext ct = enc.encrypt(encoder.encode(a, ctx.scale(), 4));
    Ciphertext prod = eval.mult(ct, ct);
    EXPECT_NEAR(prod.scale, ctx.scale() * ctx.scale(),
                1e-3 * prod.scale);
    Ciphertext scaled = eval.rescale(prod);
    EXPECT_EQ(scaled.level(), 3u);
    EXPECT_NEAR(scaled.scale, ctx.scale(), 1e-3 * ctx.scale());
}

TEST_F(CkksFixture, LevelToPreservesMessage)
{
    auto a = randomMessage(rng, 8);
    Ciphertext ct = enc.encrypt(encoder.encode(a, ctx.scale(),
                                               ctx.levels()));
    Ciphertext low = eval.levelTo(ct, 2);
    EXPECT_EQ(low.level(), 2u);
    auto out = encoder.decode(enc.decrypt(low), 8);
    EXPECT_LT(maxErr(a, out), 1e-4);
}

TEST_F(CkksFixture, DifferentDnumValuesAgree)
{
    // The dnum decomposition must not change results, only noise.
    for (size_t dnum : {1u, 2u, 6u}) {
        CkksParams p = testParams();
        p.dnum = dnum;
        CkksContext ctx2(p);
        CkksEncoder enc2(ctx2);
        Rng rng2(7);
        KeyGenerator kg2(ctx2, rng2);
        SecretKey sk2 = kg2.genSecretKey();
        SwitchingKey rk2 = kg2.genRelinKey(sk2);
        CkksEncryptor cenc2(ctx2, sk2, rng2);
        CkksEvaluator ev2(ctx2, enc2, &rk2);

        auto a = randomMessage(rng2, 16);
        auto b = randomMessage(rng2, 16);
        Ciphertext ca = cenc2.encrypt(enc2.encode(a, ctx2.scale(), 4));
        Ciphertext cb = cenc2.encrypt(enc2.encode(b, ctx2.scale(), 4));
        auto out = enc2.decode(cenc2.decrypt(ev2.rescale(ev2.mult(ca,
                                                                  cb))),
                               16);
        for (size_t i = 0; i < 16; ++i)
            EXPECT_LT(std::abs(out[i] - a[i] * b[i]), 1e-3)
                << "dnum=" << dnum;
    }
}

} // namespace
} // namespace effact
