/**
 * @file
 * Correctness suite for the hardware-split compile cache: the
 * content-addressed `IrProgram` fingerprint, the preset half of the
 * key (hardware knobs excluded, everything else included), single-
 * flight hit/miss accounting, and the central soundness claim — a
 * cache hit is byte-identical to the uncached compile it replaces,
 * including when the cache is shared across 8 concurrent workers.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "compiler/compile_cache.h"
#include "compiler/pass_manager.h"
#include "runtime/sweep.h"

namespace effact {
namespace {

FheParams
smallFhe()
{
    FheParams fhe;
    fhe.logN = 13;
    fhe.levels = 8;
    fhe.dnum = 2;
    return fhe;
}

/** Per-compile stats minus wall-clock and cache-marker keys, for
 *  comparing a hit compile against an uncached one. */
std::map<std::string, double>
comparableStats(const StatSet &stats)
{
    std::map<std::string, double> out;
    for (const auto &[key, value] : stats.all()) {
        if (key.rfind("cache.", 0) == 0)
            continue;
        if (key.size() >= 3 && key.compare(key.size() - 3, 3, ".ms") == 0)
            continue;
        out.emplace(key, value);
    }
    return out;
}

// --- IrProgram fingerprint ------------------------------------------------

TEST(IrFingerprint, IdenticalBuildsHashEqualDespiteDistinctUids)
{
    Workload a = buildDbLookup(smallFhe(), 32);
    Workload b = buildDbLookup(smallFhe(), 32);
    ASSERT_NE(a.program.uid(), b.program.uid());
    EXPECT_EQ(fingerprint(a.program), fingerprint(b.program));
}

TEST(IrFingerprint, ContentAndOrderSensitive)
{
    Workload base = buildDbLookup(smallFhe(), 32);
    const uint64_t fp = fingerprint(base.program);

    Workload tweaked = buildDbLookup(smallFhe(), 32);
    ASSERT_FALSE(tweaked.program.insts.empty());
    tweaked.program.insts.front().imm += 1;
    EXPECT_NE(fingerprint(tweaked.program), fp);

    Workload swapped = buildDbLookup(smallFhe(), 32);
    ASSERT_GE(swapped.program.insts.size(), 2u);
    std::swap(swapped.program.insts[0], swapped.program.insts[1]);
    EXPECT_NE(fingerprint(swapped.program), fp)
        << "fingerprint must be order-sensitive";
}

TEST(IrFingerprint, IgnoresDisplayOnlyNames)
{
    Workload a = buildDbLookup(smallFhe(), 32);
    Workload b = buildDbLookup(smallFhe(), 32);
    b.program.name = "renamed";
    if (!b.program.objects.empty())
        b.program.objects.front().name = "renamed-object";
    EXPECT_EQ(fingerprint(a.program), fingerprint(b.program));
}

// --- Preset hash ----------------------------------------------------------

TEST(PresetHash, HardwareKnobsAreExcluded)
{
    // The hardware split: options differing only in the knobs Platform
    // derives from HardwareConfig must share a middle-end key.
    CompilerOptions a = Platform::fullOptions(size_t(27) << 20);
    CompilerOptions b = Platform::fullOptions(size_t(13) << 20);
    b.issueWindow = a.issueWindow * 2;
    EXPECT_EQ(middleEndPresetHash(a), middleEndPresetHash(b));
}

TEST(PresetHash, PresetsKeySeparately)
{
    const size_t sram = size_t(27) << 20;
    const std::vector<CompilerOptions> presets = {
        Platform::baselineOptions(sram), Platform::madEnhancedOptions(sram),
        Platform::streamingOptions(sram), Platform::fullOptions(sram)};
    for (size_t i = 0; i < presets.size(); ++i)
        for (size_t j = i + 1; j < presets.size(); ++j)
            EXPECT_NE(middleEndPresetHash(presets[i]),
                      middleEndPresetHash(presets[j]))
                << "presets " << i << " and " << j
                << " must not share a cache entry (MAD-enhanced and "
                   "streaming share a pipeline spec but differ in "
                   "back-end switches, which are part of the preset "
                   "identity)";
}

TEST(PresetHash, ExplicitPipelineEqualsDerivedPipeline)
{
    CompilerOptions derived; // all four switches on, empty spec
    CompilerOptions explicit_spec;
    explicit_spec.pipeline = pipelineSpecFromOptions(derived);
    EXPECT_EQ(middleEndPresetHash(derived),
              middleEndPresetHash(explicit_spec));
}

// --- Cache behavior -------------------------------------------------------

TEST(CompileCache, StructurallyIdenticalProgramsHit)
{
    CompileCache cache;
    Compiler compiler(Platform::fullOptions(size_t(27) << 20));
    AnalysisManager analyses;

    Workload first = buildDbLookup(smallFhe(), 32);
    MachineProgram mp1 =
        compiler.compile(first.program, analyses, &cache);
    EXPECT_EQ(compiler.stats().get("cache.hit"), 0.0);

    // A different program object with the same content (different uid,
    // freshly counted version) must hit.
    Workload second = buildDbLookup(smallFhe(), 32);
    MachineProgram mp2 =
        compiler.compile(second.program, analyses, &cache);
    EXPECT_EQ(compiler.stats().get("cache.hit"), 1.0);
    EXPECT_EQ(fingerprint(mp1), fingerprint(mp2));

    const StatSet cs = cache.statsSnapshot();
    EXPECT_EQ(cs.get("cache.lookups"), 2.0);
    EXPECT_EQ(cs.get("cache.hits"), 1.0);
    EXPECT_EQ(cs.get("cache.misses"), 1.0);
    EXPECT_EQ(cs.get("cache.frontend_skipped"), 1.0);
    EXPECT_EQ(cs.get("cache.entries"), 1.0);
}

TEST(CompileCache, MutationAfterCachingMisses)
{
    CompileCache cache;
    Compiler compiler(Platform::fullOptions(size_t(27) << 20));
    AnalysisManager analyses;

    Workload cached = buildDbLookup(smallFhe(), 32);
    compiler.compile(cached.program, analyses, &cache);
    ASSERT_EQ(cache.statsSnapshot().get("cache.misses"), 1.0);

    // Mutate a rebuilt copy the way a pass would: rewrite in place and
    // bump the version. The content fingerprint moves with it, so the
    // stale entry cannot be served.
    Workload mutated = buildDbLookup(smallFhe(), 32);
    const uint64_t version_before = mutated.program.version();
    ASSERT_FALSE(mutated.program.insts.empty());
    mutated.program.insts.front().imm += 1;
    mutated.program.bumpVersion();
    EXPECT_GT(mutated.program.version(), version_before);

    compiler.compile(mutated.program, analyses, &cache);
    const StatSet cs = cache.statsSnapshot();
    EXPECT_EQ(cs.get("cache.lookups"), 2.0);
    EXPECT_EQ(cs.get("cache.misses"), 2.0)
        << "a mutated program must not reuse the pre-mutation entry";
    EXPECT_EQ(cs.get("cache.entries"), 2.0);
}

TEST(CompileCache, DifferentPresetsDoNotShareEntries)
{
    CompileCache cache;
    AnalysisManager analyses;
    Workload a = buildDbLookup(smallFhe(), 32);
    Workload b = buildDbLookup(smallFhe(), 32);

    Compiler full(Platform::fullOptions(size_t(27) << 20));
    Compiler baseline(Platform::baselineOptions(size_t(27) << 20));
    full.compile(a.program, analyses, &cache);
    baseline.compile(b.program, analyses, &cache);

    const StatSet cs = cache.statsSnapshot();
    EXPECT_EQ(cs.get("cache.lookups"), 2.0);
    EXPECT_EQ(cs.get("cache.hits"), 0.0);
    EXPECT_EQ(cs.get("cache.entries"), 2.0);
}

TEST(CompileCache, HitIsByteIdenticalToUncachedCompile)
{
    // Two hardware points of the same (workload, preset): the second
    // compile hits the first's middle-end snapshot, and everything it
    // produces — machine code, simulated cycles, compiler stats modulo
    // wall-clock and the cache marker — matches an uncached compile.
    const HardwareConfig hw27 = HardwareConfig::asicEffact27();
    HardwareConfig hw13 = hw27;
    hw13.sramBytes = size_t(13) << 20;

    CompileCache cache;
    AnalysisManager analyses;
    Platform p27(hw27, Platform::fullOptions(hw27.sramBytes));
    Platform p13(hw13, Platform::fullOptions(hw13.sramBytes));

    Workload w27 = buildDbLookup(smallFhe(), 64);
    Workload w13 = buildDbLookup(smallFhe(), 64);
    const PlatformResult cached27 = p27.run(w27, analyses, &cache);
    const PlatformResult cached13 = p13.run(w13, analyses, &cache);
    EXPECT_EQ(cached13.compilerStats.get("cache.hit"), 1.0);
    EXPECT_EQ(cache.statsSnapshot().get("cache.misses"), 1.0);

    Workload u27 = buildDbLookup(smallFhe(), 64);
    Workload u13 = buildDbLookup(smallFhe(), 64);
    AnalysisManager fresh27, fresh13;
    const PlatformResult plain27 = p27.run(u27, fresh27);
    const PlatformResult plain13 = p13.run(u13, fresh13);

    EXPECT_EQ(cached27.machineFingerprint, plain27.machineFingerprint);
    EXPECT_EQ(cached13.machineFingerprint, plain13.machineFingerprint);
    EXPECT_DOUBLE_EQ(cached13.sim.cycles, plain13.sim.cycles);
    EXPECT_DOUBLE_EQ(cached13.sim.dramBytes, plain13.sim.dramBytes);
    EXPECT_EQ(comparableStats(cached13.compilerStats),
              comparableStats(plain13.compilerStats));
    // The two hardware points genuinely differ — the cache did not
    // leak back-end results across configs.
    EXPECT_NE(cached27.machineFingerprint, cached13.machineFingerprint);
}

TEST(CompileCache, ClearResetsEntriesAndCounters)
{
    CompileCache cache;
    Compiler compiler(Platform::fullOptions(size_t(27) << 20));
    AnalysisManager analyses;
    Workload w = buildDbLookup(smallFhe(), 32);
    compiler.compile(w.program, analyses, &cache);
    ASSERT_EQ(cache.entryCount(), 1u);

    cache.clear();
    EXPECT_EQ(cache.entryCount(), 0u);
    EXPECT_EQ(cache.statsSnapshot().get("cache.lookups"), 0.0);

    Workload again = buildDbLookup(smallFhe(), 32);
    compiler.compile(again.program, analyses, &cache);
    EXPECT_EQ(cache.statsSnapshot().get("cache.misses"), 1.0);
}

// --- Shared across workers ------------------------------------------------

/** The preset x hardware grid shared by the worker tests: 12 jobs over
 *  4 presets x 3 SRAM budgets of one workload — the `bench_fig11_
 *  ablation` shape at test scale. Exactly 4 distinct middle-end keys. */
std::vector<SweepJob>
presetSramGrid()
{
    const FheParams fhe = smallFhe();
    std::vector<SweepJob> jobs;
    const std::vector<size_t> sram_points = {
        size_t(27) << 20, size_t(13) << 20, size_t(54) << 20};
    CompilerOptions (*const presets[])(size_t) = {
        Platform::baselineOptions, Platform::madEnhancedOptions,
        Platform::streamingOptions, Platform::fullOptions};
    for (size_t s = 0; s < sram_points.size(); ++s) {
        for (size_t p = 0; p < 4; ++p) {
            HardwareConfig hw = HardwareConfig::asicEffact27();
            hw.sramBytes = sram_points[s];
            SweepJob job;
            job.name = "sram" + std::to_string(s) + "/preset" +
                       std::to_string(p);
            job.build = [fhe] { return buildDbLookup(fhe, 64); };
            job.hw = hw;
            job.copts = presets[p](sram_points[s]);
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

TEST(CompileCache, SharedAcrossEightWorkersMatchesUncachedSerial)
{
    SweepEngine uncached({1});
    for (SweepJob &job : presetSramGrid())
        uncached.submit(std::move(job));
    const std::vector<SweepResult> &plain = uncached.runAll();

    CompileCache cache;
    SweepEngine engine({8, &cache});
    for (SweepJob &job : presetSramGrid())
        engine.submit(std::move(job));
    const std::vector<SweepResult> &cached = engine.runAll();

    ASSERT_EQ(cached.size(), plain.size());
    for (size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(cached[i].name, plain[i].name);
        EXPECT_DOUBLE_EQ(cached[i].platform.sim.cycles,
                         plain[i].platform.sim.cycles)
            << plain[i].name;
        EXPECT_DOUBLE_EQ(cached[i].platform.sim.dramBytes,
                         plain[i].platform.sim.dramBytes)
            << plain[i].name;
        EXPECT_EQ(cached[i].platform.machineFingerprint,
                  plain[i].platform.machineFingerprint)
            << plain[i].name;
        EXPECT_DOUBLE_EQ(cached[i].platform.benchTimeMs,
                         plain[i].platform.benchTimeMs)
            << plain[i].name;
        EXPECT_EQ(comparableStats(cached[i].platform.compilerStats),
                  comparableStats(plain[i].platform.compilerStats))
            << plain[i].name;
    }
}

TEST(CompileCache, SingleFlightBuildCountsAreExactAtAnyThreadCount)
{
    for (size_t threads : {size_t(1), size_t(2), size_t(8)}) {
        CompileCache cache;
        SweepEngine engine({threads, &cache});
        for (SweepJob &job : presetSramGrid())
            engine.submit(std::move(job));
        engine.runAll();

        const StatSet cs = cache.statsSnapshot();
        EXPECT_EQ(cs.get("cache.lookups"), 12.0) << threads;
        // One middle-end run per preset, never more (single-flight) and
        // never fewer (presets key separately), racy or not.
        EXPECT_EQ(cs.get("cache.misses"), 4.0) << threads;
        EXPECT_EQ(cs.get("cache.hits"), 8.0) << threads;
        EXPECT_EQ(cs.get("cache.frontend_skipped"), 8.0) << threads;
        EXPECT_EQ(cs.get("cache.entries"), 4.0) << threads;
        // The engine mirrors the totals into its aggregates.
        EXPECT_EQ(engine.aggregates().get("cache.misses"), 4.0);
        EXPECT_EQ(engine.aggregates().get("compile.cache.hit.sum"), 8.0);
    }
}

// --- Bounded LRU ----------------------------------------------------------

/** Synthetic entries of identical accounted size (same name length,
 *  same inst/stat counts) but distinguishable content, so byte-budget
 *  arithmetic in the tests is exact: budget = K * entry bytes holds
 *  exactly K entries. */
CompileCacheKey
synthKey(uint64_t i)
{
    return {i + 1, 0x5eed};
}

MiddleEndSnapshot
synthSnapshot(uint64_t i)
{
    MiddleEndSnapshot snap;
    snap.optimized.name = "synthetic-lru-entry";
    snap.optimized.insts.resize(4);
    snap.optimized.insts[0].imm = i;
    snap.stats.set("synthetic.id", double(i));
    return snap;
}

TEST(BoundedLru, SnapshotBytesAreContentDeterministic)
{
    const size_t entry = snapshotBytes(synthSnapshot(0));
    ASSERT_GT(entry, 0u);
    // Same content (even rebuilt) accounts the same bytes; the id field
    // changes the content, not the size.
    EXPECT_EQ(snapshotBytes(synthSnapshot(0)), entry);
    EXPECT_EQ(snapshotBytes(synthSnapshot(7)), entry);
    // More payload means more bytes.
    MiddleEndSnapshot bigger = synthSnapshot(0);
    bigger.optimized.insts.resize(8);
    EXPECT_GT(snapshotBytes(bigger), entry);
}

TEST(BoundedLru, ZeroBudgetNeverEvicts)
{
    CompileCache cache; // legacy default: unbounded
    EXPECT_EQ(cache.byteBudget(), 0u);
    for (uint64_t i = 0; i < 32; ++i)
        cache.getOrBuild(synthKey(i), [i] { return synthSnapshot(i); });
    EXPECT_EQ(cache.entryCount(), 32u);
    EXPECT_EQ(cache.evictionCount(), 0u);
}

TEST(BoundedLru, EvictsLeastRecentlyUsedFirst)
{
    const size_t entry = snapshotBytes(synthSnapshot(0));
    CompileCache cache(3 * entry);
    for (uint64_t i = 0; i < 3; ++i)
        cache.getOrBuild(synthKey(i), [i] { return synthSnapshot(i); });
    ASSERT_EQ(cache.entryCount(), 3u);
    EXPECT_EQ(cache.evictionCount(), 0u);

    // Touch key 0 (a hit is a recency event), then publish a fourth
    // entry: the untouched key 1 is now least recently used and must be
    // the one evicted — not the oldest-inserted key 0.
    bool hit = false;
    cache.getOrBuild(synthKey(0), [] { return synthSnapshot(0); }, &hit);
    EXPECT_TRUE(hit);
    cache.getOrBuild(synthKey(3), [] { return synthSnapshot(3); });
    EXPECT_EQ(cache.evictionCount(), 1u);
    EXPECT_EQ(cache.entryCount(), 3u);

    int builds = 0;
    auto probe = [&](uint64_t i) {
        bool h = false;
        cache.getOrBuild(
            synthKey(i),
            [&builds, i] {
                ++builds;
                return synthSnapshot(i);
            },
            &h);
        return h;
    };
    EXPECT_TRUE(probe(0)) << "the touched key must survive";
    EXPECT_TRUE(probe(3));
    EXPECT_TRUE(probe(2));
    EXPECT_EQ(builds, 0);
    EXPECT_FALSE(probe(1)) << "the LRU victim must be the untouched key";
    EXPECT_EQ(builds, 1);
}

TEST(BoundedLru, BytesAccountingMatchesPayloads)
{
    const size_t entry = snapshotBytes(synthSnapshot(0));
    CompileCache cache(2 * entry);
    EXPECT_EQ(cache.currentBytes(), 0u);

    cache.getOrBuild(synthKey(0), [] { return synthSnapshot(0); });
    EXPECT_EQ(cache.currentBytes(), entry);
    cache.getOrBuild(synthKey(1), [] { return synthSnapshot(1); });
    EXPECT_EQ(cache.currentBytes(), 2 * entry);
    cache.getOrBuild(synthKey(2), [] { return synthSnapshot(2); });
    EXPECT_EQ(cache.currentBytes(), 2 * entry)
        << "the third publish must evict exactly one entry's bytes";
    EXPECT_EQ(cache.evictionCount(), 1u);

    const StatSet cs = cache.statsSnapshot();
    EXPECT_EQ(cs.get("cache.bytes"), double(2 * entry));
    EXPECT_EQ(cs.get("cache.budget_bytes"), double(2 * entry));
    EXPECT_EQ(cs.get("cache.evictions"), 1.0);
    EXPECT_EQ(cs.get("cache.entries"), 2.0);

    cache.clear();
    EXPECT_EQ(cache.currentBytes(), 0u);
    EXPECT_EQ(cache.evictionCount(), 0u);
}

TEST(BoundedLru, EntryLargerThanBudgetIsServedThenDropped)
{
    const size_t entry = snapshotBytes(synthSnapshot(0));
    CompileCache cache(entry / 2);
    bool hit = true;
    const auto snap = cache.getOrBuild(
        synthKey(0), [] { return synthSnapshot(0); }, &hit);
    EXPECT_FALSE(hit);
    ASSERT_NE(snap, nullptr);
    // The requester's snapshot is intact even though the store already
    // dropped the entry (it can never retain more than the budget).
    EXPECT_EQ(snap->stats.get("synthetic.id"), 0.0);
    EXPECT_EQ(snap->optimized.name, "synthetic-lru-entry");
    EXPECT_EQ(cache.entryCount(), 0u);
    EXPECT_EQ(cache.currentBytes(), 0u);
    EXPECT_EQ(cache.evictionCount(), 1u);
}

TEST(BoundedLru, EvictedKeyRebuildsExactlyOnceUnderContention)
{
    const size_t entry = snapshotBytes(synthSnapshot(0));
    CompileCache cache(entry); // holds exactly one entry
    cache.getOrBuild(synthKey(7), [] { return synthSnapshot(7); });
    cache.getOrBuild(synthKey(8), [] { return synthSnapshot(8); });
    ASSERT_EQ(cache.evictionCount(), 1u); // key 7 is gone

    // Eight threads re-request the evicted key concurrently: a fresh
    // single-flight build, so exactly one rebuild — and every requester
    // gets a valid clone of it.
    std::atomic<int> rebuilds{0};
    std::vector<std::thread> threads;
    std::vector<std::shared_ptr<const MiddleEndSnapshot>> got(8);
    for (size_t t = 0; t < got.size(); ++t)
        threads.emplace_back([&, t] {
            got[t] = cache.getOrBuild(synthKey(7), [&rebuilds] {
                ++rebuilds;
                std::this_thread::sleep_for(std::chrono::milliseconds(5));
                return synthSnapshot(7);
            });
        });
    for (std::thread &th : threads)
        th.join();
    EXPECT_EQ(rebuilds.load(), 1);
    for (const auto &snap : got) {
        ASSERT_NE(snap, nullptr);
        EXPECT_EQ(snap->stats.get("synthetic.id"), 7.0);
    }
}

TEST(BoundedLru, WaitersSurviveImmediateEviction)
{
    // Budget below one entry: every publish evicts its own entry right
    // after the waiters are released. The waiters' shared_ptr keeps the
    // snapshot alive; nobody observes a dangling or empty result.
    const size_t entry = snapshotBytes(synthSnapshot(0));
    CompileCache cache(entry / 2);
    std::atomic<int> builds{0};
    std::vector<std::thread> threads;
    std::vector<std::shared_ptr<const MiddleEndSnapshot>> got(8);
    for (size_t t = 0; t < got.size(); ++t)
        threads.emplace_back([&, t] {
            got[t] = cache.getOrBuild(synthKey(1), [&builds] {
                ++builds;
                std::this_thread::sleep_for(std::chrono::milliseconds(10));
                return synthSnapshot(1);
            });
        });
    for (std::thread &th : threads)
        th.join();
    // Requesters that arrive after an eviction rebuild (a fresh miss),
    // so the build count is 1..8 depending on timing — but every
    // requester must hold valid content, and the store must end empty.
    EXPECT_GE(builds.load(), 1);
    EXPECT_LE(builds.load(), 8);
    for (const auto &snap : got) {
        ASSERT_NE(snap, nullptr);
        EXPECT_EQ(snap->stats.get("synthetic.id"), 1.0);
    }
    EXPECT_EQ(cache.entryCount(), 0u);
    EXPECT_EQ(cache.currentBytes(), 0u);
    EXPECT_EQ(cache.evictionCount(), uint64_t(builds.load()));
}

TEST(BoundedLru, EvictionStatsDeterministicAcrossThreadCounts)
{
    // 12 distinct keys, each requested exactly once, budget = 4 entries:
    // published = 12, kept = 4, so evictions = 8 and bytes = 4 * entry
    // no matter how the publishes interleave.
    const size_t entry = snapshotBytes(synthSnapshot(0));
    constexpr uint64_t kKeys = 12;
    constexpr size_t kKeep = 4;
    for (size_t threads : {size_t(1), size_t(2), size_t(8)}) {
        CompileCache cache(kKeep * entry);
        {
            ThreadPool pool(threads);
            for (uint64_t i = 0; i < kKeys; ++i)
                pool.submit([&cache, i](size_t) {
                    cache.getOrBuild(synthKey(i),
                                     [i] { return synthSnapshot(i); });
                });
            pool.wait();
        }
        const StatSet cs = cache.statsSnapshot();
        EXPECT_EQ(cs.get("cache.evictions"), double(kKeys - kKeep))
            << threads;
        EXPECT_EQ(cs.get("cache.bytes"), double(kKeep * entry)) << threads;
        EXPECT_EQ(cs.get("cache.entries"), double(kKeep)) << threads;
        EXPECT_EQ(cs.get("cache.misses"), double(kKeys)) << threads;
        EXPECT_EQ(cs.get("cache.hits"), 0.0) << threads;
    }
}

TEST(BoundedLru, SweepWithTinyBudgetMatchesUncachedSerial)
{
    // Eviction pressure must never change compile results: a budget far
    // below one real snapshot forces a rebuild for effectively every
    // job, and the sweep still matches the uncached serial oracle.
    SweepEngine uncached({1});
    for (SweepJob &job : presetSramGrid())
        uncached.submit(std::move(job));
    const std::vector<SweepResult> &plain = uncached.runAll();

    CompileCache cache(size_t(4) << 10);
    SweepEngine engine({4, &cache});
    for (SweepJob &job : presetSramGrid())
        engine.submit(std::move(job));
    const std::vector<SweepResult> &bounded = engine.runAll();

    EXPECT_GE(cache.evictionCount(), 1u)
        << "the tiny budget must actually evict";
    ASSERT_EQ(bounded.size(), plain.size());
    for (size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(bounded[i].platform.machineFingerprint,
                  plain[i].platform.machineFingerprint)
            << plain[i].name;
        EXPECT_DOUBLE_EQ(bounded[i].platform.sim.cycles,
                         plain[i].platform.sim.cycles)
            << plain[i].name;
        EXPECT_EQ(comparableStats(bounded[i].platform.compilerStats),
                  comparableStats(plain[i].platform.compilerStats))
            << plain[i].name;
    }
}

} // namespace
} // namespace effact
