/**
 * @file
 * Pass-manager layer tests: analysis caching keyed on the IR version
 * counter, pipeline-spec parsing and round-tripping, bounded fixed-point
 * convergence, and the pinned equivalence between the fixed-point
 * pipeline and the pre-pass-manager hardcoded sweep (machine code and
 * simulated cycles bit-identical on the stock workloads for all four
 * Fig. 11 ablation presets).
 */
#include <gtest/gtest.h>

#include "compiler/pass_manager.h"
#include "ir/builder.h"
#include "ir/workloads.h"
#include "platform/platform.h"
#include "runtime/thread_pool.h"
#include "sim/machine.h"

namespace effact {
namespace {

/** Reduced-size stock workloads (paper benchmarks at small params). */
std::vector<std::pair<std::string, Workload>>
stockWorkloads()
{
    FheParams fhe;
    fhe.logN = 14;
    fhe.levels = 16;
    fhe.dnum = 4;
    std::vector<std::pair<std::string, Workload>> all;
    all.emplace_back("bootstrapping",
                     buildBootstrapping(fhe, {256, 2, 2, 63, 8}));
    all.emplace_back("dblookup", buildDbLookup(fhe, 64));
    return all;
}

/** load a, load b, t=a*b, u=t+a, store u (copy chain in the middle). */
IrProgram
tinyProgram()
{
    IrProgram prog;
    prog.name = "tiny";
    prog.degree = 1 << 12;
    IrBuilder b(prog);
    int in = b.object("in", 2, false);
    int out = b.object("out", 1, false);
    PolyVal a = b.load(in, 0, 1);
    PolyVal bb = b.load(in, 1, 1);
    PolyVal t = b.mul(a, bb);
    PolyVal u = b.add(t, a);
    b.store(out, 0, u);
    return prog;
}

/**
 * The pre-pass-manager `Compiler::compile` backend sequence, verbatim:
 * one hardcoded optimization sweep with the special-cased extra
 * copy-prop after the peephole, then the same backend stages. This is
 * the oracle the fixed-point pipeline is pinned against.
 */
MachineProgram
legacyCompile(IrProgram &prog, const CompilerOptions &opts, StatSet &stats)
{
    if (opts.copyProp)
        runCopyProp(prog, stats);
    if (opts.constProp)
        runConstProp(prog, stats);
    if (opts.pre)
        runPre(prog, stats);
    if (opts.peephole) {
        runPeephole(prog, stats);
        runCopyProp(prog, stats);
    }
    prog.compact();
    stats.set("optimized.instructions", double(prog.liveCount()));

    AnalysisManager analyses;
    auto order = runScheduler(prog, analyses, opts, stats);
    auto streaming = runStreaming(prog, order, opts.streaming,
                                  opts.fifoDepth, stats);
    return runRegAllocAndCodegen(prog, order, streaming, opts, stats);
}

// --- AnalysisManager caching ----------------------------------------------

TEST(AnalysisManager, SecondRequestAtSameVersionIsACacheHit)
{
    IrProgram prog = tinyProgram();
    AnalysisManager analyses;
    StatSet stats;
    const DepGraph &g1 = analyses.depGraph(prog, stats);
    const DepGraph &g2 = analyses.depGraph(prog, stats);
    EXPECT_EQ(&g1, &g2);
    EXPECT_EQ(stats.get("analysis.depgraphBuilds"), 1);
    EXPECT_EQ(stats.get("analysis.aliasBuilds"), 1);
    EXPECT_GE(stats.get("analysis.cacheHits"), 1);
}

TEST(AnalysisManager, NoChangePassesKeepTheCache)
{
    // A pipeline whose passes find nothing to do must not invalidate
    // cached analyses: the DepGraph is built exactly once.
    IrProgram prog = tinyProgram();
    AnalysisManager analyses;
    StatSet stats;
    analyses.depGraph(prog, stats);

    // tinyProgram has no Copies and no immediates: nothing fires.
    PassManager pm = PassManager::fromSpec("copyprop,constprop");
    size_t sweeps = pm.run(prog, analyses, stats);
    EXPECT_EQ(sweeps, 1u);
    EXPECT_TRUE(pm.converged());

    analyses.depGraph(prog, stats);
    EXPECT_EQ(stats.get("analysis.depgraphBuilds"), 1);
}

TEST(AnalysisManager, IrMutationInvalidates)
{
    IrProgram prog = tinyProgram();
    AnalysisManager analyses;
    StatSet stats;
    analyses.depGraph(prog, stats);

    // Append an instruction: version bumps, next request rebuilds.
    IrBuilder b(prog);
    b.emit1(IrOp::Copy, 0, -1, 0);
    analyses.depGraph(prog, stats);
    EXPECT_EQ(stats.get("analysis.depgraphBuilds"), 2);

    // A pass that fires (removes the Copy) also invalidates.
    PassManager pm = PassManager::fromSpec("copyprop");
    pm.run(prog, analyses, stats);
    analyses.depGraph(prog, stats);
    EXPECT_EQ(stats.get("analysis.depgraphBuilds"), 3);
}

TEST(AnalysisManager, DistinctProgramsDoNotShareCache)
{
    // Two independently built programs can have colliding version
    // counters; the cache keys on program identity as well, so one
    // manager serving a re-compilation sweep never hands program B a
    // graph built from program A.
    IrProgram a = tinyProgram();
    IrProgram b = tinyProgram();
    ASSERT_EQ(a.version(), b.version());
    EXPECT_NE(a.uid(), b.uid());
    AnalysisManager analyses;
    StatSet stats;
    analyses.depGraph(a, stats);
    analyses.depGraph(b, stats);
    EXPECT_EQ(stats.get("analysis.depgraphBuilds"), 2);

    // Copies are distinct programs too: a copy that later diverges at
    // an equal version count must never hit the original's cache.
    IrProgram c = a;
    EXPECT_NE(c.uid(), a.uid());
    analyses.depGraph(c, stats);
    EXPECT_EQ(stats.get("analysis.depgraphBuilds"), 3);
}

TEST(AnalysisManager, NoOpCompactKeepsTheCache)
{
    IrProgram prog = tinyProgram();
    AnalysisManager analyses;
    StatSet stats;
    analyses.depGraph(prog, stats);
    prog.compact(); // nothing dead: ids unchanged
    analyses.depGraph(prog, stats);
    EXPECT_EQ(stats.get("analysis.depgraphBuilds"), 1);
}

// --- Pipeline specs -------------------------------------------------------

TEST(PipelineSpec, ParsesAndRoundTrips)
{
    PassManager pm = PassManager::fromSpec(" copyprop, constprop ,pre,peephole ");
    EXPECT_EQ(pm.passCount(), 4u);
    EXPECT_EQ(pm.spec(), "copyprop,constprop,pre,peephole");

    PassManager empty = PassManager::fromSpec("");
    EXPECT_EQ(empty.passCount(), 0u);
    EXPECT_EQ(empty.spec(), "");
}

TEST(PipelineSpec, RejectsUnknownAndEmptyNames)
{
    std::vector<std::string> names;
    std::string error;
    EXPECT_FALSE(parsePipelineSpec("copyprop,typo,pre", &names, &error));
    EXPECT_NE(error.find("unknown pass 'typo'"), std::string::npos);

    EXPECT_FALSE(parsePipelineSpec("copyprop,,pre", &names, &error));
    EXPECT_NE(error.find("empty pass name"), std::string::npos);

    EXPECT_FALSE(parsePipelineSpec("copyprop,", &names, &error));
    EXPECT_NE(error.find("empty pass name"), std::string::npos);

    EXPECT_TRUE(parsePipelineSpec("  ", &names, &error));
    EXPECT_TRUE(names.empty());
}

TEST(PipelineSpec, DerivedFromOptionSwitches)
{
    CompilerOptions all;
    EXPECT_EQ(pipelineSpecFromOptions(all),
              "copyprop,constprop,pre,peephole");

    CompilerOptions none;
    none.copyProp = none.constProp = none.pre = none.peephole = false;
    EXPECT_EQ(pipelineSpecFromOptions(none), "");

    CompilerOptions mad;
    mad.peephole = false;
    EXPECT_EQ(pipelineSpecFromOptions(mad), "copyprop,constprop,pre");

    // Peephole without copy-prop still gets the Eq. 5 Copy cleanup (the
    // legacy backend ran it unconditionally after the peephole).
    CompilerOptions peep_only;
    peep_only.copyProp = peep_only.constProp = peep_only.pre = false;
    EXPECT_EQ(pipelineSpecFromOptions(peep_only), "peephole,copyprop");
}

TEST(PipelineSpec, PresetsAreDeclarative)
{
    const size_t mb = size_t(8) << 20;
    EXPECT_EQ(Platform::baselineOptions(mb).pipeline, "");
    EXPECT_EQ(Platform::madEnhancedOptions(mb).pipeline,
              "copyprop,constprop,pre");
    EXPECT_EQ(Platform::streamingOptions(mb).pipeline,
              "copyprop,constprop,pre");
    EXPECT_EQ(Platform::fullOptions(mb).pipeline,
              "copyprop,constprop,pre,peephole");
    // Bool switches and specs agree, so either path builds the same
    // pipeline.
    for (auto &opts :
         {Platform::madEnhancedOptions(mb), Platform::streamingOptions(mb),
          Platform::fullOptions(mb)})
        EXPECT_EQ(pipelineSpecFromOptions(opts), opts.pipeline);

    // The optimized preset is explicit-spec only (rotalg has no bool
    // switch) and selects the new back-end policies; the four stock
    // presets above keep the legacy policies.
    const CompilerOptions optimized = Platform::optimizedOptions(mb);
    EXPECT_EQ(optimized.pipeline, "copyprop,constprop,rotalg,pre,peephole");
    EXPECT_EQ(optimized.regalloc, "priority");
    EXPECT_EQ(optimized.scheduler, "latency");
    for (auto &opts :
         {Platform::baselineOptions(mb), Platform::madEnhancedOptions(mb),
          Platform::streamingOptions(mb), Platform::fullOptions(mb)}) {
        EXPECT_EQ(opts.regalloc, "linear");
        EXPECT_EQ(opts.scheduler, "critical");
    }
}

// --- Fixed point ----------------------------------------------------------

TEST(FixedPoint, SecondSweepCleansPeepholeCopies)
{
    // Eq. 5 fold rewrites Mul(imm) of an Intt into a Copy; the next
    // sweep's copy-prop removes it. That cleanup used to be a
    // special-cased second runCopyProp in Compiler::compile.
    IrProgram prog;
    prog.degree = 1 << 10;
    IrBuilder b(prog);
    int in = b.object("in", 1, false);
    int out = b.object("out", 1, false);
    PolyVal a = b.load(in, 0, 1);
    PolyVal t = b.intt(a);
    PolyVal scaled = b.mulImm(t, 9); // the 1/N post-scale
    b.store(out, 0, scaled);

    AnalysisManager analyses;
    StatSet stats;
    PassManager pm = PassManager::fromSpec("copyprop,constprop,pre,peephole");
    size_t sweeps = pm.run(prog, analyses, stats);
    EXPECT_TRUE(pm.converged());
    EXPECT_GE(sweeps, 2u);
    EXPECT_EQ(stats.get("peephole.inttScaleFolded"), 1);
    EXPECT_EQ(stats.get("copyProp.removed"), 1);
    EXPECT_EQ(stats.get("pipeline.converged"), 1);

    // No Copy (and no scale multiply) survives.
    prog.compact();
    for (const auto &inst : prog.insts)
        EXPECT_NE(inst.op, IrOp::Copy);
}

TEST(FixedPoint, DeepFoldChainsConvergeOneLinkPerSweep)
{
    // A stack of single-use scale multiplies over one Intt folds one
    // link per sweep (the Eq. 5 rewrite sees the Intt only after
    // copy-prop removes the previous sweep's Copy). Distinct moduli
    // keep constprop's chained-imm merge out of the way, so this needs
    // more sweeps than the stock workloads ever do — the bound must
    // accommodate it instead of panicking on a legal program.
    constexpr int kChain = 12;
    IrProgram prog;
    prog.degree = 1 << 10;
    IrBuilder b(prog);
    int in = b.object("in", 1, false);
    int out = b.object("out", 1, false);
    PolyVal a = b.load(in, 0, 1);
    PolyVal t = b.intt(a);
    int v = t.limbs[0];
    for (int i = 0; i < kChain; ++i)
        v = b.emit1(IrOp::Mul, v, -1, /*modulus=*/uint32_t(i),
                    IrTag::Normal, /*imm=*/3, /*use_imm=*/true);
    b.store(out, 0, PolyVal{{v}});

    Compiler compiler; // default options: full pipeline
    compiler.compile(prog);
    EXPECT_EQ(compiler.stats().get("pipeline.converged"), 1);
    EXPECT_GT(compiler.stats().get("pipeline.iterations"), 8);
    EXPECT_EQ(compiler.stats().get("peephole.inttScaleFolded"), kChain);
}

TEST(FixedPoint, ConvergesWithinSmallBoundOnStockWorkloads)
{
    for (auto &[name, w] : stockWorkloads()) {
        Compiler compiler(Platform::fullOptions(size_t(8) << 20));
        compiler.compile(w.program);
        const StatSet &stats = compiler.stats();
        EXPECT_EQ(stats.get("pipeline.converged"), 1) << name;
        EXPECT_LE(stats.get("pipeline.iterations"), 4) << name;
        EXPECT_GE(stats.get("pipeline.iterations"), 2) << name;
        // Per-pass namespaced stats exist.
        EXPECT_TRUE(stats.has("pass.copyprop.ms")) << name;
        EXPECT_TRUE(stats.has("pass.peephole.removed")) << name;
    }
}

TEST(FixedPoint, DepGraphBuiltAtMostOncePerCompile)
{
    for (auto &[name, w] : stockWorkloads()) {
        Compiler compiler(Platform::fullOptions(size_t(8) << 20));
        compiler.compile(w.program);
        EXPECT_EQ(compiler.stats().get("analysis.depgraphBuilds"), 1)
            << name;
        EXPECT_EQ(compiler.stats().get("analysis.aliasBuilds"), 1) << name;
    }
    // With an empty pipeline (no pass can fire) and scheduling enabled,
    // the graph is still built exactly once.
    FheParams fhe;
    fhe.logN = 14;
    fhe.levels = 16;
    fhe.dnum = 4;
    Workload w = buildBootstrapping(fhe, {256, 2, 2, 63, 8});
    CompilerOptions opts = Platform::baselineOptions(size_t(8) << 20);
    opts.schedule = true;
    Compiler compiler(opts);
    compiler.compile(w.program);
    EXPECT_EQ(compiler.stats().get("analysis.depgraphBuilds"), 1);
}

// --- Equivalence with the pre-pass-manager backend ------------------------

TEST(Equivalence, ExplicitMiddleAndBackEndComposeToCompile)
{
    // The hardware split: running the two halves by hand must be
    // indistinguishable from `compile`, for every ablation preset, and
    // the middle end must be deterministic over structurally identical
    // inputs (the property the compile cache keys rely on).
    const size_t sram = size_t(27) << 20;
    const std::vector<CompilerOptions> presets = {
        Platform::baselineOptions(sram), Platform::madEnhancedOptions(sram),
        Platform::streamingOptions(sram), Platform::fullOptions(sram)};
    for (const CompilerOptions &opts : presets) {
        Compiler compiler(opts);

        Workload whole = buildDbLookup(FheParams{12, 6, 2}, 32);
        AnalysisManager am1;
        const MachineProgram via_compile =
            compiler.compile(whole.program, am1);

        Workload split = buildDbLookup(FheParams{12, 6, 2}, 32);
        AnalysisManager am2;
        StatSet stats;
        compiler.runMiddleEnd(split.program, am2, stats);
        const MachineProgram via_split =
            compiler.runBackEnd(split.program, am2, stats);

        EXPECT_EQ(fingerprint(via_compile), fingerprint(via_split));
        // Same optimized IR too: the middle end is a pure function of
        // (program content, preset).
        EXPECT_EQ(fingerprint(whole.program), fingerprint(split.program));
    }
}

TEST(Equivalence, FixedPointMatchesLegacySweepOnAllAblationPresets)
{
    // Machine code and simulated cycles must be bit-identical to the
    // hardcoded legacy sequence for every Fig. 11 preset on the stock
    // workloads, and the fixed point must never end with more
    // instructions than the single sweep.
    const size_t sram = size_t(6) << 20;
    struct Preset
    {
        const char *name;
        CompilerOptions opts;
    };
    CompilerOptions peep_only = Platform::fullOptions(sram);
    peep_only.copyProp = peep_only.constProp = peep_only.pre = false;
    peep_only.pipeline.clear(); // derive "peephole,copyprop" from bools
    const std::vector<Preset> presets = {
        {"baseline", Platform::baselineOptions(sram)},
        {"MAD-enhanced", Platform::madEnhancedOptions(sram)},
        {"streaming", Platform::streamingOptions(sram)},
        {"full", Platform::fullOptions(sram)},
        {"peephole-no-copyprop", peep_only},
    };
    HardwareConfig hw = HardwareConfig::asicEffact27();
    hw.sramBytes = sram;

    for (auto &[wname, stock] : stockWorkloads()) {
        for (const Preset &preset : presets) {
            IrProgram legacy_prog = stock.program;
            StatSet legacy_stats;
            MachineProgram legacy =
                legacyCompile(legacy_prog, preset.opts, legacy_stats);

            IrProgram fp_prog = stock.program;
            Compiler compiler(preset.opts);
            MachineProgram fp = compiler.compile(fp_prog);

            const std::string tag =
                std::string(wname) + " / " + preset.name;
            ASSERT_EQ(fp.insts.size(), legacy.insts.size()) << tag;
            EXPECT_EQ(disassemble(fp), disassemble(legacy)) << tag;
            EXPECT_EQ(fp.numRegs, legacy.numRegs) << tag;
            EXPECT_EQ(fp.spillLoads, legacy.spillLoads) << tag;
            EXPECT_EQ(fp.spillStores, legacy.spillStores) << tag;
            EXPECT_EQ(fp.streamedOps, legacy.streamedOps) << tag;

            EXPECT_LE(compiler.stats().get("optimized.instructions"),
                      legacy_stats.get("optimized.instructions"))
                << tag;

            Simulator sim(hw);
            SimReport fp_run = sim.run(fp);
            SimReport legacy_run = sim.run(legacy);
            EXPECT_DOUBLE_EQ(fp_run.cycles, legacy_run.cycles) << tag;
            EXPECT_DOUBLE_EQ(fp_run.dramBytes, legacy_run.dramBytes)
                << tag;
        }
    }
}

TEST(Equivalence, OptimizedPresetShrinksAndStaysDeterministic)
{
    // The rotalg/priority/latency preset against the full Fig. 11
    // preset: never more optimized instructions, rotalg demonstrably
    // fires on the rotation workload, verifier-clean at every
    // checkpoint, and machine code bit-identical under region-sharded
    // recompiles at 2 and 8 workers.
    const size_t sram = size_t(6) << 20;
    std::vector<std::pair<std::string, Workload>> cases;
    cases.emplace_back("rotbatch",
                       buildRotationBatch(FheParams{13, 8, 2}, 4, 8));
    for (auto &[name, w] : stockWorkloads())
        cases.emplace_back(name, std::move(w));

    for (auto &[name, w] : cases) {
        CompilerOptions full_opts = Platform::fullOptions(sram);
        full_opts.verifyLevel = 1;
        IrProgram full_prog = w.program;
        Compiler full_compiler(full_opts);
        full_compiler.compile(full_prog);

        CompilerOptions opt_opts = Platform::optimizedOptions(sram);
        opt_opts.verifyLevel = 1;
        IrProgram opt_prog = w.program;
        Compiler opt_compiler(opt_opts);
        const MachineProgram opt = opt_compiler.compile(opt_prog);

        EXPECT_LE(opt_compiler.stats().get("optimized.instructions"),
                  full_compiler.stats().get("optimized.instructions"))
            << name;
        EXPECT_EQ(opt_compiler.stats().get("pipeline.converged"), 1)
            << name;
        if (std::string(name) == "rotbatch") {
            EXPECT_GT(opt_compiler.stats().get("rotalg.composed"), 0)
                << name;
            EXPECT_GT(opt_compiler.stats().get("rotalg.deadRotations"), 0)
                << name;
            // The bypassed intermediates actually left the program.
            EXPECT_LT(opt_compiler.stats().get("optimized.instructions"),
                      full_compiler.stats().get("optimized.instructions"))
                << name;
        }

        for (size_t workers : {size_t(2), size_t(8)}) {
            ThreadPool pool(workers);
            IrProgram sharded_prog = w.program;
            Compiler sharded_compiler(opt_opts);
            AnalysisManager analyses;
            analyses.setExec(ParallelExec(&pool));
            const MachineProgram sharded =
                sharded_compiler.compile(sharded_prog, analyses);
            EXPECT_EQ(fingerprint(sharded), fingerprint(opt))
                << name << " @ " << workers << " workers";
        }
    }
}

} // namespace
} // namespace effact
