/**
 * @file
 * DepGraph tests: machine-level true (register + FIFO-token) and anti
 * (WAW) edges, IR-level operand and memory-alias edges, indegrees and
 * critical-path priorities.
 */
#include <gtest/gtest.h>

#include "compiler/pass.h"
#include "ir/builder.h"
#include "sched/depgraph.h"
#include "sim/machine.h"

namespace effact {
namespace {

MachInst
compute(Opcode op, Operand dest, Operand src0,
        Operand src1 = Operand::none())
{
    MachInst mi;
    mi.op = op;
    mi.dest = dest;
    mi.src0 = src0;
    mi.src1 = src1;
    return mi;
}

/** Collects (from, to, kind) triples through the succ ranges. */
std::vector<std::tuple<int, int, DepKind>>
allEdges(const DepGraph &g)
{
    std::vector<std::tuple<int, int, DepKind>> out;
    for (size_t i = 0; i < g.size(); ++i)
        for (const DepEdge &e : g.succs(i))
            out.emplace_back(static_cast<int>(i), e.other, e.kind);
    return out;
}

TEST(DepGraphMachine, RegisterTrueDependences)
{
    MachineProgram mp;
    mp.residueBytes = 1 << 12;
    MachInst ld;
    ld.op = Opcode::LOAD_RES;
    ld.dest = Operand::regOp(0);
    mp.insts.push_back(ld);                                         // 0
    mp.insts.push_back(compute(Opcode::NTT, Operand::regOp(1),
                               Operand::regOp(0)));                 // 1
    MachInst st;
    st.op = Opcode::STORE_RES;
    st.src0 = Operand::regOp(1);
    mp.insts.push_back(st);                                         // 2

    DepGraph g = DepGraph::fromMachine(mp);
    auto edges = allEdges(g);
    ASSERT_EQ(edges.size(), 2u);
    EXPECT_EQ(edges[0], std::make_tuple(0, 1, DepKind::True));
    EXPECT_EQ(edges[1], std::make_tuple(1, 2, DepKind::True));
    auto indeg = g.indegrees();
    EXPECT_EQ(indeg[0], 0u);
    EXPECT_EQ(indeg[1], 1u);
    EXPECT_EQ(indeg[2], 1u);
}

TEST(DepGraphMachine, FifoTokenDependence)
{
    MachineProgram mp;
    mp.residueBytes = 1 << 12;
    mp.insts.push_back(compute(Opcode::MMUL, Operand::stream(7),
                               Operand::regOp(0), Operand::regOp(1)));
    mp.insts.push_back(compute(Opcode::MMAD, Operand::regOp(2),
                               Operand::stream(7), Operand::regOp(1)));

    DepGraph g = DepGraph::fromMachine(mp);
    auto edges = allEdges(g);
    ASSERT_EQ(edges.size(), 1u);
    EXPECT_EQ(edges[0], std::make_tuple(0, 1, DepKind::True));
}

TEST(DepGraphMachine, DramStreamSourceHasNoProducer)
{
    MachineProgram mp;
    mp.residueBytes = 1 << 12;
    // A DRAM-fed streaming operand comes from memory, not from another
    // instruction: no edge even if a FIFO token would match.
    mp.insts.push_back(compute(Opcode::MMUL, Operand::stream(3),
                               Operand::regOp(0), Operand::regOp(1)));
    mp.insts.push_back(compute(Opcode::MMUL, Operand::regOp(2),
                               Operand::stream(3, /*from_dram=*/true),
                               Operand::regOp(1)));

    DepGraph g = DepGraph::fromMachine(mp);
    EXPECT_EQ(g.edgeCount(), 0u);
}

TEST(DepGraphMachine, RegisterReuseCreatesAntiEdge)
{
    MachineProgram mp;
    mp.residueBytes = 1 << 12;
    mp.insts.push_back(compute(Opcode::MMUL, Operand::regOp(0),
                               Operand::regOp(1), Operand::regOp(2)));
    mp.insts.push_back(compute(Opcode::MMAD, Operand::regOp(3),
                               Operand::regOp(0), Operand::regOp(1)));
    // Reuses r0: anti edge from the previous writer (inst 0).
    mp.insts.push_back(compute(Opcode::MMUL, Operand::regOp(0),
                               Operand::regOp(2), Operand::regOp(1)));

    DepGraph g = DepGraph::fromMachine(mp);
    auto edges = allEdges(g);
    ASSERT_EQ(edges.size(), 2u);
    EXPECT_EQ(edges[0], std::make_tuple(0, 1, DepKind::True));
    EXPECT_EQ(edges[1], std::make_tuple(0, 2, DepKind::Anti));
}

/**
 * Regression pin for the *intentional* WAW-only anti-dependence
 * semantics (see ROADMAP): a register overwrite waits for the previous
 * WRITER of that register, but NOT for unissued READERS of the old
 * value (no WAR edges). This is faithful to the seed simulator's
 * machine model; a future "fix" that adds WAR edges would silently
 * change simulated cycles everywhere, so both the edge set and the
 * cycle-level consequence are asserted exactly.
 */
TEST(DepGraphMachine, WarOverwriteDoesNotWaitForUnissuedReaders)
{
    MachineProgram mp;
    const size_t n = size_t(1) << 15;
    mp.residueBytes = n * 8;
    // i0 writes r0; i1 reads r0 (the old value); i2 overwrites r0
    // before i1 has necessarily issued; i3 consumes the new r0.
    mp.insts.push_back(compute(Opcode::MMUL, Operand::regOp(0),
                               Operand::regOp(1), Operand::regOp(2)));
    mp.insts.push_back(compute(Opcode::MMAD, Operand::regOp(3),
                               Operand::regOp(0), Operand::regOp(1)));
    mp.insts.push_back(compute(Opcode::MMUL, Operand::regOp(0),
                               Operand::regOp(2), Operand::regOp(4)));
    mp.insts.push_back(compute(Opcode::NTT, Operand::regOp(5),
                               Operand::regOp(0)));

    DepGraph g = DepGraph::fromMachine(mp);
    auto edges = allEdges(g);
    // Exactly: 0->1 RAW, 0->2 WAW, 2->3 RAW. No 1->2 WAR edge.
    ASSERT_EQ(edges.size(), 3u);
    EXPECT_EQ(edges[0], std::make_tuple(0, 1, DepKind::True));
    EXPECT_EQ(edges[1], std::make_tuple(0, 2, DepKind::Anti));
    EXPECT_EQ(edges[2], std::make_tuple(2, 3, DepKind::True));

    // Cycle-level consequence: the anti edge orders *issue* but carries
    // no data latency, so i2 starts at t = 0 on the second MUL unit —
    // while i1, which waits for i0's data, has not issued yet — and i3
    // only waits for i2. With ew = ceil(n/lanes) and the 16-cycle
    // startup, i3 finishes at (ew + 16) + ntt + 16; a WAR-honoring
    // model would stall i2 (and i3) behind i1's issue at ew + 16.
    HardwareConfig hw = HardwareConfig::asicEffact27(); // 2 MUL units
    SimReport r = Simulator(hw).run(mp);
    const double ew = double(n) / double(hw.lanes);
    const double ntt = double(n) * 15 / 2.0 / double(hw.lanes);
    EXPECT_NEAR(r.cycles, ew + 16 + ntt + 16, 1e-6);
    SimReport ref = Simulator(hw).runReference(mp);
    EXPECT_DOUBLE_EQ(r.cycles, ref.cycles);
}

TEST(DepGraphMachine, StoreDoesNotDefineItsOperand)
{
    MachineProgram mp;
    mp.residueBytes = 1 << 12;
    MachInst st;
    st.op = Opcode::STORE_RES;
    st.src0 = Operand::regOp(0);
    st.dest = Operand::regOp(0); // stores write memory, not registers
    mp.insts.push_back(st);
    mp.insts.push_back(compute(Opcode::NTT, Operand::regOp(1),
                               Operand::regOp(0)));

    DepGraph g = DepGraph::fromMachine(mp);
    // The NTT's source resolves to no producer (live-in register), and
    // the store contributes no anti edge.
    EXPECT_EQ(g.edgeCount(), 0u);
}

TEST(DepGraphMachine, DuplicateSourceCountsTwice)
{
    MachineProgram mp;
    mp.residueBytes = 1 << 12;
    mp.insts.push_back(compute(Opcode::MMUL, Operand::regOp(0),
                               Operand::regOp(1), Operand::regOp(2)));
    // Squaring: both sources are the same value; the indegree counts
    // both edges so the wake-up countdown stays consistent.
    mp.insts.push_back(compute(Opcode::MMUL, Operand::regOp(3),
                               Operand::regOp(0), Operand::regOp(0)));

    DepGraph g = DepGraph::fromMachine(mp);
    EXPECT_EQ(g.edgeCount(), 2u);
    EXPECT_EQ(g.indegrees()[1], 2u);
}

TEST(DepGraphIr, OperandAndAliasEdges)
{
    IrProgram prog;
    prog.degree = 1 << 10;
    IrBuilder b(prog);
    int buf = b.object("buf", 1, false);
    PolyVal l1 = b.load(buf, 0, 1);             // 0
    PolyVal m = b.mulImm(l1, 3);                // 1
    b.store(buf, 0, m);                         // 2
    PolyVal l2 = b.load(buf, 0, 1);             // 3 (RAW on the store)
    b.store(buf, 0, b.mulImm(l2, 5));           // 4, 5

    StatSet stats;
    auto mem = runAliasAnalysis(prog, stats);
    DepGraph g = DepGraph::fromIr(prog, mem);

    // SSA operand edges: 0->1, 1->2, 3->4, 4->5.
    bool saw_alias = false;
    for (size_t i = 0; i < g.size(); ++i)
        for (const DepEdge &e : g.succs(i))
            saw_alias |= e.kind == DepKind::MemAlias;
    EXPECT_TRUE(saw_alias);
    EXPECT_EQ(g.edgeCount(), 4u + mem.size());
    // The second load waits for the first store via the alias edge.
    bool store_to_load = false;
    for (const DepEdge &e : g.succs(2))
        store_to_load |= e.other == 3 && e.kind == DepKind::MemAlias;
    EXPECT_TRUE(store_to_load);
}

TEST(DepGraphIr, DeadInstructionsAreIsolated)
{
    IrProgram prog;
    prog.degree = 1 << 10;
    IrBuilder b(prog);
    int in = b.object("in", 1, false);
    int out = b.object("out", 1, false);
    PolyVal a = b.load(in, 0, 1);
    PolyVal m = b.mulImm(a, 3);
    b.store(out, 0, m);
    prog.insts[m.limbs[0]].dead = true;
    prog.insts[2].dead = true; // the store

    DepGraph g = DepGraph::fromIr(prog, {});
    EXPECT_EQ(g.edgeCount(), 0u);
}

TEST(DepGraph, CriticalPathPriorities)
{
    // Chain 0 -> 1 -> 2 with latencies 2, 3, 5 plus a free node 3.
    IrProgram prog;
    prog.degree = 1 << 10;
    IrBuilder b(prog);
    int in = b.object("in", 2, false);
    PolyVal a = b.load(in, 0, 1);                // 0
    PolyVal m = b.mulImm(a, 3);                  // 1
    int out = b.object("out", 1, false);
    b.store(out, 0, m);                          // 2
    b.load(in, 1, 1);                            // 3 (independent)

    DepGraph g = DepGraph::fromIr(prog, {});
    std::vector<double> lat = {2.0, 3.0, 5.0, 7.0};
    auto prio = g.criticalPath(lat);
    EXPECT_DOUBLE_EQ(prio[2], 5.0);
    EXPECT_DOUBLE_EQ(prio[1], 8.0);
    EXPECT_DOUBLE_EQ(prio[0], 10.0);
    EXPECT_DOUBLE_EQ(prio[3], 7.0);
}

} // namespace
} // namespace effact
