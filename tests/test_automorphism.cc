/**
 * @file
 * Automorphism tests: coefficient-domain index map, Galois elements, and
 * the NTT-domain permutation identity NTT(sigma_t(a)) == perm_t(NTT(a))
 * (Eq. 2, third identity).
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/automorphism.h"
#include "math/ntt.h"
#include "math/primes.h"

namespace effact {
namespace {

TEST(Automorphism, GaloisElements)
{
    const size_t n = 1 << 10;
    EXPECT_EQ(galoisElt(0, n), 1u);
    EXPECT_EQ(galoisElt(1, n), 5u);
    EXPECT_EQ(galoisElt(2, n), 25u);
    // Negative steps wrap around the order-N/2 cycle.
    EXPECT_EQ(galoisElt(-1, n), powMod(5, n / 2 - 1, 2 * n));
    EXPECT_EQ(galoisEltConjugate(n), 2 * n - 1);
}

TEST(Automorphism, IdentityElementIsNoOp)
{
    const size_t n = 64;
    const u64 q = genNttPrimes(1, 40, n)[0];
    Rng rng(20);
    std::vector<u64> a(n), out(n);
    for (auto &c : a)
        c = rng.uniform(q);
    applyAutoCoeff(a.data(), out.data(), n, 1, q);
    EXPECT_EQ(a, out);
}

TEST(Automorphism, CoeffMapSignWrap)
{
    // For a(X) = X, sigma_t(a) = X^t; with t >= N the result wraps with
    // sign: X^(2N-1) = -X^(N-1) * ... check a concrete small case.
    const size_t n = 8;
    const u64 q = 17;
    std::vector<u64> a(n, 0), out(n, 0);
    a[1] = 1; // a = X
    applyAutoCoeff(a.data(), out.data(), n, 15, q); // X -> X^15 = -X^7
    EXPECT_EQ(out[7], q - 1);
    for (size_t i = 0; i < 7; ++i)
        EXPECT_EQ(out[i], 0u);
}

TEST(Automorphism, ComposesLikeGroup)
{
    const size_t n = 128;
    const u64 q = genNttPrimes(1, 40, n)[0];
    Rng rng(21);
    std::vector<u64> a(n);
    for (auto &c : a)
        c = rng.uniform(q);
    const u64 t1 = galoisElt(3, n);
    const u64 t2 = galoisElt(5, n);
    std::vector<u64> s1(n), s12(n), direct(n);
    applyAutoCoeff(a.data(), s1.data(), n, t1, q);
    applyAutoCoeff(s1.data(), s12.data(), n, t2, q);
    // sigma_t2(sigma_t1(a)) = sigma_{t1*t2 mod 2N}(a)
    applyAutoCoeff(a.data(), direct.data(), n, (t1 * t2) % (2 * n), q);
    EXPECT_EQ(s12, direct);
}

class AutoEvalDomain : public ::testing::TestWithParam<int> {};

TEST_P(AutoEvalDomain, NttDomainPermutationMatchesCoeffDomain)
{
    const int steps = GetParam();
    const size_t n = 256;
    const u64 q = genNttPrimes(1, 45, n)[0];
    Ntt ntt(n, q);
    Rng rng(22 + steps);
    std::vector<u64> a(n);
    for (auto &c : a)
        c = rng.uniform(q);
    const u64 t = galoisElt(steps, n);

    // Path 1: automorphism in coefficient domain, then NTT.
    std::vector<u64> path1(n);
    applyAutoCoeff(a.data(), path1.data(), n, t, q);
    ntt.forward(path1);

    // Path 2: NTT, then eval-domain permutation.
    std::vector<u64> freq = a;
    ntt.forward(freq);
    std::vector<u64> path2(n);
    AutoPermutation perm(n, t);
    perm.apply(freq.data(), path2.data());

    EXPECT_EQ(path1, path2) << "steps=" << steps;
}

INSTANTIATE_TEST_SUITE_P(Steps, AutoEvalDomain,
                         ::testing::Values(0, 1, 2, 3, 7, 31, -1, -5));

TEST(Automorphism, ConjugationInEvalDomain)
{
    const size_t n = 128;
    const u64 q = genNttPrimes(1, 40, n)[0];
    Ntt ntt(n, q);
    Rng rng(23);
    std::vector<u64> a(n);
    for (auto &c : a)
        c = rng.uniform(q);
    const u64 t = galoisEltConjugate(n);

    std::vector<u64> path1(n);
    applyAutoCoeff(a.data(), path1.data(), n, t, q);
    ntt.forward(path1);

    std::vector<u64> freq = a;
    ntt.forward(freq);
    std::vector<u64> path2(n);
    AutoPermutation perm(n, t);
    perm.apply(freq.data(), path2.data());

    EXPECT_EQ(path1, path2);
}

TEST(Automorphism, PermutationIsBijective)
{
    const size_t n = 512;
    AutoPermutation perm(n, galoisElt(9, n));
    std::vector<bool> seen(n, false);
    for (size_t j = 0; j < n; ++j) {
        size_t s = perm.source(j);
        ASSERT_LT(s, n);
        EXPECT_FALSE(seen[s]);
        seen[s] = true;
    }
}

} // namespace
} // namespace effact
