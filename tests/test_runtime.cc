/**
 * @file
 * Batch-execution runtime tests: ThreadPool scheduling basics, the
 * SweepEngine's ordered result delivery and stat aggregation, and the
 * central determinism guarantee — the same job batch at 1, 2 and 8
 * threads yields identical simulated cycles, machine-code fingerprints
 * and stat aggregates (timing keys excluded: wall-clock is the one
 * legitimately nondeterministic stat).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "compiler/compile_cache.h"
#include "runtime/sweep.h"
#include "runtime/thread_pool.h"

namespace effact {
namespace {

// --- ThreadPool -----------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter](size_t) { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WorkerIndicesStayInRange)
{
    ThreadPool pool(3);
    std::mutex mu;
    std::set<size_t> seen;
    for (int i = 0; i < 64; ++i)
        pool.submit([&](size_t worker) {
            std::lock_guard<std::mutex> lock(mu);
            seen.insert(worker);
        });
    pool.wait();
    for (size_t worker : seen)
        EXPECT_LT(worker, 3u);
    EXPECT_GE(seen.size(), 1u);
}

TEST(ThreadPool, DestructorDrainsOutstandingTasks)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i)
            pool.submit([&counter](size_t) { ++counter; });
        // No wait(): the destructor must drain before joining.
    }
    EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, WaitIsReusableBetweenBatches)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    pool.submit([&counter](size_t) { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 1);
    pool.submit([&counter](size_t) { ++counter; });
    pool.submit([&counter](size_t) { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, ZeroThreadRequestStillRuns)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1u);
    std::atomic<int> counter{0};
    pool.submit([&counter](size_t) { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 1);
}

// --- Admission control / backpressure -------------------------------------

/** Blocks the pool's single worker until released, so the tests can
 *  build up queue pressure deterministically. */
class WorkerGate
{
  public:
    /** The gate task; submit it first so the worker parks on it. */
    ThreadPool::Task task()
    {
        return [this](size_t) {
            entered_.store(true);
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] { return open_; });
        };
    }

    /** Waits until the worker is actually parked inside the gate. */
    void awaitEntered()
    {
        while (!entered_.load())
            std::this_thread::yield();
    }

    void open()
    {
        std::lock_guard<std::mutex> lock(mu_);
        open_ = true;
        cv_.notify_all();
    }

  private:
    std::mutex mu_;
    std::condition_variable cv_;
    bool open_ = false;
    std::atomic<bool> entered_{false};
};

TEST(Backpressure, TrySubmitRejectsExactlyWhenQueueIsFull)
{
    ThreadPool pool(1, /*maxQueued=*/3);
    EXPECT_EQ(pool.maxQueued(), 3u);
    WorkerGate gate;
    pool.submit(gate.task());
    gate.awaitEntered(); // worker busy, queue empty

    std::atomic<int> ran{0};
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(pool.trySubmit([&ran](size_t) { ++ran; }))
            << "queue slot " << i << " must be granted";
    EXPECT_EQ(pool.queueDepth(), 3u);
    // The documented reject-when-full contract: refusal leaves the task
    // un-enqueued, so nothing about the pool changes.
    EXPECT_FALSE(pool.trySubmit([&ran](size_t) { ++ran; }));
    EXPECT_EQ(pool.queueDepth(), 3u);

    gate.open();
    pool.wait();
    EXPECT_EQ(ran.load(), 3) << "accepted tasks run; the refused one not";
    // Draining frees the admission slots again.
    EXPECT_TRUE(pool.trySubmit([&ran](size_t) { ++ran; }));
    pool.wait();
    EXPECT_EQ(ran.load(), 4);
}

TEST(Backpressure, UnboundedSubmitIgnoresTheAdmissionBound)
{
    // Internal fan-out (Group sub-tasks, stage chaining) goes through
    // plain submit and must never be refused, or a half-submitted job
    // would deadlock its own barrier.
    ThreadPool pool(1, /*maxQueued=*/1);
    WorkerGate gate;
    pool.submit(gate.task());
    gate.awaitEntered();
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&ran](size_t) { ++ran; });
    EXPECT_EQ(pool.queueDepth(), 8u);
    EXPECT_FALSE(pool.trySubmit([&ran](size_t) { ++ran; }));
    gate.open();
    pool.wait();
    EXPECT_EQ(ran.load(), 8);
}

TEST(Backpressure, ShutdownDrainsAcceptedTasks)
{
    std::atomic<int> ran{0};
    ThreadPool pool(2, /*maxQueued=*/64);
    for (int i = 0; i < 32; ++i)
        ASSERT_TRUE(pool.trySubmit([&ran](size_t) { ++ran; }));
    pool.shutdown();
    EXPECT_EQ(ran.load(), 32) << "every accepted task runs before join";
    // Idempotent, and permanently closed afterwards.
    pool.shutdown();
    EXPECT_FALSE(pool.trySubmit([&ran](size_t) { ++ran; }));
    EXPECT_EQ(ran.load(), 32);
}

TEST(Backpressure, ConcurrentSubmitAndShutdownNeverLosesOrDoublesATask)
{
    // Producers hammer trySubmit while the owner shuts the pool down.
    // The contract: every task is either refused (runs zero times) or
    // accepted (runs exactly once) — no lost or double-run tasks.
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 64;
    std::array<std::atomic<int>, kProducers * kPerProducer> runs{};
    std::array<bool, kProducers * kPerProducer> accepted{};

    ThreadPool pool(2, /*maxQueued=*/8);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p)
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                const int id = p * kPerProducer + i;
                accepted[id] = pool.trySubmit(
                    [&runs, id](size_t) { ++runs[id]; });
            }
        });
    // Shut down while the producers are mid-burst.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    pool.shutdown();
    for (std::thread &t : producers)
        t.join();

    int accepted_count = 0;
    for (int id = 0; id < kProducers * kPerProducer; ++id) {
        EXPECT_EQ(runs[id].load(), accepted[id] ? 1 : 0)
            << "task " << id
            << (accepted[id] ? " was accepted but did not run exactly once"
                             : " was refused but ran anyway");
        accepted_count += accepted[id] ? 1 : 0;
    }
    // Sanity: the race window is real in both directions — some tasks
    // get in before the shutdown; ones submitted after it are refused.
    EXPECT_GE(accepted_count, 0);
}

TEST(Backpressure, QueueDepthTracksPressure)
{
    ThreadPool pool(1, /*maxQueued=*/16);
    EXPECT_EQ(pool.queueDepth(), 0u);
    WorkerGate gate;
    pool.submit(gate.task());
    gate.awaitEntered();
    // The gate task is *running*, not queued: depth counts waiting work
    // only (the admission pressure a service reports).
    EXPECT_EQ(pool.queueDepth(), 0u);
    for (size_t i = 1; i <= 5; ++i) {
        ASSERT_TRUE(pool.trySubmit([](size_t) {}));
        EXPECT_EQ(pool.queueDepth(), i);
    }
    gate.open();
    pool.wait();
    EXPECT_EQ(pool.queueDepth(), 0u);
}

// --- SweepEngine ----------------------------------------------------------

/** Reduced-size benchmark grid shared by the engine tests. */
std::vector<SweepJob>
smallGrid()
{
    FheParams fhe;
    fhe.logN = 13;
    fhe.levels = 8;
    fhe.dnum = 2;
    std::vector<SweepJob> jobs;
    const std::vector<HardwareConfig> configs = {
        HardwareConfig::asicEffact27(), HardwareConfig::fpgaEffact()};
    for (const HardwareConfig &hw : configs) {
        for (int preset = 0; preset < 3; ++preset) {
            CompilerOptions opts;
            switch (preset) {
              case 0: opts = Platform::baselineOptions(hw.sramBytes); break;
              case 1:
                opts = Platform::streamingOptions(hw.sramBytes);
                break;
              default: opts = Platform::fullOptions(hw.sramBytes); break;
            }
            SweepJob job;
            job.name = std::string(hw.name) + "/preset" +
                       std::to_string(preset);
            const size_t records = 32 + 32 * size_t(preset);
            job.build = [fhe, records] {
                return buildDbLookup(fhe, records);
            };
            job.hw = hw;
            job.copts = opts;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

std::vector<SweepResult>
runGrid(size_t threads)
{
    SweepEngine engine({threads});
    for (SweepJob &job : smallGrid())
        engine.submit(std::move(job));
    return engine.runAll();
}

TEST(SweepEngine, ResultsArriveInSubmissionOrder)
{
    SweepEngine engine({4});
    std::vector<SweepJob> jobs = smallGrid();
    const size_t n = jobs.size();
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(engine.submit(std::move(jobs[i])), i);
    const std::vector<SweepResult> &results = engine.runAll();
    ASSERT_EQ(results.size(), n);
    for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(results[i].jobIndex, i);
        EXPECT_GT(results[i].platform.sim.cycles, 0.0) << results[i].name;
    }
    // Same grid serially: the engine's results match job for job.
    const std::vector<SweepResult> serial = runGrid(1);
    for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(results[i].name, serial[i].name);
        EXPECT_DOUBLE_EQ(results[i].platform.sim.cycles,
                         serial[i].platform.sim.cycles);
    }
}

TEST(SweepEngine, SerialPathMatchesPlatformRun)
{
    // threads=1 must reproduce a plain Platform::run job for job.
    const std::vector<SweepResult> serial = runGrid(1);
    std::vector<SweepJob> jobs = smallGrid();
    ASSERT_EQ(serial.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        Workload w = jobs[i].build();
        Platform p(jobs[i].hw, jobs[i].copts);
        PlatformResult direct = p.run(w);
        EXPECT_DOUBLE_EQ(serial[i].platform.sim.cycles, direct.sim.cycles)
            << jobs[i].name;
        EXPECT_EQ(serial[i].platform.machineFingerprint,
                  direct.machineFingerprint)
            << jobs[i].name;
        EXPECT_DOUBLE_EQ(serial[i].platform.benchTimeMs,
                         direct.benchTimeMs)
            << jobs[i].name;
    }
}

/** Strips wall-clock keys (`*.ms.*`), the one nondeterministic stat. */
std::map<std::string, double>
deterministicAggregates(const StatSet &agg)
{
    std::map<std::string, double> out;
    for (const auto &[key, value] : agg.all())
        if (key.find(".ms.") == std::string::npos)
            out.emplace(key, value);
    return out;
}

TEST(SweepEngine, DeterministicAcrossThreadCounts)
{
    // The pinned guarantee: 1, 2 and 8 threads produce identical
    // simulated cycles, machine-code fingerprints and aggregates.
    SweepEngine serial({1}), two({2}), eight({8});
    for (SweepEngine *engine : {&serial, &two, &eight})
        for (SweepJob &job : smallGrid())
            engine->submit(std::move(job));

    const std::vector<SweepResult> &r1 = serial.runAll();
    const std::vector<SweepResult> &r2 = two.runAll();
    const std::vector<SweepResult> &r8 = eight.runAll();
    ASSERT_EQ(r1.size(), r2.size());
    ASSERT_EQ(r1.size(), r8.size());
    for (size_t i = 0; i < r1.size(); ++i) {
        for (const std::vector<SweepResult> *rs : {&r2, &r8}) {
            const SweepResult &other = (*rs)[i];
            EXPECT_EQ(other.name, r1[i].name);
            EXPECT_DOUBLE_EQ(other.platform.sim.cycles,
                             r1[i].platform.sim.cycles)
                << r1[i].name;
            EXPECT_DOUBLE_EQ(other.platform.sim.dramBytes,
                             r1[i].platform.sim.dramBytes)
                << r1[i].name;
            EXPECT_EQ(other.platform.machineFingerprint,
                      r1[i].platform.machineFingerprint)
                << r1[i].name;
            EXPECT_DOUBLE_EQ(other.platform.benchTimeMs,
                             r1[i].platform.benchTimeMs)
                << r1[i].name;
        }
    }

    const auto agg1 = deterministicAggregates(serial.aggregates());
    auto agg2 = deterministicAggregates(two.aggregates());
    auto agg8 = deterministicAggregates(eight.aggregates());
    // Thread count is recorded in the aggregates by design; align it
    // before demanding equality of everything else.
    agg2["sweep.threads"] = agg1.at("sweep.threads");
    agg8["sweep.threads"] = agg1.at("sweep.threads");
    EXPECT_EQ(agg1, agg2);
    EXPECT_EQ(agg1, agg8);
}

TEST(SweepEngine, DeterministicAcrossThreadCountsWithSharedCache)
{
    // The determinism guarantee must survive the shared compile cache
    // at any thread count *and any hit pattern*: which worker builds a
    // contested entry is racy, but single-flight entries are immutable
    // and replayed, so results and aggregates cannot tell. The uncached
    // serial run is the oracle.
    SweepEngine uncached({1});
    for (SweepJob &job : smallGrid())
        uncached.submit(std::move(job));
    const std::vector<SweepResult> &oracle = uncached.runAll();

    // smallGrid: two hardware configs over three presets; the workload
    // differs per preset, the hardware only in back-end knobs, so the
    // cache holds 3 entries for 6 jobs.
    std::map<std::string, double> first_agg;
    for (size_t threads : {size_t(1), size_t(2), size_t(8)}) {
        CompileCache cache;
        SweepEngine engine({threads, &cache});
        for (SweepJob &job : smallGrid())
            engine.submit(std::move(job));
        const std::vector<SweepResult> &cached = engine.runAll();

        ASSERT_EQ(cached.size(), oracle.size());
        for (size_t i = 0; i < oracle.size(); ++i) {
            EXPECT_DOUBLE_EQ(cached[i].platform.sim.cycles,
                             oracle[i].platform.sim.cycles)
                << oracle[i].name << " @" << threads;
            EXPECT_EQ(cached[i].platform.machineFingerprint,
                      oracle[i].platform.machineFingerprint)
                << oracle[i].name << " @" << threads;
            EXPECT_DOUBLE_EQ(cached[i].platform.benchTimeMs,
                             oracle[i].platform.benchTimeMs)
                << oracle[i].name << " @" << threads;
        }
        EXPECT_EQ(engine.aggregates().get("cache.lookups"), 6.0);
        EXPECT_EQ(engine.aggregates().get("cache.misses"), 3.0);
        EXPECT_EQ(engine.aggregates().get("cache.frontend_skipped"), 3.0);

        // Aggregates (wall-clock keys aside) are identical across
        // thread counts, cache.* included — hit totals don't depend on
        // which worker won a build race.
        auto agg = deterministicAggregates(engine.aggregates());
        agg["sweep.threads"] = 1.0;
        if (first_agg.empty())
            first_agg = agg;
        else
            EXPECT_EQ(first_agg, agg) << "threads=" << threads;
    }
}

TEST(SweepEngine, AggregatesSumMinMaxMean)
{
    SweepEngine engine({2});
    for (SweepJob &job : smallGrid())
        engine.submit(std::move(job));
    const std::vector<SweepResult> &results = engine.runAll();
    const StatSet &agg = engine.aggregates();

    EXPECT_EQ(agg.get("sweep.jobs"), double(results.size()));
    EXPECT_EQ(agg.get("sweep.threads"), 2.0);

    double sum = 0, mn = 0, mx = 0;
    for (size_t i = 0; i < results.size(); ++i) {
        const double c = results[i].platform.sim.cycles;
        sum += c;
        mn = i == 0 ? c : std::min(mn, c);
        mx = i == 0 ? c : std::max(mx, c);
    }
    EXPECT_DOUBLE_EQ(agg.get("platform.cycles.sum"), sum);
    EXPECT_DOUBLE_EQ(agg.get("platform.cycles.min"), mn);
    EXPECT_DOUBLE_EQ(agg.get("platform.cycles.max"), mx);
    EXPECT_DOUBLE_EQ(agg.get("platform.cycles.count"),
                     double(results.size()));
    EXPECT_DOUBLE_EQ(agg.get("platform.cycles.mean"),
                     sum / double(results.size()));

    // Per-pass compiler stats aggregate too: the full preset ran the
    // peephole on some jobs, so the key exists with a job count.
    EXPECT_TRUE(agg.has("compile.optimized.instructions.sum"));
    EXPECT_GT(agg.get("compile.optimized.instructions.count"), 0.0);
}

TEST(SweepEngine, MoreThreadsThanJobsIsFine)
{
    SweepEngine engine({16});
    FheParams fhe;
    fhe.logN = 12;
    fhe.levels = 6;
    fhe.dnum = 2;
    engine.submit("solo",
                  [fhe] { return buildDbLookup(fhe, 16); },
                  HardwareConfig::asicEffact27(),
                  Platform::fullOptions(HardwareConfig::asicEffact27()
                                            .sramBytes));
    const std::vector<SweepResult> &results = engine.runAll();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GT(results[0].platform.sim.cycles, 0.0);
}

// --- Within-job parallelism and stage pipelining --------------------------

/** The serial oracle for a grid, with a forced verify level. */
std::vector<SweepResult>
serialOracle(const std::vector<SweepJob> &jobs, int verify_level = -1)
{
    SweepOptions o;
    o.threads = 1;
    o.verifyLevel = verify_level;
    o.jobThreads = 1; // pin: the default reads EFFACT_JOB_THREADS
    SweepEngine engine(o);
    for (const SweepJob &job : jobs)
        engine.submit(job);
    return engine.runAll();
}

void
expectSameResults(const std::vector<SweepResult> &got,
                  const std::vector<SweepResult> &oracle,
                  const std::string &tag)
{
    ASSERT_EQ(got.size(), oracle.size()) << tag;
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].name, oracle[i].name) << tag;
        EXPECT_DOUBLE_EQ(got[i].platform.sim.cycles,
                         oracle[i].platform.sim.cycles)
            << tag << " " << oracle[i].name;
        EXPECT_DOUBLE_EQ(got[i].platform.sim.dramBytes,
                         oracle[i].platform.sim.dramBytes)
            << tag << " " << oracle[i].name;
        EXPECT_EQ(got[i].platform.machineFingerprint,
                  oracle[i].platform.machineFingerprint)
            << tag << " " << oracle[i].name;
        EXPECT_DOUBLE_EQ(got[i].platform.benchTimeMs,
                         oracle[i].platform.benchTimeMs)
            << tag << " " << oracle[i].name;
    }
}

TEST(SweepEngine, JobThreadsKeepResultsIdentical)
{
    // Within-job parallelism at 1, 2 and 8 shard workers — stacked on
    // serial and concurrent job execution — must reproduce the serial
    // oracle bit for bit (region chunking depends only on program
    // sizes, never on worker counts).
    const std::vector<SweepJob> jobs = smallGrid();
    const std::vector<SweepResult> oracle = serialOracle(jobs);
    SweepOptions oracle_opts;
    oracle_opts.threads = 1;
    oracle_opts.jobThreads = 1;
    SweepEngine oracle_engine(oracle_opts);
    for (const SweepJob &job : jobs)
        oracle_engine.submit(job);
    oracle_engine.runAll();
    const auto oracle_agg =
        deterministicAggregates(oracle_engine.aggregates());

    for (size_t threads : {1, 3}) {
        for (size_t job_threads : {2, 8}) {
            SweepOptions o;
            o.threads = threads;
            o.jobThreads = job_threads;
            SweepEngine engine(o);
            for (const SweepJob &job : jobs)
                engine.submit(job);
            const std::string tag = "threads=" +
                                    std::to_string(threads) +
                                    " jobThreads=" +
                                    std::to_string(job_threads);
            expectSameResults(engine.runAll(), oracle, tag);
            auto agg = deterministicAggregates(engine.aggregates());
            agg["sweep.threads"] = oracle_agg.at("sweep.threads");
            EXPECT_EQ(agg, oracle_agg) << tag;
        }
    }
}

TEST(SweepEngine, PipelinedStagesMatchMonolithic)
{
    // Stage-pipelined execution (with and without within-job shards)
    // only changes host scheduling, never results or aggregates.
    const std::vector<SweepJob> jobs = smallGrid();
    const std::vector<SweepResult> oracle = serialOracle(jobs);
    for (size_t job_threads : {1, 8}) {
        SweepOptions o;
        o.threads = 4;
        o.jobThreads = job_threads;
        o.pipelineStages = true;
        SweepEngine engine(o);
        for (const SweepJob &job : jobs)
            engine.submit(job);
        const std::string tag =
            "pipelined jobThreads=" + std::to_string(job_threads);
        expectSameResults(engine.runAll(), oracle, tag);
        // Per-stage wall-clock stats exist for every job, in both the
        // pipelined and monolithic paths.
        const StatSet &agg = engine.aggregates();
        for (const char *key :
             {"job.ir.ms.count", "job.middle.ms.count",
              "job.backend.ms.count", "job.sim.ms.count"})
            EXPECT_EQ(agg.get(key), double(jobs.size())) << tag << key;
    }
}

TEST(SweepEngine, VerifiedPresetSweepWithNestedParallelism)
{
    // All four Fig. 11 presets, fully checkpoint-verified, with stage
    // pipelining and 8 shard workers: verifier-clean and equal to the
    // serial verified oracle.
    FheParams fhe;
    fhe.logN = 13;
    fhe.levels = 8;
    fhe.dnum = 2;
    const HardwareConfig hw = HardwareConfig::asicEffact27();
    std::vector<SweepJob> jobs;
    const std::vector<std::pair<const char *, CompilerOptions>> presets =
        {{"baseline", Platform::baselineOptions(hw.sramBytes)},
         {"mad", Platform::madEnhancedOptions(hw.sramBytes)},
         {"streaming", Platform::streamingOptions(hw.sramBytes)},
         {"full", Platform::fullOptions(hw.sramBytes)}};
    for (const auto &[name, copts] : presets) {
        SweepJob job;
        job.name = name;
        job.build = [fhe] { return buildDbLookup(fhe, 48); };
        job.hw = hw;
        job.copts = copts;
        jobs.push_back(std::move(job));
    }
    const std::vector<SweepResult> oracle =
        serialOracle(jobs, /*verify_level=*/1);
    SweepOptions o;
    o.threads = 4;
    o.verifyLevel = 1;
    o.jobThreads = 8;
    o.pipelineStages = true;
    SweepEngine engine(o);
    for (const SweepJob &job : jobs)
        engine.submit(job);
    expectSameResults(engine.runAll(), oracle, "verified presets");
}

TEST(SweepEngine, SharedCacheWithJobThreadsStaysIdentical)
{
    // Shared compile cache + within-job shards + pipelining: snapshots
    // published by region-sharded middle ends replay bit-identically.
    const std::vector<SweepJob> jobs = smallGrid();
    const std::vector<SweepResult> oracle = serialOracle(jobs);
    CompileCache cache;
    SweepOptions o;
    o.threads = 4;
    o.compileCache = &cache;
    o.jobThreads = 8;
    o.pipelineStages = true;
    SweepEngine engine(o);
    for (const SweepJob &job : jobs)
        engine.submit(job);
    expectSameResults(engine.runAll(), oracle, "cached+sharded");
    EXPECT_GT(cache.statsSnapshot().get("cache.hits"), 0.0);
}

TEST(SweepEngine, ExternalPoolMatchesPrivatePool)
{
    // A caller-owned long-lived pool (the service daemon's) must be
    // byte-identical to the engine's private per-run pool, and reusable
    // across consecutive batches without re-spawning workers.
    const std::vector<SweepJob> jobs = smallGrid();
    const std::vector<SweepResult> oracle = serialOracle(jobs);

    ThreadPool pool(4);
    CompileCache cache;
    for (int batch = 0; batch < 2; ++batch) {
        SweepOptions o;
        o.threads = 4;
        o.compileCache = &cache;
        o.pool = &pool;
        SweepEngine engine(o);
        for (const SweepJob &job : jobs)
            engine.submit(job);
        expectSameResults(engine.runAll(), oracle,
                          "external pool batch " + std::to_string(batch));
    }
    // The pool survives the engines and still accepts work.
    std::atomic<int> counter{0};
    pool.submit([&counter](size_t) { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 1);
}

TEST(SweepEngine, ExternalPoolWithJobThreadsStaysIdentical)
{
    // Nested parallelism through the shared pool: per-job region shards
    // fan out into the same queue the jobs came from.
    const std::vector<SweepJob> jobs = smallGrid();
    const std::vector<SweepResult> oracle = serialOracle(jobs);
    ThreadPool pool(4);
    SweepOptions o;
    o.threads = 4;
    o.jobThreads = 4;
    o.pool = &pool;
    SweepEngine engine(o);
    for (const SweepJob &job : jobs)
        engine.submit(job);
    expectSameResults(engine.runAll(), oracle, "external pool + shards");
}

TEST(DefaultThreadCount, IsPositive)
{
    EXPECT_GE(defaultThreadCount(), 1u);
    EXPECT_GE(defaultJobThreadCount(), 1u);
}

} // namespace
} // namespace effact
